package mvcom_test

import (
	"fmt"
	"log"

	"mvcom"
	"mvcom/internal/txgen"
)

// The smallest end-to-end use of the library: schedule four committees
// into a 4,000-TX final block.
func ExampleNewScheduler() {
	in := mvcom.Instance{
		Sizes:     []int{1200, 900, 2100, 1500},
		Latencies: []float64{812, 930, 1105, 988},
		Alpha:     1.5,
		Capacity:  4000,
		Nmin:      2,
	}
	sched := mvcom.NewScheduler(mvcom.SchedulerConfig{Seed: 1})
	sol, _, err := sched.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("permitted:", sol.Indices())
	fmt.Println("TXs:", sol.Load)
	// Output:
	// permitted: [2 3]
	// TXs: 3600
}

// Theory helpers evaluate the paper's bounds without running the chain.
func ExampleOptimalityLossBound() {
	loss, err := mvcom.OptimalityLossBound(2, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximation loss ≤ %.1f\n", loss)
	// Output:
	// approximation loss ≤ 173.3
}

// A committee failure mid-run is handled online; Theorem 2 bounds the
// damage.
func ExamplePerturbationBound() {
	p := mvcom.PerturbationBound(51_057)
	fmt.Printf("d_TV ≤ %.1f, utility perturbation ≤ %.0f\n", p.TVDistance, p.UtilityBound)
	// Output:
	// d_TV ≤ 0.5, utility perturbation ≤ 51057
}

// The five-stage Elastico pipeline: one epoch end to end, with the SE
// scheduler making the final-consensus decision and a verified root
// chain.
func ExampleNewPipeline() {
	p, err := mvcom.NewPipeline(mvcom.PipelineConfig{
		Committees:    8,
		CommitteeSize: 4,
		Trace:         txgen.Config{Blocks: 32, MeanTxs: 500, MinTxs: 50, MaxTxs: 2000},
		Seed:          4,
	})
	if err != nil {
		log.Fatal(err)
	}
	capacity := p.Trace().TotalTxs() / 2
	res, err := p.RunEpoch(mvcom.SolverScheduler{
		Solver: mvcom.NewScheduler(mvcom.SchedulerConfig{Seed: 4, MaxIters: 500}),
	}, 1.5, capacity, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("height:", p.Chain().Height())
	fmt.Println("verified:", p.Chain().Verify() == nil)
	fmt.Println("capacity respected:", res.Solution.Load <= capacity)
	// Output:
	// height: 1
	// verified: true
	// capacity respected: true
}

// Online scheduling survives a committee failing mid-run.
func ExampleScheduler_SolveOnline() {
	in := mvcom.Instance{
		Sizes:     []int{1200, 900, 2100, 1500, 800},
		Latencies: []float64{812, 930, 1105, 988, 860},
		Alpha:     1.5,
		Capacity:  4000,
		Nmin:      2,
	}
	events := []mvcom.Event{
		{AtIteration: 50, Kind: mvcom.EventLeave, Index: 2}, // committee 2 fails
	}
	sched := mvcom.NewScheduler(mvcom.SchedulerConfig{Seed: 1, MaxIters: 500})
	sol, _, err := sched.SolveOnline(in, events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committee 2 selected:", sol.Selected[2])
	// Output:
	// committee 2 selected: false
}
