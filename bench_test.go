// Benchmarks: one per data figure of the paper (Figs. 2, 8–14) plus
// ablation benches for the design choices called out in DESIGN.md. Each
// figure bench executes a reduced-scale variant of the same code path the
// full experiment uses (cmd/mvcom-bench runs the paper-sized version) and
// reports the converged utility or headline metric via b.ReportMetric so
// regressions in solution quality show up next to time/op.
package mvcom_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mvcom"
	"mvcom/internal/baseline"
	"mvcom/internal/core"
	"mvcom/internal/decisionlog"
	"mvcom/internal/epoch"
	"mvcom/internal/experiments"
	"mvcom/internal/metrics"
	"mvcom/internal/obs"
	"mvcom/internal/randx"
	"mvcom/internal/seobs"
	"mvcom/internal/txgen"
)

const benchScale = 0.05

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Scale: benchScale}
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig02TwoPhaseLatency regenerates Fig. 2(a)+(b): the two-phase
// latency measurement under the Elastico pipeline.
func BenchmarkFig02TwoPhaseLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		resA, err := experiments.Run("2a", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Run("2b", benchOpts()); err != nil {
			b.Fatal(err)
		}
		// Report the formation/consensus latency ratio (the Fig. 2a
		// headline: formation dominates).
		f := resA.Series[0].Y
		c := resA.Series[1].Y
		b.ReportMetric(f[len(f)-1]/c[len(c)-1], "formation/consensus")
	}
}

// BenchmarkFig08ParallelThreads regenerates Fig. 8 (SE convergence vs Γ).
func BenchmarkFig08ParallelThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("8", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Series[len(res.Series)-1].Y
		b.ReportMetric(last[len(last)-1], "utility-gamma25")
	}
}

// BenchmarkFig09Dynamics regenerates Fig. 9(a)+(b): dynamic leave/rejoin
// and consecutive joins.
func BenchmarkFig09Dynamics(b *testing.B) {
	b.Run("a-leave-rejoin", func(b *testing.B) { runFigure(b, "9a") })
	b.Run("b-consecutive-joins", func(b *testing.B) { runFigure(b, "9b") })
}

// BenchmarkFig10ValuableDegree regenerates Fig. 10 and reports SE's
// valuable-degree lead over the best baseline.
func BenchmarkFig10ValuableDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("10", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		vd := map[string]float64{}
		for _, s := range res.Series {
			vd[s.Label] = s.Y[0]
		}
		bestBaseline := math.Max(vd["SA"], math.Max(vd["DP"], vd["WOA"]))
		b.ReportMetric(vd["SE"]/bestBaseline, "SE/best-baseline")
	}
}

// BenchmarkFig11VaryCommittees regenerates Fig. 11 (|I| sweep, 4
// algorithms).
func BenchmarkFig11VaryCommittees(b *testing.B) { runFigure(b, "11") }

// BenchmarkFig12VaryAlpha regenerates Fig. 12 (α sweep, 4 algorithms).
func BenchmarkFig12VaryAlpha(b *testing.B) { runFigure(b, "12") }

// BenchmarkFig13Distribution regenerates Fig. 13 (converged-utility
// distributions over repeated runs).
func BenchmarkFig13Distribution(b *testing.B) { runFigure(b, "13") }

// BenchmarkFig14OnlineJoins regenerates Fig. 14 (online execution with
// consecutive joins, α sweep).
func BenchmarkFig14OnlineJoins(b *testing.B) { runFigure(b, "14") }

// benchInstance builds the shared ablation instance.
func benchInstance(b *testing.B, n int) mvcom.Instance {
	b.Helper()
	in, err := experiments.PaperInstance(1, n, n*800, 1.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkAblationBeta sweeps β: the Remark 2 tradeoff between optimality
// loss and convergence speed. Reported metric: converged utility.
func BenchmarkAblationBeta(b *testing.B) {
	in := benchInstance(b, 40)
	for _, beta := range []float64{0.5, 2, 8} {
		b.Run(betaName(beta), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				sol, _, err := core.NewSE(core.SEConfig{
					Seed: 1, Beta: beta, MaxIters: 1200, ConvergenceWindow: 1200,
				}).Solve(in.Clone())
				if err != nil {
					b.Fatal(err)
				}
				util = sol.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

func betaName(beta float64) string {
	switch beta {
	case 0.5:
		return "beta=0.5"
	case 2:
		return "beta=2"
	default:
		return "beta=8"
	}
}

// BenchmarkAblationSwapFeasibility compares Set-timer's
// resample-until-feasible strategy (SwapRetries=8) against giving up after
// the first infeasible proposal (SwapRetries=1).
func BenchmarkAblationSwapFeasibility(b *testing.B) {
	in := benchInstance(b, 40)
	for _, retries := range []int{1, 8} {
		name := "retries=1"
		if retries == 8 {
			name = "retries=8"
		}
		b.Run(name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				sol, _, err := core.NewSE(core.SEConfig{
					Seed: 1, SwapRetries: retries, MaxIters: 1200, ConvergenceWindow: 1200,
				}).Solve(in.Clone())
				if err != nil {
					b.Fatal(err)
				}
				util = sol.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

// BenchmarkAblationGumbel compares the log-space Gumbel-max timer race
// against naively sampling every exponential timer — the numerically
// unstable alternative the implementation avoids (and which would
// overflow outright at the paper's utility scale).
func BenchmarkAblationGumbel(b *testing.B) {
	const k = 500
	rng := randx.New(1)
	logRates := make([]float64, k)
	for i := range logRates {
		logRates[i] = rng.Uniform(-3, 3)
	}
	b.Run("gumbel-log-space", func(b *testing.B) {
		r := randx.New(2)
		for i := 0; i < b.N; i++ {
			if _, _, err := r.MinExponentialLog(logRates); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-exponentials", func(b *testing.B) {
		r := randx.New(2)
		for i := 0; i < b.N; i++ {
			best, bestT := -1, math.Inf(1)
			for j, lr := range logRates {
				t := r.ExponentialRate(math.Exp(lr))
				if t < bestT {
					bestT = t
					best = j
				}
			}
			if best < 0 {
				b.Fatal("no winner")
			}
		}
	})
}

// BenchmarkSESolve measures the solver end-to-end across the paper's Γ
// scaling knob, comparing the serial kernel (Workers=1) against the
// concurrent one (Workers=0 → GOMAXPROCS). The fixed iteration budget
// makes work per op identical across kernels — per-explorer split RNG
// streams mean both converge to the exact same utility — so the ns/op
// ratio is pure parallel speedup.
func BenchmarkSESolve(b *testing.B) {
	in := benchInstance(b, 200)
	for _, gamma := range []int{1, 8, 25} {
		b.Run(fmt.Sprintf("gamma=%d", gamma), func(b *testing.B) {
			for _, kernel := range []struct {
				name    string
				workers int
			}{{"serial", 1}, {"parallel", 0}} {
				b.Run(kernel.name, func(b *testing.B) {
					b.ReportAllocs()
					var util float64
					for i := 0; i < b.N; i++ {
						sol, _, err := core.NewSE(core.SEConfig{
							Seed: 1, Gamma: gamma, Workers: kernel.workers,
							MaxIters: 2000, ConvergenceWindow: 2000,
						}).Solve(in.Clone())
						if err != nil {
							b.Fatal(err)
						}
						util = sol.Utility
					}
					b.ReportMetric(util, "utility")
				})
			}
		})
	}
}

// BenchmarkSESolveObs measures the instrumentation overhead gate from
// DESIGN.md §5c: the solver with no observer attached (the nil-is-off
// contract) versus the same run feeding a live registry AND the full
// convergence-diagnostics stream (DESIGN.md §5e). ci.sh fails if
// attached/detached exceeds 1.03, so both the kernel's flush-at-merge
// batching and the diag's windowed aggregation have to keep their cost
// out of the per-round hot path.
//
// The two variants are interleaved within each iteration (alternating
// which goes first) and the ratio reported directly: back-to-back A/B
// runs would fold slow machine-load drift into the comparison, which on
// a shared runner dwarfs the few atomic adds per segment being gated.
func BenchmarkSESolveObs(b *testing.B) {
	in := benchInstance(b, 200)
	reg := obs.NewRegistry()
	seObs := obs.NewSEObserver(reg)
	diag := seobs.New(seobs.Config{Registry: reg})
	solve := func(o *obs.SEObserver, d *seobs.Diag) float64 {
		sol, _, err := core.NewSE(core.SEConfig{
			Seed: 1, Gamma: 8, Obs: o, Diag: d,
			MaxIters: 2000, ConvergenceWindow: 2000,
		}).Solve(in.Clone())
		if err != nil {
			b.Fatal(err)
		}
		return sol.Utility
	}
	var detached, attached time.Duration
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			start := time.Now()
			uD := solve(nil, nil)
			mid := time.Now()
			uA := solve(seObs, diag)
			attached += time.Since(mid)
			detached += mid.Sub(start)
			if uD != uA {
				b.Fatalf("observer changed the solution: %v vs %v", uD, uA)
			}
		} else {
			start := time.Now()
			solve(seObs, diag)
			mid := time.Now()
			solve(nil, nil)
			detached += time.Since(mid)
			attached += mid.Sub(start)
		}
	}
	b.ReportMetric(float64(attached)/float64(detached), "attached/detached")
}

// BenchmarkSESolveObsSpans extends the §5c overhead gate to the causal
// tracing layer (DESIGN.md §5h): the armed variant runs the solver under
// a live registry AND wraps every solve in a root epoch span with a
// solve child — the exact shape the epoch pipeline and dist session emit
// per epoch — while the detached variant has everything off. ci.sh holds
// the same 1.03 line here, so span begin/end (two ring-buffer emits and
// one atomic ID allocation per span) must stay invisible next to a
// 2000-round solve.
func BenchmarkSESolveObsSpans(b *testing.B) {
	in := benchInstance(b, 200)
	reg := obs.NewRegistry()
	seObs := obs.NewSEObserver(reg)
	diag := seobs.New(seobs.Config{Registry: reg})
	tc := reg.TraceContext()
	solve := func(o *obs.SEObserver, d *seobs.Diag, spans bool) float64 {
		var root, child *obs.Span
		if spans {
			root = tc.StartRoot("epoch", "bench")
			child = tc.StartSpan("solve", "bench", root.Context())
		}
		sol, _, err := core.NewSE(core.SEConfig{
			Seed: 1, Gamma: 8, Obs: o, Diag: d,
			MaxIters: 2000, ConvergenceWindow: 2000,
		}).Solve(in.Clone())
		if err != nil {
			b.Fatal(err)
		}
		if spans {
			child.Finish()
			root.Finish()
		}
		return sol.Utility
	}
	var detached, armed time.Duration
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			start := time.Now()
			uD := solve(nil, nil, false)
			mid := time.Now()
			uA := solve(seObs, diag, true)
			armed += time.Since(mid)
			detached += mid.Sub(start)
			if uD != uA {
				b.Fatalf("instrumentation changed the solution: %v vs %v", uD, uA)
			}
		} else {
			start := time.Now()
			solve(seObs, diag, true)
			mid := time.Now()
			solve(nil, nil, false)
			detached += time.Since(mid)
			armed += mid.Sub(start)
		}
	}
	b.ReportMetric(float64(armed)/float64(detached), "attached/detached")
}

// BenchmarkSpanOff measures the tracing-off fast path: every span call
// on a nil TraceContext (the nil-is-off contract) must cost a few
// branches and zero heap — ci.sh gates allocs/op == 0 here, the same way
// it gates the SE round loop.
func BenchmarkSpanOff(b *testing.B) {
	var tc *obs.TraceContext // tracing disabled
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tc.StartRoot("epoch", "bench")
		child := tc.StartSpan("solve", "bench", root.Context())
		child.FinishOutcome("ok")
		root.Finish()
	}
}

// BenchmarkSESolveSize measures the solver end-to-end at three instance
// sizes.
func BenchmarkSESolveSize(b *testing.B) {
	for _, n := range []int{50, 200, 500} {
		in := benchInstance(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.NewSE(core.SEConfig{
					Seed: 1, MaxIters: 300, ConvergenceWindow: 300,
				}).Solve(in.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSEWarmStart measures the serving loop's warm-start payoff on
// overlapping consecutive epochs: epoch 1 is solved once outside the
// timer; each iteration then solves epoch 2 either cold or seeded from
// epoch 1's solution (SE.SolveFrom). Besides time/op the benchmark
// reports rounds_to_eps — the rounds until the best utility entered the
// ε-band of its final value — which is the metric the soak journal
// gates: warm must reach the band in fewer rounds than cold.
func BenchmarkSEWarmStart(b *testing.B) {
	in1 := benchInstance(b, 60)
	prev, _, err := core.NewSE(core.SEConfig{Seed: 2, Gamma: 4, MaxIters: 8000}).Solve(in1.Clone())
	if err != nil {
		b.Fatal(err)
	}
	// The next epoch: jittered latencies, two departed shards.
	in2 := in1.Clone()
	for i := range in2.Latencies {
		in2.Latencies[i] *= 0.96 + 0.08*float64((i*37)%100)/100
		if in2.Latencies[i] > in2.DDL {
			in2.Latencies[i] = in2.DDL
		}
	}
	in2.Latencies[4] = in2.DDL + 1
	in2.Latencies[17] = in2.DDL + 1

	base := core.SEConfig{Seed: 9, Gamma: 4, MaxIters: 6000, ConvergenceWindow: 6000}
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			rounds := 0.0
			for i := 0; i < b.N; i++ {
				diag := seobs.New(seobs.Config{})
				cfg := base
				cfg.Diag = diag
				cfg.WarmStart = mode == "warm"
				se := core.NewSE(cfg)
				var err error
				if cfg.WarmStart {
					_, _, err = se.SolveFrom(in2.Clone(), prev)
				} else {
					_, _, err = se.Solve(in2.Clone())
				}
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(diag.Snapshot().TimeToEpsRounds)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds_to_eps")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 50:
		return "I=50"
	case 200:
		return "I=200"
	default:
		return "I=500"
	}
}

// BenchmarkSEStep measures a single Markov transition round.
func BenchmarkSEStep(b *testing.B) {
	in := benchInstance(b, 200)
	engine, err := core.NewEngine(in, core.SEConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}

// BenchmarkSERounds measures the steady-state round loop on the big
// instance — the tentpole's target: construction is amortized away (one
// engine, pre-warmed past its first segment merges so the snapshot pool
// is primed), each op is one transition round, and the loop must run
// allocation-free (ci.sh gates allocs/op == 0 here). rounds/sec is the
// journaled throughput metric.
func BenchmarkSERounds(b *testing.B) {
	in := benchInstance(b, 200)
	engine, err := core.NewEngine(in, core.SEConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	engine.StepN(256) // past the first merges: pool primed, caches hot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
}

// BenchmarkBaselines measures each comparison algorithm on the same
// instance.
func BenchmarkBaselines(b *testing.B) {
	in := benchInstance(b, 100)
	solvers := []core.Solver{
		baseline.SA{Seed: 1, Iterations: 2000},
		baseline.DP{},
		baseline.WOA{Seed: 1, Iterations: 60},
		baseline.Greedy{},
	}
	for _, s := range solvers {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				sol, _, err := s.Solve(in.Clone())
				if err != nil {
					b.Fatal(err)
				}
				util = sol.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

// BenchmarkEpochPipeline measures one full five-stage epoch.
func BenchmarkEpochPipeline(b *testing.B) {
	p, err := mvcom.NewPipeline(mvcom.PipelineConfig{
		Committees:    20,
		CommitteeSize: 8,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	capacity := p.Trace().TotalTxs() / 3
	sched := mvcom.SolverScheduler{Solver: baseline.Greedy{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.RunEpoch(sched, 1.5, capacity, 5)
		if err != nil {
			b.Fatal(err)
		}
		o := metrics.Outcome(res.Epoch, &res.Instance, res.Solution)
		b.ReportMetric(o.Throughput(), "tx/s")
	}
}

// BenchmarkEpochServeDecisionLog measures the decision-journal overhead
// gate: two identical pipelines advance through epochs in lockstep — one
// journaling every committed decision to disk (full provenance record:
// shard reports, fingerprint, marginals, counterfactuals), the other
// with the journal off (the nil-is-off contract). Variants interleave
// within each iteration, alternating order, so machine-load drift cannot
// masquerade as journal cost; utilities must match exactly because the
// journal may observe the decision but never perturb it.
//
// The timed window covers RunEpoch only — what the serve path pays:
// Acquire, the decision fill (marginals, counterfactuals, deferral
// attribution), and the writer handoff. The background writer drains
// via Sync between windows, untimed: on a multi-core host its
// render/write CPU overlaps the solve, but CI may run on a single core
// where nothing overlaps and device writeback throttling would gate the
// solver on disk speed. The writer's own cost is pinned separately by
// BenchmarkJournalAppend and BenchmarkAppendEntryJSON in
// internal/decisionlog. ci.sh fails the build when journal-on/off
// exceeds 1.03.
func BenchmarkEpochServeDecisionLog(b *testing.B) {
	newPipe := func(j *decisionlog.Journal) *epoch.Pipeline {
		p, err := epoch.NewPipeline(epoch.Config{
			Committees:    24,
			CommitteeSize: 8,
			Trace:         txgen.Config{Blocks: 240, MeanTxs: 80},
			Seed:          1,
			MaxDeferrals:  2,
			DecisionLog:   j,
		})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	j, err := decisionlog.Open(decisionlog.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	pOn := newPipe(j)
	pOff := newPipe(nil)
	// Soak-like steady state: 60% capacity and MaxDeferrals=2 keep the
	// deferral queue bounded at any b.N, and the solver runs the soak's
	// default 2000-round budget so the gate measures the journal against
	// the epoch cost the serve path actually pays.
	capacity := pOff.Trace().TotalTxs() * 3 / 5
	sched := epoch.SolverScheduler{Solver: core.NewSE(core.SEConfig{Seed: 7, MaxIters: 2000, ConvergenceWindow: 2000})}
	runOne := func(p *epoch.Pipeline) float64 {
		res, err := p.RunEpoch(sched, 1.5, capacity, 2)
		if err != nil {
			b.Fatal(err)
		}
		return res.Solution.Utility
	}
	var off, on time.Duration
	for i := 0; i < b.N; i++ {
		var uOff, uOn float64
		if i%2 == 0 {
			start := time.Now()
			uOff = runOne(pOff)
			mid := time.Now()
			uOn = runOne(pOn)
			on += time.Since(mid)
			off += mid.Sub(start)
		} else {
			start := time.Now()
			uOn = runOne(pOn)
			mid := time.Now()
			uOff = runOne(pOff)
			off += time.Since(mid)
			on += mid.Sub(start)
		}
		if uOff != uOn {
			b.Fatalf("journal changed the decision: %v vs %v", uOff, uOn)
		}
		// Drain the async writer outside the timed windows (see the
		// benchmark comment).
		if err := j.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(on)/float64(off), "journal-on/off")
}

// BenchmarkAblationThreadLattice compares the per-cardinality thread
// lattice sizes: the full Alg. 1 thread set (one per cardinality) versus
// capped lattices. Reported metric: converged utility at equal round
// budget.
func BenchmarkAblationThreadLattice(b *testing.B) {
	in := benchInstance(b, 300)
	for _, threads := range []int{8, 64, 1024} {
		name := fmt.Sprintf("threads=%d", threads)
		b.Run(name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				sol, _, err := core.NewSE(core.SEConfig{
					Seed: 1, MaxThreads: threads, MaxIters: 3000, ConvergenceWindow: 3000,
				}).Solve(in.Clone())
				if err != nil {
					b.Fatal(err)
				}
				util = sol.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

// BenchmarkAblationRateNormalization compares the scale-invariant
// temperature (default) against applying β to raw utilities (the literal
// reading of equation (7), which is quasi-deterministic at trace scale).
func BenchmarkAblationRateNormalization(b *testing.B) {
	in := benchInstance(b, 100)
	for _, disable := range []bool{false, true} {
		name := "normalized"
		if disable {
			name = "raw-beta"
		}
		b.Run(name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				sol, _, err := core.NewSE(core.SEConfig{
					Seed: 1, DisableRateNormalization: disable,
					MaxIters: 2000, ConvergenceWindow: 2000,
				}).Solve(in.Clone())
				if err != nil {
					b.Fatal(err)
				}
				util = sol.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}
