package mvcom_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mvcom/internal/decisionlog"
	"mvcom/internal/obs"
)

// metricBaseRE is the naming contract: a metric base name (labels
// stripped) is mvcom_ followed by lowercase snake case.
var metricBaseRE = regexp.MustCompile(`^mvcom_[a-z0-9_]+$`)

// sourceMetricRE finds metric-name string literals in source: a double
// quote immediately followed by an mvcom_ base name. Labeled names
// (`mvcom_x_total{role=...}`) match their base because `{` terminates
// the character class.
var sourceMetricRE = regexp.MustCompile(`"(mvcom_[a-z0-9_]+)`)

// sourceMetricBases scans every non-test .go file in the repository for
// metric-name literals and returns the set of base names.
func sourceMetricBases(t *testing.T) map[string]bool {
	t.Helper()
	bases := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "results" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range sourceMetricRE.FindAllSubmatch(src, -1) {
			bases[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) == 0 {
		t.Fatal("source scan found no metric names")
	}
	return bases
}

// documentedBases parses docs/metrics.txt: first whitespace-separated
// token per line, '#' comments and blank lines ignored.
func documentedBases(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("docs", "metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]bool{}
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.Fields(line)[0]
		if !metricBaseRE.MatchString(name) {
			t.Errorf("docs/metrics.txt:%d: malformed metric name %q", i+1, name)
			continue
		}
		docs[name] = true
	}
	return docs
}

// TestMetricsNamesDocumented is the metrics-name lint ci.sh runs as a
// fast-stage gate: every metric base name the binaries can register must
// match ^mvcom_[a-z0-9_]+$ and appear in the committed docs/metrics.txt
// index, and every index entry must still be backed by a registration —
// renaming or adding a metric without updating the docs fails the build.
func TestMetricsNamesDocumented(t *testing.T) {
	src := sourceMetricBases(t)
	docs := documentedBases(t)

	for name := range src {
		if !metricBaseRE.MatchString(name) {
			t.Errorf("metric %q violates the mvcom_[a-z0-9_]+ naming contract", name)
		}
		if !docs[name] {
			t.Errorf("metric %q is registered in source but missing from docs/metrics.txt", name)
		}
	}
	for name := range docs {
		if !src[name] {
			t.Errorf("docs/metrics.txt lists %q but no source registration backs it", name)
		}
	}
}

// TestMetricsRuntimeNamesDocumented cross-checks the static scan against
// a live registry: it exercises every observer family plus the decision
// journal and the lazily-registered labeled paths (per-phase gauges,
// per-type dist message counters), then asserts each runtime name's base
// is documented and well-formed. This catches a metric whose name is
// composed at runtime and never appears verbatim in source.
func TestMetricsRuntimeNamesDocumented(t *testing.T) {
	docs := documentedBases(t)

	reg := obs.NewRegistry()
	obs.NewSEObserver(reg)
	eo := obs.NewEpochObserver(reg)
	eo.PhaseWall("formation", 0.01, 1.0) // registers both labeled phase gauges
	do := obs.NewDistObserver(reg, "coordinator")
	do.MsgSent("progress")
	do.MsgRecv("result")
	so := obs.NewServeObserver(reg)
	so.RequestShed("rate", 10) // registers both labeled shed counters
	j, err := decisionlog.Open(decisionlog.Options{Dir: t.TempDir(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	names := reg.MetricNames()
	if len(names) == 0 {
		t.Fatal("registry registered no metrics")
	}
	for _, name := range names {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !metricBaseRE.MatchString(base) {
			t.Errorf("runtime metric %q has malformed base %q", name, base)
		}
		if !docs[base] {
			t.Errorf("runtime metric %q (base %q) missing from docs/metrics.txt", name, base)
		}
	}
}
