package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mvcom/internal/randx"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("bad summary %+v", s)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almost(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stddev != 0 || s.Mean != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("bad single-point summary %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean([1 2 3]) != 2")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{25, 20},
		{50, 35},
		{100, 50},
		{90, 46}, // interpolated: rank 3.6 → 40 + 0.6*(50-40)
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tt.want, 1e-9) {
			t.Fatalf("P%.0f = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("want out-of-range error")
	}
	got, err := Percentile([]float64{7}, 32)
	if err != nil || got != 7 {
		t.Fatalf("single sample percentile: %v %v", got, err)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	m, err := Median([]float64{9, 1, 5})
	if err != nil || m != 5 {
		t.Fatalf("odd median %v %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || !almost(m, 2.5, 1e-12) {
		t.Fatalf("even median %v %v", m, err)
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{1, 2, 2, 3})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("got %v", pts)
	}
	for i := range pts {
		if pts[i].Value != want[i].Value || !almost(pts[i].Fraction, want[i].Fraction, 1e-12) {
			t.Fatalf("point %d: got %+v want %+v", i, pts[i], want[i])
		}
	}
	if ECDF(nil) != nil {
		t.Fatal("ECDF(nil) should be nil")
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		pts := ECDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		if len(pts) > 0 && !almost(pts[len(pts)-1].Fraction, 1, 1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAt(t *testing.T) {
	pts := ECDF([]float64{10, 20, 30, 40})
	tests := []struct {
		v    float64
		want float64
	}{
		{5, 0},
		{10, 0.25},
		{25, 0.5},
		{40, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := CDFAt(pts, tt.v); !almost(got, tt.want, 1e-12) {
			t.Fatalf("CDFAt(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("bins %v", bins)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 10 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	// The max value must land in the final bin.
	if bins[4].Count == 0 {
		t.Fatal("max value not in final bin")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := Histogram(nil, 3); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
	if _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("want bins error")
	}
}

func TestHistogramConstantSample(t *testing.T) {
	bins, err := Histogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("constant sample mishandled: %v", bins)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 1e-9) || !almost(fit.Intercept, 3, 1e-9) || !almost(fit.R2, 1, 1e-9) {
		t.Fatalf("fit %+v", fit)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := randx.New(1)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 10 + r.Normal(0, 5)
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 3, 0.05) {
		t.Fatalf("slope %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("want zero-variance error")
	}
}

func TestMovingAverage(t *testing.T) {
	got := MovingAverage([]float64{1, 2, 3, 4, 5}, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("index %d: got %v want %v", i, got[i], want[i])
		}
	}
	if MovingAverage(nil, 2) != nil {
		t.Fatal("nil input should return nil")
	}
	if MovingAverage([]float64{1}, 0) != nil {
		t.Fatal("window 0 should return nil")
	}
}

func TestBox(t *testing.T) {
	b, err := Box([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 9 || b.Median != 5 {
		t.Fatalf("box %+v", b)
	}
	if b.Q1 >= b.Median || b.Q3 <= b.Median {
		t.Fatalf("quartiles out of order %+v", b)
	}
	if _, err := Box(nil); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := Box(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAgreesWithSortedExtremes(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		p0, err0 := Percentile(xs, 0)
		p100, err100 := Percentile(xs, 100)
		return err0 == nil && err100 == nil &&
			p0 == sorted[0] && p100 == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	perfect := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, perfect)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("perfect correlation r=%v err=%v", r, err)
	}
	inverse := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, inverse)
	if err != nil || !almost(r, -1, 1e-12) {
		t.Fatalf("inverse correlation r=%v err=%v", r, err)
	}
	if _, err := Pearson(xs, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestPearsonUncorrelatedNearZero(t *testing.T) {
	r := randx.New(3)
	xs := make([]float64, 5000)
	ys := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
		ys[i] = r.Normal(0, 1)
	}
	rho, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.05 {
		t.Fatalf("independent samples correlate: %v", rho)
	}
}
