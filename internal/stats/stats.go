// Package stats provides the descriptive statistics used by the MVCom
// experiment harness: summaries, percentiles, empirical CDFs, histograms,
// and a least-squares linear fit. It exists so that every figure in the
// paper can be regenerated from raw simulation output with stdlib-only
// code.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by reducers that need at least one sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary over xs. It returns ErrNoData for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{
		Count: len(xs),
		Min:   xs[0],
		Max:   xs[0],
	}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.Count)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if s.Count > 1 {
		s.Stddev = math.Sqrt(sq / float64(s.Count-1))
	}
	return s, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns ErrNoData for an empty
// sample and an error for an out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// CDFPoint is one point of an empirical CDF: P(X ≤ Value) = Fraction.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// ECDF returns the empirical cumulative distribution function of xs as a
// sorted sequence of points, one per distinct value.
func ECDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	points := make([]CDFPoint, 0, len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into the final (highest) fraction.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		points = append(points, CDFPoint{
			Value:    sorted[i],
			Fraction: float64(i+1) / n,
		})
	}
	return points
}

// CDFAt evaluates an empirical CDF built by ECDF at value v.
func CDFAt(points []CDFPoint, v float64) float64 {
	// Binary search for the last point with Value <= v.
	idx := sort.Search(len(points), func(i int) bool { return points[i].Value > v })
	if idx == 0 {
		return 0
	}
	return points[idx-1].Fraction
}

// HistogramBin is one bin of a fixed-width histogram over [Lo, Hi).
type HistogramBin struct {
	Lo    float64
	Hi    float64
	Count int
}

// Histogram builds a fixed-width histogram with the given number of bins
// spanning [min(xs), max(xs)]. The final bin is closed on the right so the
// maximum lands inside it. Returns ErrNoData for an empty sample and an
// error for bins < 1.
func Histogram(xs []float64, bins int) ([]HistogramBin, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins = %d, need >= 1", bins)
	}
	s, err := Summarize(xs)
	if err != nil {
		return nil, err
	}
	width := (s.Max - s.Min) / float64(bins)
	out := make([]HistogramBin, bins)
	for i := range out {
		out[i].Lo = s.Min + float64(i)*width
		out[i].Hi = s.Min + float64(i+1)*width
	}
	for _, x := range xs {
		var idx int
		if width > 0 {
			idx = int((x - s.Min) / width)
		}
		if idx >= bins { // x == max
			idx = bins - 1
		}
		out[idx].Count++
	}
	return out, nil
}

// LinearFit holds the parameters of a least-squares line y = Slope·x +
// Intercept, along with the coefficient of determination R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine computes the least-squares linear fit of ys against xs. It
// returns ErrNoData if fewer than two points are given or an error if the
// slices differ in length or x has zero variance.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: x/y length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrNoData
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: zero variance in x")
	}
	fit := LinearFit{Slope: sxy / sxx}
	fit.Intercept = my - fit.Slope*mx
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// MovingAverage returns the trailing moving average of xs with the given
// window (each output point averages the up-to-window most recent inputs).
// A window < 1 returns nil.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 || len(xs) == 0 {
		return nil
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// BoxStats summarizes a sample the way a box plot does; the paper's Fig. 13
// reports converged-utility distributions in this form.
type BoxStats struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Box computes box-plot statistics for xs.
func Box(xs []float64) (BoxStats, error) {
	if len(xs) == 0 {
		return BoxStats{}, ErrNoData
	}
	q1, err := Percentile(xs, 25)
	if err != nil {
		return BoxStats{}, err
	}
	med, err := Percentile(xs, 50)
	if err != nil {
		return BoxStats{}, err
	}
	q3, err := Percentile(xs, 75)
	if err != nil {
		return BoxStats{}, err
	}
	s, err := Summarize(xs)
	if err != nil {
		return BoxStats{}, err
	}
	return BoxStats{Min: s.Min, Q1: q1, Median: med, Q3: q3, Max: s.Max}, nil
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns ErrNoData for fewer than two points and an error when the
// slices differ in length or either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: x/y length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrNoData
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
