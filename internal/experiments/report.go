package experiments

import (
	"fmt"
	"io"
	"time"
)

// Report runs the given figures (all registered ones when ids is empty)
// and writes a self-contained markdown summary: per-figure notes plus the
// final value of every series. cmd/mvcom-bench surfaces this as -report.
func Report(w io.Writer, opts Options, ids []string) error {
	if len(ids) == 0 {
		ids = IDs()
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# MVCom figure report\n\n")
	fmt.Fprintf(w, "seed %d, scale %g — every value below regenerates bit-for-bit with\n", opts.Seed, opts.Scale)
	fmt.Fprintf(w, "`mvcom-bench -fig all -seed %d -scale %g`.\n", opts.Seed, opts.Scale)
	for _, id := range ids {
		start := time.Now()
		res, err := Run(id, opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		fmt.Fprintf(w, "\n## Fig. %s — %s\n\n", res.ID, res.Title)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "- %s\n", n)
		}
		if len(res.Notes) > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "| series | final %s (at %s) |\n|---|---|\n", res.YLabel, res.XLabel)
		for _, s := range res.Series {
			if len(s.Y) == 0 {
				continue
			}
			fmt.Fprintf(w, "| %s | %.4g (at %.4g) |\n", s.Label, s.Y[len(s.Y)-1], s.X[len(s.X)-1])
		}
		fmt.Fprintf(w, "\n_%d series, generated in %s_\n", len(res.Series), time.Since(start).Round(time.Millisecond))
	}
	return nil
}
