package experiments

import (
	"fmt"

	"mvcom/internal/baseline"
	"mvcom/internal/core"
	"mvcom/internal/metrics"
	"mvcom/internal/obs"
	"mvcom/internal/randx"
	"mvcom/internal/stats"
)

func baselineSA(seed int64, iters int) core.Solver {
	return baseline.SA{Seed: seed, Iterations: iters}
}

func baselineDP() core.Solver { return baseline.DP{} }

func baselineWOA(seed int64, iters int) core.Solver {
	woaIters := iters / 40
	if woaIters < 50 {
		woaIters = 50
	}
	return baseline.WOA{Seed: seed, Iterations: woaIters, Whales: 30}
}

// Fig2a measures the two-phase latency versus network size: formation
// latency dominates and grows roughly linearly as nodes are added
// (Elastico measurement, Fig. 2a).
func Fig2a(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	const committeeSize = 16
	networkSizes := []int{200, 400, 600, 800, 1200, 1600}
	formation := Series{Label: "formation"}
	consensus := Series{Label: "consensus"}
	for _, nodes := range networkSizes {
		n := scaleInt(nodes, opts.Scale, committeeSize*2)
		committees := n / committeeSize
		p, err := measurementPipeline(opts.Seed, committees, committeeSize, opts.Obs)
		if err != nil {
			return FigureResult{}, err
		}
		reports, _, err := p.Measure()
		if err != nil {
			return FigureResult{}, err
		}
		var fSum, cSum float64
		for _, r := range reports {
			fSum += r.Formation.Seconds()
			cSum += r.Consensus.Seconds()
		}
		k := float64(len(reports))
		formation.X = append(formation.X, float64(committees*committeeSize))
		formation.Y = append(formation.Y, fSum/k)
		consensus.X = append(consensus.X, float64(committees*committeeSize))
		consensus.Y = append(consensus.Y, cSum/k)
	}
	res := FigureResult{
		ID:     "2a",
		Title:  "Two-phase latency vs network size",
		XLabel: "nodes",
		YLabel: "latency (s)",
		Series: []Series{formation, consensus},
	}
	if fit, err := stats.FitLine(formation.X, formation.Y); err == nil {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"formation latency linear fit: slope=%.4f s/node, R2=%.3f", fit.Slope, fit.R2))
	}
	return res, nil
}

// Fig2b measures the CDFs of formation latency and consensus latency for
// one network size (Fig. 2b).
func Fig2b(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	committees := scaleInt(60, opts.Scale, 8)
	p, err := measurementPipeline(opts.Seed, committees, 16, opts.Obs)
	if err != nil {
		return FigureResult{}, err
	}
	var formation, consensus []float64
	// Several epochs to populate the CDF.
	for e := 0; e < 5; e++ {
		reports, _, err := p.Measure()
		if err != nil {
			return FigureResult{}, err
		}
		for _, r := range reports {
			formation = append(formation, r.Formation.Seconds())
			consensus = append(consensus, r.Consensus.Seconds())
		}
	}
	toSeries := func(label string, xs []float64) Series {
		s := Series{Label: label}
		for _, p := range stats.ECDF(xs) {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Fraction)
		}
		return s
	}
	return FigureResult{
		ID:     "2b",
		Title:  "CDF of two-phase latency components",
		XLabel: "latency (s)",
		YLabel: "CDF",
		Series: []Series{toSeries("formation", formation), toSeries("consensus", consensus)},
		Notes: []string{
			fmt.Sprintf("samples per component: %d", len(formation)),
		},
	}, nil
}

// Fig8 plots SE convergence for Γ ∈ {1,5,10,15,20,25} with |I|=500,
// Ĉ=500K, α=1.5 (Fig. 8): more parallel explorers converge faster and the
// benefit saturates around Γ=10.
func Fig8(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	nShards := scaleInt(500, opts.Scale, 30)
	capacity := scaleInt(500_000, opts.Scale, 30_000)
	maxIters := 20 * nShards // budget scales with the state space
	rng := randx.New(opts.Seed)
	in := paperInstance(rng, nShards, capacity, 1.5, 0)

	grid := metrics.Grid(maxIters, 60)
	res := FigureResult{
		ID:     "8",
		Title:  "SE convergence vs number of parallel threads Γ",
		XLabel: "iteration",
		YLabel: "utility",
		Notes: []string{
			fmt.Sprintf("|I|=%d capacity=%d alpha=1.5", nShards, capacity),
		},
	}
	for _, gamma := range []int{1, 5, 10, 15, 20, 25} {
		se := core.NewSE(core.SEConfig{
			Seed: opts.Seed, Gamma: gamma, Workers: opts.Workers,
			MaxIters: maxIters, ConvergenceWindow: maxIters,
			Adaptive: opts.Adaptive, Obs: obs.NewSEObserver(opts.Obs),
		})
		_, trace, err := se.Solve(in.Clone())
		if err != nil {
			return FigureResult{}, fmt.Errorf("gamma %d: %w", gamma, err)
		}
		ys, err := metrics.Resample(trace, grid)
		if err != nil {
			return FigureResult{}, err
		}
		s := Series{Label: fmt.Sprintf("Γ=%d", gamma)}
		for i, g := range grid {
			s.X = append(s.X, float64(g))
			s.Y = append(s.Y, ys[i])
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig9a exercises dynamic leave-and-rejoin handling with |I|=50, Ĉ=40K,
// α=1.5, Γ=1 (Fig. 9a): the utility dips when a committee fails and
// re-converges after it recovers.
func Fig9a(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	nShards := scaleInt(50, opts.Scale, 16)
	capacity := scaleInt(40_000, opts.Scale, 12_000)
	maxIters := scaleInt(3000, opts.Scale, 900)
	rng := randx.New(opts.Seed)
	in := paperInstance(rng, nShards, capacity, 1.5, 0.5)
	if err := in.Validate(); err != nil {
		return FigureResult{}, err
	}

	// Fail the largest arrived shard a third of the way in (stragglers
	// are never candidates); it recovers at two thirds.
	target := -1
	for _, i := range in.Arrived() {
		if target < 0 || in.Sizes[i] > in.Sizes[target] {
			target = i
		}
	}
	if target < 0 {
		return FigureResult{}, core.ErrNoCandidates
	}
	events := []core.Event{
		{AtIteration: maxIters / 3, Kind: core.EventLeave, Index: target},
		{AtIteration: 2 * maxIters / 3, Kind: core.EventJoin, Index: target,
			Size: in.Sizes[target], Latency: in.Latencies[target]},
	}
	se := core.NewSE(core.SEConfig{Seed: opts.Seed, Gamma: 1, Workers: opts.Workers, MaxIters: maxIters, Adaptive: opts.Adaptive, Obs: obs.NewSEObserver(opts.Obs)})
	_, trace, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		return FigureResult{}, err
	}
	s := Series{Label: "SE"}
	for _, p := range trace {
		s.X = append(s.X, float64(p.Iteration))
		s.Y = append(s.Y, p.Utility)
	}
	return FigureResult{
		ID:     "9a",
		Title:  "Dynamic leave & rejoin of a committee",
		XLabel: "iteration",
		YLabel: "best utility",
		Series: []Series{s},
		Notes: []string{
			fmt.Sprintf("|I|=%d capacity=%d alpha=1.5 gamma=1; leave@%d rejoin@%d (shard %d)",
				nShards, capacity, maxIters/3, 2*maxIters/3, target),
		},
	}, nil
}

// Fig9b exercises consecutive joins with |I|=100, Ĉ=80K, α=1.5, Γ=1
// (Fig. 9b): the chain re-converges within a few hundred iterations after
// each join.
func Fig9b(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	nShards := scaleInt(100, opts.Scale, 20)
	capacity := scaleInt(80_000, opts.Scale, 16_000)
	maxIters := scaleInt(4000, opts.Scale, 1200)
	rng := randx.New(opts.Seed)
	// Start with 80% of the committees; the rest join consecutively.
	start := nShards * 4 / 5
	full := paperInstance(rng, nShards, capacity, 1.5, 0)
	if err := full.Validate(); err != nil {
		return FigureResult{}, err
	}
	in := core.Instance{
		Sizes:     append([]int(nil), full.Sizes[:start]...),
		Latencies: append([]float64(nil), full.Latencies[:start]...),
		DDL:       full.DDL,
		Alpha:     full.Alpha,
		Capacity:  full.Capacity,
		Nmin:      start / 2,
	}
	var events []core.Event
	joiners := nShards - start
	for k := 0; k < joiners; k++ {
		lat := full.Latencies[start+k]
		if lat > full.DDL {
			lat = full.DDL // joiners arrive inside the admission window
		}
		events = append(events, core.Event{
			AtIteration: (k + 1) * maxIters / (joiners + 2),
			Kind:        core.EventJoin,
			Index:       -1,
			Size:        full.Sizes[start+k],
			Latency:     lat,
		})
	}
	se := core.NewSE(core.SEConfig{Seed: opts.Seed, Gamma: 1, Workers: opts.Workers, MaxIters: maxIters, Adaptive: opts.Adaptive, Obs: obs.NewSEObserver(opts.Obs)})
	_, trace, err := se.SolveOnline(in, events)
	if err != nil {
		return FigureResult{}, err
	}
	s := Series{Label: "SE"}
	for _, p := range trace {
		s.X = append(s.X, float64(p.Iteration))
		s.Y = append(s.Y, p.Utility)
	}
	return FigureResult{
		ID:     "9b",
		Title:  "Consecutive committee joins",
		XLabel: "iteration",
		YLabel: "best utility",
		Series: []Series{s},
		Notes: []string{
			fmt.Sprintf("start=%d committees, %d joins, capacity=%d", start, joiners, capacity),
		},
	}, nil
}

// Fig10 compares the Valuable Degree of the four algorithms with |I|=500,
// Ĉ=500K, α=1.5, Γ=25 (Fig. 10).
func Fig10(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	nShards := scaleInt(500, opts.Scale, 30)
	capacity := scaleInt(500_000, opts.Scale, 30_000)
	maxIters := 20 * nShards
	rng := randx.New(opts.Seed)
	in := paperInstance(rng, nShards, capacity, 1.5, 0)
	if err := in.Validate(); err != nil {
		return FigureResult{}, err
	}
	res := FigureResult{
		ID:     "10",
		Title:  "Valuable Degree of the chosen committees",
		XLabel: "algorithm index",
		YLabel: "valuable degree (Σ s_i / Π_i)",
		Notes: []string{
			fmt.Sprintf("|I|=%d capacity=%d alpha=1.5 gamma=25", nShards, capacity),
		},
	}
	for idx, s := range solverSet(opts.Seed, 25, maxIters, opts.Workers, opts.Adaptive, opts.Obs) {
		sol, _, err := s.Solve(in.Clone())
		if err != nil {
			return FigureResult{}, fmt.Errorf("%s: %w", s.Name(), err)
		}
		res.Series = append(res.Series, Series{
			Label: s.Name(),
			X:     []float64{float64(idx)},
			Y:     []float64{metrics.ValuableDegree(&in, sol)},
		})
	}
	return res, nil
}

// convergenceComparison runs all four algorithms on one instance and
// returns their resampled convergence curves plus converged utilities.
func convergenceComparison(opts Options, in core.Instance, gamma, maxIters int) ([]Series, map[string]float64, error) {
	grid := metrics.Grid(maxIters, 50)
	var series []Series
	finals := make(map[string]float64)
	for _, s := range solverSet(opts.Seed, gamma, maxIters, opts.Workers, opts.Adaptive, opts.Obs) {
		sol, trace, err := s.Solve(in.Clone())
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		ys, err := metrics.Resample(trace, grid)
		if err != nil {
			return nil, nil, err
		}
		out := Series{Label: s.Name()}
		for i, g := range grid {
			out.X = append(out.X, float64(g))
			out.Y = append(out.Y, ys[i])
		}
		series = append(series, out)
		finals[s.Name()] = sol.Utility
	}
	return series, finals, nil
}

// Fig11 compares convergence across |I| ∈ {500, 800, 1000} with
// Ĉ = 1000·|I|, α=1.5, Γ=10 (Fig. 11): SE converges 20–30% above the
// baselines and the gap widens with |I|.
func Fig11(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	res := FigureResult{
		ID:     "11",
		Title:  "Convergence while varying |I|",
		XLabel: "iteration",
		YLabel: "utility",
	}
	for _, size := range []int{500, 800, 1000} {
		nShards := scaleInt(size, opts.Scale, 30)
		capacity := nShards * 1000
		maxIters := 40 * nShards // budget scales with the state space
		rng := randx.New(opts.Seed + int64(size))
		in := paperInstance(rng, nShards, capacity, 1.5, 0)
		series, finals, err := convergenceComparison(opts, in, 10, maxIters)
		if err != nil {
			return FigureResult{}, fmt.Errorf("|I|=%d: %w", size, err)
		}
		for _, s := range series {
			s.Label = fmt.Sprintf("|I|=%d/%s", size, s.Label)
			res.Series = append(res.Series, s)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"|I|=%d: SE=%.0f SA=%.0f DP=%.0f WOA=%.0f",
			nShards, finals["SE"], finals["SA"], finals["DP"], finals["WOA"]))
	}
	return res, nil
}

// Fig12 compares convergence across α ∈ {1.5, 5, 10} with |I|=50, Ĉ=50K,
// Γ=25 (Fig. 12): utilities grow with α and SE keeps the lead.
func Fig12(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	res := FigureResult{
		ID:     "12",
		Title:  "Convergence while varying alpha",
		XLabel: "iteration",
		YLabel: "utility",
	}
	nShards := scaleInt(50, opts.Scale, 16)
	capacity := scaleInt(50_000, opts.Scale, 16_000)
	maxIters := scaleInt(3000, opts.Scale, 900)
	for _, alpha := range []float64{1.5, 5, 10} {
		rng := randx.New(opts.Seed)
		in := paperInstance(rng, nShards, capacity, alpha, 0)
		series, finals, err := convergenceComparison(opts, in, 25, maxIters)
		if err != nil {
			return FigureResult{}, fmt.Errorf("alpha=%g: %w", alpha, err)
		}
		for _, s := range series {
			s.Label = fmt.Sprintf("α=%g/%s", alpha, s.Label)
			res.Series = append(res.Series, s)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"alpha=%g: SE=%.0f SA=%.0f DP=%.0f WOA=%.0f",
			alpha, finals["SE"], finals["SA"], finals["DP"], finals["WOA"]))
	}
	return res, nil
}

// Fig13 reports the distribution of converged utilities over repeated runs
// for α ∈ {1.5, 5, 10}, |I|=50, Ĉ=50K, Γ=25 (Fig. 13's box plots). Series
// Y values are [min, Q1, median, Q3, max] at X = [0..4].
func Fig13(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	res := FigureResult{
		ID:     "13",
		Title:  "Distribution of converged utilities",
		XLabel: "box statistic (0=min 1=Q1 2=median 3=Q3 4=max)",
		YLabel: "utility",
	}
	nShards := scaleInt(50, opts.Scale, 16)
	capacity := scaleInt(50_000, opts.Scale, 16_000)
	maxIters := scaleInt(2500, opts.Scale, 700)
	repeats := scaleInt(10, opts.Scale, 4)
	for _, alpha := range []float64{1.5, 5, 10} {
		rng := randx.New(opts.Seed)
		in := paperInstance(rng, nShards, capacity, alpha, 0)
		perAlgo := make(map[string][]float64)
		for rep := 0; rep < repeats; rep++ {
			for _, s := range solverSet(opts.Seed+int64(rep*131), 25, maxIters, opts.Workers, opts.Adaptive, opts.Obs) {
				sol, _, err := s.Solve(in.Clone())
				if err != nil {
					return FigureResult{}, fmt.Errorf("alpha=%g rep=%d %s: %w", alpha, rep, s.Name(), err)
				}
				perAlgo[s.Name()] = append(perAlgo[s.Name()], sol.Utility)
			}
		}
		for _, name := range []string{"SE", "SA", "DP", "WOA"} {
			box, err := stats.Box(perAlgo[name])
			if err != nil {
				return FigureResult{}, err
			}
			res.Series = append(res.Series, Series{
				Label: fmt.Sprintf("α=%g/%s", alpha, name),
				X:     []float64{0, 1, 2, 3, 4},
				Y:     []float64{box.Min, box.Q1, box.Median, box.Q3, box.Max},
			})
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf("repeats per algorithm: %d", repeats))
	return res, nil
}

// Fig14 runs the online case with 23 consecutive joining events for
// α ∈ {1.5, 5, 10}, |I|=50, Ĉ=40K, Γ=25 (Fig. 14). SE handles the events
// online (SolveOnline); the offline baselines re-solve on the final
// candidate set, which is the strongest possible showing for them.
func Fig14(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	res := FigureResult{
		ID:     "14",
		Title:  "Online execution with consecutive joining events",
		XLabel: "alpha",
		YLabel: "converged utility",
	}
	nShards := scaleInt(50, opts.Scale, 20)
	capacity := scaleInt(40_000, opts.Scale, 16_000)
	maxIters := scaleInt(4000, opts.Scale, 1200)
	joiners := scaleInt(23, opts.Scale, 8)
	start := nShards - joiners
	if start < 4 {
		start = 4
	}
	utilities := make(map[string][]float64)
	alphas := []float64{1.5, 5, 10}
	for _, alpha := range alphas {
		rng := randx.New(opts.Seed)
		full := paperInstance(rng, nShards, capacity, alpha, 0)
		if err := full.Validate(); err != nil {
			return FigureResult{}, err
		}
		full.Nmin = nShards / 2
		in := core.Instance{
			Sizes:     append([]int(nil), full.Sizes[:start]...),
			Latencies: append([]float64(nil), full.Latencies[:start]...),
			DDL:       full.DDL,
			Alpha:     full.Alpha,
			Capacity:  full.Capacity,
			Nmin:      start / 2,
		}
		var events []core.Event
		for k := 0; k < nShards-start; k++ {
			lat := full.Latencies[start+k]
			if lat > full.DDL {
				lat = full.DDL
			}
			events = append(events, core.Event{
				AtIteration: (k + 1) * maxIters / (nShards - start + 2),
				Kind:        core.EventJoin,
				Index:       -1,
				Size:        full.Sizes[start+k],
				Latency:     lat,
			})
		}
		se := core.NewSE(core.SEConfig{Seed: opts.Seed, Gamma: 25, Workers: opts.Workers, MaxIters: maxIters, Adaptive: opts.Adaptive, Obs: obs.NewSEObserver(opts.Obs)})
		seSol, _, err := se.SolveOnline(in.Clone(), events)
		if err != nil {
			return FigureResult{}, fmt.Errorf("alpha=%g SE online: %w", alpha, err)
		}
		utilities["SE"] = append(utilities["SE"], seSol.Utility)
		// Offline baselines on the final candidate set.
		finalIn := full.Clone()
		for _, s := range solverSet(opts.Seed, 25, maxIters, opts.Workers, opts.Adaptive, opts.Obs)[1:] {
			sol, _, err := s.Solve(finalIn.Clone())
			if err != nil {
				return FigureResult{}, fmt.Errorf("alpha=%g %s: %w", alpha, s.Name(), err)
			}
			utilities[s.Name()] = append(utilities[s.Name()], sol.Utility)
		}
	}
	for _, name := range []string{"SE", "SA", "DP", "WOA"} {
		s := Series{Label: name}
		for i, a := range alphas {
			s.X = append(s.X, a)
			s.Y = append(s.Y, utilities[name][i])
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d committees start, %d join online, capacity=%d, Nmin=50%%", start, nShards-start, capacity))
	return res, nil
}
