package experiments

import (
	"fmt"

	"mvcom/internal/baseline"
	"mvcom/internal/core"
	"mvcom/internal/epoch"
	"mvcom/internal/metrics"
	"mvcom/internal/obs"
	"mvcom/internal/txgen"
)

// ExtThroughput is an experiment beyond the paper's figures: it runs the
// *full* five-stage pipeline for several epochs under each scheduling
// policy and reports end-to-end root-chain throughput (committed TXs per
// 1000 s of deadline) and total cumulative age — the quantities the
// paper's introduction motivates but never measures directly. Series: one
// per scheduler; X = committee count, Y = throughput; the age totals are
// recorded in Notes.
func ExtThroughput(opts Options) (FigureResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return FigureResult{}, err
	}
	committeeCounts := []int{
		scaleInt(20, opts.Scale, 6),
		scaleInt(40, opts.Scale, 10),
		scaleInt(60, opts.Scale, 14),
	}
	const epochs = 3
	schedulers := []struct {
		name string
		make func(seed int64) epoch.Scheduler
	}{
		{name: "SE", make: func(seed int64) epoch.Scheduler {
			return epoch.SolverScheduler{Solver: core.NewSE(core.SEConfig{
				Seed: seed, Gamma: 4, Workers: opts.Workers, MaxIters: 4000,
				Adaptive: opts.Adaptive, Obs: obs.NewSEObserver(opts.Obs),
			})}
		}},
		{name: "Greedy", make: func(seed int64) epoch.Scheduler {
			return epoch.SolverScheduler{Solver: baseline.Greedy{}}
		}},
		{name: "AcceptAll", make: func(seed int64) epoch.Scheduler {
			return epoch.AcceptAll{}
		}},
	}
	res := FigureResult{
		ID:     "ext1",
		Title:  "End-to-end root-chain throughput (full pipeline)",
		XLabel: "committees",
		YLabel: "committed TXs per 1000 s",
	}
	series := make([]Series, len(schedulers))
	for si := range series {
		series[si].Label = schedulers[si].name
	}
	for _, committees := range committeeCounts {
		for si, sc := range schedulers {
			p, err := epoch.NewPipeline(epoch.Config{
				Committees:    committees,
				CommitteeSize: 8,
				Trace: txgen.Config{
					Blocks:  committees * 3,
					MeanTxs: 1200,
				},
				Seed: opts.Seed, // identical world for every scheduler
				Obs:  obs.NewEpochObserver(opts.Obs),
			})
			if err != nil {
				return FigureResult{}, err
			}
			capacity := p.Trace().TotalTxs() / 3
			nmin := committees / 4
			results, err := p.RunEpochs(epochs, sc.make(opts.Seed), 1.5, capacity, nmin)
			if err != nil {
				return FigureResult{}, fmt.Errorf("%s |I|=%d: %w", sc.name, committees, err)
			}
			var outcomes []metrics.EpochOutcome
			var ddlSum float64
			for _, r := range results {
				outcomes = append(outcomes, metrics.Outcome(r.Epoch, &r.Instance, r.Solution))
				ddlSum += r.DDL
			}
			agg := metrics.AggregateOutcomes(outcomes)
			throughput := 0.0
			if ddlSum > 0 {
				throughput = float64(agg.TotalTxs) / ddlSum * 1000
			}
			series[si].X = append(series[si].X, float64(committees))
			series[si].Y = append(series[si].Y, throughput)
			res.Notes = append(res.Notes, fmt.Sprintf(
				"|I|=%d %s: txs=%d age=%.0fs utility=%.0f",
				committees, sc.name, agg.TotalTxs, agg.TotalAge, agg.TotalUtility))
		}
	}
	res.Series = series
	return res, nil
}
