package experiments

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"mvcom/internal/randx"
	"mvcom/internal/stats"
	"mvcom/internal/txgen"
)

// smallOpts shrinks every figure to CI size.
func smallOpts() Options { return Options{Seed: 7, Scale: 0.05} }

func TestOptionsValidation(t *testing.T) {
	if _, err := Run("8", Options{Scale: -1}); !errors.Is(err, ErrBadScale) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run("8", Options{Scale: 2}); !errors.Is(err, ErrBadScale) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run("nope", smallOpts()); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v", err)
	}
}

func TestIDsCoverAllDataFigures(t *testing.T) {
	ids := IDs()
	want := []string{"10", "11", "12", "13", "14", "2a", "2b", "8", "9a", "9b", "ext1"}
	if len(ids) != len(want) {
		t.Fatalf("ids %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v, want %v", ids, want)
		}
	}
}

func TestRunAcceptsFigPrefix(t *testing.T) {
	if _, err := Run("fig9a", smallOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestPaperInstanceShape(t *testing.T) {
	rng := randx.New(1)
	in := paperInstance(rng, 40, 40000, 1.5, 0.5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nmin counts against the arrived (80%) set: 0.5 × 32 = 16.
	if in.NumShards() != 40 || in.Nmin != 16 || in.Capacity != 40000 {
		t.Fatalf("instance %+v", in)
	}
	// The DDL sits at the 80% arrival percentile, so ~20% straggle.
	arrived := len(in.Arrived())
	if arrived < 30 || arrived > 34 {
		t.Fatalf("arrived %d of 40, want ~32", arrived)
	}
	total := 0
	for _, s := range in.Sizes {
		total += s
	}
	// Total load ≈ 2× capacity (the binding-knapsack design point).
	if ratio := float64(total) / 40000; ratio < 1.4 || ratio > 2.8 {
		t.Fatalf("load factor %.2f, want ~2", ratio)
	}
	for _, l := range in.Latencies {
		if l <= 0 {
			t.Fatalf("latency %v", l)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	res, err := Fig2a(Options{Seed: 3, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series %d", len(res.Series))
	}
	formation, consensus := res.Series[0], res.Series[1]
	// Formation dominates consensus at every size (Fig. 2a's headline).
	for i := range formation.Y {
		if formation.Y[i] <= consensus.Y[i] {
			t.Fatalf("consensus above formation at x=%v", formation.X[i])
		}
	}
}

func TestFig2bCDFMonotone(t *testing.T) {
	res, err := Fig2b(Options{Seed: 3, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] || s.X[i] < s.X[i-1] {
				t.Fatalf("series %s not monotone", s.Label)
			}
		}
		if len(s.Y) == 0 || math.Abs(s.Y[len(s.Y)-1]-1) > 1e-9 {
			t.Fatalf("series %s does not reach 1", s.Label)
		}
	}
}

func TestFig8GammaOrdering(t *testing.T) {
	res, err := Fig8(Options{Seed: 5, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series %d", len(res.Series))
	}
	// Γ=25 final utility must be at least Γ=1's (more explorers cannot
	// hurt the best-of race).
	g1 := res.Series[0].Y[len(res.Series[0].Y)-1]
	g25 := res.Series[5].Y[len(res.Series[5].Y)-1]
	if g25 < g1 {
		t.Fatalf("Γ=25 converged to %v below Γ=1's %v", g25, g1)
	}
	// Curves are monotone best-so-far traces.
	for _, s := range res.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("%s: utility regressed", s.Label)
			}
		}
	}
}

func TestFig9aDipAndRecovery(t *testing.T) {
	res, err := Fig9a(Options{Seed: 11, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series[0]
	if len(s.Y) < 3 {
		t.Fatalf("trace too short: %d", len(s.Y))
	}
	// The final utility is positive and the trace contains at least one
	// decrease (the leave-event dip).
	dip := false
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			dip = true
		}
	}
	if !dip {
		t.Log("no visible dip this seed — leave may not have hit the best solution")
	}
	if s.Y[len(s.Y)-1] <= 0 {
		t.Fatalf("final utility %v", s.Y[len(s.Y)-1])
	}
}

func TestFig9bJoinsGrowUtility(t *testing.T) {
	res, err := Fig9b(Options{Seed: 11, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series[0]
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	if last < first {
		t.Fatalf("utility shrank across joins: %v -> %v", first, last)
	}
}

func TestFig10SEHighestValuableDegree(t *testing.T) {
	res, err := Fig10(Options{Seed: 2, Scale: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	vd := make(map[string]float64)
	for _, s := range res.Series {
		vd[s.Label] = s.Y[0]
	}
	if len(vd) != 4 {
		t.Fatalf("algorithms %v", vd)
	}
	for name, v := range vd {
		if v <= 0 {
			t.Fatalf("%s valuable degree %v", name, v)
		}
	}
	// The headline Fig. 10 claim: SE's valuable degree tops the baselines.
	for _, name := range []string{"SA", "DP", "WOA"} {
		if vd["SE"] < vd[name]*0.95 {
			t.Fatalf("SE VD %.2f clearly below %s's %.2f", vd["SE"], name, vd[name])
		}
	}
}

func TestFig11SEWins(t *testing.T) {
	res, err := Fig11(Options{Seed: 2, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 12 { // 3 sizes × 4 algorithms
		t.Fatalf("series %d", len(res.Series))
	}
	finals := make(map[string]float64)
	for _, s := range res.Series {
		finals[s.Label] = s.Y[len(s.Y)-1]
	}
	// At CI scale DP is nearly exact, so allow ties within 3%; the
	// paper-scale gap is validated by EXPERIMENTS.md runs.
	for _, size := range []string{"|I|=500", "|I|=800", "|I|=1000"} {
		se := finals[size+"/SE"]
		for _, b := range []string{"SA", "DP", "WOA"} {
			if se < 0.97*finals[size+"/"+b] {
				t.Fatalf("%s: SE %.0f below %s %.0f", size, se, b, finals[size+"/"+b])
			}
		}
	}
}

func TestFig12AlphaGrowsUtility(t *testing.T) {
	res, err := Fig12(Options{Seed: 2, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	finals := make(map[string]float64)
	for _, s := range res.Series {
		finals[s.Label] = s.Y[len(s.Y)-1]
	}
	if finals["α=10/SE"] <= finals["α=1.5/SE"] {
		t.Fatalf("alpha=10 utility %.0f not above alpha=1.5's %.0f",
			finals["α=10/SE"], finals["α=1.5/SE"])
	}
	for _, alpha := range []string{"α=1.5", "α=5", "α=10"} {
		se := finals[alpha+"/SE"]
		for _, b := range []string{"SA", "DP", "WOA"} {
			if se < 0.97*finals[alpha+"/"+b] {
				t.Fatalf("%s: SE %.0f below %s %.0f", alpha, se, b, finals[alpha+"/"+b])
			}
		}
	}
}

func TestFig13BoxesOrdered(t *testing.T) {
	res, err := Fig13(Options{Seed: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 12 {
		t.Fatalf("series %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Y) != 5 {
			t.Fatalf("%s: %d box stats", s.Label, len(s.Y))
		}
		for i := 1; i < 5; i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("%s: box stats out of order %v", s.Label, s.Y)
			}
		}
	}
}

func TestFig14SELeadsOnline(t *testing.T) {
	res, err := Fig14(Options{Seed: 2, Scale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	finals := make(map[string][]float64)
	for _, s := range res.Series {
		finals[s.Label] = s.Y
	}
	if len(finals["SE"]) != 3 {
		t.Fatalf("SE series %v", finals["SE"])
	}
	// Utilities grow with alpha for every algorithm.
	for name, ys := range finals {
		if ys[2] <= ys[0] {
			t.Fatalf("%s: utility did not grow with alpha: %v", name, ys)
		}
	}
}

func TestWriteTSV(t *testing.T) {
	res := FigureResult{
		ID: "x", Title: "t", XLabel: "a", YLabel: "b",
		Notes:  []string{"note"},
		Series: []Series{{Label: "s", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "s\t1\t3") || !strings.Contains(out, "s\t2\t4") {
		t.Fatalf("tsv output %q", out)
	}
	if !strings.Contains(out, "# note") {
		t.Fatal("note missing")
	}
}

func TestPaperInstanceSizeLatencyCorrelated(t *testing.T) {
	// The paper's motivating dilemma requires slow committees to hold
	// large shards; verify the generator couples them.
	rng := randx.New(9)
	in := paperInstance(rng, 400, 400000, 1.5, 0)
	xs := make([]float64, in.NumShards())
	ys := make([]float64, in.NumShards())
	for i := range xs {
		xs[i] = in.Latencies[i]
		ys[i] = float64(in.Sizes[i])
	}
	rho, err := stats.Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.3 {
		t.Fatalf("size-latency correlation %.3f, want clearly positive", rho)
	}
}

func TestReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Report(&buf, smallOpts(), []string{"9a", "2b"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# MVCom figure report", "## Fig. 9a", "## Fig. 2b", "| SE |", "| formation |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:200])
		}
	}
}

func TestReportBadFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := Report(&buf, smallOpts(), []string{"zz"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestReportBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := Report(&buf, Options{Scale: 9}, nil); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestExtThroughputShape(t *testing.T) {
	res, err := ExtThroughput(Options{Seed: 4, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series %d", len(res.Series))
	}
	byName := make(map[string][]float64)
	for _, s := range res.Series {
		if len(s.Y) != 3 {
			t.Fatalf("%s has %d points", s.Label, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s throughput %v", s.Label, y)
			}
		}
		byName[s.Label] = s.Y
	}
	for _, name := range []string{"SE", "Greedy", "AcceptAll"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing scheduler %s", name)
		}
	}
}

func TestTraceInstanceDeterministicAndBound(t *testing.T) {
	tr := txgen.Generate(randx.New(7), txgen.Config{Blocks: 120, MeanTxs: 900})
	a, err := TraceInstance(tr, 42, 30, 10000, 1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceInstance(tr, 42, 30, 10000, 1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same trace + seed produced different instances")
	}
	c, err := TraceInstance(tr, 43, 30, 10000, 1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Sizes, c.Sizes) && reflect.DeepEqual(a.Latencies, c.Latencies) {
		t.Fatal("different seeds produced an identical instance")
	}
	// Load factor: total size lands near 2x capacity (the coupling rescale
	// is mean-preserving up to integer truncation).
	total := 0
	for _, s := range a.Sizes {
		total += s
	}
	if total < 15000 || total > 25000 {
		t.Fatalf("total size %d, want ~2x capacity (20000)", total)
	}
	if a.Nmin < 1 || a.DDL <= 0 {
		t.Fatalf("degenerate instance: Nmin=%d DDL=%v", a.Nmin, a.DDL)
	}

	if _, err := TraceInstance(nil, 1, 10, 1000, 1.5, 0.5); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := TraceInstance(tr, 1, 0, 1000, 1.5, 0.5); err == nil {
		t.Fatal("zero shards accepted")
	}
}
