// Package experiments regenerates every data figure of the MVCom paper
// (Figs. 2 and 8–14). Each runner builds the paper's scenario — shard
// sizes from the synthetic Bitcoin trace, two-phase latencies from the
// PoW/PBFT epoch pipeline — executes the SE algorithm and the baselines,
// and returns the plotted series in a renderer-agnostic FigureResult.
//
// Runners accept an Options.Scale in (0, 1] so that continuous-integration
// and benchmark runs can execute reduced-size versions of each experiment;
// Scale = 1 reproduces the paper's parameters.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"mvcom/internal/core"
	"mvcom/internal/epoch"
	"mvcom/internal/obs"
	"mvcom/internal/randx"
	"mvcom/internal/txgen"
)

// Errors returned by the harness.
var (
	ErrUnknownFigure = errors.New("experiments: unknown figure")
	ErrBadScale      = errors.New("experiments: scale must be in (0, 1]")
)

// Options tunes a figure run.
type Options struct {
	// Seed drives all randomness. Default 1.
	Seed int64
	// Scale in (0, 1] shrinks instance sizes and iteration budgets; 1
	// reproduces the paper's parameters. Default 1.
	Scale float64
	// Workers bounds the goroutines the SE kernel spreads its Γ explorers
	// over (core.SEConfig.Workers); 0 means GOMAXPROCS, 1 forces the
	// serial kernel. Results are identical either way — this knob only
	// trades wall-clock time.
	Workers int
	// Obs, when non-nil, receives live instrumentation from every SE
	// solver and epoch pipeline a runner builds (kernel counters, stage
	// latency histograms, the cumulative-age gauge). Nil disables every
	// hook; results are identical either way.
	Obs *obs.Registry
	// Adaptive turns on the SE kernel's annealed β/Γ schedule
	// (core.SEConfig.Adaptive) in every solver a runner builds. Unlike
	// Workers this knob changes the chain's trajectory, so figure output
	// is only comparable to runs with the same setting.
	Adaptive bool
}

func (o Options) withDefaults() (Options, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Scale <= 0 || o.Scale > 1 {
		return o, ErrBadScale
	}
	return o, nil
}

// scaleInt shrinks n by the scale with a floor.
func scaleInt(n int, scale float64, floor int) int {
	v := int(float64(n) * scale)
	if v < floor {
		v = floor
	}
	return v
}

// Series is one plotted line/bar group: Y against X with a label.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// FigureResult is the renderer-agnostic output of one figure runner.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes records scenario parameters and qualitative checks.
	Notes []string
}

// WriteTSV renders the figure as tab-separated rows:
// series-label <TAB> x <TAB> y.
func (f FigureResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n# x: %s, y: %s\n", f.ID, f.Title, f.XLabel, f.YLabel); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s\t%g\t%g\n", s.Label, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Runner is a figure-regeneration function.
type Runner func(Options) (FigureResult, error)

// Registry maps figure IDs to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"2a":   Fig2a,
		"2b":   Fig2b,
		"8":    Fig8,
		"9a":   Fig9a,
		"9b":   Fig9b,
		"10":   Fig10,
		"11":   Fig11,
		"12":   Fig12,
		"13":   Fig13,
		"14":   Fig14,
		"ext1": ExtThroughput,
	}
}

// Run executes one figure by ID.
func Run(id string, opts Options) (FigureResult, error) {
	r, ok := Registry()[strings.ToLower(strings.TrimPrefix(id, "fig"))]
	if !ok {
		return FigureResult{}, fmt.Errorf("%w: %q", ErrUnknownFigure, id)
	}
	return r(opts)
}

// IDs lists the registered figures in order.
func IDs() []string {
	m := Registry()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PaperInstance builds a Figs. 8–14 style scheduling instance from a
// seed; see paperInstance for the construction.
func PaperInstance(seed int64, nShards, capacity int, alpha, nminFrac float64) (core.Instance, error) {
	if nShards < 1 || capacity < 1 {
		return core.Instance{}, fmt.Errorf("experiments: invalid instance shape (shards=%d capacity=%d)", nShards, capacity)
	}
	in := paperInstance(randx.New(seed), nShards, capacity, alpha, nminFrac)
	if err := in.Validate(); err != nil {
		return core.Instance{}, err
	}
	return in, nil
}

// paperInstance builds a Figs. 8–14 style scheduling instance: |I| shards
// whose sizes come from the synthetic Bitcoin trace (mean size tuned so
// that total size ≈ loadFactor × capacity, making the knapsack binding but
// Nmin feasible) and whose two-phase latencies are PoW (600 s expectation)
// plus PBFT (54.5 s expectation) draws.
func paperInstance(rng *randx.RNG, nShards, capacity int, alpha float64, nminFrac float64) core.Instance {
	const loadFactor = 2.0
	meanShard := loadFactor * float64(capacity) / float64(nShards)
	tr := txgen.Generate(rng.Split(), txgen.Config{
		Blocks:  nShards,
		MeanTxs: meanShard,
		Sigma:   0.5,
		MinTxs:  int(meanShard/8) + 1,
		MaxTxs:  int(meanShard * 6),
	})
	shards, err := tr.IntoShards(rng.Split(), nShards)
	if err != nil {
		// nShards >= 1 and the trace is non-empty, so this cannot happen;
		// keep the API total by returning an empty instance the caller's
		// Validate will reject.
		return core.Instance{}
	}
	return shapeInstance(rng, txgen.ShardSizes(shards), capacity, alpha, nminFrac)
}

// TraceInstance builds one epoch's scheduling instance out of an
// externally supplied transaction trace — the input the multi-process
// cluster harness's txgen traffic-generator process produces. The
// trace's blocks are partitioned into nShards shards with a seeded
// shuffle (so epoch e of a stream is reproducible from seed+e alone),
// the shard sizes are rescaled to the same knapsack-binding load factor
// PaperInstance targets (total ≈ 2×capacity), and latencies, deadline,
// and Nmin follow the same construction.
func TraceInstance(tr *txgen.Trace, seed int64, nShards, capacity int, alpha, nminFrac float64) (core.Instance, error) {
	if tr == nil || len(tr.Blocks) == 0 {
		return core.Instance{}, errors.New("experiments: empty trace")
	}
	if nShards < 1 || capacity < 1 {
		return core.Instance{}, fmt.Errorf("experiments: invalid instance shape (shards=%d capacity=%d)", nShards, capacity)
	}
	rng := randx.New(seed)
	shards, err := tr.IntoShards(rng.Split(), nShards)
	if err != nil {
		return core.Instance{}, err
	}
	sizes := txgen.ShardSizes(shards)
	total := 0
	for _, s := range sizes {
		total += s
	}
	const loadFactor = 2.0
	if total > 0 {
		f := loadFactor * float64(capacity) / float64(total)
		for i := range sizes {
			sizes[i] = int(float64(sizes[i]) * f)
			if sizes[i] < 1 {
				sizes[i] = 1
			}
		}
	}
	in := shapeInstance(rng, sizes, capacity, alpha, nminFrac)
	if err := in.Validate(); err != nil {
		return core.Instance{}, err
	}
	return in, nil
}

// shapeInstance finishes an instance whose shard sizes are fixed: it
// draws the two-phase PoW+PBFT latencies, couples sizes to latencies
// (the straggler committee holds the largest shard, the paper's
// motivating dilemma) with a mean-preserving rescale, and derives the
// online-admission deadline and Nmin exactly as paperInstance always
// has.
func shapeInstance(rng *randx.RNG, sizes []int, capacity int, alpha, nminFrac float64) core.Instance {
	nShards := len(sizes)
	in := core.Instance{
		Sizes:     sizes,
		Latencies: make([]float64, nShards),
		Alpha:     alpha,
		Capacity:  capacity,
		Nmin:      int(nminFrac * float64(nShards)),
	}
	for i := range in.Latencies {
		formation := rng.Exponential(600)
		consensus := rng.Exponential(54.5)
		in.Latencies[i] = formation + consensus
	}
	// A committee that takes longer accumulates more transactions — the
	// paper's motivating dilemma is exactly that the straggler C3 holds
	// the largest shard. Couple sizes to latencies (the shard grows with
	// the committee's processing time) and rescale so the mean shard size
	// and the load factor are unchanged.
	meanLat := 0.0
	for _, l := range in.Latencies {
		meanLat += l
	}
	meanLat /= float64(nShards)
	var before, after float64
	for i, sz := range in.Sizes {
		before += float64(sz)
		scaled := float64(sz) * (0.35 + 0.65*in.Latencies[i]/meanLat)
		in.Sizes[i] = int(scaled)
		after += scaled
	}
	if after > 0 {
		correction := before / after
		for i := range in.Sizes {
			in.Sizes[i] = int(float64(in.Sizes[i]) * correction)
			if in.Sizes[i] < 1 {
				in.Sizes[i] = 1
			}
		}
	}
	// The deadline is the Nmax-fraction (80%) arrival instant, per the
	// paper's online admission rule; later committees are stragglers.
	sorted := append([]float64(nil), in.Latencies...)
	sort.Float64s(sorted)
	idx := int(0.8*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	in.DDL = sorted[idx]
	// Nmin counts against the arrived set, not the full committee list.
	arrived := int(0.8 * float64(nShards))
	if n := int(nminFrac * float64(arrived)); n < in.Nmin {
		in.Nmin = n
	}
	return in
}

// solverSet builds the paper's four algorithms with budgets scaled for the
// instance size. Only the SE solver is instrumented — the baselines have
// no kernel hooks.
func solverSet(seed int64, gamma, maxIters, workers int, adaptive bool, reg *obs.Registry) []core.Solver {
	return []core.Solver{
		core.NewSE(core.SEConfig{Seed: seed, Gamma: gamma, Workers: workers, MaxIters: maxIters, ConvergenceWindow: maxIters / 10, Adaptive: adaptive, Obs: obs.NewSEObserver(reg)}),
		baselineSA(seed, maxIters),
		baselineDP(),
		baselineWOA(seed, maxIters),
	}
}

// measurementPipeline builds the epoch pipeline used by Fig. 2.
func measurementPipeline(seed int64, committees, committeeSize int, reg *obs.Registry) (*epoch.Pipeline, error) {
	return epoch.NewPipeline(epoch.Config{
		Committees:    committees,
		CommitteeSize: committeeSize,
		Trace: txgen.Config{
			Blocks:  committees * 2,
			MeanTxs: 1850,
		},
		Seed: seed,
		Obs:  obs.NewEpochObserver(reg),
	})
}
