// Package integration_test exercises cross-module flows end-to-end: the
// epoch pipeline feeding the distributed scheduler, chain persistence
// across a simulated restart, and long multi-epoch runs with failures and
// carry-over.
package integration_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"mvcom/internal/baseline"
	"mvcom/internal/chain"
	"mvcom/internal/core"
	"mvcom/internal/dist"
	"mvcom/internal/epoch"
	"mvcom/internal/metrics"
	"mvcom/internal/txgen"
)

func pipelineConfig(committees int, seed int64) epoch.Config {
	return epoch.Config{
		Committees:    committees,
		CommitteeSize: 4,
		Trace:         txgen.Config{Blocks: committees * 4, MeanTxs: 800, MinTxs: 100, MaxTxs: 3000},
		Seed:          seed,
	}
}

// distScheduler adapts a distributed SE session into an epoch.Scheduler:
// every epoch's final consensus spins a coordinator plus local workers
// over loopback TCP.
type distScheduler struct {
	workers int
	seed    int64
}

func (d distScheduler) Schedule(in core.Instance) (core.Solution, error) {
	co, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Instance:      in,
		Workers:       d.workers,
		RunTimeout:    10 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1500,
		StableReports: 10,
		Seed:          d.seed,
	})
	if err != nil {
		return core.Solution{}, err
	}
	defer co.Close()
	var wg sync.WaitGroup
	for g := 0; g < d.workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = dist.Worker{ID: fmt.Sprintf("it-w%d", g)}.Run(co.Addr())
		}()
	}
	sol, _, err := co.Run()
	wg.Wait()
	return sol, err
}

func TestEpochPipelineWithDistributedScheduler(t *testing.T) {
	p, err := epoch.NewPipeline(pipelineConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	capacity := p.Trace().TotalTxs() / 2
	res, err := p.RunEpoch(distScheduler{workers: 2, seed: 1}, 1.5, capacity, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.Feasible(res.Solution.Selected) {
		t.Fatal("distributed schedule infeasible")
	}
	if res.FinalBlock == nil || res.FinalBlock.TxTotal != res.Solution.Load {
		t.Fatalf("final block %+v", res.FinalBlock)
	}
	if err := p.Chain().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestChainSurvivesRestart(t *testing.T) {
	p, err := epoch.NewPipeline(pipelineConfig(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	capacity := p.Trace().TotalTxs() / 2
	if _, err := p.RunEpochs(3, epoch.AcceptAll{}, 1.5, capacity, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Chain().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := chain.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.TipHash() != p.Chain().TipHash() {
		t.Fatal("tip hash changed across persistence")
	}
	if restored.TotalTxs() != p.Chain().TotalTxs() {
		t.Fatal("tx totals changed across persistence")
	}
}

func TestCarryOverBacklogRegimes(t *testing.T) {
	// Fig. 3's carry-over has two regimes. Under-load (capacity covers
	// each epoch's arrivals) the deferred backlog drains; over-load
	// (sustained demand above block capacity) it necessarily grows — a
	// refused committee re-enters with reduced latency, i.e. a *larger*
	// age penalty, so freshness-aware scheduling alone cannot drain an
	// overloaded system.
	run := func(capFrac float64) []int {
		p, err := epoch.NewPipeline(pipelineConfig(10, 3))
		if err != nil {
			t.Fatal(err)
		}
		capacity := int(capFrac * float64(p.Trace().TotalTxs()))
		var backlogs []int
		for e := 0; e < 10; e++ {
			res, err := p.RunEpoch(epoch.SolverScheduler{Solver: baseline.Greedy{}}, 1.5, capacity, 2)
			if err != nil {
				t.Fatal(err)
			}
			backlogs = append(backlogs, len(res.Deferred))
		}
		if err := p.Chain().Verify(); err != nil {
			t.Fatal(err)
		}
		return backlogs
	}
	underLoad := run(1.2)
	if last := underLoad[len(underLoad)-1]; last > 2 {
		t.Fatalf("under-load backlog did not drain: %v", underLoad)
	}
	overLoad := run(0.33)
	if last := overLoad[len(overLoad)-1]; last <= overLoad[2] {
		t.Fatalf("over-load backlog unexpectedly drained: %v", overLoad)
	}
}

func TestFailuresAndCarryOverTogether(t *testing.T) {
	cfg := pipelineConfig(12, 4)
	cfg.FailureRate = 0.15
	cfg.HashAssignment = true
	cfg.Retarget = true
	p, err := epoch.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capacity := p.Trace().TotalTxs() / 3
	results, err := p.RunEpochs(5, epoch.SolverScheduler{
		Solver: core.NewSE(core.SEConfig{Seed: 4, MaxIters: 800}),
	}, 1.5, capacity, 2)
	if err != nil {
		t.Fatal(err)
	}
	var outcomes []metrics.EpochOutcome
	for _, res := range results {
		if !res.Instance.Feasible(res.Solution.Selected) {
			t.Fatalf("epoch %d infeasible", res.Epoch)
		}
		outcomes = append(outcomes, metrics.Outcome(res.Epoch, &res.Instance, res.Solution))
	}
	agg := metrics.AggregateOutcomes(outcomes)
	if agg.TotalTxs == 0 {
		t.Fatal("nothing committed across five epochs")
	}
	if err := p.Chain().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSEVersusBaselinesOnPipelineInstances(t *testing.T) {
	// On instances produced by the real pipeline (not the synthetic
	// generator), SE must stay competitive with every baseline.
	p, err := epoch.NewPipeline(pipelineConfig(14, 5))
	if err != nil {
		t.Fatal(err)
	}
	capacity := p.Trace().TotalTxs() / 3
	res, err := p.RunEpoch(epoch.AcceptAll{}, 1.5, capacity, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Instance
	seSol, _, err := core.NewSE(core.SEConfig{Seed: 5, Gamma: 4, MaxIters: 3000}).Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Solver{
		baseline.SA{Seed: 5, Iterations: 3000},
		baseline.DP{},
		baseline.WOA{Seed: 5, Iterations: 100},
		baseline.Greedy{},
	} {
		bSol, _, err := s.Solve(in.Clone())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if seSol.Utility < 0.97*bSol.Utility {
			t.Fatalf("SE %.0f clearly below %s %.0f on a pipeline instance",
				seSol.Utility, s.Name(), bSol.Utility)
		}
	}
}
