// Package pbft simulates Practical Byzantine Fault Tolerance, the
// intra-committee consensus protocol of the sharded blockchain (stage 3 of
// every epoch). The total consensus latency is the sum of the voting time
// spent on the three phases — pre-prepare, prepare, and commit — exactly
// how the paper accounts for it; the evaluation sets the expectation to
// 54.5 seconds.
//
// The simulation models a committee of n replicas with up to
// f = ⌊(n−1)/3⌋ Byzantine members. Each phase completes when a quorum of
// 2f+1 matching messages has been collected; the phase latency is the
// quorum-th order statistic of the per-replica message delays (silent
// faulty replicas simply never contribute, pushing the quorum deeper into
// the latency tail). If the primary is faulty, a view change adds a
// timeout plus one extra round before a correct primary drives the
// protocol.
package pbft

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mvcom/internal/randx"
)

// Errors returned by the simulator.
var (
	ErrTooSmall  = errors.New("pbft: committee smaller than 4 replicas")
	ErrTooFaulty = errors.New("pbft: faulty replicas exceed (n-1)/3")
)

// Phase identifies one of the three PBFT phases.
type Phase int

// The three phases of PBFT in protocol order.
const (
	PrePrepare Phase = iota + 1
	Prepare
	Commit
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PrePrepare:
		return "pre-prepare"
	case Prepare:
		return "prepare"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Config parameterizes one consensus run.
type Config struct {
	// Replicas is the committee size n. Minimum 4.
	Replicas int
	// Faulty is the number of Byzantine (silent) replicas. Must satisfy
	// Faulty <= (Replicas-1)/3.
	Faulty int
	// MeanStep is the mean per-replica message delay within a phase,
	// chosen so that three phases sum to the paper's 54.5 s expectation by
	// default (54.5/3 s each). Default 54.5/3 seconds.
	MeanStep time.Duration
	// StepSpread is the lognormal sigma of per-replica delays. Default 0.4.
	StepSpread float64
	// ViewTimeout is charged when the primary is faulty and a view change
	// is needed. Default 4 × MeanStep.
	ViewTimeout time.Duration
	// PrimaryFaulty forces the initial primary to be one of the faulty
	// replicas (only meaningful when Faulty > 0).
	PrimaryFaulty bool
}

// DefaultMeanTotal is the paper's expected intra-committee consensus
// latency.
const DefaultMeanTotal = 54500 * time.Millisecond

func (c Config) withDefaults() (Config, error) {
	if c.Replicas < 4 {
		return c, ErrTooSmall
	}
	if c.Faulty < 0 || c.Faulty > (c.Replicas-1)/3 {
		return c, fmt.Errorf("%w: n=%d f=%d", ErrTooFaulty, c.Replicas, c.Faulty)
	}
	if c.MeanStep <= 0 {
		c.MeanStep = DefaultMeanTotal / 3
	}
	if c.StepSpread <= 0 {
		c.StepSpread = 0.4
	}
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 4 * c.MeanStep
	}
	return c, nil
}

// PhaseResult records the outcome of one phase.
type PhaseResult struct {
	Phase   Phase
	Quorum  int           // messages needed (2f+1)
	Latency time.Duration // time to collect the quorum
}

// Result is the outcome of one consensus run.
type Result struct {
	Config      Config
	ViewChanges int
	Phases      []PhaseResult
	// Total is the consensus latency: Σ phase latencies plus view-change
	// penalties.
	Total time.Duration
}

// Run simulates one PBFT consensus instance and returns the phase
// breakdown.
func Run(rng *randx.RNG, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg}
	quorum := 2*cfg.Faulty + 1

	if cfg.PrimaryFaulty && cfg.Faulty > 0 {
		// The faulty primary stalls the pre-prepare; replicas time out and
		// elect the next primary, costing the timeout plus a round of
		// view-change messages.
		res.ViewChanges = 1
		res.Total += cfg.ViewTimeout
		res.Total += quorumLatency(rng, cfg, quorum)
	}

	for _, ph := range []Phase{PrePrepare, Prepare, Commit} {
		lat := quorumLatency(rng, cfg, quorum)
		res.Phases = append(res.Phases, PhaseResult{Phase: ph, Quorum: quorum, Latency: lat})
		res.Total += lat
	}
	return res, nil
}

// quorumLatency samples per-replica contribution delays for one phase and
// returns the time at which the quorum-th correct message arrives. Faulty
// replicas never contribute.
func quorumLatency(rng *randx.RNG, cfg Config, quorum int) time.Duration {
	correct := cfg.Replicas - cfg.Faulty
	delays := make([]float64, correct)
	for i := range delays {
		delays[i] = rng.LogNormalMeanSpread(cfg.MeanStep.Seconds(), cfg.StepSpread)
	}
	sort.Float64s(delays)
	idx := quorum - 1
	if idx >= len(delays) {
		idx = len(delays) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return time.Duration(delays[idx] * float64(time.Second))
}

// CalibrateMeanStep returns the MeanStep that makes the expected total
// consensus latency of cfg equal targetTotal. Phase latencies are order
// statistics of lognormal samples, which scale linearly in MeanStep, so a
// pilot run at MeanStep = 1 s measures the scale factor exactly (up to
// Monte-Carlo noise over the given number of samples).
func CalibrateMeanStep(rng *randx.RNG, cfg Config, targetTotal time.Duration, samples int) (time.Duration, error) {
	if samples < 1 {
		samples = 200
	}
	if targetTotal <= 0 {
		return 0, errors.New("pbft: non-positive calibration target")
	}
	pilot := cfg
	pilot.MeanStep = time.Second
	pilot.ViewTimeout = 4 * time.Second
	var sum float64
	for i := 0; i < samples; i++ {
		res, err := Run(rng, pilot)
		if err != nil {
			return 0, err
		}
		sum += res.Total.Seconds()
	}
	perUnit := sum / float64(samples) // seconds of total per second of MeanStep
	return time.Duration(targetTotal.Seconds() / perUnit * float64(time.Second)), nil
}

// MaxFaulty returns the largest tolerable number of Byzantine replicas for
// a committee of n.
func MaxFaulty(n int) int {
	if n < 4 {
		return 0
	}
	return (n - 1) / 3
}

// QuorumSize returns the PBFT quorum 2f+1 for f faulty replicas.
func QuorumSize(f int) int { return 2*f + 1 }
