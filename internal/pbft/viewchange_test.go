package pbft

import (
	"errors"
	"testing"
	"time"

	"mvcom/internal/overlay"
	"mvcom/internal/randx"
	"mvcom/internal/sim"
)

func TestViewChangeHealthyPrimaryNoChange(t *testing.T) {
	engine, net, members := detailedSetup(t, 7, overlay.Config{MeanLatency: 50 * time.Millisecond})
	res, err := RunDetailedWithViewChange(engine, net, DetailedConfig{Replicas: members}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) != 7 {
		t.Fatalf("committed %d of 7", len(res.Committed))
	}
	// With a generous timeout and healthy primary, consensus completes in
	// view 0, far below the view timeout.
	if res.ConsensusAt >= 30*time.Second {
		t.Fatalf("consensus %v suggests an unnecessary view change", res.ConsensusAt)
	}
}

func TestViewChangeFaultyPrimaryRecovers(t *testing.T) {
	engine, net, members := detailedSetup(t, 7, overlay.Config{MeanLatency: 50 * time.Millisecond})
	res, err := RunDetailedWithViewChange(engine, net, DetailedConfig{
		Replicas: members,
		Faulty:   map[int]bool{0: true}, // the view-0 primary is silent
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) != 6 {
		t.Fatalf("committed %d of 6 correct replicas", len(res.Committed))
	}
	// Consensus must complete after at least one view timeout.
	if res.ConsensusAt < 2*time.Second {
		t.Fatalf("consensus %v before the view timeout could fire", res.ConsensusAt)
	}
}

func TestViewChangeTwoFaultyPrimariesInARow(t *testing.T) {
	// Primaries of views 0 and 1 are both silent: two view changes with
	// exponential backoff before a correct primary drives the protocol.
	engine, net, members := detailedSetup(t, 10, overlay.Config{MeanLatency: 50 * time.Millisecond})
	res, err := RunDetailedWithViewChange(engine, net, DetailedConfig{
		Replicas: members,
		Faulty:   map[int]bool{0: true, 1: true},
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	quorum := QuorumSize(MaxFaulty(10))
	if len(res.Committed) < quorum {
		t.Fatalf("committed %d below quorum %d", len(res.Committed), quorum)
	}
	// At least timeout(view0) + timeout(view1) = 1s + 2s elapsed.
	if res.ConsensusAt < 3*time.Second {
		t.Fatalf("consensus %v too fast for two view changes", res.ConsensusAt)
	}
}

func TestViewChangeFaultyPrimarySlowerThanHealthy(t *testing.T) {
	run := func(faulty map[int]bool) time.Duration {
		engine, net, members := detailedSetup(t, 7, overlay.Config{MeanLatency: 50 * time.Millisecond})
		res, err := RunDetailedWithViewChange(engine, net, DetailedConfig{
			Replicas: members, Faulty: faulty,
		}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.ConsensusAt
	}
	healthy := run(nil)
	degraded := run(map[int]bool{0: true})
	if degraded <= healthy {
		t.Fatalf("view change cost invisible: %v vs %v", healthy, degraded)
	}
}

func TestViewChangeValidation(t *testing.T) {
	engine, net, members := detailedSetup(t, 7, overlay.Config{})
	if _, err := RunDetailedWithViewChange(engine, net, DetailedConfig{Replicas: members[:2]}, 0); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunDetailedWithViewChange(nil, net, DetailedConfig{Replicas: members}, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	tooMany := map[int]bool{0: true, 1: true, 2: true}
	if _, err := RunDetailedWithViewChange(engine, net, DetailedConfig{Replicas: members, Faulty: tooMany}, 0); !errors.Is(err, ErrTooFaulty) {
		t.Fatalf("err = %v", err)
	}
}

func TestViewChangeDeterministic(t *testing.T) {
	run := func() time.Duration {
		net, err := overlay.NewNetwork(randx.New(5), 7, overlay.Config{MeanLatency: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		members := []int{0, 1, 2, 3, 4, 5, 6}
		res, err := RunDetailedWithViewChange(sim.NewEngine(), net, DetailedConfig{
			Replicas: members, Faulty: map[int]bool{0: true},
		}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.ConsensusAt
	}
	if run() != run() {
		t.Fatal("same seed diverged")
	}
}
