package pbft

import (
	"errors"
	"testing"
	"time"

	"mvcom/internal/overlay"
	"mvcom/internal/randx"
	"mvcom/internal/sim"
)

func detailedSetup(t *testing.T, n int, netCfg overlay.Config) (*sim.Engine, *overlay.Network, []int) {
	t.Helper()
	net, err := overlay.NewNetwork(randx.New(1), n, netCfg)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return sim.NewEngine(), net, members
}

func TestRunDetailedAllCorrect(t *testing.T) {
	engine, net, members := detailedSetup(t, 7, overlay.Config{})
	res, err := RunDetailed(engine, net, DetailedConfig{Replicas: members})
	if err != nil {
		t.Fatal(err)
	}
	// Every correct replica commits.
	if len(res.Committed) != 7 {
		t.Fatalf("committed %d of 7", len(res.Committed))
	}
	if res.ConsensusAt <= 0 {
		t.Fatalf("consensus at %v", res.ConsensusAt)
	}
	// PBFT is O(n²) messages: with n=7 expect well over 2n.
	if res.Messages < 7*6 {
		t.Fatalf("only %d messages delivered", res.Messages)
	}
}

func TestRunDetailedToleratesFFaulty(t *testing.T) {
	engine, net, members := detailedSetup(t, 10, overlay.Config{})
	f := MaxFaulty(10)
	faulty := make(map[int]bool)
	for i := 1; i <= f; i++ {
		faulty[i] = true
	}
	res, err := RunDetailed(engine, net, DetailedConfig{Replicas: members, Faulty: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) != 10-f {
		t.Fatalf("committed %d, want all %d correct replicas", len(res.Committed), 10-f)
	}
	for pos := range faulty {
		if _, ok := res.Committed[pos]; ok {
			t.Fatalf("faulty replica %d committed", pos)
		}
	}
}

func TestRunDetailedFaultySlowsConsensus(t *testing.T) {
	latency := func(nFaulty int) time.Duration {
		engine, net, members := detailedSetup(t, 13, overlay.Config{})
		faulty := make(map[int]bool)
		for i := 1; i <= nFaulty; i++ {
			faulty[i] = true
		}
		res, err := RunDetailed(engine, net, DetailedConfig{Replicas: members, Faulty: faulty})
		if err != nil {
			t.Fatal(err)
		}
		return res.ConsensusAt
	}
	healthy := latency(0)
	degraded := latency(4)
	if degraded <= healthy {
		t.Fatalf("faulty replicas did not slow the quorum: %v vs %v", healthy, degraded)
	}
}

func TestRunDetailedErrors(t *testing.T) {
	engine, net, members := detailedSetup(t, 7, overlay.Config{})
	if _, err := RunDetailed(engine, net, DetailedConfig{Replicas: members[:3]}); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("small committee: %v", err)
	}
	if _, err := RunDetailed(nil, net, DetailedConfig{Replicas: members}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil engine: %v", err)
	}
	if _, err := RunDetailed(engine, net, DetailedConfig{Replicas: members, Primary: 99}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad primary: %v", err)
	}
	tooMany := map[int]bool{1: true, 2: true, 3: true}
	if _, err := RunDetailed(engine, net, DetailedConfig{Replicas: members, Faulty: tooMany}); !errors.Is(err, ErrTooFaulty) {
		t.Fatalf("too many faulty: %v", err)
	}
	if _, err := RunDetailed(engine, net, DetailedConfig{Replicas: members, Faulty: map[int]bool{0: true}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("faulty primary: %v", err)
	}
	if _, err := RunDetailed(engine, net, DetailedConfig{Replicas: members, Faulty: map[int]bool{99: true}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("faulty position out of range: %v", err)
	}
}

func TestRunDetailedMessageLossNoQuorum(t *testing.T) {
	// With near-total message loss the protocol cannot complete.
	engine, net, members := detailedSetup(t, 7, overlay.Config{LossRate: 0.98})
	_, err := RunDetailed(engine, net, DetailedConfig{Replicas: members})
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestRunDetailedSurvivesModerateLoss(t *testing.T) {
	// 5% loss: prepares/commits are redundant enough for the quorum to
	// complete anyway.
	engine, net, members := detailedSetup(t, 10, overlay.Config{LossRate: 0.05})
	res, err := RunDetailed(engine, net, DetailedConfig{Replicas: members})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Committed) < QuorumSize(MaxFaulty(10)) {
		t.Fatalf("committed %d", len(res.Committed))
	}
}

func TestRunDetailedLatencyScalesWithNetwork(t *testing.T) {
	run := func(mean time.Duration) time.Duration {
		engine, net, members := detailedSetup(t, 7, overlay.Config{MeanLatency: mean})
		res, err := RunDetailed(engine, net, DetailedConfig{Replicas: members})
		if err != nil {
			t.Fatal(err)
		}
		return res.ConsensusAt
	}
	fast := run(10 * time.Millisecond)
	slow := run(1 * time.Second)
	if slow <= fast {
		t.Fatalf("consensus latency ignores network latency: %v vs %v", fast, slow)
	}
}

func TestRunDetailedAgreesWithAnalyticOrder(t *testing.T) {
	// The analytic Run and the message-level RunDetailed should land in
	// the same order of magnitude when calibrated to the same per-step
	// delay scale: three sequential quorum phases of ~mean-latency steps.
	const meanNet = 100 * time.Millisecond
	var detailedSum time.Duration
	const trials = 20
	for i := 0; i < trials; i++ {
		net, err := overlay.NewNetwork(randx.New(int64(i)), 7, overlay.Config{MeanLatency: meanNet})
		if err != nil {
			t.Fatal(err)
		}
		members := []int{0, 1, 2, 3, 4, 5, 6}
		res, err := RunDetailed(sim.NewEngine(), net, DetailedConfig{Replicas: members})
		if err != nil {
			t.Fatal(err)
		}
		detailedSum += res.ConsensusAt
	}
	detailedMean := detailedSum / trials
	// Three phases of ~1 RTT each plus processing: expect between 1× and
	// 30× the single-link mean.
	if detailedMean < meanNet || detailedMean > 30*meanNet {
		t.Fatalf("detailed consensus mean %v implausible for %v links", detailedMean, meanNet)
	}
}

func TestCalibrateDetailedLatency(t *testing.T) {
	target := DefaultMeanTotal
	mean, err := CalibrateDetailedLatency(1, 8, 2, target, 40)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatalf("calibrated mean %v", mean)
	}
	// Verify: running with the calibrated link mean lands near the target.
	members := []int{0, 1, 2, 3, 4, 5, 6, 7}
	bad := map[int]bool{1: true, 2: true}
	var sum time.Duration
	const trials = 60
	for i := 0; i < trials; i++ {
		net, err := overlay.NewNetwork(randx.New(int64(1000+i)), 8, overlay.Config{MeanLatency: mean})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDetailed(sim.NewEngine(), net, DetailedConfig{
			Replicas: members, Faulty: bad, ProcessingDelay: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += res.ConsensusAt
	}
	got := (sum / trials).Seconds()
	want := target.Seconds()
	if got < 0.75*want || got > 1.25*want {
		t.Fatalf("calibrated consensus mean %.1f s, want ~%.1f", got, want)
	}
}

func TestCalibrateDetailedLatencyErrors(t *testing.T) {
	if _, err := CalibrateDetailedLatency(1, 3, 0, time.Second, 5); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("err = %v", err)
	}
	if _, err := CalibrateDetailedLatency(1, 8, 0, 0, 5); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestEquivocatingPrimarySafety(t *testing.T) {
	// The classic Byzantine primary: digest A to half the committee,
	// digest B to the other half. Quorum intersection must prevent two
	// digests from both committing — whatever commits, commits uniquely.
	for seed := int64(0); seed < 20; seed++ {
		net, err := overlay.NewNetwork(randx.New(seed), 7, overlay.Config{})
		if err != nil {
			t.Fatal(err)
		}
		members := []int{0, 1, 2, 3, 4, 5, 6}
		res, err := RunDetailed(sim.NewEngine(), net, DetailedConfig{
			Replicas:   members,
			Equivocate: true,
		})
		if err != nil {
			// No quorum at all is a safe outcome under equivocation.
			if !errors.Is(err, ErrNoQuorum) {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		digests := make(map[byte]bool)
		for _, d := range res.Digest {
			digests[d] = true
		}
		if len(digests) > 1 {
			t.Fatalf("seed %d: SAFETY VIOLATION — two digests committed: %v", seed, res.Digest)
		}
	}
}

func TestEquivocatePlusSilentFaultyStillSafe(t *testing.T) {
	// n=10 tolerates f=3: an equivocating primary plus two silent
	// replicas stay within budget and safety must hold.
	for seed := int64(0); seed < 10; seed++ {
		net, err := overlay.NewNetwork(randx.New(100+seed), 10, overlay.Config{})
		if err != nil {
			t.Fatal(err)
		}
		members := make([]int, 10)
		for i := range members {
			members[i] = i
		}
		res, err := RunDetailed(sim.NewEngine(), net, DetailedConfig{
			Replicas:   members,
			Equivocate: true,
			Faulty:     map[int]bool{3: true, 7: true},
		})
		if err != nil && !errors.Is(err, ErrNoQuorum) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		digests := make(map[byte]bool)
		for _, d := range res.Digest {
			digests[d] = true
		}
		if len(digests) > 1 {
			t.Fatalf("seed %d: two digests committed", seed)
		}
	}
}

func TestEquivocateCountsAgainstFaultBudget(t *testing.T) {
	// n=7 tolerates f=2; equivocating primary + 2 silent = 3 > f.
	engine, net, members := detailedSetup(t, 7, overlay.Config{})
	_, err := RunDetailed(engine, net, DetailedConfig{
		Replicas:   members,
		Equivocate: true,
		Faulty:     map[int]bool{1: true, 2: true},
	})
	if !errors.Is(err, ErrTooFaulty) {
		t.Fatalf("err = %v", err)
	}
}

func TestHonestRunDigestUniform(t *testing.T) {
	engine, net, members := detailedSetup(t, 7, overlay.Config{})
	res, err := RunDetailed(engine, net, DetailedConfig{Replicas: members})
	if err != nil {
		t.Fatal(err)
	}
	for r, d := range res.Digest {
		if d != 0 {
			t.Fatalf("replica %d committed digest %d under an honest primary", r, d)
		}
	}
}
