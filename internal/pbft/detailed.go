package pbft

import (
	"errors"
	"fmt"
	"time"

	"mvcom/internal/overlay"
	"mvcom/internal/randx"
	"mvcom/internal/sim"
)

// randxNew isolates the randx dependency for calibration seeding.
func randxNew(seed int64) *randx.RNG { return randx.New(seed) }

// Detailed-simulation errors.
var (
	ErrNoQuorum = errors.New("pbft: consensus did not reach a commit quorum")
	ErrBadInput = errors.New("pbft: invalid detailed-run input")
)

// DetailedConfig parameterizes a message-level PBFT run: real
// pre-prepare/prepare/commit messages travel over an overlay.Network and
// are processed as discrete events. Where Run models phase latencies with
// order statistics, RunDetailed executes the protocol itself — useful for
// validating the analytic model and for failure studies where *which*
// replica is faulty matters.
type DetailedConfig struct {
	// Replicas is the committee membership (node ids in the overlay
	// network). Minimum 4.
	Replicas []int
	// Faulty marks Byzantine replicas by position in Replicas; faulty
	// replicas never send messages (fail-silent).
	Faulty map[int]bool
	// Primary is the position of the initial primary in Replicas.
	// Default 0.
	Primary int
	// ProcessingDelay is the local compute cost added before each send.
	// Default 5 ms.
	ProcessingDelay time.Duration
	// Equivocate makes the primary Byzantine in the classic way: it
	// sends pre-prepares for digest A to half the replicas and digest B
	// to the other half. The primary then counts against the f budget.
	// PBFT's quorum intersection guarantees that at most one digest can
	// ever commit; RunDetailed surfaces which (if any) did.
	Equivocate bool
}

// DetailedResult reports the outcome of a message-level run.
type DetailedResult struct {
	// Committed maps replica position → virtual time its commit quorum
	// completed. Only correct replicas appear.
	Committed map[int]time.Duration
	// Digest maps replica position → the digest label it committed (0 or
	// 1; only 1 under an equivocating primary).
	Digest map[int]byte
	// ConsensusAt is the instant the quorum-th correct replica committed
	// — the committee's consensus latency.
	ConsensusAt time.Duration
	// Messages counts every protocol message delivered.
	Messages int
}

// phase message kinds.
type msgKind int

const (
	msgPrePrepare msgKind = iota + 1
	msgPrepare
	msgCommit
)

// replicaState tracks one replica's quorum progress. Prepare and commit
// votes are buffered per digest so that messages racing ahead of the
// replica's own pre-prepare are not lost.
type replicaState struct {
	prePrepared  bool
	digest       byte // digest accepted at pre-prepare
	prepareFrom  map[byte]map[int]bool
	commitFrom   map[byte]map[int]bool
	sentPrepare  bool
	sentCommit   bool
	committedAt  time.Duration
	hasCommitted bool
}

func (st *replicaState) votes(m map[byte]map[int]bool, digest byte) map[int]bool {
	if m[digest] == nil {
		m[digest] = make(map[int]bool)
	}
	return m[digest]
}

// RunDetailed executes one message-level PBFT instance on the given
// engine and network. It returns ErrNoQuorum when message loss or
// failures leave the protocol short of 2f+1 commits.
func RunDetailed(engine *sim.Engine, net *overlay.Network, cfg DetailedConfig) (DetailedResult, error) {
	n := len(cfg.Replicas)
	if n < 4 {
		return DetailedResult{}, fmt.Errorf("%w: %d replicas", ErrTooSmall, n)
	}
	if engine == nil || net == nil {
		return DetailedResult{}, fmt.Errorf("%w: nil engine or network", ErrBadInput)
	}
	if cfg.Primary < 0 || cfg.Primary >= n {
		return DetailedResult{}, fmt.Errorf("%w: primary %d", ErrBadInput, cfg.Primary)
	}
	f := MaxFaulty(n)
	nFaulty := 0
	for pos, bad := range cfg.Faulty {
		if bad {
			if pos < 0 || pos >= n {
				return DetailedResult{}, fmt.Errorf("%w: faulty position %d", ErrBadInput, pos)
			}
			nFaulty++
		}
	}
	if cfg.Equivocate && !cfg.Faulty[cfg.Primary] {
		nFaulty++ // an equivocating primary is Byzantine
	}
	if nFaulty > f {
		return DetailedResult{}, fmt.Errorf("%w: %d faulty > f=%d", ErrTooFaulty, nFaulty, f)
	}
	if cfg.Faulty[cfg.Primary] && !cfg.Equivocate {
		return DetailedResult{}, fmt.Errorf("%w: fail-silent primary (use RunDetailedWithViewChange)", ErrBadInput)
	}
	proc := cfg.ProcessingDelay
	if proc <= 0 {
		proc = 5 * time.Millisecond
	}
	quorum := 2*f + 1

	states := make([]replicaState, n)
	for i := range states {
		states[i].prepareFrom = make(map[byte]map[int]bool, 2)
		states[i].commitFrom = make(map[byte]map[int]bool, 2)
	}
	res := DetailedResult{
		Committed: make(map[int]time.Duration, n),
		Digest:    make(map[int]byte, n),
	}

	// deliver schedules a message event from replica src to replica dst.
	// Every message carries the digest it refers to; replicas ignore
	// traffic for digests they did not accept at pre-prepare.
	var deliver func(src, dst int, kind msgKind, digest byte)
	var onMessage func(dst, src int, kind msgKind, digest byte, now time.Duration)

	deliver = func(src, dst int, kind msgKind, digest byte) {
		delay, ok := net.Delay(cfg.Replicas[src], cfg.Replicas[dst])
		if !ok {
			return // lost or endpoint failed
		}
		_, _ = engine.Schedule(proc+delay, func(now time.Duration) {
			res.Messages++
			onMessage(dst, src, kind, digest, now)
		})
	}
	broadcast := func(src int, kind msgKind, digest byte) {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			deliver(src, dst, kind, digest)
		}
	}

	onMessage = func(dst, src int, kind msgKind, digest byte, now time.Duration) {
		if cfg.Faulty[dst] {
			return // fail-silent replicas ignore everything
		}
		st := &states[dst]
		switch kind {
		case msgPrePrepare:
			if st.prePrepared {
				return // first pre-prepare wins; conflicting ones ignored
			}
			st.prePrepared = true
			st.digest = digest
			// Accepting the pre-prepare counts as the primary's prepare.
			st.votes(st.prepareFrom, digest)[cfg.Primary] = true
			if !st.sentPrepare {
				st.sentPrepare = true
				st.votes(st.prepareFrom, digest)[dst] = true
				broadcast(dst, msgPrepare, digest)
			}
		case msgPrepare:
			st.votes(st.prepareFrom, digest)[src] = true
		case msgCommit:
			st.votes(st.commitFrom, digest)[src] = true
		}
		// Prepared predicate: pre-prepare plus 2f prepares for the
		// accepted digest (counting our own) → send commit.
		if st.prePrepared && !st.sentCommit && len(st.votes(st.prepareFrom, st.digest)) >= quorum-1 {
			st.sentCommit = true
			st.votes(st.commitFrom, st.digest)[dst] = true
			broadcast(dst, msgCommit, st.digest)
		}
		// Committed predicate: 2f+1 commits for the accepted digest
		// (counting our own).
		if st.sentCommit && !st.hasCommitted && len(st.votes(st.commitFrom, st.digest)) >= quorum {
			st.hasCommitted = true
			st.committedAt = now
			res.Committed[dst] = now
			res.Digest[dst] = st.digest
		}
	}

	// Kick off. An honest primary pre-prepares one digest to everyone and
	// is immediately prepared itself; an equivocating primary splits the
	// committee between two digests and never commits anything itself.
	primary := cfg.Primary
	if cfg.Equivocate {
		for dst := 0; dst < n; dst++ {
			if dst == primary {
				continue
			}
			deliver(primary, dst, msgPrePrepare, byte(dst%2))
		}
	} else {
		states[primary].prePrepared = true
		states[primary].sentPrepare = true
		states[primary].votes(states[primary].prepareFrom, 0)[primary] = true
		broadcast(primary, msgPrePrepare, 0)
	}

	engine.Run(0)

	if len(res.Committed) < quorum {
		if cfg.Equivocate {
			// Under equivocation, failing to commit anything is a safe
			// outcome; report it without inventing a latency.
			return res, fmt.Errorf("%w: %d of %d commits (equivocating primary)", ErrNoQuorum, len(res.Committed), quorum)
		}
		return res, fmt.Errorf("%w: %d of %d commits", ErrNoQuorum, len(res.Committed), quorum)
	}
	// Consensus completes when the quorum-th replica commits.
	times := make([]time.Duration, 0, len(res.Committed))
	for _, at := range res.Committed {
		times = append(times, at)
	}
	sortDurationsAsc(times)
	res.ConsensusAt = times[quorum-1]
	return res, nil
}

func sortDurationsAsc(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// CalibrateDetailedLatency returns the overlay mean link latency that
// makes the expected message-level consensus latency of an n-replica
// committee equal targetTotal. Like CalibrateMeanStep, it exploits
// linearity: all link delays scale with the configured mean (the fixed
// processing delay is kept negligible), so a pilot at 1 s measures the
// scale factor.
func CalibrateDetailedLatency(seed int64, replicas, faulty int, targetTotal time.Duration, samples int) (time.Duration, error) {
	if replicas < 4 {
		return 0, ErrTooSmall
	}
	if targetTotal <= 0 {
		return 0, errors.New("pbft: non-positive calibration target")
	}
	if samples < 1 {
		samples = 50
	}
	members := make([]int, replicas)
	for i := range members {
		members[i] = i
	}
	bad := make(map[int]bool, faulty)
	for i := 1; i <= faulty && i < replicas; i++ {
		bad[i] = true
	}
	var sum float64
	for s := 0; s < samples; s++ {
		net, err := overlayNetworkForCalibration(seed+int64(s), replicas)
		if err != nil {
			return 0, err
		}
		res, err := RunDetailed(sim.NewEngine(), net, DetailedConfig{
			Replicas:        members,
			Faulty:          bad,
			ProcessingDelay: time.Microsecond, // negligible against 1 s links
		})
		if err != nil {
			return 0, err
		}
		sum += res.ConsensusAt.Seconds()
	}
	perUnit := sum / float64(samples) // seconds of consensus per second of link mean
	return time.Duration(targetTotal.Seconds() / perUnit * float64(time.Second)), nil
}

func overlayNetworkForCalibration(seed int64, n int) (*overlay.Network, error) {
	return overlay.NewNetwork(randxNew(seed), n, overlay.Config{MeanLatency: time.Second})
}
