package pbft

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"mvcom/internal/randx"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(randx.New(1), Config{Replicas: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases %d", len(res.Phases))
	}
	var sum time.Duration
	order := []Phase{PrePrepare, Prepare, Commit}
	for i, ph := range res.Phases {
		if ph.Phase != order[i] {
			t.Fatalf("phase %d is %v", i, ph.Phase)
		}
		if ph.Latency <= 0 {
			t.Fatalf("phase %v latency %v", ph.Phase, ph.Latency)
		}
		if ph.Quorum != 1 { // f=0 → quorum 1
			t.Fatalf("quorum %d with f=0", ph.Quorum)
		}
		sum += ph.Latency
	}
	if res.Total != sum {
		t.Fatalf("total %v != phase sum %v", res.Total, sum)
	}
	if res.ViewChanges != 0 {
		t.Fatalf("unexpected view changes %d", res.ViewChanges)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(randx.New(1), Config{Replicas: 3}); err != ErrTooSmall {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(randx.New(1), Config{Replicas: 10, Faulty: 4}); !errors.Is(err, ErrTooFaulty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(randx.New(1), Config{Replicas: 10, Faulty: -1}); !errors.Is(err, ErrTooFaulty) {
		t.Fatalf("err = %v", err)
	}
}

func TestCalibrateMeanStepHitsPaperSetting(t *testing.T) {
	// Calibration should make the expected three-phase total match the
	// paper's 54.5 s consensus-latency expectation for any (n, f).
	rng := randx.New(2)
	cfg := Config{Replicas: 16, Faulty: 5}
	step, err := CalibrateMeanStep(rng, cfg, DefaultMeanTotal, 3000)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MeanStep = step
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		res, err := Run(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum += res.Total.Seconds()
	}
	mean := sum / n
	if math.Abs(mean-54.5) > 3 {
		t.Fatalf("calibrated mean consensus latency %.1f s, want ~54.5", mean)
	}
}

func TestCalibrateMeanStepErrors(t *testing.T) {
	if _, err := CalibrateMeanStep(randx.New(1), Config{Replicas: 10}, 0, 10); err == nil {
		t.Fatal("non-positive target accepted")
	}
	if _, err := CalibrateMeanStep(randx.New(1), Config{Replicas: 2}, time.Second, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFaultyReplicasSlowConsensus(t *testing.T) {
	// With faulty (silent) replicas, the quorum digs deeper into the
	// latency tail, so mean latency must increase.
	meanLatency := func(f int) float64 {
		rng := randx.New(3)
		var sum float64
		const n = 2000
		for i := 0; i < n; i++ {
			res, err := Run(rng, Config{Replicas: 13, Faulty: f})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Total.Seconds()
		}
		return sum / n
	}
	none := meanLatency(0)
	max := meanLatency(4)
	if max <= none {
		t.Fatalf("faulty replicas did not slow consensus: f=0 %.2f s, f=4 %.2f s", none, max)
	}
}

func TestPrimaryFaultyTriggersViewChange(t *testing.T) {
	res, err := Run(randx.New(4), Config{Replicas: 10, Faulty: 3, PrimaryFaulty: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewChanges != 1 {
		t.Fatalf("view changes %d", res.ViewChanges)
	}
	var phaseSum time.Duration
	for _, ph := range res.Phases {
		phaseSum += ph.Latency
	}
	if res.Total <= phaseSum {
		t.Fatal("view change added no latency")
	}
}

func TestPrimaryFaultyWithoutFaultyReplicasIgnored(t *testing.T) {
	res, err := Run(randx.New(5), Config{Replicas: 10, Faulty: 0, PrimaryFaulty: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewChanges != 0 {
		t.Fatal("view change with zero faulty replicas")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(randx.New(6), Config{Replicas: 10, Faulty: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(randx.New(6), Config{Replicas: 10, Faulty: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatalf("same seed diverged: %v vs %v", a.Total, b.Total)
	}
}

func TestRunLatencyVariance(t *testing.T) {
	// Consecutive runs must differ — the heterogeneous consensus latency
	// is the whole premise of the scheduling problem.
	rng := randx.New(7)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 50; i++ {
		res, err := Run(rng, Config{Replicas: 10, Faulty: 2})
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Total] = true
	}
	if len(seen) < 45 {
		t.Fatalf("latency not variable: %d distinct of 50", len(seen))
	}
}

func TestMaxFaulty(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {3, 0}, {4, 1}, {7, 2}, {10, 3}, {13, 4}, {100, 33},
	}
	for _, tt := range tests {
		if got := MaxFaulty(tt.n); got != tt.want {
			t.Fatalf("MaxFaulty(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestQuorumSize(t *testing.T) {
	if QuorumSize(0) != 1 || QuorumSize(3) != 7 {
		t.Fatal("quorum arithmetic wrong")
	}
}

func TestSafetyBoundProperty(t *testing.T) {
	// For every valid (n, f): quorum 2f+1 correct replicas always exist
	// (n - f >= 2f + 1), so consensus must succeed.
	f := func(rawN, rawF uint8, seed int64) bool {
		n := int(rawN)%60 + 4
		fmax := MaxFaulty(n)
		fl := 0
		if fmax > 0 {
			fl = int(rawF) % (fmax + 1)
		}
		if n-fl < QuorumSize(fl) {
			return false // would violate PBFT safety precondition
		}
		res, err := Run(randx.New(seed), Config{Replicas: n, Faulty: fl})
		if err != nil {
			return false
		}
		return res.Total > 0 && len(res.Phases) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseString(t *testing.T) {
	if PrePrepare.String() != "pre-prepare" || Prepare.String() != "prepare" || Commit.String() != "commit" {
		t.Fatal("phase names wrong")
	}
	if Phase(9).String() == "" {
		t.Fatal("unknown phase should still print")
	}
}

func TestMeanStepScalesTotal(t *testing.T) {
	mean := func(step time.Duration) float64 {
		rng := randx.New(8)
		var sum float64
		for i := 0; i < 500; i++ {
			res, err := Run(rng, Config{Replicas: 10, MeanStep: step})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Total.Seconds()
		}
		return sum / 500
	}
	fast := mean(1 * time.Second)
	slow := mean(10 * time.Second)
	if ratio := slow / fast; math.Abs(ratio-10) > 1.5 {
		t.Fatalf("total latency should scale with MeanStep: ratio %.2f", ratio)
	}
}
