package pbft

import (
	"fmt"
	"time"

	"mvcom/internal/overlay"
	"mvcom/internal/sim"
)

// view-change message kinds extend the three-phase set.
const (
	msgViewChange msgKind = iota + 100
	msgNewView
)

// RunDetailedWithViewChange executes a message-level PBFT instance that
// tolerates a fail-silent primary: replicas arm a view-change timer when
// the protocol starts; if no pre-prepare arrives before it fires they
// broadcast VIEW-CHANGE, and once a replica collects 2f+1 view-change
// votes for view v+1 and is that view's primary, it issues NEW-VIEW and
// restarts the three-phase protocol. Repeated faulty primaries trigger
// further view changes with doubled timeouts (PBFT's backoff).
//
// ViewTimeout is the initial patience; non-positive defaults to 10× the
// processing delay + 1 s.
func RunDetailedWithViewChange(engine *sim.Engine, net *overlay.Network, cfg DetailedConfig, viewTimeout time.Duration) (DetailedResult, error) {
	n := len(cfg.Replicas)
	if n < 4 {
		return DetailedResult{}, fmt.Errorf("%w: %d replicas", ErrTooSmall, n)
	}
	if engine == nil || net == nil {
		return DetailedResult{}, fmt.Errorf("%w: nil engine or network", ErrBadInput)
	}
	if cfg.Primary < 0 || cfg.Primary >= n {
		return DetailedResult{}, fmt.Errorf("%w: primary %d", ErrBadInput, cfg.Primary)
	}
	f := MaxFaulty(n)
	nFaulty := 0
	for pos, bad := range cfg.Faulty {
		if bad {
			if pos < 0 || pos >= n {
				return DetailedResult{}, fmt.Errorf("%w: faulty position %d", ErrBadInput, pos)
			}
			nFaulty++
		}
	}
	if nFaulty > f {
		return DetailedResult{}, fmt.Errorf("%w: %d faulty > f=%d", ErrTooFaulty, nFaulty, f)
	}
	proc := cfg.ProcessingDelay
	if proc <= 0 {
		proc = 5 * time.Millisecond
	}
	if viewTimeout <= 0 {
		viewTimeout = time.Second + 10*proc
	}
	quorum := 2*f + 1

	type vcState struct {
		replicaState
		view       int                  // current view this replica is in
		vcVotes    map[int]map[int]bool // view → voters
		sentVCFor  int                  // highest view this replica voted for
		timerArmed int                  // view whose expiry timer is pending
	}
	states := make([]vcState, n)
	for i := range states {
		states[i].prepareFrom = make(map[byte]map[int]bool, 1)
		states[i].commitFrom = make(map[byte]map[int]bool, 1)
		states[i].vcVotes = make(map[int]map[int]bool)
		states[i].sentVCFor = -1
		states[i].timerArmed = -1
	}
	res := DetailedResult{Committed: make(map[int]time.Duration, n)}
	primaryOf := func(view int) int { return (cfg.Primary + view) % n }

	var deliver func(src, dst int, kind msgKind, view int)
	var onMessage func(dst, src int, kind msgKind, view int, now time.Duration)
	var armTimer func(replica, view int)

	deliver = func(src, dst int, kind msgKind, view int) {
		delay, ok := net.Delay(cfg.Replicas[src], cfg.Replicas[dst])
		if !ok {
			return
		}
		_, _ = engine.Schedule(proc+delay, func(now time.Duration) {
			res.Messages++
			onMessage(dst, src, kind, view, now)
		})
	}
	broadcast := func(src int, kind msgKind, view int) {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				deliver(src, dst, kind, view)
			}
		}
	}
	startPhases := func(primary int, view int, now time.Duration) {
		st := &states[primary]
		st.prePrepared = true
		st.sentPrepare = true
		st.prepareFrom = map[byte]map[int]bool{0: {primary: true}}
		broadcast(primary, msgPrePrepare, view)
	}
	armTimer = func(replica, view int) {
		st := &states[replica]
		if cfg.Faulty[replica] || st.hasCommitted {
			return
		}
		st.timerArmed = view
		// Exponential backoff per view, PBFT style.
		timeout := viewTimeout << uint(view)
		_, _ = engine.Schedule(timeout, func(now time.Duration) {
			cur := &states[replica]
			if cur.hasCommitted || cur.view != view || cur.timerArmed != view {
				return
			}
			// Suspect the view's primary: vote for view+1.
			next := view + 1
			if cur.sentVCFor >= next {
				return
			}
			cur.sentVCFor = next
			if cur.vcVotes[next] == nil {
				cur.vcVotes[next] = make(map[int]bool)
			}
			cur.vcVotes[next][replica] = true
			broadcast(replica, msgViewChange, next)
			armTimer(replica, view) // re-arm in case the next view stalls too
		})
	}

	enterView := func(replica, view int, now time.Duration) {
		st := &states[replica]
		if view <= st.view {
			return
		}
		st.view = view
		st.prePrepared = false
		st.sentPrepare = false
		st.sentCommit = false
		st.prepareFrom = make(map[byte]map[int]bool, 1)
		st.commitFrom = make(map[byte]map[int]bool, 1)
		if primaryOf(view) == replica && !cfg.Faulty[replica] {
			startPhases(replica, view, now)
		}
		armTimer(replica, view)
	}

	onMessage = func(dst, src int, kind msgKind, view int, now time.Duration) {
		if cfg.Faulty[dst] {
			return
		}
		st := &states[dst]
		switch kind {
		case msgViewChange:
			if st.vcVotes[view] == nil {
				st.vcVotes[view] = make(map[int]bool)
			}
			st.vcVotes[view][src] = true
			// Echo our own vote once f+1 peers suspect (liveness rule).
			if len(st.vcVotes[view]) >= f+1 && st.sentVCFor < view {
				st.sentVCFor = view
				st.vcVotes[view][dst] = true
				broadcast(dst, msgViewChange, view)
			}
			if len(st.vcVotes[view]) >= quorum && view > st.view {
				// Quorum reached: every correct replica moves to the new
				// view (arming its timer there, so a faulty new primary
				// triggers the next round); the new primary additionally
				// announces NEW-VIEW and restarts the three-phase
				// protocol.
				if primaryOf(view) == dst {
					broadcast(dst, msgNewView, view)
				}
				enterView(dst, view, now)
			}
		case msgNewView:
			if src == primaryOf(view) {
				enterView(dst, view, now)
			}
		case msgPrePrepare:
			if view < st.view || st.prePrepared {
				return
			}
			if src != primaryOf(view) {
				return // only the view's primary may pre-prepare
			}
			if view > st.view {
				enterView(dst, view, now)
			}
			st.prePrepared = true
			st.votes(st.prepareFrom, 0)[primaryOf(view)] = true
			if !st.sentPrepare {
				st.sentPrepare = true
				st.votes(st.prepareFrom, 0)[dst] = true
				broadcast(dst, msgPrepare, view)
			}
		case msgPrepare:
			if view == st.view {
				st.votes(st.prepareFrom, 0)[src] = true
			}
		case msgCommit:
			if view == st.view {
				st.votes(st.commitFrom, 0)[src] = true
			}
		}
		if st.prePrepared && !st.sentCommit && len(st.votes(st.prepareFrom, 0)) >= quorum-1 {
			st.sentCommit = true
			st.votes(st.commitFrom, 0)[dst] = true
			broadcast(dst, msgCommit, st.view)
		}
		if st.sentCommit && !st.hasCommitted && len(st.votes(st.commitFrom, 0)) >= quorum {
			st.hasCommitted = true
			st.committedAt = now
			res.Committed[dst] = now
		}
	}

	// View 0 begins: the designated primary pre-prepares unless faulty;
	// every correct replica arms its suspicion timer.
	if !cfg.Faulty[cfg.Primary] {
		startPhases(cfg.Primary, 0, 0)
	}
	for r := 0; r < n; r++ {
		armTimer(r, 0)
	}

	engine.Run(0)

	if len(res.Committed) < quorum {
		return res, fmt.Errorf("%w: %d of %d commits", ErrNoQuorum, len(res.Committed), quorum)
	}
	times := make([]time.Duration, 0, len(res.Committed))
	for _, at := range res.Committed {
		times = append(times, at)
	}
	sortDurationsAsc(times)
	res.ConsensusAt = times[quorum-1]
	return res, nil
}
