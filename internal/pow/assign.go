package pow

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"mvcom/internal/chain"
)

// Assignment errors.
var ErrBadAssignment = errors.New("pow: invalid assignment parameters")

// AssignByHash implements Elastico's identity-based committee assignment:
// each solver's committee is determined by the low bits of
// H(epochSeed || node), so membership is unpredictable and uniform. A
// committee closes once its seats fill; later solvers hashing into a full
// committee spill into the least-filled open one (Elastico redirects them
// via the directory committee). FormedAt semantics match FormCommittees:
// the committee is usable when its final seat is won.
//
// Solvers must be sorted by solve time (as returned by Election.Run); the
// first committees×seats solvers that land seats are used.
func AssignByHash(epochSeed chain.Hash, solvers []Solver, committees, seats int) ([]Committee, error) {
	if committees <= 0 || seats <= 0 {
		return nil, ErrBadSeats
	}
	need := committees * seats
	if len(solvers) < need {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnough, need, len(solvers))
	}
	out := make([]Committee, committees)
	for c := range out {
		out[c].ID = c
		out[c].Members = make([]int, 0, seats)
	}
	placed := 0
	for _, s := range solvers {
		if placed == need {
			break
		}
		c := int(identityBits(epochSeed, s.Node) % uint64(committees))
		if len(out[c].Members) >= seats {
			// Directory redirect: the fullest committees reject; place
			// into the currently least-filled committee.
			c = leastFilled(out, seats)
			if c < 0 {
				break
			}
		}
		out[c].Members = append(out[c].Members, s.Node)
		if s.SolveAt > out[c].FormedAt {
			out[c].FormedAt = s.SolveAt
		}
		placed++
	}
	if placed != need {
		return nil, fmt.Errorf("%w: placed %d of %d seats", ErrBadAssignment, placed, need)
	}
	return out, nil
}

// identityBits derives the assignment bits from the epoch seed and node
// identity — the Elastico rule that identities map to committees by the
// final bits of their PoW hash.
func identityBits(seed chain.Hash, node int) uint64 {
	var buf [sha256.Size + 8]byte
	copy(buf[:sha256.Size], seed[:])
	binary.BigEndian.PutUint64(buf[sha256.Size:], uint64(node))
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[sha256.Size-8:])
}

// leastFilled returns the open committee with the fewest members, or -1
// when all committees are full.
func leastFilled(coms []Committee, seats int) int {
	best, bestLen := -1, seats
	for c := range coms {
		if len(coms[c].Members) < bestLen {
			best = c
			bestLen = len(coms[c].Members)
		}
	}
	return best
}
