// Package pow simulates the Proof-of-Work election that opens every epoch
// of the Elastico-style sharded blockchain (stage 1, committee formation).
//
// Each participating node repeatedly hashes until it finds a nonce below
// the target; the first solvers win committee seats. Solving time per node
// is exponential — the defining property of PoW — with a mean set by the
// difficulty. The paper's evaluation fixes the expected solving latency at
// 600 seconds; the formation latency of a committee is the time until its
// last seat is filled plus the overlay-configuration time (package
// overlay), which is what makes formation dominate the two-phase latency
// in Fig. 2.
//
// The package also contains a small real hash-puzzle implementation
// (Solve/Verify) so that examples and tests can demonstrate an actual
// PoW, while the latency simulation uses the exponential model at
// realistic difficulty.
package pow

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/randx"
)

// Errors returned by the package.
var (
	ErrNoNodes       = errors.New("pow: no nodes")
	ErrBadSeats      = errors.New("pow: seats must be >= 1")
	ErrNotEnough     = errors.New("pow: fewer solvers than seats")
	ErrNoSolution    = errors.New("pow: no solution within budget")
	ErrBadDifficulty = errors.New("pow: difficulty bits out of range")
)

// Election simulates one PoW election round over a set of nodes.
type Election struct {
	// MeanSolve is the expected puzzle-solving time per node. The paper
	// sets 600 s. Default 600 s.
	MeanSolve time.Duration
	// HashRateSpread is the lognormal sigma of per-node hash rates
	// (heterogeneous miners). Default 0.3.
	HashRateSpread float64
}

func (e Election) withDefaults() Election {
	if e.MeanSolve <= 0 {
		e.MeanSolve = 600 * time.Second
	}
	if e.HashRateSpread <= 0 {
		e.HashRateSpread = 0.3
	}
	return e
}

// Solver records one node's puzzle solution time.
type Solver struct {
	Node    int
	SolveAt time.Duration
}

// Run simulates the election: every node draws an exponential solving time
// scaled by its hash-rate factor; the result is sorted by solve time.
func (e Election) Run(rng *randx.RNG, nodes int) ([]Solver, error) {
	if nodes <= 0 {
		return nil, ErrNoNodes
	}
	e = e.withDefaults()
	out := make([]Solver, nodes)
	for i := range out {
		rate := rng.LogNormalMeanSpread(1.0, e.HashRateSpread)
		t := rng.Exponential(e.MeanSolve.Seconds() / rate)
		out[i] = Solver{Node: i, SolveAt: time.Duration(t * float64(time.Second))}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SolveAt != out[j].SolveAt {
			return out[i].SolveAt < out[j].SolveAt
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

// Committee is a formed committee: the member nodes and the time at which
// the last seat was filled (the PoW part of formation latency).
type Committee struct {
	ID      int
	Members []int
	// FormedAt is when the final seat was won.
	FormedAt time.Duration
}

// FormCommittees assigns the first committees*seats solvers to committees
// in solve order (Elastico assigns identities from the PoW output bits;
// assigning in solve order preserves the latency semantics — a committee is
// usable once all its seats are filled). It returns ErrNotEnough when the
// solver list is too short.
func FormCommittees(solvers []Solver, committees, seats int) ([]Committee, error) {
	if committees <= 0 || seats <= 0 {
		return nil, ErrBadSeats
	}
	need := committees * seats
	if len(solvers) < need {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnough, need, len(solvers))
	}
	out := make([]Committee, committees)
	for c := range out {
		out[c].ID = c
		out[c].Members = make([]int, 0, seats)
	}
	// Round-robin over committees so all committees fill at similar times,
	// with the final committee seat deciding FormedAt.
	for i := 0; i < need; i++ {
		c := i % committees
		out[c].Members = append(out[c].Members, solvers[i].Node)
		if solvers[i].SolveAt > out[c].FormedAt {
			out[c].FormedAt = solvers[i].SolveAt
		}
	}
	return out, nil
}

// Puzzle is a real SHA-256 hash puzzle: find a nonce such that
// SHA256(seed || nonce) has at least Bits leading zero bits.
type Puzzle struct {
	Seed chain.Hash
	Bits int
}

// NewPuzzle builds a puzzle. Bits must lie in [1, 64] — above that, the
// search is not tractable for a simulation.
func NewPuzzle(seed chain.Hash, difficultyBits int) (Puzzle, error) {
	if difficultyBits < 1 || difficultyBits > 64 {
		return Puzzle{}, ErrBadDifficulty
	}
	return Puzzle{Seed: seed, Bits: difficultyBits}, nil
}

// Verify reports whether nonce solves the puzzle.
func (p Puzzle) Verify(nonce uint64) bool {
	return leadingZeroBits(p.digest(nonce)) >= p.Bits
}

// Solve searches nonces starting from start and returns the first solution
// within budget attempts. It returns ErrNoSolution if the budget is
// exhausted.
func (p Puzzle) Solve(start uint64, budget int) (uint64, error) {
	for i := 0; i < budget; i++ {
		nonce := start + uint64(i)
		if p.Verify(nonce) {
			return nonce, nil
		}
	}
	return 0, ErrNoSolution
}

// ExpectedAttempts returns the mean number of hash attempts to solve the
// puzzle: 2^Bits.
func (p Puzzle) ExpectedAttempts() float64 {
	return float64(uint64(1) << uint(p.Bits))
}

func (p Puzzle) digest(nonce uint64) chain.Hash {
	var buf [sha256.Size + 8]byte
	copy(buf[:sha256.Size], p.Seed[:])
	binary.BigEndian.PutUint64(buf[sha256.Size:], nonce)
	return sha256.Sum256(buf[:])
}

func leadingZeroBits(h chain.Hash) int {
	total := 0
	for i := 0; i < len(h); i += 8 {
		word := binary.BigEndian.Uint64(h[i : i+8])
		lz := bits.LeadingZeros64(word)
		total += lz
		if lz < 64 {
			break
		}
	}
	return total
}
