package pow

import (
	"errors"
	"math"
	"testing"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/randx"
)

func epochSeed(n uint64) chain.Hash {
	return chain.Transaction{ID: n}.Hash()
}

func TestAssignByHashBasics(t *testing.T) {
	solvers, err := Election{}.Run(randx.New(1), 120)
	if err != nil {
		t.Fatal(err)
	}
	coms, err := AssignByHash(epochSeed(1), solvers, 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(coms) != 6 {
		t.Fatalf("committees %d", len(coms))
	}
	seen := make(map[int]bool)
	for _, c := range coms {
		if len(c.Members) != 20 {
			t.Fatalf("committee %d has %d members", c.ID, len(c.Members))
		}
		var maxAt time.Duration
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("node %d in two committees", m)
			}
			seen[m] = true
			for _, s := range solvers {
				if s.Node == m && s.SolveAt > maxAt {
					maxAt = s.SolveAt
				}
			}
		}
		if c.FormedAt != maxAt {
			t.Fatalf("committee %d FormedAt %v, want %v", c.ID, c.FormedAt, maxAt)
		}
	}
}

func TestAssignByHashDeterministicPerSeed(t *testing.T) {
	solvers, err := Election{}.Run(randx.New(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AssignByHash(epochSeed(7), solvers, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignByHash(epochSeed(7), solvers, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a {
		if len(a[c].Members) != len(b[c].Members) {
			t.Fatal("same seed diverged")
		}
		for i := range a[c].Members {
			if a[c].Members[i] != b[c].Members[i] {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestAssignByHashSeedChangesMembership(t *testing.T) {
	solvers, err := Election{}.Run(randx.New(3), 80)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AssignByHash(epochSeed(1), solvers, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignByHash(epochSeed(2), solvers, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for c := range a {
		for i := range a[c].Members {
			if a[c].Members[i] == b[c].Members[i] {
				same++
			}
		}
	}
	if same == 80 {
		t.Fatal("epoch randomness did not reshuffle committees")
	}
}

func TestAssignByHashUniformity(t *testing.T) {
	// Natural (pre-spill) assignment should be roughly uniform: with many
	// more solvers than seats, committee hash buckets are balanced.
	solvers := make([]Solver, 40000)
	for i := range solvers {
		solvers[i] = Solver{Node: i, SolveAt: time.Duration(i)}
	}
	const committees = 8
	counts := make([]int, committees)
	for _, s := range solvers {
		counts[identityBits(epochSeed(5), s.Node)%committees]++
	}
	want := float64(len(solvers)) / committees
	for c, n := range counts {
		if math.Abs(float64(n)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d of ~%.0f", c, n, want)
		}
	}
}

func TestAssignByHashErrors(t *testing.T) {
	solvers := make([]Solver, 10)
	if _, err := AssignByHash(epochSeed(1), solvers, 0, 5); err != ErrBadSeats {
		t.Fatalf("err = %v", err)
	}
	if _, err := AssignByHash(epochSeed(1), solvers, 3, 4); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v", err)
	}
}

func TestAssignByHashSpillKeepsSeatsExact(t *testing.T) {
	// Tiny committees force spills; every committee must still end with
	// exactly `seats` members.
	solvers, err := Election{}.Run(randx.New(4), 12)
	if err != nil {
		t.Fatal(err)
	}
	coms, err := AssignByHash(epochSeed(9), solvers, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range coms {
		if len(c.Members) != 2 {
			t.Fatalf("committee %d has %d members", c.ID, len(c.Members))
		}
	}
}
