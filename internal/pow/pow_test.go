package pow

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/randx"
)

func TestElectionRunSorted(t *testing.T) {
	solvers, err := Election{}.Run(randx.New(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(solvers) != 100 {
		t.Fatalf("solvers %d", len(solvers))
	}
	if !sort.SliceIsSorted(solvers, func(i, j int) bool {
		return solvers[i].SolveAt < solvers[j].SolveAt
	}) {
		t.Fatal("solvers not sorted by solve time")
	}
	seen := make(map[int]bool)
	for _, s := range solvers {
		if seen[s.Node] {
			t.Fatalf("node %d appears twice", s.Node)
		}
		seen[s.Node] = true
	}
}

func TestElectionMeanSolve(t *testing.T) {
	solvers, err := Election{MeanSolve: 600 * time.Second}.Run(randx.New(2), 40000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range solvers {
		sum += s.SolveAt.Seconds()
	}
	mean := sum / float64(len(solvers))
	// Hash-rate heterogeneity (lognormal mean-1 divisor) inflates the mean
	// slightly; accept a ±10% band around 600 s.
	if math.Abs(mean-600) > 60 {
		t.Fatalf("mean solve %.1f s, want ~600", mean)
	}
}

func TestElectionErrors(t *testing.T) {
	if _, err := (Election{}).Run(randx.New(1), 0); err != ErrNoNodes {
		t.Fatalf("err = %v", err)
	}
}

func TestElectionDeterministic(t *testing.T) {
	a, _ := Election{}.Run(randx.New(7), 50)
	b, _ := Election{}.Run(randx.New(7), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestFormCommittees(t *testing.T) {
	solvers, err := Election{}.Run(randx.New(3), 120)
	if err != nil {
		t.Fatal(err)
	}
	coms, err := FormCommittees(solvers, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(coms) != 5 {
		t.Fatalf("committees %d", len(coms))
	}
	seen := make(map[int]bool)
	for _, c := range coms {
		if len(c.Members) != 20 {
			t.Fatalf("committee %d has %d members", c.ID, len(c.Members))
		}
		if c.FormedAt <= 0 {
			t.Fatalf("committee %d FormedAt %v", c.ID, c.FormedAt)
		}
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("node %d in two committees", m)
			}
			seen[m] = true
		}
	}
}

func TestFormCommitteesFormedAtIsMaxMemberSolve(t *testing.T) {
	solvers := []Solver{
		{Node: 0, SolveAt: 1 * time.Second},
		{Node: 1, SolveAt: 2 * time.Second},
		{Node: 2, SolveAt: 3 * time.Second},
		{Node: 3, SolveAt: 10 * time.Second},
	}
	coms, err := FormCommittees(solvers, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin: committee 0 gets solvers 0,2; committee 1 gets 1,3.
	if coms[0].FormedAt != 3*time.Second {
		t.Fatalf("committee 0 FormedAt %v", coms[0].FormedAt)
	}
	if coms[1].FormedAt != 10*time.Second {
		t.Fatalf("committee 1 FormedAt %v", coms[1].FormedAt)
	}
}

func TestFormCommitteesErrors(t *testing.T) {
	solvers := make([]Solver, 10)
	if _, err := FormCommittees(solvers, 0, 5); err != ErrBadSeats {
		t.Fatalf("err = %v", err)
	}
	if _, err := FormCommittees(solvers, 5, 0); err != ErrBadSeats {
		t.Fatalf("err = %v", err)
	}
	if _, err := FormCommittees(solvers, 3, 4); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v", err)
	}
}

func TestFormCommitteesPartitionProperty(t *testing.T) {
	f := func(seed int64, rawComs, rawSeats uint8) bool {
		coms := int(rawComs)%6 + 1
		seats := int(rawSeats)%8 + 1
		solvers, err := Election{}.Run(randx.New(seed), coms*seats+5)
		if err != nil {
			return false
		}
		formed, err := FormCommittees(solvers, coms, seats)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, c := range formed {
			if len(c.Members) != seats {
				return false
			}
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
			// FormedAt must equal the max solve time of its members.
			var maxAt time.Duration
			for _, s := range solvers {
				for _, m := range c.Members {
					if s.Node == m && s.SolveAt > maxAt {
						maxAt = s.SolveAt
					}
				}
			}
			if c.FormedAt != maxAt {
				return false
			}
		}
		return len(seen) == coms*seats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPuzzleSolveVerify(t *testing.T) {
	seed := chain.Transaction{ID: 1}.Hash()
	p, err := NewPuzzle(seed, 12)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err := p.Solve(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify(nonce) {
		t.Fatal("solution does not verify")
	}
	if nonce > 0 && p.Verify(nonce) && p.Bits >= 1 {
		// A trivially wrong nonce should (overwhelmingly) not verify;
		// check the immediately preceding nonce, which Solve rejected.
		if p.Verify(nonce - 1) {
			t.Fatal("Solve skipped a valid nonce")
		}
	}
}

func TestPuzzleDifficultyScaling(t *testing.T) {
	seed := chain.Transaction{ID: 2}.Hash()
	easy, err := NewPuzzle(seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := NewPuzzle(seed, 16)
	if err != nil {
		t.Fatal(err)
	}
	if easy.ExpectedAttempts() != 16 || hard.ExpectedAttempts() != 65536 {
		t.Fatalf("expected attempts %v %v", easy.ExpectedAttempts(), hard.ExpectedAttempts())
	}
	easyNonce, err := easy.Solve(0, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	hardNonce, err := hard.Solve(0, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if easyNonce > hardNonce {
		t.Fatalf("easier puzzle took more attempts: %d vs %d", easyNonce, hardNonce)
	}
}

func TestPuzzleBudgetExhausted(t *testing.T) {
	seed := chain.Transaction{ID: 3}.Hash()
	p, err := NewPuzzle(seed, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(0, 10); err != ErrNoSolution {
		t.Fatalf("err = %v", err)
	}
}

func TestNewPuzzleBadDifficulty(t *testing.T) {
	seed := chain.Hash{}
	if _, err := NewPuzzle(seed, 0); err != ErrBadDifficulty {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewPuzzle(seed, 65); err != ErrBadDifficulty {
		t.Fatalf("err = %v", err)
	}
}

func TestPuzzleSolutionRate(t *testing.T) {
	// Empirically verify P(valid) ≈ 2^-bits over random nonces.
	seed := chain.Transaction{ID: 4}.Hash()
	p, err := NewPuzzle(seed, 8)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const n = 200000
	for i := uint64(0); i < n; i++ {
		if p.Verify(i) {
			hits++
		}
	}
	rate := float64(hits) / n
	want := 1.0 / 256
	if math.Abs(rate-want) > want/3 {
		t.Fatalf("solution rate %.6f, want ~%.6f", rate, want)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	var h chain.Hash
	if got := leadingZeroBits(h); got != 256 {
		t.Fatalf("all-zero hash: %d", got)
	}
	h[0] = 0x80
	if got := leadingZeroBits(h); got != 0 {
		t.Fatalf("msb-set hash: %d", got)
	}
	h[0] = 0x01
	if got := leadingZeroBits(h); got != 7 {
		t.Fatalf("0x01 hash: %d", got)
	}
	h[0] = 0
	h[9] = 0x40
	if got := leadingZeroBits(h); got != 73 {
		t.Fatalf("deep-zero hash: %d", got)
	}
}
