package pow

import (
	"math"
	"testing"
	"time"

	"mvcom/internal/randx"
)

func TestRetargeterRaisesDifficultyWhenFast(t *testing.T) {
	rt := Retargeter{Target: 600 * time.Second}
	// Miners solved in 300 s on average: expected solve time must double.
	next, err := rt.Adjust(600*time.Second, []time.Duration{300 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next.Seconds()-1200) > 1 {
		t.Fatalf("next %v, want ~1200 s", next)
	}
}

func TestRetargeterLowersDifficultyWhenSlow(t *testing.T) {
	rt := Retargeter{Target: 600 * time.Second}
	next, err := rt.Adjust(600*time.Second, []time.Duration{1200 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next.Seconds()-300) > 1 {
		t.Fatalf("next %v, want ~300 s", next)
	}
}

func TestRetargeterClampsStep(t *testing.T) {
	rt := Retargeter{Target: 600 * time.Second, MaxStep: 4}
	// 100× too fast: clamp to ×4.
	next, err := rt.Adjust(600*time.Second, []time.Duration{6 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next.Seconds()-2400) > 1 {
		t.Fatalf("next %v, want clamped 2400 s", next)
	}
	// 100× too slow: clamp to ÷4.
	next, err = rt.Adjust(600*time.Second, []time.Duration{60000 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next.Seconds()-150) > 1 {
		t.Fatalf("next %v, want clamped 150 s", next)
	}
}

func TestRetargeterErrors(t *testing.T) {
	rt := Retargeter{}
	if _, err := rt.Adjust(600*time.Second, nil); err != ErrNoHistory {
		t.Fatalf("err = %v", err)
	}
	if _, err := rt.Adjust(600*time.Second, []time.Duration{0}); err != ErrNoHistory {
		t.Fatalf("zero observations: %v", err)
	}
}

func TestRetargeterDefaultsAndZeroCurrent(t *testing.T) {
	rt := Retargeter{}
	next, err := rt.Adjust(0, []time.Duration{600 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Observed equals the default target: no change from the default.
	if math.Abs(next.Seconds()-600) > 1 {
		t.Fatalf("next %v, want ~600 s", next)
	}
}

func TestRetargeterConvergesOverEpochs(t *testing.T) {
	// Start mis-calibrated by 3×; repeated elections + retargeting must
	// bring the observed mean near the target within a few epochs.
	rt := Retargeter{Target: 600 * time.Second}
	rng := randx.New(1)
	current := 200 * time.Second // hash power tripled overnight
	var observedMean float64
	for epoch := 0; epoch < 6; epoch++ {
		solvers, err := Election{MeanSolve: current}.Run(rng, 5000)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, s := range solvers {
			sum += s.SolveAt.Seconds()
		}
		observedMean = sum / float64(len(solvers))
		next, err := rt.AdjustFromSolvers(current, solvers)
		if err != nil {
			t.Fatal(err)
		}
		current = next
	}
	if math.Abs(observedMean-600) > 90 {
		t.Fatalf("after retargeting, observed mean %.0f s, want ~600", observedMean)
	}
}

func TestAdjustFromSolvers(t *testing.T) {
	rt := Retargeter{Target: 600 * time.Second}
	solvers := []Solver{{Node: 0, SolveAt: 300 * time.Second}, {Node: 1, SolveAt: 300 * time.Second}}
	next, err := rt.AdjustFromSolvers(600*time.Second, solvers)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next.Seconds()-1200) > 1 {
		t.Fatalf("next %v", next)
	}
	if _, err := rt.AdjustFromSolvers(600*time.Second, nil); err != ErrNoHistory {
		t.Fatalf("err = %v", err)
	}
}
