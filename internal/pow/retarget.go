package pow

import (
	"errors"
	"time"
)

// Retarget errors.
var ErrNoHistory = errors.New("pow: no solve history")

// Retargeter adjusts the election difficulty so the mean solving latency
// tracks a target — the mechanism that keeps the paper's 600-second
// expectation stable as hash power drifts across epochs (Bitcoin-style
// difficulty adjustment, clamped per step like the real protocol).
type Retargeter struct {
	// Target is the desired mean solve time. Default 600 s.
	Target time.Duration
	// MaxStep clamps a single adjustment factor to [1/MaxStep, MaxStep].
	// Default 4 (Bitcoin's rule).
	MaxStep float64
}

func (rt Retargeter) withDefaults() Retargeter {
	if rt.Target <= 0 {
		rt.Target = 600 * time.Second
	}
	if rt.MaxStep <= 1 {
		rt.MaxStep = 4
	}
	return rt
}

// Adjust returns the next epoch's MeanSolve given the observed solve
// times of the last epoch. A fast epoch (observed mean below target)
// raises the difficulty — i.e. the configured MeanSolve grows toward the
// target and vice versa. The adjustment factor is clamped to
// [1/MaxStep, MaxStep].
func (rt Retargeter) Adjust(current time.Duration, observed []time.Duration) (time.Duration, error) {
	rt = rt.withDefaults()
	if len(observed) == 0 {
		return 0, ErrNoHistory
	}
	if current <= 0 {
		current = rt.Target
	}
	var sum float64
	for _, d := range observed {
		sum += d.Seconds()
	}
	mean := sum / float64(len(observed))
	if mean <= 0 {
		return 0, ErrNoHistory
	}
	// If miners solved faster than the target, the per-node expected
	// solve time must increase proportionally (more leading zero bits in
	// the real protocol; a larger exponential mean in the simulation).
	factor := rt.Target.Seconds() / mean
	if factor > rt.MaxStep {
		factor = rt.MaxStep
	}
	if factor < 1/rt.MaxStep {
		factor = 1 / rt.MaxStep
	}
	next := time.Duration(float64(current) * factor)
	if next <= 0 {
		next = time.Nanosecond
	}
	return next, nil
}

// AdjustFromSolvers is Adjust over an election result.
func (rt Retargeter) AdjustFromSolvers(current time.Duration, solvers []Solver) (time.Duration, error) {
	obs := make([]time.Duration, len(solvers))
	for i, s := range solvers {
		obs[i] = s.SolveAt
	}
	return rt.Adjust(current, obs)
}
