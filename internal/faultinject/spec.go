package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds an injector from a compact spec string, the form the CLIs
// accept via -fault-spec. The grammar is
//
//	spec  := entry { ";" entry }
//	entry := point [ ":" opt { "," opt } ]
//	opt   := "prob=" float | "after=" int | "times=" int |
//	         "action=" ( "error" | "delay" | "drop" | "kill" | "restart" ) |
//	         "delay=" duration
//
// A bare point defaults to action=error firing on every hit. An empty
// spec returns a nil injector (chaos off), preserving nil-is-off end to
// end. Example:
//
//	worker.send:after=2,times=1,action=drop;worker.dial:prob=0.5
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, opts, _ := strings.Cut(entry, ":")
		point = strings.TrimSpace(point)
		r := Rule{Point: point}
		if strings.TrimSpace(opts) != "" {
			for _, opt := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: point %s: option %q is not key=value", point, opt)
				}
				key, val = strings.TrimSpace(key), strings.TrimSpace(val)
				var err error
				switch key {
				case "prob":
					r.Prob, err = strconv.ParseFloat(val, 64)
				case "after":
					r.After, err = strconv.Atoi(val)
				case "times":
					r.Times, err = strconv.Atoi(val)
				case "delay":
					r.Delay, err = time.ParseDuration(val)
				case "action":
					switch val {
					case "error":
						r.Action = ActError
					case "delay":
						r.Action = ActDelay
					case "drop":
						r.Action = ActDrop
					case "kill":
						r.Action = ActKill
					case "restart":
						r.Action = ActRestart
					default:
						err = fmt.Errorf("unknown action %q", val)
					}
				default:
					err = fmt.Errorf("unknown option %q", key)
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: point %s: %v", point, err)
				}
			}
		}
		if r.Action == ActDelay && r.Delay <= 0 {
			// A delay action without an explicit duration gets a small
			// default so "action=delay" alone is usable from the CLI.
			r.Delay = 100 * time.Millisecond
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(seed, rules...)
}
