package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, seed int64, rules ...Rule) *Injector {
	t.Helper()
	in, err := New(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d := in.Eval("anything"); d.Action != ActNone || d.Err != nil {
		t.Fatalf("nil injector fired: %+v", d)
	}
	if in.Fires("anything") != 0 || in.Hits("anything") != 0 {
		t.Fatal("nil injector kept state")
	}
	if in.Points() != nil {
		t.Fatal("nil injector lists points")
	}
}

func TestUnknownPointNeverFires(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: "a"})
	for i := 0; i < 10; i++ {
		if d := in.Eval("b"); d.Action != ActNone {
			t.Fatalf("unarmed point fired on hit %d", i)
		}
	}
}

func TestAfterWindowThenFires(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: "p", After: 3, Action: ActDrop})
	for i := 0; i < 3; i++ {
		if d := in.Eval("p"); d.Action != ActNone {
			t.Fatalf("fired inside the After window at hit %d", i+1)
		}
	}
	d := in.Eval("p")
	if d.Action != ActDrop {
		t.Fatalf("hit 4 action = %v, want drop", d.Action)
	}
	if !errors.Is(d.Err, ErrInjected) {
		t.Fatalf("decision error %v does not wrap ErrInjected", d.Err)
	}
	if in.Hits("p") != 4 || in.Fires("p") != 1 {
		t.Fatalf("hits=%d fires=%d, want 4/1", in.Hits("p"), in.Fires("p"))
	}
}

func TestTimesCapExhausts(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: "p", Times: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Eval("p").Action == ActError {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want exactly 2", fired)
	}
}

func TestProbabilityIsSeededDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := mustNew(t, seed, Rule{Point: "p", Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Eval("p").Action != ActNone
		}
		return out
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	// 64 fair-ish coins: both all-fire and no-fire would mean the
	// probability gate is broken.
	if fired == 0 || fired == 64 {
		t.Fatalf("prob=0.5 fired %d/64 times", fired)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical coin sequences")
	}
}

func TestDelayActionCarriesDuration(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: "p", Action: ActDelay, Delay: 5 * time.Millisecond})
	d := in.Eval("p")
	if d.Action != ActDelay || d.Delay != 5*time.Millisecond {
		t.Fatalf("decision %+v", d)
	}
	if d.Err != nil {
		t.Fatalf("delay decisions must not carry an error, got %v", d.Err)
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	cases := []Rule{
		{Point: ""},
		{Point: "p", Prob: -0.1},
		{Point: "p", Prob: 1.5},
		{Point: "p", After: -1},
		{Point: "p", Times: -2},
		{Point: "p", Action: ActDelay}, // delay action without duration
	}
	for i, r := range cases {
		if _, err := New(1, r); err == nil {
			t.Fatalf("case %d: bad rule %+v accepted", i, r)
		}
	}
	if _, err := New(1, Rule{Point: "p"}, Rule{Point: "p"}); err == nil {
		t.Fatal("duplicate point accepted")
	}
}

func TestPointsSorted(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: "z"}, Rule{Point: "a"}, Rule{Point: "m"})
	got := in.Points()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("points %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points %v, want %v", got, want)
		}
	}
}

func TestConcurrentEvalIsSafe(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: "p", Prob: 0.5, Times: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Eval("p")
			}
		}()
	}
	wg.Wait()
	if hits := in.Hits("p"); hits != 1600 {
		t.Fatalf("hits = %d, want 1600", hits)
	}
	if fires := in.Fires("p"); fires != 100 {
		t.Fatalf("fires = %d, want the Times cap 100", fires)
	}
}
