package faultinject

import (
	"testing"
	"time"
)

func TestParseEmptySpecIsOff(t *testing.T) {
	for _, spec := range []string{"", "   ", ";", " ; "} {
		in, err := Parse(spec, 1)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		if in != nil {
			t.Fatalf("spec %q produced a live injector", spec)
		}
	}
}

func TestParseFullGrammar(t *testing.T) {
	in, err := Parse("worker.send:after=2,times=1,action=drop; worker.dial:prob=0.25 ;coordinator.recv:action=delay,delay=50ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	points := in.Points()
	if len(points) != 3 {
		t.Fatalf("points %v", points)
	}
	// worker.send: two passes free, then one drop, then exhausted.
	if d := in.Eval("worker.send"); d.Action != ActNone {
		t.Fatal("fired on first hit despite after=2")
	}
	in.Eval("worker.send")
	if d := in.Eval("worker.send"); d.Action != ActDrop {
		t.Fatalf("third hit action %v, want drop", d.Action)
	}
	if d := in.Eval("worker.send"); d.Action != ActNone {
		t.Fatal("fired past times=1")
	}
	// coordinator.recv: delay decision with the parsed duration.
	if d := in.Eval("coordinator.recv"); d.Action != ActDelay || d.Delay != 50*time.Millisecond {
		t.Fatalf("delay decision %+v", d)
	}
}

func TestParseBarePointDefaultsToError(t *testing.T) {
	in, err := Parse("worker.task", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Eval("worker.task"); d.Action != ActError || d.Err == nil {
		t.Fatalf("bare point decision %+v", d)
	}
}

func TestParseDelayActionDefaultDuration(t *testing.T) {
	in, err := Parse("p:action=delay", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Eval("p"); d.Action != ActDelay || d.Delay <= 0 {
		t.Fatalf("decision %+v", d)
	}
}

func TestParseProcessActions(t *testing.T) {
	in, err := Parse("proc.w1:times=1,action=kill;proc.w2:action=restart,delay=200ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Eval("proc.w1"); d.Action != ActKill {
		t.Fatalf("proc.w1 decision %+v, want kill", d)
	}
	if d := in.Eval("proc.w1"); d.Action != ActNone {
		t.Fatal("kill fired past times=1")
	}
	d := in.Eval("proc.w2")
	if d.Action != ActRestart || d.Delay != 200*time.Millisecond {
		t.Fatalf("proc.w2 decision %+v, want restart with 200ms relaunch delay", d)
	}
	if ActKill.String() != "kill" || ActRestart.String() != "restart" {
		t.Fatalf("action names %q %q", ActKill.String(), ActRestart.String())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"p:prob=abc",
		"p:after=1.5",
		"p:times=x",
		"p:delay=fast",
		"p:action=explode",
		"p:wat=1",
		"p:justaword",
		":prob=1",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}
