// Package faultinject provides deterministic fault injection for the
// distributed SE runtime and the epoch pipeline. Production code declares
// *named fault points* (plain strings such as "worker.send" or
// "epoch.committee") and asks an Injector for a decision every time
// execution passes the point; the injector answers from per-point rules —
// fire with a probability, fire only after the first N passes, fire at
// most M times — driven by an explicitly seeded RNG so every chaos run is
// reproducible bit-for-bit.
//
// The package follows the repo-wide "nil is off" convention of
// internal/obs: a nil *Injector evaluates every point to no-op, so call
// sites never branch on whether chaos is enabled. The package is stdlib
// only and deliberately knows nothing about sockets or engines — actions
// are symbolic (error / delay / conn-drop) and each injection site
// interprets them (e.g. the dist codec closes its connection on ActDrop).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error so tests
// and recovery paths can recognise synthetic faults with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Action is what an injection site should do when a point fires.
type Action uint8

// The fault actions.
const (
	// ActNone means the point did not fire; proceed normally.
	ActNone Action = iota
	// ActError makes the site fail with Decision.Err.
	ActError
	// ActDelay makes the site sleep Decision.Delay, then proceed.
	ActDelay
	// ActDrop makes the site tear down its transport (close the
	// connection) and fail with Decision.Err. Sites without a transport
	// treat it like ActError.
	ActDrop
	// ActKill is a process-level action: the supervising harness
	// (internal/procharness) SIGKILLs the target process. Transport-level
	// sites that cannot kill a process ignore it.
	ActKill
	// ActRestart is a process-level action: SIGKILL the target process,
	// wait Decision.Delay (optional), and launch a fresh incarnation.
	// Transport-level sites ignore it.
	ActRestart
)

// String names the action for specs, logs, and metric labels.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActError:
		return "error"
	case ActDelay:
		return "delay"
	case ActDrop:
		return "drop"
	case ActKill:
		return "kill"
	case ActRestart:
		return "restart"
	default:
		return "unknown"
	}
}

// Rule arms one fault point. The zero value of every optional field means
// "no constraint": Prob 0 is treated as 1 (always), After 0 fires from the
// first hit, Times 0 never exhausts.
type Rule struct {
	// Point names the fault point the rule arms.
	Point string
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1.
	Prob float64
	// After lets the first After hits pass before the rule may fire.
	After int
	// Times caps how many times the rule fires; 0 is unlimited.
	Times int
	// Action is what the site should do; ActNone defaults to ActError.
	Action Action
	// Delay is the sleep for ActDelay, or the optional pause between the
	// kill and the relaunch for ActRestart.
	Delay time.Duration
}

// Decision is the verdict for one pass through a fault point.
type Decision struct {
	// Action is ActNone when the point did not fire.
	Action Action
	// Delay is the sleep duration for ActDelay.
	Delay time.Duration
	// Err wraps ErrInjected with the point name for ActError/ActDrop.
	Err error
}

// ruleState is a rule plus its hit accounting.
type ruleState struct {
	rule  Rule
	hits  int // passes through the point, fired or not
	fires int // times the rule fired
}

// Injector evaluates fault points against armed rules. Safe for
// concurrent use; a nil *Injector is fully inert.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*ruleState
}

// New returns an injector with the given rules, drawing per-hit
// probability coins from a generator seeded with seed. Rules for invalid
// points (empty name) or non-positive delays on ActDelay are rejected.
func New(seed int64, rules ...Rule) (*Injector, error) {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*ruleState, len(rules)),
	}
	for _, r := range rules {
		if r.Point == "" {
			return nil, errors.New("faultinject: rule with empty point")
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faultinject: point %s: prob %v out of (0, 1]", r.Point, r.Prob)
		}
		if r.After < 0 || r.Times < 0 {
			return nil, fmt.Errorf("faultinject: point %s: negative trigger bound", r.Point)
		}
		if r.Action == ActDelay && r.Delay <= 0 {
			return nil, fmt.Errorf("faultinject: point %s: delay action needs a positive delay", r.Point)
		}
		if _, dup := in.rules[r.Point]; dup {
			return nil, fmt.Errorf("faultinject: duplicate rule for point %s", r.Point)
		}
		if r.Action == ActNone {
			r.Action = ActError
		}
		in.rules[r.Point] = &ruleState{rule: r}
	}
	return in, nil
}

// Eval records one pass through the named point and returns the decision.
// A nil injector, an unknown point, an exhausted rule, a pass inside the
// After window, or a lost probability coin all return ActNone.
func (in *Injector) Eval(point string) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.rules[point]
	if !ok {
		return Decision{}
	}
	st.hits++
	if st.hits <= st.rule.After {
		return Decision{}
	}
	if st.rule.Times > 0 && st.fires >= st.rule.Times {
		return Decision{}
	}
	if p := st.rule.Prob; p > 0 && p < 1 && in.rng.Float64() >= p {
		return Decision{}
	}
	st.fires++
	d := Decision{Action: st.rule.Action, Delay: st.rule.Delay}
	if d.Action != ActDelay {
		d.Err = fmt.Errorf("%w at %s", ErrInjected, point)
	}
	return d
}

// Fires reports how many times the named point has fired (0 for nil).
func (in *Injector) Fires(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.rules[point]; ok {
		return st.fires
	}
	return 0
}

// Hits reports how many passes the named point has seen (0 for nil).
func (in *Injector) Hits(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.rules[point]; ok {
		return st.hits
	}
	return 0
}

// Points lists the armed points in sorted order (nil for nil).
func (in *Injector) Points() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.rules))
	for p := range in.rules {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
