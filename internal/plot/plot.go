// Package plot renders figure series as ASCII line charts for terminal
// quick-looks: `mvcom-bench -fig 8 -ascii` draws the convergence curves
// without leaving the shell. Rendering is deterministic and allocation
// light; it is a diagnostics aid, not a replacement for the TSV output.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Errors returned by the renderer.
var (
	ErrNoSeries = errors.New("plot: no series")
	ErrTooSmall = errors.New("plot: canvas too small")
)

// Series is one line on the chart.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Options controls the canvas.
type Options struct {
	// Width and Height of the plotting area in characters. Defaults
	// 72×20; minimum 16×4.
	Width  int
	Height int
	// Title is printed above the chart.
	Title string
	// XLabel / YLabel annotate the axes.
	XLabel string
	YLabel string
}

func (o Options) withDefaults() (Options, error) {
	if o.Width == 0 {
		o.Width = 72
	}
	if o.Height == 0 {
		o.Height = 20
	}
	if o.Width < 16 || o.Height < 4 {
		return o, ErrTooSmall
	}
	return o, nil
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws the series onto an ASCII canvas and writes it to w.
func Render(w io.Writer, series []Series, opts Options) error {
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	var pts int
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x but %d y", s.Label, len(s.X), len(s.Y))
		}
		pts += len(s.X)
	}
	if len(series) == 0 || pts == 0 {
		return ErrNoSeries
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(opts.Width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(opts.Height-1))
			row := opts.Height - 1 - cy
			grid[row][cx] = mark
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yHi := formatTick(maxY)
	yLo := formatTick(minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		}
		if r == opts.Height-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), opts.Width-len(formatTick(maxX)), formatTick(minX), formatTick(maxX))
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", opts.XLabel, opts.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// formatTick renders an axis value compactly (SI-style suffixes).
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av == 0:
		return "0"
	case av < 0.01:
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
