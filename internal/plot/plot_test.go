package plot

import (
	"errors"
	"strings"
	"testing"
)

func lineSeries() []Series {
	xs := make([]float64, 20)
	up := make([]float64, 20)
	down := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i)
		up[i] = float64(i * i)
		down[i] = float64(400 - i*i)
	}
	return []Series{
		{Label: "up", X: xs, Y: up},
		{Label: "down", X: xs, Y: down},
	}
}

func TestRenderBasics(t *testing.T) {
	var b strings.Builder
	err := Render(&b, lineSeries(), Options{Title: "test chart", XLabel: "iter", YLabel: "util"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "x: iter   y: util") {
		t.Fatal("missing axis labels")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing plotted points")
	}
	// Axis line present.
	if !strings.Contains(out, "+"+strings.Repeat("-", 72)) {
		t.Fatal("missing x axis")
	}
}

func TestRenderMarkerPlacement(t *testing.T) {
	// A strictly increasing line must put its marker in the top-right and
	// bottom-left corners of the canvas.
	var b strings.Builder
	s := []Series{{Label: "diag", X: []float64{0, 1}, Y: []float64{0, 1}}}
	if err := Render(&b, s, Options{Width: 16, Height: 4}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	var rows []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rows = append(rows, l[strings.Index(l, "|")+1:])
		}
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0][15] != '*' {
		t.Fatalf("top-right marker missing: %q", rows[0])
	}
	if rows[3][0] != '*' {
		t.Fatalf("bottom-left marker missing: %q", rows[3])
	}
}

func TestRenderErrors(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, nil, Options{}); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v", err)
	}
	if err := Render(&b, []Series{{Label: "e"}}, Options{}); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("empty series: %v", err)
	}
	if err := Render(&b, lineSeries(), Options{Width: 4, Height: 2}); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("tiny canvas: %v", err)
	}
	bad := []Series{{Label: "bad", X: []float64{1}, Y: []float64{1, 2}}}
	if err := Render(&b, bad, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var b strings.Builder
	s := []Series{{Label: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}
	if err := Render(&b, s, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("flat series not drawn")
	}
}

func TestFormatTick(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{1234, "1.2k"},
		{2_500_000, "2.5M"},
		{3e9, "3.0G"},
		{0.001, "1.00e-03"},
		{-1234, "-1.2k"},
	}
	for _, tt := range tests {
		if got := formatTick(tt.give); got != tt.want {
			t.Fatalf("formatTick(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
