package procharness

import (
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"mvcom/internal/faultinject"
)

// sh builds a spec that runs a shell snippet — the tests' stand-in for
// real cluster binaries.
func sh(name, script string) Spec {
	return Spec{Name: name, Path: shPath(), Args: []string{"-c", script}}
}

func shPath() string {
	p, err := exec.LookPath("sh")
	if err != nil {
		return "/bin/sh"
	}
	return p
}

func newTestHarness(t *testing.T, opts Options) *Harness {
	t.Helper()
	h := New(opts)
	t.Cleanup(func() {
		if err := h.Close(); err != nil {
			t.Errorf("harness close: %v", err)
		}
	})
	return h
}

func TestStartWaitExitAndExitCode(t *testing.T) {
	h := newTestHarness(t, Options{})
	if err := h.Define(sh("ok", "exit 0")); err != nil {
		t.Fatal(err)
	}
	if err := h.Define(sh("bad", "exit 3")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("ok"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("bad"); err != nil {
		t.Fatal(err)
	}
	if code, err := h.WaitExit("ok", 5*time.Second); err != nil || code != 0 {
		t.Fatalf("ok exit = %d, %v", code, err)
	}
	if code, err := h.WaitExit("bad", 5*time.Second); err != nil || code != 3 {
		t.Fatalf("bad exit = %d, %v", code, err)
	}
}

func TestReadinessCaptureGroups(t *testing.T) {
	h := newTestHarness(t, Options{})
	spec := sh("srv", `echo "listening on 127.0.0.1:4567"; sleep 30`)
	spec.ReadyLog = `listening on ([0-9.]+):([0-9]+)`
	if err := h.Define(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("srv"); err != nil {
		t.Fatal(err)
	}
	m, err := h.WaitReady("srv")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[1] != "127.0.0.1" || m[2] != "4567" {
		t.Fatalf("capture groups %v", m)
	}
}

func TestReadinessTimeout(t *testing.T) {
	h := newTestHarness(t, Options{})
	spec := sh("mute", "sleep 30")
	spec.ReadyLog = "never printed"
	spec.ReadyTimeout = 200 * time.Millisecond
	if err := h.Define(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("mute"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := h.WaitReady("mute"); err == nil {
		t.Fatal("readiness probe passed without any output")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeout took %v, want ~200ms", el)
	}
}

func TestReadinessFailsFastOnEarlyExit(t *testing.T) {
	h := newTestHarness(t, Options{})
	spec := sh("crash", `echo "boot"; exit 1`)
	spec.ReadyLog = "never printed"
	spec.ReadyTimeout = 10 * time.Second
	if err := h.Define(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("crash"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := h.WaitReady("crash")
	if err == nil {
		t.Fatal("readiness passed on a crashed process")
	}
	if !strings.Contains(err.Error(), "exited") {
		t.Fatalf("error %v does not mention the exit", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("early exit detection took %v, should not wait out the 10s timeout", el)
	}
}

func TestKillRestartFreshPID(t *testing.T) {
	h := newTestHarness(t, Options{})
	spec := sh("w", `echo up; sleep 60`)
	spec.ReadyLog = "up"
	if err := h.Define(spec); err != nil {
		t.Fatal(err)
	}
	p0, err := h.Start("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitReady("w"); err != nil {
		t.Fatal(err)
	}
	pid0 := p0.PID()
	p1, err := h.Restart("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitReady("w"); err != nil {
		t.Fatal(err)
	}
	if done, code := p0.Exited(); !done || code != -1 {
		t.Fatalf("old incarnation exited=%v code=%d, want reaped with signal code -1", done, code)
	}
	if !p0.KilledByHarness() {
		t.Fatal("old incarnation not marked harness-killed")
	}
	if p1.PID() == pid0 {
		t.Fatalf("restart reused pid %d", pid0)
	}
	if p1.Incarnation != 1 {
		t.Fatalf("incarnation = %d, want 1", p1.Incarnation)
	}
	if got := len(h.Procs()); got != 2 {
		t.Fatalf("history has %d incarnations, want 2", got)
	}
}

func TestOrphanReapingOnClose(t *testing.T) {
	h := New(Options{})
	// The shell backgrounds a grandchild and prints its pid: killing
	// only the direct child would leak it; killing the process group
	// must take both.
	if err := h.Define(sh("tree", `sleep 60 & echo "grandchild $!"; sleep 60`)); err != nil {
		t.Fatal(err)
	}
	p, err := h.Start("tree")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.WaitLog(`grandchild ([0-9]+)`, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	grandchild, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	child := p.PID()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Fatalf("child %d still alive after Close", child)
	}
	// The grandchild shares the process group, so group-kill must have
	// taken it as well. Give the kernel a beat to finish the teardown.
	deadline := time.Now().Add(2 * time.Second)
	for pidAlive(grandchild) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if pidAlive(grandchild) {
		t.Fatalf("grandchild %d leaked past Close", grandchild)
	}
	// Close is idempotent and the harness refuses new work.
	if err := h.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := h.Start("tree"); err == nil {
		t.Fatal("start succeeded on a closed harness")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	h := newTestHarness(t, Options{})
	if err := h.Define(sh("a", "sleep 60")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("a"); err == nil {
		t.Fatal("second start of a live process succeeded")
	}
	if live := h.Live(); len(live) != 1 || live[0] != "a" {
		t.Fatalf("live = %v", live)
	}
}

func TestDefineValidation(t *testing.T) {
	h := newTestHarness(t, Options{})
	if err := h.Define(Spec{Path: "/bin/true"}); err == nil {
		t.Fatal("nameless spec accepted")
	}
	if err := h.Define(Spec{Name: "x"}); err == nil {
		t.Fatal("pathless spec accepted")
	}
	bad := sh("re", "true")
	bad.ReadyLog = "("
	if err := h.Define(bad); err == nil {
		t.Fatal("invalid ReadyLog regexp accepted")
	}
	if err := h.Define(sh("dup", "true")); err != nil {
		t.Fatal(err)
	}
	if err := h.Define(sh("dup", "true")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := h.Start("ghost"); err == nil {
		t.Fatal("start of undefined process succeeded")
	}
	if err := h.Kill("ghost"); err == nil {
		t.Fatal("kill of undefined process succeeded")
	}
}

func TestEvalProcFaultsKillOnce(t *testing.T) {
	fi, err := faultinject.Parse("proc.victim:times=1,action=kill", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHarness(t, Options{FI: fi})
	if err := h.Define(sh("victim", "sleep 60")); err != nil {
		t.Fatal(err)
	}
	if err := h.Define(sh("bystander", "sleep 60")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start("bystander"); err != nil {
		t.Fatal(err)
	}
	fired := h.EvalProcFaults()
	if len(fired) != 1 || fired[0].Proc != "victim" || fired[0].Action != faultinject.ActKill {
		t.Fatalf("fired = %+v", fired)
	}
	if done, _ := h.Proc("victim").Exited(); !done {
		t.Fatal("victim still running after kill decision")
	}
	if done, _ := h.Proc("bystander").Exited(); done {
		t.Fatal("bystander was killed")
	}
	// times=1 exhausted: a second pass is a no-op (victim is dead anyway,
	// but the bystander must also stay untouched).
	if fired := h.EvalProcFaults(); len(fired) != 0 {
		t.Fatalf("second pass fired %+v", fired)
	}
}

func TestEvalProcFaultsRestart(t *testing.T) {
	fi, err := faultinject.Parse("proc.w:times=1,action=restart,delay=50ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHarness(t, Options{FI: fi})
	spec := sh("w", "echo up; sleep 60")
	spec.ReadyLog = "up"
	if err := h.Define(spec); err != nil {
		t.Fatal(err)
	}
	p0, err := h.Start("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitReady("w"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	fired := h.EvalProcFaults()
	if len(fired) != 1 || fired[0].Action != faultinject.ActRestart {
		t.Fatalf("fired = %+v", fired)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("restart honored no relaunch delay (%v)", el)
	}
	p1 := h.Proc("w")
	if p1 == nil || p1.PID() == p0.PID() || p1.Incarnation != 1 {
		t.Fatalf("no fresh incarnation after restart decision: %+v", p1)
	}
	if _, err := h.WaitReady("w"); err != nil {
		t.Fatal(err)
	}
}

func TestStartChaosTicks(t *testing.T) {
	fi, err := faultinject.Parse("proc.w:after=2,times=1,action=kill", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHarness(t, Options{FI: fi})
	if err := h.Define(sh("w", "sleep 60")); err != nil {
		t.Fatal(err)
	}
	p, err := h.Start("w")
	if err != nil {
		t.Fatal(err)
	}
	stop := h.StartChaos(20 * time.Millisecond)
	defer stop()
	// after=2 arms the kill on the third tick; well under the deadline.
	if _, err := p.WaitExit(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
}
