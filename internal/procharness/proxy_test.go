package procharness

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

// startEcho runs a line-echo TCP server for the proxy to front.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo:%s\n", sc.Text())
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func roundtrip(addr, msg string) (string, error) {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(c, "%s\n", msg); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return "", err
	}
	return line, nil
}

func TestProxyPartitionHeal(t *testing.T) {
	backend := startEcho(t)
	h := newTestHarness(t, Options{})
	px, err := h.StartProxy("net", backend)
	if err != nil {
		t.Fatal(err)
	}
	addr := px.Addr()

	if got, err := roundtrip(addr, "hello"); err != nil || got != "echo:hello\n" {
		t.Fatalf("through proxy: %q, %v", got, err)
	}

	// A connection alive across the partition must be severed.
	live, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if _, err := fmt.Fprintf(live, "pre\n"); err != nil {
		t.Fatal(err)
	}
	if line, err := bufio.NewReader(live).ReadString('\n'); err != nil || line != "echo:pre\n" {
		t.Fatalf("pre-partition roundtrip: %q, %v", line, err)
	}

	if err := px.Partition(); err != nil {
		t.Fatal(err)
	}
	_ = live.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(live).ReadString('\n'); err == nil {
		t.Fatal("established connection survived the partition")
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("new dial succeeded while partitioned")
	}

	if err := px.Heal(); err != nil {
		t.Fatal(err)
	}
	if got, err := roundtrip(addr, "back"); err != nil || got != "echo:back\n" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
	if px.Addr() != addr {
		t.Fatalf("address changed across heal: %s -> %s", addr, px.Addr())
	}

	// Idempotence + close.
	if err := px.Heal(); err != nil {
		t.Fatal(err)
	}
	if err := px.Close(); err != nil {
		t.Fatal(err)
	}
	if err := px.Heal(); err == nil {
		t.Fatal("heal succeeded on a closed proxy")
	}
}

func TestProxyDuplicateAndLookup(t *testing.T) {
	backend := startEcho(t)
	h := newTestHarness(t, Options{})
	if _, err := h.StartProxy("net", backend); err != nil {
		t.Fatal(err)
	}
	if _, err := h.StartProxy("net", backend); err == nil {
		t.Fatal("duplicate proxy name accepted")
	}
	if h.ProxyByName("net") == nil {
		t.Fatal("registered proxy not found")
	}
	if h.ProxyByName("ghost") != nil {
		t.Fatal("phantom proxy found")
	}
}
