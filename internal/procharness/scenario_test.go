package procharness

import (
	"strings"
	"testing"
	"time"
)

func TestParseScenarioValid(t *testing.T) {
	script := `
# boot the cluster
start coord
wait-ready coord 5s
start w1        # first worker
sleep 250ms
kill w1
restart w1
wait-exit w1 2s
partition net
heal net
chaos-tick
`
	steps, err := ParseScenarioString(script)
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Op: "start", Target: "coord", Line: 3},
		{Op: "wait-ready", Target: "coord", D: 5 * time.Second, Line: 4},
		{Op: "start", Target: "w1", Line: 5},
		{Op: "sleep", D: 250 * time.Millisecond, Line: 6},
		{Op: "kill", Target: "w1", Line: 7},
		{Op: "restart", Target: "w1", Line: 8},
		{Op: "wait-exit", Target: "w1", D: 2 * time.Second, Line: 9},
		{Op: "partition", Target: "net", Line: 10},
		{Op: "heal", Target: "net", Line: 11},
		{Op: "chaos-tick", Line: 12},
	}
	if len(steps) != len(want) {
		t.Fatalf("parsed %d steps, want %d: %+v", len(steps), len(want), steps)
	}
	for i, s := range steps {
		if s != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestParseScenarioGarbage(t *testing.T) {
	for _, script := range []string{
		"explode w1",          // unknown op
		"start",               // missing target
		"sleep",               // missing duration
		"sleep fast",          // bad duration
		"sleep -1s",           // negative duration
		"kill w1 extra",       // trailing token
		"wait-ready w1 5s no", // trailing token after optional duration
		"chaos-tick w1",       // op takes no args
	} {
		if _, err := ParseScenarioString(script); err == nil {
			t.Fatalf("script %q accepted", script)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("script %q: error %v lacks a line number", script, err)
		}
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	h := newTestHarness(t, Options{})
	spec := sh("w", "echo up; sleep 60")
	spec.ReadyLog = "up"
	if err := h.Define(spec); err != nil {
		t.Fatal(err)
	}
	steps, err := ParseScenarioString(`
start w
wait-ready w 5s
restart w
wait-ready w 5s
kill w
wait-exit w 5s
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RunScenario(steps); err != nil {
		t.Fatal(err)
	}
	if p := h.Proc("w"); p.Incarnation != 1 {
		t.Fatalf("incarnation %d, want 1 after one restart", p.Incarnation)
	}
}

func TestRunScenarioErrorCarriesLine(t *testing.T) {
	h := newTestHarness(t, Options{})
	steps, err := ParseScenarioString("start ghost")
	if err != nil {
		t.Fatal(err)
	}
	rerr := h.RunScenario(steps)
	if rerr == nil {
		t.Fatal("scenario with undefined process succeeded")
	}
	if !strings.Contains(rerr.Error(), "line 1") {
		t.Fatalf("error %v lacks the script line", rerr)
	}
}
