//go:build !unix

package procharness

import "os/exec"

// setSysProcAttr is a no-op outside unix; Proc.kill falls back to
// Process.Kill on the child alone.
func setSysProcAttr(cmd *exec.Cmd) {}

// killGroup is a no-op outside unix (Proc.kill still calls
// Process.Kill on the child itself).
func killGroup(pid int) {}

// pidAlive cannot be probed portably without unix signals; report not
// alive so leak checks degrade to the harness's own reap bookkeeping.
func pidAlive(pid int) bool { return false }
