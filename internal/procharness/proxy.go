package procharness

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP forwarder the harness interposes between processes so
// a scenario can partition them without touching either process: the
// front listener's address is handed to the client process instead of
// the real target, Partition closes the listener and severs every
// established connection (both sides see a hard connection reset, the
// same signal a network partition or a crashed peer produces), and Heal
// re-listens on the very same address so reconnect loops on the client
// side find the path again.
type Proxy struct {
	name   string
	target string

	mu     sync.Mutex
	ln     net.Listener
	addr   string
	conns  map[net.Conn]struct{}
	down   bool
	closed bool
	wg     sync.WaitGroup
}

// StartProxy starts a partitionable forwarder toward target
// ("host:port") listening on an ephemeral loopback port. The proxy is
// registered with the harness and shut down by Close.
func (h *Harness) StartProxy(name, target string) (*Proxy, error) {
	if name == "" || target == "" {
		return nil, errors.New("procharness: proxy needs a name and a target")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("procharness: proxy %s: %w", name, err)
	}
	p := &Proxy{
		name:   name,
		target: target,
		ln:     ln,
		addr:   ln.Addr().String(),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop(ln)

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		_ = p.Close()
		return nil, errors.New("procharness: harness closed")
	}
	if _, dup := h.proxies[name]; dup {
		_ = p.Close()
		return nil, fmt.Errorf("procharness: duplicate proxy %s", name)
	}
	h.proxies[name] = p
	return p, nil
}

// Proxy returns a registered proxy by name (nil if unknown).
func (h *Harness) ProxyByName(name string) *Proxy {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.proxies[name]
}

// Addr is the proxy's stable front address; it survives Partition/Heal
// cycles so client configuration never changes.
func (p *Proxy) Addr() string { return p.addr }

// Partition closes the listener and severs every live connection. New
// dials to Addr fail until Heal.
func (p *Proxy) Partition() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("procharness: proxy closed")
	}
	if p.down {
		p.mu.Unlock()
		return nil
	}
	p.down = true
	ln := p.ln
	p.ln = nil
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		abort(c)
	}
	p.wg.Wait()
	return nil
}

// Heal re-listens on the proxy's original address, restoring the path.
func (p *Proxy) Heal() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("procharness: proxy closed")
	}
	if !p.down {
		return nil
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return fmt.Errorf("procharness: heal %s: %w", p.name, err)
	}
	p.ln = ln
	p.down = false
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// Close partitions permanently and releases the address.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	err := p.Partition()
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return err
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		client, err := ln.Accept()
		if err != nil {
			return // listener closed by Partition/Close
		}
		upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			abort(client)
			continue
		}
		p.mu.Lock()
		if p.down || p.closed {
			p.mu.Unlock()
			abort(client)
			abort(upstream)
			return
		}
		p.conns[client] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(client, upstream)
		go p.pipe(upstream, client)
	}
}

// pipe copies src→dst until either side drops, then severs both so the
// peer notices immediately.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	abort(src)
	abort(dst)
	p.mu.Lock()
	delete(p.conns, src)
	delete(p.conns, dst)
	p.mu.Unlock()
}

// abort closes a TCP connection with a RST instead of a graceful FIN,
// which is how a partitioned or crashed peer actually presents.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}
