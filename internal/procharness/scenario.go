package procharness

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Scenario scripting: a scenario is a plain-text script, one operation
// per line, '#' starting a comment. Operations:
//
//	start <proc>                launch a defined process
//	wait-ready <proc> [dur]     block until its readiness probes pass
//	kill <proc>                 SIGKILL its process group
//	restart <proc>              kill (if alive) + fresh incarnation
//	wait-exit <proc> [dur]      block until it exits (default 30s)
//	sleep <dur>                 pause the script
//	partition <proxy>           sever a named proxy
//	heal <proxy>                restore a severed proxy
//	chaos-tick                  one EvalProcFaults pass
//
// Durations use Go syntax (500ms, 2s). Parsing is strict — unknown
// operations, missing arguments, or trailing tokens are errors with
// line numbers — so a typo'd chaos script fails loudly instead of
// silently skipping the kill it was supposed to inject.

// Step is one parsed scenario operation.
type Step struct {
	Op     string
	Target string
	D      time.Duration
	Line   int
}

// opShape describes an operation's argument contract.
var opShapes = map[string]struct {
	needsTarget bool
	optionalDur bool
	needsDur    bool
}{
	"start":      {needsTarget: true},
	"kill":       {needsTarget: true},
	"restart":    {needsTarget: true},
	"wait-ready": {needsTarget: true, optionalDur: true},
	"wait-exit":  {needsTarget: true, optionalDur: true},
	"sleep":      {needsDur: true},
	"partition":  {needsTarget: true},
	"heal":       {needsTarget: true},
	"chaos-tick": {},
}

// ParseScenario parses a scenario script, validating every line.
func ParseScenario(r io.Reader) ([]Step, error) {
	var steps []Step
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		op := strings.ToLower(fields[0])
		shape, ok := opShapes[op]
		if !ok {
			return nil, fmt.Errorf("scenario line %d: unknown operation %q", line, fields[0])
		}
		step := Step{Op: op, Line: line}
		args := fields[1:]
		if shape.needsTarget {
			if len(args) == 0 {
				return nil, fmt.Errorf("scenario line %d: %s needs a target", line, op)
			}
			step.Target = args[0]
			args = args[1:]
		}
		switch {
		case shape.needsDur:
			if len(args) == 0 {
				return nil, fmt.Errorf("scenario line %d: %s needs a duration", line, op)
			}
			d, err := time.ParseDuration(args[0])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("scenario line %d: bad duration %q", line, args[0])
			}
			step.D = d
			args = args[1:]
		case shape.optionalDur && len(args) > 0:
			d, err := time.ParseDuration(args[0])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("scenario line %d: bad duration %q", line, args[0])
			}
			step.D = d
			args = args[1:]
		}
		if len(args) > 0 {
			return nil, fmt.Errorf("scenario line %d: trailing tokens %v", line, args)
		}
		steps = append(steps, step)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return steps, nil
}

// ParseScenarioString parses a scenario held in a string.
func ParseScenarioString(s string) ([]Step, error) {
	return ParseScenario(strings.NewReader(s))
}

// RunScenario executes parsed steps in order, stopping at the first
// failure (annotated with the script line).
func (h *Harness) RunScenario(steps []Step) error {
	for _, st := range steps {
		if err := h.runStep(st); err != nil {
			return fmt.Errorf("scenario line %d (%s %s): %w", st.Line, st.Op, st.Target, err)
		}
	}
	return nil
}

func (h *Harness) runStep(st Step) error {
	switch st.Op {
	case "start":
		_, err := h.Start(st.Target)
		return err
	case "kill":
		return h.Kill(st.Target)
	case "restart":
		_, err := h.Restart(st.Target)
		return err
	case "wait-ready":
		if st.D > 0 {
			h.mu.Lock()
			if spec, ok := h.specs[st.Target]; ok {
				spec.ReadyTimeout = st.D
				h.specs[st.Target] = spec
			}
			h.mu.Unlock()
		}
		_, err := h.WaitReady(st.Target)
		return err
	case "wait-exit":
		d := st.D
		if d == 0 {
			d = 30 * time.Second
		}
		_, err := h.WaitExit(st.Target, d)
		return err
	case "sleep":
		time.Sleep(st.D)
		return nil
	case "partition":
		px := h.ProxyByName(st.Target)
		if px == nil {
			return fmt.Errorf("unknown proxy %s", st.Target)
		}
		return px.Partition()
	case "heal":
		px := h.ProxyByName(st.Target)
		if px == nil {
			return fmt.Errorf("unknown proxy %s", st.Target)
		}
		return px.Heal()
	case "chaos-tick":
		h.EvalProcFaults()
		return nil
	default:
		return fmt.Errorf("unknown operation %q", st.Op)
	}
}
