// Package procharness is a compose-style multi-process deployment
// harness: it launches a set of named OS processes (the mvcom
// coordinator, N workers, a traffic generator — or anything else) with
// per-process stdout/stderr capture, supervises them with readiness
// probes, and drives process-level chaos — SIGKILL, restart, and
// network partition — from the same seeded fault-injection grammar the
// transport layer uses (internal/faultinject, actions "kill" and
// "restart" on points named "proc.<name>").
//
// The harness guarantees orphan-free teardown: every child is started
// in its own process group, Close SIGKILLs every group still alive and
// waits for the reap, and on Linux each child additionally carries
// PDEATHSIG so that even a harness that dies without Close takes its
// children with it. Tests that fail mid-scenario therefore never leak
// processes.
//
// Scenarios can be scripted (see ParseScenario) or driven
// programmatically; cmd/mvcom-cluster builds the full
// coordinator+workers+txgen deployment on top of this package.
package procharness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"mvcom/internal/faultinject"
)

// Spec describes one supervised process.
type Spec struct {
	// Name identifies the process to every harness call and names its
	// fault point ("proc.<Name>") and log files. Required, unique.
	Name string
	// Path is the binary to execute. Required.
	Path string
	// Args are the command-line arguments (argv[1:]).
	Args []string
	// Env entries are appended to the parent environment.
	Env []string
	// Dir is the working directory; empty inherits the harness's.
	Dir string
	// ReadyLog, when non-empty, is a regexp the process's combined
	// stdout+stderr must match before WaitReady returns; its capture
	// groups are returned, so a probe like `listening on ([0-9.:]+)`
	// doubles as address discovery.
	ReadyLog string
	// ReadyURL, when non-empty, is polled until it answers 200 before
	// WaitReady returns (after ReadyLog, when both are set).
	ReadyURL string
	// ReadyTimeout bounds WaitReady. Default 10 s.
	ReadyTimeout time.Duration
}

// Options tunes a Harness.
type Options struct {
	// LogDir, when non-empty, receives per-process capture files named
	// <name>.<incarnation>.stdout.log / .stderr.log.
	LogDir string
	// FI drives process-level chaos: every EvalProcFaults pass evaluates
	// the point "proc.<name>" for each live process and applies kill /
	// restart decisions. Nil is off, as everywhere in faultinject.
	FI *faultinject.Injector
	// KillGrace bounds the wait for a SIGKILLed child to be reaped.
	// Default 5 s.
	KillGrace time.Duration
}

// Harness supervises a set of processes. Safe for concurrent use.
type Harness struct {
	opts Options

	mu      sync.Mutex
	specs   map[string]Spec
	order   []string
	procs   map[string]*Proc // current incarnation per name
	past    []*Proc          // every incarnation ever started, in order
	proxies map[string]*Proxy
	closed  bool
}

// New returns an empty harness. Callers must Close it (typically via
// defer or t.Cleanup) to uphold the no-leaked-children guarantee.
func New(opts Options) *Harness {
	if opts.KillGrace <= 0 {
		opts.KillGrace = 5 * time.Second
	}
	return &Harness{
		opts:    opts,
		specs:   make(map[string]Spec),
		procs:   make(map[string]*Proc),
		proxies: make(map[string]*Proxy),
	}
}

// Define registers a process spec without starting it.
func (h *Harness) Define(spec Spec) error {
	if spec.Name == "" {
		return errors.New("procharness: spec needs a name")
	}
	if spec.Path == "" {
		return fmt.Errorf("procharness: spec %s needs a path", spec.Name)
	}
	if spec.ReadyLog != "" {
		if _, err := regexp.Compile(spec.ReadyLog); err != nil {
			return fmt.Errorf("procharness: spec %s: bad ReadyLog: %w", spec.Name, err)
		}
	}
	if spec.ReadyTimeout <= 0 {
		spec.ReadyTimeout = 10 * time.Second
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errors.New("procharness: harness closed")
	}
	if _, dup := h.specs[spec.Name]; dup {
		return fmt.Errorf("procharness: duplicate spec %s", spec.Name)
	}
	h.specs[spec.Name] = spec
	h.order = append(h.order, spec.Name)
	return nil
}

// Start launches a defined process. The previous incarnation, if any,
// must have exited (Kill or Restart it instead).
func (h *Harness) Start(name string) (*Proc, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("procharness: harness closed")
	}
	spec, ok := h.specs[name]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("procharness: unknown process %s", name)
	}
	if cur := h.procs[name]; cur != nil {
		if done, _ := cur.Exited(); !done {
			h.mu.Unlock()
			return nil, fmt.Errorf("procharness: %s already running (pid %d)", name, cur.PID())
		}
	}
	inc := 0
	for _, p := range h.past {
		if p.Name == name {
			inc++
		}
	}
	h.mu.Unlock()

	p, err := launch(spec, inc, h.opts.LogDir)
	if err != nil {
		return nil, err
	}

	h.mu.Lock()
	if h.closed {
		// Lost the race with Close: do not leak the fresh child.
		h.mu.Unlock()
		_ = p.kill(h.opts.KillGrace)
		return nil, errors.New("procharness: harness closed")
	}
	h.procs[name] = p
	h.past = append(h.past, p)
	h.mu.Unlock()
	return p, nil
}

// launch builds and starts the incarnation's exec.Cmd with tee'd output.
func launch(spec Spec, incarnation int, logDir string) (*Proc, error) {
	out := newLogBuf()
	p := &Proc{
		Name:        spec.Name,
		Incarnation: incarnation,
		spec:        spec,
		out:         out,
		done:        make(chan struct{}),
	}
	var stdoutW, stderrW io.Writer = out, out
	if logDir != "" {
		for _, stream := range []struct {
			suffix string
			sink   *io.Writer
		}{{"stdout", &stdoutW}, {"stderr", &stderrW}} {
			path := filepath.Join(logDir, fmt.Sprintf("%s.%d.%s.log", spec.Name, incarnation, stream.suffix))
			f, err := os.Create(path)
			if err != nil {
				p.closeFiles()
				return nil, fmt.Errorf("procharness: %s: %w", spec.Name, err)
			}
			p.files = append(p.files, f)
			*stream.sink = io.MultiWriter(f, out)
		}
	}

	cmd := exec.Command(spec.Path, spec.Args...)
	cmd.Dir = spec.Dir
	cmd.Env = append(os.Environ(), spec.Env...)
	cmd.Stdout = stdoutW
	cmd.Stderr = stderrW
	// Bound the post-exit wait for pipe drains so a grandchild that
	// inherited the pipes cannot wedge the reaper.
	cmd.WaitDelay = 5 * time.Second
	setSysProcAttr(cmd)
	if err := cmd.Start(); err != nil {
		p.closeFiles()
		return nil, fmt.Errorf("procharness: start %s: %w", spec.Name, err)
	}
	p.cmd = cmd
	p.startedAt = time.Now()

	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.exited = true
		p.exitCode = cmd.ProcessState.ExitCode()
		p.waitErr = err
		p.mu.Unlock()
		p.closeFiles()
		out.markClosed()
		close(p.done)
	}()
	return p, nil
}

// Proc lookups and lifecycle -------------------------------------------------

// Proc returns the current incarnation of a named process (nil if never
// started).
func (h *Harness) Proc(name string) *Proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.procs[name]
}

// Procs returns every incarnation ever started, in start order.
func (h *Harness) Procs() []*Proc {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Proc(nil), h.past...)
}

// Live lists the names of processes currently running.
func (h *Harness) Live() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, name := range h.order {
		if p := h.procs[name]; p != nil {
			if done, _ := p.Exited(); !done {
				out = append(out, name)
			}
		}
	}
	return out
}

// Kill SIGKILLs the named process's whole process group and waits for
// the reap. Killing an already-exited process is a no-op.
func (h *Harness) Kill(name string) error {
	p := h.Proc(name)
	if p == nil {
		return fmt.Errorf("procharness: unknown or never-started process %s", name)
	}
	return p.kill(h.opts.KillGrace)
}

// Restart kills the named process (if alive) and launches a fresh
// incarnation with the same spec.
func (h *Harness) Restart(name string) (*Proc, error) {
	if p := h.Proc(name); p != nil {
		if err := p.kill(h.opts.KillGrace); err != nil {
			return nil, err
		}
	}
	return h.Start(name)
}

// WaitReady blocks until the named process passes its readiness probes
// (ReadyLog regexp match, then ReadyURL answering 200) and returns the
// ReadyLog capture groups. A process with no probes is ready once
// started.
func (h *Harness) WaitReady(name string) ([]string, error) {
	h.mu.Lock()
	spec, ok := h.specs[name]
	p := h.procs[name]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("procharness: unknown process %s", name)
	}
	if p == nil {
		return nil, fmt.Errorf("procharness: %s not started", name)
	}
	deadline := time.Now().Add(spec.ReadyTimeout)
	var groups []string
	if spec.ReadyLog != "" {
		m, err := p.WaitLog(spec.ReadyLog, time.Until(deadline))
		if err != nil {
			return nil, fmt.Errorf("procharness: %s not ready: %w", name, err)
		}
		groups = m
	}
	if spec.ReadyURL != "" {
		if err := PollHTTP(spec.ReadyURL, time.Until(deadline), nil); err != nil {
			return nil, fmt.Errorf("procharness: %s not ready: %w", name, err)
		}
	}
	return groups, nil
}

// WaitExit blocks until the named process exits and returns its exit
// code (-1 when killed by a signal).
func (h *Harness) WaitExit(name string, timeout time.Duration) (int, error) {
	p := h.Proc(name)
	if p == nil {
		return 0, fmt.Errorf("procharness: unknown or never-started process %s", name)
	}
	return p.WaitExit(timeout)
}

// FiredFault records one process-level chaos decision that fired.
type FiredFault struct {
	Proc   string
	Action faultinject.Action
}

// EvalProcFaults runs one chaos pass: for every live process it
// evaluates the fault point "proc.<name>" against the harness injector
// and applies process-level decisions — ActKill SIGKILLs the process,
// ActRestart SIGKILLs it, sleeps the rule's optional delay, and starts
// a fresh incarnation. Transport-level actions (error/delay/drop) at a
// process point are ignored. Returns the decisions that fired.
func (h *Harness) EvalProcFaults() []FiredFault {
	h.mu.Lock()
	fi := h.opts.FI
	h.mu.Unlock()
	if fi == nil {
		return nil
	}
	var fired []FiredFault
	for _, name := range h.Live() {
		d := fi.Eval("proc." + name)
		switch d.Action {
		case faultinject.ActKill:
			_ = h.Kill(name)
			fired = append(fired, FiredFault{Proc: name, Action: d.Action})
		case faultinject.ActRestart:
			_ = h.Kill(name)
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			if _, err := h.Restart(name); err == nil {
				fired = append(fired, FiredFault{Proc: name, Action: d.Action})
			}
		}
	}
	return fired
}

// StartChaos evaluates the process fault points every tick until the
// returned stop function is called (idempotent). The total kill/restart
// schedule stays deterministic for a given injector seed and tick
// count.
func (h *Harness) StartChaos(tick time.Duration) (stop func()) {
	if tick <= 0 {
		tick = 100 * time.Millisecond
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				h.EvalProcFaults()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}

// Close SIGKILLs every live process group, waits for every reap, and
// shuts down any proxies. It is the harness's orphan-free guarantee and
// is safe to call more than once.
func (h *Harness) Close() error {
	h.mu.Lock()
	h.closed = true
	procs := append([]*Proc(nil), h.past...)
	proxies := make([]*Proxy, 0, len(h.proxies))
	for _, px := range h.proxies {
		proxies = append(proxies, px)
	}
	h.mu.Unlock()

	var errs []error
	for _, p := range procs {
		if err := p.kill(h.opts.KillGrace); err != nil {
			errs = append(errs, err)
		}
	}
	for _, px := range proxies {
		_ = px.Close()
	}
	return errors.Join(errs...)
}

// Proc is one incarnation of a supervised process.
type Proc struct {
	// Name is the spec name; Incarnation counts restarts (0 = first).
	Name        string
	Incarnation int

	spec      Spec
	cmd       *exec.Cmd
	out       *logBuf
	done      chan struct{}
	startedAt time.Time

	mu       sync.Mutex
	files    []*os.File
	exited   bool
	exitCode int
	waitErr  error
	killed   bool
}

// PID returns the OS process id (0 before start).
func (p *Proc) PID() int {
	if p.cmd == nil || p.cmd.Process == nil {
		return 0
	}
	return p.cmd.Process.Pid
}

// Exited reports whether the process has been reaped, and its exit code
// (-1 when killed by a signal; meaningless while still running).
func (p *Proc) Exited() (bool, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited, p.exitCode
}

// KilledByHarness reports whether the harness itself SIGKILLed this
// incarnation (chaos action, Restart, or Close) — a supervisor checking
// exit codes can then tell an injected kill from a real crash.
func (p *Proc) KilledByHarness() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// Output returns the combined stdout+stderr captured so far.
func (p *Proc) Output() string { return p.out.String() }

// WaitLog blocks until the combined output matches the regexp (full
// match plus capture groups returned) or the timeout expires. A process
// that exits without ever matching fails immediately.
func (p *Proc) WaitLog(pattern string, timeout time.Duration) ([]string, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	return p.out.waitMatch(re, timeout)
}

// WaitExit blocks until the process is reaped and returns its exit code.
func (p *Proc) WaitExit(timeout time.Duration) (int, error) {
	select {
	case <-p.done:
		_, code := p.Exited()
		return code, nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("procharness: %s (pid %d) still running after %v", p.Name, p.PID(), timeout)
	}
}

// kill SIGKILLs the process group and waits for the reap.
func (p *Proc) kill(grace time.Duration) error {
	p.mu.Lock()
	if p.exited || p.cmd == nil || p.cmd.Process == nil {
		p.mu.Unlock()
		return nil
	}
	p.killed = true
	pid := p.cmd.Process.Pid
	p.mu.Unlock()
	killGroup(pid)
	_ = p.cmd.Process.Kill()
	select {
	case <-p.done:
		return nil
	case <-time.After(grace):
		return fmt.Errorf("procharness: %s (pid %d) not reaped %v after SIGKILL", p.Name, pid, grace)
	}
}

// closeFiles closes the capture files exactly once.
func (p *Proc) closeFiles() {
	p.mu.Lock()
	files := p.files
	p.files = nil
	p.mu.Unlock()
	for _, f := range files {
		_ = f.Close()
	}
}

// Alive reports whether the pid still exists from the kernel's point of
// view — the belt-and-braces leak check tests use after Close.
func (p *Proc) Alive() bool {
	pid := p.PID()
	if pid == 0 {
		return false
	}
	if done, _ := p.Exited(); done {
		return false
	}
	return pidAlive(pid)
}

// PollHTTP polls a URL until pred accepts the response (nil pred
// accepts any 200) or the timeout expires.
func PollHTTP(url string, timeout time.Duration, pred func(status int, body []byte) bool) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if rerr == nil {
				if pred == nil {
					if resp.StatusCode == http.StatusOK {
						return nil
					}
					lastErr = fmt.Errorf("status %s", resp.Status)
				} else if pred(resp.StatusCode, body) {
					return nil
				} else {
					lastErr = errors.New("predicate not satisfied")
				}
			} else {
				lastErr = rerr
			}
		} else {
			lastErr = err
		}
		time.Sleep(25 * time.Millisecond)
	}
	if lastErr == nil {
		lastErr = errors.New("never polled")
	}
	return fmt.Errorf("procharness: poll %s: timeout after %v: %w", url, timeout, lastErr)
}

// logBuf is a concurrency-safe capture buffer whose readers can block
// until a pattern appears.
type logBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    bytes.Buffer
	closed bool
}

func newLogBuf() *logBuf {
	b := &logBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *logBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	n, err := b.buf.Write(p)
	b.cond.Broadcast()
	b.mu.Unlock()
	return n, err
}

func (b *logBuf) markClosed() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *logBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitMatch blocks until the buffer matches re, the stream closes (the
// process exited), or the timeout expires. Returns the match with its
// capture groups.
func (b *logBuf) waitMatch(re *regexp.Regexp, timeout time.Duration) ([]string, error) {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer wake.Stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m := re.FindStringSubmatch(b.buf.String()); m != nil {
			return m, nil
		}
		if b.closed {
			return nil, fmt.Errorf("process exited before output matched %q; tail: %q", re, tail(b.buf.String(), 300))
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("timeout after %v waiting for output to match %q; tail: %q", timeout, re, tail(b.buf.String(), 300))
		}
		b.cond.Wait()
	}
}

// tail returns the last n bytes of s for error messages.
func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}
