//go:build unix && !linux

package procharness

import (
	"os/exec"
	"syscall"
)

// setSysProcAttr puts the child in its own process group so a kill
// takes any grandchildren too. PDEATHSIG is Linux-only; elsewhere the
// orphan-free guarantee rests on Close.
func setSysProcAttr(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killGroup SIGKILLs the child's whole process group.
func killGroup(pid int) {
	_ = syscall.Kill(-pid, syscall.SIGKILL)
}

// pidAlive reports whether the pid exists (signal 0 probe).
func pidAlive(pid int) bool {
	return syscall.Kill(pid, 0) == nil
}
