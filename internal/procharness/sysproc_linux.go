//go:build linux

package procharness

import (
	"os/exec"
	"syscall"
)

// setSysProcAttr puts the child in its own process group (so a kill
// takes any grandchildren too) and arms PDEATHSIG so that a harness
// that dies without Close still cannot leak children.
func setSysProcAttr(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true, Pdeathsig: syscall.SIGKILL}
}

// killGroup SIGKILLs the child's whole process group.
func killGroup(pid int) {
	_ = syscall.Kill(-pid, syscall.SIGKILL)
}

// pidAlive reports whether the pid exists (signal 0 probe).
func pidAlive(pid int) bool {
	return syscall.Kill(pid, 0) == nil
}
