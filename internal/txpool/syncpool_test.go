package txpool

import (
	"sync"
	"testing"
	"time"

	"mvcom/internal/chain"
)

// TestSyncPoolConcurrentAddDrain is the -race regression test for the
// serving plane's concurrency contract: Pool is documented
// single-goroutine, so networked ingest must go through SyncPool. Many
// producers Add while a consumer drains epoch-style; under -race the
// unwrapped Pool fails this immediately.
func TestSyncPoolConcurrentAddDrain(t *testing.T) {
	p := NewSync()
	const producers = 8
	const perProducer = 500

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p.Add(chain.Transaction{
					ID:      uint64(g*perProducer + i),
					Created: time.Duration(i) * time.Millisecond,
				})
			}
		}(g)
	}

	done := make(chan struct{})
	drained := 0
	go func() {
		defer close(done)
		buf := make([]chain.Transaction, 0, 256)
		for drained < producers*perProducer {
			buf = p.DrainArrivedInto(buf[:0], 1<<62, 0)
			drained += len(buf)
		}
	}()

	wg.Wait()
	<-done

	if drained != producers*perProducer {
		t.Fatalf("drained %d, want %d", drained, producers*perProducer)
	}
	if got := p.Added(); got != producers*perProducer {
		t.Fatalf("Added() = %d, want %d", got, producers*perProducer)
	}
	if got := p.Len(); got != 0 {
		t.Fatalf("Len() = %d after full drain, want 0", got)
	}
}

// TestSyncPoolTryAddBatchWatermark pins the atomic high-watermark check:
// a batch that would push the pool over maxLen is rejected whole, and
// concurrent racers never overshoot the mark.
func TestSyncPoolTryAddBatchWatermark(t *testing.T) {
	p := NewSync()
	batch := make([]chain.Transaction, 10)
	const maxLen = 55 // room for 5 full batches, rejects the 6th

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.TryAddBatch(batch, maxLen)
			}
		}()
	}
	wg.Wait()

	if got := p.Len(); got > maxLen {
		t.Fatalf("Len() = %d exceeds watermark %d", got, maxLen)
	}
	if got := p.Len(); got != 50 {
		t.Fatalf("Len() = %d, want 50 (5 accepted batches)", got)
	}

	if p.TryAddBatch(batch, maxLen) {
		t.Fatal("TryAddBatch over the watermark returned true")
	}
	if !p.TryAddBatch(batch[:5], maxLen) {
		t.Fatal("TryAddBatch exactly at the watermark returned false")
	}
	if p.TryAddBatch(batch[:1], 0); p.Len() != maxLen+1 {
		t.Fatalf("maxLen<=0 should be unbounded; Len() = %d", p.Len())
	}
}
