// Package txpool implements the transaction mempool that grounds the
// paper's freshness metric: transactions arrive over (virtual) time, wait
// in the pool, and are drained into committee shards at each epoch. The
// cumulative age the MVCom objective penalizes is exactly the waiting
// time accumulated here between a transaction's arrival and the epoch
// deadline at which its shard is permitted.
package txpool

import (
	"container/heap"
	"errors"
	"time"

	"mvcom/internal/chain"
)

// Errors returned by the pool.
var (
	ErrEmpty = errors.New("txpool: pool is empty")
)

// item orders transactions by arrival time (FIFO per timestamp, sequence
// breaking ties).
type item struct {
	tx  chain.Transaction
	seq uint64
}

type txHeap []item

func (h txHeap) Len() int { return len(h) }
func (h txHeap) Less(i, j int) bool {
	if h[i].tx.Created != h[j].tx.Created {
		return h[i].tx.Created < h[j].tx.Created
	}
	return h[i].seq < h[j].seq
}
func (h txHeap) Swap(i, j int)           { h[i], h[j] = h[j], h[i] }
func (h *txHeap) Push(x any)             { *h = append(*h, x.(item)) }
func (h *txHeap) Pop() any               { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h txHeap) peek() chain.Transaction { return h[0].tx }

// Pool is a virtual-time mempool. It is not safe for concurrent use; the
// discrete-event simulation drives it from one goroutine.
type Pool struct {
	heap    txHeap
	seq     uint64
	added   int
	drained int
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// Len returns the number of waiting transactions.
func (p *Pool) Len() int { return len(p.heap) }

// Added returns how many transactions ever entered the pool.
func (p *Pool) Added() int { return p.added }

// Drained returns how many transactions have been drained.
func (p *Pool) Drained() int { return p.drained }

// Add inserts a transaction keyed by its Created timestamp.
func (p *Pool) Add(tx chain.Transaction) {
	heap.Push(&p.heap, item{tx: tx, seq: p.seq})
	p.seq++
	p.added++
}

// AddBatch inserts many transactions.
func (p *Pool) AddBatch(txs []chain.Transaction) {
	for _, tx := range txs {
		p.Add(tx)
	}
}

// Oldest returns the arrival time of the oldest waiting transaction.
func (p *Pool) Oldest() (time.Duration, error) {
	if len(p.heap) == 0 {
		return 0, ErrEmpty
	}
	return p.heap.peek().Created, nil
}

// DrainArrived removes and returns every transaction that arrived at or
// before now, oldest first, up to max entries (max <= 0 means no limit).
func (p *Pool) DrainArrived(now time.Duration, max int) []chain.Transaction {
	var out []chain.Transaction
	for len(p.heap) > 0 && p.heap.peek().Created <= now {
		if max > 0 && len(out) >= max {
			break
		}
		it := heap.Pop(&p.heap).(item)
		out = append(out, it.tx)
	}
	p.drained += len(out)
	return out
}

// DrainArrivedInto is DrainArrived with a caller-owned destination: the
// drained transactions are appended to dst (reusing its capacity) and
// the extended slice is returned. Long-lived serving loops use it to
// drain every epoch without a fresh allocation.
func (p *Pool) DrainArrivedInto(dst []chain.Transaction, now time.Duration, max int) []chain.Transaction {
	n := 0
	for len(p.heap) > 0 && p.heap.peek().Created <= now {
		if max > 0 && n >= max {
			break
		}
		it := heap.Pop(&p.heap).(item)
		dst = append(dst, it.tx)
		n++
	}
	p.drained += n
	return dst
}

// Reset empties the pool and its counters while keeping the heap's
// backing array, so a pool can be reused across runs without shedding
// its steady-state capacity.
func (p *Pool) Reset() {
	p.heap = p.heap[:0]
	p.seq = 0
	p.added = 0
	p.drained = 0
}

// CumulativeAge sums now − Created over the waiting transactions that
// have already arrived — the pool-level counterpart of the paper's Π
// term. Transactions with future timestamps contribute nothing.
func (p *Pool) CumulativeAge(now time.Duration) time.Duration {
	var total time.Duration
	for _, it := range p.heap {
		if it.tx.Created <= now {
			total += now - it.tx.Created
		}
	}
	return total
}

// AgeStats summarizes waiting ages at an instant.
type AgeStats struct {
	Waiting int
	Total   time.Duration
	Mean    time.Duration
	Max     time.Duration
}

// Ages computes waiting-age statistics over the arrived transactions.
func (p *Pool) Ages(now time.Duration) AgeStats {
	var st AgeStats
	for _, it := range p.heap {
		if it.tx.Created > now {
			continue
		}
		age := now - it.tx.Created
		st.Waiting++
		st.Total += age
		if age > st.Max {
			st.Max = age
		}
	}
	if st.Waiting > 0 {
		st.Mean = st.Total / time.Duration(st.Waiting)
	}
	return st
}
