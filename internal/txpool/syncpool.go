package txpool

import (
	"sync"
	"time"

	"mvcom/internal/chain"
)

// SyncPool wraps Pool with a mutex so the networked serving plane can
// deliver transactions from many goroutines while the epoch loop drains
// concurrently. Pool itself stays single-goroutine (the discrete-event
// simulation never needs the lock); the serving plane always goes
// through this wrapper.
type SyncPool struct {
	mu   sync.Mutex
	pool Pool
}

// NewSync returns an empty synchronized pool.
func NewSync() *SyncPool { return &SyncPool{} }

// Len returns the number of waiting transactions.
func (p *SyncPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.Len()
}

// Added returns how many transactions ever entered the pool.
func (p *SyncPool) Added() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.Added()
}

// Drained returns how many transactions have been drained.
func (p *SyncPool) Drained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.Drained()
}

// Add inserts one transaction.
func (p *SyncPool) Add(tx chain.Transaction) {
	p.mu.Lock()
	p.pool.Add(tx)
	p.mu.Unlock()
}

// AddBatch inserts many transactions.
func (p *SyncPool) AddBatch(txs []chain.Transaction) {
	p.mu.Lock()
	p.pool.AddBatch(txs)
	p.mu.Unlock()
}

// TryAddBatch inserts txs only if the resulting pool length would stay
// at or below maxLen (maxLen <= 0 means unbounded). The check and the
// insert are one atomic step — the admission high-watermark the serving
// plane sheds on. Returns false, inserting nothing, when over the mark.
func (p *SyncPool) TryAddBatch(txs []chain.Transaction, maxLen int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if maxLen > 0 && p.pool.Len()+len(txs) > maxLen {
		return false
	}
	p.pool.AddBatch(txs)
	return true
}

// Oldest returns the arrival time of the oldest waiting transaction.
func (p *SyncPool) Oldest() (time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.Oldest()
}

// DrainArrivedInto drains arrived transactions into the caller-owned dst,
// mirroring Pool.DrainArrivedInto.
func (p *SyncPool) DrainArrivedInto(dst []chain.Transaction, now time.Duration, max int) []chain.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.DrainArrivedInto(dst, now, max)
}

// Reset empties the pool and its counters, keeping backing capacity.
func (p *SyncPool) Reset() {
	p.mu.Lock()
	p.pool.Reset()
	p.mu.Unlock()
}
