package txpool

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/randx"
)

func tx(id uint64, at time.Duration) chain.Transaction {
	return chain.Transaction{ID: id, Created: at}
}

func TestAddDrainFIFO(t *testing.T) {
	p := New()
	p.Add(tx(2, 20*time.Second))
	p.Add(tx(1, 10*time.Second))
	p.Add(tx(3, 30*time.Second))
	got := p.DrainArrived(25*time.Second, 0)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("drained %v", got)
	}
	if p.Len() != 1 {
		t.Fatalf("len %d", p.Len())
	}
	if p.Added() != 3 || p.Drained() != 2 {
		t.Fatalf("counters %d %d", p.Added(), p.Drained())
	}
}

func TestDrainRespectsMax(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Add(tx(uint64(i), time.Duration(i)*time.Second))
	}
	got := p.DrainArrived(time.Hour, 4)
	if len(got) != 4 {
		t.Fatalf("drained %d", len(got))
	}
	// Oldest first.
	for i, x := range got {
		if x.ID != uint64(i) {
			t.Fatalf("order %v", got)
		}
	}
	if p.Len() != 6 {
		t.Fatalf("len %d", p.Len())
	}
}

func TestDrainNothingArrived(t *testing.T) {
	p := New()
	p.Add(tx(1, time.Hour))
	if got := p.DrainArrived(time.Minute, 0); got != nil {
		t.Fatalf("drained future txs: %v", got)
	}
}

func TestOldest(t *testing.T) {
	p := New()
	if _, err := p.Oldest(); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	p.Add(tx(1, 30*time.Second))
	p.Add(tx(2, 10*time.Second))
	at, err := p.Oldest()
	if err != nil || at != 10*time.Second {
		t.Fatalf("oldest %v err %v", at, err)
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	p := New()
	for i := 0; i < 5; i++ {
		p.Add(tx(uint64(i), time.Second))
	}
	got := p.DrainArrived(time.Second, 0)
	for i, x := range got {
		if x.ID != uint64(i) {
			t.Fatalf("same-timestamp order %v", got)
		}
	}
}

func TestCumulativeAge(t *testing.T) {
	p := New()
	p.Add(tx(1, 10*time.Second))
	p.Add(tx(2, 20*time.Second))
	p.Add(tx(3, time.Hour)) // future; must not count
	got := p.CumulativeAge(30 * time.Second)
	if got != 30*time.Second { // 20 + 10
		t.Fatalf("age %v", got)
	}
}

func TestAges(t *testing.T) {
	p := New()
	p.Add(tx(1, 0))
	p.Add(tx(2, 10*time.Second))
	st := p.Ages(20 * time.Second)
	if st.Waiting != 2 || st.Max != 20*time.Second || st.Total != 30*time.Second || st.Mean != 15*time.Second {
		t.Fatalf("stats %+v", st)
	}
	empty := New().Ages(time.Second)
	if empty.Waiting != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}

func TestAddBatch(t *testing.T) {
	p := New()
	p.AddBatch([]chain.Transaction{tx(1, time.Second), tx(2, 2*time.Second)})
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
}

func TestDrainArrivedInto(t *testing.T) {
	p := New()
	for i := 0; i < 8; i++ {
		p.Add(tx(uint64(i), time.Duration(i)*time.Second))
	}
	buf := make([]chain.Transaction, 0, 16)
	got := p.DrainArrivedInto(buf[:0], 3*time.Second, 0)
	if len(got) != 4 {
		t.Fatalf("drained %d", len(got))
	}
	if cap(got) != 16 {
		t.Fatalf("destination reallocated: cap %d", cap(got))
	}
	for i, x := range got {
		if x.ID != uint64(i) {
			t.Fatalf("order %v", got)
		}
	}
	if p.Drained() != 4 || p.Len() != 4 {
		t.Fatalf("counters: drained %d len %d", p.Drained(), p.Len())
	}
	// max caps the drain, and append semantics preserve the prefix.
	got = p.DrainArrivedInto(got[:0], time.Hour, 2)
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("max-capped drain %v", got)
	}
	// Reuse across epochs: the same buffer drains the rest with no growth.
	got = p.DrainArrivedInto(got[:0], time.Hour, 0)
	if len(got) != 2 || cap(got) != 16 {
		t.Fatalf("reuse drain %v (cap %d)", got, cap(got))
	}
	if p.Added() != p.Drained()+p.Len() {
		t.Fatalf("conservation broke: %d != %d + %d", p.Added(), p.Drained(), p.Len())
	}
}

func TestReset(t *testing.T) {
	p := New()
	for i := 0; i < 6; i++ {
		p.Add(tx(uint64(i), time.Duration(i)*time.Second))
	}
	p.DrainArrived(2*time.Second, 0)
	p.Reset()
	if p.Len() != 0 || p.Added() != 0 || p.Drained() != 0 {
		t.Fatalf("reset left state: len %d added %d drained %d", p.Len(), p.Added(), p.Drained())
	}
	if _, err := p.Oldest(); err != ErrEmpty {
		t.Fatalf("oldest after reset: %v", err)
	}
	// The pool is fully usable after a reset, FIFO intact.
	p.Add(tx(9, 2*time.Second))
	p.Add(tx(8, time.Second))
	got := p.DrainArrived(time.Hour, 0)
	if len(got) != 2 || got[0].ID != 8 || got[1].ID != 9 {
		t.Fatalf("post-reset drain %v", got)
	}
}

func TestDrainOrderProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%100 + 1
		rng := randx.New(seed)
		p := New()
		for i := 0; i < n; i++ {
			p.Add(tx(uint64(i), time.Duration(rng.Intn(1000))*time.Second))
		}
		got := p.DrainArrived(1000*time.Second, 0)
		if len(got) != n {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool {
			return got[i].Created < got[j].Created
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConservationProperty(t *testing.T) {
	// added == drained + waiting at all times.
	f := func(seed int64, ops []uint8) bool {
		rng := randx.New(seed)
		p := New()
		var now time.Duration
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				p.Add(tx(rng.Uint64(), now+time.Duration(rng.Intn(100))*time.Second))
			case 2:
				now += time.Duration(rng.Intn(50)) * time.Second
				p.DrainArrived(now, rng.Intn(5))
			}
			if p.Added() != p.Drained()+p.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
