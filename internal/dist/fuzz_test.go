package dist

import (
	"encoding/json"
	"testing"

	"mvcom/internal/core"
)

// FuzzEnvelopeDecode checks that arbitrary wire bytes never panic the
// message layer and that every message type round-trips.
func FuzzEnvelopeDecode(f *testing.F) {
	seedBodies := []any{
		Hello{WorkerID: "w1"},
		Task{Sizes: []int{1, 2}, Latencies: []float64{3, 4}, Alpha: 1.5, Capacity: 10, Seed: 7},
		Progress{WorkerID: "w1", Iterations: 10, Utility: 1.5, Feasible: true},
		FromEvent(core.Event{Kind: core.EventJoin, Index: -1, Size: 5, Latency: 2}),
		Best{Utility: 42},
		Result{WorkerID: "w1", Utility: 9, Selected: []bool{true, false}},
	}
	types := []MsgType{MsgHello, MsgTask, MsgProgress, MsgEvent, MsgBest, MsgResult}
	for i, body := range seedBodies {
		raw, err := json.Marshal(body)
		if err != nil {
			f.Fatal(err)
		}
		env, err := json.Marshal(Envelope{Type: types[i], Body: raw})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
	}
	f.Add([]byte(`{"type":"???","body":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			return
		}
		// Whatever parses as an envelope must be safely decodable (or
		// cleanly rejected) as each body type.
		if env.Body == nil {
			return
		}
		_, _ = decode[Hello](env)
		_, _ = decode[Task](env)
		_, _ = decode[Progress](env)
		if m, err := decode[EventMsg](env); err == nil {
			_, _ = m.ToEvent()
		}
		_, _ = decode[Best](env)
		_, _ = decode[Result](env)
	})
}

// FuzzTaskInstance checks Task → Instance conversion plus validation never
// panics on arbitrary numeric content.
func FuzzTaskInstance(f *testing.F) {
	f.Add(3, 100, 1.5, 0)
	f.Add(0, 0, 0.0, -1)
	f.Fuzz(func(t *testing.T, n int, capacity int, alpha float64, nmin int) {
		if n < 0 {
			n = -n
		}
		n %= 64
		task := Task{
			Sizes:     make([]int, n),
			Latencies: make([]float64, n),
			Alpha:     alpha,
			Capacity:  capacity,
			Nmin:      nmin,
		}
		for i := 0; i < n; i++ {
			task.Sizes[i] = (i * 37) % 1000
			task.Latencies[i] = float64((i * 13) % 900)
		}
		in := task.Instance()
		_ = in.Validate() // must not panic; errors are fine
	})
}
