// Package dist implements the online distributed execution mode of the SE
// algorithm (Section IV-D): the solver's parallel threads "can run in
// either one single machine or multiple distributed machines, as long as
// those independent threads can communicate with each other with a low
// delay", exchanging only RESET signals and the current system utility.
//
// A Coordinator owns the scheduling instance and listens on TCP. Each
// Worker connects, receives the instance plus a private seed, and runs an
// independent core.Engine; it reports its best utility periodically, and
// the coordinator pushes dynamic join/leave events and the global best
// back. When the global best stabilizes (or the deadline passes) the
// coordinator broadcasts stop and returns the best solution reported by
// any worker.
//
// The wire protocol is newline-delimited JSON — small, debuggable, and
// stdlib-only.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/obs"
)

// MsgType enumerates the wire messages.
type MsgType string

// The protocol messages.
const (
	// MsgHello is the worker's first message.
	MsgHello MsgType = "hello"
	// MsgTask carries the instance and solver configuration to a worker.
	MsgTask MsgType = "task"
	// MsgProgress is a worker's periodic best-utility report.
	MsgProgress MsgType = "progress"
	// MsgEvent pushes a dynamic join/leave event to workers.
	MsgEvent MsgType = "event"
	// MsgBest shares the global best utility with workers.
	MsgBest MsgType = "best"
	// MsgStop tells workers to report their final solution and exit.
	MsgStop MsgType = "stop"
	// MsgResult is a worker's final report.
	MsgResult MsgType = "result"
)

// Envelope is the framing of every message.
type Envelope struct {
	Type MsgType         `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Hello identifies a connecting worker.
type Hello struct {
	WorkerID string `json:"workerId"`
}

// Task is the assignment sent to a worker.
type Task struct {
	// TaskID correlates a task across dispatch, progress, errors, and
	// traces (failure_log-style context); empty on pre-ID coordinators.
	TaskID string `json:"taskId,omitempty"`
	// Attempt counts how many times this task has been dispatched
	// (1-based); 0 from pre-ID coordinators is treated as 1.
	Attempt int `json:"attempt,omitempty"`

	Sizes     []int     `json:"sizes"`
	Latencies []float64 `json:"latencies"`
	DDL       float64   `json:"ddl"`
	Alpha     float64   `json:"alpha"`
	Capacity  int       `json:"capacity"`
	Nmin      int       `json:"nmin"`

	Beta float64 `json:"beta"`
	Tau  float64 `json:"tau"`
	Seed int64   `json:"seed"`
	// Gamma is the number of in-process explorers the worker runs; zero
	// keeps the core default of 1.
	Gamma int `json:"gamma,omitempty"`
	// SEWorkers caps the goroutines the worker's kernel uses to advance
	// its explorers (core.SEConfig.Workers); zero means GOMAXPROCS.
	SEWorkers     int `json:"seWorkers,omitempty"`
	ReportEvery   int `json:"reportEvery"`
	MaxIterations int `json:"maxIterations"`
}

// Instance reconstructs the core.Instance of a task.
func (t Task) Instance() core.Instance {
	return core.Instance{
		Sizes:     append([]int(nil), t.Sizes...),
		Latencies: append([]float64(nil), t.Latencies...),
		DDL:       t.DDL,
		Alpha:     t.Alpha,
		Capacity:  t.Capacity,
		Nmin:      t.Nmin,
	}
}

// Progress is a worker's periodic report.
type Progress struct {
	WorkerID   string  `json:"workerId"`
	Iterations int     `json:"iterations"`
	Utility    float64 `json:"utility"`
	Feasible   bool    `json:"feasible"`
}

// EventMsg mirrors core.Event on the wire.
type EventMsg struct {
	Kind    string  `json:"kind"` // "join" or "leave"
	Index   int     `json:"index"`
	Size    int     `json:"size,omitempty"`
	Latency float64 `json:"latency,omitempty"`
}

// ToEvent converts the wire form to a core.Event.
func (m EventMsg) ToEvent() (core.Event, error) {
	switch m.Kind {
	case "join":
		return core.Event{Kind: core.EventJoin, Index: m.Index, Size: m.Size, Latency: m.Latency}, nil
	case "leave":
		return core.Event{Kind: core.EventLeave, Index: m.Index}, nil
	default:
		return core.Event{}, fmt.Errorf("dist: unknown event kind %q", m.Kind)
	}
}

// FromEvent converts a core.Event to the wire form.
func FromEvent(ev core.Event) EventMsg {
	m := EventMsg{Index: ev.Index, Size: ev.Size, Latency: ev.Latency}
	if ev.Kind == core.EventJoin {
		m.Kind = "join"
	} else {
		m.Kind = "leave"
	}
	return m
}

// Best shares the global best utility.
type Best struct {
	Utility float64 `json:"utility"`
}

// Result is a worker's final answer.
type Result struct {
	WorkerID   string  `json:"workerId"`
	TaskID     string  `json:"taskId,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	Utility    float64 `json:"utility"`
	Selected   []bool  `json:"selected"`
	Iterations int     `json:"iterations"`
	Err        string  `json:"err,omitempty"`
}

// codec frames envelopes over a connection. The optional obs sink counts
// every message by type and direction (nil is off).
type codec struct {
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
	obs  *obs.DistObserver
}

func newCodec(conn net.Conn) *codec {
	return &codec{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
		enc:  json.NewEncoder(conn),
	}
}

// send marshals body into an envelope and writes it.
func (c *codec) send(t MsgType, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", t, err)
	}
	if err := c.enc.Encode(Envelope{Type: t, Body: raw}); err != nil {
		return fmt.Errorf("dist: send %s: %w", t, err)
	}
	c.obs.MsgSent(string(t))
	return nil
}

// recv reads the next envelope, honoring the deadline if non-zero.
func (c *codec) recv(deadline time.Duration) (Envelope, error) {
	if deadline > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(deadline)); err != nil {
			return Envelope{}, err
		}
	} else {
		if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
			return Envelope{}, err
		}
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Envelope{}, fmt.Errorf("dist: decode envelope: %w", err)
	}
	c.obs.MsgRecv(string(env.Type))
	return env, nil
}

// decode unmarshals an envelope body.
func decode[T any](env Envelope) (T, error) {
	var v T
	if err := json.Unmarshal(env.Body, &v); err != nil {
		return v, fmt.Errorf("dist: decode %s body: %w", env.Type, err)
	}
	return v, nil
}
