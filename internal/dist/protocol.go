// Package dist implements the online distributed execution mode of the SE
// algorithm (Section IV-D): the solver's parallel threads "can run in
// either one single machine or multiple distributed machines, as long as
// those independent threads can communicate with each other with a low
// delay", exchanging only RESET signals and the current system utility.
//
// A Coordinator owns the scheduling instance and listens on TCP. Each
// Worker connects, receives the instance plus a private seed, and runs an
// independent core.Engine; it reports its best utility periodically, and
// the coordinator pushes dynamic join/leave events and the global best
// back. When the global best stabilizes (or the deadline passes) the
// coordinator broadcasts stop and returns the best solution reported by
// any worker.
//
// The wire protocol is newline-delimited JSON — small, debuggable, and
// stdlib-only.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/faultinject"
	"mvcom/internal/obs"
)

// The named fault points of the dist layer (see internal/faultinject).
// Worker points live on the worker process's injector, coordinator points
// on the coordinator's, so one shared spec can arm both roles without
// collisions.
const (
	// FPWorkerDial fires before the worker dials the coordinator.
	FPWorkerDial = "worker.dial"
	// FPWorkerSend / FPWorkerRecv fire on every worker-side protocol
	// message; ActDrop closes the worker's connection.
	FPWorkerSend = "worker.send"
	FPWorkerRecv = "worker.recv"
	// FPWorkerTask fires when the worker starts an assigned task;
	// ActError and ActDrop make the task fail with an injected error.
	FPWorkerTask = "worker.task"
	// FPCoordSend / FPCoordRecv fire on every coordinator-side protocol
	// message; ActDrop closes that worker's connection.
	FPCoordSend = "coordinator.send"
	FPCoordRecv = "coordinator.recv"
	// FPCoordAccept fires per accepted connection; any firing rejects
	// the connection.
	FPCoordAccept = "coordinator.accept"
	// FPCoordAssign fires per task dispatch; ActError and ActDrop make
	// the dispatch fail, orphaning the task for reassignment.
	FPCoordAssign = "coordinator.assign"
)

// MsgType enumerates the wire messages.
type MsgType string

// The protocol messages.
const (
	// MsgHello is the worker's first message.
	MsgHello MsgType = "hello"
	// MsgTask carries the instance and solver configuration to a worker.
	MsgTask MsgType = "task"
	// MsgProgress is a worker's periodic best-utility report.
	MsgProgress MsgType = "progress"
	// MsgEvent pushes a dynamic join/leave event to workers.
	MsgEvent MsgType = "event"
	// MsgBest shares the global best utility with workers.
	MsgBest MsgType = "best"
	// MsgStop tells workers to report their final solution and exit.
	MsgStop MsgType = "stop"
	// MsgResult is a worker's final report.
	MsgResult MsgType = "result"
)

// Envelope is the framing of every message.
type Envelope struct {
	Type MsgType         `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Hello identifies a connecting worker.
type Hello struct {
	WorkerID string `json:"workerId"`
}

// Task is the assignment sent to a worker.
type Task struct {
	// TaskID correlates a task across dispatch, progress, errors, and
	// traces (failure_log-style context); empty on pre-ID coordinators.
	TaskID string `json:"taskId,omitempty"`
	// Attempt counts how many times this task has been dispatched
	// (1-based); 0 from pre-ID coordinators is treated as 1.
	Attempt int `json:"attempt,omitempty"`
	// TraceID and SpanID carry the coordinator's dispatch span for this
	// attempt, so the worker's solve span lands under it in the merged
	// causal timeline. While a task sits in the orphan queue the fields
	// hold the *previous* attempt's dispatch span, which the re-dispatch
	// uses as its parent — retries stay linked to the original attempt
	// instead of orphaning.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`

	Sizes     []int     `json:"sizes"`
	Latencies []float64 `json:"latencies"`
	DDL       float64   `json:"ddl"`
	Alpha     float64   `json:"alpha"`
	Capacity  int       `json:"capacity"`
	Nmin      int       `json:"nmin"`

	Beta float64 `json:"beta"`
	Tau  float64 `json:"tau"`
	Seed int64   `json:"seed"`
	// Gamma is the number of in-process explorers the worker runs; zero
	// keeps the core default of 1.
	Gamma int `json:"gamma,omitempty"`
	// SEWorkers caps the goroutines the worker's kernel uses to advance
	// its explorers (core.SEConfig.Workers); zero means GOMAXPROCS.
	SEWorkers int `json:"seWorkers,omitempty"`
	// Adaptive turns on the annealed β/Γ schedule in the worker's kernel
	// (core.SEConfig.Adaptive).
	Adaptive      bool `json:"adaptive,omitempty"`
	ReportEvery   int  `json:"reportEvery"`
	MaxIterations int  `json:"maxIterations"`
}

// Instance reconstructs the core.Instance of a task.
func (t Task) Instance() core.Instance {
	return core.Instance{
		Sizes:     append([]int(nil), t.Sizes...),
		Latencies: append([]float64(nil), t.Latencies...),
		DDL:       t.DDL,
		Alpha:     t.Alpha,
		Capacity:  t.Capacity,
		Nmin:      t.Nmin,
	}
}

// Progress is a worker's periodic report.
type Progress struct {
	WorkerID   string  `json:"workerId"`
	Iterations int     `json:"iterations"`
	Utility    float64 `json:"utility"`
	Feasible   bool    `json:"feasible"`
	// BestN is the solution-thread cardinality n of the reported best (0
	// before any feasible solution); the coordinator exports it so the
	// convergence diagnostics can tell *which* thread f_n is winning
	// across the fleet.
	BestN int `json:"bestN,omitempty"`
	// TraceID and SpanID name the worker's in-flight solve span.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
	// SentAtNanos is the worker's wall clock at send (UnixNano). The
	// coordinator echoes it in its Best reply, closing an NTP-style
	// exchange the worker uses to estimate its clock offset against the
	// coordinator's clock (see Best's echo fields).
	SentAtNanos int64 `json:"sentAtNanos,omitempty"`
}

// EventMsg mirrors core.Event on the wire.
type EventMsg struct {
	Kind    string  `json:"kind"` // "join" or "leave"
	Index   int     `json:"index"`
	Size    int     `json:"size,omitempty"`
	Latency float64 `json:"latency,omitempty"`
}

// ToEvent converts the wire form to a core.Event.
func (m EventMsg) ToEvent() (core.Event, error) {
	switch m.Kind {
	case "join":
		return core.Event{Kind: core.EventJoin, Index: m.Index, Size: m.Size, Latency: m.Latency}, nil
	case "leave":
		return core.Event{Kind: core.EventLeave, Index: m.Index}, nil
	default:
		return core.Event{}, fmt.Errorf("dist: unknown event kind %q", m.Kind)
	}
}

// FromEvent converts a core.Event to the wire form.
func FromEvent(ev core.Event) EventMsg {
	m := EventMsg{Index: ev.Index, Size: ev.Size, Latency: ev.Latency}
	if ev.Kind == core.EventJoin {
		m.Kind = "join"
	} else {
		m.Kind = "leave"
	}
	return m
}

// Best shares the global best utility.
type Best struct {
	Utility float64 `json:"utility"`
	// EchoSentAtNanos, RecvAtNanos, and ReplyAtNanos close the NTP-style
	// clock-sync exchange: the worker's Progress send time (t0) echoed
	// back verbatim, plus the coordinator's receive (t1) and reply (t2)
	// times on its own clock. The worker stamps arrival (t3) and computes
	// offset = ((t1-t0)+(t2-t3))/2 — seconds to add to its timestamps to
	// land on the coordinator's clock. All zero when the triggering
	// Progress carried no timestamp.
	EchoSentAtNanos int64 `json:"echoSentAtNanos,omitempty"`
	RecvAtNanos     int64 `json:"recvAtNanos,omitempty"`
	ReplyAtNanos    int64 `json:"replyAtNanos,omitempty"`
}

// Result is a worker's final answer.
type Result struct {
	WorkerID   string  `json:"workerId"`
	TaskID     string  `json:"taskId,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	Utility    float64 `json:"utility"`
	Selected   []bool  `json:"selected"`
	Iterations int     `json:"iterations"`
	// BestN is the cardinality of the winning solution thread (0 when the
	// result carries no feasible solution).
	BestN int    `json:"bestN,omitempty"`
	Err   string `json:"err,omitempty"`
	// TraceID and SpanID name the solve span that produced this result.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
}

// codec frames envelopes over a connection. The optional obs sink counts
// every message by type and direction, and the optional injector
// evaluates the role's send/recv fault points on every message (both
// nil-is-off). A write mutex serializes concurrent senders — the
// coordinator's event relay and its per-worker loop share one codec.
type codec struct {
	conn net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
	enc  *json.Encoder
	obs  *obs.DistObserver

	fi             *faultinject.Injector
	fiSend, fiRecv string
}

func newCodec(conn net.Conn) *codec {
	return &codec{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
		enc:  json.NewEncoder(conn),
	}
}

// arm attaches a fault injector with the role's send/recv point names.
func (c *codec) arm(fi *faultinject.Injector, sendPoint, recvPoint string) {
	c.fi = fi
	c.fiSend, c.fiRecv = sendPoint, recvPoint
}

// inject evaluates one fault point: ActDelay sleeps and proceeds,
// ActError fails the operation, ActDrop also tears the connection down so
// both ends observe a real conn loss.
func (c *codec) inject(point string) error {
	if c.fi == nil || point == "" {
		return nil
	}
	d := c.fi.Eval(point)
	switch d.Action {
	case faultinject.ActDelay:
		c.obs.FaultInjected(point, "delay")
		time.Sleep(d.Delay)
	case faultinject.ActError:
		c.obs.FaultInjected(point, "error")
		return d.Err
	case faultinject.ActDrop:
		c.obs.FaultInjected(point, "drop")
		_ = c.conn.Close()
		return d.Err
	}
	return nil
}

// send marshals body into an envelope and writes it.
func (c *codec) send(t MsgType, body any) error {
	if err := c.inject(c.fiSend); err != nil {
		return fmt.Errorf("dist: send %s: %w", t, err)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", t, err)
	}
	c.wmu.Lock()
	err = c.enc.Encode(Envelope{Type: t, Body: raw})
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("dist: send %s: %w", t, err)
	}
	c.obs.MsgSent(string(t))
	return nil
}

// recv reads the next envelope, honoring the deadline if non-zero. A
// deadline expiry surfaces as a net.Error whose Timeout() is true (the
// raw *net.OpError from the socket), so callers can tell a silent peer
// from a closed connection.
func (c *codec) recv(deadline time.Duration) (Envelope, error) {
	if err := c.inject(c.fiRecv); err != nil {
		return Envelope{}, err
	}
	if deadline > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(deadline)); err != nil {
			return Envelope{}, err
		}
	} else {
		if err := c.conn.SetReadDeadline(time.Time{}); err != nil {
			return Envelope{}, err
		}
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Envelope{}, fmt.Errorf("dist: decode envelope: %w", err)
	}
	c.obs.MsgRecv(string(env.Type))
	return env, nil
}

// decode unmarshals an envelope body.
func decode[T any](env Envelope) (T, error) {
	var v T
	if err := json.Unmarshal(env.Body, &v); err != nil {
		return v, fmt.Errorf("dist: decode %s body: %w", env.Type, err)
	}
	return v, nil
}
