package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/obs"
)

// Worker errors.
var ErrBadTask = errors.New("dist: malformed task")

// Worker runs one SE exploration engine against a coordinator.
type Worker struct {
	// ID labels the worker in reports. Required.
	ID string
	// DialTimeout bounds the connection attempt. Default 5 s.
	DialTimeout time.Duration
	// Throttle, when positive, sleeps this long every 100 transition
	// rounds. It paces the chain against wall-clock event schedules (and
	// keeps small instances from finishing before online events arrive).
	Throttle time.Duration
	// Obs, when non-nil, receives worker-side protocol telemetry:
	// per-type message counts, control-queue depth, and task errors.
	Obs *obs.DistObserver
	// SEObs, when non-nil, is threaded into the worker's SE engine so
	// its kernel counters land in the same registry as the protocol's.
	SEObs *obs.SEObserver
}

// taskRef renders the failure-log correlation context for a task: its
// ID (assigned by the coordinator) and dispatch attempt.
func taskRef(task Task) string {
	id := task.TaskID
	if id == "" {
		id = "?"
	}
	attempt := task.Attempt
	if attempt < 1 {
		attempt = 1
	}
	return fmt.Sprintf("task %s attempt %d", id, attempt)
}

// Run dials the coordinator, executes the assigned task, and returns the
// final result it reported. It exits when the coordinator sends stop, the
// iteration cap is reached, or the connection drops.
func (w Worker) Run(addr string) (Result, error) {
	if w.ID == "" {
		return Result{}, errors.New("dist: worker needs an ID")
	}
	dialTimeout := w.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return Result{}, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	defer conn.Close()
	c := newCodec(conn)
	c.obs = w.Obs
	if err := c.send(MsgHello, Hello{WorkerID: w.ID}); err != nil {
		return Result{}, err
	}
	env, err := c.recv(30 * time.Second)
	if err != nil {
		return Result{}, fmt.Errorf("dist: waiting for task: %w", err)
	}
	if env.Type != MsgTask {
		return Result{}, fmt.Errorf("%w: got %s before task", ErrBadTask, env.Type)
	}
	task, err := decode[Task](env)
	if err != nil {
		return Result{}, err
	}

	engine, err := core.NewEngine(task.Instance(), core.SEConfig{
		Beta:    task.Beta,
		Tau:     task.Tau,
		Seed:    task.Seed,
		Gamma:   task.Gamma,
		Workers: task.SEWorkers,
		Obs:     w.SEObs,
	})
	if err != nil {
		err = fmt.Errorf("dist: %s (worker %s): %w", taskRef(task), w.ID, err)
		w.Obs.TaskFailed(w.ID, err.Error())
		res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Err: err.Error()}
		_ = c.send(MsgResult, res)
		return res, err
	}

	// Reader goroutine: forwards control messages; closes on EOF.
	ctrl := make(chan Envelope, 16)
	readErr := make(chan error, 1)
	go func() {
		defer close(ctrl)
		for {
			env, err := c.recv(0)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					readErr <- err
				}
				return
			}
			ctrl <- env
		}
	}()

	reportEvery := task.ReportEvery
	if reportEvery <= 0 {
		reportEvery = 200
	}
	maxIters := task.MaxIterations
	if maxIters <= 0 {
		maxIters = 20000
	}

	// Rounds advance through StepN batches so the concurrent kernel is not
	// re-launched per round; batches never cross a report boundary, a
	// throttle boundary, or the iteration cap, and control messages are
	// drained between batches (events land at batch edges, which are the
	// kernel's synchronization points anyway).
	const batchRounds = 64
	stopping := false
	var applyErr error
	for iter := 0; iter < maxIters && !stopping; {
		next := iter + batchRounds
		if rb := (iter/reportEvery + 1) * reportEvery; rb < next {
			next = rb
		}
		if w.Throttle > 0 {
			if tb := (iter/100 + 1) * 100; tb < next {
				next = tb
			}
		}
		if next > maxIters {
			next = maxIters
		}
		engine.StepN(next - iter)
		iter = next
		if w.Throttle > 0 && iter%100 == 0 {
			time.Sleep(w.Throttle)
		}
		if iter%reportEvery == 0 {
			_, bErr := engine.Best()
			if err := c.send(MsgProgress, Progress{
				WorkerID:   w.ID,
				Iterations: engine.Iterations(),
				Utility:    engine.BestUtility(),
				Feasible:   bErr == nil,
			}); err != nil {
				break // coordinator gone; finish up
			}
		}
		// Drain control messages without blocking the chain.
		w.Obs.SetQueueDepth(len(ctrl))
		for drained := false; !drained; {
			select {
			case env, ok := <-ctrl:
				if !ok {
					stopping = true
					drained = true
					break
				}
				switch env.Type {
				case MsgStop:
					stopping = true
				case MsgEvent:
					m, err := decode[EventMsg](env)
					if err == nil {
						if ev, err := m.ToEvent(); err == nil {
							if err := engine.ApplyEvent(ev); err != nil && applyErr == nil {
								applyErr = err
							}
						}
					}
				case MsgBest:
					// Informational; a worker could use it to restart
					// stuck explorers. The reference implementation just
					// acknowledges receipt by continuing.
				}
			default:
				drained = true
			}
		}
	}

	res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Iterations: engine.Iterations()}
	if applyErr != nil {
		res.Err = fmt.Errorf("dist: %s (worker %s): apply event: %w", taskRef(task), w.ID, applyErr).Error()
	} else if sol, err := engine.Best(); err != nil {
		res.Err = fmt.Errorf("dist: %s (worker %s): %w", taskRef(task), w.ID, err).Error()
	} else {
		res.Utility = sol.Utility
		res.Selected = sol.Selected
	}
	if res.Err != "" {
		w.Obs.TaskFailed(w.ID, res.Err)
	}
	_ = c.send(MsgResult, res)
	// Linger until the coordinator consumes the result and closes the
	// connection (the reader closes ctrl on EOF). Closing right away can
	// lose the result: unread best-utility pushes still buffered on this
	// socket turn the close into a TCP RST, which discards the final
	// report before the coordinator reads it.
	linger := time.After(3 * time.Second)
drain:
	for {
		select {
		case _, ok := <-ctrl:
			if !ok {
				break drain
			}
		case <-linger:
			break drain
		}
	}
	select {
	case err := <-readErr:
		return res, err
	default:
	}
	return res, nil
}
