package dist

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/faultinject"
	"mvcom/internal/obs"
)

// Worker errors.
var ErrBadTask = errors.New("dist: malformed task")

// Worker runs SE exploration tasks against a coordinator.
type Worker struct {
	// ID labels the worker in reports. Required.
	ID string
	// DialTimeout bounds each connection attempt. Default 5 s.
	DialTimeout time.Duration
	// Throttle, when positive, sleeps this long every 100 transition
	// rounds. It paces the chain against wall-clock event schedules (and
	// keeps small instances from finishing before online events arrive).
	Throttle time.Duration
	// MaxAttempts caps how many sessions (the initial dial plus
	// reconnects) the worker makes before giving up on a retryable
	// failure — a dial error, or a connection lost before the
	// coordinator said stop. Default 1: no retry, the pre-hardening
	// behavior.
	MaxAttempts int
	// BackoffBase is the delay before the first reconnect; attempt k
	// waits BackoffBase·2^(k-1) plus up to 50% jitter. Default 50 ms.
	BackoffBase time.Duration
	// BackoffCap bounds the exponential growth. Default 2 s.
	BackoffCap time.Duration
	// BackoffSeed seeds the jitter stream; 0 derives it from ID so
	// co-located workers never share a reconnect schedule.
	BackoffSeed int64
	// IdleTimeout bounds the wait for a follow-up task after delivering
	// a result; expiry is a clean exit. It doubles as the linger that
	// keeps the socket open until the coordinator has consumed the
	// result (closing with unread best-utility pushes buffered would
	// turn the close into a TCP RST and could discard the report).
	// Default 3 s.
	IdleTimeout time.Duration
	// FI, when non-nil, evaluates the worker-side fault points
	// (worker.dial / send / recv / task). Nil is off.
	FI *faultinject.Injector
	// Obs, when non-nil, receives worker-side protocol telemetry:
	// per-type message counts, control-queue depth, task errors, and
	// fault/reconnect counters.
	Obs *obs.DistObserver
	// SEObs, when non-nil, is threaded into the worker's SE engine so
	// its kernel counters land in the same registry as the protocol's.
	SEObs *obs.SEObserver
}

// IsDialError reports whether err comes from a failed dial — the
// coordinator's address never answered (connection refused, no route,
// dial timeout). Long-lived worker processes use it to tell "the
// coordinator is gone, exit cleanly" from a session that died mid-task:
// a dial failure after exhausted retries means there is no session left
// to rejoin, while any other error happened on an established
// connection. Injected worker.dial faults deliberately do not match —
// they wrap faultinject.ErrInjected, not a *net.OpError.
func IsDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// taskRef renders the failure-log correlation context for a task: its
// ID (assigned by the coordinator) and dispatch attempt.
func taskRef(task Task) string {
	id := task.TaskID
	if id == "" {
		id = "?"
	}
	attempt := task.Attempt
	if attempt < 1 {
		attempt = 1
	}
	return fmt.Sprintf("task %s attempt %d", id, attempt)
}

// Run dials the coordinator, executes assigned tasks until the
// coordinator says stop (or the idle window after a result expires), and
// returns the last result it reported. Retryable failures — dial errors
// and connections lost before a stop — are retried with jittered
// exponential backoff while MaxAttempts allows.
func (w Worker) Run(addr string) (Result, error) {
	if w.ID == "" {
		return Result{}, errors.New("dist: worker needs an ID")
	}
	attempts := w.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	base := w.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	capD := w.BackoffCap
	if capD <= 0 {
		capD = 2 * time.Second
	}
	seed := w.BackoffSeed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(w.ID))
		seed = int64(h.Sum64())
	}
	jitter := rand.New(rand.NewSource(seed))

	var res Result
	var retryable bool
	var err error
	for attempt := 1; ; attempt++ {
		res, retryable, err = w.session(addr)
		if err == nil || !retryable || attempt >= attempts {
			return res, err
		}
		delay := base << (attempt - 1)
		if delay <= 0 || delay > capD {
			delay = capD
		}
		delay += time.Duration(jitter.Int63n(int64(delay)/2 + 1))
		w.Obs.WorkerReconnected(w.ID, attempt+1)
		time.Sleep(delay)
	}
}

// takeErr drains a buffered read error without blocking.
func takeErr(ch <-chan error) error {
	select {
	case err := <-ch:
		return err
	default:
		return nil
	}
}

// session is one connection's lifetime: dial, hello, then serve tasks
// until stop, idle expiry, or connection loss. The second return reports
// whether a failure is retryable (the coordinator may still have work
// for a fresh connection).
func (w Worker) session(addr string) (Result, bool, error) {
	if d := w.FI.Eval(FPWorkerDial); d.Action != faultinject.ActNone {
		if d.Action == faultinject.ActDelay {
			w.Obs.FaultInjected(FPWorkerDial, "delay")
			time.Sleep(d.Delay)
		} else {
			w.Obs.FaultInjected(FPWorkerDial, d.Action.String())
			return Result{}, true, fmt.Errorf("dist: dial %s: %w", addr, d.Err)
		}
	}
	dialTimeout := w.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return Result{}, true, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	defer conn.Close()
	c := newCodec(conn)
	c.obs = w.Obs
	c.arm(w.FI, FPWorkerSend, FPWorkerRecv)
	if err := c.send(MsgHello, Hello{WorkerID: w.ID}); err != nil {
		return Result{}, true, err
	}

	// Reader goroutine for the whole session: forwards control messages,
	// closes ctrl on connection loss. Each envelope is stamped at read
	// time — the t3 of the clock-sync exchange — so queueing delay in
	// ctrl never contaminates the offset estimate.
	ctrl := make(chan timedEnv, 16)
	readErr := make(chan error, 1)
	go func() {
		defer close(ctrl)
		for {
			env, err := c.recv(0)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					select {
					case readErr <- err:
					default:
					}
				}
				return
			}
			ctrl <- timedEnv{env: env, at: time.Now()}
		}
	}()

	idle := w.IdleTimeout
	if idle <= 0 {
		idle = 3 * time.Second
	}
	var last Result
	delivered := false
	for {
		wait := 30 * time.Second // generous window for the first task
		if delivered {
			wait = idle
		}
		timer := time.NewTimer(wait)
		var te timedEnv
		var open bool
		select {
		case te, open = <-ctrl:
			timer.Stop()
		case <-timer.C:
			if delivered {
				return last, false, nil // no more work; clean exit
			}
			return last, true, fmt.Errorf("dist: waiting for task: timeout after %v", wait)
		}
		if !open {
			if err := takeErr(readErr); err != nil {
				return last, !delivered, err
			}
			if delivered {
				return last, false, nil
			}
			return last, true, errors.New("dist: connection closed before task")
		}
		switch te.env.Type {
		case MsgTask:
			task, derr := decode[Task](te.env)
			if derr != nil {
				return last, false, derr
			}
			out := w.runTask(c, ctrl, readErr, task)
			if out.connErr != nil {
				return out.res, true, out.connErr
			}
			last = out.res
			delivered = true
			if out.taskErr != nil {
				return last, false, out.taskErr
			}
			if out.stopped {
				return last, false, nil
			}
		case MsgStop:
			return last, false, nil
		default:
			if !delivered {
				return last, false, fmt.Errorf("%w: got %s before task", ErrBadTask, te.env.Type)
			}
			// Best/event pushes between tasks are informational.
		}
	}
}

// timedEnv is an envelope stamped with its read time — the arrival
// timestamp (t3) the clock-sync estimate needs.
type timedEnv struct {
	env Envelope
	at  time.Time
}

// taskOutcome is how one task ended: connErr means the connection died
// and the result may never have reached the coordinator (the session is
// retryable); taskErr is a task-level failure that was reported over the
// wire; stopped means the coordinator's stop arrived during the run.
type taskOutcome struct {
	res     Result
	stopped bool
	connErr error
	taskErr error
}

// runTask executes one assigned task to completion, relaying progress
// and draining control messages between step batches.
func (w Worker) runTask(c *codec, ctrl <-chan timedEnv, readErr <-chan error, task Task) taskOutcome {
	// The solve span parents under the coordinator's dispatch span
	// carried in the task's wire fields, stitching this worker's work
	// into the coordinator-rooted epoch timeline.
	sp := w.Obs.TraceCtx().StartSpan("solve", w.ID,
		obs.SpanContext{TraceID: task.TraceID, SpanID: task.SpanID})
	sc := sp.Context()
	if d := w.FI.Eval(FPWorkerTask); d.Action != faultinject.ActNone {
		switch d.Action {
		case faultinject.ActDelay:
			w.Obs.FaultInjected(FPWorkerTask, "delay")
			time.Sleep(d.Delay)
		case faultinject.ActDrop:
			// Simulated worker crash mid-task: tear the connection down so
			// the coordinator sees a real loss and reassigns.
			w.Obs.FaultInjected(FPWorkerTask, "drop")
			sp.FinishOutcome("crash")
			_ = c.conn.Close()
			res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, TraceID: sc.TraceID, SpanID: sc.SpanID}
			return taskOutcome{res: res, connErr: fmt.Errorf("dist: %s: %w", taskRef(task), d.Err)}
		default:
			w.Obs.FaultInjected(FPWorkerTask, "error")
			err := fmt.Errorf("dist: %s (worker %s): %w", taskRef(task), w.ID, d.Err)
			w.Obs.TaskFailed(w.ID, err.Error())
			sp.FinishOutcome("error")
			res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Err: err.Error(), TraceID: sc.TraceID, SpanID: sc.SpanID}
			if serr := c.send(MsgResult, res); serr != nil {
				return taskOutcome{res: res, connErr: serr}
			}
			return taskOutcome{res: res, taskErr: err}
		}
	}

	engine, err := core.NewEngine(task.Instance(), core.SEConfig{
		Beta:     task.Beta,
		Tau:      task.Tau,
		Seed:     task.Seed,
		Gamma:    task.Gamma,
		Workers:  task.SEWorkers,
		Adaptive: task.Adaptive,
		Obs:      w.SEObs,
	})
	if err != nil {
		err = fmt.Errorf("dist: %s (worker %s): %w", taskRef(task), w.ID, err)
		w.Obs.TaskFailed(w.ID, err.Error())
		sp.FinishOutcome("bad-task")
		res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Err: err.Error(), TraceID: sc.TraceID, SpanID: sc.SpanID}
		if serr := c.send(MsgResult, res); serr != nil {
			return taskOutcome{res: res, connErr: serr}
		}
		return taskOutcome{res: res, taskErr: err}
	}

	reportEvery := task.ReportEvery
	if reportEvery <= 0 {
		reportEvery = 200
	}
	maxIters := task.MaxIterations
	if maxIters <= 0 {
		maxIters = 20000
	}

	// Rounds advance through StepN batches so the concurrent kernel is not
	// re-launched per round; batches never cross a report boundary, a
	// throttle boundary, or the iteration cap, and control messages are
	// drained between batches (events land at batch edges, which are the
	// kernel's synchronization points anyway).
	const batchRounds = 64
	stopSeen := false
	ctrlClosed := false
	var applyErr error
	for iter := 0; iter < maxIters && !stopSeen; {
		next := iter + batchRounds
		if rb := (iter/reportEvery + 1) * reportEvery; rb < next {
			next = rb
		}
		if w.Throttle > 0 {
			if tb := (iter/100 + 1) * 100; tb < next {
				next = tb
			}
		}
		if next > maxIters {
			next = maxIters
		}
		engine.StepN(next - iter)
		iter = next
		if w.Throttle > 0 && iter%100 == 0 {
			time.Sleep(w.Throttle)
		}
		if iter%reportEvery == 0 {
			_, bErr := engine.Best()
			if err := c.send(MsgProgress, Progress{
				WorkerID:    w.ID,
				Iterations:  engine.Iterations(),
				Utility:     engine.BestUtility(),
				Feasible:    bErr == nil,
				BestN:       engine.BestCardinality(),
				TraceID:     sc.TraceID,
				SpanID:      sc.SpanID,
				SentAtNanos: time.Now().UnixNano(),
			}); err != nil {
				sp.FinishOutcome("conn-lost")
				res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Iterations: engine.Iterations(), TraceID: sc.TraceID, SpanID: sc.SpanID}
				return taskOutcome{res: res, connErr: fmt.Errorf("dist: %s: report progress: %w", taskRef(task), err)}
			}
		}
		// Drain control messages without blocking the chain.
		w.Obs.SetQueueDepth(len(ctrl))
		for drained := false; !drained; {
			select {
			case te, ok := <-ctrl:
				if !ok {
					ctrlClosed = true
					drained = true
					break
				}
				switch te.env.Type {
				case MsgStop:
					stopSeen = true
				case MsgEvent:
					m, err := decode[EventMsg](te.env)
					if err == nil {
						if ev, err := m.ToEvent(); err == nil {
							if err := engine.ApplyEvent(ev); err != nil && applyErr == nil {
								applyErr = err
							}
						}
					}
				case MsgBest:
					// Informational for the chain, but it closes the
					// clock-sync exchange when it echoes one of our
					// Progress timestamps: offset = ((t1-t0)+(t2-t3))/2
					// is the seconds to add to this worker's clock to
					// land on the coordinator's.
					if b, err := decode[Best](te.env); err == nil && b.EchoSentAtNanos != 0 {
						t0, t1, t2, t3 := b.EchoSentAtNanos, b.RecvAtNanos, b.ReplyAtNanos, te.at.UnixNano()
						offset := float64((t1-t0)+(t2-t3)) / 2 / 1e9
						rtt := float64((t3-t0)-(t2-t1)) / 1e9
						w.Obs.ClockSynced(w.ID, offset, rtt)
					}
				}
			default:
				drained = true
			}
		}
		if ctrlClosed && !stopSeen {
			// Connection lost mid-task with no stop: the task is orphaned
			// coordinator-side; a fresh session may pick it back up.
			err := takeErr(readErr)
			if err == nil {
				err = errors.New("connection lost mid-task")
			}
			sp.FinishOutcome("conn-lost")
			res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Iterations: engine.Iterations(), TraceID: sc.TraceID, SpanID: sc.SpanID}
			return taskOutcome{res: res, connErr: fmt.Errorf("dist: %s: %w", taskRef(task), err)}
		}
		if ctrlClosed {
			break
		}
	}

	res := Result{WorkerID: w.ID, TaskID: task.TaskID, Attempt: task.Attempt, Iterations: engine.Iterations(), TraceID: sc.TraceID, SpanID: sc.SpanID}
	if applyErr != nil {
		res.Err = fmt.Errorf("dist: %s (worker %s): apply event: %w", taskRef(task), w.ID, applyErr).Error()
	} else if sol, err := engine.Best(); err != nil {
		res.Err = fmt.Errorf("dist: %s (worker %s): %w", taskRef(task), w.ID, err).Error()
	} else {
		res.Utility = sol.Utility
		res.Selected = sol.Selected
		res.BestN = sol.Count
	}
	if res.Err != "" {
		w.Obs.TaskFailed(w.ID, res.Err)
		sp.FinishOutcome("error")
	} else {
		sp.Finish()
	}
	if serr := c.send(MsgResult, res); serr != nil && !stopSeen && !ctrlClosed {
		return taskOutcome{res: res, connErr: fmt.Errorf("dist: %s: report result: %w", taskRef(task), serr)}
	}
	return taskOutcome{res: res, stopped: stopSeen || ctrlClosed}
}
