package dist

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/faultinject"
	"mvcom/internal/obs"
)

// Coordinator errors.
var (
	ErrNoWorkers = errors.New("dist: no workers connected")
	ErrNoResult  = errors.New("dist: no worker produced a feasible solution")
)

// CoordinatorConfig tunes a coordinated run.
type CoordinatorConfig struct {
	// Instance is the epoch's scheduling input.
	Instance core.Instance
	// Workers is how many workers to wait for before starting. Required.
	// Fewer workers at AcceptTimeout expiry is tolerated: the session
	// proceeds with the connected subset, and with zero workers the
	// coordinator degrades to a local in-process solve (unless
	// DisableLocalFallback is set).
	Workers int
	// AcceptTimeout bounds the wait for workers to connect. Default 10 s.
	AcceptTimeout time.Duration
	// RunTimeout bounds the exploration after start. Default 30 s.
	RunTimeout time.Duration
	// StableReports stops the run early once this many consecutive
	// progress reports arrive without a global-best improvement.
	// Default 20.
	StableReports int
	// ReportEvery asks workers to report every N iterations. Default 200.
	ReportEvery int
	// MaxIterations caps each worker's rounds. Default 20000.
	MaxIterations int
	// HeartbeatTimeout bounds the silence tolerated from a worker
	// mid-run. A worker that sends neither progress nor a result within
	// the window is declared dead, its connection is closed, and its
	// task becomes eligible for reassignment. Default 10 s.
	HeartbeatTimeout time.Duration
	// MaxTaskAttempts caps how many times one task may be dispatched
	// (the first dispatch counts). A task orphaned by a dead worker is
	// re-dispatched — to a surviving worker once it finishes its own
	// task, or to a worker that reconnects mid-run — until the cap is
	// reached, after which it is abandoned. Default 3.
	MaxTaskAttempts int
	// DisableLocalFallback turns off the graceful degradation to an
	// in-process SE solve when no worker delivers a feasible result; the
	// run then fails with ErrNoWorkers/ErrNoResult as the pre-hardening
	// coordinator did.
	DisableLocalFallback bool
	// Beta, Tau, Seed mirror core.SEConfig; worker g receives Seed+g.
	Beta float64
	Tau  float64
	Seed int64
	// Gamma is the explorer count each worker machine runs in-process
	// (core.SEConfig.Gamma); zero keeps the core default of 1.
	Gamma int
	// SEWorkers bounds the goroutines each worker's kernel spreads its
	// explorers over (core.SEConfig.Workers); zero means GOMAXPROCS.
	SEWorkers int
	// Adaptive turns on the annealed β/Γ schedule in every worker's
	// kernel and in the coordinator's local-fallback solver
	// (core.SEConfig.Adaptive).
	Adaptive bool
	// Events are pushed to all workers at the given wall-clock offsets
	// after the run starts.
	Events []TimedEvent
	// FI, when non-nil, evaluates the coordinator-side fault points
	// (coordinator.accept / assign / send / recv). Nil is off.
	FI *faultinject.Injector
	// Obs, when non-nil, receives coordinator-side telemetry: per-type
	// message counts, connected-worker gauge, per-task latency, fault
	// and retry counters, and the session best-utility gauge. Nil
	// disables every hook.
	Obs *obs.DistObserver
	// Parent, when valid, parents the session's root "epoch" span (so an
	// epoch pipeline driving the coordinator owns the whole timeline);
	// the zero value starts a fresh root trace.
	Parent obs.SpanContext
}

// TimedEvent schedules a dynamic event relative to run start.
type TimedEvent struct {
	After time.Duration
	Event core.Event
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.AcceptTimeout <= 0 {
		c.AcceptTimeout = 10 * time.Second
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 30 * time.Second
	}
	if c.StableReports <= 0 {
		c.StableReports = 20
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 200
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 20000
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 3
	}
	if c.Beta <= 0 {
		c.Beta = 2
	}
	return c
}

// Coordinator runs the distributed SE session.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu       sync.Mutex
	best     Result
	haveBest bool
	improves int // report counter since last improvement
	// lastResults / lastLocal capture the most recent Run's per-task
	// results and whether it degraded to the local-fallback solve — the
	// provenance the decision journal records for replay.
	lastResults []Result
	lastLocal   bool
}

// NewCoordinator validates the instance and starts listening on addr
// (e.g. "127.0.0.1:0").
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: workers = %d, need >= 1", cfg.Workers)
	}
	inst := cfg.Instance.Clone()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg.Instance = inst
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the listening address for workers to dial.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// TaskResults returns the per-task results collected by the most recent
// Run (every settled attempt, failed ones included) and whether that run
// fell back to the local in-process solve. The slice is a copy.
func (co *Coordinator) TaskResults() ([]Result, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append([]Result(nil), co.lastResults...), co.lastLocal
}

// setOutcome records a Run's provenance for TaskResults.
func (co *Coordinator) setOutcome(results []Result, local bool) {
	co.mu.Lock()
	co.lastResults = append(co.lastResults[:0], results...)
	co.lastLocal = local
	co.mu.Unlock()
}

// TaskSeed returns the seed the g-th task was dispatched with (the
// deterministic per-task derivation replay relies on).
func (co *Coordinator) TaskSeed(g int) int64 { return co.cfg.Seed + int64(g)*7919 }

// SolverConfig returns the SE configuration the session's solves derive
// from: worker tasks carry these fields on the wire (each with its
// TaskSeed), and the local-fallback kernel solves under them directly.
func (co *Coordinator) SolverConfig() core.SEConfig {
	return core.SEConfig{
		Beta:     co.cfg.Beta,
		Tau:      co.cfg.Tau,
		Seed:     co.cfg.Seed,
		Gamma:    co.cfg.Gamma,
		Workers:  co.cfg.SEWorkers,
		Adaptive: co.cfg.Adaptive,
		MaxIters: co.cfg.MaxIterations,
	}
}

// Close releases the listener.
func (co *Coordinator) Close() error { return co.ln.Close() }

// session is the per-Run recovery state: the live connection set, the
// orphaned-task queue, and the outstanding-task count that decides when
// the run is over.
type session struct {
	co         *Coordinator
	dispatched time.Time
	// root is the session's "epoch" span; every first-attempt dispatch
	// span parents under it.
	root *obs.Span

	mu      sync.Mutex
	live    map[*codec]bool
	all     []*codec
	results []Result
	pending int
	stopped bool

	orphans  chan Task
	stopOnce sync.Once
	stopDone chan struct{}
	wg       sync.WaitGroup

	// evmu orders event delivery against task dispatch: every assign
	// replays the full event history to the task's fresh engine, and
	// holding evmu across both the replay and the live pushes means a
	// connection never sees an event duplicated or out of order relative
	// to its current task.
	evmu     sync.Mutex
	events   []EventMsg
	caughtUp map[*codec]bool
}

// Run accepts the configured number of workers, distributes the task,
// relays events, detects and recovers from worker failures, and returns
// the best solution any worker reported. If every worker is lost (or none
// ever connects) the coordinator degrades to a local in-process solve of
// the same instance unless DisableLocalFallback is set. The instance
// returned alongside reflects join events so the selection can be
// interpreted.
func (co *Coordinator) Run() (core.Solution, core.Instance, error) {
	inst := co.cfg.Instance.Clone()
	root := co.cfg.Obs.TraceCtx().StartSpan("epoch", "coordinator", co.cfg.Parent)
	defer root.Finish()
	conns, err := co.acceptWorkers()
	if err != nil && !errors.Is(err, ErrNoWorkers) {
		root.FinishOutcome("accept-failed")
		return core.Solution{}, inst, err
	}
	if len(conns) == 0 {
		if co.cfg.DisableLocalFallback {
			root.FinishOutcome("no-workers")
			return core.Solution{}, inst, err
		}
		co.setOutcome(nil, true)
		sol, lerr := co.localSolve(inst, root.Context())
		return sol, inst, lerr
	}

	s := &session{
		co:         co,
		dispatched: time.Now(),
		root:       root,
		live:       make(map[*codec]bool, len(conns)),
		orphans:    make(chan Task, len(conns)),
		stopDone:   make(chan struct{}),
		pending:    len(conns),
		caughtUp:   make(map[*codec]bool),
	}
	defer func() {
		s.mu.Lock()
		all := append([]*codec(nil), s.all...)
		s.mu.Unlock()
		for _, c := range all {
			_ = c.conn.Close()
		}
	}()

	timer := time.AfterFunc(co.cfg.RunTimeout, s.stopAll)
	defer timer.Stop()

	// Hand out tasks with per-worker seeds and start one serve loop per
	// connection; keep accepting late (reconnecting) workers so orphaned
	// tasks can land on fresh connections mid-run.
	for g, c := range conns {
		s.register(c)
		task := co.task(g)
		s.wg.Add(1)
		go func(c *codec, task Task) {
			defer s.wg.Done()
			s.serve(c, &task)
		}(c, task)
	}
	s.wg.Add(1)
	go s.acceptLate()

	// Apply events to the local instance copy as they are pushed, so the
	// final selection maps onto the right shard set. Sends to workers
	// that already finished are best-effort — a worker may legitimately
	// have stopped or died, which the session tolerates everywhere else
	// too.
	done := make(chan struct{})
	var evMu sync.Mutex
	go func() {
		defer close(done)
		start := time.Now()
		for _, te := range co.cfg.Events {
			if wait := te.After - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-s.stopDone:
					return
				}
			}
			evMu.Lock()
			if ev := te.Event; ev.Kind == core.EventJoin && (ev.Index < 0 || ev.Index >= inst.NumShards()) {
				inst.Sizes = append(inst.Sizes, ev.Size)
				inst.Latencies = append(inst.Latencies, ev.Latency)
			}
			evMu.Unlock()
			s.pushEvent(FromEvent(te.Event))
		}
	}()

	s.wg.Wait()
	s.stopAll()
	<-done
	// Stop admitting stragglers: a worker re-dialing after the session
	// ended would otherwise sit in the accept backlog waiting for a task
	// that will never come. Closed here (not in stopAll) so acceptLate's
	// final iterations see the deadline kick, not a surprise close.
	_ = co.ln.Close()

	// Anything still queued never found a worker before the run ended.
	for {
		select {
		case t := <-s.orphans:
			co.cfg.Obs.TaskAbandoned(t.TaskID, t.Attempt)
			continue
		default:
		}
		break
	}

	best, ok := pickBest(s.results)
	if !ok {
		if co.cfg.DisableLocalFallback {
			root.FinishOutcome("no-result")
			return core.Solution{}, inst, ErrNoResult
		}
		co.setOutcome(s.results, true)
		sol, lerr := co.localSolve(inst, root.Context())
		return sol, inst, lerr
	}
	co.setOutcome(s.results, false)
	evMu.Lock()
	defer evMu.Unlock()
	if len(best.Selected) > inst.NumShards() {
		return core.Solution{}, inst, fmt.Errorf("dist: result length %d exceeds %d shards",
			len(best.Selected), inst.NumShards())
	}
	// A worker that stopped before late join events reports a shorter
	// vector; the missing shards are simply unselected.
	sel := make([]bool, inst.NumShards())
	copy(sel, best.Selected)
	sol := core.NewSolution(&inst, sel)
	sol.Iterations = best.Iterations
	return sol, inst, nil
}

// task builds the g-th initial assignment.
func (co *Coordinator) task(g int) Task {
	return Task{
		TaskID:        fmt.Sprintf("task-%d", g),
		Attempt:       1,
		Sizes:         co.cfg.Instance.Sizes,
		Latencies:     co.cfg.Instance.Latencies,
		DDL:           co.cfg.Instance.DDL,
		Alpha:         co.cfg.Instance.Alpha,
		Capacity:      co.cfg.Instance.Capacity,
		Nmin:          co.cfg.Instance.Nmin,
		Beta:          co.cfg.Beta,
		Tau:           co.cfg.Tau,
		Seed:          co.TaskSeed(g),
		Gamma:         co.cfg.Gamma,
		SEWorkers:     co.cfg.SEWorkers,
		Adaptive:      co.cfg.Adaptive,
		ReportEvery:   co.cfg.ReportEvery,
		MaxIterations: co.cfg.MaxIterations,
	}
}

// localSolve is the graceful-degradation path: solve the instance as
// currently known with the in-process SE kernel, using the session's own
// solver parameters. Its span parents under the session root so the
// degradation stays inside the epoch's causal timeline.
func (co *Coordinator) localSolve(inst core.Instance, parent obs.SpanContext) (core.Solution, error) {
	sp := co.cfg.Obs.TraceCtx().StartSpan("local-solve", "coordinator", parent)
	co.cfg.Obs.LocalFallbackUsed()
	local := inst.Clone()
	if err := local.Validate(); err != nil {
		sp.FinishOutcome("invalid-instance")
		return core.Solution{}, err
	}
	sol, _, err := core.NewSE(core.SEConfig{
		Beta:     co.cfg.Beta,
		Tau:      co.cfg.Tau,
		Seed:     co.cfg.Seed,
		Gamma:    co.cfg.Gamma,
		Workers:  co.cfg.SEWorkers,
		Adaptive: co.cfg.Adaptive,
		MaxIters: co.cfg.MaxIterations,
	}).Solve(local)
	if err != nil {
		sp.FinishOutcome("error")
	} else {
		sp.Finish()
	}
	return sol, err
}

// acceptWorkers blocks until the configured number of workers said hello
// or the accept window closes. A partial house is tolerated: at deadline
// expiry the session proceeds with whoever connected; only an empty house
// returns ErrNoWorkers.
func (co *Coordinator) acceptWorkers() ([]*codec, error) {
	deadline := time.Now().Add(co.cfg.AcceptTimeout)
	var conns []*codec
	for len(conns) < co.cfg.Workers {
		if dl, ok := co.ln.(*net.TCPListener); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				return nil, err
			}
		}
		conn, err := co.ln.Accept()
		if err != nil {
			if len(conns) > 0 {
				return conns, nil // partial house: run with what we have
			}
			return nil, fmt.Errorf("%w: %v", ErrNoWorkers, err)
		}
		if d := co.cfg.FI.Eval(FPCoordAccept); d.Action != faultinject.ActNone {
			co.cfg.Obs.FaultInjected(FPCoordAccept, d.Action.String())
			_ = conn.Close()
			continue
		}
		c := newCodec(conn)
		c.obs = co.cfg.Obs
		c.arm(co.cfg.FI, FPCoordSend, FPCoordRecv)
		env, err := c.recv(co.cfg.AcceptTimeout)
		if err != nil || env.Type != MsgHello {
			_ = conn.Close()
			continue
		}
		conns = append(conns, c)
		co.cfg.Obs.SetWorkersConnected(len(conns))
	}
	return conns, nil
}

// acceptLate admits workers that connect after the run started — chiefly
// workers re-dialing after a dropped connection — and parks each on the
// orphan queue so it can pick up a task lost by a dead worker.
func (s *session) acceptLate() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopDone:
			return
		default:
		}
		if dl, ok := s.co.ln.(*net.TCPListener); ok {
			_ = dl.SetDeadline(time.Now().Add(500 * time.Millisecond))
		}
		conn, err := s.co.ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return // listener closed
		}
		if d := s.co.cfg.FI.Eval(FPCoordAccept); d.Action != faultinject.ActNone {
			s.co.cfg.Obs.FaultInjected(FPCoordAccept, d.Action.String())
			_ = conn.Close()
			continue
		}
		c := newCodec(conn)
		c.obs = s.co.cfg.Obs
		c.arm(s.co.cfg.FI, FPCoordSend, FPCoordRecv)
		env, err := c.recv(s.co.cfg.HeartbeatTimeout)
		if err != nil || env.Type != MsgHello {
			_ = conn.Close()
			continue
		}
		s.register(c)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(c, nil)
		}()
	}
}

// serve owns one worker connection: dispatch a task, relay its progress,
// collect its result, and keep feeding it orphaned tasks until the
// session ends. task == nil parks the connection on the orphan queue
// first (late joiners).
func (s *session) serve(c *codec, task *Task) {
	defer func() { _ = c.conn.Close() }()
	for {
		if task == nil {
			next, ok := s.awaitOrphan()
			if !ok {
				// Session over: a best-effort stop lets an idle worker
				// exit cleanly instead of timing out.
				_ = c.send(MsgStop, struct{}{})
				s.unregister(c)
				return
			}
			task = &next
		}
		sp := s.startDispatch(task)
		if err := s.assign(c, *task); err != nil {
			sp.FinishOutcome("assign-failed")
			s.workerDead(c, task)
			return
		}
		cur := *task
		task = nil
		if !s.serveTask(c, cur, sp) {
			return
		}
	}
}

// startDispatch opens the per-attempt dispatch span and stamps its
// context into the task's wire fields (the worker parents its solve span
// under it). A first dispatch parents to the session root; a re-dispatch
// finds the previous attempt's span in the same fields — carried through
// the orphan queue — and parents under *that*, so retried attempts chain
// back to the original instead of orphaning.
func (s *session) startDispatch(task *Task) *obs.Span {
	parent := obs.SpanContext{TraceID: task.TraceID, SpanID: task.SpanID}
	if !parent.Valid() {
		parent = s.root.Context()
	}
	attempt := task.Attempt
	if attempt < 1 {
		attempt = 1
	}
	sp := s.co.cfg.Obs.TraceCtx().StartSpan("dispatch", fmt.Sprintf("%s#%d", task.TaskID, attempt), parent)
	sc := sp.Context()
	task.TraceID, task.SpanID = sc.TraceID, sc.SpanID
	return sp
}

// assign dispatches one task over the connection, subject to the
// coordinator.assign fault point, then replays the full event history so
// the task's fresh engine catches up with the run's dynamics before live
// pushes resume for this connection.
func (s *session) assign(c *codec, task Task) error {
	if d := s.co.cfg.FI.Eval(FPCoordAssign); d.Action != faultinject.ActNone {
		switch d.Action {
		case faultinject.ActDelay:
			s.co.cfg.Obs.FaultInjected(FPCoordAssign, "delay")
			time.Sleep(d.Delay)
		default:
			s.co.cfg.Obs.FaultInjected(FPCoordAssign, d.Action.String())
			if d.Action == faultinject.ActDrop {
				_ = c.conn.Close()
			}
			return d.Err
		}
	}
	s.evmu.Lock()
	defer s.evmu.Unlock()
	s.caughtUp[c] = false
	if err := c.send(MsgTask, task); err != nil {
		return err
	}
	for _, m := range s.events {
		if err := c.send(MsgEvent, m); err != nil {
			return err
		}
	}
	s.caughtUp[c] = true
	return nil
}

// pushEvent records a dynamic event and forwards it to every caught-up
// connection (those mid-task with the full prior history applied).
func (s *session) pushEvent(m EventMsg) {
	s.evmu.Lock()
	defer s.evmu.Unlock()
	s.events = append(s.events, m)
	for _, c := range s.snapshotLive() {
		if s.caughtUp[c] {
			_ = c.send(MsgEvent, m)
		}
	}
}

// serveTask relays one task's progress until its result arrives. It
// returns true when the task resolved (the serve loop may take more
// work) and false when the connection died (workerDead has already
// handled the orphaning).
func (s *session) serveTask(c *codec, cur Task, sp *obs.Span) bool {
	for {
		env, err := c.recv(s.co.cfg.HeartbeatTimeout)
		if err != nil {
			// Timeout (silent worker) and connection loss both mean the
			// worker is gone mid-task; the run continues without it.
			sp.FinishOutcome("worker-dead")
			s.workerDead(c, &cur)
			return false
		}
		switch env.Type {
		case MsgProgress:
			recvAt := time.Now() // t1 of the clock-sync exchange
			p, derr := decode[Progress](env)
			if derr != nil {
				continue
			}
			if s.co.noteProgress(p) {
				s.stopAll()
			}
			// Share the global best back (informational; the paper's
			// "current system utility" exchange).
			s.co.mu.Lock()
			bu := s.co.best.Utility
			have := s.co.haveBest
			s.co.mu.Unlock()
			if have {
				b := Best{Utility: bu}
				if p.SentAtNanos != 0 {
					b.EchoSentAtNanos = p.SentAtNanos
					b.RecvAtNanos = recvAt.UnixNano()
					b.ReplyAtNanos = time.Now().UnixNano()
				}
				_ = c.send(MsgBest, b)
			}
		case MsgResult:
			r, derr := decode[Result](env)
			if derr != nil {
				continue
			}
			s.co.cfg.Obs.ObserveTaskLatency(time.Since(s.dispatched).Seconds())
			if r.Err != "" {
				s.co.cfg.Obs.TaskFailed(r.WorkerID, r.Err)
				sp.FinishOutcome("error")
			} else {
				sp.Finish()
			}
			s.resolve(&cur, r)
			return true
		}
	}
}

// resolve folds a task's result into the session: failed results are
// retried while attempts remain, anything else settles the task. When
// the last outstanding task settles the session stops.
func (s *session) resolve(cur *Task, r Result) {
	s.mu.Lock()
	s.results = append(s.results, r)
	if r.Err != "" && !s.stopped && cur.Attempt < s.co.cfg.MaxTaskAttempts {
		next := *cur
		next.Attempt++
		s.co.cfg.Obs.TaskReassigned(next.TaskID, next.Attempt)
		s.orphans <- next
		s.mu.Unlock()
		return
	}
	if r.Err != "" {
		s.co.cfg.Obs.TaskAbandoned(cur.TaskID, cur.Attempt)
	}
	s.pending--
	stop := s.pending <= 0
	s.mu.Unlock()
	if stop {
		s.stopAll()
	}
}

// workerDead handles a connection lost mid-task: close it, and either
// queue the task for another worker (attempts remaining) or abandon it.
func (s *session) workerDead(c *codec, cur *Task) {
	s.unregister(c)
	_ = c.conn.Close()
	if cur == nil {
		return
	}
	s.mu.Lock()
	if !s.stopped && cur.Attempt < s.co.cfg.MaxTaskAttempts {
		next := *cur
		next.Attempt++
		s.co.cfg.Obs.TaskReassigned(next.TaskID, next.Attempt)
		s.orphans <- next
		s.mu.Unlock()
		return
	}
	s.co.cfg.Obs.TaskAbandoned(cur.TaskID, cur.Attempt)
	s.pending--
	stop := s.pending <= 0
	s.mu.Unlock()
	if stop {
		s.stopAll()
	}
}

// awaitOrphan blocks until a task needs a worker or the session ends.
func (s *session) awaitOrphan() (Task, bool) {
	select {
	case t := <-s.orphans:
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			s.co.cfg.Obs.TaskAbandoned(t.TaskID, t.Attempt)
			return Task{}, false
		}
		return t, true
	case <-s.stopDone:
		return Task{}, false
	}
}

func (s *session) register(c *codec) {
	s.mu.Lock()
	s.live[c] = true
	s.all = append(s.all, c)
	s.mu.Unlock()
}

func (s *session) unregister(c *codec) {
	s.mu.Lock()
	delete(s.live, c)
	s.mu.Unlock()
}

func (s *session) snapshotLive() []*codec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*codec, 0, len(s.live))
	for c := range s.live {
		out = append(out, c)
	}
	return out
}

// stopAll ends the session exactly once: flag it stopped, tell every
// live worker, release parked serve loops, and kick the late-accept
// listener out of its blocking Accept.
func (s *session) stopAll() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopped = true
		conns := make([]*codec, 0, len(s.live))
		for c := range s.live {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			_ = c.send(MsgStop, struct{}{})
		}
		close(s.stopDone)
		if dl, ok := s.co.ln.(*net.TCPListener); ok {
			_ = dl.SetDeadline(time.Now())
		}
	})
}

// noteProgress folds a report into the convergence tracker and reports
// whether the run should stop (global best stable long enough).
func (co *Coordinator) noteProgress(p Progress) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if p.Feasible && (!co.haveBest || p.Utility > co.best.Utility) {
		co.best = Result{WorkerID: p.WorkerID, Utility: p.Utility, Iterations: p.Iterations, BestN: p.BestN}
		co.haveBest = true
		co.improves = 0
		co.cfg.Obs.SetBestUtility(p.Utility)
		co.cfg.Obs.SetBestThreadN(p.BestN)
		return false
	}
	co.improves++
	return co.haveBest && co.improves >= co.cfg.StableReports
}

// pickBest chooses the highest-utility feasible result.
func pickBest(results []Result) (Result, bool) {
	best := Result{Utility: math.Inf(-1)}
	ok := false
	for _, r := range results {
		if r.Err != "" || r.Selected == nil {
			continue
		}
		if r.Utility > best.Utility {
			best = r
			ok = true
		}
	}
	return best, ok
}
