package dist

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/obs"
)

// Coordinator errors.
var (
	ErrNoWorkers = errors.New("dist: no workers connected")
	ErrNoResult  = errors.New("dist: no worker produced a feasible solution")
)

// CoordinatorConfig tunes a coordinated run.
type CoordinatorConfig struct {
	// Instance is the epoch's scheduling input.
	Instance core.Instance
	// Workers is how many workers to wait for before starting. Required.
	Workers int
	// AcceptTimeout bounds the wait for workers to connect. Default 10 s.
	AcceptTimeout time.Duration
	// RunTimeout bounds the exploration after start. Default 30 s.
	RunTimeout time.Duration
	// StableReports stops the run early once this many consecutive
	// progress reports arrive without a global-best improvement.
	// Default 20.
	StableReports int
	// ReportEvery asks workers to report every N iterations. Default 200.
	ReportEvery int
	// MaxIterations caps each worker's rounds. Default 20000.
	MaxIterations int
	// Beta, Tau, Seed mirror core.SEConfig; worker g receives Seed+g.
	Beta float64
	Tau  float64
	Seed int64
	// Gamma is the explorer count each worker machine runs in-process
	// (core.SEConfig.Gamma); zero keeps the core default of 1.
	Gamma int
	// SEWorkers bounds the goroutines each worker's kernel spreads its
	// explorers over (core.SEConfig.Workers); zero means GOMAXPROCS.
	SEWorkers int
	// Events are pushed to all workers at the given wall-clock offsets
	// after the run starts.
	Events []TimedEvent
	// Obs, when non-nil, receives coordinator-side telemetry: per-type
	// message counts, connected-worker gauge, per-task latency, and the
	// session best-utility gauge. Nil disables every hook.
	Obs *obs.DistObserver
}

// TimedEvent schedules a dynamic event relative to run start.
type TimedEvent struct {
	After time.Duration
	Event core.Event
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.AcceptTimeout <= 0 {
		c.AcceptTimeout = 10 * time.Second
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 30 * time.Second
	}
	if c.StableReports <= 0 {
		c.StableReports = 20
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 200
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 20000
	}
	if c.Beta <= 0 {
		c.Beta = 2
	}
	return c
}

// Coordinator runs the distributed SE session.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu       sync.Mutex
	best     Result
	haveBest bool
	improves int // report counter since last improvement
}

// NewCoordinator validates the instance and starts listening on addr
// (e.g. "127.0.0.1:0").
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: workers = %d, need >= 1", cfg.Workers)
	}
	inst := cfg.Instance.Clone()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg.Instance = inst
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen: %w", err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the listening address for workers to dial.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close releases the listener.
func (co *Coordinator) Close() error { return co.ln.Close() }

// Run accepts the configured number of workers, distributes the task,
// relays events, and returns the best solution any worker reported. The
// instance returned alongside reflects join events so the selection can be
// interpreted.
func (co *Coordinator) Run() (core.Solution, core.Instance, error) {
	inst := co.cfg.Instance.Clone()
	conns, err := co.acceptWorkers()
	if err != nil {
		return core.Solution{}, inst, err
	}
	defer func() {
		for _, c := range conns {
			_ = c.conn.Close()
		}
	}()

	// Hand out tasks with per-worker seeds.
	for g, c := range conns {
		task := Task{
			TaskID:        fmt.Sprintf("task-%d", g),
			Attempt:       1,
			Sizes:         co.cfg.Instance.Sizes,
			Latencies:     co.cfg.Instance.Latencies,
			DDL:           co.cfg.Instance.DDL,
			Alpha:         co.cfg.Instance.Alpha,
			Capacity:      co.cfg.Instance.Capacity,
			Nmin:          co.cfg.Instance.Nmin,
			Beta:          co.cfg.Beta,
			Tau:           co.cfg.Tau,
			Seed:          co.cfg.Seed + int64(g)*7919,
			Gamma:         co.cfg.Gamma,
			SEWorkers:     co.cfg.SEWorkers,
			ReportEvery:   co.cfg.ReportEvery,
			MaxIterations: co.cfg.MaxIterations,
		}
		if err := c.send(MsgTask, task); err != nil {
			return core.Solution{}, inst, err
		}
	}

	// Apply events to the local instance copy as they are pushed, so the
	// final selection maps onto the right shard set. Sends to workers that
	// already finished are best-effort — a worker may legitimately have
	// stopped or died, which the session tolerates everywhere else too.
	done := make(chan struct{})
	var evMu sync.Mutex
	go func() {
		defer close(done)
		start := time.Now()
		for _, te := range co.cfg.Events {
			wait := te.After - time.Since(start)
			if wait > 0 {
				time.Sleep(wait)
			}
			evMu.Lock()
			if ev := te.Event; ev.Kind == core.EventJoin && (ev.Index < 0 || ev.Index >= inst.NumShards()) {
				inst.Sizes = append(inst.Sizes, ev.Size)
				inst.Latencies = append(inst.Latencies, ev.Latency)
			}
			evMu.Unlock()
			for _, c := range conns {
				_ = c.send(MsgEvent, FromEvent(te.Event))
			}
		}
	}()

	results := co.collect(conns)
	<-done

	best, ok := pickBest(results)
	if !ok {
		return core.Solution{}, inst, ErrNoResult
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(best.Selected) > inst.NumShards() {
		return core.Solution{}, inst, fmt.Errorf("dist: result length %d exceeds %d shards",
			len(best.Selected), inst.NumShards())
	}
	// A worker that stopped before late join events reports a shorter
	// vector; the missing shards are simply unselected.
	sel := make([]bool, inst.NumShards())
	copy(sel, best.Selected)
	sol := core.NewSolution(&inst, sel)
	sol.Iterations = best.Iterations
	return sol, inst, nil
}

// acceptWorkers blocks until the configured number of workers said hello.
func (co *Coordinator) acceptWorkers() ([]*codec, error) {
	deadline := time.Now().Add(co.cfg.AcceptTimeout)
	var conns []*codec
	for len(conns) < co.cfg.Workers {
		if dl, ok := co.ln.(*net.TCPListener); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				return nil, err
			}
		}
		conn, err := co.ln.Accept()
		if err != nil {
			if len(conns) == 0 {
				return nil, fmt.Errorf("%w: %v", ErrNoWorkers, err)
			}
			return nil, fmt.Errorf("dist: accept: %w", err)
		}
		c := newCodec(conn)
		c.obs = co.cfg.Obs
		env, err := c.recv(co.cfg.AcceptTimeout)
		if err != nil || env.Type != MsgHello {
			_ = conn.Close()
			continue
		}
		conns = append(conns, c)
		co.cfg.Obs.SetWorkersConnected(len(conns))
	}
	return conns, nil
}

// collect reads progress and results from every worker until all stop.
func (co *Coordinator) collect(conns []*codec) []Result {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []Result
	)
	stopAll := func() {
		for _, c := range conns {
			_ = c.send(MsgStop, struct{}{})
		}
	}
	timer := time.AfterFunc(co.cfg.RunTimeout, stopAll)
	defer timer.Stop()

	dispatched := time.Now()
	for _, c := range conns {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				env, err := c.recv(co.cfg.RunTimeout + 5*time.Second)
				if err != nil {
					return // worker died; tolerate
				}
				switch env.Type {
				case MsgProgress:
					p, err := decode[Progress](env)
					if err != nil {
						continue
					}
					if co.noteProgress(p) {
						stopAll()
					}
					// Share the global best back (informational; the
					// paper's "current system utility" exchange).
					co.mu.Lock()
					bu := co.best.Utility
					have := co.haveBest
					co.mu.Unlock()
					if have {
						_ = c.send(MsgBest, Best{Utility: bu})
					}
				case MsgResult:
					r, err := decode[Result](env)
					if err == nil {
						co.cfg.Obs.ObserveTaskLatency(time.Since(dispatched).Seconds())
						if r.Err != "" {
							co.cfg.Obs.TaskFailed(r.WorkerID, r.Err)
						}
						mu.Lock()
						results = append(results, r)
						mu.Unlock()
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// noteProgress folds a report into the convergence tracker and reports
// whether the run should stop (global best stable long enough).
func (co *Coordinator) noteProgress(p Progress) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if p.Feasible && (!co.haveBest || p.Utility > co.best.Utility) {
		co.best = Result{WorkerID: p.WorkerID, Utility: p.Utility, Iterations: p.Iterations}
		co.haveBest = true
		co.improves = 0
		co.cfg.Obs.SetBestUtility(p.Utility)
		return false
	}
	co.improves++
	return co.haveBest && co.improves >= co.cfg.StableReports
}

// pickBest chooses the highest-utility feasible result.
func pickBest(results []Result) (Result, bool) {
	best := Result{Utility: math.Inf(-1)}
	ok := false
	for _, r := range results {
		if r.Err != "" || r.Selected == nil {
			continue
		}
		if r.Utility > best.Utility {
			best = r
			ok = true
		}
	}
	return best, ok
}
