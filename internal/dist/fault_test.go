package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/faultinject"
	"mvcom/internal/obs"
)

// mustInjector builds an injector from rules, failing the test on error.
func mustInjector(t *testing.T, seed int64, rules ...faultinject.Rule) *faultinject.Injector {
	t.Helper()
	in, err := faultinject.New(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// cleanRunUtility runs the same session fault-free and returns its best
// utility, the baseline for the Theorem-2-style tolerance checks.
func cleanRunUtility(t *testing.T, cfg CoordinatorConfig, nWorkers int) float64 {
	t.Helper()
	sol, _ := runSession(t, cfg, nWorkers, 0)
	return sol.Utility
}

// TestDistFaultWorkerKilledMidRun is the headline chaos scenario: three
// workers, one of which is armed to crash (connection drop) the moment
// its task starts. The coordinator must detect the death, reassign the
// orphaned task to a survivor (attempt > 1, visible in the obs
// counters), and still return a feasible solution within the
// Theorem-2-style tolerance of the fault-free run.
func TestDistFaultWorkerKilledMidRun(t *testing.T) {
	in := distInstance(21, 20)
	cfg := CoordinatorConfig{
		Instance:      in,
		RunTimeout:    10 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1200,
		StableReports: 1 << 30, // let every task run to completion
		Seed:          21,
	}
	clean := cleanRunUtility(t, cfg, 3)

	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")
	wObs := obs.NewDistObserver(reg, "worker")

	cfg.Workers = 3
	cfg.Obs = coObs
	co, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := Worker{ID: fmt.Sprintf("w%d", g), Obs: wObs}
			if g == 0 {
				// Deterministic kill: the first task this worker starts
				// drops the connection, exactly once.
				w.FI = mustInjector(t, 21, faultinject.Rule{
					Point: FPWorkerTask, Times: 1, Action: faultinject.ActDrop,
				})
			}
			_, err := w.Run(co.Addr())
			if g == 0 && err == nil {
				t.Error("killed worker reported no error")
			}
			if g != 0 && err != nil {
				t.Errorf("survivor %d: %v", g, err)
			}
		}()
	}
	sol, inst, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution after mid-run worker death")
	}
	if sol.Utility < 0.9*clean {
		t.Fatalf("chaos utility %.1f below tolerance of fault-free %.1f", sol.Utility, clean)
	}
	if got := coObs.TasksReassigned.Value(); got < 1 {
		t.Fatalf("tasks reassigned = %d, want >= 1", got)
	}
	if got := wObs.FaultsInjected.Value(); got < 1 {
		t.Fatalf("faults injected = %d, want >= 1", got)
	}
	if coObs.TasksAbandoned.Value() != 0 {
		t.Fatalf("tasks abandoned = %d, want 0", coObs.TasksAbandoned.Value())
	}
	// The reassignment must be visible in the trace with attempt > 1.
	events, _ := reg.Tracer().Snapshot()
	seen := false
	for _, ev := range events {
		if ev.Type == obs.EvDistRetry && ev.Detail == "reassign" && ev.Value > 1 {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("no reassign trace event with attempt > 1")
	}
}

// TestDistFaultWorkerReconnects arms the single worker to drop its
// connection mid-task; with MaxAttempts > 1 it must reconnect with
// backoff, be admitted by the coordinator's late-accept loop, pick the
// orphaned task back up, and finish the run.
func TestDistFaultWorkerReconnects(t *testing.T) {
	in := distInstance(22, 16)
	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")
	wObs := obs.NewDistObserver(reg, "worker")

	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       1,
		RunTimeout:    10 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1200,
		StableReports: 1 << 30,
		Seed:          22,
		Obs:           coObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	done := make(chan error, 1)
	go func() {
		w := Worker{
			ID:          "w0",
			MaxAttempts: 3,
			BackoffBase: 20 * time.Millisecond,
			BackoffCap:  200 * time.Millisecond,
			Obs:         wObs,
			// Hit 1 is the hello; hit 2 (the first progress report)
			// drops the connection, once.
			FI: mustInjector(t, 22, faultinject.Rule{
				Point: FPWorkerSend, After: 1, Times: 1, Action: faultinject.ActDrop,
			}),
		}
		_, err := w.Run(co.Addr())
		done <- err
	}()
	sol, inst, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("worker never recovered: %v", werr)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution after reconnect")
	}
	if got := wObs.Reconnects.Value(); got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
	if got := coObs.TasksReassigned.Value(); got < 1 {
		t.Fatalf("tasks reassigned = %d, want >= 1", got)
	}
}

// TestDistFaultAssignFailureRedispatched arms the coordinator's assign
// fault point: the first dispatch fails, orphaning the task before any
// worker ran it. The worker (whose connection the coordinator tears
// down) reconnects and the task lands on the fresh connection.
func TestDistFaultAssignFailureRedispatched(t *testing.T) {
	in := distInstance(23, 16)
	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")

	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       1,
		RunTimeout:    10 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1000,
		StableReports: 1 << 30,
		Seed:          23,
		Obs:           coObs,
		FI: mustInjector(t, 23, faultinject.Rule{
			Point: FPCoordAssign, Times: 1, Action: faultinject.ActError,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	done := make(chan error, 1)
	go func() {
		w := Worker{
			ID:          "w0",
			MaxAttempts: 3,
			BackoffBase: 20 * time.Millisecond,
			BackoffCap:  200 * time.Millisecond,
		}
		_, err := w.Run(co.Addr())
		done <- err
	}()
	sol, inst, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution after assign failure")
	}
	if got := coObs.FaultsInjected.Value(); got < 1 {
		t.Fatal("assign fault never fired")
	}
	if got := coObs.TasksReassigned.Value(); got < 1 {
		t.Fatalf("tasks reassigned = %d, want >= 1", got)
	}
}

// TestDistFaultAllWorkersLostFallsBackLocal kills the only worker with
// no reconnect budget; once every attempt is exhausted the coordinator
// must degrade to the in-process solve instead of failing the epoch.
func TestDistFaultAllWorkersLostFallsBackLocal(t *testing.T) {
	in := distInstance(24, 16)
	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")

	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:        in,
		Workers:         1,
		RunTimeout:      10 * time.Second,
		ReportEvery:     50,
		MaxIterations:   800,
		StableReports:   1 << 30,
		MaxTaskAttempts: 2,
		Seed:            24,
		Obs:             coObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	done := make(chan error, 1)
	go func() {
		// Every task start drops the connection; with MaxAttempts 2 the
		// worker reconnects once, crashes again, and gives up.
		w := Worker{
			ID:          "w0",
			MaxAttempts: 2,
			BackoffBase: 20 * time.Millisecond,
			BackoffCap:  100 * time.Millisecond,
			FI: mustInjector(t, 24, faultinject.Rule{
				Point: FPWorkerTask, Action: faultinject.ActDrop,
			}),
		}
		_, err := w.Run(co.Addr())
		done <- err
	}()
	sol, inst, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr == nil {
		t.Fatal("crashing worker reported no error")
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("local fallback produced an infeasible solution")
	}
	if got := coObs.LocalFallbacks.Value(); got != 1 {
		t.Fatalf("local fallbacks = %d, want 1", got)
	}
	if got := coObs.TasksAbandoned.Value(); got < 1 {
		t.Fatalf("tasks abandoned = %d, want >= 1", got)
	}
}

// TestDistFaultTheorem2LeaveAndKill overlays the paper's dynamic-failure
// scenario on the chaos harness: a shard leaves mid-run (the Theorem 2
// perturbation) while a worker dies. The surviving session must trim the
// departed shard and land within tolerance of a fault-free solve of the
// trimmed instance, and the stated perturbation bound must hold.
func TestDistFaultTheorem2LeaveAndKill(t *testing.T) {
	in := distInstance(25, 18)
	gone := 3

	// Fault-free baseline on the post-failure (trimmed) instance.
	trimmed := in.Clone()
	if err := trimmed.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(trimmed, core.SEConfig{Seed: 25, Beta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyEvent(core.Event{Kind: core.EventLeave, Index: gone}); err != nil {
		t.Fatal(err)
	}
	eng.StepN(4000)
	baseSol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       2,
		RunTimeout:    10 * time.Second,
		ReportEvery:   25,
		MaxIterations: 60000,
		StableReports: 1 << 30,
		Seed:          25,
		Obs:           coObs,
		Events: []TimedEvent{
			{After: 40 * time.Millisecond, Event: core.Event{Kind: core.EventLeave, Index: gone}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := Worker{ID: fmt.Sprintf("w%d", g), Throttle: time.Millisecond}
			if g == 0 {
				// Dies on its 5th send (well into the run), no reconnect.
				w.FI = mustInjector(t, 25, faultinject.Rule{
					Point: FPWorkerSend, After: 4, Times: 1, Action: faultinject.ActDrop,
				})
			}
			_, err := w.Run(co.Addr())
			if g != 0 && err != nil {
				t.Errorf("survivor: %v", err)
			}
		}()
	}
	sol, inst, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[gone] {
		t.Fatal("departed shard still selected after failure")
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible post-failure solution")
	}
	if sol.Utility < 0.9*baseSol.Utility {
		t.Fatalf("post-failure utility %.1f below tolerance of trimmed baseline %.1f",
			sol.Utility, baseSol.Utility)
	}
	// Theorem 2: the stated perturbation after a committee failure is
	// bounded — total variation distance at most 1/2.
	pb := core.PerturbationBound(sol.Utility)
	if pb.TVDistance > 0.5 {
		t.Fatalf("perturbation TV distance %v exceeds Theorem 2 bound", pb.TVDistance)
	}
}

// TestCodecRecvDeadlineIsNetTimeout is the regression for the
// worker-death detector's foundation: an expired read deadline must
// surface as a net.Error whose Timeout() reports true — not a bare EOF —
// so the coordinator can tell a silent peer from a closed connection.
func TestCodecRecvDeadlineIsNetTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn // held open and silent
		}
	}()
	c, err := dialRaw(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	defer func() {
		if conn := <-accepted; conn != nil {
			conn.Close()
		}
	}()

	_, err = c.recv(100 * time.Millisecond)
	if err == nil {
		t.Fatal("recv on a silent connection returned without error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline expiry surfaced as %T %v, want net.Error with Timeout()", err, err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("deadline expiry must not be an EOF")
	}
}

// TestCoordinatorHeartbeatDetectsSilentWorker: a worker that says hello
// and then goes silent must be declared dead at the heartbeat deadline
// (mapped to worker-death, not a run abort), after which the coordinator
// degrades to the local solve.
func TestCoordinatorHeartbeatDetectsSilentWorker(t *testing.T) {
	in := distInstance(26, 12)
	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")

	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:         in,
		Workers:          1,
		RunTimeout:       8 * time.Second,
		HeartbeatTimeout: 300 * time.Millisecond,
		MaxTaskAttempts:  1,
		MaxIterations:    800,
		Seed:             26,
		Obs:              coObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	stop := make(chan struct{})
	go func() {
		c, err := dialRaw(co.Addr())
		if err != nil {
			t.Errorf("silent worker dial: %v", err)
			return
		}
		defer c.conn.Close()
		_ = c.send(MsgHello, Hello{WorkerID: "mute"})
		<-stop // never report progress
	}()
	defer close(stop)

	start := time.Now()
	sol, inst, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("silent worker stalled the run for %v", elapsed)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible fallback solution")
	}
	if got := coObs.TasksAbandoned.Value(); got != 1 {
		t.Fatalf("tasks abandoned = %d, want 1", got)
	}
	if got := coObs.LocalFallbacks.Value(); got != 1 {
		t.Fatalf("local fallbacks = %d, want 1", got)
	}
}

// TestCoordinatorPartialConnect: with fewer workers than configured at
// the accept deadline, the session proceeds with the connected subset.
func TestCoordinatorPartialConnect(t *testing.T) {
	in := distInstance(27, 16)
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       3, // only one will show up
		AcceptTimeout: 400 * time.Millisecond,
		RunTimeout:    8 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1000,
		StableReports: 1 << 30,
		Seed:          27,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	done := make(chan error, 1)
	go func() {
		_, err := (Worker{ID: "solo"}).Run(co.Addr())
		done <- err
	}()
	sol, inst, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("solo worker: %v", werr)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution from partial house")
	}
	if sol.Utility <= 0 {
		t.Fatalf("utility %v", sol.Utility)
	}
}

// TestCoordinatorZeroWorkersLocalFallback: nobody connects at all; the
// coordinator must return the in-process solution instead of an error.
func TestCoordinatorZeroWorkersLocalFallback(t *testing.T) {
	in := distInstance(28, 12)
	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       2,
		AcceptTimeout: 200 * time.Millisecond,
		MaxIterations: 1000,
		Seed:          28,
		Obs:           coObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sol, inst, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible fallback solution")
	}
	if got := coObs.LocalFallbacks.Value(); got != 1 {
		t.Fatalf("local fallbacks = %d, want 1", got)
	}
}
