package dist

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/randx"
)

func distInstance(seed int64, n int) core.Instance {
	rng := randx.New(seed)
	in := core.Instance{
		Sizes:     make([]int, n),
		Latencies: make([]float64, n),
		Alpha:     1.5,
		Nmin:      n / 4,
	}
	total := 0
	for i := 0; i < n; i++ {
		in.Sizes[i] = 500 + rng.Intn(2501)
		in.Latencies[i] = rng.Uniform(600, 1300)
		total += in.Sizes[i]
	}
	in.Capacity = total / 2
	return in
}

// runSession starts a coordinator and nWorkers workers over loopback and
// returns the coordinated solution.
func runSession(t *testing.T, cfg CoordinatorConfig, nWorkers int, throttle time.Duration) (core.Solution, core.Instance) {
	t.Helper()
	cfg.Workers = nWorkers
	co, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	var wg sync.WaitGroup
	for g := 0; g < nWorkers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := Worker{ID: fmt.Sprintf("w%d", g), Throttle: throttle}
			if _, err := w.Run(co.Addr()); err != nil {
				t.Errorf("worker %d: %v", g, err)
			}
		}()
	}
	sol, inst, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return sol, inst
}

func TestDistributedSessionBasic(t *testing.T) {
	in := distInstance(1, 20)
	sol, inst := runSession(t, CoordinatorConfig{
		Instance:      in,
		RunTimeout:    5 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1500,
		StableReports: 10,
		Seed:          1,
	}, 1, 0)
	if !inst.Feasible(sol.Selected) {
		t.Fatalf("infeasible distributed solution: count=%d load=%d", sol.Count, sol.Load)
	}
	if sol.Utility <= 0 {
		t.Fatalf("utility %v", sol.Utility)
	}
}

func TestDistributedSessionMultipleWorkers(t *testing.T) {
	in := distInstance(2, 24)
	sol, inst := runSession(t, CoordinatorConfig{
		Instance:      in,
		RunTimeout:    8 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1200,
		StableReports: 15,
		Seed:          2,
	}, 3, 0)
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution with 3 workers")
	}
}

func TestDistributedMatchesLocalQuality(t *testing.T) {
	in := distInstance(3, 20)
	local := in.Clone()
	if err := local.Validate(); err != nil {
		t.Fatal(err)
	}
	localSol, _, err := core.NewSE(core.SEConfig{Seed: 3, MaxIters: 1500}).Solve(local)
	if err != nil {
		t.Fatal(err)
	}
	distSol, _ := runSession(t, CoordinatorConfig{
		Instance:      in,
		RunTimeout:    8 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1500,
		StableReports: 15,
		Seed:          3,
	}, 2, 0)
	// The distributed session should land in the same quality band: at
	// least 90% of the single-machine utility.
	if distSol.Utility < 0.9*localSol.Utility {
		t.Fatalf("distributed %.1f far below local %.1f", distSol.Utility, localSol.Utility)
	}
}

func TestDistributedEvents(t *testing.T) {
	in := distInstance(4, 16)
	joinSize := 2500
	events := []TimedEvent{
		{After: 50 * time.Millisecond, Event: core.Event{
			Kind: core.EventJoin, Index: -1, Size: joinSize, Latency: 650,
		}},
		{After: 120 * time.Millisecond, Event: core.Event{
			Kind: core.EventLeave, Index: 2,
		}},
	}
	sol, inst := runSession(t, CoordinatorConfig{
		Instance:      in,
		RunTimeout:    8 * time.Second,
		ReportEvery:   25,
		MaxIterations: 60000,
		StableReports: 1 << 30, // force the events to land before stop
		Seed:          4,
		Events:        events,
	}, 1, time.Millisecond)
	if inst.NumShards() != 17 {
		t.Fatalf("instance grew to %d shards, want 17", inst.NumShards())
	}
	if len(sol.Selected) != 17 {
		t.Fatalf("selection length %d", len(sol.Selected))
	}
	if sol.Selected[2] {
		t.Fatal("departed shard still selected")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{Workers: 1}); err == nil {
		t.Fatal("empty instance accepted")
	}
}

func TestCoordinatorNoWorkers(t *testing.T) {
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:             distInstance(5, 8),
		Workers:              1,
		AcceptTimeout:        200 * time.Millisecond,
		DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if _, _, err := co.Run(); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerNeedsID(t *testing.T) {
	if _, err := (Worker{}).Run("127.0.0.1:1"); err == nil {
		t.Fatal("empty worker ID accepted")
	}
}

func TestWorkerDialFailure(t *testing.T) {
	w := Worker{ID: "w", DialTimeout: 200 * time.Millisecond}
	if _, err := w.Run("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestWorkerDisconnectTolerated(t *testing.T) {
	// Two workers; one dies immediately after hello. The session must
	// still finish with the surviving worker's answer.
	in := distInstance(6, 16)
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       2,
		RunTimeout:    6 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1200,
		StableReports: 10,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the deserter: says hello, then hangs up
		defer wg.Done()
		c, err := dialRaw(co.Addr())
		if err != nil {
			t.Errorf("deserter dial: %v", err)
			return
		}
		_ = c.send(MsgHello, Hello{WorkerID: "deserter"})
		time.Sleep(100 * time.Millisecond)
		_ = c.conn.Close()
	}()
	go func() {
		defer wg.Done()
		if _, err := (Worker{ID: "survivor"}).Run(co.Addr()); err != nil {
			t.Errorf("survivor: %v", err)
		}
	}()
	sol, inst, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution after worker desertion")
	}
}

func TestEventMsgRoundTrip(t *testing.T) {
	for _, ev := range []core.Event{
		{Kind: core.EventJoin, Index: -1, Size: 10, Latency: 5},
		{Kind: core.EventLeave, Index: 3},
	} {
		got, err := FromEvent(ev).ToEvent()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != ev.Kind || got.Index != ev.Index || got.Size != ev.Size || got.Latency != ev.Latency {
			t.Fatalf("round trip %+v -> %+v", ev, got)
		}
	}
	if _, err := (EventMsg{Kind: "explode"}).ToEvent(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTaskInstanceCopies(t *testing.T) {
	task := Task{Sizes: []int{1, 2}, Latencies: []float64{3, 4}, Alpha: 1, Capacity: 10}
	in := task.Instance()
	in.Sizes[0] = 99
	if task.Sizes[0] == 99 {
		t.Fatal("task and instance share backing arrays")
	}
}

func dialRaw(addr string) (*codec, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	return newCodec(conn), nil
}

func TestWorkerRejectsNonTaskFirstMessage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := newCodec(conn)
		_, _ = c.recv(2 * time.Second)        // hello
		_ = c.send(MsgBest, Best{Utility: 1}) // wrong first message
		time.Sleep(200 * time.Millisecond)
		_ = conn.Close()
	}()
	if _, err := (Worker{ID: "w"}).Run(ln.Addr().String()); !errors.Is(err, ErrBadTask) {
		t.Fatalf("err = %v, want ErrBadTask", err)
	}
}

func TestWorkerReportsInvalidInstance(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan Result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := newCodec(conn)
		_, _ = c.recv(2 * time.Second) // hello
		_ = c.send(MsgTask, Task{})    // empty instance: invalid
		env, err := c.recv(2 * time.Second)
		if err == nil && env.Type == MsgResult {
			if r, err := decode[Result](env); err == nil {
				got <- r
			}
		}
		close(got)
	}()
	if _, err := (Worker{ID: "w"}).Run(ln.Addr().String()); err == nil {
		t.Fatal("invalid task accepted")
	}
	if r, ok := <-got; ok && r.Err == "" {
		t.Fatal("worker result should carry the validation error")
	}
}

func TestCoordinatorStableReportsEarlyStop(t *testing.T) {
	// Tiny StableReports: the coordinator should stop the run long before
	// workers exhaust their (huge) iteration budget.
	in := distInstance(9, 16)
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       1,
		RunTimeout:    20 * time.Second,
		ReportEvery:   20,
		MaxIterations: 1 << 20,
		StableReports: 3,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	done := make(chan Result, 1)
	go func() {
		r, _ := (Worker{ID: "w", Throttle: time.Millisecond}).Run(co.Addr())
		done <- r
	}()
	start := time.Now()
	sol, _, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.Iterations >= 1<<20 {
		t.Fatal("worker ran to its full budget despite stop signal")
	}
	if time.Since(start) > 15*time.Second {
		t.Fatal("early stop did not trigger")
	}
	if sol.Count == 0 {
		t.Fatal("empty solution")
	}
}

func TestIsDialError(t *testing.T) {
	// A port nothing listens on: grab one, close it, dial it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	w := Worker{ID: "probe", DialTimeout: time.Second}
	_, err = w.Run(addr)
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if !IsDialError(err) {
		t.Fatalf("IsDialError(%v) = false, want true", err)
	}
	if IsDialError(nil) {
		t.Fatal("IsDialError(nil) = true")
	}
	if IsDialError(errors.New("dist: connection closed before task")) {
		t.Fatal("non-dial error classified as dial failure")
	}
}
