package dist

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mvcom/internal/obs"
)

// TestTaskErrorCarriesTaskRef checks that a worker-side failure is
// wrapped with the coordinator-assigned task ID and attempt count, both
// in the returned error and in the Result it reports back.
func TestTaskErrorCarriesTaskRef(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan Result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := newCodec(conn)
		_, _ = c.recv(2 * time.Second) // hello
		// Empty instance: the worker's engine construction must fail.
		_ = c.send(MsgTask, Task{TaskID: "task-7", Attempt: 2})
		env, err := c.recv(2 * time.Second)
		if err == nil && env.Type == MsgResult {
			if r, err := decode[Result](env); err == nil {
				got <- r
			}
		}
		close(got)
	}()

	_, err = (Worker{ID: "w9"}).Run(ln.Addr().String())
	if err == nil {
		t.Fatal("invalid task accepted")
	}
	for _, want := range []string{"task task-7", "attempt 2", "worker w9"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	r, ok := <-got
	if !ok {
		t.Fatal("no result reported")
	}
	if r.TaskID != "task-7" || r.Attempt != 2 {
		t.Fatalf("result correlation lost: taskID=%q attempt=%d", r.TaskID, r.Attempt)
	}
	if !strings.Contains(r.Err, "task task-7 attempt 2") {
		t.Fatalf("result error %q missing task ref", r.Err)
	}
}

func TestTaskRefDefaults(t *testing.T) {
	// Pre-ID coordinators send neither field; the ref must not render a
	// zero attempt or an empty ID.
	if got := taskRef(Task{}); got != "task ? attempt 1" {
		t.Fatalf("taskRef zero task = %q", got)
	}
	if got := taskRef(Task{TaskID: "task-3", Attempt: 4}); got != "task task-3 attempt 4" {
		t.Fatalf("taskRef = %q", got)
	}
}

// TestSessionPopulatesObservers runs a full loopback session with
// observers attached on both roles and checks the protocol telemetry:
// per-type message counters, task latency, the best-utility gauge, and
// the connected-workers gauge.
func TestSessionPopulatesObservers(t *testing.T) {
	reg := obs.NewRegistry()
	coObs := obs.NewDistObserver(reg, "coordinator")
	wObs := obs.NewDistObserver(reg, "worker")

	in := distInstance(11, 16)
	co, err := NewCoordinator("127.0.0.1:0", CoordinatorConfig{
		Instance:      in,
		Workers:       2,
		RunTimeout:    6 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1200,
		StableReports: 10,
		Seed:          11,
		Obs:           coObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := Worker{ID: fmt.Sprintf("w%d", g), Obs: wObs, SEObs: obs.NewSEObserver(reg)}
			if _, err := w.Run(co.Addr()); err != nil {
				t.Errorf("worker %d: %v", g, err)
			}
		}()
	}
	sol, _, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Count == 0 {
		t.Fatal("empty solution")
	}

	if got := coObs.WorkersConnected.Value(); got != 2 {
		t.Fatalf("workers connected gauge = %v, want 2", got)
	}
	if coObs.TaskLatency.Count() != 2 {
		t.Fatalf("task latency observations = %d, want 2", coObs.TaskLatency.Count())
	}
	if coObs.TaskErrors.Value() != 0 {
		t.Fatalf("task errors = %d, want 0", coObs.TaskErrors.Value())
	}
	if coObs.BestUtility.Value() <= 0 {
		t.Fatalf("best utility gauge = %v", coObs.BestUtility.Value())
	}
	// The workers thread their winning cardinality through progress
	// reports; the coordinator exports the best one.
	if n := coObs.BestThreadN.Value(); n < 1 || n > float64(in.NumShards()) {
		t.Fatalf("best thread-n gauge = %v, want within 1..%d", n, in.NumShards())
	}

	// Both directions of the wire must be counted for both roles: the
	// coordinator sent 2 tasks, the workers each sent a hello and a
	// result.
	for name, want := range map[string]int64{
		`mvcom_dist_messages_total{role="coordinator",dir="tx",type="task"}`:  2,
		`mvcom_dist_messages_total{role="coordinator",dir="rx",type="hello"}`: 2,
		`mvcom_dist_messages_total{role="worker",dir="tx",type="hello"}`:      2,
		`mvcom_dist_messages_total{role="worker",dir="rx",type="task"}`:       2,
		`mvcom_dist_messages_total{role="worker",dir="tx",type="result"}`:     2,
	} {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	// The workers' SE kernels flushed their counters into the shared
	// registry.
	if reg.Counter("mvcom_se_rounds_total", "").Value() == 0 {
		t.Fatal("SE rounds counter never flushed during the session")
	}
}
