// Package txgen synthesizes the blockchain-sharding transaction dataset
// used by the MVCom evaluation.
//
// The paper samples 1,378 blocks from the first 1.5 million Bitcoin
// transactions of January 2016; each record carries blockID, bhash (block
// hash), btime (creation timestamp), and txs (number of transactions).
// That trace is not redistributable, so this package generates a synthetic
// trace with the same schema and the same first- and second-order
// statistics: per-block transaction counts are lognormal with mean ≈ 1,850
// (the Jan-2016 Bitcoin average) clamped to [200, 12,000], and inter-block
// times are exponential with a 600-second mean. The scheduler only consumes
// (shard size, latency) pairs, so matching these statistics preserves the
// behaviour the paper's experiments exercise.
//
// The package also groups blocks into per-committee shards the way the
// evaluation does: "for each epoch, those blocks are divided into a
// different number of groups to simulate the transaction shards generated
// by member committees; in each shard, the total number of TXs is
// accumulated together from all blocks included".
package txgen

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/randx"
)

// Default trace parameters: the Jan-2016 Bitcoin snapshot statistics the
// paper's dataset is sampled from.
const (
	DefaultBlocks       = 1378   // blocks sampled by the paper
	DefaultMeanTxs      = 1850.0 // mean TXs per block, Jan 2016
	DefaultSigma        = 0.55   // lognormal spread of TXs per block
	DefaultMinTxs       = 200
	DefaultMaxTxs       = 12000
	DefaultBlockSpacing = 600 * time.Second // Bitcoin target spacing
)

// ErrNoBlocks is returned when an operation needs a non-empty trace.
var ErrNoBlocks = errors.New("txgen: trace has no blocks")

// Block is one record of the trace, mirroring the paper's dataset schema.
type Block struct {
	BlockID int           // blockID
	BHash   chain.Hash    // bhash
	BTime   time.Duration // btime, virtual time since trace start
	Txs     int           // txs, number of transactions in the block
}

// Config controls trace synthesis.
type Config struct {
	Blocks       int           // number of blocks; DefaultBlocks if <= 0
	MeanTxs      float64       // mean TXs per block; DefaultMeanTxs if <= 0
	Sigma        float64       // lognormal spread; DefaultSigma if <= 0
	MinTxs       int           // lower clamp; DefaultMinTxs if <= 0
	MaxTxs       int           // upper clamp; DefaultMaxTxs if <= 0
	BlockSpacing time.Duration // mean inter-block time; DefaultBlockSpacing if <= 0
}

func (c Config) withDefaults() Config {
	if c.Blocks <= 0 {
		c.Blocks = DefaultBlocks
	}
	if c.MeanTxs <= 0 {
		c.MeanTxs = DefaultMeanTxs
	}
	if c.Sigma <= 0 {
		c.Sigma = DefaultSigma
	}
	if c.MinTxs <= 0 {
		c.MinTxs = DefaultMinTxs
	}
	if c.MaxTxs <= 0 {
		c.MaxTxs = DefaultMaxTxs
	}
	if c.BlockSpacing <= 0 {
		c.BlockSpacing = DefaultBlockSpacing
	}
	return c
}

// Trace is a generated sequence of blocks.
type Trace struct {
	Blocks []Block
}

// Generate synthesizes a trace from cfg using the given RNG.
func Generate(rng *randx.RNG, cfg Config) *Trace {
	cfg = cfg.withDefaults()
	blocks := make([]Block, cfg.Blocks)
	var t time.Duration
	for i := range blocks {
		t += sDuration(rng.Exponential(cfg.BlockSpacing.Seconds()))
		txs := int(rng.LogNormalMeanSpread(cfg.MeanTxs, cfg.Sigma))
		if txs < cfg.MinTxs {
			txs = cfg.MinTxs
		}
		if txs > cfg.MaxTxs {
			txs = cfg.MaxTxs
		}
		blocks[i] = Block{
			BlockID: i,
			BHash:   blockHash(i, t, txs),
			BTime:   t,
			Txs:     txs,
		}
	}
	return &Trace{Blocks: blocks}
}

// GenerateDefault synthesizes the paper-sized trace (1,378 blocks).
func GenerateDefault(seed int64) *Trace {
	return Generate(randx.New(seed), Config{})
}

// TotalTxs returns the total number of transactions across all blocks.
func (tr *Trace) TotalTxs() int {
	total := 0
	for _, b := range tr.Blocks {
		total += b.Txs
	}
	return total
}

// MeanTxs returns the mean TXs per block, or 0 for an empty trace.
func (tr *Trace) MeanTxs() float64 {
	if len(tr.Blocks) == 0 {
		return 0
	}
	return float64(tr.TotalTxs()) / float64(len(tr.Blocks))
}

// Shard is the per-committee workload derived from the trace: the set of
// blocks a member committee's shard accumulates, with the total TX count
// s_i the scheduler consumes.
type Shard struct {
	Committee int
	BlockIDs  []int
	TxTotal   int
}

// IntoShards partitions the trace's blocks into n shards round-robin after
// a seeded shuffle, accumulating each shard's TX total — the paper's
// per-epoch grouping of blocks into member-committee shards. Every block
// lands in exactly one shard. It returns an error when n < 1 or the trace
// is empty.
func (tr *Trace) IntoShards(rng *randx.RNG, n int) ([]Shard, error) {
	if n < 1 {
		return nil, fmt.Errorf("txgen: %d shards requested, need >= 1", n)
	}
	if len(tr.Blocks) == 0 {
		return nil, ErrNoBlocks
	}
	order := rng.Perm(len(tr.Blocks))
	shards := make([]Shard, n)
	for i := range shards {
		shards[i].Committee = i
	}
	for pos, bi := range order {
		s := &shards[pos%n]
		s.BlockIDs = append(s.BlockIDs, tr.Blocks[bi].BlockID)
		s.TxTotal += tr.Blocks[bi].Txs
	}
	return shards, nil
}

// ShardSizes extracts the s_i vector from a shard set.
func ShardSizes(shards []Shard) []int {
	out := make([]int, len(shards))
	for i, s := range shards {
		out[i] = s.TxTotal
	}
	return out
}

// Transactions materializes concrete chain.Transactions for a shard so the
// epoch pipeline can build verifiable shard blocks. IDs are made globally
// unique by offsetting with the committee index; creation times spread over
// the epoch. Account activity follows a Zipf law (a few hot accounts
// dominate, as in the real Bitcoin graph).
func (tr *Trace) Transactions(s Shard, rng *randx.RNG) []chain.Transaction {
	txs := make([]chain.Transaction, 0, s.TxTotal)
	base := uint64(s.Committee) << 40
	var id uint64
	zipf := rng.Zipf(1.3, 1_000_000)
	account := func() uint64 {
		if zipf == nil {
			return rng.Uint64() % 1_000_000
		}
		return zipf.Uint64()
	}
	for _, bid := range s.BlockIDs {
		if bid < 0 || bid >= len(tr.Blocks) {
			continue
		}
		b := tr.Blocks[bid]
		for k := 0; k < b.Txs; k++ {
			txs = append(txs, chain.Transaction{
				ID:      base + id,
				From:    account(),
				To:      account(),
				Amount:  uint64(rng.Intn(100_000)) + 1,
				Created: b.BTime,
			})
			id++
		}
	}
	return txs
}

// WriteCSV serializes the trace in the dataset's four-column schema:
// blockID,bhash,btime_seconds,txs.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("blockID,bhash,btime,txs\n"); err != nil {
		return err
	}
	for _, b := range tr.Blocks {
		line := fmt.Sprintf("%d,%s,%.3f,%d\n", b.BlockID, b.BHash, b.BTime.Seconds(), b.Txs)
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	tr := &Trace{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "blockID") {
				continue // header
			}
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("txgen: malformed line %q", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("txgen: blockID %q: %w", fields[0], err)
		}
		var h chain.Hash
		raw, err := hex.DecodeString(fields[1])
		if err != nil || len(raw) != len(h) {
			return nil, fmt.Errorf("txgen: bhash %q invalid", fields[1])
		}
		copy(h[:], raw)
		secs, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("txgen: btime %q: %w", fields[2], err)
		}
		txs, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("txgen: txs %q: %w", fields[3], err)
		}
		tr.Blocks = append(tr.Blocks, Block{
			BlockID: id,
			BHash:   h,
			BTime:   sDuration(secs),
			Txs:     txs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func blockHash(id int, t time.Duration, txs int) chain.Hash {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(id))
	binary.BigEndian.PutUint64(buf[8:16], uint64(t))
	binary.BigEndian.PutUint64(buf[16:24], uint64(txs))
	return sha256.Sum256(buf[:])
}

func sDuration(secs float64) time.Duration {
	return time.Duration(secs * float64(time.Second))
}
