package txgen

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mvcom/internal/randx"
	"mvcom/internal/stats"
)

func TestGenerateDefaultShape(t *testing.T) {
	tr := GenerateDefault(1)
	if len(tr.Blocks) != DefaultBlocks {
		t.Fatalf("blocks %d, want %d", len(tr.Blocks), DefaultBlocks)
	}
	for i, b := range tr.Blocks {
		if b.BlockID != i {
			t.Fatalf("blockID %d at index %d", b.BlockID, i)
		}
		if b.Txs < DefaultMinTxs || b.Txs > DefaultMaxTxs {
			t.Fatalf("txs %d out of clamp range", b.Txs)
		}
		if b.BHash.IsZero() {
			t.Fatalf("zero hash at block %d", i)
		}
		if i > 0 && b.BTime <= tr.Blocks[i-1].BTime {
			t.Fatalf("non-increasing btime at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateDefault(99)
	b := GenerateDefault(99)
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("same seed diverged at block %d", i)
		}
	}
	c := GenerateDefault(100)
	same := 0
	for i := range a.Blocks {
		if a.Blocks[i].Txs == c.Blocks[i].Txs {
			same++
		}
	}
	if same == len(a.Blocks) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateMatchesTargetStatistics(t *testing.T) {
	tr := Generate(randx.New(7), Config{Blocks: 20000})
	mean := tr.MeanTxs()
	// Clamping skews the lognormal mean slightly; accept ±6%.
	if math.Abs(mean-DefaultMeanTxs) > 0.06*DefaultMeanTxs {
		t.Fatalf("mean TXs per block %.1f, want ~%.0f", mean, DefaultMeanTxs)
	}
	// Inter-block spacing ~Exp(600 s).
	var gaps []float64
	for i := 1; i < len(tr.Blocks); i++ {
		gaps = append(gaps, (tr.Blocks[i].BTime - tr.Blocks[i-1].BTime).Seconds())
	}
	s, err := stats.Summarize(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-600) > 15 {
		t.Fatalf("mean block spacing %.1f s, want ~600", s.Mean)
	}
	// Exponential: stddev ≈ mean.
	if math.Abs(s.Stddev-600) > 30 {
		t.Fatalf("spacing stddev %.1f s, want ~600", s.Stddev)
	}
}

func TestGenerateCustomConfig(t *testing.T) {
	tr := Generate(randx.New(3), Config{
		Blocks:       50,
		MeanTxs:      100,
		Sigma:        0.1,
		MinTxs:       10,
		MaxTxs:       500,
		BlockSpacing: 10 * time.Second,
	})
	if len(tr.Blocks) != 50 {
		t.Fatalf("blocks %d", len(tr.Blocks))
	}
	for _, b := range tr.Blocks {
		if b.Txs < 10 || b.Txs > 500 {
			t.Fatalf("txs %d out of configured range", b.Txs)
		}
	}
}

func TestIntoShardsPartition(t *testing.T) {
	tr := GenerateDefault(5)
	shards, err := tr.IntoShards(randx.New(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 50 {
		t.Fatalf("shards %d", len(shards))
	}
	// Every block appears exactly once.
	seen := make(map[int]bool, len(tr.Blocks))
	totalTxs := 0
	for _, s := range shards {
		sum := 0
		for _, bid := range s.BlockIDs {
			if seen[bid] {
				t.Fatalf("block %d assigned twice", bid)
			}
			seen[bid] = true
			sum += tr.Blocks[bid].Txs
		}
		if sum != s.TxTotal {
			t.Fatalf("shard %d TxTotal %d, blocks sum %d", s.Committee, s.TxTotal, sum)
		}
		totalTxs += s.TxTotal
	}
	if len(seen) != len(tr.Blocks) {
		t.Fatalf("only %d of %d blocks assigned", len(seen), len(tr.Blocks))
	}
	if totalTxs != tr.TotalTxs() {
		t.Fatalf("shard TXs %d != trace TXs %d", totalTxs, tr.TotalTxs())
	}
}

func TestIntoShardsBalanced(t *testing.T) {
	// Round-robin assignment keeps shard block counts within one of each
	// other.
	tr := GenerateDefault(6)
	shards, err := tr.IntoShards(randx.New(2), 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(shards))
	for i, s := range shards {
		counts[i] = len(s.BlockIDs)
	}
	sort.Ints(counts)
	if counts[len(counts)-1]-counts[0] > 1 {
		t.Fatalf("unbalanced shard block counts %v", counts)
	}
}

func TestIntoShardsErrors(t *testing.T) {
	tr := GenerateDefault(1)
	if _, err := tr.IntoShards(randx.New(1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	empty := &Trace{}
	if _, err := empty.IntoShards(randx.New(1), 3); err != ErrNoBlocks {
		t.Fatalf("empty trace: %v", err)
	}
}

func TestIntoShardsMoreShardsThanBlocks(t *testing.T) {
	tr := Generate(randx.New(1), Config{Blocks: 3})
	shards, err := tr.IntoShards(randx.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, s := range shards {
		if len(s.BlockIDs) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("nonEmpty %d, want 3", nonEmpty)
	}
}

func TestIntoShardsPartitionProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawBlocks uint8) bool {
		n := int(rawN)%20 + 1
		nBlocks := int(rawBlocks)%60 + 1
		tr := Generate(randx.New(seed), Config{Blocks: nBlocks})
		shards, err := tr.IntoShards(randx.New(seed+1), n)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range shards {
			total += s.TxTotal
		}
		return total == tr.TotalTxs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestShardSizes(t *testing.T) {
	got := ShardSizes([]Shard{{TxTotal: 5}, {TxTotal: 9}})
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("sizes %v", got)
	}
}

func TestTransactionsMaterialization(t *testing.T) {
	tr := Generate(randx.New(1), Config{Blocks: 6, MeanTxs: 30, MinTxs: 5, MaxTxs: 100})
	shards, err := tr.IntoShards(randx.New(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	ids := make(map[uint64]bool)
	for _, s := range shards {
		txs := tr.Transactions(s, rng)
		if len(txs) != s.TxTotal {
			t.Fatalf("shard %d: %d txs, want %d", s.Committee, len(txs), s.TxTotal)
		}
		for _, tx := range txs {
			if ids[tx.ID] {
				t.Fatalf("duplicate tx ID %d across shards", tx.ID)
			}
			ids[tx.ID] = true
			if tx.Amount == 0 {
				t.Fatal("zero-amount transaction")
			}
		}
	}
}

func TestTransactionsSkipsBadBlockIDs(t *testing.T) {
	tr := Generate(randx.New(1), Config{Blocks: 2, MeanTxs: 10, MinTxs: 2, MaxTxs: 20})
	s := Shard{Committee: 0, BlockIDs: []int{0, 99, -1}, TxTotal: tr.Blocks[0].Txs}
	txs := tr.Transactions(s, randx.New(2))
	if len(txs) != tr.Blocks[0].Txs {
		t.Fatalf("got %d txs, want %d", len(txs), tr.Blocks[0].Txs)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(randx.New(11), Config{Blocks: 25})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != len(tr.Blocks) {
		t.Fatalf("blocks %d, want %d", len(got.Blocks), len(tr.Blocks))
	}
	for i := range tr.Blocks {
		a, b := tr.Blocks[i], got.Blocks[i]
		if a.BlockID != b.BlockID || a.Txs != b.Txs || a.BHash != b.BHash {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, a, b)
		}
		// btime survives with millisecond precision.
		if math.Abs((a.BTime - b.BTime).Seconds()) > 0.002 {
			t.Fatalf("block %d btime drift %v vs %v", i, a.BTime, b.BTime)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "missing column", give: "1,abc,3\n"},
		{name: "bad id", give: "x,00,1.0,5\n"},
		{name: "bad hash", give: "1,zz,1.0,5\n"},
		{name: "short hash", give: "1,abcd,1.0,5\n"},
		{name: "bad time", give: "1," + strings.Repeat("00", 32) + ",x,5\n"},
		{name: "bad txs", give: "1," + strings.Repeat("00", 32) + ",1.0,x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.give)); err == nil {
				t.Fatalf("malformed input accepted: %q", tt.give)
			}
		})
	}
}

func TestReadCSVSkipsHeaderAndBlankLines(t *testing.T) {
	in := "blockID,bhash,btime,txs\n\n1," + strings.Repeat("00", 32) + ",1.5,10\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) != 1 || tr.Blocks[0].Txs != 10 {
		t.Fatalf("parsed %+v", tr.Blocks)
	}
}

func TestTotalAndMeanTxsEmpty(t *testing.T) {
	empty := &Trace{}
	if empty.TotalTxs() != 0 || empty.MeanTxs() != 0 {
		t.Fatal("empty trace totals should be zero")
	}
}

func TestTransactionsZipfAccounts(t *testing.T) {
	tr := Generate(randx.New(1), Config{Blocks: 20, MeanTxs: 800, MinTxs: 400, MaxTxs: 1500})
	shards, err := tr.IntoShards(randx.New(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	txs := tr.Transactions(shards[0], randx.New(3))
	counts := make(map[uint64]int)
	for _, tx := range txs {
		counts[tx.From]++
	}
	// Zipf skew: the hottest account must appear many times while most
	// accounts appear once.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10 {
		t.Fatalf("no hot account: max frequency %d over %d txs", max, len(txs))
	}
}
