package txgen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	tr := GenerateDefault(1)
	tr.Blocks = tr.Blocks[:8]
	if err := tr.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("blockID,bhash,btime,txs\n")
	f.Add("1,zz,1.0,5\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := got.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(again.Blocks) != len(got.Blocks) {
			t.Fatalf("round trip changed block count: %d vs %d", len(again.Blocks), len(got.Blocks))
		}
	})
}
