package seobs

import (
	"math"
	"math/bits"
)

// The d_TV estimator's methodology (DESIGN.md §5e):
//
// The kernel's solution threads never change cardinality — a swap keeps
// |f_n| = n — so the chain decomposes into per-cardinality components:
// thread f_n samples only n-subsets, and its stationary law is the
// Gibbs target conditioned on cardinality n,
//
//	p*(f | |f| = n) ∝ exp(β_eff·U_f),  load(f) ≤ C.
//
// A raw visit histogram therefore cannot converge to the *global*
// Gibbs target (its cardinality marginal is fixed by the thread layout,
// one sample per thread per round, not by p*). The estimator instead
// measures each component against its conditional target and recombines
// with the target's own cardinality marginal π*(n):
//
//	d̂_TV = Σ_n π*(n) · d_TV(visits_n / mass_n, p*|_n)
//
// which equals d_TV(p̂, p*) for the reweighted visit distribution
// p̂(f) = π*(|f|)·visits_{|f|}(f)/mass_{|f|} — i.e. the empirical
// visit distribution with its cardinality marginal calibrated to the
// target's. visits_n is the *dwell-weighted* occupancy: each round's
// sample carries weight 1/Σw, the expected holding time before the next
// race fires (see Probe.RecordRound). Raw per-round counts measure the
// embedded jump chain, whose occupancy is ∝ p*(f)·Σrates(f) and
// diverges from the target once β is boosted; the dwell weights recover
// the continuous-time occupancy the target actually describes. Classes
// without samples (inactive cardinality) count their full weight as
// distance, so d̂_TV starts at 1 and can only fall as evidence
// accumulates.
//
// The enumeration spans every capacity-feasible state whose cardinality
// owns a solution thread (RunInfo.Cards) — exactly the space the chain
// inhabits (the full and empty selections have no thread; Nmin only
// gates *reporting* a best, not exploration, so it does not trim the
// chain's space). With the default layout Cards covers all of 1..K−1;
// under the adaptive schedule's banded stages it is a subset, and the
// target renormalizes over the covered classes — the chain then targets
// the Gibbs law conditioned on |f| ∈ Cards, which is what the restricted
// thread lattice actually samples. The weights use β_eff, the
// value-normalized β the transition rates actually apply (including any
// adaptive boost).

// rebuildTargetLocked enumerates the Gibbs target for the bound run, or
// disables the d_TV estimator when the instance is too large.
func (d *Diag) rebuildTargetLocked() {
	d.target, d.cardMarg, d.visits, d.cardVisits, d.cardCounts = nil, nil, nil, nil, nil
	d.tvStates, d.modeMask, d.modeUtil = 0, 0, math.Inf(-1)
	k := d.info.K
	if k < 2 || k > d.cfg.MaxTVShards || len(d.info.Sizes) != k || len(d.info.Values) != k {
		return
	}
	// Only cardinalities that own a thread have a sampler; states outside
	// the covered classes are excluded from the target (conditioning on
	// |f| ∈ Cards) rather than counted as unreachable distance.
	if len(d.info.Cards) == 0 {
		return
	}
	covered := make([]bool, k)
	for _, n := range d.info.Cards {
		if n >= 1 && n < k {
			covered[n] = true
		}
	}

	size := 1 << uint(k)
	logw := make([]float64, size)
	maxW := math.Inf(-1)
	states := 0
	for mask := 1; mask < size; mask++ {
		n := bits.OnesCount32(uint32(mask))
		if n >= k || !covered[n] {
			logw[mask] = math.Inf(-1)
			continue
		}
		load, util := 0, 0.0
		for pos := 0; pos < k; pos++ {
			if mask>>uint(pos)&1 == 1 {
				load += d.info.Sizes[pos]
				util += d.info.Values[pos]
			}
		}
		if load > d.info.Capacity {
			logw[mask] = math.Inf(-1)
			continue
		}
		logw[mask] = d.info.BetaEff * util
		if logw[mask] > maxW {
			maxW = logw[mask]
		}
		states++
		if util > d.modeUtil {
			d.modeUtil = util
			d.modeMask = uint64(mask)
		}
	}
	logw[0] = math.Inf(-1)
	if states == 0 {
		return
	}

	target := make([]float64, size)
	cardMarg := make([]float64, k)
	var z float64
	for mask, w := range logw {
		if !math.IsInf(w, -1) {
			e := math.Exp(w - maxW)
			target[mask] = e
			z += e
		}
	}
	for mask, e := range target {
		if e > 0 {
			p := e / z
			target[mask] = p
			cardMarg[bits.OnesCount32(uint32(mask))] += p
		}
	}
	d.target = target
	d.cardMarg = cardMarg
	d.tvStates = states
	d.visits = make([]float64, size)
	d.cardVisits = make([]float64, k)
	d.cardCounts = make([]int64, k)
}

// dtvLocked aggregates the per-cardinality TV distances with the
// target's cardinality marginal.
func (d *Diag) dtvLocked() *DTVSnapshot {
	s := &DTVSnapshot{
		Enabled:     true,
		States:      d.tvStates,
		ModeMask:    d.modeMask,
		ModeUtility: d.modeUtil,
	}
	k := d.info.K
	size := len(d.target)
	var total int64
	for _, c := range d.cardCounts {
		total += c
	}
	s.Samples = total

	perCard := make([]CardTV, 0, k-1)
	est := 0.0
	for n := 1; n < k; n++ {
		w := d.cardMarg[n]
		if w == 0 {
			continue
		}
		samples := d.cardCounts[n]
		mass := d.cardVisits[n]
		tv := 1.0
		if samples > 0 && mass > 0 {
			var sum float64
			for mask := 1; mask < size; mask++ {
				if bits.OnesCount32(uint32(mask)) != n {
					continue
				}
				emp := d.visits[mask] / mass
				sum += math.Abs(emp - d.target[mask]/w)
			}
			tv = sum / 2
		}
		est += w * tv
		perCard = append(perCard, CardTV{N: n, Weight: w, Samples: samples, TV: tv})
	}
	s.Estimate = est
	s.PerCardinality = perCard
	return s
}
