package seobs

import (
	"math"
	"testing"

	"mvcom/internal/obs"
)

// bindSmall binds a hand-built K=2 run where the Gibbs target is exactly
// uniform over the two cardinality-1 states, so every d_TV value in the
// tests is computable by hand.
func bindSmall(d *Diag) {
	d.Bind(RunInfo{
		K:        2,
		Gamma:    1,
		BetaEff:  1.0,
		Capacity: 10,
		Nmin:     1,
		Sizes:    []int{1, 1},
		Values:   []float64{0, 0}, // equal values: uniform conditional target
		Cards:    []int{1},
	})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Epsilon != 0.01 || c.MaxWindows != 512 || c.MaxTVShards != 15 ||
		c.MaxUtilitySamples != 4096 || c.MaxAutocorrLag != 64 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	c = Config{Epsilon: 0.2, MaxWindows: 7, MaxTVShards: 9, MaxUtilitySamples: 16, MaxAutocorrLag: 3}.withDefaults()
	if c.Epsilon != 0.2 || c.MaxWindows != 7 || c.MaxTVShards != 9 ||
		c.MaxUtilitySamples != 16 || c.MaxAutocorrLag != 3 {
		t.Fatalf("explicit values overridden: %+v", c)
	}
}

func TestTargetEnumeration(t *testing.T) {
	d := New(Config{})
	d.Bind(RunInfo{
		K:        3,
		Gamma:    2,
		BetaEff:  1.0,
		Capacity: 3,
		Sizes:    []int{1, 1, 1},
		Values:   []float64{1, 2, 3},
		Cards:    []int{1, 2},
	})
	if !d.TracksVisits() {
		t.Fatal("estimator should be live on a 3-shard instance")
	}
	snap := d.Snapshot()
	if snap.DTV == nil || !snap.DTV.Enabled {
		t.Fatal("DTV snapshot missing")
	}
	// Cardinality 1..2 states under capacity 3: three singletons, three
	// pairs; the full set has no thread and is excluded.
	if snap.DTV.States != 6 {
		t.Fatalf("states = %d, want 6", snap.DTV.States)
	}
	// Gibbs mode: the pair {1,2} with utility 5.
	if snap.DTV.ModeMask != 0b110 || snap.DTV.ModeUtility != 5 {
		t.Fatalf("mode = %#b / %v, want 0b110 / 5", snap.DTV.ModeMask, snap.DTV.ModeUtility)
	}
	// No samples yet: every class counts its full weight, estimate is 1.
	if snap.DTV.Estimate != 1 {
		t.Fatalf("estimate with no samples = %v, want 1", snap.DTV.Estimate)
	}
	// The cardinality marginal must sum to 1 across the breakdown.
	var wsum float64
	for _, c := range snap.DTV.PerCardinality {
		wsum += c.Weight
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Fatalf("cardinality weights sum to %v, want 1", wsum)
	}
}

func TestTargetDisabledCases(t *testing.T) {
	d := New(Config{MaxTVShards: 4})
	// Too many shards.
	d.Bind(RunInfo{K: 5, Sizes: make([]int, 5), Values: make([]float64, 5), Cards: []int{1, 2, 3, 4}})
	if d.TracksVisits() {
		t.Fatal("estimator live beyond MaxTVShards")
	}
	// A banded thread layout (adaptive schedule) keeps the estimator
	// live, conditioned on the covered cardinality classes.
	d.Bind(RunInfo{K: 3, Capacity: 10, Sizes: []int{1, 1, 1}, Values: []float64{1, 2, 3}, Cards: []int{1}})
	if !d.TracksVisits() {
		t.Fatal("estimator dead under a banded thread layout")
	}
	if s := d.Snapshot(); s.DTV == nil || s.DTV.States != 3 {
		t.Fatalf("banded target should cover the 3 singletons, got %+v", s.DTV)
	}
	// No thread layout at all disables it.
	d.Bind(RunInfo{K: 3, Capacity: 10, Sizes: []int{1, 1, 1}, Values: []float64{1, 2, 3}})
	if d.TracksVisits() {
		t.Fatal("estimator live with no thread layout")
	}
	// K < 2.
	d.Bind(RunInfo{K: 1, Sizes: []int{1}, Values: []float64{1}})
	if d.TracksVisits() {
		t.Fatal("estimator live on a single-shard instance")
	}
	// No feasible state at all (capacity 0).
	d.Bind(RunInfo{K: 2, Capacity: 0, Sizes: []int{1, 1}, Values: []float64{1, 2}, Cards: []int{1}})
	if d.TracksVisits() {
		t.Fatal("estimator live with an empty feasible space")
	}
	if s := d.Snapshot(); s.DTV != nil {
		t.Fatal("DTV snapshot present while disabled")
	}
}

func TestDTVFromProbeSamples(t *testing.T) {
	d := New(Config{})
	bindSmall(d)
	p := d.NewProbe(0, 1)
	if !p.TracksVisits() {
		t.Fatal("probe should track visits")
	}
	p.SetThread(0, 0b01, true)
	p.RecordRound(1) // one dwell sample at state {0}
	d.Flush(FlushArgs{From: 0, To: 1, BestUtility: 0, HaveBest: true})

	snap := d.Snapshot()
	if snap.DTV.Samples != 1 {
		t.Fatalf("samples = %d, want 1", snap.DTV.Samples)
	}
	// Empirical [1, 0] vs uniform [1/2, 1/2]: d_TV = 1/2.
	if math.Abs(snap.DTV.Estimate-0.5) > 1e-12 {
		t.Fatalf("estimate = %v, want 0.5", snap.DTV.Estimate)
	}

	// One more dwell sample at the other state balances it out exactly.
	p2 := d.probeFor(t)
	p2.SetThread(0, 0b10, true)
	p2.RecordRound(1)
	d.Flush(FlushArgs{From: 1, To: 2, BestUtility: 0, HaveBest: true})
	snap = d.Snapshot()
	if snap.DTV.Samples != 2 {
		t.Fatalf("samples = %d, want 2", snap.DTV.Samples)
	}
	if snap.DTV.Estimate != 0 {
		t.Fatalf("estimate = %v, want 0 for a perfectly balanced sample", snap.DTV.Estimate)
	}
}

// probeFor returns the Diag's live probe (the tests reuse the one
// registered by NewProbe; a second NewProbe call would double-drain).
func (d *Diag) probeFor(t *testing.T) *Probe {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.probes) == 0 {
		t.Fatal("no probe registered")
	}
	return d.probes[0]
}

func TestRecordSwapMaintainsMask(t *testing.T) {
	d := New(Config{})
	bindSmall(d)
	p := d.NewProbe(0, 1)
	p.SetThread(0, 0b01, true)
	// Swap position 0 out, position 1 in: mask becomes 0b10.
	p.RecordSwap(0, 0, 1, 3.5)
	p.RecordRound(1)
	d.Flush(FlushArgs{From: 0, To: 1})
	d.mu.Lock()
	v1, v2 := d.visits[0b01], d.visits[0b10]
	d.mu.Unlock()
	if v1 != 0 || v2 != 1 {
		t.Fatalf("visits after swap = {%v, %v}, want {0, 1}", v1, v2)
	}
}

func TestTimeToEps(t *testing.T) {
	d := New(Config{Epsilon: 0.1})
	d.Bind(RunInfo{K: 2, Gamma: 1})
	d.RecordImprovement(10, 50)
	d.RecordImprovement(100, 91)
	d.RecordImprovement(200, 99)
	d.RecordImprovement(300, 100)
	// Final 100, band 10, threshold 90: the last level below it is 50 at
	// round 10, so the run entered the band at the next level, round 100.
	if got := d.Snapshot().TimeToEpsRounds; got != 100 {
		t.Fatalf("time-to-eps = %d, want 100", got)
	}

	// Monotone guard: a non-improving report must not extend the history.
	d.RecordImprovement(400, 99)
	if got := d.Snapshot().Improvements; got != 4 {
		t.Fatalf("improvements = %d, want 4 after a non-improving report", got)
	}

	// All history inside the band: entered at the earliest level.
	d.Bind(RunInfo{K: 2})
	d.RecordImprovement(5, 95)
	d.RecordImprovement(50, 100)
	if got := d.Snapshot().TimeToEpsRounds; got != 5 {
		t.Fatalf("time-to-eps = %d, want 5 when never outside the band", got)
	}

	// No best at all: -1.
	d.Bind(RunInfo{K: 2})
	if got := d.Snapshot().TimeToEpsRounds; got != -1 {
		t.Fatalf("time-to-eps = %d, want -1 before any best", got)
	}
}

func TestRecordEventForcesHistoryLevel(t *testing.T) {
	d := New(Config{Epsilon: 0.01})
	d.Bind(RunInfo{K: 2, Gamma: 1})
	d.RecordImprovement(10, 100)
	// A leave drops the best to 80; the re-convergence climbs back to 100.
	d.RecordEvent(500, "leave", 3, 80, true)
	d.RecordImprovement(600, 100)

	snap := d.Snapshot()
	if len(snap.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(snap.Events))
	}
	ev := snap.Events[0]
	if ev.Round != 500 || ev.Kind != "leave" || ev.Index != 3 || ev.BestAfter != 80 {
		t.Fatalf("unexpected event mark %+v", ev)
	}
	// The dip level was forced into the history, so time-to-ε tracks the
	// re-convergence (round 600), not the pre-event climb (round 10).
	if snap.TimeToEpsRounds != 600 {
		t.Fatalf("time-to-eps = %d, want 600 (post-event)", snap.TimeToEpsRounds)
	}
}

func TestAutocorrKnownSeries(t *testing.T) {
	// Constant series: zero variance, defined as lag1=0, τ_int=1.
	d := New(Config{})
	d.Bind(RunInfo{K: 100, Gamma: 1}) // too large: visits off, util probe on
	p := d.NewProbe(0, 1)
	if p.TracksVisits() {
		t.Fatal("visit tracking unexpectedly on")
	}
	for i := 0; i < 16; i++ {
		p.RecordSwap(0, 0, 0, 7)
	}
	d.Flush(FlushArgs{From: 0, To: 16})
	snap := d.Snapshot()
	if snap.UtilitySamples != 16 || snap.AutocorrLag1 != 0 || snap.IntegratedAutocorrTime != 1 {
		t.Fatalf("constant series: lag1=%v tau=%v n=%d, want 0/1/16",
			snap.AutocorrLag1, snap.IntegratedAutocorrTime, snap.UtilitySamples)
	}

	// Alternating series: strongly negative lag-1, truncated τ_int = 1.
	d.Bind(RunInfo{K: 100, Gamma: 1})
	p = d.NewProbe(0, 1)
	for i := 0; i < 64; i++ {
		p.RecordSwap(0, 0, 0, float64(i%2))
	}
	d.Flush(FlushArgs{From: 0, To: 64})
	snap = d.Snapshot()
	if snap.AutocorrLag1 >= 0 {
		t.Fatalf("alternating series lag1 = %v, want < 0", snap.AutocorrLag1)
	}
	if snap.IntegratedAutocorrTime != 1 {
		t.Fatalf("alternating series tau = %v, want 1 (Geyer truncation)", snap.IntegratedAutocorrTime)
	}

	// Slowly varying series: positive lag-1, τ_int > 1.
	d.Bind(RunInfo{K: 100, Gamma: 1})
	p = d.NewProbe(0, 1)
	for i := 0; i < 256; i++ {
		p.RecordSwap(0, 0, 0, math.Sin(float64(i)/40))
	}
	d.Flush(FlushArgs{From: 0, To: 256})
	snap = d.Snapshot()
	if snap.AutocorrLag1 <= 0.5 {
		t.Fatalf("smooth series lag1 = %v, want > 0.5", snap.AutocorrLag1)
	}
	if snap.IntegratedAutocorrTime <= 1 {
		t.Fatalf("smooth series tau = %v, want > 1", snap.IntegratedAutocorrTime)
	}

	// Fewer than 8 samples: proxy undefined.
	d.Bind(RunInfo{K: 100, Gamma: 1})
	p = d.NewProbe(0, 1)
	for i := 0; i < 7; i++ {
		p.RecordSwap(0, 0, 0, float64(i))
	}
	d.Flush(FlushArgs{From: 0, To: 7})
	snap = d.Snapshot()
	if snap.UtilitySamples != 7 || snap.AutocorrLag1 != 0 || snap.IntegratedAutocorrTime != 0 {
		t.Fatalf("short series should leave the proxy unset: %+v", snap)
	}
}

func TestUtilityRingBounded(t *testing.T) {
	d := New(Config{MaxUtilitySamples: 32})
	d.Bind(RunInfo{K: 100, Gamma: 1})
	p := d.NewProbe(0, 1)
	for i := 0; i < 100; i++ {
		p.RecordSwap(0, 0, 0, float64(i))
	}
	d.Flush(FlushArgs{From: 0, To: 100})
	if n := d.Snapshot().UtilitySamples; n != 32 {
		t.Fatalf("utility samples = %d, want ring bound 32", n)
	}
}

func TestWindowRingBounded(t *testing.T) {
	d := New(Config{MaxWindows: 4})
	d.Bind(RunInfo{K: 2, Gamma: 1})
	for i := 0; i < 10; i++ {
		d.Flush(FlushArgs{From: i * 10, To: (i + 1) * 10, Swaps: 1, BestUtility: float64(i), HaveBest: true})
	}
	snap := d.Snapshot()
	if len(snap.Windows) > 4 {
		t.Fatalf("windows = %d, want <= 4", len(snap.Windows))
	}
	last := snap.Windows[len(snap.Windows)-1]
	if last.Round != 100 || last.BestUtility != 9 {
		t.Fatalf("newest window lost: %+v", last)
	}
	// Rates are per explorer-round within the window.
	if last.SwapAcceptRate != 0.1 {
		t.Fatalf("window accept rate = %v, want 0.1", last.SwapAcceptRate)
	}
}

func TestRebindKeepsCurveResetsEstimator(t *testing.T) {
	d := New(Config{})
	bindSmall(d)
	p := d.NewProbe(0, 1)
	p.SetThread(0, 0b01, true)
	p.RecordRound(1)
	d.Flush(FlushArgs{From: 0, To: 10, Swaps: 2, BestUtility: 1, HaveBest: true})
	d.RecordImprovement(5, 1)
	d.RecordEvent(10, "leave", 1, 0.5, true)

	d.Rebind(RunInfo{
		K: 2, Gamma: 1, BetaEff: 1, Capacity: 10,
		Sizes: []int{1, 1}, Values: []float64{0, 0}, Cards: []int{1},
	})
	snap := d.Snapshot()
	if len(snap.Windows) != 1 || len(snap.Events) != 1 || len(snap.History) == 0 {
		t.Fatalf("rebind dropped the curve: windows=%d events=%d history=%d",
			len(snap.Windows), len(snap.Events), len(snap.History))
	}
	if snap.DTV == nil || snap.DTV.Samples != 0 {
		t.Fatalf("rebind must restart the d_TV state, got %+v", snap.DTV)
	}
	if snap.Rounds != 10 || snap.Swaps != 2 {
		t.Fatalf("rebind dropped the cumulative tallies: %+v", snap)
	}
	// Old probes were dropped; the kernel must create fresh ones.
	d.mu.Lock()
	n := len(d.probes)
	d.mu.Unlock()
	if n != 0 {
		t.Fatalf("probes after rebind = %d, want 0", n)
	}
}

func TestNilProbeAndDisabledProbe(t *testing.T) {
	var p *Probe
	if p.TracksVisits() {
		t.Fatal("nil probe tracks visits")
	}
	p.SetThread(0, 1, true)
	p.RecordSwap(0, 0, 1, 2)
	p.RecordRound(1) // must not panic

	// Non-source explorer on a too-large instance: no probe at all.
	d := New(Config{})
	d.Bind(RunInfo{K: 100, Gamma: 2})
	if got := d.NewProbe(1, 3); got != nil {
		t.Fatalf("explorer 1 without visit tracking should get a nil probe, got %+v", got)
	}
}

func TestRegistryExports(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Config{Registry: reg})
	fn := reg.DebugProvider("convergence")
	if fn == nil {
		t.Fatal("convergence debug provider not registered")
	}
	if _, ok := fn().(Snapshot); !ok {
		t.Fatalf("debug provider returned %T, want Snapshot", fn())
	}

	bindSmall(d)
	d.Flush(FlushArgs{From: 0, To: 10, Swaps: 4, Resets: 1, BestUtility: 3, HaveBest: true})
	if v := reg.Gauge("mvcom_se_diag_best_utility", "").Value(); v != 3 {
		t.Fatalf("best-utility gauge = %v, want 3", v)
	}
	if v := reg.Gauge("mvcom_se_diag_swap_accept_rate", "").Value(); v != 0.4 {
		t.Fatalf("accept-rate gauge = %v, want 0.4", v)
	}
	d.Snapshot()
	if v := reg.Gauge("mvcom_se_diag_dtv", "").Value(); v != 1 {
		t.Fatalf("d_TV gauge = %v, want 1 with no samples", v)
	}
	d.Finalize() // must emit the summary trace event without panicking
	events, _ := reg.Tracer().Snapshot()
	var sawWindow, sawSummary bool
	for _, e := range events {
		if e.Type == obs.EvConvergence {
			switch e.Detail {
			case "window":
				sawWindow = true
			case "summary":
				sawSummary = true
			}
		}
	}
	if !sawWindow || !sawSummary {
		t.Fatalf("missing convergence trace events (window=%v summary=%v)", sawWindow, sawSummary)
	}
}
