package seobs

// The adaptive β/Γ schedule controller. The kernel coordinator feeds it
// one ControlSignals sample per segment merge — derived only from merged
// state, so decisions are identical for every worker count — and applies
// the returned Decision: boost the effective β (sharpening the Gibbs
// target toward the mode, the classic annealing move) and band the
// explorer thread lattice around the incumbent cardinality (reallocating
// the Γ×T round budget to the neighborhood that still matters once the
// run has settled on a size regime).
//
// The controller is a pure deterministic state machine: same signal
// sequence in, same decision sequence out. It deliberately reads nothing
// from the Diag (which may or may not be attached — attaching
// diagnostics must never change results); the signals it consumes are
// the same quantities seobs measures (swap-accept rate as the mixing
// proxy, improvement recency as time-to-ε's online face), re-derived
// from the coordinator's own tallies.

// ControllerConfig tunes the schedule. The zero value uses the defaults
// noted per field.
type ControllerConfig struct {
	// EscalateAfter is the stagnation budget, in transition rounds, for
	// the first escalation; stage s escalates after EscalateAfter·(s+1)
	// rounds without a global-best improvement (later stages get
	// proportionally more patience, mirroring a geometric annealing
	// ladder). Default 256.
	EscalateAfter int
	// MaxStage caps the ladder. Default 3.
	MaxStage int
	// BetaStep is the per-stage multiplier on the effective β:
	// stage s runs at β_eff·BetaStep^s. Default 2.
	BetaStep float64
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 256
	}
	if c.MaxStage <= 0 {
		c.MaxStage = 3
	}
	if c.BetaStep <= 1 {
		c.BetaStep = 2
	}
	return c
}

// ControlSignals is one segment's worth of merged coordinator state.
type ControlSignals struct {
	// Rounds is the segment length in transition rounds; ExplorerRounds
	// is Rounds × Γ.
	Rounds         int
	ExplorerRounds int64
	// Swaps is the segment's accepted-swap tally (across explorers).
	Swaps int64
	// Improved reports whether the merge adopted a global-best
	// improvement; HaveBest whether any feasible solution exists yet.
	Improved bool
	HaveBest bool
}

// Decision is the schedule the kernel should run until the next change.
type Decision struct {
	// Stage is the ladder position (0 = the configured fixed schedule).
	Stage int
	// BetaBoost is the multiplier to apply on the effective β
	// (BetaStep^Stage; 1 at stage 0).
	BetaBoost float64
	// AcceptRate is the swap-accept rate observed over the deciding
	// segment (diagnostic payload for the schedule event).
	AcceptRate float64
	// Banded reports whether the thread lattice should narrow to the
	// incumbent cardinality band (true at stage ≥ 1).
	Banded bool
}

// Controller is the deterministic schedule state machine. Not
// goroutine-safe: only the kernel coordinator touches it, between
// segments.
type Controller struct {
	cfg          ControllerConfig
	stage        int
	sinceImprove int
}

// NewController builds a Controller with cfg's defaults filled in.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// Observe folds one segment's signals and returns the current Decision
// plus whether it changed (the kernel only re-derives caches on change).
func (c *Controller) Observe(s ControlSignals) (Decision, bool) {
	if s.Improved {
		c.sinceImprove = 0
	} else {
		c.sinceImprove += s.Rounds
	}
	changed := false
	// Escalate only once a best exists: annealing toward "the incumbent"
	// is meaningless while every thread is still hunting feasibility.
	if s.HaveBest && c.stage < c.cfg.MaxStage &&
		c.sinceImprove >= c.cfg.EscalateAfter*(c.stage+1) {
		c.stage++
		c.sinceImprove = 0
		changed = true
	}
	return c.decision(s), changed
}

// Reset drops the ladder back to stage 0 — the kernel calls it on every
// dynamic join/leave, where the incumbent cardinality band (and the
// stagnation evidence behind it) is invalidated.
func (c *Controller) Reset() {
	c.stage = 0
	c.sinceImprove = 0
}

// Stage reports the current ladder position.
func (c *Controller) Stage() int { return c.stage }

func (c *Controller) decision(s ControlSignals) Decision {
	d := Decision{Stage: c.stage, BetaBoost: 1, Banded: c.stage >= 1}
	for i := 0; i < c.stage; i++ {
		d.BetaBoost *= c.cfg.BetaStep
	}
	if s.ExplorerRounds > 0 {
		d.AcceptRate = float64(s.Swaps) / float64(s.ExplorerRounds)
	}
	return d
}
