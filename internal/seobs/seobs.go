// Package seobs is the convergence-diagnostics layer of the SE kernel:
// an online per-run diagnostic stream answering "is this run converging,
// and how fast" rather than "how many rounds did it step". A Diag
// collects
//
//   - a windowed utility time-series per solution thread f_n (one window
//     per kernel segment merge),
//   - the swap-acceptance and RESET rates,
//   - time-to-ε-of-best (rounds until the best utility last entered and
//     stayed within ε of its final value),
//   - on small instances, an empirical d_TV estimator between the
//     chain's sampled visit distribution and the Gibbs target
//     p* ∝ exp(β_eff·U_f) (see gibbs.go for the methodology), and
//   - a rolling mixing-time proxy: the autocorrelation of the winner
//     utility series U_f (lag-1 plus the integrated autocorrelation
//     time).
//
// The package follows the obs contracts: nil is off (every method is a
// no-op on a nil *Diag or *Probe, so an unconfigured kernel pays
// nothing), and the hot path stays plain (explorer goroutines append to
// private Probe buffers; the coordinator folds them into the Diag only
// at segment merges, under the same ≤3% budget ci.sh enforces for the
// SEObserver). Results are exported three ways: gauges/histograms on the
// obs registry, EvConvergence trace events, and a "convergence" debug
// provider that obs.Serve exposes as /debug/convergence.
//
// Layering: seobs sits between obs and core (core → seobs → obs), so it
// must not import internal/core; the kernel hands it plain slices.
package seobs

import (
	"math"
	"math/bits"
	"sync"

	"mvcom/internal/obs"
)

// Config tunes a Diag. The zero value is usable; Registry may be nil
// (diagnostics still accumulate and Snapshot still works, nothing is
// exported).
type Config struct {
	// Registry, when non-nil, receives the diagnostic gauges, the
	// swap-acceptance histogram, EvConvergence trace events, and the
	// "convergence" debug provider (served at /debug/convergence).
	Registry *obs.Registry
	// Epsilon is the relative band of time-to-ε-of-best: the diagnostic
	// reports the round after which the best utility stayed within
	// Epsilon·|final best| of the final best. Default 0.01.
	Epsilon float64
	// MaxWindows bounds the retained window ring. Default 512.
	MaxWindows int
	// MaxTVShards caps the candidate-set size for which the d_TV
	// estimator enumerates the Gibbs target (2^k states). Default 15.
	MaxTVShards int
	// MaxUtilitySamples bounds the winner-utility sample ring feeding
	// the autocorrelation proxy. Default 4096.
	MaxUtilitySamples int
	// MaxAutocorrLag bounds the lags summed into the integrated
	// autocorrelation time. Default 64.
	MaxAutocorrLag int
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 512
	}
	if c.MaxTVShards <= 0 {
		c.MaxTVShards = 15
	}
	if c.MaxUtilitySamples <= 0 {
		c.MaxUtilitySamples = 4096
	}
	if c.MaxAutocorrLag <= 0 {
		c.MaxAutocorrLag = 64
	}
	return c
}

// RunInfo is the kernel's description of one run, handed to Bind (and
// Rebind after every dynamic event).
type RunInfo struct {
	// K is the live candidate-set size |I|.
	K int
	// Gamma is the explorer count Γ.
	Gamma int
	// Beta is the configured β; BetaEff the effective (value-normalized)
	// β the transition rates actually use — the Gibbs target must be
	// built from BetaEff, not Beta.
	Beta, BetaEff float64
	// Capacity and Nmin are the instance constraints.
	Capacity, Nmin int
	// Sizes and Values are the per-candidate-position caches.
	Sizes  []int
	Values []float64
	// Cards are the thread cardinalities (one solution thread f_n per
	// entry).
	Cards []int
}

// ThreadPoint is one solution thread's utility inside a window.
type ThreadPoint struct {
	N       int     `json:"n"`
	Utility float64 `json:"utility"`
}

// Window is one segment-merge sample of the convergence state.
type Window struct {
	// Round is the transition round the window ends at.
	Round int `json:"round"`
	// BestUtility is the global best after the merge (NaN-safe: -Inf is
	// encoded as null by the snapshot writer, but the kernel always has
	// a best once any thread initialized).
	BestUtility float64 `json:"best_utility"`
	// SwapAcceptRate and ResetRate are the segment's per-explorer-round
	// rates.
	SwapAcceptRate float64 `json:"swap_accept_rate"`
	ResetRate      float64 `json:"reset_rate"`
	// Starved and RaceErrors count the segment's degenerate rounds:
	// proposal starvation (no armed swap) and failed winner picks.
	Starved    int64 `json:"starved,omitempty"`
	RaceErrors int64 `json:"race_errors,omitempty"`
	// Threads is the per-cardinality best utility across explorers —
	// the windowed f_n time-series.
	Threads []ThreadPoint `json:"threads,omitempty"`
}

// ImprovePoint is one global-best level in the improvement history.
type ImprovePoint struct {
	Round   int     `json:"round"`
	Utility float64 `json:"utility"`
}

// EventWarmStart is the EventMark kind recorded when a run is seeded
// from a previous epoch's solution (SE.SolveFrom). Like join/leave it
// resets the improvement-history level, so time-to-ε measures the
// re-convergence from the seeded state rather than the cold climb.
const EventWarmStart = "warm-start"

// EventSchedule is the EventMark kind recorded when the adaptive
// schedule escalates a stage (β boost and/or cardinality banding);
// Index carries the new stage.
const EventSchedule = "schedule"

// EventMark records a dynamic join/leave applied mid-run.
type EventMark struct {
	Round int    `json:"round"`
	Kind  string `json:"kind"`
	Index int    `json:"index"`
	// BestAfter is the global best immediately after the event (the
	// bottom of the Theorem 2 dip for a leave).
	BestAfter float64 `json:"best_after"`
}

// CardTV is the d_TV estimate within one cardinality class.
type CardTV struct {
	N       int     `json:"n"`
	Weight  float64 `json:"weight"`
	Samples int64   `json:"samples"`
	TV      float64 `json:"tv"`
}

// DTVSnapshot is the empirical d_TV estimator's state.
type DTVSnapshot struct {
	Enabled bool `json:"enabled"`
	// States counts the feasible states of the enumerated Gibbs target;
	// Samples the dwell samples drawn so far (threads × rounds × Γ).
	States  int   `json:"states"`
	Samples int64 `json:"samples"`
	// Estimate is the aggregated d_TV (1 until samples arrive).
	Estimate       float64  `json:"estimate"`
	PerCardinality []CardTV `json:"per_cardinality,omitempty"`
	// ModeMask and ModeUtility identify the Gibbs target's most likely
	// state (tests cross-check it against the brute-force optimum).
	ModeMask    uint64  `json:"mode_mask"`
	ModeUtility float64 `json:"mode_utility"`
}

// Snapshot is the full diagnostic state, served at /debug/convergence.
type Snapshot struct {
	K       int     `json:"k"`
	Gamma   int     `json:"gamma"`
	Beta    float64 `json:"beta"`
	BetaEff float64 `json:"beta_eff"`
	Epsilon float64 `json:"epsilon"`

	Rounds         int64 `json:"rounds"`
	ExplorerRounds int64 `json:"explorer_rounds"`
	Swaps          int64 `json:"swaps"`
	Resets         int64 `json:"resets"`
	Improvements   int64 `json:"improvements"`
	// ProposalsStarved and RaceErrors are the run totals of degenerate
	// rounds (no armed proposal / failed winner pick).
	ProposalsStarved int64 `json:"proposals_starved,omitempty"`
	RaceErrors       int64 `json:"race_errors,omitempty"`
	// ScheduleStage is the adaptive schedule's current stage (0 = the
	// fixed Alg. 1 regime; only nonzero when SEConfig.Adaptive is on).
	ScheduleStage int `json:"schedule_stage,omitempty"`

	BestUtility    float64 `json:"best_utility"`
	HaveBest       bool    `json:"have_best"`
	SwapAcceptRate float64 `json:"swap_accept_rate"`
	ResetRate      float64 `json:"reset_rate"`

	// TimeToEpsRounds is the round after which the best utility entered
	// (and stayed within) ε of its final value; -1 before any best.
	TimeToEpsRounds int `json:"time_to_eps_rounds"`

	// AutocorrLag1 and IntegratedAutocorrTime are the mixing-time proxy
	// over the winner-utility series; UtilitySamples is the sample count
	// behind them.
	AutocorrLag1           float64 `json:"autocorr_lag1"`
	IntegratedAutocorrTime float64 `json:"integrated_autocorr_time"`
	UtilitySamples         int     `json:"utility_samples"`

	DTV *DTVSnapshot `json:"dtv,omitempty"`

	// WarmStarts counts the EventWarmStart marks in Events (a serving
	// loop records one per warm-seeded epoch).
	WarmStarts int `json:"warm_starts,omitempty"`

	Windows []Window       `json:"windows"`
	History []ImprovePoint `json:"history"`
	Events  []EventMark    `json:"events,omitempty"`
}

// Diag accumulates convergence diagnostics for one SE run at a time.
// Bind resets it for a new run, so a single Diag can be reused across
// sequential solves (the benchmark loop does); concurrent runs must not
// share one.
type Diag struct {
	cfg Config

	mu   sync.Mutex
	info RunInfo

	// d_TV machinery (nil / empty when the instance is too large).
	target     []float64 // Gibbs target per mask, 0 for infeasible
	cardMarg   []float64 // target cardinality marginal, indexed by n
	modeMask   uint64
	modeUtil   float64
	tvStates   int
	visits     []float64 // dwell-weighted occupancy mass per mask
	cardVisits []float64 // dwell-weighted occupancy mass per cardinality
	cardCounts []int64   // raw round samples per cardinality

	probes []*Probe

	rounds, explorerRounds int64
	swaps, resets          int64
	starved, raceErrors    int64
	improvements           int64
	schedStage             int
	bestUtil               float64
	haveBest               bool
	history                []ImprovePoint
	events                 []EventMark
	windows                []Window
	utilRing               []float64
	utilNext, utilLen      int

	// exported instruments (nil without a registry — inert).
	gBest, gAcceptRate, gResetRate  *obs.Gauge
	gDTV, gAC1, gTauInt, gTimeToEps *obs.Gauge
	gStage                          *obs.Gauge
	hAcceptRate                     *obs.Histogram
	tracer                          *obs.Tracer
}

// New builds a Diag and, when cfg.Registry is set, registers its
// instruments and the "convergence" debug provider.
func New(cfg Config) *Diag {
	d := &Diag{cfg: cfg.withDefaults(), bestUtil: math.Inf(-1)}
	if reg := cfg.Registry; reg != nil {
		d.gBest = reg.Gauge("mvcom_se_diag_best_utility", "convergence diagnostics: current global best utility")
		d.gAcceptRate = reg.Gauge("mvcom_se_diag_swap_accept_rate", "accepted swaps per explorer round (cumulative)")
		d.gResetRate = reg.Gauge("mvcom_se_diag_reset_rate", "RESET broadcasts per explorer round (cumulative)")
		d.gDTV = reg.Gauge("mvcom_se_diag_dtv", "empirical d_TV between sampled visits and the Gibbs target (small instances)")
		d.gAC1 = reg.Gauge("mvcom_se_diag_autocorr_lag1", "lag-1 autocorrelation of the winner utility series")
		d.gTauInt = reg.Gauge("mvcom_se_diag_mixing_proxy", "integrated autocorrelation time of the winner utility series (rounds)")
		d.gTimeToEps = reg.Gauge("mvcom_se_diag_time_to_eps_rounds", "rounds until the best utility stayed within epsilon of its final value")
		d.gStage = reg.Gauge("mvcom_se_diag_schedule_stage", "adaptive schedule stage (0 = fixed Alg. 1 regime)")
		d.hAcceptRate = reg.Histogram("mvcom_se_diag_window_accept_rate", "per-window swap-acceptance rate", obs.LinearBuckets(0.05, 0.05, 19))
		d.tracer = reg.Tracer()
		reg.RegisterDebug("convergence", func() any { return d.Snapshot() })
	}
	return d
}

// Bind resets the Diag for a new run. Nil-safe.
func (d *Diag) Bind(info RunInfo) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.info = info
	d.rounds, d.explorerRounds, d.swaps, d.resets, d.improvements = 0, 0, 0, 0, 0
	d.starved, d.raceErrors, d.schedStage = 0, 0, 0
	d.bestUtil, d.haveBest = math.Inf(-1), false
	d.history = d.history[:0]
	d.events = d.events[:0]
	d.windows = d.windows[:0]
	d.utilRing = nil
	d.utilNext, d.utilLen = 0, 0
	d.probes = d.probes[:0]
	d.rebuildTargetLocked()
}

// Rebind refreshes the run description after a dynamic event: the d_TV
// state restarts against the new candidate set (the old mask space is
// meaningless), while the windows, history, and event marks are kept so
// the dip/re-convergence curve stays contiguous. The kernel must
// recreate every probe afterwards. Nil-safe.
func (d *Diag) Rebind(info RunInfo) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.info = info
	d.probes = d.probes[:0]
	d.rebuildTargetLocked()
}

// TracksVisits reports whether the d_TV estimator is live for the bound
// instance (small enough to enumerate). Nil-safe.
func (d *Diag) TracksVisits() bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.target != nil
}

// RecordImprovement appends a global-best improvement at the given
// round. Called by the coordinator's merge loop, never by explorer
// goroutines. Nil-safe.
func (d *Diag) RecordImprovement(round int, util float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.haveBest && util <= d.bestUtil {
		return
	}
	d.bestUtil, d.haveBest = util, true
	d.improvements++
	d.history = append(d.history, ImprovePoint{Round: round, Utility: util})
}

// RecordEvent marks a dynamic join/leave at the given round together
// with the post-event global best. A leave typically lowers the best
// (the Theorem 2 dip); the history takes the new level so time-to-ε
// measures the re-convergence, not the pre-dip climb. Nil-safe.
func (d *Diag) RecordEvent(round int, kind string, index int, bestAfter float64, haveBest bool) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.events = append(d.events, EventMark{Round: round, Kind: kind, Index: index, BestAfter: bestAfter})
	d.bestUtil, d.haveBest = bestAfter, haveBest
	if haveBest {
		d.history = append(d.history, ImprovePoint{Round: round, Utility: bestAfter})
	}
	if d.tracer != nil {
		d.tracer.Emit(obs.EvConvergence, "se", bestAfter, "event:"+kind)
	}
}

// RecordSchedule marks an adaptive-schedule stage change at the given
// round: an EventMark (kind "schedule", Index = new stage) joins the
// event stream, the stage gauge moves, and an EvConvergence trace event
// fires. Called by the coordinator at a segment merge, never by
// explorer goroutines. Nil-safe.
func (d *Diag) RecordSchedule(round int, dec Decision, bestUtil float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.schedStage = dec.Stage
	d.events = append(d.events, EventMark{Round: round, Kind: EventSchedule, Index: dec.Stage, BestAfter: bestUtil})
	d.gStage.Set(float64(dec.Stage))
	if d.tracer != nil {
		d.tracer.Emit(obs.EvConvergence, "se", float64(dec.Stage), "event:"+EventSchedule)
	}
}

// FlushArgs carries one segment's tallies from the kernel coordinator.
type FlushArgs struct {
	// From and To delimit the segment's rounds (From, To].
	From, To int
	// Swaps and Resets are the segment's summed explorer tallies.
	Swaps, Resets int64
	// Starved and RaceErrors are the segment's degenerate-round tallies:
	// rounds with no armed swap proposal, and timer races that failed to
	// pick a winner.
	Starved, RaceErrors int64
	// BestUtility is the post-merge global best; HaveBest false means no
	// feasible solution yet.
	BestUtility float64
	HaveBest    bool
	// Threads is the per-cardinality best utility across explorers. The
	// slice is owned by the caller and copied.
	Threads []ThreadPoint
}

// Flush folds one segment into the diagnostics: drains the probes'
// private buffers (the explorer goroutines are quiescent between
// segments), appends a window, and refreshes the cheap gauges. Called
// once per segment merge by the coordinator. Nil-safe.
func (d *Diag) Flush(args FlushArgs) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	segRounds := int64(args.To - args.From)
	if segRounds < 0 {
		segRounds = 0
	}
	gamma := int64(d.info.Gamma)
	if gamma < 1 {
		gamma = 1
	}
	d.rounds += segRounds
	d.explorerRounds += segRounds * gamma
	d.swaps += args.Swaps
	d.resets += args.Resets
	d.starved += args.Starved
	d.raceErrors += args.RaceErrors
	if args.HaveBest {
		d.bestUtil, d.haveBest = args.BestUtility, true
	}

	for _, p := range d.probes {
		d.drainProbeLocked(p)
	}

	w := Window{Round: args.To, BestUtility: args.BestUtility,
		Starved: args.Starved, RaceErrors: args.RaceErrors}
	if segEx := float64(segRounds * gamma); segEx > 0 {
		w.SwapAcceptRate = float64(args.Swaps) / segEx
		w.ResetRate = float64(args.Resets) / segEx
	}
	if len(args.Threads) > 0 {
		w.Threads = append([]ThreadPoint(nil), args.Threads...)
	}
	if len(d.windows) >= d.cfg.MaxWindows {
		// Drop the oldest half in one move instead of shifting per
		// window; the ring stays bounded at MaxWindows.
		keep := d.cfg.MaxWindows / 2
		copy(d.windows, d.windows[len(d.windows)-keep:])
		d.windows = d.windows[:keep]
	}
	d.windows = append(d.windows, w)

	d.gBest.Set(args.BestUtility)
	if d.explorerRounds > 0 {
		d.gAcceptRate.Set(float64(d.swaps) / float64(d.explorerRounds))
		d.gResetRate.Set(float64(d.resets) / float64(d.explorerRounds))
	}
	d.hAcceptRate.Observe(w.SwapAcceptRate)
	if d.tracer != nil {
		d.tracer.Emit(obs.EvConvergence, "se", args.BestUtility, "window")
	}
}

// drainProbeLocked folds one probe's private buffers into the Diag.
func (d *Diag) drainProbeLocked(p *Probe) {
	if p == nil {
		return
	}
	if d.visits != nil {
		for i, m := range p.visitBuf {
			if int(m) < len(d.visits) {
				w := p.weightBuf[i]
				n := bits.OnesCount32(m)
				d.visits[m] += w
				d.cardVisits[n] += w
				d.cardCounts[n]++
			}
		}
	}
	p.visitBuf = p.visitBuf[:0]
	p.weightBuf = p.weightBuf[:0]
	if len(p.utilBuf) > 0 {
		if d.utilRing == nil {
			d.utilRing = make([]float64, d.cfg.MaxUtilitySamples)
		}
		for _, u := range p.utilBuf {
			d.utilRing[d.utilNext] = u
			d.utilNext = (d.utilNext + 1) % len(d.utilRing)
			if d.utilLen < len(d.utilRing) {
				d.utilLen++
			}
		}
		p.utilBuf = p.utilBuf[:0]
	}
}

// Finalize computes the end-of-run estimators, refreshes the gauges, and
// emits the summary trace event. Called by the kernel when a solve
// loop ends; Engine users rely on Snapshot instead. Nil-safe.
func (d *Diag) Finalize() {
	if d == nil {
		return
	}
	s := d.Snapshot()
	if d.tracer != nil {
		v := s.BestUtility
		if s.DTV != nil && s.DTV.Samples > 0 {
			v = s.DTV.Estimate
		}
		d.tracer.Emit(obs.EvConvergence, "se", v, "summary")
	}
}

// Snapshot computes the live diagnostic state. Safe to call from any
// goroutine (the HTTP debug provider does) while the kernel is stepping:
// it only reads state the coordinator merged, never the probes' private
// buffers. It also refreshes the derived gauges. Nil-safe.
func (d *Diag) Snapshot() Snapshot {
	if d == nil {
		return Snapshot{TimeToEpsRounds: -1}
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	s := Snapshot{
		K:                d.info.K,
		Gamma:            d.info.Gamma,
		Beta:             d.info.Beta,
		BetaEff:          d.info.BetaEff,
		Epsilon:          d.cfg.Epsilon,
		Rounds:           d.rounds,
		ExplorerRounds:   d.explorerRounds,
		Swaps:            d.swaps,
		Resets:           d.resets,
		Improvements:     d.improvements,
		ProposalsStarved: d.starved,
		RaceErrors:       d.raceErrors,
		ScheduleStage:    d.schedStage,
		BestUtility:      d.bestUtil,
		HaveBest:         d.haveBest,
		Windows:          append([]Window(nil), d.windows...),
		History:          append([]ImprovePoint(nil), d.history...),
		Events:           append([]EventMark(nil), d.events...),
	}
	for _, e := range s.Events {
		if e.Kind == EventWarmStart {
			s.WarmStarts++
		}
	}
	if d.explorerRounds > 0 {
		s.SwapAcceptRate = float64(d.swaps) / float64(d.explorerRounds)
		s.ResetRate = float64(d.resets) / float64(d.explorerRounds)
	}
	s.TimeToEpsRounds = d.timeToEpsLocked()
	s.AutocorrLag1, s.IntegratedAutocorrTime, s.UtilitySamples = d.autocorrLocked()
	if d.target != nil {
		s.DTV = d.dtvLocked()
	}

	d.gTimeToEps.Set(float64(s.TimeToEpsRounds))
	d.gAC1.Set(s.AutocorrLag1)
	d.gTauInt.Set(s.IntegratedAutocorrTime)
	if s.DTV != nil {
		d.gDTV.Set(s.DTV.Estimate)
	}
	return s
}

// Digest is the scalar-only convergence summary a decision-journal
// entry embeds per epoch: everything an auditor needs to judge the
// solve's convergence without the windowed curves (which Snapshot
// still serves at /debug/convergence).
type Digest struct {
	Rounds          int64   `json:"rounds"`
	Improvements    int64   `json:"improvements"`
	TimeToEpsRounds int     `json:"time_to_eps_rounds"`
	ScheduleStage   int     `json:"schedule_stage,omitempty"`
	BestUtility     float64 `json:"best_utility"`
	HaveBest        bool    `json:"have_best"`
	WarmStarts      int     `json:"warm_starts,omitempty"`
}

// Digest returns the scalar convergence summary of the current run.
// Unlike Snapshot it copies no windows, history, or events — a few
// scalar reads under the mutex — so the serving loop can journal it
// every epoch without allocating. BestUtility is 0 (with HaveBest
// false) before any feasible solution, keeping the digest
// JSON-marshalable (the internal sentinel is -Inf). Nil-safe.
func (d *Diag) Digest() Digest {
	if d == nil {
		return Digest{TimeToEpsRounds: -1}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dg := Digest{
		Rounds:          d.rounds,
		Improvements:    d.improvements,
		TimeToEpsRounds: d.timeToEpsLocked(),
		ScheduleStage:   d.schedStage,
		HaveBest:        d.haveBest,
	}
	if d.haveBest {
		dg.BestUtility = d.bestUtil
	}
	for _, e := range d.events {
		if e.Kind == EventWarmStart {
			dg.WarmStarts++
		}
	}
	return dg
}

// timeToEpsLocked scans the improvement history backwards for the last
// excursion below the ε band around the final best; the next recorded
// level is when the run entered the band for good.
func (d *Diag) timeToEpsLocked() int {
	if !d.haveBest || len(d.history) == 0 {
		return -1
	}
	final := d.bestUtil
	band := d.cfg.Epsilon * math.Abs(final)
	thresh := final - band
	entered := d.history[0].Round
	for i := len(d.history) - 1; i >= 0; i-- {
		if d.history[i].Utility < thresh {
			if i+1 < len(d.history) {
				entered = d.history[i+1].Round
			} else {
				entered = d.history[i].Round
			}
			break
		}
		entered = d.history[i].Round
	}
	return entered
}

// autocorrLocked computes the lag-1 autocorrelation and the integrated
// autocorrelation time τ_int = 1 + 2·Σ ρ(l) of the winner-utility
// series, truncating the sum at the first non-positive ρ (Geyer's
// initial-positive rule, simplified) or MaxAutocorrLag.
func (d *Diag) autocorrLocked() (lag1, tauInt float64, n int) {
	n = d.utilLen
	if n < 8 {
		return 0, 0, n
	}
	// Reconstruct chronological order from the ring.
	xs := make([]float64, n)
	start := 0
	if n == len(d.utilRing) {
		start = d.utilNext
	}
	for i := 0; i < n; i++ {
		xs[i] = d.utilRing[(start+i)%len(d.utilRing)]
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	if v == 0 {
		return 0, 1, n
	}
	maxLag := d.cfg.MaxAutocorrLag
	if maxLag > n/4 {
		maxLag = n / 4
	}
	tauInt = 1
	for l := 1; l <= maxLag; l++ {
		var c float64
		for i := 0; i+l < n; i++ {
			c += (xs[i] - mean) * (xs[i+l] - mean)
		}
		rho := c / v
		if l == 1 {
			lag1 = rho
		}
		if rho <= 0 {
			break
		}
		tauInt += 2 * rho
	}
	return lag1, tauInt, n
}

// Probe is one explorer's private diagnostic buffer. During a segment it
// is owned by exactly one worker goroutine; the coordinator drains it at
// the merge (the stepSegment WaitGroup orders the accesses). All methods
// are nil-safe so the kernel can keep a nil probe on explorers that have
// nothing to record.
type Probe struct {
	d           *Diag
	trackVisits bool
	trackUtil   bool

	masks     []uint32
	active    []bool
	visitBuf  []uint32
	weightBuf []float64
	utilBuf   []float64
}

// NewProbe registers a probe for explorer id with the given thread
// count. Returns nil — no hot-path cost at all — when the explorer has
// nothing to record: visit tracking is off (instance too large) and the
// explorer is not the utility-series source (explorer 0). Nil-safe.
func (d *Diag) NewProbe(id, numThreads int) *Probe {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	trackVisits := d.target != nil
	trackUtil := id == 0
	if !trackVisits && !trackUtil {
		return nil
	}
	p := &Probe{d: d, trackVisits: trackVisits, trackUtil: trackUtil}
	if trackVisits {
		p.masks = make([]uint32, numThreads)
		p.active = make([]bool, numThreads)
	}
	d.probes = append(d.probes, p)
	return p
}

// TracksVisits reports whether RecordRound has work to do; the kernel
// uses it to pick the instrumented stepping loop. Nil-safe.
func (p *Probe) TracksVisits() bool { return p != nil && p.trackVisits }

// SetThread installs thread i's current selection mask and activity;
// called at probe construction, never during a segment. Nil-safe.
func (p *Probe) SetThread(i int, mask uint64, active bool) {
	if p == nil || !p.trackVisits || i >= len(p.masks) {
		return
	}
	p.masks[i] = uint32(mask)
	p.active[i] = active
}

// RecordSwap maintains thread's incremental mask across an executed
// swap and appends the winner's post-swap utility to the series buffer.
// Hot path: two slice ops at most. Nil-safe.
func (p *Probe) RecordSwap(thread, outPos, inPos int, util float64) {
	if p == nil {
		return
	}
	if p.trackVisits && thread < len(p.masks) {
		p.masks[thread] ^= 1<<uint(outPos) | 1<<uint(inPos)
	}
	if p.trackUtil {
		p.utilBuf = append(p.utilBuf, util)
	}
}

// RecordRound appends one dwell sample per active thread, each carrying
// the round's dwell weight. Counting rounds measures the embedded jump
// chain, whose occupancy is ∝ π(x)·Σrates(x) — at boosted β the chain
// dwells at the mode (tiny total rate) while the jump chain executes one
// swap per round and bounces off, so raw counts diverge from Gibbs. The
// kernel passes weight = 1/Σw (the expected holding time before the next
// race fires); weighting each sample by it recovers the continuous-time
// occupancy, which is the stationary law the target enumerates. Rounds
// on the log-rate fallback path pass weight 1 (the absolute scale of a
// single round is irrelevant there and extreme-β instances never run the
// pinning). Only called when TracksVisits. Nil-safe.
func (p *Probe) RecordRound(weight float64) {
	if p == nil || !p.trackVisits {
		return
	}
	for i, m := range p.masks {
		if p.active[i] {
			p.visitBuf = append(p.visitBuf, m)
			p.weightBuf = append(p.weightBuf, weight)
		}
	}
}
