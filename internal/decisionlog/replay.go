package decisionlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"mvcom/internal/core"
)

// ErrNotReplayable marks entries the verifier must skip: decisions whose
// solver kind is not deterministic from the recorded inputs (opaque
// schedulers, distributed runs with the adaptive schedule or dynamic
// events, the accept-all baseline which has no solver to re-run).
var ErrNotReplayable = errors.New("decisionlog: entry is not replayable")

// Replay re-runs the recorded decision from the entry's inputs and
// returns the reproduced solution. The replay-equivalence contract:
// for KindSE the solver is rebuilt from the fingerprint (including the
// warm-start path when Warm is set) and must walk the identical RNG
// stream; for KindDist each task record is re-run as an engine stepped
// exactly Iterations rounds under the task's seed. In both cases the
// result must match the entry bit-identically — same selected indices,
// same float64 utility — because the solve is a deterministic function
// of (instance, config, seed) and the utility a deterministic fold over
// the selection in index order.
func Replay(e *Entry) (core.Solution, error) {
	if e.Schema > SchemaVersion {
		return core.Solution{}, fmt.Errorf("decisionlog: entry schema %d newer than supported %d", e.Schema, SchemaVersion)
	}
	if e.NonReplayable != "" {
		return core.Solution{}, fmt.Errorf("%w (%s)", ErrNotReplayable, e.NonReplayable)
	}
	in := e.Instance()
	switch e.Solver.Kind {
	case KindSE:
		se := core.NewSE(e.Solver.SEConfig())
		if e.Warm {
			prev := core.Solution{Selected: selectionMask(e.WarmPrev, len(e.Shards))}
			sol, _, err := se.SolveFrom(in, prev)
			return sol, err
		}
		sol, _, err := se.Solve(in)
		return sol, err
	case KindDist:
		return replayDist(e, in)
	default:
		return core.Solution{}, fmt.Errorf("%w (kind %q)", ErrNotReplayable, e.Solver.Kind)
	}
}

// replayDist re-runs every task of a distributed decision and picks the
// best, mirroring the coordinator's strict-greater first-wins rule.
// Each successful task must itself reproduce bit-identically; the
// decision then falls out of the same max.
func replayDist(e *Entry, in core.Instance) (core.Solution, error) {
	if len(e.Tasks) == 0 {
		return core.Solution{}, fmt.Errorf("%w (dist entry has no task records)", ErrNotReplayable)
	}
	if e.Solver.Adaptive {
		// An adaptive engine's trajectory depends on wall-clock-paced
		// schedule advances, not just total rounds; the recorder should
		// have set NonReplayable, but guard here too.
		return core.Solution{}, fmt.Errorf("%w (adaptive-dist)", ErrNotReplayable)
	}
	var best core.Solution
	have := false
	for _, t := range e.Tasks {
		if t.Err != "" || t.Selected == nil {
			continue
		}
		cfg := core.SEConfig{
			Beta:     e.Solver.Beta,
			Tau:      e.Solver.Tau,
			Gamma:    e.Solver.Gamma,
			Workers:  e.Solver.Workers,
			Adaptive: e.Solver.Adaptive,
			Seed:     t.Seed,
		}
		eng, err := core.NewEngine(in, cfg)
		if err != nil {
			return core.Solution{}, fmt.Errorf("decisionlog: replay task %s: %w", t.TaskID, err)
		}
		eng.StepN(t.Iterations)
		sol, err := eng.Best()
		if err != nil {
			return core.Solution{}, fmt.Errorf("decisionlog: replay task %s: %w", t.TaskID, err)
		}
		if sol.Utility != t.Utility || !sameIndices(sol.Indices(), t.Selected) {
			return core.Solution{}, fmt.Errorf("decisionlog: replay task %s diverged: got utility %v selected %v, recorded %v %v",
				t.TaskID, sol.Utility, sol.Indices(), t.Utility, t.Selected)
		}
		if !have || sol.Utility > best.Utility {
			best, have = sol, true
		}
	}
	if !have {
		return core.Solution{}, fmt.Errorf("%w (no successful task records)", ErrNotReplayable)
	}
	return best, nil
}

// sameIndices compares two ascending index slices, treating nil and
// empty as equal.
func sameIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Verify replays an entry and asserts the reproduction is bit-identical
// to the recorded decision. A nil error means the entry is proven
// faithful; ErrNotReplayable (check with errors.Is) means the entry is
// legitimately unverifiable and should be counted as skipped, not
// failed.
func Verify(e *Entry) error {
	sol, err := Replay(e)
	if err != nil {
		return err
	}
	if sol.Utility != e.Utility {
		return fmt.Errorf("decisionlog: epoch %d replay utility %v != recorded %v", e.Epoch, sol.Utility, e.Utility)
	}
	if !sameIndices(sol.Indices(), e.Selected) {
		return fmt.Errorf("decisionlog: epoch %d replay selected %v != recorded %v", e.Epoch, sol.Indices(), e.Selected)
	}
	if e.Solver.Kind == KindSE && (sol.Load != e.Load || sol.Count != e.Count) {
		return fmt.Errorf("decisionlog: epoch %d replay load/count %d/%d != recorded %d/%d",
			e.Epoch, sol.Load, sol.Count, e.Load, e.Count)
	}
	return nil
}

// VerifyStats summarizes a verification pass over a journal.
type VerifyStats struct {
	Entries  int      `json:"entries"`
	Replayed int      `json:"replayed"`
	Skipped  int      `json:"skipped"`
	Failed   int      `json:"failed"`
	Errors   []string `json:"errors,omitempty"`
}

// Ok reports whether every replayable entry verified.
func (s VerifyStats) Ok() bool { return s.Failed == 0 }

// VerifyAll verifies every entry, partitioning them into replayed
// (proven bit-identical), skipped (ErrNotReplayable), and failed
// (divergence or replay error, messages collected in Errors).
func VerifyAll(entries []Entry) VerifyStats {
	st := VerifyStats{Entries: len(entries)}
	for i := range entries {
		switch err := Verify(&entries[i]); {
		case err == nil:
			st.Replayed++
		case errors.Is(err, ErrNotReplayable):
			st.Skipped++
		default:
			st.Failed++
			st.Errors = append(st.Errors, err.Error())
		}
	}
	return st
}

// ReadFile decodes one journal segment (JSON lines). Unknown fields are
// ignored; entries from a newer schema are returned as-is (Replay
// rejects them).
func ReadFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("decisionlog: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("decisionlog: %s:%d: %w", path, line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("decisionlog: %s: %w", path, err)
	}
	return out, nil
}

// ReadDir decodes every segment in a journal directory, oldest segment
// first, so entries come back in append order.
func ReadDir(dir string) ([]Entry, error) {
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("decisionlog: %w", err)
	}
	var out []Entry
	for _, s := range segs {
		es, err := ReadFile(s)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	return out, nil
}

// VerifyDir reads and verifies a whole journal directory — the CI-gate
// entry point used by mvcom-soak and mvcom-cluster.
func VerifyDir(dir string) (VerifyStats, error) {
	entries, err := ReadDir(dir)
	if err != nil {
		return VerifyStats{}, err
	}
	return VerifyAll(entries), nil
}
