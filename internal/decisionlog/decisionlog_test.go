package decisionlog

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mvcom/internal/core"
	"mvcom/internal/obs"
)

// testInstance is a small deterministic scheduling instance with one
// straggler and a tight-enough capacity that the solver must choose.
func testInstance() core.Instance {
	return core.Instance{
		Sizes:     []int{120, 100, 80, 60, 40, 500},
		Latencies: []float64{5, 10, 15, 20, 25, 90},
		DDL:       50,
		Alpha:     1,
		Capacity:  260,
		Nmin:      2,
	}
}

// solveEntry runs a fresh SE solve over testInstance and records it as
// a journal entry the way the pipeline does.
func solveEntry(t *testing.T, epoch int, seed int64) Entry {
	t.Helper()
	in := testInstance()
	se := core.NewSE(core.SEConfig{Seed: seed, MaxIters: 2000})
	sol, _, err := se.Solve(in)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	e := Entry{
		Epoch:    epoch,
		DDL:      in.DDL,
		Alpha:    in.Alpha,
		Capacity: in.Capacity,
		Nmin:     in.Nmin,
		Solver:   FingerprintSE(se.Config()),
		Selected: sol.Indices(),
		Utility:  sol.Utility,
		Load:     sol.Load,
		Count:    sol.Count,
	}
	for i := range in.Sizes {
		e.Shards = append(e.Shards, ShardRecord{
			Committee: i, Size: in.Sizes[i], Latency: in.Latencies[i], Age: in.Age(i),
		})
	}
	e.Marginals = core.Marginals(&in, sol)
	e.Rejected = core.RejectedCounterfactuals(&in, sol, 3)
	return e
}

func TestFingerprintRoundTrip(t *testing.T) {
	cfg := core.NewSE(core.SEConfig{Seed: 7, Beta: 3, Gamma: 2, Workers: 4}).Config()
	got := FingerprintSE(cfg).SEConfig()
	if got != cfg {
		t.Fatalf("fingerprint round-trip changed config:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestReplaySEBitIdentical(t *testing.T) {
	e := solveEntry(t, 1, 42)
	sol, err := Replay(&e)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if sol.Utility != e.Utility {
		t.Fatalf("replay utility %v != recorded %v", sol.Utility, e.Utility)
	}
	if err := Verify(&e); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestReplaySEWarmStart(t *testing.T) {
	in := testInstance()
	se := core.NewSE(core.SEConfig{Seed: 9, MaxIters: 2000, WarmStart: true})
	prevSel := []int{0, 1}
	prev := core.Solution{Selected: selectionMask(prevSel, len(in.Sizes))}
	sol, _, err := se.SolveFrom(in, prev)
	if err != nil {
		t.Fatalf("solve from: %v", err)
	}
	e := Entry{
		Epoch: 2, DDL: in.DDL, Alpha: in.Alpha, Capacity: in.Capacity, Nmin: in.Nmin,
		Solver: FingerprintSE(se.Config()),
		Warm:   true, WarmPrev: prevSel,
		Selected: sol.Indices(), Utility: sol.Utility, Load: sol.Load, Count: sol.Count,
	}
	for i := range in.Sizes {
		e.Shards = append(e.Shards, ShardRecord{Committee: i, Size: in.Sizes[i], Latency: in.Latencies[i]})
	}
	if err := Verify(&e); err != nil {
		t.Fatalf("warm-start verify: %v", err)
	}
}

func TestReplayDistBitIdentical(t *testing.T) {
	in := testInstance()
	cfg := core.SEConfig{Beta: 2, Gamma: 1, Workers: 2}
	var tasks []TaskRecord
	var bestU float64
	var bestSel []int
	var bestLoad, bestCount int
	for g := 0; g < 3; g++ {
		seed := int64(11 + g*7919)
		eng, err := core.NewEngine(in, core.SEConfig{
			Beta: cfg.Beta, Gamma: cfg.Gamma, Workers: cfg.Workers, Seed: seed,
		})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		eng.StepN(500)
		sol, err := eng.Best()
		if err != nil {
			t.Fatalf("best: %v", err)
		}
		tasks = append(tasks, TaskRecord{
			TaskID: "task", Seed: seed, Iterations: eng.Iterations(),
			Utility: sol.Utility, Selected: sol.Indices(),
		})
		if bestSel == nil || sol.Utility > bestU {
			bestU, bestSel, bestLoad, bestCount = sol.Utility, sol.Indices(), sol.Load, sol.Count
		}
	}
	fp := FingerprintSE(cfg)
	fp.Kind = KindDist
	e := Entry{
		Epoch: 3, DDL: in.DDL, Alpha: in.Alpha, Capacity: in.Capacity, Nmin: in.Nmin,
		Solver: fp, Tasks: tasks,
		Selected: bestSel, Utility: bestU, Load: bestLoad, Count: bestCount,
	}
	for i := range in.Sizes {
		e.Shards = append(e.Shards, ShardRecord{Committee: i, Size: in.Sizes[i], Latency: in.Latencies[i]})
	}
	if err := Verify(&e); err != nil {
		t.Fatalf("dist verify: %v", err)
	}

	// A tampered task record must be caught.
	e.Tasks[0].Utility += 1
	if err := Verify(&e); err == nil {
		t.Fatal("tampered dist entry verified")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	e := solveEntry(t, 4, 5)
	e.Utility += 0.5
	if err := Verify(&e); err == nil {
		t.Fatal("tampered utility verified")
	}
	e = solveEntry(t, 4, 5)
	if len(e.Selected) > 0 {
		e.Selected = e.Selected[1:]
		if err := Verify(&e); err == nil {
			t.Fatal("tampered selection verified")
		}
	}
}

func TestNonReplayableKinds(t *testing.T) {
	for _, e := range []Entry{
		{Solver: SolverFingerprint{Kind: KindAcceptAll}},
		{Solver: SolverFingerprint{Kind: KindOpaque}},
		{Solver: SolverFingerprint{Kind: KindSE}, NonReplayable: "events"},
		{Solver: SolverFingerprint{Kind: KindDist}},
	} {
		if _, err := Replay(&e); !errors.Is(err, ErrNotReplayable) {
			t.Fatalf("kind %q nonReplayable %q: err = %v, want ErrNotReplayable",
				e.Solver.Kind, e.NonReplayable, err)
		}
	}
	st := VerifyAll([]Entry{{Solver: SolverFingerprint{Kind: KindOpaque}}})
	if st.Skipped != 1 || st.Failed != 0 || st.Replayed != 0 {
		t.Fatalf("VerifyAll stats = %+v, want 1 skipped", st)
	}
}

func TestNewerSchemaRejected(t *testing.T) {
	e := solveEntry(t, 5, 1)
	e.Schema = SchemaVersion + 1
	if _, err := Replay(&e); err == nil {
		t.Fatal("newer-schema entry replayed")
	}
}

func TestJournalRoundTripAndVerifyDir(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e := solveEntry(t, i, int64(100+i))
		if err := j.Append(&e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("read %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Schema != SchemaVersion || e.Epoch != i {
			t.Fatalf("entry %d: schema %d epoch %d", i, e.Schema, e.Epoch)
		}
	}
	st, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 5 || st.Replayed != 5 || !st.Ok() {
		t.Fatalf("VerifyDir stats = %+v, want 5/5 replayed", st)
	}
}

func TestJournalRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, MaxSegmentBytes: 512, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := solveEntry(t, 0, 3)
	for i := 0; i < 40; i++ {
		e.Epoch = i
		if err := j.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("retained %d segments, want <= 2: %v", len(segs), segs)
	}
	// Pruned history must still read cleanly and verify.
	if st, err := VerifyDir(dir); err != nil || !st.Ok() {
		t.Fatalf("pruned journal verify: %+v err=%v", st, err)
	}
}

func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := solveEntry(t, 0, 8)
	if err := j.Append(&e); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.Epoch = 1
	if err := j2.Append(&e); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	entries, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Epoch != 0 || entries[1].Epoch != 1 {
		t.Fatalf("resumed journal entries: %+v", entries)
	}
	segs, _ := segmentFiles(dir)
	if len(segs) != 1 {
		t.Fatalf("resume opened a new segment: %v", segs)
	}
}

func TestNilJournalIsOff(t *testing.T) {
	var j *Journal
	if e := j.Acquire(); e != nil {
		t.Fatal("nil journal Acquire returned an entry")
	}
	if err := j.Append(&Entry{}); err != nil {
		t.Fatalf("nil journal Append: %v", err)
	}
	j.ReplayVerified(false)
	if err := j.Sync(); err != nil {
		t.Fatalf("nil journal Sync: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil journal Close: %v", err)
	}
	if d := j.Dir(); d != "" {
		t.Fatalf("nil journal Dir = %q", d)
	}
}

func TestJournalInstrumentsAndDebug(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, Registry: reg, RecentEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 3; i++ {
		e := solveEntry(t, i, int64(i))
		e.TraceID = 77
		if err := j.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	j.ReplayVerified(true)
	j.ReplayVerified(false)

	if got := reg.Counter("mvcom_decision_entries_total", "").Value(); got != 3 {
		t.Fatalf("entries counter = %d, want 3", got)
	}
	if got := reg.Gauge("mvcom_decision_bytes", "").Value(); got <= 0 {
		t.Fatalf("bytes gauge = %v, want > 0", got)
	}
	if got := reg.Counter("mvcom_decision_replays_total", "").Value(); got != 2 {
		t.Fatalf("replays counter = %d, want 2", got)
	}
	if got := reg.Counter("mvcom_decision_replay_failures_total", "").Value(); got != 1 {
		t.Fatalf("failures counter = %d, want 1", got)
	}

	fn := reg.DebugProvider("decisions")
	if fn == nil {
		t.Fatal("no decisions debug provider")
	}
	b, err := json.Marshal(fn())
	if err != nil {
		t.Fatalf("debug snapshot marshal: %v", err)
	}
	var snap struct {
		Entries int               `json:"entries"`
		Recent  []json.RawMessage `json:"recent"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Entries != 3 || len(snap.Recent) != 2 {
		t.Fatalf("debug snapshot entries=%d recent=%d, want 3 and 2 (ring bound)", snap.Entries, len(snap.Recent))
	}
	// Ring serves oldest-first: with bound 2 after 3 appends, epochs 1,2.
	var last Entry
	if err := json.Unmarshal(snap.Recent[len(snap.Recent)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Epoch != 2 {
		t.Fatalf("debug ring newest epoch = %d, want 2", last.Epoch)
	}

	// The EvDecision trace event carries the entry's TraceID.
	events, _ := reg.Tracer().Snapshot()
	found := false
	for _, ev := range events {
		if ev.Type == obs.EvDecision && ev.TraceID == 77 {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvDecision event with the entry's TraceID")
	}
}

func TestAcquireRecyclesPooledEntries(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Cycle more entries through Acquire/Append than the pool holds; the
	// writer must recycle them, and each Acquire must hand back a reset
	// entry even when a recycled one still carries old state.
	for i := 0; i < 10; i++ {
		e := j.Acquire()
		if e.Epoch != 0 || len(e.Shards) != 0 || len(e.Selected) != 0 {
			t.Fatalf("cycle %d: Acquire returned a dirty entry: %+v", i, e)
		}
		e.Epoch = i
		e.Shards = append(e.Shards, ShardRecord{Committee: 1})
		e.Selected = append(e.Selected, 0)
		if err := j.Append(e); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	// After a Sync barrier every pooled entry is back in the free list,
	// so a fresh Acquire sees recycled slice capacity, not a new alloc.
	reused := false
	for i := 0; i < 10; i++ {
		if e := j.Acquire(); cap(e.Shards) > 0 {
			reused = true
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reused {
		t.Fatal("Acquire never returned a recycled entry with retained capacity")
	}

	entries, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("journal holds %d entries, want >= 10", len(entries))
	}
	for i := 0; i < 10; i++ {
		if entries[i].Epoch != i {
			t.Fatalf("entry %d journaled out of order: epoch %d", i, entries[i].Epoch)
		}
	}
}

func TestReadFileErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "decisions-000000.jsonl")
	if err := os.WriteFile(bad, []byte("{\"schema\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("corrupt line error = %v, want line-2 decode failure", err)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}
