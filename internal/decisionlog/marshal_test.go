package decisionlog

import (
	"bytes"
	"encoding/json"
	"testing"

	"mvcom/internal/core"
	"mvcom/internal/seobs"
)

// marshalCases spans the encoder's branch space: zero values vs set
// omitempty fields, nil vs empty vs populated slices, warm serve-mode
// entries, distributed entries with failed tasks, strings needing JSON
// and HTML escaping, and floats that force the 'e' format.
func marshalCases() []Entry {
	return []Entry{
		{}, // zero entry: nil Shards/Selected render as null
		{
			Schema: SchemaVersion, Epoch: 1,
			Shards:   []ShardRecord{},
			Selected: []int{},
			Solver:   SolverFingerprint{Kind: KindAcceptAll},
		},
		{
			Schema: SchemaVersion, Epoch: 42, TraceID: 1234567890123,
			DDL: 2017.5, Alpha: 1.5, Capacity: 28410, Nmin: 3,
			Shards: []ShardRecord{
				{Committee: 0, Size: 4936, Latency: 986.4321, Age: 1031.1},
				{Committee: 7, Size: 1612, Latency: 2017.5, Age: 0, Deferrals: 2},
			},
			Solver: SolverFingerprint{
				Kind: KindSE, Seed: -7, Beta: 2, Tau: 0.5, Gamma: 25, Workers: 4,
				MaxIters: 20000, ConvergenceWindow: 600, SwapRetries: 8,
				InitRetries: 64, MaxCandidates: 32, MaxThreads: 1024,
				RawRates: true, WarmStart: true, Adaptive: true,
			},
			Warm: true, WarmPrev: []int{0, 1},
			NonReplayable: "events",
			Selected:      []int{0},
			Utility:       40520.125, Load: 28334, Count: 1, Iterations: 1999,
			Marginals: []core.Marginal{{Shard: 0, Utility: 6372.9, Binding: true}},
			Rejected: []core.Rejection{
				{Shard: 1, Value: 2418, Evicted: []int{0}, EvictedValue: 6372.9, NetGain: -3954.9, Feasible: true},
				{Shard: 1, Value: 1, NetGain: 1},
			},
			Deferrals: []DeferralEvent{
				{Committee: 7, Kind: Deferred, Deferrals: 1},
				{Committee: 9, Kind: Expired, Deferrals: 3, MaxDeferrals: 2},
			},
			Diag: &seobs.Digest{
				Rounds: 2000, Improvements: 37, TimeToEpsRounds: -1,
				ScheduleStage: 2, BestUtility: 40520.125, HaveBest: true, WarmStarts: 1,
			},
			Tasks: []TaskRecord{
				{TaskID: "task-0", Seed: 1, Iterations: 512, Utility: 40520.125, Selected: []int{0}},
				{TaskID: "task-1", Seed: 7920, Err: `worker died: "conn reset" <oops> & more`},
			},
		},
		{
			Schema: SchemaVersion, Epoch: 3,
			DDL: 1e-9, Alpha: 1e22, Utility: 1.25e-7, // 'e'-format floats
			Shards:        []ShardRecord{{Latency: 2.5e21, Age: -1e-8}},
			Solver:        SolverFingerprint{Kind: "kind\nwith\tescapes "},
			NonReplayable: "non-ascii: ε≤3%",
			Selected:      []int{},
		},
	}
}

// TestAppendEntryJSONMatchesEncodingJSON pins the hand-rolled encoder
// byte-for-byte to encoding/json over Entry's struct tags: the schema
// is whatever reflection would have produced, so readers and old
// journals cannot tell the difference.
func TestAppendEntryJSONMatchesEncodingJSON(t *testing.T) {
	for i, e := range marshalCases() {
		want, err := json.Marshal(&e)
		if err != nil {
			t.Fatalf("case %d: reference marshal: %v", i, err)
		}
		got := appendEntryJSON(nil, &e)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: encoder diverged\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestAppendEntryJSONRoundTrips proves a hand-encoded entry decodes
// back to an identical value through the package's own reader types.
func TestAppendEntryJSONRoundTrips(t *testing.T) {
	for i, e := range marshalCases() {
		var dec Entry
		if err := json.Unmarshal(appendEntryJSON(nil, &e), &dec); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		ref, _ := json.Marshal(&e)
		var want Entry
		if err := json.Unmarshal(ref, &want); err != nil {
			t.Fatalf("case %d: reference decode: %v", i, err)
		}
		gotJSON, _ := json.Marshal(&dec)
		wantJSON, _ := json.Marshal(&want)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("case %d: round trip diverged\n got: %s\nwant: %s", i, gotJSON, wantJSON)
		}
	}
}

// benchEntry builds an entry shaped like the serve loop's steady state
// (BenchmarkEpochServeDecisionLog's pipeline: ~2 dozen live shards,
// a handful selected, top-8 counterfactuals, convergence digest).
func benchEntry() Entry {
	e := Entry{
		Schema: SchemaVersion, Epoch: 1000, TraceID: 123456789,
		DDL: 2017.5, Alpha: 1.5, Capacity: 28410, Nmin: 2,
		Solver: SolverFingerprint{Kind: KindSE, Seed: 7, MaxIters: 2000, ConvergenceWindow: 2000},
		Warm:   true, WarmPrev: []int{0, 1, 2, 3, 4, 5, 6},
		Utility: 40520.125, Load: 28334, Count: 7, Iterations: 2000,
		Diag: &seobs.Digest{Rounds: 2000, Improvements: 37, TimeToEpsRounds: 61, BestUtility: 40520.125, HaveBest: true},
	}
	for i := 0; i < 24; i++ {
		e.Shards = append(e.Shards, ShardRecord{Committee: i % 12, Size: 1000 + 37*i, Latency: 986.4321 + float64(i), Age: float64(i) * 1.5, Deferrals: i % 3})
	}
	for i := 0; i < 7; i++ {
		e.Selected = append(e.Selected, i)
		e.Marginals = append(e.Marginals, core.Marginal{Shard: i, Utility: 6372.9 + float64(i)})
	}
	for i := 0; i < 8; i++ {
		e.Rejected = append(e.Rejected, core.Rejection{Shard: 7 + i, Value: 2418.25, Evicted: []int{0, 1}, EvictedValue: 6372.9, NetGain: -3954.65, Feasible: true})
	}
	return e
}

// BenchmarkAppendEntryJSON isolates the hand-rolled encoder's cost on a
// steady-state entry.
func BenchmarkAppendEntryJSON(b *testing.B) {
	e := benchEntry()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendEntryJSON(buf[:0], &e)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

// BenchmarkJournalAppend measures the journal's full per-entry cost —
// acquire, copy-in, queue, render, batch-write, ring copy — which on a
// single-core host is the journal's entire serve-loop overhead.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	src := benchEntry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := j.Acquire()
		*e = Entry{
			Epoch: i, TraceID: src.TraceID, DDL: src.DDL, Alpha: src.Alpha,
			Capacity: src.Capacity, Nmin: src.Nmin,
			Shards: append(e.Shards[:0], src.Shards...),
			Solver: src.Solver, Warm: src.Warm,
			WarmPrev: append(e.WarmPrev[:0], src.WarmPrev...),
			Selected: append(e.Selected[:0], src.Selected...),
			Utility:  src.Utility, Load: src.Load, Count: src.Count, Iterations: src.Iterations,
			Marginals: append(e.Marginals[:0], src.Marginals...),
			Rejected:  append(e.Rejected[:0], src.Rejected...),
			Diag:      src.Diag,
			pooled:    e.pooled,
		}
		if err := j.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := j.Sync(); err != nil {
		b.Fatal(err)
	}
}
