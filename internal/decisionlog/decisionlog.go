// Package decisionlog is the decision-provenance layer: an append-only,
// schema-versioned epoch audit journal recording *why* each epoch's
// committee set was selected — the full scheduling inputs, the solver
// configuration fingerprint, the selected set with per-committee
// marginal utilities, the top rejected candidates with the utility an
// admission would have cost elsewhere, deferral/expiry events with
// their MaxDeferrals attribution, and the solve's convergence digest.
//
// The journal exists to be *checked*, not just read: every entry whose
// solver fingerprint names a deterministic kind ("se" or "dist" with
// the adaptive schedule off and no dynamic events) can be replayed —
// the SE solve re-run from the recorded inputs — and must reproduce the
// recorded selection and utility bit-identically (see replay.go).
// mvcom-soak and mvcom-cluster wire that as a CI gate, and
// cmd/mvcom-explain answers operator queries over journals offline.
//
// The package follows the repo's observer contracts: nil is off (a nil
// *Journal makes every method a no-op, so an unconfigured pipeline pays
// nothing), writes are bounded by size-based segment rotation, and the
// serve hot path stays cheap: Acquire hands out pooled entries and a
// background writer renders and persists them off the epoch loop, so
// journaling adds neither allocation pressure nor encode/write latency
// to the SE round loop.
package decisionlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"mvcom/internal/core"
	"mvcom/internal/obs"
	"mvcom/internal/seobs"
)

// SchemaVersion is stamped into every entry; readers reject entries
// from a newer schema instead of misinterpreting them.
const SchemaVersion = 1

// Solver fingerprint kinds.
const (
	// KindSE marks an in-process SE solve (core.SE.Solve / SolveFrom) —
	// replayable from the fingerprint alone.
	KindSE = "se"
	// KindDist marks a distributed session: per-task engine runs whose
	// max is the decision — replayable from the task records when the
	// adaptive schedule is off and no dynamic events fired.
	KindDist = "dist"
	// KindAcceptAll marks the no-scheduling baseline policy.
	KindAcceptAll = "accept-all"
	// KindOpaque marks a scheduler the journal cannot fingerprint (a
	// custom Scheduler implementation); recorded but never replayable.
	KindOpaque = "opaque"
)

// ShardRecord is one live committee's scheduling input, in instance
// index order (the entry's Selected/WarmPrev indices point into this
// slice).
type ShardRecord struct {
	// Committee is the stable committee identity across epochs.
	Committee int `json:"committee"`
	// Size is s_i, the shard's transaction count.
	Size int `json:"size"`
	// Latency is l_i, the two-phase latency in seconds.
	Latency float64 `json:"latency"`
	// Age is t_j − l_i under the entry's DDL.
	Age float64 `json:"age"`
	// Deferrals counts how many epochs this report has been carried.
	Deferrals int `json:"deferrals,omitempty"`
}

// SolverFingerprint pins the solver configuration an entry was decided
// under — everything Replay needs to rebuild the exact chain.
type SolverFingerprint struct {
	Kind              string  `json:"kind"`
	Seed              int64   `json:"seed,omitempty"`
	Beta              float64 `json:"beta,omitempty"`
	Tau               float64 `json:"tau,omitempty"`
	Gamma             int     `json:"gamma,omitempty"`
	Workers           int     `json:"workers,omitempty"`
	MaxIters          int     `json:"maxIters,omitempty"`
	ConvergenceWindow int     `json:"convergenceWindow,omitempty"`
	SwapRetries       int     `json:"swapRetries,omitempty"`
	InitRetries       int     `json:"initRetries,omitempty"`
	MaxCandidates     int     `json:"maxCandidates,omitempty"`
	MaxThreads        int     `json:"maxThreads,omitempty"`
	RawRates          bool    `json:"rawRates,omitempty"`
	WarmStart         bool    `json:"warmStart,omitempty"`
	Adaptive          bool    `json:"adaptive,omitempty"`
}

// FingerprintSE captures an SE solver's effective configuration (after
// defaulting — use core.SE.Config()).
func FingerprintSE(cfg core.SEConfig) SolverFingerprint {
	return SolverFingerprint{
		Kind:              KindSE,
		Seed:              cfg.Seed,
		Beta:              cfg.Beta,
		Tau:               cfg.Tau,
		Gamma:             cfg.Gamma,
		Workers:           cfg.Workers,
		MaxIters:          cfg.MaxIters,
		ConvergenceWindow: cfg.ConvergenceWindow,
		SwapRetries:       cfg.SwapRetries,
		InitRetries:       cfg.InitRetries,
		MaxCandidates:     cfg.MaxCandidates,
		MaxThreads:        cfg.MaxThreads,
		RawRates:          cfg.DisableRateNormalization,
		WarmStart:         cfg.WarmStart,
		Adaptive:          cfg.Adaptive,
	}
}

// SEConfig rebuilds the core configuration a fingerprint describes.
func (f SolverFingerprint) SEConfig() core.SEConfig {
	return core.SEConfig{
		Seed:                     f.Seed,
		Beta:                     f.Beta,
		Tau:                      f.Tau,
		Gamma:                    f.Gamma,
		Workers:                  f.Workers,
		MaxIters:                 f.MaxIters,
		ConvergenceWindow:        f.ConvergenceWindow,
		SwapRetries:              f.SwapRetries,
		InitRetries:              f.InitRetries,
		MaxCandidates:            f.MaxCandidates,
		MaxThreads:               f.MaxThreads,
		DisableRateNormalization: f.RawRates,
		WarmStart:                f.WarmStart,
		Adaptive:                 f.Adaptive,
	}
}

// DeferralEvent kinds.
const (
	// Deferred marks a refused shard carried to the next epoch.
	Deferred = "deferred"
	// Expired marks a refused shard dropped because its deferral count
	// exceeded MaxDeferrals.
	Expired = "expired"
)

// DeferralEvent records one refused committee's fate this epoch.
type DeferralEvent struct {
	Committee int    `json:"committee"`
	Kind      string `json:"kind"`
	// Deferrals is the count after this epoch's carry (the count the
	// expiry rule compared against MaxDeferrals).
	Deferrals int `json:"deferrals"`
	// MaxDeferrals attributes an expiry to the configured bound; zero on
	// "deferred" events.
	MaxDeferrals int `json:"maxDeferrals,omitempty"`
}

// TaskRecord is one distributed task's deterministic replay unit.
type TaskRecord struct {
	TaskID     string  `json:"taskId"`
	Seed       int64   `json:"seed"`
	Iterations int     `json:"iterations"`
	Utility    float64 `json:"utility"`
	// Selected is the task's best selection as instance indices; nil
	// when the task failed.
	Selected []int  `json:"selected,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Entry is one epoch's full decision record.
type Entry struct {
	Schema int `json:"schema"`
	Epoch  int `json:"epoch"`
	// TraceID is the epoch root span's trace, joining this entry to the
	// causal timeline (zero when tracing is off).
	TraceID uint64 `json:"traceId,omitempty"`

	// Instance inputs: DDL/Alpha/Capacity/Nmin plus the per-shard rows.
	DDL      float64       `json:"ddl"`
	Alpha    float64       `json:"alpha"`
	Capacity int           `json:"capacity"`
	Nmin     int           `json:"nmin"`
	Shards   []ShardRecord `json:"shards"`

	Solver SolverFingerprint `json:"solver"`
	// Warm marks a serve-mode epoch solved via SolveFrom; WarmPrev is
	// the previous selection projected onto this epoch's instance
	// indices (the exact seed handed to the warm start).
	Warm     bool  `json:"warm,omitempty"`
	WarmPrev []int `json:"warmPrev,omitempty"`
	// NonReplayable, when non-empty, names why Replay must skip this
	// entry ("events", "adaptive-dist", "opaque", ...).
	NonReplayable string `json:"nonReplayable,omitempty"`

	// The decision: selected instance indices plus the solution terms.
	Selected   []int   `json:"selected"`
	Utility    float64 `json:"utility"`
	Load       int     `json:"load"`
	Count      int     `json:"count"`
	Iterations int     `json:"iterations,omitempty"`

	// Counterfactuals: per-committee marginal utilities of the selected
	// set and the top rejected candidates with their admission cost.
	Marginals []core.Marginal  `json:"marginals,omitempty"`
	Rejected  []core.Rejection `json:"rejected,omitempty"`

	// Deferrals records this epoch's carry/expiry outcomes.
	Deferrals []DeferralEvent `json:"deferrals,omitempty"`

	// Diag is the solve's scalar convergence digest (rounds-to-ε,
	// schedule stage, warm-start count).
	Diag *seobs.Digest `json:"diag,omitempty"`

	// Tasks holds the per-task records of a distributed decision.
	Tasks []TaskRecord `json:"tasks,omitempty"`

	// pooled marks entries owned by the journal's Acquire pool: they are
	// written asynchronously by the background writer and then recycled.
	// Caller-constructed entries (pooled false) are written before
	// Append returns, since the caller keeps ownership.
	pooled bool
}

// Instance rebuilds the scheduling instance the entry was decided on.
func (e *Entry) Instance() core.Instance {
	in := core.Instance{
		Sizes:     make([]int, len(e.Shards)),
		Latencies: make([]float64, len(e.Shards)),
		DDL:       e.DDL,
		Alpha:     e.Alpha,
		Capacity:  e.Capacity,
		Nmin:      e.Nmin,
	}
	for i, s := range e.Shards {
		in.Sizes[i] = s.Size
		in.Latencies[i] = s.Latency
	}
	return in
}

// selectionMask expands instance indices into a selection vector.
func selectionMask(indices []int, n int) []bool {
	mask := make([]bool, n)
	for _, i := range indices {
		if i >= 0 && i < n {
			mask[i] = true
		}
	}
	return mask
}

// reset truncates the entry's slices in place (capacity kept) and
// zeroes the scalars, readying it for reuse by the serve loop.
func (e *Entry) reset() {
	*e = Entry{
		Shards:    e.Shards[:0],
		Selected:  e.Selected[:0],
		WarmPrev:  e.WarmPrev[:0],
		Marginals: e.Marginals[:0],
		Rejected:  e.Rejected[:0],
		Deferrals: e.Deferrals[:0],
		Tasks:     e.Tasks[:0],
		pooled:    e.pooled,
	}
}

// Options configures a Journal.
type Options struct {
	// Dir is the journal directory; segments are named
	// decisions-NNNNNN.jsonl. Required.
	Dir string
	// MaxSegmentBytes rotates the active segment once it would exceed
	// this size. Default 4 MiB.
	MaxSegmentBytes int64
	// MaxSegments bounds the retained segment count; the oldest segment
	// is removed when rotation would exceed it. Default 8.
	MaxSegments int
	// RecentEntries bounds the in-memory ring served at
	// /debug/decisions. Default 32.
	RecentEntries int
	// Registry, when non-nil, receives the mvcom_decision_* instruments,
	// the "decisions" debug provider, and EvDecision trace events.
	Registry *obs.Registry
}

// Journal is an append-only, size-rotated epoch decision journal.
// Append is safe for concurrent use; an entry handed out by Acquire is
// owned by one goroutine at a time (the serve loop is single-goroutine,
// which is the intended user), and Sync/Close expect appends to have
// quiesced.
type Journal struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	maxSegs  int
	f        *os.File
	segIndex int
	segBytes int64
	line     []byte
	// wbuf batches rendered lines between flushes so steady-state
	// appends pay no per-entry write syscall; it drains to the active
	// segment when it exceeds wbufFlushBytes, on rotation, on Sync, and
	// on Close (a crash can lose at most one unflushed batch — Sync is
	// the durability point).
	wbuf   []byte
	detail []byte
	closed bool

	// Background writer state: pooled entries cycle Acquire → Append →
	// pending → writeEntry → free; werr is the sticky asynchronous
	// write error, surfaced by the next Append or Sync.
	free    chan *Entry
	pending chan writeMsg
	quit    chan struct{}
	wdone   chan struct{}
	werr    error

	totalBytes int64
	recent     []json.RawMessage
	recentNext int

	cEntries      *obs.Counter
	gBytes        *obs.Gauge
	cReplays      *obs.Counter
	cReplayFailed *obs.Counter
	tracer        *obs.Tracer
}

// segmentName formats one segment's file name.
func segmentName(i int) string { return fmt.Sprintf("decisions-%06d.jsonl", i) }

// segmentFiles lists a directory's journal segments in index order.
func segmentFiles(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "decisions-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Open creates (or resumes) a journal in opts.Dir. A directory holding
// earlier segments is continued: the highest-numbered segment is
// appended to until it rotates.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("decisionlog: Options.Dir is required")
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 4 << 20
	}
	if opts.MaxSegments <= 0 {
		opts.MaxSegments = 8
	}
	if opts.RecentEntries <= 0 {
		opts.RecentEntries = 32
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("decisionlog: %w", err)
	}
	j := &Journal{
		dir:      opts.Dir,
		maxBytes: opts.MaxSegmentBytes,
		maxSegs:  opts.MaxSegments,
		recent:   make([]json.RawMessage, 0, opts.RecentEntries),
	}
	segs, err := segmentFiles(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("decisionlog: %w", err)
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		fmt.Sscanf(filepath.Base(last), "decisions-%06d.jsonl", &j.segIndex)
		st, err := os.Stat(last)
		if err != nil {
			return nil, fmt.Errorf("decisionlog: %w", err)
		}
		j.segBytes = st.Size()
		for _, s := range segs {
			if st, err := os.Stat(s); err == nil {
				j.totalBytes += st.Size()
			}
		}
	}
	f, err := os.OpenFile(filepath.Join(opts.Dir, segmentName(j.segIndex)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("decisionlog: %w", err)
	}
	j.f = f
	if reg := opts.Registry; reg != nil {
		j.cEntries = reg.Counter("mvcom_decision_entries_total", "epoch decision-journal entries appended")
		j.gBytes = reg.Gauge("mvcom_decision_bytes", "decision-journal bytes retained on disk across segments")
		j.cReplays = reg.Counter("mvcom_decision_replays_total", "decision-journal replay verifications executed")
		j.cReplayFailed = reg.Counter("mvcom_decision_replay_failures_total", "decision-journal replays that diverged from the recorded decision")
		j.tracer = reg.Tracer()
		reg.RegisterDebug("decisions", j.debugSnapshot)
	}
	j.gBytes.Set(float64(j.totalBytes))
	j.free = make(chan *Entry, entryPool)
	for i := 0; i < entryPool; i++ {
		j.free <- &Entry{pooled: true}
	}
	j.pending = make(chan writeMsg, entryPool)
	j.quit = make(chan struct{})
	j.wdone = make(chan struct{})
	go j.writer()
	return j, nil
}

// entryPool sizes the Acquire pool and the writer queue: the serve
// loop can run this many epochs ahead of the disk before an Append
// blocks.
const entryPool = 4

// Dir returns the journal directory ("" for nil).
func (j *Journal) Dir() string {
	if j == nil {
		return ""
	}
	return j.dir
}

// Acquire returns a pooled entry — slices truncated, scalars zeroed —
// for the serve loop to fill and hand back to Append, which recycles
// it once the background writer has persisted it. Returns nil on a nil
// journal (the caller's nil check is the single branch the disabled
// path pays).
func (j *Journal) Acquire() *Entry {
	if j == nil {
		return nil
	}
	select {
	case e := <-j.free:
		e.reset()
		return e
	default:
		// The pool ran dry (an error path dropped an acquired entry, or
		// the writer is several epochs behind); grow instead of blocking
		// the serve loop. The new entry rejoins the pool after writing.
		return &Entry{pooled: true}
	}
}

// Append journals one entry: schema-stamps it and hands it to the
// background writer, which renders the JSON line, appends it to the
// active segment (rotating by size first), pushes it onto the recent
// ring, updates the instruments, and emits an EvDecision trace event
// carrying the entry's TraceID.
//
// Entries that came from Acquire are queued and written asynchronously
// so the epoch serve loop never pays the encode or the write syscall;
// a write failure is sticky and surfaces on the next Append or Sync —
// still loud, one epoch late. Caller-constructed entries are written
// before Append returns (the caller keeps ownership), through the same
// ordered queue. Nil-safe (both receiver and entry).
func (j *Journal) Append(e *Entry) error {
	if j == nil || e == nil {
		return nil
	}
	e.Schema = SchemaVersion
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("decisionlog: journal closed")
	}
	werr := j.werr
	j.mu.Unlock()
	if werr != nil {
		return werr
	}
	if e.pooled {
		j.pending <- writeMsg{e: e}
		return nil
	}
	done := make(chan error, 1)
	j.pending <- writeMsg{e: e, done: done}
	return <-done
}

// writeMsg is one unit of writer work: an entry to journal (with an
// optional completion ack for synchronous appends) or, with a nil
// entry, a flush request.
type writeMsg struct {
	e    *Entry
	done chan error
}

// writer is the journal's background goroutine: it drains the pending
// queue in order, so journal entries land on disk in append order even
// when synchronous and asynchronous appends interleave.
func (j *Journal) writer() {
	defer close(j.wdone)
	for {
		select {
		case m := <-j.pending:
			j.handle(m)
		case <-j.quit:
			for {
				select {
				case m := <-j.pending:
					j.handle(m)
				default:
					return
				}
			}
		}
	}
}

func (j *Journal) handle(m writeMsg) {
	var err error
	if m.e != nil {
		err = j.writeEntry(m.e)
		if err != nil {
			j.mu.Lock()
			if j.werr == nil {
				j.werr = err
			}
			j.mu.Unlock()
		}
		if m.e.pooled {
			select {
			case j.free <- m.e:
			default:
			}
		}
	} else {
		j.mu.Lock()
		err = j.werr
		if err == nil && j.f != nil && !j.closed {
			if err = j.flushLocked(); err == nil {
				err = j.f.Sync()
			}
		}
		j.mu.Unlock()
	}
	if m.done != nil {
		m.done <- err
	}
}

// wbufFlushBytes drains the write batch to the segment file once it
// grows past this size.
const wbufFlushBytes = 64 << 10

// writeEntry renders and appends one entry under the journal lock.
func (j *Journal) writeEntry(e *Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("decisionlog: journal closed")
	}
	j.line = appendEntryJSON(j.line[:0], e)
	j.line = append(j.line, '\n')
	line := j.line
	if j.segBytes > 0 && j.segBytes+int64(len(line)) > j.maxBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	j.wbuf = append(j.wbuf, line...)
	if len(j.wbuf) > wbufFlushBytes {
		if err := j.flushLocked(); err != nil {
			return err
		}
	}
	j.segBytes += int64(len(line))
	j.totalBytes += int64(len(line))

	// Recycle the ring slot's backing array (debugSnapshot deep-copies
	// on read, so a served snapshot never aliases a live slot).
	if len(j.recent) < cap(j.recent) {
		j.recent = append(j.recent, append(json.RawMessage(nil), line...))
	} else {
		j.recent[j.recentNext] = append(j.recent[j.recentNext][:0], line...)
		j.recentNext = (j.recentNext + 1) % len(j.recent)
	}

	j.cEntries.Inc()
	j.gBytes.Set(float64(j.totalBytes))
	if j.tracer != nil {
		j.detail = append(j.detail[:0], "utility="...)
		j.detail = strconv.AppendFloat(j.detail, e.Utility, 'g', -1, 64)
		j.tracer.EmitSpan(obs.EvDecision, "epoch", float64(e.Epoch),
			string(j.detail), obs.SpanContext{TraceID: e.TraceID})
	}
	return nil
}

// flushLocked drains the write batch to the active segment.
func (j *Journal) flushLocked() error {
	if len(j.wbuf) == 0 {
		return nil
	}
	if _, err := j.f.Write(j.wbuf); err != nil {
		return fmt.Errorf("decisionlog: write entry: %w", err)
	}
	j.wbuf = j.wbuf[:0]
	return nil
}

// rotateLocked closes the active segment, opens the next, and removes
// the oldest segment when the retained count exceeds MaxSegments.
func (j *Journal) rotateLocked() error {
	if err := j.flushLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("decisionlog: rotate: %w", err)
	}
	j.segIndex++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.segIndex)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("decisionlog: rotate: %w", err)
	}
	j.f = f
	j.segBytes = 0
	segs, err := segmentFiles(j.dir)
	if err != nil {
		return err
	}
	for len(segs) > j.maxSegs {
		if st, err := os.Stat(segs[0]); err == nil {
			j.totalBytes -= st.Size()
		}
		if err := os.Remove(segs[0]); err != nil {
			return fmt.Errorf("decisionlog: prune: %w", err)
		}
		segs = segs[1:]
	}
	return nil
}

// Sync waits for every queued entry to reach the file and flushes the
// active segment to disk; any asynchronous write error that accumulated
// since the last Sync is returned here. Nil-safe.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	done := make(chan error, 1)
	j.pending <- writeMsg{done: done}
	return <-done
}

// Close drains the writer queue, stops the background writer, and
// closes the active segment; a pending asynchronous write error is
// returned. Nil-safe; idempotent.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	close(j.quit)
	<-j.wdone
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.werr
	if ferr := j.flushLocked(); err == nil {
		err = ferr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReplayVerified feeds the replay-verification instruments; the CLIs
// and CI gates call it so /metrics shows how many journal entries have
// been proven faithful. Nil-safe.
func (j *Journal) ReplayVerified(ok bool) {
	if j == nil {
		return
	}
	j.cReplays.Inc()
	if !ok {
		j.cReplayFailed.Inc()
	}
}

// debugSnapshot backs the /debug/decisions endpoint: journal totals
// plus the recent entries oldest-first.
func (j *Journal) debugSnapshot() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := struct {
		Entries  int64             `json:"entries"`
		Bytes    int64             `json:"bytes"`
		Segments int               `json:"segments"`
		Recent   []json.RawMessage `json:"recent"`
	}{
		Entries:  j.cEntries.Value(),
		Bytes:    j.totalBytes,
		Segments: j.segIndex + 1,
		Recent:   make([]json.RawMessage, 0, len(j.recent)),
	}
	// Deep-copy: the ring recycles slot backing arrays on append, and the
	// HTTP handler marshals the snapshot outside the journal lock.
	if len(j.recent) < cap(j.recent) {
		for _, raw := range j.recent {
			out.Recent = append(out.Recent, append(json.RawMessage(nil), raw...))
		}
	} else {
		for i := 0; i < len(j.recent); i++ {
			raw := j.recent[(j.recentNext+i)%len(j.recent)]
			out.Recent = append(out.Recent, append(json.RawMessage(nil), raw...))
		}
	}
	return out
}
