package decisionlog

import (
	"encoding/json"
	"math"
	"strconv"
	"unicode/utf8"

	"mvcom/internal/core"
	"mvcom/internal/seobs"
)

// Hand-rolled entry encoding. The serve loop journals one entry per
// epoch, and reflection-based encoding was the journal's dominant cost
// on that path — a third of the whole journal-on/off overhead gated by
// BenchmarkEpochServeDecisionLog. The encoder below produces output
// byte-identical to encoding/json over Entry's struct tags (asserted by
// TestAppendEntryJSONMatchesEncodingJSON), so readers, the debug
// endpoint, and old journals see no difference; only the cost moves.

// appendJSONString appends s as a JSON string. Plain ASCII without
// escapes is the fast path; anything needing escaping (control chars,
// quotes, backslashes, HTML characters, non-ASCII) defers to
// encoding/json, which also applies its default HTML escaping.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' || c >= utf8.RuneSelf {
			enc, err := json.Marshal(s)
			if err != nil {
				// A string cannot fail to marshal; keep the entry valid.
				return append(b, `""`...)
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat mirrors encoding/json's float64 rendering exactly:
// 'f' format in the JSON-friendly exponent range, 'e' outside it with
// the two-digit exponent shortened.
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, v, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendKey separates the previous member (unless the container was
// just opened) and appends `"key":`.
func appendKey(b []byte, key string) []byte {
	if n := len(b); n > 0 && b[n-1] != '{' && b[n-1] != '[' {
		b = append(b, ',')
	}
	b = append(b, '"')
	b = append(b, key...)
	return append(b, '"', ':')
}

func appendIntField(b []byte, key string, v int) []byte {
	b = appendKey(b, key)
	return strconv.AppendInt(b, int64(v), 10)
}

func appendInt64Field(b []byte, key string, v int64) []byte {
	b = appendKey(b, key)
	return strconv.AppendInt(b, v, 10)
}

func appendFloatField(b []byte, key string, v float64) []byte {
	b = appendKey(b, key)
	return appendJSONFloat(b, v)
}

func appendBoolField(b []byte, key string, v bool) []byte {
	b = appendKey(b, key)
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

func appendStringField(b []byte, key, s string) []byte {
	b = appendKey(b, key)
	return appendJSONString(b, s)
}

// appendIntSlice appends an []int member. With omitEmpty it mirrors
// `json:",omitempty"` (nil and empty both omitted); without, nil
// renders as null and empty as [].
func appendIntSlice(b []byte, key string, s []int, omitEmpty bool) []byte {
	if omitEmpty && len(s) == 0 {
		return b
	}
	b = appendKey(b, key)
	if s == nil {
		return append(b, "null"...)
	}
	b = append(b, '[')
	for i, v := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

func appendShard(b []byte, s *ShardRecord) []byte {
	b = append(b, '{')
	b = appendIntField(b, "committee", s.Committee)
	b = appendIntField(b, "size", s.Size)
	b = appendFloatField(b, "latency", s.Latency)
	b = appendFloatField(b, "age", s.Age)
	if s.Deferrals != 0 {
		b = appendIntField(b, "deferrals", s.Deferrals)
	}
	return append(b, '}')
}

func appendFingerprint(b []byte, f *SolverFingerprint) []byte {
	b = append(b, '{')
	b = appendStringField(b, "kind", f.Kind)
	if f.Seed != 0 {
		b = appendInt64Field(b, "seed", f.Seed)
	}
	if f.Beta != 0 {
		b = appendFloatField(b, "beta", f.Beta)
	}
	if f.Tau != 0 {
		b = appendFloatField(b, "tau", f.Tau)
	}
	if f.Gamma != 0 {
		b = appendIntField(b, "gamma", f.Gamma)
	}
	if f.Workers != 0 {
		b = appendIntField(b, "workers", f.Workers)
	}
	if f.MaxIters != 0 {
		b = appendIntField(b, "maxIters", f.MaxIters)
	}
	if f.ConvergenceWindow != 0 {
		b = appendIntField(b, "convergenceWindow", f.ConvergenceWindow)
	}
	if f.SwapRetries != 0 {
		b = appendIntField(b, "swapRetries", f.SwapRetries)
	}
	if f.InitRetries != 0 {
		b = appendIntField(b, "initRetries", f.InitRetries)
	}
	if f.MaxCandidates != 0 {
		b = appendIntField(b, "maxCandidates", f.MaxCandidates)
	}
	if f.MaxThreads != 0 {
		b = appendIntField(b, "maxThreads", f.MaxThreads)
	}
	if f.RawRates {
		b = appendBoolField(b, "rawRates", true)
	}
	if f.WarmStart {
		b = appendBoolField(b, "warmStart", true)
	}
	if f.Adaptive {
		b = appendBoolField(b, "adaptive", true)
	}
	return append(b, '}')
}

func appendMarginal(b []byte, m *core.Marginal) []byte {
	b = append(b, '{')
	b = appendIntField(b, "shard", m.Shard)
	b = appendFloatField(b, "utility", m.Utility)
	if m.Binding {
		b = appendBoolField(b, "binding", true)
	}
	return append(b, '}')
}

func appendRejection(b []byte, r *core.Rejection) []byte {
	b = append(b, '{')
	b = appendIntField(b, "shard", r.Shard)
	b = appendFloatField(b, "value", r.Value)
	b = appendIntSlice(b, "evicted", r.Evicted, true)
	if r.EvictedValue != 0 {
		b = appendFloatField(b, "evictedValue", r.EvictedValue)
	}
	b = appendFloatField(b, "netGain", r.NetGain)
	if r.Feasible {
		b = appendBoolField(b, "feasible", true)
	}
	return append(b, '}')
}

func appendDeferral(b []byte, d *DeferralEvent) []byte {
	b = append(b, '{')
	b = appendIntField(b, "committee", d.Committee)
	b = appendStringField(b, "kind", d.Kind)
	b = appendIntField(b, "deferrals", d.Deferrals)
	if d.MaxDeferrals != 0 {
		b = appendIntField(b, "maxDeferrals", d.MaxDeferrals)
	}
	return append(b, '}')
}

func appendDigest(b []byte, d *seobs.Digest) []byte {
	b = append(b, '{')
	b = appendInt64Field(b, "rounds", d.Rounds)
	b = appendInt64Field(b, "improvements", d.Improvements)
	b = appendIntField(b, "time_to_eps_rounds", d.TimeToEpsRounds)
	if d.ScheduleStage != 0 {
		b = appendIntField(b, "schedule_stage", d.ScheduleStage)
	}
	b = appendFloatField(b, "best_utility", d.BestUtility)
	b = appendBoolField(b, "have_best", d.HaveBest)
	if d.WarmStarts != 0 {
		b = appendIntField(b, "warm_starts", d.WarmStarts)
	}
	return append(b, '}')
}

func appendTask(b []byte, t *TaskRecord) []byte {
	b = append(b, '{')
	b = appendStringField(b, "taskId", t.TaskID)
	b = appendInt64Field(b, "seed", t.Seed)
	b = appendIntField(b, "iterations", t.Iterations)
	b = appendFloatField(b, "utility", t.Utility)
	b = appendIntSlice(b, "selected", t.Selected, true)
	if t.Err != "" {
		b = appendStringField(b, "err", t.Err)
	}
	return append(b, '}')
}

// appendEntryJSON encodes e exactly as encoding/json renders Entry's
// struct tags (no trailing newline).
func appendEntryJSON(b []byte, e *Entry) []byte {
	b = append(b, '{')
	b = appendIntField(b, "schema", e.Schema)
	b = appendIntField(b, "epoch", e.Epoch)
	if e.TraceID != 0 {
		b = appendKey(b, "traceId")
		b = strconv.AppendUint(b, e.TraceID, 10)
	}
	b = appendFloatField(b, "ddl", e.DDL)
	b = appendFloatField(b, "alpha", e.Alpha)
	b = appendIntField(b, "capacity", e.Capacity)
	b = appendIntField(b, "nmin", e.Nmin)
	b = appendKey(b, "shards")
	if e.Shards == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i := range e.Shards {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendShard(b, &e.Shards[i])
		}
		b = append(b, ']')
	}
	b = appendKey(b, "solver")
	b = appendFingerprint(b, &e.Solver)
	if e.Warm {
		b = appendBoolField(b, "warm", true)
	}
	b = appendIntSlice(b, "warmPrev", e.WarmPrev, true)
	if e.NonReplayable != "" {
		b = appendStringField(b, "nonReplayable", e.NonReplayable)
	}
	b = appendIntSlice(b, "selected", e.Selected, false)
	b = appendFloatField(b, "utility", e.Utility)
	b = appendIntField(b, "load", e.Load)
	b = appendIntField(b, "count", e.Count)
	if e.Iterations != 0 {
		b = appendIntField(b, "iterations", e.Iterations)
	}
	if len(e.Marginals) > 0 {
		b = appendKey(b, "marginals")
		b = append(b, '[')
		for i := range e.Marginals {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendMarginal(b, &e.Marginals[i])
		}
		b = append(b, ']')
	}
	if len(e.Rejected) > 0 {
		b = appendKey(b, "rejected")
		b = append(b, '[')
		for i := range e.Rejected {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendRejection(b, &e.Rejected[i])
		}
		b = append(b, ']')
	}
	if len(e.Deferrals) > 0 {
		b = appendKey(b, "deferrals")
		b = append(b, '[')
		for i := range e.Deferrals {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendDeferral(b, &e.Deferrals[i])
		}
		b = append(b, ']')
	}
	if e.Diag != nil {
		b = appendKey(b, "diag")
		b = appendDigest(b, e.Diag)
	}
	if len(e.Tasks) > 0 {
		b = appendKey(b, "tasks")
		b = append(b, '[')
		for i := range e.Tasks {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendTask(b, &e.Tasks[i])
		}
		b = append(b, ']')
	}
	return append(b, '}')
}
