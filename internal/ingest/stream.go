package ingest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/epoch"
	"mvcom/internal/obs"
	"mvcom/internal/txpool"
)

// StreamConfig parameterizes a NetStream.
type StreamConfig struct {
	// Committees must match the pipeline's committee count; wire reports
	// naming a committee outside [0, Committees) are shed as invalid,
	// which also bounds the pending-report map.
	Committees int
	// Params are the scheduling parameters handed to every epoch.
	Params epoch.EpochParams
	// QueueTxs is the queue high-watermark in transactions: submissions
	// that would push past it are shed with reason "queue". <= 0
	// defaults to 65536.
	QueueTxs int
	// Rate and Burst configure the per-source token buckets (tx/s and
	// txs); Rate <= 0 disables rate limiting. MaxSources bounds the
	// bucket map (default 1024).
	Rate, Burst float64
	MaxSources  int
	// MinBatchTxs flushes an epoch as soon as the queue holds this many
	// transactions (<= 0 defaults to 1: any traffic starts an epoch).
	MinBatchTxs int
	// MaxWait bounds how long NextContext waits for traffic before
	// flushing whatever is there — possibly nothing, which runs a quiet
	// epoch and keeps the chain and the metrics ticking. <= 0 defaults
	// to 250ms.
	MaxWait time.Duration
	// MaxEpochs, when positive, ends the stream cleanly after that many
	// epochs (tests and bounded runs).
	MaxEpochs int
	// Obs receives the mvcom_serve_* instruments and ingest trace
	// events; nil is off.
	Obs *obs.ServeObserver
	// OnDeliver, when non-nil, runs after each epoch's settlement
	// accounting with the delivered result (still pipeline-owned
	// scratch — copy to keep).
	OnDeliver func(*epoch.Result)
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.QueueTxs <= 0 {
		c.QueueTxs = 65536
	}
	if c.MinBatchTxs <= 0 {
		c.MinBatchTxs = 1
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 250 * time.Millisecond
	}
	return c
}

// drainAll is the "drain everything regardless of Created" horizon.
const drainAll = time.Duration(1) << 62

// NetStream bridges the network front ends to epoch.Pipeline.Serve. The
// front ends call Submit/SubmitReport from many goroutines; the serve
// goroutine calls NextContext (epoch.CtxStream), Fill
// (epoch.ShardSupply), and Deliver. Admitted transactions wait in a
// bounded synchronized pool; each flush drains them into the coming
// epoch and settles the previous books.
type NetStream struct {
	cfg     StreamConfig
	queue   *txpool.SyncPool
	buckets *Buckets
	wake    chan struct{}

	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{}

	repMu      sync.Mutex
	pendingRep map[int]Report
	pendingTxs atomic.Int64

	// Counters shared with the front ends (Stats snapshots).
	requests, accepted, acceptedTxs atomic.Int64
	reports, reportTxs              atomic.Int64
	shedRate, shedQueue, shedBody   atomic.Int64
	shedDrain, shedInvalid, shedTxs atomic.Int64
	committedTxs, expiredTxs        atomic.Int64
	outstandingTxs, assignedTxs     atomic.Int64
	epochs, accountingErrors        atomic.Int64

	// Epoch-goroutine state (only touched by NextContext/Fill/Deliver).
	batch       []chain.Transaction
	fillRep     []Report // snapshot of pending reports for the in-flight epoch
	batchTxs    int      // queue txs flushed into the in-flight epoch
	served      int
	drainEpochs int
	finished    bool
	span        *obs.Span
}

// drainEpochCap bounds how many epochs a graceful drain runs to settle
// the deferral backlog before abandoning the remainder as expired. The
// backlog normally settles within MaxDeferrals+1 epochs; the cap exists
// for unbounded-deferral configurations where a scheduler could refuse
// the same shard forever.
const drainEpochCap = 64

var (
	_ epoch.CtxStream   = (*NetStream)(nil)
	_ epoch.ShardSupply = (*NetStream)(nil)
)

// NewStream returns a NetStream ready to serve.
func NewStream(cfg StreamConfig) *NetStream {
	cfg = cfg.withDefaults()
	return &NetStream{
		cfg:        cfg,
		queue:      txpool.NewSync(),
		buckets:    NewBuckets(cfg.Rate, cfg.Burst, cfg.MaxSources),
		wake:       make(chan struct{}, 1),
		drainCh:    make(chan struct{}),
		pendingRep: make(map[int]Report),
	}
}

// Buckets exposes the admission buckets (tests override the clock).
func (s *NetStream) Buckets() *Buckets { return s.buckets }

// Submit runs a transaction batch through admission. It returns "" when
// the batch was admitted into the queue, else the shed reason ("drain",
// "rate", "queue", "invalid").
func (s *NetStream) Submit(source string, txs []chain.Transaction) string {
	s.requests.Add(1)
	s.cfg.Obs.RequestSeen()
	if len(txs) == 0 {
		return s.shed("invalid", 0)
	}
	if s.draining.Load() {
		return s.shed("drain", len(txs))
	}
	if !s.buckets.Allow(source, len(txs)) {
		return s.shed("rate", len(txs))
	}
	if !s.queue.TryAddBatch(txs, s.cfg.QueueTxs) {
		return s.shed("queue", len(txs))
	}
	s.accepted.Add(1)
	s.acceptedTxs.Add(int64(len(txs)))
	s.cfg.Obs.RequestAccepted(len(txs))
	s.cfg.Obs.SetQueueTxs(s.queue.Len())
	s.wakeUp()
	return ""
}

// SubmitReport runs a shard report through admission. Reports bypass
// the queue watermark (they are O(1) pending state per committee, not
// per-tx heap) but still pay token-bucket tokens for the transactions
// they declare.
func (s *NetStream) SubmitReport(source string, rep Report) string {
	s.requests.Add(1)
	s.cfg.Obs.RequestSeen()
	if rep.Committee < 0 || rep.Committee >= s.cfg.Committees || rep.TxCount < 0 || rep.Latency < 0 {
		return s.shed("invalid", rep.TxCount)
	}
	if s.draining.Load() {
		return s.shed("drain", rep.TxCount)
	}
	if !s.buckets.Allow(source, rep.TxCount) {
		return s.shed("rate", rep.TxCount)
	}
	s.repMu.Lock()
	cur := s.pendingRep[rep.Committee]
	cur.Committee = rep.Committee
	cur.TxCount += rep.TxCount
	if rep.Latency > 0 {
		cur.Latency = rep.Latency
	}
	s.pendingRep[rep.Committee] = cur
	s.repMu.Unlock()
	s.pendingTxs.Add(int64(rep.TxCount))
	s.reports.Add(1)
	s.reportTxs.Add(int64(rep.TxCount))
	s.cfg.Obs.ReportAccepted(rep.TxCount)
	s.wakeUp()
	return ""
}

// Drain switches the stream into graceful-drain mode: new traffic is
// shed with reason "drain", the queue and pending reports flush into a
// final run of epochs that settles the deferral backlog, and the stream
// then ends cleanly so Serve returns nil with every admitted
// transaction settled.
func (s *NetStream) Drain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Stats snapshots the accounting counters.
func (s *NetStream) Stats() Stats {
	return Stats{
		Requests:         s.requests.Load(),
		Accepted:         s.accepted.Load(),
		AcceptedTxs:      s.acceptedTxs.Load(),
		Reports:          s.reports.Load(),
		ReportTxs:        s.reportTxs.Load(),
		ShedRate:         s.shedRate.Load(),
		ShedQueue:        s.shedQueue.Load(),
		ShedBody:         s.shedBody.Load(),
		ShedDrain:        s.shedDrain.Load(),
		ShedInvalid:      s.shedInvalid.Load(),
		ShedTxs:          s.shedTxs.Load(),
		CommittedTxs:     s.committedTxs.Load(),
		ExpiredTxs:       s.expiredTxs.Load(),
		OutstandingTxs:   s.outstandingTxs.Load(),
		QueueTxs:         int64(s.queue.Len()),
		PendingReportTxs: s.pendingTxs.Load(),
		AssignedTxs:      s.assignedTxs.Load(),
		Epochs:           s.epochs.Load(),
		Draining:         s.draining.Load(),
		AccountingErrors: s.accountingErrors.Load(),
	}
}

// ShedBody counts an oversized-body rejection (the front ends detect it
// at the HTTP/codec layer, before a batch exists).
func (s *NetStream) ShedBody() string {
	s.requests.Add(1)
	s.cfg.Obs.RequestSeen()
	return s.shed("body", 0)
}

func (s *NetStream) shed(reason string, txs int) string {
	switch reason {
	case "rate":
		s.shedRate.Add(1)
	case "queue":
		s.shedQueue.Add(1)
	case "body":
		s.shedBody.Add(1)
	case "drain":
		s.shedDrain.Add(1)
	default:
		s.shedInvalid.Add(1)
	}
	if txs > 0 {
		s.shedTxs.Add(int64(txs))
	}
	s.cfg.Obs.RequestShed(reason, txs)
	return reason
}

func (s *NetStream) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Next implements epoch.EpochStream; Serve prefers NextContext, and
// nothing else should drive a NetStream, so Next refuses to block.
func (s *NetStream) Next(int) (epoch.EpochParams, bool) {
	panic("ingest: NetStream requires epoch.CtxStream-aware Serve (NextContext)")
}

// NextContext implements epoch.CtxStream: it blocks until the queue
// reaches MinBatchTxs, MaxWait elapses, the stream drains, or ctx is
// canceled, then flushes the pending traffic into the coming epoch.
func (s *NetStream) NextContext(ctx context.Context, epochN int) (epoch.EpochParams, bool) {
	if s.finished || (s.cfg.MaxEpochs > 0 && s.served >= s.cfg.MaxEpochs) {
		return epoch.EpochParams{}, false
	}
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	expired := false
	for {
		if s.draining.Load() {
			// Drain epochs run until everything admitted has settled:
			// the first flushes the queue and pending reports in, and
			// the rest give the deferral backlog epochs to commit or
			// expire via MaxDeferrals.
			if s.queue.Len() == 0 && s.pendingTxs.Load() == 0 && s.outstandingTxs.Load() == 0 {
				s.finished = true
				return epoch.EpochParams{}, false
			}
			if s.drainEpochs >= drainEpochCap {
				// A scheduler that defers the same shards forever would
				// hold the drain open; abandon the backlog as expired.
				if left := s.outstandingTxs.Swap(0); left > 0 {
					s.expiredTxs.Add(left)
					s.cfg.Obs.Delivered(0, int(left), 0)
				}
				s.finished = true
				return epoch.EpochParams{}, false
			}
			s.drainEpochs++
			s.flush(true)
			s.served++
			return s.cfg.Params, true
		}
		if s.queue.Len() >= s.cfg.MinBatchTxs || expired {
			s.flush(false)
			s.served++
			return s.cfg.Params, true
		}
		select {
		case <-s.wake:
		case <-timer.C:
			expired = true
		case <-s.drainCh:
		case <-ctx.Done():
			return epoch.EpochParams{}, false
		}
	}
}

// flush moves the queued transactions and pending reports into the
// in-flight epoch's fill plan. Runs on the epoch goroutine only.
func (s *NetStream) flush(draining bool) {
	s.batch = s.queue.DrainArrivedInto(s.batch[:0], drainAll, 0)
	s.batchTxs = len(s.batch)

	s.fillRep = s.fillRep[:0]
	s.repMu.Lock()
	for _, rep := range s.pendingRep {
		s.fillRep = append(s.fillRep, rep)
	}
	for c := range s.pendingRep {
		delete(s.pendingRep, c)
	}
	s.repMu.Unlock()
	repTxs := 0
	for _, rep := range s.fillRep {
		repTxs += rep.TxCount
	}
	s.pendingTxs.Add(int64(-repTxs))
	s.assignedTxs.Add(int64(s.batchTxs + repTxs))

	s.cfg.Obs.SetQueueTxs(s.queue.Len())
	s.cfg.Obs.BatchFlushed(s.batchTxs + repTxs)
	if draining {
		s.cfg.Obs.DrainFlushed(s.batchTxs + repTxs)
	}
	s.span = s.cfg.Obs.TraceCtx().StartRoot("ingest-batch", "ingest")
}

// Fill implements epoch.ShardSupply: the flushed queue transactions are
// spread round-robin over the epoch's fresh committees, and each wire
// report adds its declared count to (and may override the latency of)
// the committee it names. Runs on the epoch goroutine only.
func (s *NetStream) Fill(epochN int, reports []epoch.CommitteeReport) {
	if len(reports) == 0 {
		return
	}
	base, rem := s.batchTxs/len(reports), s.batchTxs%len(reports)
	for i := range reports {
		reports[i].TxCount = base
		if i < rem {
			reports[i].TxCount++
		}
	}
	for _, rep := range s.fillRep {
		idx := -1
		for i := range reports {
			if reports[i].Committee == rep.Committee {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = rep.Committee % len(reports)
		}
		reports[idx].TxCount += rep.TxCount
		if rep.Latency > 0 {
			lat := time.Duration(rep.Latency * float64(time.Second))
			reports[idx].Formation = lat
			reports[idx].Consensus = 0
			reports[idx].TwoPhase = lat
		}
	}
}

// Deliver implements epoch.EpochStream: it settles the epoch's books.
// Every transaction assigned into the epoch (plus the deferral backlog
// carried in) ends up committed, still deferred (outstanding), or
// expired; a negative residue marks an accounting bug the gates fail
// on. Runs on the epoch goroutine only.
func (s *NetStream) Deliver(res *epoch.Result) error {
	committed := 0
	for li, ri := range res.Live {
		if li < len(res.Solution.Selected) && res.Solution.Selected[li] {
			committed += res.Reports[ri].TxCount
		}
	}
	deferred := 0
	for _, rep := range res.Deferred {
		deferred += rep.TxCount
	}
	prevOutstanding := s.outstandingTxs.Load()
	assigned := s.assignedTxs.Swap(0)
	expired := prevOutstanding + assigned - int64(committed) - int64(deferred)
	if expired < 0 {
		s.accountingErrors.Add(1)
		expired = 0
	}
	s.outstandingTxs.Store(int64(deferred))
	s.committedTxs.Add(int64(committed))
	s.expiredTxs.Add(expired)
	s.epochs.Add(1)
	s.cfg.Obs.Delivered(committed, int(expired), deferred)
	if s.span != nil {
		s.span.Finish()
		s.span = nil
	}
	if s.cfg.OnDeliver != nil {
		s.cfg.OnDeliver(res)
	}
	return nil
}
