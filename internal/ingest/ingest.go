// Package ingest is the networked serving plane: it accepts transaction
// and shard-report traffic over HTTP/JSON and a framed-TCP codec,
// batches it into epochs through a bounded queue, and applies admission
// control — per-source token buckets, body-size caps, and a queue
// high-watermark that sheds with 429 + Retry-After instead of growing
// the heap. NetStream bridges the front ends to epoch.Pipeline.Serve:
// it implements epoch.CtxStream (cancellable blocking Next) and
// epoch.ShardSupply (real ingested demand replaces the synthetic
// trace's shard sizes), and settles every admitted transaction as
// committed, expired, or still outstanding after each epoch — the
// accounting the serve gates check.
package ingest

// Report is one shard report arriving over the wire: a member committee
// declaring TxCount transactions for the coming epoch, optionally with
// an observed two-phase latency (seconds) that overrides the simulated
// one. Multiple reports for one committee accumulate TxCount; the
// latest positive Latency wins.
type Report struct {
	Committee int     `json:"committee"`
	TxCount   int     `json:"txCount"`
	Latency   float64 `json:"latency,omitempty"`
}

// Stats is an atomic snapshot of the serving plane's accounting. Every
// admitted transaction is in exactly one bucket on the right-hand side
// of the identity
//
//	AcceptedTxs + ReportTxs ==
//	    CommittedTxs + ExpiredTxs + OutstandingTxs +
//	    QueueTxs + PendingReportTxs + AssignedTxs
//
// and after a graceful drain the last four terms are zero: everything
// ever admitted has settled as committed or expired.
type Stats struct {
	// Requests counts ingest requests seen before admission; Accepted
	// those admitted (AcceptedTxs their transactions); Reports admitted
	// shard reports (ReportTxs their declared transactions).
	Requests    int64 `json:"requests"`
	Accepted    int64 `json:"accepted"`
	AcceptedTxs int64 `json:"acceptedTxs"`
	Reports     int64 `json:"reports"`
	ReportTxs   int64 `json:"reportTxs"`
	// Shed* count refused requests by reason; ShedTxs the transactions
	// they carried.
	ShedRate    int64 `json:"shedRate"`
	ShedQueue   int64 `json:"shedQueue"`
	ShedBody    int64 `json:"shedBody"`
	ShedDrain   int64 `json:"shedDrain"`
	ShedInvalid int64 `json:"shedInvalid"`
	ShedTxs     int64 `json:"shedTxs"`
	// Settlement: committed into final blocks, expired by the deferral
	// bound, outstanding in the deferral backlog, queued awaiting a
	// flush, declared by pending reports, or assigned to the in-flight
	// epoch.
	CommittedTxs     int64 `json:"committedTxs"`
	ExpiredTxs       int64 `json:"expiredTxs"`
	OutstandingTxs   int64 `json:"outstandingTxs"`
	QueueTxs         int64 `json:"queueTxs"`
	PendingReportTxs int64 `json:"pendingReportTxs"`
	AssignedTxs      int64 `json:"assignedTxs"`
	// Epochs counts delivered epochs; Draining reports drain mode;
	// AccountingErrors counts epochs whose settlement identity went
	// negative (a bug — the serve gates fail on it).
	Epochs           int64 `json:"epochs"`
	Draining         bool  `json:"draining"`
	AccountingErrors int64 `json:"accountingErrors"`
}

// Shed sums the shed-request counts across reasons.
func (s Stats) Shed() int64 {
	return s.ShedRate + s.ShedQueue + s.ShedBody + s.ShedDrain + s.ShedInvalid
}

// Unsettled sums the not-yet-final buckets; zero after a graceful drain.
func (s Stats) Unsettled() int64 {
	return s.OutstandingTxs + s.QueueTxs + s.PendingReportTxs + s.AssignedTxs
}

// AccountingGap is admitted minus settled transactions; zero when the
// identity holds.
func (s Stats) AccountingGap() int64 {
	return s.AcceptedTxs + s.ReportTxs - (s.CommittedTxs + s.ExpiredTxs + s.Unsettled())
}
