package ingest

import (
	"context"
	"errors"
	"testing"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/epoch"
	"mvcom/internal/txgen"
)

// testPipeline builds a Supply-driven pipeline matching the stream's
// committee count.
func testPipeline(t *testing.T, committees int, stream *NetStream, maxDeferrals int, seed int64) *epoch.Pipeline {
	t.Helper()
	p, err := epoch.NewPipeline(epoch.Config{
		Committees:    committees,
		CommitteeSize: 4,
		Trace:         txgen.Config{Blocks: committees * 4, MeanTxs: 800, MinTxs: 100, MaxTxs: 3000},
		Seed:          seed,
		NmaxFraction:  1, // every committee arrives: refusals come only from capacity
		MaxDeferrals:  maxDeferrals,
		Supply:        stream,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkTxs(n int, base uint64) []chain.Transaction {
	txs := make([]chain.Transaction, n)
	for i := range txs {
		txs[i] = chain.Transaction{ID: base + uint64(i), Amount: 1}
	}
	return txs
}

// checkSettled asserts the post-drain accounting: the identity holds,
// nothing is left unsettled, and no epoch tripped the negative-residue
// detector.
func checkSettled(t *testing.T, st Stats) {
	t.Helper()
	if st.AccountingErrors != 0 {
		t.Fatalf("accounting errors: %+v", st)
	}
	if gap := st.AccountingGap(); gap != 0 {
		t.Fatalf("accounting gap %d: %+v", gap, st)
	}
	if u := st.Unsettled(); u != 0 {
		t.Fatalf("unsettled %d after drain: %+v", u, st)
	}
}

// TestNetStreamServesAndSettles is the end-to-end integration: wire
// traffic (tx batches and shard reports) batched into epochs through a
// real pipeline, drained gracefully, every admitted transaction settled
// committed-or-expired, and the final drain epoch delivered before
// Serve returns.
func TestNetStreamServesAndSettles(t *testing.T) {
	stream := NewStream(StreamConfig{
		Committees:  4,
		Params:      epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		MinBatchTxs: 100,
		MaxWait:     20 * time.Millisecond,
	})
	p := testPipeline(t, 4, stream, 0, 61)

	errc := make(chan error, 1)
	go func() {
		errc <- p.Serve(context.Background(), epoch.AcceptAll{}, stream)
	}()

	for i := 0; i < 10; i++ {
		if reason := stream.Submit("client", mkTxs(50, uint64(i)*1000)); reason != "" {
			t.Errorf("batch %d shed: %s", i, reason)
		}
		if reason := stream.SubmitReport("shard", Report{Committee: i % 4, TxCount: 7}); reason != "" {
			t.Errorf("report %d shed: %s", i, reason)
		}
		time.Sleep(2 * time.Millisecond)
	}

	stream.Drain()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not end after Drain")
	}

	st := stream.Stats()
	if st.AcceptedTxs != 500 || st.ReportTxs != 70 {
		t.Fatalf("admitted %d txs + %d report txs, want 500 + 70", st.AcceptedTxs, st.ReportTxs)
	}
	if st.CommittedTxs != 570 {
		t.Fatalf("committed %d, want all 570 (unbounded capacity): %+v", st.CommittedTxs, st)
	}
	checkSettled(t, st)
	if st.Epochs < 1 {
		t.Fatal("no epochs delivered")
	}
	if h := p.Chain().Height(); int64(h) != st.Epochs {
		t.Fatalf("chain height %d != epochs %d", h, st.Epochs)
	}
	// Post-drain traffic is shed, not silently dropped.
	if reason := stream.Submit("late", mkTxs(1, 1<<40)); reason != "drain" {
		t.Fatalf("post-drain submit: reason %q, want drain", reason)
	}
}

// TestNetStreamExpiryAccounting drives refusals (capacity below supply)
// with a deferral bound, so some transactions must settle as expired —
// and the books still balance.
func TestNetStreamExpiryAccounting(t *testing.T) {
	stream := NewStream(StreamConfig{
		Committees:  4,
		Params:      epoch.EpochParams{Alpha: 1.5, Capacity: 120, Nmin: 1},
		MinBatchTxs: 200,
		MaxWait:     20 * time.Millisecond,
	})
	p := testPipeline(t, 4, stream, 1, 62)

	errc := make(chan error, 1)
	go func() {
		errc <- p.Serve(context.Background(), epoch.AcceptAll{}, stream)
	}()

	for i := 0; i < 6; i++ {
		if reason := stream.Submit("client", mkTxs(200, uint64(i)*1000)); reason != "" {
			t.Errorf("batch %d shed: %s", i, reason)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stream.Drain()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not end after Drain")
	}

	st := stream.Stats()
	checkSettled(t, st)
	if st.ExpiredTxs == 0 {
		t.Fatalf("no expirations under sustained over-capacity with MaxDeferrals=1: %+v", st)
	}
	if st.CommittedTxs == 0 {
		t.Fatalf("nothing committed: %+v", st)
	}
	if st.CommittedTxs+st.ExpiredTxs != st.AcceptedTxs {
		t.Fatalf("committed %d + expired %d != accepted %d", st.CommittedTxs, st.ExpiredTxs, st.AcceptedTxs)
	}
}

// TestNetStreamCancelUnblocks: a Serve blocked in NextContext (no
// traffic, long MaxWait) must return context.Canceled promptly on
// cancel — the serve-loop cancellation bugfix exercised through the
// real networked stream.
func TestNetStreamCancelUnblocks(t *testing.T) {
	stream := NewStream(StreamConfig{
		Committees: 4,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		MaxWait:    time.Hour, // never flush on its own
	})
	p := testPipeline(t, 4, stream, 0, 63)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Serve(ctx, epoch.AcceptAll{}, stream)
	}()
	time.Sleep(20 * time.Millisecond) // let Serve reach the blocking wait
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve stayed blocked after cancel")
	}
}

// TestNetStreamQuietEpochs: with MaxWait elapsing and no traffic, the
// stream still runs (quiet) epochs, so the chain keeps growing and
// MaxEpochs bounds the run.
func TestNetStreamQuietEpochs(t *testing.T) {
	stream := NewStream(StreamConfig{
		Committees: 4,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		MaxWait:    time.Millisecond,
		MaxEpochs:  3,
	})
	p := testPipeline(t, 4, stream, 0, 64)
	if err := p.Serve(context.Background(), epoch.AcceptAll{}, stream); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := stream.Stats()
	if st.Epochs != 3 {
		t.Fatalf("epochs = %d, want 3", st.Epochs)
	}
	if h := p.Chain().Height(); h != 3 {
		t.Fatalf("chain height = %d, want 3 (quiet epochs still commit empty blocks)", h)
	}
	checkSettled(t, st)
}

// TestNetStreamInvalidAndWatermark covers the direct-submit admission
// branches: empty batches and out-of-range reports are invalid, and the
// queue watermark sheds whole batches.
func TestNetStreamInvalidAndWatermark(t *testing.T) {
	stream := NewStream(StreamConfig{
		Committees: 2,
		QueueTxs:   100,
	})
	if reason := stream.Submit("a", nil); reason != "invalid" {
		t.Fatalf("empty batch: %q", reason)
	}
	for _, rep := range []Report{
		{Committee: -1, TxCount: 1},
		{Committee: 2, TxCount: 1},
		{Committee: 0, TxCount: -1},
		{Committee: 0, TxCount: 1, Latency: -2},
	} {
		if reason := stream.SubmitReport("a", rep); reason != "invalid" {
			t.Fatalf("report %+v: reason %q, want invalid", rep, reason)
		}
	}
	if reason := stream.Submit("a", mkTxs(100, 0)); reason != "" {
		t.Fatalf("batch at watermark shed: %q", reason)
	}
	if reason := stream.Submit("a", mkTxs(1, 500)); reason != "queue" {
		t.Fatalf("batch over watermark: reason %q, want queue", reason)
	}
	st := stream.Stats()
	if st.ShedInvalid != 5 || st.ShedQueue != 1 || st.AcceptedTxs != 100 {
		t.Fatalf("stats: %+v", st)
	}
}
