package swarm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/ingest"
)

// httpAck mirrors the ingest front ends' reply body.
type httpAck struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// HTTPTarget submits over the mvcom-serve HTTP front end.
type HTTPTarget struct {
	base   string
	client *http.Client
}

// Dial returns an HTTP target for a base URL like
// "http://127.0.0.1:8080".
func Dial(base string) *HTTPTarget {
	return &HTTPTarget{
		base:   base,
		client: &http.Client{Timeout: 10 * time.Second},
	}
}

func (t *HTTPTarget) post(path, source string, v any) (bool, string, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return false, "", err
	}
	req, err := http.NewRequest(http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return false, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ingest.SourceHeader, source)
	resp, err := t.client.Do(req)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	var ack httpAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return false, "", fmt.Errorf("decode ack (status %d): %w", resp.StatusCode, err)
	}
	return ack.Accepted, ack.Reason, nil
}

// SubmitTxs implements Submitter.
func (t *HTTPTarget) SubmitTxs(source string, txs []chain.Transaction) (bool, string, error) {
	return t.post("/txs", source, struct {
		Source string              `json:"source,omitempty"`
		Txs    []chain.Transaction `json:"txs"`
	}{Source: source, Txs: txs})
}

// SubmitReport implements Submitter.
func (t *HTTPTarget) SubmitReport(source string, rep ingest.Report) (bool, string, error) {
	return t.post("/report", source, rep)
}

// TCPTarget submits over the framed-TCP front end.
type TCPTarget struct{ c *ingest.Client }

// DialTCP returns a framed-TCP target for an address like
// "127.0.0.1:9000".
func DialTCP(addr string) (*TCPTarget, error) {
	c, err := ingest.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	return &TCPTarget{c: c}, nil
}

// Close closes the underlying connection.
func (t *TCPTarget) Close() error { return t.c.Close() }

// SubmitTxs implements Submitter.
func (t *TCPTarget) SubmitTxs(source string, txs []chain.Transaction) (bool, string, error) {
	ack, err := t.c.SubmitTxs(source, txs)
	if err != nil {
		return false, "", err
	}
	return ack.Accepted, ack.Reason, nil
}

// SubmitReport implements Submitter.
func (t *TCPTarget) SubmitReport(source string, rep ingest.Report) (bool, string, error) {
	ack, err := t.c.SubmitReport(rep)
	if err != nil {
		return false, "", err
	}
	return ack.Accepted, ack.Reason, nil
}

// Direct submits straight into an in-process NetStream — no transport,
// no sockets. Tests and the single-binary soak mode use it.
type Direct struct{ Stream *ingest.NetStream }

// SubmitTxs implements Submitter.
func (d Direct) SubmitTxs(source string, txs []chain.Transaction) (bool, string, error) {
	reason := d.Stream.Submit(source, txs)
	return reason == "", reason, nil
}

// SubmitReport implements Submitter.
func (d Direct) SubmitReport(source string, rep ingest.Report) (bool, string, error) {
	reason := d.Stream.SubmitReport(source, rep)
	return reason == "", reason, nil
}
