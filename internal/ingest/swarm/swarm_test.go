package swarm

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"mvcom/internal/epoch"
	"mvcom/internal/ingest"
	"mvcom/internal/txgen"
)

// smallTrace keeps the synthetic workload light for unit tests.
var smallTrace = txgen.Config{Blocks: 16, MeanTxs: 400, MinTxs: 100, MaxTxs: 1000}

// TestSwarmLedgerMatchesServer cross-checks the fleet-side ledger
// against the server's accounting over the HTTP front end: every
// request the fleet sent is accounted on both sides, and a tight
// per-source rate makes shedding deterministic.
func TestSwarmLedgerMatchesServer(t *testing.T) {
	stream := ingest.NewStream(ingest.StreamConfig{
		Committees: 4,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		QueueTxs:   1 << 20, // no pipeline draining — keep the queue out of the way
		Rate:       200,     // per source; clients offer ~1000 tx/s each
		Burst:      200,
	})
	srv := httptest.NewServer(ingest.NewHandler(stream, 1<<20))
	defer srv.Close()

	fleet, err := Run(context.Background(), Config{
		Clients:     3,
		Trace:       smallTrace,
		Seed:        7,
		Rate:        1000,
		Batch:       50,
		Duration:    400 * time.Millisecond,
		ReportEvery: 4,
		Committees:  4,
	}, Dial(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Errors != 0 {
		t.Fatalf("transport errors: %+v", fleet)
	}
	if fleet.Requests == 0 || fleet.Accepted == 0 {
		t.Fatalf("fleet sent nothing: %+v", fleet)
	}
	if fleet.Shed == 0 {
		t.Fatalf("5x overload shed nothing: %+v", fleet)
	}
	if fleet.Accepted+fleet.Shed != fleet.Requests {
		t.Fatalf("fleet ledger leak: %+v", fleet)
	}
	st := stream.Stats()
	if st.Requests != fleet.Requests {
		t.Fatalf("server saw %d requests, fleet sent %d", st.Requests, fleet.Requests)
	}
	if st.Accepted+st.Reports != fleet.Accepted || st.Shed() != fleet.Shed {
		t.Fatalf("server books %+v disagree with fleet ledger %+v", st, fleet)
	}
}

// TestSwarmDirect drives the in-process target: with admission wide
// open everything is accepted and the transaction ledgers agree.
func TestSwarmDirect(t *testing.T) {
	stream := ingest.NewStream(ingest.StreamConfig{
		Committees: 4,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		QueueTxs:   1 << 20,
	})
	fleet, err := Run(context.Background(), Config{
		Clients:  2,
		Trace:    smallTrace,
		Seed:     3,
		Rate:     2000,
		Batch:    100,
		Duration: 200 * time.Millisecond,
	}, Direct{Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Errors != 0 || fleet.Shed != 0 || fleet.Accepted != fleet.Requests {
		t.Fatalf("open admission still shed: %+v", fleet)
	}
	st := stream.Stats()
	if st.AcceptedTxs != fleet.TxsAccepted {
		t.Fatalf("server accepted %d txs, fleet ledger says %d", st.AcceptedTxs, fleet.TxsAccepted)
	}
}

// TestSwarmCancel: a canceled context stops the fleet promptly even
// with a long window.
func TestSwarmCancel(t *testing.T) {
	stream := ingest.NewStream(ingest.StreamConfig{
		Committees: 2,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		QueueTxs:   1 << 20,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Run(ctx, Config{Clients: 2, Trace: smallTrace, Duration: time.Hour}, Direct{Stream: stream})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("swarm ignored cancellation")
	}
}
