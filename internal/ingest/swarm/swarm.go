// Package swarm drives a synthetic client fleet against a serving
// plane. The workload is txgen-derived: the trace is partitioned into
// per-client shards exactly the way the evaluation partitions blocks
// into member-committee shards, and each client offers its shard's
// transactions in paced batches at a configured rate. Pointing the
// fleet's aggregate offered rate above the plane's admission capacity
// makes shedding deterministic by construction, which is what the soak
// and CI gates need: shed traffic must be counted, accepted traffic
// must be committed, and the heap must stay flat.
package swarm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvcom/internal/chain"
	"mvcom/internal/ingest"
	"mvcom/internal/randx"
	"mvcom/internal/txgen"
)

// Submitter is the client fleet's view of a serving plane: the HTTP
// front end (Dial), the framed-TCP front end (DialTCP), or an
// in-process NetStream (Direct).
type Submitter interface {
	// SubmitTxs offers a batch; ok reports admission, reason the shed
	// class when !ok, err a transport failure (nothing accounted).
	SubmitTxs(source string, txs []chain.Transaction) (ok bool, reason string, err error)
	// SubmitReport offers a shard report.
	SubmitReport(source string, rep ingest.Report) (ok bool, reason string, err error)
}

// Config parameterizes the fleet.
type Config struct {
	// Clients is the number of concurrent clients; each owns one shard
	// of the trace (<= 0 defaults to 4).
	Clients int
	// Trace shapes the synthetic workload (zero value = paper defaults,
	// which are heavyweight — tests and CI pass a small trace).
	Trace txgen.Config
	// Seed drives trace synthesis, sharding, and transaction
	// materialization.
	Seed int64
	// Rate is each client's offered transaction rate in tx/s (<= 0
	// defaults to 1000). Admission capacity is set on the server; offer
	// 2x the per-source admitted rate to force shedding.
	Rate float64
	// Batch is the transactions per request (<= 0 defaults to 100).
	Batch int
	// Duration is the offering window; each client loops over its
	// shard's transactions until it closes (<= 0 defaults to 2s).
	Duration time.Duration
	// ReportEvery sends a shard report (committee = client index modulo
	// Committees, declaring Batch transactions) every that many batches;
	// <= 0 disables reports.
	ReportEvery int
	// Committees bounds the report committee index (<= 0 defaults to
	// Clients).
	Committees int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Batch <= 0 {
		c.Batch = 100
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Committees <= 0 {
		c.Committees = c.Clients
	}
	return c
}

// Stats is the fleet-side accounting ledger. The driver cross-checks it
// against the server's ingest.Stats: every request the fleet counts
// must land accepted-or-shed on the server.
type Stats struct {
	Requests    int64 `json:"requests"`
	Accepted    int64 `json:"accepted"`
	Shed        int64 `json:"shed"`
	Errors      int64 `json:"errors"`
	TxsOffered  int64 `json:"txsOffered"`
	TxsAccepted int64 `json:"txsAccepted"`
}

// Run drives the fleet until every client's offering window closes or
// ctx is canceled, then returns the aggregate ledger. An error is
// returned only for setup failures (an unusable trace); transport
// errors during the run are counted in Stats.Errors.
func Run(ctx context.Context, cfg Config, target Submitter) (Stats, error) {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	trace := txgen.Generate(rng, cfg.Trace)
	shards, err := trace.IntoShards(rng, cfg.Clients)
	if err != nil {
		return Stats{}, fmt.Errorf("swarm: shard the trace: %w", err)
	}

	var requests, accepted, shed, errs, txsOffered, txsAccepted atomic.Int64
	interval := time.Duration(float64(cfg.Batch) / cfg.Rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int, clientRNG *randx.RNG) {
			defer wg.Done()
			txs := trace.Transactions(shards[c], clientRNG)
			if len(txs) == 0 {
				return
			}
			source := fmt.Sprintf("swarm-%d", c)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			deadline := time.NewTimer(cfg.Duration)
			defer deadline.Stop()
			pos, batches := 0, 0
			for {
				select {
				case <-ctx.Done():
					return
				case <-deadline.C:
					return
				case <-tick.C:
				}
				batch := make([]chain.Transaction, 0, cfg.Batch)
				for len(batch) < cfg.Batch {
					batch = append(batch, txs[pos%len(txs)])
					pos++
				}
				requests.Add(1)
				txsOffered.Add(int64(len(batch)))
				ok, _, err := target.SubmitTxs(source, batch)
				switch {
				case err != nil:
					errs.Add(1)
				case ok:
					accepted.Add(1)
					txsAccepted.Add(int64(len(batch)))
				default:
					shed.Add(1)
				}
				batches++
				if cfg.ReportEvery > 0 && batches%cfg.ReportEvery == 0 {
					requests.Add(1)
					txsOffered.Add(int64(cfg.Batch))
					ok, _, err := target.SubmitReport(source, ingest.Report{
						Committee: c % cfg.Committees,
						TxCount:   cfg.Batch,
					})
					switch {
					case err != nil:
						errs.Add(1)
					case ok:
						accepted.Add(1)
						txsAccepted.Add(int64(cfg.Batch))
					default:
						shed.Add(1)
					}
				}
			}
		}(c, rng.Split())
	}
	wg.Wait()

	return Stats{
		Requests:    requests.Load(),
		Accepted:    accepted.Load(),
		Shed:        shed.Load(),
		Errors:      errs.Load(),
		TxsOffered:  txsOffered.Load(),
		TxsAccepted: txsAccepted.Load(),
	}, nil
}
