package ingest

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"

	"mvcom/internal/chain"
)

// DefaultMaxBody is the request-body cap applied when NewHandler gets
// maxBody <= 0.
const DefaultMaxBody = 1 << 20

// SourceHeader lets a client name its admission-bucket source; absent,
// the remote address's host is the source.
const SourceHeader = "X-MVCom-Source"

// retryAfterSeconds is the Retry-After hint sent with 429 responses:
// one epoch's worth of backoff is enough for the queue to flush.
const retryAfterSeconds = "1"

// txsRequest is the POST /txs body: a transaction batch, optionally
// naming its source (the header wins when both are set).
type txsRequest struct {
	Source string              `json:"source,omitempty"`
	Txs    []chain.Transaction `json:"txs"`
}

// ackResponse is every ingest endpoint's reply body.
type ackResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// NewHandler returns the HTTP ingest front end for stream:
//
//	POST /tx      one chain.Transaction
//	POST /txs     {"source": "...", "txs": [...]}
//	POST /report  {"committee": N, "txCount": N, "latency": S}
//	GET  /stats   accounting snapshot (ingest.Stats)
//
// Bodies above maxBody bytes (default DefaultMaxBody) are rejected with
// 413; admission sheds map to 429 (rate, queue; with Retry-After), 503
// (drain), and 400 (invalid).
func NewHandler(stream *NetStream, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tx", func(w http.ResponseWriter, r *http.Request) {
		var tx chain.Transaction
		if !decodeBody(w, r, stream, maxBody, &tx) {
			return
		}
		writeAck(w, stream.Submit(sourceOf(r), []chain.Transaction{tx}))
	})
	mux.HandleFunc("POST /txs", func(w http.ResponseWriter, r *http.Request) {
		var req txsRequest
		if !decodeBody(w, r, stream, maxBody, &req) {
			return
		}
		src := sourceOf(r)
		if src == "" {
			src = req.Source
		}
		writeAck(w, stream.Submit(src, req.Txs))
	})
	mux.HandleFunc("POST /report", func(w http.ResponseWriter, r *http.Request) {
		var rep Report
		if !decodeBody(w, r, stream, maxBody, &rep) {
			return
		}
		writeAck(w, stream.SubmitReport(sourceOf(r), rep))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(stream.Stats())
	})
	return mux
}

// sourceOf picks the admission source: the explicit header, else the
// peer host (one bucket per client machine).
func sourceOf(r *http.Request) string {
	if src := r.Header.Get(SourceHeader); src != "" {
		return src
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// decodeBody decodes a capped JSON body into v, answering 413 on an
// oversized body (counted as a "body" shed) and 400 on malformed JSON.
// Returns false when a response was already written.
func decodeBody(w http.ResponseWriter, r *http.Request, stream *NetStream, maxBody int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			stream.ShedBody()
			writeJSON(w, http.StatusRequestEntityTooLarge, ackResponse{Reason: "body"})
			return false
		}
		stream.requests.Add(1)
		stream.cfg.Obs.RequestSeen()
		stream.shed("invalid", 0)
		writeJSON(w, http.StatusBadRequest, ackResponse{Reason: "invalid"})
		return false
	}
	return true
}

// writeAck maps an admission outcome ("" = accepted) to its HTTP shape.
func writeAck(w http.ResponseWriter, reason string) {
	switch reason {
	case "":
		writeJSON(w, http.StatusOK, ackResponse{Accepted: true})
	case "rate", "queue":
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusTooManyRequests, ackResponse{Reason: reason})
	case "drain":
		writeJSON(w, http.StatusServiceUnavailable, ackResponse{Reason: reason})
	default:
		writeJSON(w, http.StatusBadRequest, ackResponse{Reason: reason})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
