package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"

	"mvcom/internal/chain"
)

// The framed-TCP front end speaks internal/dist's wire idiom: one JSON
// envelope per line, {"type": "...", "body": {...}}, answered line by
// line with an Ack. It exists for clients that hold a connection open
// and stream batches without per-request HTTP overhead.

// Envelope is one framed request line.
type Envelope struct {
	Type string          `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// TCP envelope types.
const (
	MsgTxs    = "txs"
	MsgReport = "report"
)

// Ack is one framed response line.
type Ack struct {
	Accepted   bool   `json:"accepted"`
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retryAfterSeconds,omitempty"`
}

// TCPServer accepts framed ingest connections and feeds a NetStream.
type TCPServer struct {
	ln      net.Listener
	stream  *NetStream
	maxLine int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
}

// ServeTCP starts serving framed ingest on ln. maxLine caps one
// envelope's bytes (<= 0 defaults to DefaultMaxBody); longer lines are
// shed with reason "body" and the connection is dropped (framing can no
// longer be trusted). Close stops the listener and every connection.
func ServeTCP(ln net.Listener, stream *NetStream, maxLine int) *TCPServer {
	if maxLine <= 0 {
		maxLine = DefaultMaxBody
	}
	s := &TCPServer{
		ln:      ln,
		stream:  stream,
		maxLine: maxLine,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and closes every open connection.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	<-s.done
	return err
}

func (s *TCPServer) acceptLoop() {
	defer close(s.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	source := connSource(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), s.maxLine)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env Envelope
		ack := Ack{}
		if err := json.Unmarshal(line, &env); err != nil {
			s.stream.requests.Add(1)
			s.stream.cfg.Obs.RequestSeen()
			ack.Reason = s.stream.shed("invalid", 0)
		} else {
			ack.Reason = s.dispatch(source, env)
		}
		ack.Accepted = ack.Reason == ""
		if ack.Reason == "rate" || ack.Reason == "queue" {
			ack.RetryAfter = 1
		}
		if err := enc.Encode(ack); err != nil {
			return
		}
	}
	if err := sc.Err(); errors.Is(err, bufio.ErrTooLong) {
		// The envelope overflowed the frame cap: count it as a body
		// shed, best-effort answer, and drop the connection — resyncing
		// a torn frame is not worth the complexity.
		s.stream.ShedBody()
		_ = enc.Encode(Ack{Reason: "body"})
	}
}

// dispatch routes one decoded envelope through admission.
func (s *TCPServer) dispatch(source string, env Envelope) string {
	switch env.Type {
	case MsgTxs:
		var req txsRequest
		if err := json.Unmarshal(env.Body, &req); err != nil {
			s.stream.requests.Add(1)
			s.stream.cfg.Obs.RequestSeen()
			return s.stream.shed("invalid", 0)
		}
		src := source
		if req.Source != "" {
			src = req.Source
		}
		return s.stream.Submit(src, req.Txs)
	case MsgReport:
		var rep Report
		if err := json.Unmarshal(env.Body, &rep); err != nil {
			s.stream.requests.Add(1)
			s.stream.cfg.Obs.RequestSeen()
			return s.stream.shed("invalid", 0)
		}
		return s.stream.SubmitReport(source, rep)
	default:
		s.stream.requests.Add(1)
		s.stream.cfg.Obs.RequestSeen()
		return s.stream.shed("invalid", 0)
	}
}

// connSource buckets a connection by peer host.
func connSource(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return host
}

// Dial-side helper: Client streams framed batches over one connection.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// DialTCP connects a framed ingest client.
func DialTCP(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), DefaultMaxBody)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// send frames one envelope and reads its ack.
func (c *Client) send(typ string, body any) (Ack, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Ack{}, err
	}
	if err := c.enc.Encode(Envelope{Type: typ, Body: raw}); err != nil {
		return Ack{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Ack{}, err
		}
		return Ack{}, errors.New("ingest: connection closed before ack")
	}
	var ack Ack
	if err := json.Unmarshal(c.sc.Bytes(), &ack); err != nil {
		return Ack{}, err
	}
	return ack, nil
}

// SubmitTxs streams one transaction batch and returns the server's ack.
func (c *Client) SubmitTxs(source string, txs []chain.Transaction) (Ack, error) {
	return c.send(MsgTxs, txsRequest{Source: source, Txs: txs})
}

// SubmitReport streams one shard report and returns the server's ack.
func (c *Client) SubmitReport(rep Report) (Ack, error) {
	return c.send(MsgReport, rep)
}
