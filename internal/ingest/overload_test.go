package ingest

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"mvcom/internal/epoch"
)

// overloadSeconds returns the sustained-overload duration: 2s by
// default, extendable via MVCOM_INGEST_OVERLOAD_SECONDS for soak runs.
func overloadSeconds() time.Duration {
	if v := os.Getenv("MVCOM_INGEST_OVERLOAD_SECONDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 2 * time.Second
}

// TestOverloadBoundedHeap is the soak-style overload gate in miniature:
// clients offer 2× the admission capacity for a sustained window while
// a real pipeline serves. The queue must hold at its watermark (shed,
// not grow), the post-GC heap trend must stay flat, and after a
// graceful drain every admitted transaction must be settled and every
// request accounted accepted-or-shed.
func TestOverloadBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak skipped in -short")
	}
	const (
		ratePerSource = 2000 // txs/s admitted per source
		batch         = 100
		clients       = 4
		queueCap      = 4000
	)
	stream := NewStream(StreamConfig{
		Committees:  4,
		Params:      epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		QueueTxs:    queueCap,
		Rate:        ratePerSource,
		Burst:       2 * batch,
		MinBatchTxs: 500,
		MaxWait:     20 * time.Millisecond,
	})
	p := testPipeline(t, 4, stream, 2, 65)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- p.Serve(ctx, epoch.AcceptAll{}, stream)
	}()

	duration := overloadSeconds()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Each client offers 2× its admitted rate: half its traffic must
	// shed by construction.
	interval := time.Duration(float64(batch) / (2 * ratePerSource) * float64(time.Second))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := string(rune('a' + c))
			tick := time.NewTicker(interval)
			defer tick.Stop()
			id := uint64(c) << 32
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					stream.Submit(src, mkTxs(batch, id))
					id += batch
				}
			}
		}(c)
	}

	// Post-GC heap windows while the overload runs.
	var heaps []uint64
	var ms runtime.MemStats
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		time.Sleep(duration / 10)
		runtime.GC()
		runtime.ReadMemStats(&ms)
		heaps = append(heaps, ms.HeapAlloc)
		if n := stream.queue.Len(); n > queueCap {
			t.Fatalf("queue grew past its watermark: %d > %d", n, queueCap)
		}
	}
	close(stop)
	wg.Wait()

	stream.Drain()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not end after Drain")
	}

	st := stream.Stats()
	checkSettled(t, st)
	if st.Accepted+st.Reports+st.Shed() != st.Requests {
		t.Fatalf("request accounting leak: %+v", st)
	}
	if st.ShedRate == 0 {
		t.Fatalf("2x overload shed nothing: %+v", st)
	}
	if st.CommittedTxs == 0 {
		t.Fatalf("nothing committed under overload: %+v", st)
	}
	// Flat post-GC heap trend: the minimum of the late windows must not
	// sit meaningfully above the minimum of the early windows.
	if len(heaps) >= 4 {
		min := func(xs []uint64) uint64 {
			m := xs[0]
			for _, x := range xs[1:] {
				if x < m {
					m = x
				}
			}
			return m
		}
		early := min(heaps[:len(heaps)/2])
		late := min(heaps[len(heaps)/2:])
		const slack = 8 << 20 // generous for a short window; soak runs tighten by duration
		if late > early+slack {
			t.Fatalf("post-GC heap grew under sustained overload: early min %d, late min %d", early, late)
		}
	}
}
