package ingest

import (
	"sync"
	"time"
)

// Buckets is a bounded set of per-source token buckets: each source
// refills at Rate transactions per second up to Burst, and a submission
// of n transactions needs n tokens. The map itself is bounded — above
// MaxSources the stalest source is evicted — so a rotating swarm of
// client identities cannot grow the heap ("never unbounded" applies to
// the admission state too, not just the queue).
type Buckets struct {
	rate       float64
	burst      float64
	maxSources int
	now        func() time.Time

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewBuckets returns a bucket set refilling at rate tx/s with the given
// burst. rate <= 0 disables rate limiting (Allow always true). burst <= 0
// defaults to rate (a one-second burst); maxSources <= 0 defaults to
// 1024.
func NewBuckets(rate, burst float64, maxSources int) *Buckets {
	if burst <= 0 {
		burst = rate
	}
	if maxSources <= 0 {
		maxSources = 1024
	}
	return &Buckets{
		rate:       rate,
		burst:      burst,
		maxSources: maxSources,
		now:        time.Now,
		m:          make(map[string]*bucket),
	}
}

// SetClock overrides the bucket clock for tests.
func (b *Buckets) SetClock(now func() time.Time) { b.now = now }

// Allow reports whether source may submit n transactions now, consuming
// the tokens when it may. A single submission larger than the burst can
// never pass; nil Buckets or rate <= 0 always allows.
func (b *Buckets) Allow(source string, n int) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	if n <= 0 {
		n = 1
	}
	need := float64(n)
	if need > b.burst {
		return false
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	bk, ok := b.m[source]
	if !ok {
		if len(b.m) >= b.maxSources {
			b.evictStalest()
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[source] = bk
	} else {
		elapsed := now.Sub(bk.last).Seconds()
		if elapsed > 0 {
			bk.tokens += elapsed * b.rate
			if bk.tokens > b.burst {
				bk.tokens = b.burst
			}
			bk.last = now
		}
	}
	if bk.tokens < need {
		return false
	}
	bk.tokens -= need
	return true
}

// Sources returns how many sources currently hold a bucket.
func (b *Buckets) Sources() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// evictStalest drops the least-recently-refilled bucket (caller holds
// mu). An evicted source that returns simply starts a fresh full bucket,
// which only ever errs toward admitting — acceptable for a bound that
// exists to cap memory, not to be a security boundary.
func (b *Buckets) evictStalest() {
	var stalest string
	var when time.Time
	first := true
	for src, bk := range b.m {
		if first || bk.last.Before(when) {
			stalest, when, first = src, bk.last, false
		}
	}
	if !first {
		delete(b.m, stalest)
	}
}
