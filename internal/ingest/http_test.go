package ingest

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mvcom/internal/epoch"
)

// newTestServer wires a NetStream with tight admission knobs behind the
// HTTP handler: queue watermark 100 txs, 10 tx/s per source with burst
// 50, 4 KiB bodies.
func newTestServer(t *testing.T) (*httptest.Server, *NetStream, *fakeClock) {
	t.Helper()
	stream := NewStream(StreamConfig{
		Committees: 4,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		QueueTxs:   100,
		Rate:       10,
		Burst:      50,
	})
	clock := newFakeClock()
	stream.Buckets().SetClock(clock.now)
	srv := httptest.NewServer(NewHandler(stream, 4096))
	t.Cleanup(srv.Close)
	return srv, stream, clock
}

func postJSON(t *testing.T, url, source string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if source != "" {
		req.Header.Set(SourceHeader, source)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeAck(t *testing.T, resp *http.Response) ackResponse {
	t.Helper()
	var ack ackResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// TestHTTPAdmission is the admission table over the HTTP front end:
// accepted traffic, token-bucket sheds (429 + Retry-After), queue
// watermark sheds (429 + Retry-After), oversized bodies (413), invalid
// payloads (400), and drain (503).
func TestHTTPAdmission(t *testing.T) {
	srv, stream, clock := newTestServer(t)

	// Accepted single tx.
	resp := postJSON(t, srv.URL+"/tx", "alice", mkTxs(1, 0)[0])
	if resp.StatusCode != http.StatusOK || !decodeAck(t, resp).Accepted {
		t.Fatalf("single tx: status %d", resp.StatusCode)
	}

	// Accepted batch.
	resp = postJSON(t, srv.URL+"/txs", "alice", txsRequest{Txs: mkTxs(40, 100)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}

	// Token bucket: alice has spent 41 of burst 50 — a 10-tx batch tips
	// it over and sheds with Retry-After.
	resp = postJSON(t, srv.URL+"/txs", "alice", txsRequest{Txs: mkTxs(10, 200)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate shed: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate shed without Retry-After")
	}
	if ack := decodeAck(t, resp); ack.Reason != "rate" {
		t.Fatalf("rate shed reason %q", ack.Reason)
	}

	// A different source is unaffected...
	resp = postJSON(t, srv.URL+"/txs", "bob", txsRequest{Txs: mkTxs(50, 300)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob's batch: status %d", resp.StatusCode)
	}

	// ...but the queue (91 txs) is near its 100-tx watermark now: a
	// fresh source's 10-tx batch tips it and sheds "queue".
	clock.advance(time.Hour) // rule out rate as the shed reason
	resp = postJSON(t, srv.URL+"/txs", "carol", txsRequest{Txs: mkTxs(10, 400)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue shed: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue shed without Retry-After")
	}
	if ack := decodeAck(t, resp); ack.Reason != "queue" {
		t.Fatalf("queue shed reason %q", ack.Reason)
	}
	// A batch that still fits is admitted.
	resp = postJSON(t, srv.URL+"/txs", "carol", txsRequest{Txs: mkTxs(9, 500)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fitting batch: status %d", resp.StatusCode)
	}

	// Oversized body: 413, counted as a "body" shed.
	big, err := http.NewRequest(http.MethodPost, srv.URL+"/txs",
		strings.NewReader(`{"txs":[`+strings.Repeat(`{"ID":1},`, 4096)+`{"ID":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	bigResp, err := http.DefaultClient.Do(big)
	if err != nil {
		t.Fatal(err)
	}
	defer bigResp.Body.Close()
	if bigResp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", bigResp.StatusCode)
	}

	// Malformed JSON: 400.
	bad, _ := http.NewRequest(http.MethodPost, srv.URL+"/tx", strings.NewReader("{not json"))
	badResp, err := http.DefaultClient.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", badResp.StatusCode)
	}

	// Reports: accepted, then invalid committee.
	resp = postJSON(t, srv.URL+"/report", "shard-1", Report{Committee: 1, TxCount: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/report", "shard-1", Report{Committee: 99, TxCount: 5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid report: status %d, want 400", resp.StatusCode)
	}

	// Drain: 503.
	stream.Drain()
	resp = postJSON(t, srv.URL+"/tx", "alice", mkTxs(1, 600)[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain shed: status %d, want 503", resp.StatusCode)
	}

	// Every request is accounted: accepted + shed == requests.
	st := stream.Stats()
	if st.Accepted+st.Reports+st.Shed() != st.Requests {
		t.Fatalf("request accounting leak: %+v", st)
	}
	if st.ShedRate != 1 || st.ShedQueue != 1 || st.ShedBody != 1 || st.ShedDrain != 1 || st.ShedInvalid != 2 {
		t.Fatalf("shed breakdown: %+v", st)
	}
}

// TestHTTPStats checks the stats endpoint round-trips the accounting
// snapshot.
func TestHTTPStats(t *testing.T) {
	srv, stream, _ := newTestServer(t)
	if reason := stream.Submit("x", mkTxs(5, 0)); reason != "" {
		t.Fatal(reason)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AcceptedTxs != 5 || st.QueueTxs != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHTTPSourceFallback: without the source header, the peer host is
// the bucket source, so one hammering host cannot starve the others —
// but here both clients share the loopback host and therefore a bucket.
func TestHTTPSourceFallback(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for i := 0; i < 2; i++ {
		resp := postJSON(t, srv.URL+"/txs", "", txsRequest{Txs: mkTxs(25, uint64(i)*100)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}
	// Burst 50 spent by the shared loopback bucket.
	resp := postJSON(t, srv.URL+"/txs", "", txsRequest{Txs: mkTxs(25, 1000)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shared-host bucket: status %d, want 429", resp.StatusCode)
	}
}
