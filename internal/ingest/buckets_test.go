package ingest

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is an adjustable bucket clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time             { return c.t }
func (c *fakeClock) advance(d time.Duration)    { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1000, 0)} }
func clocked(b *Buckets, c *fakeClock) *Buckets { b.SetClock(c.now); return b }

// TestBucketsAdmission is the token-bucket table test: burst caps,
// refill over time, per-source isolation, and the rate-off escape.
func TestBucketsAdmission(t *testing.T) {
	type step struct {
		source  string
		n       int
		advance time.Duration // applied before the call
		want    bool
	}
	cases := []struct {
		name        string
		rate, burst float64
		steps       []step
	}{
		{
			name: "burst then starve", rate: 10, burst: 30,
			steps: []step{
				{source: "a", n: 30, want: true},                        // full burst drains the bucket
				{source: "a", n: 1, want: false},                        // empty
				{source: "b", n: 10, want: true},                        // sources are isolated
				{source: "a", n: 10, advance: time.Second, want: true},  // 10 tokens refilled
				{source: "a", n: 11, advance: time.Second, want: false}, // only 10 back
			},
		},
		{
			name: "oversized single batch never passes", rate: 10, burst: 20,
			steps: []step{
				{source: "a", n: 21, want: false},
				{source: "a", n: 21, advance: time.Hour, want: false}, // no amount of waiting helps
				{source: "a", n: 20, want: true},
			},
		},
		{
			name: "refill clamps at burst", rate: 100, burst: 50,
			steps: []step{
				{source: "a", n: 50, want: true},
				{source: "a", n: 50, advance: time.Hour, want: true}, // refilled, but only to burst
				{source: "a", n: 1, want: false},
			},
		},
		{
			name: "rate off admits everything", rate: 0, burst: 0,
			steps: []step{
				{source: "a", n: 1 << 20, want: true},
				{source: "a", n: 1 << 20, want: true},
			},
		},
		{
			name: "zero-count costs one token", rate: 1, burst: 1,
			steps: []step{
				{source: "a", n: 0, want: true},
				{source: "a", n: 0, want: false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			b := clocked(NewBuckets(tc.rate, tc.burst, 0), clock)
			for i, st := range tc.steps {
				clock.advance(st.advance)
				if got := b.Allow(st.source, st.n); got != st.want {
					t.Fatalf("step %d (%s n=%d): Allow = %v, want %v", i, st.source, st.n, got, st.want)
				}
			}
		})
	}
}

// TestBucketsBounded pins the admission-state bound: a rotating swarm
// of sources never grows the bucket map past MaxSources.
func TestBucketsBounded(t *testing.T) {
	clock := newFakeClock()
	b := clocked(NewBuckets(10, 10, 8), clock)
	for i := 0; i < 100; i++ {
		clock.advance(time.Millisecond)
		b.Allow(fmt.Sprintf("src-%d", i), 1)
	}
	if n := b.Sources(); n > 8 {
		t.Fatalf("bucket map grew to %d sources, bound is 8", n)
	}
	// Recently active sources keep their state across evictions of
	// stale ones: src-99 just spent a token from its burst of 10.
	if !b.Allow("src-99", 9) {
		t.Fatal("recently active source lost its bucket state")
	}
	if b.Allow("src-99", 1) {
		t.Fatal("src-99 should be out of tokens")
	}
}

// TestBucketsNilSafe: a nil bucket set admits everything (rate limiting
// off).
func TestBucketsNilSafe(t *testing.T) {
	var b *Buckets
	if !b.Allow("x", 1000) {
		t.Fatal("nil Buckets must admit")
	}
	if b.Sources() != 0 {
		t.Fatal("nil Buckets has no sources")
	}
}
