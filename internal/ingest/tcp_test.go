package ingest

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"mvcom/internal/epoch"
)

func newTCPTestServer(t *testing.T) (*TCPServer, *NetStream) {
	t.Helper()
	stream := NewStream(StreamConfig{
		Committees: 4,
		Params:     epoch.EpochParams{Alpha: 1.5, Capacity: 1 << 30, Nmin: 1},
		QueueTxs:   100,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, stream, 4096)
	t.Cleanup(func() { _ = srv.Close() })
	return srv, stream
}

// TestTCPFramedIngest drives the framed front end through a client:
// accepted batches and reports, queue watermark sheds with a retry
// hint, and unknown/invalid envelopes.
func TestTCPFramedIngest(t *testing.T) {
	srv, stream := newTCPTestServer(t)
	c, err := DialTCP(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ack, err := c.SubmitTxs("alice", mkTxs(60, 0))
	if err != nil || !ack.Accepted {
		t.Fatalf("batch: ack %+v err %v", ack, err)
	}
	ack, err = c.SubmitReport(Report{Committee: 2, TxCount: 9})
	if err != nil || !ack.Accepted {
		t.Fatalf("report: ack %+v err %v", ack, err)
	}
	// Watermark: 60 queued, another 60 overflows the 100-tx mark.
	ack, err = c.SubmitTxs("alice", mkTxs(60, 100))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted || ack.Reason != "queue" || ack.RetryAfter <= 0 {
		t.Fatalf("watermark ack: %+v", ack)
	}
	// Invalid report committee.
	ack, err = c.SubmitReport(Report{Committee: 77, TxCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted || ack.Reason != "invalid" {
		t.Fatalf("invalid report ack: %+v", ack)
	}

	st := stream.Stats()
	if st.AcceptedTxs != 60 || st.ReportTxs != 9 || st.ShedQueue != 1 || st.ShedInvalid != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestTCPRawFrames exercises the wire protocol below the client helper:
// unknown envelope types and non-JSON lines are shed "invalid", and an
// oversized frame is shed "body" before the connection drops.
func TestTCPRawFrames(t *testing.T) {
	srv, stream := newTCPTestServer(t)

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) Ack {
		t.Helper()
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		reply, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var ack Ack
		if err := json.Unmarshal(reply, &ack); err != nil {
			t.Fatal(err)
		}
		return ack
	}

	if ack := send(`{"type":"bogus"}`); ack.Accepted || ack.Reason != "invalid" {
		t.Fatalf("unknown type: %+v", ack)
	}
	if ack := send(`this is not json`); ack.Accepted || ack.Reason != "invalid" {
		t.Fatalf("non-JSON line: %+v", ack)
	}

	// Oversized frame on a fresh connection: "body" shed, then EOF.
	conn2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	big := `{"type":"txs","body":{"txs":[` + strings.Repeat(`{"ID":1},`, 2000) + `{"ID":2}]}}`
	if len(big) <= 4096 {
		t.Fatalf("test frame not oversized: %d bytes", len(big))
	}
	if _, err := conn2.Write([]byte(big + "\n")); err != nil {
		t.Fatal(err)
	}
	r2 := bufio.NewReader(conn2)
	reply, err := r2.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var ack Ack
	if err := json.Unmarshal(reply, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted || ack.Reason != "body" {
		t.Fatalf("oversized frame ack: %+v", ack)
	}
	if _, err := r2.ReadBytes('\n'); err == nil {
		t.Fatal("connection survived a torn frame")
	}

	st := stream.Stats()
	if st.ShedInvalid != 2 || st.ShedBody != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
