package overlay

import (
	"math"
	"testing"
	"time"

	"mvcom/internal/randx"
)

func newNet(t *testing.T, n int, cfg Config) *Network {
	t.Helper()
	nw, err := NewNetwork(randx.New(1), n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(randx.New(1), 0, Config{}); err != ErrNoNodes {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewNetwork(randx.New(1), -3, Config{}); err != ErrNoNodes {
		t.Fatalf("err = %v", err)
	}
}

func TestDelayPositiveAndVariable(t *testing.T) {
	nw := newNet(t, 10, Config{})
	seen := make(map[time.Duration]bool)
	for i := 0; i < 100; i++ {
		d, ok := nw.Delay(0, 1)
		if !ok {
			t.Fatal("delivery failed with zero loss")
		}
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		seen[d] = true
	}
	if len(seen) < 50 {
		t.Fatalf("delays not variable: %d distinct", len(seen))
	}
}

func TestDelayMeanNearConfigured(t *testing.T) {
	nw := newNet(t, 50, Config{MeanLatency: 100 * time.Millisecond})
	var sum float64
	const n = 30000
	for i := 0; i < n; i++ {
		d, ok := nw.Delay(i%50, (i+7)%50)
		if !ok {
			continue
		}
		sum += d.Seconds()
	}
	mean := sum / n
	// Node factors have mean 1 each; allow a generous band.
	if mean < 0.06 || mean > 0.16 {
		t.Fatalf("mean delay %.4f s, want ~0.1", mean)
	}
}

func TestDelayBadNodes(t *testing.T) {
	nw := newNet(t, 3, Config{})
	if _, ok := nw.Delay(-1, 0); ok {
		t.Fatal("negative src accepted")
	}
	if _, ok := nw.Delay(0, 99); ok {
		t.Fatal("out-of-range dst accepted")
	}
}

func TestFailRecover(t *testing.T) {
	nw := newNet(t, 4, Config{})
	if err := nw.Fail(2); err != nil {
		t.Fatal(err)
	}
	if !nw.Failed(2) {
		t.Fatal("node not marked failed")
	}
	if _, ok := nw.Delay(0, 2); ok {
		t.Fatal("failed node received a message")
	}
	if _, ok := nw.Delay(2, 0); ok {
		t.Fatal("failed node sent a message")
	}
	if _, ok := nw.RTT(0, 2); ok {
		t.Fatal("ping to failed node succeeded")
	}
	if err := nw.Recover(2); err != nil {
		t.Fatal(err)
	}
	if nw.Failed(2) {
		t.Fatal("node still failed after recover")
	}
	if _, ok := nw.Delay(0, 2); !ok {
		t.Fatal("recovered node unreachable")
	}
	if err := nw.Fail(99); err != ErrUnknownNode {
		t.Fatalf("Fail(99) = %v", err)
	}
	if err := nw.Recover(-1); err != ErrUnknownNode {
		t.Fatalf("Recover(-1) = %v", err)
	}
	if nw.Failed(99) {
		t.Fatal("unknown node reported failed")
	}
}

func TestLossRate(t *testing.T) {
	nw := newNet(t, 2, Config{LossRate: 0.5})
	lost := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, ok := nw.Delay(0, 1); !ok {
			lost++
		}
	}
	p := float64(lost) / n
	if math.Abs(p-0.5) > 0.03 {
		t.Fatalf("loss rate %.3f, want 0.5", p)
	}
}

func TestLossRateClamped(t *testing.T) {
	nw := newNet(t, 2, Config{LossRate: 5})
	if _, ok := nw.Delay(0, 1); ok {
		t.Fatal("loss rate 5 should clamp to 1 (always lost)")
	}
	nw2 := newNet(t, 2, Config{LossRate: -1})
	if _, ok := nw2.Delay(0, 1); !ok {
		t.Fatal("negative loss rate should clamp to 0")
	}
}

func TestRTTIsTwoDelays(t *testing.T) {
	nw := newNet(t, 2, Config{})
	for i := 0; i < 100; i++ {
		rtt, ok := nw.RTT(0, 1)
		if !ok || rtt <= 0 {
			t.Fatalf("rtt %v ok=%v", rtt, ok)
		}
	}
}

func TestBroadcastDelay(t *testing.T) {
	nw := newNet(t, 6, Config{})
	members := []int{0, 1, 2, 3, 4, 5}
	d, ok := nw.BroadcastDelay(0, members)
	if !ok || d <= 0 {
		t.Fatalf("broadcast %v ok=%v", d, ok)
	}
	// Broadcast max must be at least any single link sample in the same
	// draw set — verified statistically: it should exceed the mean delay
	// most of the time with 5 receivers.
	exceeds := 0
	for i := 0; i < 200; i++ {
		d, _ := nw.BroadcastDelay(0, members)
		if d > 100*time.Millisecond {
			exceeds++
		}
	}
	if exceeds < 100 {
		t.Fatalf("broadcast max rarely exceeds mean link latency: %d/200", exceeds)
	}
}

func TestBroadcastDelaySelfOnly(t *testing.T) {
	nw := newNet(t, 2, Config{})
	if _, ok := nw.BroadcastDelay(0, []int{0}); ok {
		t.Fatal("self-only broadcast reported reachable")
	}
}

func TestBroadcastSkipsFailed(t *testing.T) {
	nw := newNet(t, 3, Config{})
	if err := nw.Fail(2); err != nil {
		t.Fatal(err)
	}
	d, ok := nw.BroadcastDelay(0, []int{0, 1, 2})
	if !ok || d <= 0 {
		t.Fatal("broadcast should still reach node 1")
	}
	if err := nw.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.BroadcastDelay(0, []int{0, 1, 2}); ok {
		t.Fatal("broadcast with all receivers failed reported success")
	}
}

func TestGossipRounds(t *testing.T) {
	tests := []struct {
		k, fanout, want int
	}{
		{0, 4, 0},
		{1, 4, 0},
		{4, 4, 2},   // log_4(4)=1, +1
		{16, 4, 3},  // log_4(16)=2, +1
		{100, 4, 5}, // ceil(log_4 100)=4, +1
		{10, 1, 5},  // fanout clamped to 2: ceil(log2 10)=4, +1
	}
	for _, tt := range tests {
		if got := GossipRounds(tt.k, tt.fanout); got != tt.want {
			t.Fatalf("GossipRounds(%d,%d) = %d, want %d", tt.k, tt.fanout, got, tt.want)
		}
	}
}

func TestConfigureOverlayGrowsWithMembers(t *testing.T) {
	nw := newNet(t, 400, Config{})
	small := members(0, 20)
	large := members(0, 400)
	var sumSmall, sumLarge float64
	for i := 0; i < 20; i++ {
		a, err := nw.ConfigureOverlay(small, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		b, err := nw.ConfigureOverlay(large, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		sumSmall += a.Seconds()
		sumLarge += b.Seconds()
	}
	if sumLarge <= sumSmall {
		t.Fatalf("overlay configuration did not grow with membership: %v vs %v", sumSmall, sumLarge)
	}
}

func TestConfigureOverlayEmpty(t *testing.T) {
	nw := newNet(t, 2, Config{})
	if _, err := nw.ConfigureOverlay(nil, 0); err != ErrNoNodes {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigureOverlayAllFailedStillTerminates(t *testing.T) {
	nw := newNet(t, 4, Config{})
	for i := 0; i < 4; i++ {
		if err := nw.Fail(i); err != nil {
			t.Fatal(err)
		}
	}
	d, err := nw.ConfigureOverlay(members(0, 4), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("expected timeout-charged latency")
	}
}

func TestDetectorSuspectsFailedNode(t *testing.T) {
	nw := newNet(t, 3, Config{})
	det, err := NewDetector(nw, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Fail(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if det.Probe(1) {
			t.Fatalf("suspected after only %d misses", i+1)
		}
	}
	if !det.Probe(1) {
		t.Fatal("not suspected after threshold misses")
	}
	if !det.Suspected(1) {
		t.Fatal("Suspected disagrees with Probe")
	}
}

func TestDetectorRecoveryClearsSuspicion(t *testing.T) {
	nw := newNet(t, 3, Config{})
	det, err := NewDetector(nw, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Fail(1); err != nil {
		t.Fatal(err)
	}
	det.Probe(1)
	det.Probe(1)
	if !det.Suspected(1) {
		t.Fatal("should be suspected")
	}
	if err := nw.Recover(1); err != nil {
		t.Fatal(err)
	}
	if det.Probe(1) {
		t.Fatal("healthy probe should clear suspicion")
	}
	if det.Suspected(1) {
		t.Fatal("suspicion not cleared")
	}
}

func TestDetectorHealthyNodeNeverSuspected(t *testing.T) {
	nw := newNet(t, 2, Config{})
	det, err := NewDetector(nw, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if det.Probe(1) {
			t.Fatal("healthy node suspected")
		}
	}
}

func TestDetectorSlowRTTCountsAsMiss(t *testing.T) {
	nw := newNet(t, 2, Config{MeanLatency: time.Second})
	// maxRTT of 1 ns: every probe misses.
	det, err := NewDetector(nw, 0, time.Nanosecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	det.Probe(1)
	if !det.Probe(1) {
		t.Fatal("slow RTTs should accumulate misses")
	}
}

func TestNewDetectorErrors(t *testing.T) {
	nw := newNet(t, 2, Config{})
	if _, err := NewDetector(nw, 5, 0, 0); err != ErrUnknownNode {
		t.Fatalf("err = %v", err)
	}
	det, err := NewDetector(nw, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if det.String() == "" {
		t.Fatal("empty String()")
	}
}

func members(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestWithRegionsCrossLinksSlower(t *testing.T) {
	mean := func(nw *Network, src, dst int) float64 {
		var sum float64
		for i := 0; i < 3000; i++ {
			d, ok := nw.Delay(src, dst)
			if !ok {
				t.Fatal("delivery failed")
			}
			sum += d.Seconds()
		}
		return sum / 3000
	}
	nw := newNet(t, 8, Config{}).WithRegions(2, 5)
	// Nodes 0 and 2 share region 0; nodes 0 and 1 are cross-region.
	intra := mean(nw, 0, 2)
	cross := mean(nw, 0, 1)
	if cross < 3*intra {
		t.Fatalf("cross-region links not slower: intra %.4f cross %.4f", intra, cross)
	}
}

func TestWithRegionsNoOpCases(t *testing.T) {
	nw := newNet(t, 4, Config{})
	if nw.WithRegions(1, 10) != nw || nw.WithRegions(3, 0.5) != nw {
		t.Fatal("WithRegions should return the receiver")
	}
	// Still flat: delays succeed and are unaffected by region math.
	if _, ok := nw.Delay(0, 1); !ok {
		t.Fatal("flat network delivery failed")
	}
}
