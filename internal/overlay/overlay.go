// Package overlay models the peer-to-peer network substrate of the sharded
// blockchain: pairwise message latencies, broadcast/gossip cost within a
// committee, the overlay-configuration stage in which committee members
// discover each other, and the ping-based failure detector the final
// committee uses to declare a member committee failed (Section V of the
// paper: "once a member committee is found having a large ping delay, we
// say that the committee can be viewed as failed").
package overlay

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mvcom/internal/randx"
)

// Errors returned by the network model.
var (
	ErrUnknownNode = errors.New("overlay: unknown node")
	ErrNoNodes     = errors.New("overlay: network has no nodes")
)

// Config parameterizes the latency model. Link latencies are lognormal —
// the standard heavy-tailed model for WAN round trips.
type Config struct {
	// MeanLatency is the mean one-way message latency. Default 100 ms.
	MeanLatency time.Duration
	// Sigma is the lognormal spread of link latencies. Default 0.5.
	Sigma float64
	// LossRate is the probability an individual message is lost. Default 0.
	LossRate float64
}

func (c Config) withDefaults() Config {
	if c.MeanLatency <= 0 {
		c.MeanLatency = 100 * time.Millisecond
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.5
	}
	if c.LossRate < 0 {
		c.LossRate = 0
	}
	if c.LossRate > 1 {
		c.LossRate = 1
	}
	return c
}

// Network is a latency model over a set of nodes. Each node has a
// location quality factor; a pair's base latency multiplies both factors,
// yielding a consistent triangle-inequality-free but realistic topology.
// Failed nodes answer nothing.
type Network struct {
	cfg     Config
	rng     *randx.RNG
	factors []float64
	failed  []bool
	// regions > 1 partitions nodes geographically; cross-region links
	// pay crossFactor (see WithRegions).
	regions     int
	crossFactor float64
}

// NewNetwork builds a network of n nodes. Per-node factors are sampled at
// construction so that "slow" nodes stay slow across the run.
func NewNetwork(rng *randx.RNG, n int, cfg Config) (*Network, error) {
	if n <= 0 {
		return nil, ErrNoNodes
	}
	cfg = cfg.withDefaults()
	nw := &Network{
		cfg:     cfg,
		rng:     rng,
		factors: make([]float64, n),
		failed:  make([]bool, n),
	}
	for i := range nw.factors {
		// Per-node multiplier centered at 1 with mild spread.
		nw.factors[i] = rng.LogNormalMeanSpread(1.0, 0.25)
	}
	return nw, nil
}

// Size returns the number of nodes.
func (n *Network) Size() int { return len(n.factors) }

// Fail marks a node as failed; messages to and from it are lost and pings
// time out.
func (n *Network) Fail(node int) error {
	if node < 0 || node >= len(n.failed) {
		return ErrUnknownNode
	}
	n.failed[node] = true
	return nil
}

// Recover brings a failed node back online.
func (n *Network) Recover(node int) error {
	if node < 0 || node >= len(n.failed) {
		return ErrUnknownNode
	}
	n.failed[node] = false
	return nil
}

// Failed reports whether a node is failed.
func (n *Network) Failed(node int) bool {
	return node >= 0 && node < len(n.failed) && n.failed[node]
}

// Delay samples the one-way latency for a message from src to dst. A lost
// message or a failed endpoint returns (+Inf-like max duration, false).
func (n *Network) Delay(src, dst int) (time.Duration, bool) {
	if src < 0 || src >= len(n.factors) || dst < 0 || dst >= len(n.factors) {
		return maxDuration, false
	}
	if n.failed[src] || n.failed[dst] {
		return maxDuration, false
	}
	if n.cfg.LossRate > 0 && n.rng.Bool(n.cfg.LossRate) {
		return maxDuration, false
	}
	base := n.rng.LogNormalMeanSpread(n.cfg.MeanLatency.Seconds(), n.cfg.Sigma)
	d := base * n.factors[src] * n.factors[dst]
	if n.regions > 1 && src%n.regions != dst%n.regions {
		d *= n.crossFactor
	}
	return time.Duration(d * float64(time.Second)), true
}

const maxDuration = time.Duration(math.MaxInt64)

// RTT samples a ping round trip from src to dst. Failed endpoints or lost
// packets yield (maxDuration, false) — the "infinite" connection latency
// the paper's failure detector observes.
func (n *Network) RTT(src, dst int) (time.Duration, bool) {
	fwd, ok := n.Delay(src, dst)
	if !ok {
		return maxDuration, false
	}
	back, ok := n.Delay(dst, src)
	if !ok {
		return maxDuration, false
	}
	return fwd + back, true
}

// BroadcastDelay samples the time for src to deliver one message to every
// node in members: the maximum of the individual link delays (direct
// fan-out). Unreachable members are skipped; if no member is reachable the
// second return is false.
func (n *Network) BroadcastDelay(src int, members []int) (time.Duration, bool) {
	var worst time.Duration
	reached := false
	for _, m := range members {
		if m == src {
			continue
		}
		d, ok := n.Delay(src, m)
		if !ok {
			continue
		}
		reached = true
		if d > worst {
			worst = d
		}
	}
	return worst, reached
}

// GossipRounds estimates the number of gossip rounds to reach all k
// members with a fan-out: ceil(log_fanout(k)) + 1 extra round for stragglers.
func GossipRounds(k, fanout int) int {
	if k <= 1 {
		return 0
	}
	if fanout < 2 {
		fanout = 2
	}
	return int(math.Ceil(math.Log(float64(k))/math.Log(float64(fanout)))) + 1
}

// ConfigureOverlay simulates the Elastico overlay-configuration stage for
// one committee: members exchange membership lists via gossip; the stage
// latency is the number of gossip rounds times a sampled per-round delay
// plus a per-member identity-verification cost. The identity term is what
// makes formation latency grow linearly with network size in Fig. 2(a).
func (n *Network) ConfigureOverlay(members []int, perIdentity time.Duration) (time.Duration, error) {
	if len(members) == 0 {
		return 0, ErrNoNodes
	}
	rounds := GossipRounds(len(members), 4)
	var total time.Duration
	for r := 0; r < rounds; r++ {
		src := members[n.rng.Intn(len(members))]
		d, ok := n.BroadcastDelay(src, members)
		if !ok {
			// Entirely unreachable round; charge a timeout.
			d = 2 * n.cfg.MeanLatency
		}
		total += d
	}
	total += time.Duration(len(members)) * perIdentity
	return total, nil
}

// Detector is the ping-based failure detector: a node is suspected after
// Threshold consecutive ping timeouts (or RTTs above MaxRTT).
type Detector struct {
	net       *Network
	self      int
	maxRTT    time.Duration
	threshold int
	misses    map[int]int
}

// NewDetector builds a detector run by node self. maxRTT defaults to 10×
// the network mean latency; threshold defaults to 3.
func NewDetector(net *Network, self int, maxRTT time.Duration, threshold int) (*Detector, error) {
	if self < 0 || self >= net.Size() {
		return nil, ErrUnknownNode
	}
	if maxRTT <= 0 {
		maxRTT = 10 * net.cfg.MeanLatency
	}
	if threshold <= 0 {
		threshold = 3
	}
	return &Detector{
		net:       net,
		self:      self,
		maxRTT:    maxRTT,
		threshold: threshold,
		misses:    make(map[int]int),
	}, nil
}

// Probe pings the target once and updates suspicion state. It returns
// whether the target is currently suspected.
func (d *Detector) Probe(target int) bool {
	rtt, ok := d.net.RTT(d.self, target)
	if !ok || rtt > d.maxRTT {
		d.misses[target]++
	} else {
		d.misses[target] = 0
	}
	return d.misses[target] >= d.threshold
}

// Suspected reports whether the target has accumulated enough misses.
func (d *Detector) Suspected(target int) bool {
	return d.misses[target] >= d.threshold
}

// String describes the detector configuration.
func (d *Detector) String() string {
	return fmt.Sprintf("overlay.Detector{self=%d maxRTT=%s threshold=%d}", d.self, d.maxRTT, d.threshold)
}

// WithRegions partitions the nodes into r geographic regions (node i in
// region i mod r) and multiplies cross-region link latencies by factor.
// It mutates and returns the network for chaining. Factors below 1 or
// regions below 2 leave the topology flat.
func (n *Network) WithRegions(r int, factor float64) *Network {
	if r < 2 || factor <= 1 {
		return n
	}
	n.regions = r
	n.crossFactor = factor
	return n
}
