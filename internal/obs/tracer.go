package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// EventType identifies a structured trace event.
type EventType uint8

// The typed events emitted by the instrumented subsystems.
const (
	// EvSERound marks a batch of SE transition rounds (Value = rounds).
	EvSERound EventType = iota + 1
	// EvSwapAccept marks an accepted swap that improved the global best
	// (Value = new best utility).
	EvSwapAccept
	// EvReset marks RESET broadcasts re-arming the solution threads
	// (Value = broadcast count in the segment).
	EvReset
	// EvSegmentMerge marks an explorer-segment merge at a kernel sync
	// point (Value = best utility after the merge).
	EvSegmentMerge
	// EvShardJoin marks a dynamic join event entering the candidate set.
	EvShardJoin
	// EvShardLeave marks a dynamic leave event trimming the state space.
	EvShardLeave
	// EvDistSend marks a protocol message sent (Detail = message type).
	EvDistSend
	// EvDistRecv marks a protocol message received (Detail = type).
	EvDistRecv
	// EvDistTaskError marks a worker task failing (Detail = error).
	EvDistTaskError
	// EvEpochPhase marks an epoch pipeline phase transition (Detail =
	// phase name, Value = epoch number).
	EvEpochPhase
	// EvShardAge records a permitted shard's age at inclusion in the
	// final block (Value = age in seconds, Actor = committee).
	EvShardAge
	// EvDistFault marks an injected fault firing at a named fault point
	// (Actor = point, Detail = action).
	EvDistFault
	// EvDistRetry marks a recovery action in the dist layer: a worker
	// reconnect, a task reassignment, or a local-solve fallback
	// (Detail = kind, Actor = worker/task, Value = attempt).
	EvDistRetry
	// EvConvergence marks a convergence-diagnostics emission from the SE
	// kernel: a window sample or the end-of-run summary (Detail = kind,
	// Value = headline number: best utility or d_TV estimate).
	EvConvergence
)

// String names the event type for exposition.
func (t EventType) String() string {
	switch t {
	case EvSERound:
		return "se_round"
	case EvSwapAccept:
		return "se_swap_accept"
	case EvReset:
		return "se_reset"
	case EvSegmentMerge:
		return "se_segment_merge"
	case EvShardJoin:
		return "shard_join"
	case EvShardLeave:
		return "shard_leave"
	case EvDistSend:
		return "dist_send"
	case EvDistRecv:
		return "dist_recv"
	case EvDistTaskError:
		return "dist_task_error"
	case EvEpochPhase:
		return "epoch_phase"
	case EvShardAge:
		return "shard_age"
	case EvDistFault:
		return "dist_fault"
	case EvDistRetry:
		return "dist_retry"
	case EvConvergence:
		return "se_convergence"
	default:
		return "unknown"
	}
}

// MarshalJSON emits the symbolic name, not the raw code.
func (t EventType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON parses the symbolic name back; unknown names decode to 0
// so trace consumers tolerate events from newer writers.
func (t *EventType) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for c := EvSERound; c <= EvConvergence; c++ {
		if c.String() == name {
			*t = c
			return nil
		}
	}
	*t = 0
	return nil
}

// Event is one structured trace record.
type Event struct {
	// Seq is the global emission sequence number (gap-free; gaps in a
	// snapshot mean drops).
	Seq uint64 `json:"seq"`
	// At is the wall-clock emission time.
	At time.Time `json:"at"`
	// Type is the typed event kind.
	Type EventType `json:"type"`
	// Actor identifies the emitting component (worker id, committee, …).
	Actor string `json:"actor,omitempty"`
	// Value carries the event's headline number (utility, count, age).
	Value float64 `json:"value,omitempty"`
	// Detail is free-form context (message type, phase, error text).
	Detail string `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of trace events. Writers never block
// and the buffer never grows: once full, each new event evicts the
// oldest and the eviction is counted as a drop, so the tracer always
// reports exactly how much history it lost.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever emitted == next Seq
	dropped uint64
}

// NewTracer returns a tracer bounded to the given capacity (min 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit appends an event, evicting the oldest when full. Safe for
// concurrent use; no-op on a nil tracer.
func (t *Tracer) Emit(typ EventType, actor string, value float64, detail string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	seq := t.next
	t.next++
	if seq >= uint64(len(t.buf)) {
		t.dropped++
	}
	t.buf[seq%uint64(len(t.buf))] = Event{
		Seq: seq, At: now, Type: typ, Actor: actor, Value: value, Detail: detail,
	}
	t.mu.Unlock()
}

// Snapshot returns the retained events oldest-first plus the number of
// events dropped (evicted) so far.
func (t *Tracer) Snapshot() ([]Event, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capU := uint64(len(t.buf))
	start := uint64(0)
	if n > capU {
		start = n - capU
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, t.buf[s%capU])
	}
	return out, t.dropped
}

// Emitted returns how many events were ever emitted (0 for nil).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events were evicted unread (0 for nil).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
