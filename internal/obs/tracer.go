package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType identifies a structured trace event.
type EventType uint8

// The typed events emitted by the instrumented subsystems.
const (
	// EvSERound marks a batch of SE transition rounds (Value = rounds).
	EvSERound EventType = iota + 1
	// EvSwapAccept marks an accepted swap that improved the global best
	// (Value = new best utility).
	EvSwapAccept
	// EvReset marks RESET broadcasts re-arming the solution threads
	// (Value = broadcast count in the segment).
	EvReset
	// EvSegmentMerge marks an explorer-segment merge at a kernel sync
	// point (Value = best utility after the merge).
	EvSegmentMerge
	// EvShardJoin marks a dynamic join event entering the candidate set.
	EvShardJoin
	// EvShardLeave marks a dynamic leave event trimming the state space.
	EvShardLeave
	// EvDistSend marks a protocol message sent (Detail = message type).
	EvDistSend
	// EvDistRecv marks a protocol message received (Detail = type).
	EvDistRecv
	// EvDistTaskError marks a worker task failing (Detail = error).
	EvDistTaskError
	// EvEpochPhase marks an epoch pipeline phase transition (Detail =
	// phase name, Value = epoch number).
	EvEpochPhase
	// EvShardAge records a permitted shard's age at inclusion in the
	// final block (Value = age in seconds, Actor = committee).
	EvShardAge
	// EvDistFault marks an injected fault firing at a named fault point
	// (Actor = point, Detail = action).
	EvDistFault
	// EvDistRetry marks a recovery action in the dist layer: a worker
	// reconnect, a task reassignment, or a local-solve fallback
	// (Detail = kind, Actor = worker/task, Value = attempt).
	EvDistRetry
	// EvConvergence marks a convergence-diagnostics emission from the SE
	// kernel: a window sample or the end-of-run summary (Detail = kind,
	// Value = headline number: best utility or d_TV estimate).
	EvConvergence
	// EvSpanBegin opens a causal span (Detail = span name, Actor =
	// component; the Event's TraceID/SpanID/ParentID locate it).
	EvSpanBegin
	// EvSpanEnd closes a causal span (Value = duration seconds, Detail =
	// "name" or "name:outcome").
	EvSpanEnd
	// EvClockSync records an NTP-style clock-offset estimate against the
	// session's reference clock (Value = seconds to ADD to this process's
	// timestamps to land on the reference clock, Detail = round-trip
	// time, Actor = worker). mvcom-trace -merge uses the per-dump median
	// to align timelines from machines with skewed clocks.
	EvClockSync
	// EvDecision marks an epoch decision-journal append (Actor = "epoch",
	// Value = epoch number, Detail = "utility=<U>"; TraceID carries the
	// epoch root span's trace so a timeline node joins to its audit
	// entry — see internal/decisionlog and tracemerge.JoinDecisions).
	EvDecision
	// EvIngest marks a serving-plane ingest action: a batch flushed into
	// an epoch, a graceful drain, or admission shedding (Actor =
	// "ingest", Value = transactions involved, Detail = kind).
	EvIngest

	// evLast is the highest defined event type (JSON name lookup bound).
	evLast = EvIngest
)

// String names the event type for exposition.
func (t EventType) String() string {
	switch t {
	case EvSERound:
		return "se_round"
	case EvSwapAccept:
		return "se_swap_accept"
	case EvReset:
		return "se_reset"
	case EvSegmentMerge:
		return "se_segment_merge"
	case EvShardJoin:
		return "shard_join"
	case EvShardLeave:
		return "shard_leave"
	case EvDistSend:
		return "dist_send"
	case EvDistRecv:
		return "dist_recv"
	case EvDistTaskError:
		return "dist_task_error"
	case EvEpochPhase:
		return "epoch_phase"
	case EvShardAge:
		return "shard_age"
	case EvDistFault:
		return "dist_fault"
	case EvDistRetry:
		return "dist_retry"
	case EvConvergence:
		return "se_convergence"
	case EvSpanBegin:
		return "span_begin"
	case EvSpanEnd:
		return "span_end"
	case EvClockSync:
		return "clock_sync"
	case EvDecision:
		return "decision"
	case EvIngest:
		return "ingest"
	default:
		return "unknown"
	}
}

// MarshalJSON emits the symbolic name, not the raw code.
func (t EventType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON parses the symbolic name back; unknown names decode to 0
// so trace consumers tolerate events from newer writers.
func (t *EventType) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for c := EvSERound; c <= evLast; c++ {
		if c.String() == name {
			*t = c
			return nil
		}
	}
	*t = 0
	return nil
}

// Event is one structured trace record.
type Event struct {
	// Seq is the global emission sequence number (gap-free; gaps in a
	// snapshot mean drops).
	Seq uint64 `json:"seq"`
	// At is the wall-clock emission time.
	At time.Time `json:"at"`
	// Type is the typed event kind.
	Type EventType `json:"type"`
	// Actor identifies the emitting component (worker id, committee, …).
	Actor string `json:"actor,omitempty"`
	// Value carries the event's headline number (utility, count, age).
	Value float64 `json:"value,omitempty"`
	// Detail is free-form context (message type, phase, error text).
	Detail string `json:"detail,omitempty"`
	// TraceID, SpanID, and ParentID locate a span event in its causal
	// trace (zero on non-span events; see SpanContext).
	TraceID  uint64 `json:"traceId,omitempty"`
	SpanID   uint64 `json:"spanId,omitempty"`
	ParentID uint64 `json:"parentId,omitempty"`
	// Node names the process the event came from. Emitters leave it
	// empty; mvcom-trace -merge stamps it per ingested dump so a merged
	// timeline keeps the per-process attribution.
	Node string `json:"node,omitempty"`
}

// Tracer is a bounded ring buffer of trace events. Writers never block
// and the buffer never grows: once full, each new event evicts the
// oldest and the eviction is counted as a drop, so the tracer always
// reports exactly how much history it lost.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever emitted == next Seq
	dropped uint64
}

// NewTracer returns a tracer bounded to the given capacity (min 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit appends an event, evicting the oldest when full. Safe for
// concurrent use; no-op on a nil tracer.
func (t *Tracer) Emit(typ EventType, actor string, value float64, detail string) {
	t.EmitSpan(typ, actor, value, detail, SpanContext{})
}

// EmitSpan is Emit carrying a span context — the begin/end event path of
// the causal-tracing layer (span.go). Safe for concurrent use; no-op on
// a nil tracer.
func (t *Tracer) EmitSpan(typ EventType, actor string, value float64, detail string, sc SpanContext) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	seq := t.next
	t.next++
	if seq >= uint64(len(t.buf)) {
		t.dropped++
	}
	t.buf[seq%uint64(len(t.buf))] = Event{
		Seq: seq, At: now, Type: typ, Actor: actor, Value: value, Detail: detail,
		TraceID: sc.TraceID, SpanID: sc.SpanID, ParentID: sc.ParentID,
	}
	t.mu.Unlock()
}

// Snapshot returns the retained events oldest-first plus the number of
// events dropped (evicted) so far.
func (t *Tracer) Snapshot() ([]Event, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capU := uint64(len(t.buf))
	start := uint64(0)
	if n > capU {
		start = n - capU
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, t.buf[s%capU])
	}
	return out, t.dropped
}

// Emitted returns how many events were ever emitted (0 for nil).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events were evicted unread (0 for nil).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Capacity returns the ring's bounded size (0 for nil).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// streamChunk bounds how many events StreamJSON copies out of the ring
// per lock acquisition.
const streamChunk = 256

// StreamJSON writes the retained window as {"dropped":N,"events":[...]}
// without materializing it: events are copied out in streamChunk-sized
// batches under short lock holds and encoded as they go, so exporting a
// large ring costs O(chunk) extra heap instead of O(capacity) — the
// -trace-buf heap spike the pre-streaming export had. Events evicted by
// concurrent writers mid-export are skipped (the dropped count in the
// header is the value at export start). A nil tracer writes an empty
// document.
func (t *Tracer) StreamJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"dropped\":0,\"events\":[]}\n")
		return err
	}
	t.mu.Lock()
	n := t.next
	capU := uint64(len(t.buf))
	dropped := t.dropped
	t.mu.Unlock()
	start := uint64(0)
	if n > capU {
		start = n - capU
	}
	if _, err := fmt.Fprintf(w, "{\"dropped\":%d,\"events\":[", dropped); err != nil {
		return err
	}
	chunk := make([]Event, 0, streamChunk)
	first := true
	for s := start; s < n; {
		hi := s + streamChunk
		if hi > n {
			hi = n
		}
		chunk = chunk[:0]
		t.mu.Lock()
		for ; s < hi; s++ {
			if ev := t.buf[s%capU]; ev.Seq == s {
				chunk = append(chunk, ev)
			}
		}
		t.mu.Unlock()
		for i := range chunk {
			raw, err := json.Marshal(chunk[i])
			if err != nil {
				return err
			}
			if !first {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			first = false
			if _, err := w.Write(raw); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
