package obs

import (
	"encoding/json"
	"testing"
)

func TestTracerBoundedAndOrdered(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Emit(EvSERound, "se", float64(i), "")
	}
	events, dropped := tr.Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want capacity 16", len(events))
	}
	if dropped != 24 {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	if tr.Emitted() != 40 {
		t.Fatalf("emitted = %d, want 40", tr.Emitted())
	}
	// Oldest-first, gap-free sequence over the retained window.
	for i, ev := range events {
		if want := uint64(24 + i); ev.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
		if ev.Value != float64(24+i) {
			t.Fatalf("events[%d].Value = %g, want %d", i, ev.Value, 24+i)
		}
	}
}

func TestTracerNoDropsUnderCapacity(t *testing.T) {
	tr := NewTracer(64)
	for i := 0; i < 64; i++ {
		tr.Emit(EvSwapAccept, "se", float64(i), "")
	}
	events, dropped := tr.Snapshot()
	if len(events) != 64 || dropped != 0 {
		t.Fatalf("got %d events, %d dropped; want 64, 0", len(events), dropped)
	}
	if events[0].Seq != 0 || events[63].Seq != 63 {
		t.Fatalf("sequence window [%d, %d], want [0, 63]", events[0].Seq, events[63].Seq)
	}
}

func TestTracerMinimumCapacity(t *testing.T) {
	tr := NewTracer(1)
	for i := 0; i < 20; i++ {
		tr.Emit(EvReset, "se", 0, "")
	}
	events, dropped := tr.Snapshot()
	if len(events) != 16 {
		t.Fatalf("capacity floor: retained %d, want 16", len(events))
	}
	if dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
}

func TestEventTypeJSON(t *testing.T) {
	ev := Event{Seq: 7, Type: EvEpochPhase, Actor: "epoch", Value: 3, Detail: "formation"}
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "epoch_phase" {
		t.Fatalf("type marshals as %v, want symbolic name epoch_phase", m["type"])
	}
	if EventType(0).String() != "unknown" {
		t.Fatal("zero EventType should stringify as unknown")
	}
}
