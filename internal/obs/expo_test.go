package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenRegistry builds a deterministic registry for exposition tests:
// labeled and unlabeled counters sharing a base name, a gauge, and a
// histogram exercising the exact-bound and overflow buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("mvcom_test_total", "test events").Add(3)
	r.Counter(`mvcom_msgs_total{dir="rx"}`, "messages").Add(2)
	r.Counter(`mvcom_msgs_total{dir="tx"}`, "messages").Inc()
	r.Gauge("mvcom_gauge", "level").Set(2.5)
	h := r.Histogram("mvcom_lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1) // exact bound -> le="1"
	h.Observe(3) // above last bound -> +Inf
	r.Tracer().Emit(EvSegmentMerge, "se", 42, "")
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP mvcom_msgs_total messages
# TYPE mvcom_msgs_total counter
mvcom_msgs_total{dir="rx"} 2
mvcom_msgs_total{dir="tx"} 1
# HELP mvcom_test_total test events
# TYPE mvcom_test_total counter
mvcom_test_total 3
# HELP mvcom_gauge level
# TYPE mvcom_gauge gauge
mvcom_gauge 2.5
# HELP mvcom_lat_seconds latency
# TYPE mvcom_lat_seconds histogram
mvcom_lat_seconds_bucket{le="1"} 2
mvcom_lat_seconds_bucket{le="2"} 2
mvcom_lat_seconds_bucket{le="+Inf"} 3
mvcom_lat_seconds_sum 4.5
mvcom_lat_seconds_count 3
# HELP mvcom_trace_dropped_total trace events evicted from the bounded ring
# TYPE mvcom_trace_dropped_total counter
mvcom_trace_dropped_total 0
# HELP mvcom_trace_events_total structured trace events emitted
# TYPE mvcom_trace_events_total counter
mvcom_trace_events_total 1
`
	if got := sb.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "counters": {
    "mvcom_msgs_total{dir=\"rx\"}": 2,
    "mvcom_msgs_total{dir=\"tx\"}": 1,
    "mvcom_test_total": 3
  },
  "gauges": {
    "mvcom_gauge": 2.5
  },
  "histograms": {
    "mvcom_lat_seconds": {
      "count": 3,
      "sum": 4.5,
      "p50": 0.75,
      "p95": 2,
      "p99": 2,
      "buckets": [
        {
          "le": 1,
          "count": 2
        },
        {
          "le": 2,
          "count": 0
        },
        {
          "le": "+Inf",
          "count": 1
        }
      ]
    }
  },
  "trace": {
    "emitted": 1,
    "dropped": 0
  }
}
`
	if got := sb.String(); got != want {
		t.Fatalf("json exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteJSONRoundTrips guards against hand-rolled encoding bugs: the
// document must parse back and agree with the live instruments.
func TestWriteJSONRoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				LE    json.RawMessage `json:"le"`
				Count int64           `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("exposition does not parse as JSON: %v", err)
	}
	if doc.Counters["mvcom_test_total"] != 3 {
		t.Fatalf("counters round-trip: %v", doc.Counters)
	}
	h := doc.Histograms["mvcom_lat_seconds"]
	if h.Count != 3 || len(h.Buckets) != 3 {
		t.Fatalf("histogram round-trip: %+v", h)
	}
	if string(h.Buckets[2].LE) != `"+Inf"` {
		t.Fatalf("overflow bucket le = %s, want \"+Inf\"", h.Buckets[2].LE)
	}
}

func TestWriteNilRegistry(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WritePrometheus: err=%v out=%q", err, sb.String())
	}
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil || sb.String() != "{}\n" {
		t.Fatalf("nil WriteJSON: err=%v out=%q", err, sb.String())
	}
}

func TestHistQuantile(t *testing.T) {
	bounds := []float64{1, 2}
	counts := []int64{2, 0, 1} // observations 0.5, 1, 3
	cases := []struct {
		q, want float64
	}{
		{0.50, 0.75}, // rank 1.5 of 2 in [0,1] -> 0.75
		{0.95, 2},    // rank lands in +Inf -> highest finite bound
		{0.99, 2},
	}
	for _, c := range cases {
		if got := histQuantile(c.q, bounds, counts); got != c.want {
			t.Fatalf("histQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := histQuantile(0.5, bounds, []int64{0, 0, 0}); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// A rank inside the second bucket interpolates from the first bound.
	if got := histQuantile(0.5, bounds, []int64{0, 4, 0}); got != 1.5 {
		t.Fatalf("mid-bucket quantile = %v, want 1.5", got)
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{2.5: "2.5", 1: "1"}
	for v, want := range cases {
		if got := promFloat(v); got != want {
			t.Fatalf("promFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestLabeledHistogramBucketNames(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`mvcom_lab_seconds{role="worker"}`, "labeled", []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mvcom_lab_seconds_bucket{role="worker",le="1"} 1`,
		`mvcom_lab_seconds_bucket{role="worker",le="+Inf"} 1`,
		`mvcom_lab_seconds_sum{role="worker"} 0.5`,
		`mvcom_lab_seconds_count{role="worker"} 1`,
		"# HELP mvcom_lab_seconds labeled",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
