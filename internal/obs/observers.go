package obs

import (
	"fmt"
	"sync"
)

// SEObserver groups the instruments of the Stochastic-Exploration kernel
// (internal/core). The kernel accumulates plain per-explorer tallies in
// its hot loop and flushes them here only at segment merges, so the
// atomic instruments are touched once per ~64 rounds, not per round.
// A nil *SEObserver is fully inert.
type SEObserver struct {
	// Rounds counts transition rounds advanced by the coordinator.
	Rounds *Counter
	// ExplorerRounds counts per-explorer rounds (Rounds × Γ).
	ExplorerRounds *Counter
	// Swaps counts accepted swap transitions (State Transit executions).
	Swaps *Counter
	// Resets counts RESET broadcasts (full timer re-arms, Alg. 1 l. 19).
	Resets *Counter
	// Merges counts explorer-segment merges at kernel sync points.
	Merges *Counter
	// Improvements counts global-best improvements adopted at merges.
	Improvements *Counter
	// Joins and Leaves count dynamic candidate events applied.
	Joins  *Counter
	Leaves *Counter
	// ProposalsStarved counts rounds where no thread had an armed swap
	// proposal (every Set-timer draw exhausted SwapRetries), so the race
	// degenerated into a bare re-arm.
	ProposalsStarved *Counter
	// RaceErrors counts timer races that failed to pick a winner
	// (weighted-pick error / non-finite weight mass) and fell through to
	// a re-arm.
	RaceErrors *Counter
	// BestUtility tracks the current global best utility.
	BestUtility *Gauge
	// Trace receives EvSERound / EvSwapAccept / EvReset /
	// EvSegmentMerge / EvShardJoin / EvShardLeave events.
	Trace *Tracer
}

// NewSEObserver registers the SE kernel instruments on reg; returns nil
// (inert) when reg is nil.
func NewSEObserver(reg *Registry) *SEObserver {
	if reg == nil {
		return nil
	}
	return &SEObserver{
		Rounds:           reg.Counter("mvcom_se_rounds_total", "SE transition rounds advanced"),
		ExplorerRounds:   reg.Counter("mvcom_se_explorer_rounds_total", "per-explorer SE rounds advanced (rounds x gamma)"),
		Swaps:            reg.Counter("mvcom_se_swaps_total", "accepted swap transitions"),
		Resets:           reg.Counter("mvcom_se_resets_total", "RESET broadcasts re-arming solution threads"),
		Merges:           reg.Counter("mvcom_se_segment_merges_total", "explorer-segment merges at sync points"),
		Improvements:     reg.Counter("mvcom_se_improvements_total", "global-best improvements adopted"),
		Joins:            reg.Counter("mvcom_se_events_total{kind=\"join\"}", "dynamic candidate events applied"),
		Leaves:           reg.Counter("mvcom_se_events_total{kind=\"leave\"}", "dynamic candidate events applied"),
		ProposalsStarved: reg.Counter("mvcom_se_proposals_starved", "rounds with no armed swap proposal (Set-timer retries exhausted)"),
		RaceErrors:       reg.Counter("mvcom_se_race_errors", "timer races that failed to pick a winner"),
		BestUtility:      reg.Gauge("mvcom_se_best_utility", "current global best utility"),
		Trace:            reg.Tracer(),
	}
}

// DistObserver groups the instruments of the distributed protocol
// (internal/dist), shared by the codec, coordinator, and worker of one
// role. A nil *DistObserver is fully inert.
type DistObserver struct {
	reg  *Registry
	role string

	// WorkersConnected gauges how many workers the coordinator accepted.
	WorkersConnected *Gauge
	// QueueDepth gauges the worker's pending control-message queue.
	QueueDepth *Gauge
	// TaskLatency observes task-dispatch-to-result seconds per worker.
	TaskLatency *Histogram
	// TaskErrors counts worker tasks that ended in an error.
	TaskErrors *Counter
	// BestUtility tracks the session's best reported utility.
	BestUtility *Gauge
	// BestThreadN tracks the solution-thread cardinality n of the best
	// reported solution — which thread f_n is winning across the fleet.
	BestThreadN *Gauge
	// FaultsInjected counts fault-injection decisions that fired at any
	// of this role's fault points.
	FaultsInjected *Counter
	// Reconnects counts worker sessions re-dialed after a lost
	// connection (backoff retries).
	Reconnects *Counter
	// TasksReassigned counts orphaned tasks the coordinator re-dispatched
	// to a surviving or reconnected worker.
	TasksReassigned *Counter
	// TasksAbandoned counts tasks dropped after exhausting the per-task
	// attempt cap with no worker left to run them.
	TasksAbandoned *Counter
	// LocalFallbacks counts sessions that degraded to an in-process
	// solve because no worker delivered a usable result.
	LocalFallbacks *Counter
	// ClockOffset gauges this process's latest estimated clock offset
	// against the coordinator's reference clock, in seconds.
	ClockOffset *Gauge
	// Trace receives EvDistSend / EvDistRecv / EvDistTaskError /
	// EvDistFault / EvDistRetry / EvClockSync events plus the span
	// begin/end pairs of the dist causal-tracing layer.
	Trace *Tracer

	sent, recv sync.Map // message type -> *Counter
}

// NewDistObserver registers the dist protocol instruments on reg for the
// given role ("coordinator" or "worker"); returns nil when reg is nil.
func NewDistObserver(reg *Registry, role string) *DistObserver {
	if reg == nil {
		return nil
	}
	return &DistObserver{
		reg:              reg,
		role:             role,
		WorkersConnected: reg.Gauge("mvcom_dist_workers_connected", "workers accepted by the coordinator"),
		QueueDepth:       reg.Gauge("mvcom_dist_ctrl_queue_depth{role=\""+role+"\"}", "pending control messages on the worker loop"),
		TaskLatency:      reg.Histogram("mvcom_dist_task_seconds", "task dispatch to final result, seconds", ExponentialBuckets(0.01, 2, 14)),
		TaskErrors:       reg.Counter("mvcom_dist_task_errors_total", "worker tasks that ended in an error"),
		BestUtility:      reg.Gauge("mvcom_dist_best_utility", "best utility reported in the session"),
		BestThreadN:      reg.Gauge("mvcom_dist_best_thread_n", "solution-thread cardinality of the session's best solution"),
		FaultsInjected:   reg.Counter("mvcom_dist_faults_injected_total{role=\""+role+"\"}", "injected faults fired at this role's fault points"),
		Reconnects:       reg.Counter("mvcom_dist_reconnects_total", "worker sessions re-dialed after a lost connection"),
		TasksReassigned:  reg.Counter("mvcom_dist_tasks_reassigned_total", "orphaned tasks re-dispatched to another worker"),
		TasksAbandoned:   reg.Counter("mvcom_dist_tasks_abandoned_total", "tasks dropped after exhausting the attempt cap"),
		LocalFallbacks:   reg.Counter("mvcom_dist_local_fallbacks_total", "sessions degraded to an in-process solve"),
		ClockOffset:      reg.Gauge("mvcom_dist_clock_offset_seconds{role=\""+role+"\"}", "estimated clock offset vs the coordinator's reference clock"),
		Trace:            reg.Tracer(),
	}
}

// TraceCtx returns the registry's span allocator so dist call sites can
// open causal spans; nil observer returns the inert nil allocator.
func (o *DistObserver) TraceCtx() *TraceContext {
	if o == nil {
		return nil
	}
	return o.reg.TraceContext()
}

// ClockSynced records one NTP-style clock-offset estimate: offsetSec is
// the seconds to add to this process's timestamps to land on the
// coordinator's clock, rttSec the measured round trip. No-op on a nil
// observer.
func (o *DistObserver) ClockSynced(worker string, offsetSec, rttSec float64) {
	if o == nil {
		return
	}
	o.ClockOffset.Set(offsetSec)
	o.Trace.Emit(EvClockSync, worker, offsetSec, fmt.Sprintf("rtt=%.6fs", rttSec))
}

// FaultInjected records one fault-injection firing at a named point.
// No-op on a nil observer.
func (o *DistObserver) FaultInjected(point, action string) {
	if o == nil {
		return
	}
	o.FaultsInjected.Inc()
	o.Trace.Emit(EvDistFault, point, 0, action)
}

// WorkerReconnected records one backoff re-dial of a lost session, with
// the attempt number about to be made. No-op on a nil observer.
func (o *DistObserver) WorkerReconnected(worker string, attempt int) {
	if o == nil {
		return
	}
	o.Reconnects.Inc()
	o.Trace.Emit(EvDistRetry, worker, float64(attempt), "reconnect")
}

// TaskReassigned records an orphaned task being re-dispatched with the
// given attempt number. No-op on a nil observer.
func (o *DistObserver) TaskReassigned(taskID string, attempt int) {
	if o == nil {
		return
	}
	o.TasksReassigned.Inc()
	o.Trace.Emit(EvDistRetry, taskID, float64(attempt), "reassign")
}

// TaskAbandoned records a task dropped after its attempt cap. No-op on a
// nil observer.
func (o *DistObserver) TaskAbandoned(taskID string, attempt int) {
	if o == nil {
		return
	}
	o.TasksAbandoned.Inc()
	o.Trace.Emit(EvDistRetry, taskID, float64(attempt), "abandon")
}

// LocalFallbackUsed records a graceful degradation to an in-process
// solve. No-op on a nil observer.
func (o *DistObserver) LocalFallbackUsed() {
	if o == nil {
		return
	}
	o.LocalFallbacks.Inc()
	o.Trace.Emit(EvDistRetry, "coordinator", 0, "local-fallback")
}

// SetWorkersConnected records the coordinator's accepted-worker count.
// No-op on a nil observer.
func (o *DistObserver) SetWorkersConnected(n int) {
	if o == nil {
		return
	}
	o.WorkersConnected.Set(float64(n))
}

// ObserveTaskLatency records one task's dispatch-to-result latency in
// seconds. No-op on a nil observer.
func (o *DistObserver) ObserveTaskLatency(seconds float64) {
	if o == nil {
		return
	}
	o.TaskLatency.Observe(seconds)
}

// TaskFailed counts a task error and traces it. No-op on a nil observer.
func (o *DistObserver) TaskFailed(actor, detail string) {
	if o == nil {
		return
	}
	o.TaskErrors.Inc()
	o.Trace.Emit(EvDistTaskError, actor, 0, detail)
}

// SetBestUtility records the session's best reported utility. No-op on
// a nil observer.
func (o *DistObserver) SetBestUtility(u float64) {
	if o == nil {
		return
	}
	o.BestUtility.Set(u)
}

// SetBestThreadN records the cardinality of the session's best solution.
// No-op on a nil observer.
func (o *DistObserver) SetBestThreadN(n int) {
	if o == nil {
		return
	}
	o.BestThreadN.Set(float64(n))
}

// SetQueueDepth records the worker's pending control-queue depth. No-op
// on a nil observer.
func (o *DistObserver) SetQueueDepth(n int) {
	if o == nil {
		return
	}
	o.QueueDepth.Set(float64(n))
}

// MsgSent counts one protocol message sent, labeled by type and role.
func (o *DistObserver) MsgSent(msgType string) {
	if o == nil {
		return
	}
	o.msgCounter(&o.sent, "tx", msgType).Inc()
	o.Trace.Emit(EvDistSend, o.role, 0, msgType)
}

// MsgRecv counts one protocol message received, labeled by type and role.
func (o *DistObserver) MsgRecv(msgType string) {
	if o == nil {
		return
	}
	o.msgCounter(&o.recv, "rx", msgType).Inc()
	o.Trace.Emit(EvDistRecv, o.role, 0, msgType)
}

// msgCounter caches per-type counters so the registry lock is only taken
// the first time a message type appears.
func (o *DistObserver) msgCounter(cache *sync.Map, dir, msgType string) *Counter {
	if c, ok := cache.Load(msgType); ok {
		return c.(*Counter)
	}
	name := "mvcom_dist_messages_total{role=\"" + o.role + "\",dir=\"" + dir + "\",type=\"" + msgType + "\"}"
	c := o.reg.Counter(name, "dist protocol messages by role, direction, and type")
	cache.Store(msgType, c)
	return c
}

// EpochObserver groups the instruments of the epoch pipeline
// (internal/epoch): per-committee latency histograms, the cumulative-age
// gauge matching the paper's Π_i term, and phase-transition trace
// events. A nil *EpochObserver is fully inert.
type EpochObserver struct {
	reg *Registry

	// Epochs counts completed epochs.
	Epochs *Counter
	// Formation, Consensus, and TwoPhase observe per-committee stage
	// latencies in seconds (l_i breakdown).
	Formation *Histogram
	Consensus *Histogram
	TwoPhase  *Histogram
	// ShardAge observes each permitted shard's age t_j − l_i at
	// final-block inclusion, in seconds.
	ShardAge *Histogram
	// CumulativeAge gauges the latest epoch's Σ x_i (t_j − l_i) — the
	// Π_i accounting term of the valuable-degree metric.
	CumulativeAge *Gauge
	// E2E observes the wall-clock end-to-end latency of one epoch run
	// (report collection through commit) — the SLO surface a serving
	// loop gates on. Distinct from Formation/Consensus/TwoPhase, which
	// measure the paper's *virtual*-clock committee latencies.
	E2E *Histogram
	// PermittedTxs and PermittedCommittees count the scheduling output;
	// DeferredCommittees counts refusals carried to the next epoch;
	// FailedCommittees counts confirmed mid-epoch failures.
	PermittedTxs        *Counter
	PermittedCommittees *Counter
	DeferredCommittees  *Counter
	FailedCommittees    *Counter
	// Trace receives EvEpochPhase and EvShardAge events plus the epoch
	// pipeline's span begin/end pairs.
	Trace *Tracer

	phaseSeconds sync.Map // phase -> *Gauge mvcom_epoch_phase_seconds{phase=...}
	phaseBudget  sync.Map // phase -> *Gauge mvcom_epoch_phase_budget_ratio{phase=...}
}

// NewEpochObserver registers the epoch pipeline instruments on reg;
// returns nil when reg is nil.
func NewEpochObserver(reg *Registry) *EpochObserver {
	if reg == nil {
		return nil
	}
	latency := ExponentialBuckets(16, 2, 12) // 16 s .. 32768 s
	return &EpochObserver{
		reg:                 reg,
		Epochs:              reg.Counter("mvcom_epoch_total", "completed epochs"),
		Formation:           reg.Histogram("mvcom_epoch_formation_seconds", "committee formation latency (stages 1+2)", latency),
		Consensus:           reg.Histogram("mvcom_epoch_consensus_seconds", "intra-committee consensus latency (stage 3)", latency),
		TwoPhase:            reg.Histogram("mvcom_epoch_two_phase_seconds", "committee two-phase latency l_i", latency),
		ShardAge:            reg.Histogram("mvcom_epoch_shard_age_seconds", "permitted shard age t_j - l_i at inclusion", ExponentialBuckets(1, 2, 14)),
		CumulativeAge:       reg.Gauge("mvcom_epoch_cumulative_age_seconds", "latest epoch's cumulative permitted-shard age"),
		E2E:                 reg.Histogram("mvcom_epoch_e2e_seconds", "wall-clock end-to-end epoch latency", ExponentialBuckets(0.001, 2, 16)),
		PermittedTxs:        reg.Counter("mvcom_epoch_permitted_txs_total", "transactions permitted into final blocks"),
		PermittedCommittees: reg.Counter("mvcom_epoch_permitted_committees_total", "committees permitted into final blocks"),
		DeferredCommittees:  reg.Counter("mvcom_epoch_deferred_committees_total", "committees refused and deferred to the next epoch"),
		FailedCommittees:    reg.Counter("mvcom_epoch_failed_committees_total", "committees confirmed failed mid-epoch"),
		Trace:               reg.Tracer(),
	}
}

// TraceCtx returns the registry's span allocator so the epoch pipeline
// can open causal spans; nil observer returns the inert nil allocator.
func (o *EpochObserver) TraceCtx() *TraceContext {
	if o == nil {
		return nil
	}
	return o.reg.TraceContext()
}

// ObserveE2E records one epoch's wall-clock end-to-end latency in
// seconds. No-op on a nil observer.
func (o *EpochObserver) ObserveE2E(seconds float64) {
	if o == nil {
		return
	}
	o.E2E.Observe(seconds)
}

// PhaseWall records one epoch phase's wall-clock duration and, when an
// epoch budget is configured (budget > 0), the fraction of that budget
// the phase consumed — the per-phase SLO gauges. Gauges are registered
// lazily per phase and cached so the registry lock is only taken on the
// first sighting of each phase name. No-op on a nil observer.
func (o *EpochObserver) PhaseWall(phase string, seconds, budget float64) {
	if o == nil {
		return
	}
	o.phaseGauge(&o.phaseSeconds, "mvcom_epoch_phase_seconds", "wall-clock seconds spent in the epoch phase", phase).Set(seconds)
	if budget > 0 {
		o.phaseGauge(&o.phaseBudget, "mvcom_epoch_phase_budget_ratio", "phase wall-clock seconds / epoch budget", phase).Set(seconds / budget)
	}
}

// phaseGauge caches per-phase labeled gauges, mirroring msgCounter.
func (o *EpochObserver) phaseGauge(cache *sync.Map, base, help, phase string) *Gauge {
	if g, ok := cache.Load(phase); ok {
		return g.(*Gauge)
	}
	g := o.reg.Gauge(base+"{phase=\""+phase+"\"}", help)
	cache.Store(phase, g)
	return g
}

// ServeObserver groups the instruments of the networked serving plane
// (internal/ingest, cmd/mvcom-serve): admission accounting (every
// request ends up accepted or shed, every transaction ends up committed,
// expired, queued, or shed), batch/queue depth, and ingest trace events.
// A nil *ServeObserver is fully inert.
type ServeObserver struct {
	reg *Registry

	// Requests counts ingest requests received on any front end (HTTP or
	// framed TCP), before admission.
	Requests *Counter
	// Accepted counts requests admitted into the ingest queue.
	Accepted *Counter
	// AcceptedTxs counts transactions admitted into the ingest queue.
	AcceptedTxs *Counter
	// Reports counts admitted shard-report submissions; ReportTxs their
	// declared transaction counts.
	Reports   *Counter
	ReportTxs *Counter
	// CommittedTxs counts admitted transactions that reached a final
	// block; ExpiredTxs those dropped by the MaxDeferrals backlog bound.
	CommittedTxs *Counter
	ExpiredTxs   *Counter
	// Batches counts epoch batches flushed from the queue; BatchTxs
	// observes their sizes; Drains counts graceful drain flushes.
	Batches  *Counter
	BatchTxs *Histogram
	Drains   *Counter
	// QueueTxs gauges the current ingest-queue depth in transactions;
	// OutstandingTxs gauges admitted-but-not-yet-final transactions
	// (deferred backlog carried across epochs).
	QueueTxs       *Gauge
	OutstandingTxs *Gauge
	// Trace receives EvIngest events plus the serving plane's span
	// begin/end pairs.
	Trace *Tracer

	shed, shedTxs sync.Map // shed reason -> *Counter
}

// NewServeObserver registers the serving-plane instruments on reg;
// returns nil (inert) when reg is nil.
func NewServeObserver(reg *Registry) *ServeObserver {
	if reg == nil {
		return nil
	}
	return &ServeObserver{
		reg:            reg,
		Requests:       reg.Counter("mvcom_serve_requests_total", "ingest requests received before admission"),
		Accepted:       reg.Counter("mvcom_serve_accepted_total", "requests admitted into the ingest queue"),
		AcceptedTxs:    reg.Counter("mvcom_serve_accepted_txs_total", "transactions admitted into the ingest queue"),
		Reports:        reg.Counter("mvcom_serve_reports_total", "shard-report submissions admitted"),
		ReportTxs:      reg.Counter("mvcom_serve_report_txs_total", "transactions declared by admitted shard reports"),
		CommittedTxs:   reg.Counter("mvcom_serve_committed_txs_total", "admitted transactions that reached a final block"),
		ExpiredTxs:     reg.Counter("mvcom_serve_expired_txs_total", "admitted transactions dropped by the deferral bound"),
		Batches:        reg.Counter("mvcom_serve_batches_total", "epoch batches flushed from the ingest queue"),
		BatchTxs:       reg.Histogram("mvcom_serve_batch_txs", "transactions per flushed epoch batch", ExponentialBuckets(1, 2, 16)),
		Drains:         reg.Counter("mvcom_serve_drains_total", "graceful drain flushes"),
		QueueTxs:       reg.Gauge("mvcom_serve_queue_txs", "current ingest-queue depth in transactions"),
		OutstandingTxs: reg.Gauge("mvcom_serve_outstanding_txs", "admitted transactions not yet final (deferred backlog)"),
		Trace:          reg.Tracer(),
	}
}

// TraceCtx returns the registry's span allocator so ingest call sites can
// open causal spans; nil observer returns the inert nil allocator.
func (o *ServeObserver) TraceCtx() *TraceContext {
	if o == nil {
		return nil
	}
	return o.reg.TraceContext()
}

// RequestSeen counts one pre-admission ingest request. No-op on nil.
func (o *ServeObserver) RequestSeen() {
	if o == nil {
		return
	}
	o.Requests.Inc()
}

// RequestAccepted counts one admitted request carrying txs transactions
// (0 for a shard report). No-op on nil.
func (o *ServeObserver) RequestAccepted(txs int) {
	if o == nil {
		return
	}
	o.Accepted.Inc()
	if txs > 0 {
		o.AcceptedTxs.Add(int64(txs))
	}
}

// ReportAccepted counts one admitted shard report declaring txs
// transactions. No-op on nil.
func (o *ServeObserver) ReportAccepted(txs int) {
	if o == nil {
		return
	}
	o.Reports.Inc()
	if txs > 0 {
		o.ReportTxs.Add(int64(txs))
	}
}

// RequestShed counts one shed request and the transactions it carried,
// labeled by reason ("rate", "queue", "body", "drain", "invalid").
// No-op on nil.
func (o *ServeObserver) RequestShed(reason string, txs int) {
	if o == nil {
		return
	}
	o.shedCounter(&o.shed, "mvcom_serve_shed_total", "requests shed by admission control, by reason", reason).Inc()
	if txs > 0 {
		o.shedCounter(&o.shedTxs, "mvcom_serve_shed_txs_total", "transactions shed by admission control, by reason", reason).Add(int64(txs))
	}
	o.Trace.Emit(EvIngest, "ingest", float64(txs), "shed:"+reason)
}

// BatchFlushed records one epoch batch leaving the queue. No-op on nil.
func (o *ServeObserver) BatchFlushed(txs int) {
	if o == nil {
		return
	}
	o.Batches.Inc()
	o.BatchTxs.Observe(float64(txs))
	o.Trace.Emit(EvIngest, "ingest", float64(txs), "batch")
}

// DrainFlushed records the graceful-drain final flush. No-op on nil.
func (o *ServeObserver) DrainFlushed(txs int) {
	if o == nil {
		return
	}
	o.Drains.Inc()
	o.Trace.Emit(EvIngest, "ingest", float64(txs), "drain")
}

// Delivered records one epoch's settlement accounting: transactions that
// reached a final block, transactions expired by the deferral bound, and
// the outstanding (still-deferred) backlog after the epoch. No-op on nil.
func (o *ServeObserver) Delivered(committed, expired, outstanding int) {
	if o == nil {
		return
	}
	if committed > 0 {
		o.CommittedTxs.Add(int64(committed))
	}
	if expired > 0 {
		o.ExpiredTxs.Add(int64(expired))
	}
	o.OutstandingTxs.Set(float64(outstanding))
}

// SetQueueTxs records the current queue depth in transactions. No-op on
// nil.
func (o *ServeObserver) SetQueueTxs(n int) {
	if o == nil {
		return
	}
	o.QueueTxs.Set(float64(n))
}

// shedCounter caches per-reason labeled counters, mirroring msgCounter.
func (o *ServeObserver) shedCounter(cache *sync.Map, base, help, reason string) *Counter {
	if c, ok := cache.Load(reason); ok {
		return c.(*Counter)
	}
	c := o.reg.Counter(base+"{reason=\""+reason+"\"}", help)
	cache.Store(reason, c)
	return c
}
