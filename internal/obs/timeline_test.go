package obs

import (
	"strings"
	"testing"
	"time"
)

func TestBuildTimelineForest(t *testing.T) {
	tr := NewTracer(64)
	tc := NewTraceContext(tr)
	root := tc.StartRoot("epoch", "coord")
	collect := tc.StartSpan("collect", "coord", root.Context())
	collect.Finish()
	solve := tc.StartSpan("solve", "worker-1", root.Context())
	solve.FinishOutcome("ok")
	root.Finish()

	events, _ := tr.Snapshot()
	tl := BuildTimeline(events)
	if tl.Spans != 3 {
		t.Fatalf("spans = %d, want 3", tl.Spans)
	}
	if len(tl.Orphans) != 0 {
		t.Fatalf("orphans = %d, want 0", len(tl.Orphans))
	}
	if len(tl.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tl.Roots))
	}
	r := tl.Roots[0]
	if r.Name != "epoch" || len(r.Children) != 2 {
		t.Fatalf("root wrong: %+v", r)
	}
	if r.Children[0].Name != "collect" || r.Children[1].Name != "solve" {
		t.Fatalf("children order wrong: %s, %s", r.Children[0].Name, r.Children[1].Name)
	}
	if r.Children[1].Outcome != "ok" {
		t.Fatalf("outcome lost: %+v", r.Children[1])
	}
	if r.Incomplete || r.Children[0].Incomplete {
		t.Fatal("finished spans marked incomplete")
	}
}

func TestBuildTimelineOrphanAndIncomplete(t *testing.T) {
	tr := NewTracer(64)
	tc := NewTraceContext(tr)
	// A span claiming a parent that never emitted events is an orphan.
	ghost := SpanContext{TraceID: 7, SpanID: 99}
	orphan := tc.StartSpan("lost", "w", ghost)
	orphan.Finish()
	// A begin with no end is incomplete, not an orphan.
	tc.StartRoot("running", "c")

	events, _ := tr.Snapshot()
	tl := BuildTimeline(events)
	if len(tl.Orphans) != 1 || tl.Orphans[0].Name != "lost" {
		t.Fatalf("orphans wrong: %+v", tl.Orphans)
	}
	if len(tl.Roots) != 1 || !tl.Roots[0].Incomplete {
		t.Fatalf("incomplete root wrong: %+v", tl.Roots)
	}
}

func TestBuildTimelineRecoversEvictedBegin(t *testing.T) {
	// Hand-build an end-only event window: the begin was evicted.
	end := time.Now()
	events := []Event{{
		Seq: 5, At: end, Type: EvSpanEnd, Actor: "w",
		Value: 0.25, Detail: "solve:ok",
		TraceID: 3, SpanID: 3,
	}}
	tl := BuildTimeline(events)
	if len(tl.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tl.Roots))
	}
	s := tl.Roots[0]
	if !s.Recovered || s.Incomplete {
		t.Fatalf("expected recovered complete span: %+v", s)
	}
	wantStart := end.Add(-250 * time.Millisecond)
	if d := s.Start.Sub(wantStart); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("recovered start off by %v", d)
	}
	if s.DurationMs != 250 {
		t.Fatalf("duration = %v, want 250", s.DurationMs)
	}
}

func TestTimelineWriteTree(t *testing.T) {
	tr := NewTracer(64)
	tc := NewTraceContext(tr)
	root := tc.StartRoot("epoch", "coord")
	tc.StartSpan("solve", "worker-1", root.Context()).FinishOutcome("ok")
	root.Finish()
	events, _ := tr.Snapshot()
	var sb strings.Builder
	if err := BuildTimeline(events).WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace ", "└── epoch (coord)", "└── solve (worker-1)", "[ok]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ORPHANS") {
		t.Fatalf("unexpected orphan section:\n%s", out)
	}
}
