package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "other help ignored"); again != c {
		t.Fatal("registry did not return the same counter for the same name")
	}

	g := r.Gauge("g", "test")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if again := r.Gauge("g", ""); again != g {
		t.Fatal("registry did not return the same gauge for the same name")
	}
}

// TestNilContract checks the package's core promise: nil registries,
// instruments, observers, and tracers are all fully inert.
func TestNilContract(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", LinearBuckets(0, 1, 3))
	tr := reg.Tracer()
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Emit(EvSERound, "a", 1, "")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if b, n := h.Buckets(); b != nil || n != nil {
		t.Fatal("nil histogram buckets must be nil")
	}
	if ev, dropped := tr.Snapshot(); ev != nil || dropped != 0 {
		t.Fatal("nil tracer snapshot must be empty")
	}
	if tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer totals must be zero")
	}

	if NewSEObserver(nil) != nil {
		t.Fatal("NewSEObserver(nil) must be nil")
	}
	if NewDistObserver(nil, "worker") != nil {
		t.Fatal("NewDistObserver(nil) must be nil")
	}
	if NewEpochObserver(nil) != nil {
		t.Fatal("NewEpochObserver(nil) must be nil")
	}
	var do *DistObserver
	do.SetWorkersConnected(3)
	do.ObserveTaskLatency(1)
	do.TaskFailed("w", "boom")
	do.SetBestUtility(1)
	do.SetQueueDepth(1)
	do.MsgSent("task")
	do.MsgRecv("result")
}

// TestHistogramBucketBoundaries pins the Prometheus le (less-or-equal)
// semantics at the edges: exact bounds land in their own bucket, values
// below the first bound land in the first bucket, values above the last
// bound land in +Inf, and negative bounds work.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 3})
	for _, v := range []float64{1, 2, 3} { // exact bounds
		h.Observe(v)
	}
	h.Observe(0.5)  // below first bound -> first bucket
	h.Observe(-7)   // far below -> first bucket
	h.Observe(3.01) // above last bound -> +Inf
	bounds, counts := h.Buckets()
	if want := []float64{1, 2, 3}; len(bounds) != 3 || bounds[0] != want[0] || bounds[2] != want[2] {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	if want := []int64{3, 1, 1, 1}; len(counts) != 4 ||
		counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] || counts[3] != want[3] {
		t.Fatalf("bucket counts = %v, want %v", counts, want)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 1+2+3+0.5-7+3.01; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}

	neg := r.Histogram("neg", "", []float64{-1, 0, 1})
	neg.Observe(-2) // below first
	neg.Observe(-1) // exact negative bound
	neg.Observe(0)  // exact zero bound
	_, nc := neg.Buckets()
	if nc[0] != 2 || nc[1] != 1 || nc[2] != 0 || nc[3] != 0 {
		t.Fatalf("negative-bound counts = %v, want [2 1 0 0]", nc)
	}

	// Unsorted bounds are sorted at registration.
	u := r.Histogram("u", "", []float64{5, 1, 3})
	ub, _ := u.Buckets()
	if ub[0] != 1 || ub[1] != 3 || ub[2] != 5 {
		t.Fatalf("bounds not sorted: %v", ub)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(0, 10, 3); got[0] != 0 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("LinearBuckets = %v", got)
	}
	if got := ExponentialBuckets(1, 2, 4); got[3] != 8 {
		t.Fatalf("ExponentialBuckets = %v", got)
	}
	if got := LinearBuckets(0, 1, 0); len(got) != 1 {
		t.Fatalf("LinearBuckets floor: %v", got)
	}
}

// TestConcurrentWriters hammers every instrument kind from many
// goroutines; run under -race (ci.sh does) this doubles as the data-race
// proof, and the totals prove no increment was lost.
func TestConcurrentWriters(t *testing.T) {
	const goroutines = 16
	const perG = 1000
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{0.25, 0.5, 0.75})
	tr := r.Tracer()

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%4) * 0.25)
				tr.Emit(EvSERound, "w", float64(j), "")
			}
		}(i)
	}
	wg.Wait()

	const total = goroutines * perG
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge = %g, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	_, counts := h.Buckets()
	var sum int64
	for _, n := range counts {
		sum += n
	}
	if sum != total {
		t.Fatalf("bucket counts sum to %d, want %d", sum, total)
	}
	if tr.Emitted() != total {
		t.Fatalf("tracer emitted = %d, want %d", tr.Emitted(), total)
	}
	if ev, dropped := tr.Snapshot(); uint64(len(ev))+dropped != total {
		t.Fatalf("snapshot len %d + dropped %d != %d", len(ev), dropped, total)
	}
}
