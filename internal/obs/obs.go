// Package obs is the runtime observability layer: lock-cheap counters,
// gauges, and fixed-bucket histograms with atomic hot paths, a bounded
// ring-buffer event tracer, and Prometheus-text + JSON exposition served
// over an opt-in HTTP endpoint (see http.go).
//
// The package is stdlib-only and designed around two contracts:
//
//  1. Nil is off. Every instrument method is a no-op on a nil receiver,
//     and every constructor propagates nil (NewSEObserver(nil) == nil),
//     so instrumented code needs exactly one nil check — or none at all
//     when it simply calls through — and costs nothing when
//     observability is disabled. ci.sh enforces this with a benchmark
//     gate (BenchmarkSESolveObs: attached vs detached within 3%).
//
//  2. Hot paths are atomic. Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations (plus a bounded
//     CAS loop for float accumulation); the registry mutex is only
//     taken at registration and exposition time.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta via a CAS loop. No-op on a nil gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus "le"
// (less-or-equal) bucket semantics: an observation lands in the first
// bucket whose upper bound is >= the value; values above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	name, help string
	bounds     []float64      // ascending upper bounds; +Inf implicit
	counts     []atomic.Int64 // len(bounds)+1
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Observe records v. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v (le semantics); falls through to +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and their non-cumulative counts; the
// final count is the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	if h == nil {
		return nil, nil
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n ascending bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry owns a namespace of instruments and the session tracer.
// Get-or-create registration is idempotent: the same name always returns
// the same instrument, so independent subsystems can share counters.
// Metric names may embed Prometheus labels (`name{k="v"}`); the exposition
// writer groups HELP/TYPE lines by the base name.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	debug    map[string]func() any
	tracer   *Tracer
	traceCtx *TraceContext
}

// DefaultTraceCapacity bounds the registry's built-in tracer ring.
const DefaultTraceCapacity = 4096

// NewRegistry returns an empty registry with a bounded tracer attached.
func NewRegistry() *Registry {
	return NewRegistryWithTrace(DefaultTraceCapacity)
}

// NewRegistryWithTrace returns an empty registry whose tracer ring holds
// up to capacity events (the -trace-buf knob of the CLIs; NewTracer
// clamps to a minimum of 16).
func NewRegistryWithTrace(capacity int) *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		debug:    make(map[string]func() any),
		tracer:   NewTracer(capacity),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket bounds on first use (later bounds arguments
// are ignored for an existing name). Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{name: name, help: help, bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	r.hists[name] = h
	return h
}

// Tracer returns the registry's event tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// RegisterDebug registers a named JSON debug provider: fn's return value
// is encoded at /debug/<name> on the observability endpoint each time the
// page is fetched. Re-registering a name replaces the provider (a fresh
// SE run takes over the "convergence" page from the previous one). No-op
// on a nil registry.
func (r *Registry) RegisterDebug(name string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.debug == nil {
		r.debug = make(map[string]func() any)
	}
	r.debug[name] = fn
}

// DebugProvider returns the provider registered under name, or nil.
func (r *Registry) DebugProvider(name string) func() any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.debug[name]
}

// MetricNames lists every registered metric name (counters, gauges, and
// histograms, labels included as written) in sorted order. The metrics
// lint uses it to gate renames against the committed docs/metrics.txt
// golden list. Nil-safe.
func (r *Registry) MetricNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DebugNames lists the registered debug providers in sorted order.
func (r *Registry) DebugNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.debug)
}

// sortedKeys snapshots a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
