package obs

import (
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"
	"time"
)

// Causal tracing: spans are begin/end event pairs in the ordinary ring
// buffer, so the span layer inherits the tracer's bounded-memory and
// never-block guarantees for free. A SpanContext travels over process
// boundaries (the dist wire protocol carries its three IDs), which is
// what lets a coordinator-side epoch span parent worker-side solve spans
// and lets mvcom-trace -merge rebuild one causal timeline from several
// per-process /trace dumps.

// SpanContext identifies one span's position in a trace: the trace it
// belongs to, its own ID, and the span it hangs under (0 for roots).
// The zero SpanContext is "no context" — starting a span under it makes
// a new root trace.
type SpanContext struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// spanProcBits is how many high bits of every allocated ID carry the
// per-process fingerprint. Two processes in one dist session then cannot
// collide on span IDs without also colliding on the fingerprint AND
// allocating the same low-bit sequence number — 2^42 allocations per
// process before wraparound.
const spanProcBits = 22

// TraceContext allocates trace/span IDs and emits span events into a
// tracer. Allocation is one atomic add; a nil *TraceContext is fully
// inert (StartSpan returns a nil *Span whose methods no-op), matching
// the nil-is-off contract of every observer in this package.
type TraceContext struct {
	tracer *Tracer
	proc   uint64 // per-process high bits, pre-shifted
	seq    atomic.Uint64
}

// NewTraceContext returns an ID allocator bound to the tracer; nil in,
// nil out. The process fingerprint mixes the PID and start time so
// coordinator and worker processes launched together draw from disjoint
// ID ranges.
func NewTraceContext(t *Tracer) *TraceContext {
	if t == nil {
		return nil
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", os.Getpid(), time.Now().UnixNano())
	proc := h.Sum64() << (64 - spanProcBits)
	if proc == 0 {
		proc = 1 << (64 - spanProcBits)
	}
	return &TraceContext{tracer: t, proc: proc}
}

// next allocates a process-unique nonzero ID.
func (tc *TraceContext) next() uint64 {
	return tc.proc | tc.seq.Add(1)
}

// StartRoot opens a new trace: the returned span is its root
// (TraceID == SpanID, no parent). Nil-safe.
func (tc *TraceContext) StartRoot(name, actor string) *Span {
	return tc.StartSpan(name, actor, SpanContext{})
}

// StartSpan opens a span under parent; an invalid (zero) parent starts a
// fresh root trace instead, so propagation call sites never need a
// have-we-got-a-parent branch. The begin event is emitted immediately.
// Nil-safe: a nil receiver returns a nil *Span whose methods no-op.
func (tc *TraceContext) StartSpan(name, actor string, parent SpanContext) *Span {
	if tc == nil {
		return nil
	}
	var sc SpanContext
	if parent.Valid() {
		sc = SpanContext{TraceID: parent.TraceID, SpanID: tc.next(), ParentID: parent.SpanID}
	} else {
		id := tc.next()
		sc = SpanContext{TraceID: id, SpanID: id}
	}
	s := &Span{tc: tc, ctx: sc, name: name, actor: actor, start: time.Now()}
	tc.tracer.EmitSpan(EvSpanBegin, actor, 0, name, sc)
	return s
}

// Span is one in-flight timed operation. Finish emits the end event;
// a span never finished shows up as incomplete in the timeline rather
// than poisoning it.
type Span struct {
	tc    *TraceContext
	ctx   SpanContext
	name  string
	actor string
	start time.Time
	done  atomic.Bool
}

// Context returns the span's wire context (zero for a nil span) — the
// value to embed in protocol messages so the receiving process can
// parent its own spans under this one.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Finish emits the end event with the span's wall duration. Safe to call
// on nil and idempotent: only the first Finish/FinishOutcome emits.
func (s *Span) Finish() { s.FinishOutcome("") }

// FinishOutcome finishes the span recording how it ended ("worker-dead",
// "error", ...); the outcome lands in the end event's Detail as
// "name:outcome". Nil-safe and idempotent.
func (s *Span) FinishOutcome(outcome string) {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	detail := s.name
	if outcome != "" {
		detail = s.name + ":" + outcome
	}
	s.tc.tracer.EmitSpan(EvSpanEnd, s.actor, time.Since(s.start).Seconds(), detail, s.ctx)
}

// TraceContext returns the registry's span allocator, creating it on
// first use (bound to the registry's tracer). Nil registry returns nil —
// the inert allocator.
func (r *Registry) TraceContext() *TraceContext {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traceCtx == nil {
		r.traceCtx = NewTraceContext(r.tracer)
	}
	return r.traceCtx
}
