package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Timeline reconstruction: fold a stream of span begin/end events back
// into the tree of timed operations that emitted them. This is the
// single-process half of the tracing story (served at /debug/timeline);
// internal/tracemerge layers multi-dump ingestion and clock-offset
// alignment on top of the same builder.

// TimelineSpan is one reconstructed span with its children attached.
type TimelineSpan struct {
	TraceID  uint64 `json:"traceId"`
	SpanID   uint64 `json:"spanId"`
	ParentID uint64 `json:"parentId,omitempty"`
	Name     string `json:"name"`
	Actor    string `json:"actor,omitempty"`
	// Node is the process the span came from (stamped by merge tooling;
	// empty for single-process timelines).
	Node  string    `json:"node,omitempty"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"`
	// DurationMs is the emitter-measured wall duration. It comes from the
	// end event's Value, not End-Start, so it stays exact even after merge
	// tooling shifts Start/End onto a reference clock.
	DurationMs float64 `json:"durationMs"`
	// Outcome is how the span finished ("" = plain Finish).
	Outcome string `json:"outcome,omitempty"`
	// Incomplete marks a span with no end event (still running when the
	// dump was taken, or the process died mid-span).
	Incomplete bool `json:"incomplete,omitempty"`
	// Recovered marks a span whose begin event was evicted from the ring;
	// its Start is back-computed as End - duration.
	Recovered bool            `json:"recovered,omitempty"`
	Children  []*TimelineSpan `json:"children,omitempty"`
}

// Timeline is the reconstructed forest for one event window.
type Timeline struct {
	// Roots are the parentless spans, oldest first.
	Roots []*TimelineSpan `json:"roots"`
	// Orphans are spans whose ParentID names a span absent from the
	// window — the failure the dist propagation tests assert is empty.
	Orphans []*TimelineSpan `json:"orphans,omitempty"`
	// Spans counts every reconstructed span (roots + descendants + orphans).
	Spans int `json:"spans"`
}

// splitOutcome undoes the "name:outcome" packing of Span.FinishOutcome.
func splitOutcome(detail string) (name, outcome string) {
	for i := 0; i < len(detail); i++ {
		if detail[i] == ':' {
			return detail[:i], detail[i+1:]
		}
	}
	return detail, ""
}

// BuildTimeline folds span events (any order, begin/end interleaved with
// non-span events, possibly truncated by ring eviction) into a forest.
// End-only spans get a recovered Start (End - duration); begin-only spans
// are marked Incomplete. Children are sorted by Start.
func BuildTimeline(events []Event) *Timeline {
	spans := make(map[uint64]*TimelineSpan)
	order := make([]uint64, 0, 16) // first-seen order for stable tie-breaks
	get := func(ev Event) *TimelineSpan {
		s, ok := spans[ev.SpanID]
		if !ok {
			s = &TimelineSpan{TraceID: ev.TraceID, SpanID: ev.SpanID, ParentID: ev.ParentID}
			spans[ev.SpanID] = s
			order = append(order, ev.SpanID)
		}
		return s
	}
	for _, ev := range events {
		switch ev.Type {
		case EvSpanBegin:
			s := get(ev)
			s.Name, s.Actor, s.Node = ev.Detail, ev.Actor, ev.Node
			s.Start = ev.At
			s.Incomplete = true
		case EvSpanEnd:
			s := get(ev)
			name, outcome := splitOutcome(ev.Detail)
			s.Name, s.Outcome = name, outcome
			if s.Actor == "" {
				s.Actor = ev.Actor
			}
			if s.Node == "" {
				s.Node = ev.Node
			}
			s.End = ev.At
			s.DurationMs = ev.Value * 1e3
			if s.Start.IsZero() { // begin evicted from the ring
				s.Start = ev.At.Add(-time.Duration(ev.Value * float64(time.Second)))
				s.Recovered = true
			}
			s.Incomplete = false
		}
	}
	tl := &Timeline{Spans: len(spans)}
	for _, id := range order {
		s := spans[id]
		switch {
		case s.ParentID == 0:
			tl.Roots = append(tl.Roots, s)
		default:
			if p, ok := spans[s.ParentID]; ok {
				p.Children = append(p.Children, s)
			} else {
				tl.Orphans = append(tl.Orphans, s)
			}
		}
	}
	byStart := func(list []*TimelineSpan) {
		sort.SliceStable(list, func(i, j int) bool { return list[i].Start.Before(list[j].Start) })
	}
	byStart(tl.Roots)
	byStart(tl.Orphans)
	var walk func(s *TimelineSpan)
	walk = func(s *TimelineSpan) {
		byStart(s.Children)
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range tl.Roots {
		walk(r)
	}
	return tl
}

// label renders one span's tree line: name, actor(@node), duration, and
// state flags.
func (s *TimelineSpan) label() string {
	who := s.Actor
	if s.Node != "" {
		who += "@" + s.Node
	}
	line := s.Name
	if who != "" {
		line += " (" + who + ")"
	}
	switch {
	case s.Incomplete:
		line += " …incomplete"
	default:
		line += fmt.Sprintf(" %.2fms", s.DurationMs)
	}
	if s.Outcome != "" {
		line += " [" + s.Outcome + "]"
	}
	if s.Recovered {
		line += " (begin evicted)"
	}
	return line
}

// WriteTree renders the forest as a flamegraph-style text tree, one
// trace per block, orphans flagged at the bottom.
func (tl *Timeline) WriteTree(w io.Writer) error {
	var branch func(s *TimelineSpan, prefix string, last bool) error
	branch = func(s *TimelineSpan, prefix string, last bool) error {
		tee, cont := "├── ", "│   "
		if last {
			tee, cont = "└── ", "    "
		}
		if _, err := fmt.Fprintf(w, "%s%s%s\n", prefix, tee, s.label()); err != nil {
			return err
		}
		for i, c := range s.Children {
			if err := branch(c, prefix+cont, i == len(s.Children)-1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range tl.Roots {
		if _, err := fmt.Fprintf(w, "trace %016x\n", r.TraceID); err != nil {
			return err
		}
		if err := branch(r, "", true); err != nil {
			return err
		}
	}
	if len(tl.Orphans) > 0 {
		if _, err := fmt.Fprintf(w, "ORPHANS (%d spans with missing parents)\n", len(tl.Orphans)); err != nil {
			return err
		}
		for i, o := range tl.Orphans {
			if err := branch(o, "", i == len(tl.Orphans)-1); err != nil {
				return err
			}
		}
	}
	return nil
}
