package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// baseName strips an embedded Prometheus label set from a metric name:
// `dist_messages_total{dir="rx"}` -> `dist_messages_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labeled splits a metric name into base and label-set text (without
// braces); label text is empty for unlabeled names.
func labeled(name string) (string, string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// promFloat renders a float the way Prometheus expects (+Inf, integers
// without exponent noise).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format, followed by the tracer's self-metrics. Output
// is sorted by name so it is stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	tracer := r.tracer
	r.mu.Unlock()

	seenHelp := make(map[string]bool)
	header := func(name, help, typ string) string {
		base := baseName(name)
		if seenHelp[base] {
			return ""
		}
		seenHelp[base] = true
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n", base, help, base, typ)
	}

	for _, name := range sortedKeys(counters) {
		c := counters[name]
		if _, err := fmt.Fprintf(w, "%s%s %d\n", header(name, c.help, "counter"), name, c.Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		if _, err := fmt.Fprintf(w, "%s%s %s\n", header(name, g.help, "gauge"), name, promFloat(g.Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		if _, err := io.WriteString(w, header(name, h.help, "histogram")); err != nil {
			return err
		}
		base, labels := labeled(name)
		bucketName := func(le string) string {
			if labels == "" {
				return fmt.Sprintf("%s_bucket{le=%q}", base, le)
			}
			return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
		}
		bounds, counts := h.Buckets()
		cum := int64(0)
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketName(promFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s %d\n", bucketName("+Inf"), cum); err != nil {
			return err
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			base, suffix, promFloat(h.Sum()), base, suffix, h.Count()); err != nil {
			return err
		}
	}
	if tracer != nil {
		if _, err := fmt.Fprintf(w,
			"# HELP mvcom_trace_dropped_total trace events evicted from the bounded ring\n"+
				"# TYPE mvcom_trace_dropped_total counter\n"+
				"mvcom_trace_dropped_total %d\n"+
				"# HELP mvcom_trace_events_total structured trace events emitted\n"+
				"# TYPE mvcom_trace_events_total counter\n"+
				"mvcom_trace_events_total %d\n",
			tracer.Dropped(), tracer.Emitted()); err != nil {
			return err
		}
	}
	return nil
}

// jsonHistogram is the JSON exposition shape of one histogram. P50/P95/
// P99 are quantile estimates interpolated from the fixed buckets
// (histogram_quantile-style); they are as coarse as the bucket layout.
type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []jsonBucket `json:"buckets"`
}

// histQuantile estimates quantile q (0..1) from fixed bucket bounds and
// non-cumulative counts (counts has len(bounds)+1, the last entry being
// the +Inf bucket), interpolating linearly within the bucket holding the
// rank — the same estimate Prometheus's histogram_quantile computes. A
// rank landing in the +Inf bucket degrades to the highest finite bound.
// Returns 0 on an empty histogram.
func histQuantile(q float64, bounds []float64, counts []int64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range bounds {
		prev := cum
		cum += counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			if counts[i] == 0 {
				return b
			}
			return lower + (b-lower)*(rank-float64(prev))/float64(counts[i])
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// jsonBucket is one non-cumulative bucket; LE is +Inf for the overflow
// bucket (serialized as the string "+Inf" since JSON has no infinities).
type jsonBucket struct {
	LE    json.RawMessage `json:"le"`
	Count int64           `json:"count"`
}

// jsonSnapshot is the full JSON exposition document.
type jsonSnapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]jsonHistogram `json:"histograms"`
	Trace      *jsonTrace               `json:"trace,omitempty"`
}

type jsonTrace struct {
	Emitted uint64 `json:"emitted"`
	Dropped uint64 `json:"dropped"`
}

// WriteJSON renders every registered instrument as one JSON document
// (counters, gauges, histograms with per-bucket counts, tracer totals).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.Lock()
	snap := jsonSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]jsonHistogram, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		jh := jsonHistogram{
			Count: h.Count(), Sum: h.Sum(),
			P50:     histQuantile(0.50, bounds, counts),
			P95:     histQuantile(0.95, bounds, counts),
			P99:     histQuantile(0.99, bounds, counts),
			Buckets: make([]jsonBucket, 0, len(counts)),
		}
		for i, b := range bounds {
			le, _ := json.Marshal(b)
			jh.Buckets = append(jh.Buckets, jsonBucket{LE: le, Count: counts[i]})
		}
		jh.Buckets = append(jh.Buckets, jsonBucket{LE: json.RawMessage(`"+Inf"`), Count: counts[len(counts)-1]})
		snap.Histograms[name] = jh
	}
	tracer := r.tracer
	r.mu.Unlock()
	if tracer != nil {
		snap.Trace = &jsonTrace{Emitted: tracer.Emitted(), Dropped: tracer.Dropped()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
