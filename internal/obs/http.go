package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the observability HTTP handler for a registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same instruments as one JSON document
//	/trace         recent structured trace events (JSON, oldest first)
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU, heap, goroutine, ... profiles
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events, dropped := reg.Tracer().Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{Dropped: dropped, Events: events})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the observability endpoint on addr (e.g. ":9100" or
// "127.0.0.1:0") and returns the running server. The caller should
// defer Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
