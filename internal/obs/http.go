package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// NewMux builds the observability HTTP handler for a registry:
//
//	/                   index page linking every endpoint below
//	/healthz            liveness probe + tracer fill/drop stats
//	/metrics            Prometheus text exposition
//	/metrics.json       the same instruments as one JSON document
//	/trace              recent structured trace events (streamed JSON, oldest first)
//	/debug/timeline     causal span timeline reconstructed from the tracer ring
//	/debug/convergence  SE convergence diagnostics (registered provider)
//	/debug/decisions    recent epoch decision-journal entries (registered provider)
//	/debug/vars         expvar (Go runtime memstats, cmdline)
//	/debug/pprof/       CPU, heap, goroutine, ... profiles
//
// Debug pages under /debug/<name> resolve their provider on every fetch
// (Registry.RegisterDebug), so a page registered after Serve started —
// the convergence diagnostics attach when an SE run begins — is served
// without restarting the endpoint.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><head><title>mvcom observability</title></head><body>\n")
		fmt.Fprint(w, "<h1>mvcom observability</h1>\n<ul>\n")
		links := []string{"/healthz", "/metrics", "/metrics.json", "/trace", "/debug/timeline", "/debug/convergence", "/debug/decisions", "/debug/vars", "/debug/pprof/"}
		seen := map[string]bool{}
		for _, l := range links {
			seen[l] = true
		}
		for _, name := range reg.DebugNames() {
			if l := "/debug/" + name; !seen[l] {
				links = append(links, l)
			}
		}
		for _, l := range links {
			fmt.Fprintf(w, "<li><a href=%q>%s</a></li>\n", l, l)
		}
		fmt.Fprint(w, "</ul>\n</body></html>\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Surface the tracer ring's fill/drop state so silent trace loss
		// is visible before an mvcom-trace -merge comes up short.
		tr := reg.Tracer()
		emitted, dropped, capacity := tr.Emitted(), tr.Dropped(), tr.Capacity()
		fill := 0.0
		if capacity > 0 {
			retained := emitted
			if retained > uint64(capacity) {
				retained = uint64(capacity)
			}
			fill = float64(retained) / float64(capacity)
		}
		fmt.Fprintf(w, `{"status":"ok","trace":{"capacity":%d,"emitted":%d,"dropped":%d,"fill":%.4f}}`+"\n",
			capacity, emitted, dropped, fill)
	})
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/debug/")
		fn := reg.DebugProvider(name)
		if fn == nil {
			http.Error(w, "no debug provider registered under "+strconv.Quote(name), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fn())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Streamed in bounded chunks — a large -trace-buf no longer
		// materializes the whole window on export.
		_ = reg.Tracer().StreamJSON(w)
	})
	// Explicit registration wins over the /debug/ provider dispatch.
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, r *http.Request) {
		events, _ := reg.Tracer().Snapshot()
		tl := BuildTimeline(events)
		if r.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = tl.WriteTree(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tl)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the observability endpoint on addr (e.g. ":9100" or
// "127.0.0.1:0") and returns the running server. The caller should
// defer Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
