package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanNilIsOff(t *testing.T) {
	var tc *TraceContext
	if got := NewTraceContext(nil); got != nil {
		t.Fatalf("NewTraceContext(nil) = %v, want nil", got)
	}
	s := tc.StartSpan("solve", "worker-1", SpanContext{})
	if s != nil {
		t.Fatalf("nil TraceContext StartSpan = %v, want nil", s)
	}
	// All nil-span methods must be safe.
	s.Finish()
	s.FinishOutcome("error")
	if got := s.Context(); got != (SpanContext{}) {
		t.Fatalf("nil span Context = %+v, want zero", got)
	}
	var r *Registry
	if got := r.TraceContext(); got != nil {
		t.Fatalf("nil Registry TraceContext = %v, want nil", got)
	}
}

func TestSpanRootAndChildParentage(t *testing.T) {
	tr := NewTracer(64)
	tc := NewTraceContext(tr)
	root := tc.StartRoot("epoch", "coordinator")
	rc := root.Context()
	if !rc.Valid() {
		t.Fatalf("root context invalid: %+v", rc)
	}
	if rc.TraceID != rc.SpanID || rc.ParentID != 0 {
		t.Fatalf("root should have TraceID==SpanID, ParentID==0; got %+v", rc)
	}
	child := tc.StartSpan("solve", "worker-1", rc)
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child TraceID %d != root TraceID %d", cc.TraceID, rc.TraceID)
	}
	if cc.ParentID != rc.SpanID {
		t.Fatalf("child ParentID %d != root SpanID %d", cc.ParentID, rc.SpanID)
	}
	if cc.SpanID == rc.SpanID {
		t.Fatal("child reused root SpanID")
	}
	// Invalid parent falls back to a fresh root trace.
	orphanless := tc.StartSpan("retry", "w", SpanContext{TraceID: 9})
	oc := orphanless.Context()
	if oc.ParentID != 0 || oc.TraceID != oc.SpanID {
		t.Fatalf("invalid parent should start a new root, got %+v", oc)
	}
}

func TestSpanBeginEndEvents(t *testing.T) {
	tr := NewTracer(64)
	tc := NewTraceContext(tr)
	s := tc.StartRoot("epoch", "coord")
	s.FinishOutcome("ok")
	s.Finish() // idempotent: must not emit a second end
	events, _ := tr.Snapshot()
	if len(events) != 2 {
		t.Fatalf("want 2 events (begin+end), got %d", len(events))
	}
	begin, end := events[0], events[1]
	if begin.Type != EvSpanBegin || begin.Detail != "epoch" {
		t.Fatalf("begin event wrong: %+v", begin)
	}
	if end.Type != EvSpanEnd || end.Detail != "epoch:ok" {
		t.Fatalf("end event wrong: %+v", end)
	}
	if begin.SpanID != end.SpanID || begin.TraceID != end.TraceID {
		t.Fatalf("begin/end span identity mismatch: %+v vs %+v", begin, end)
	}
	if end.Value < 0 {
		t.Fatalf("end duration negative: %v", end.Value)
	}
}

func TestSpanIDUniqueness(t *testing.T) {
	tc := NewTraceContext(NewTracer(16))
	const n = 2000
	seen := make(map[uint64]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				id := tc.next()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate span ID %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestSpanEventJSONRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tc := NewTraceContext(tr)
	tc.StartSpan("solve", "w1", tc.StartRoot("epoch", "c").Context()).Finish()
	events, _ := tr.Snapshot()
	raw, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if back[i].TraceID != events[i].TraceID || back[i].SpanID != events[i].SpanID ||
			back[i].ParentID != events[i].ParentID || back[i].Type != events[i].Type {
			t.Fatalf("event %d round-trip mismatch: %+v vs %+v", i, events[i], back[i])
		}
	}
	// Non-span events must not serialize span fields at all.
	tr2 := NewTracer(16)
	tr2.Emit(EvSERound, "k", 1, "")
	ev2, _ := tr2.Snapshot()
	raw2, _ := json.Marshal(ev2[0])
	if strings.Contains(string(raw2), "spanId") {
		t.Fatalf("non-span event leaked span fields: %s", raw2)
	}
}

func TestRegistryTraceContextIdentity(t *testing.T) {
	reg := NewRegistry()
	a, b := reg.TraceContext(), reg.TraceContext()
	if a == nil || a != b {
		t.Fatalf("TraceContext not a stable singleton: %p vs %p", a, b)
	}
	s := a.StartRoot("x", "y")
	s.Finish()
	if reg.Tracer().Emitted() != 2 {
		t.Fatalf("registry tracer did not receive span events, emitted=%d", reg.Tracer().Emitted())
	}
}

func TestTracerStreamJSON(t *testing.T) {
	tr := NewTracer(32)
	for i := 0; i < 50; i++ { // overflow: 18 drops
		tr.Emit(EvSERound, "k", float64(i), "")
	}
	var buf bytes.Buffer
	if err := tr.StreamJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stream output not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Dropped != 18 {
		t.Fatalf("dropped = %d, want 18", doc.Dropped)
	}
	if len(doc.Events) != 32 {
		t.Fatalf("events = %d, want 32", len(doc.Events))
	}
	// Must match the Snapshot view exactly when quiescent.
	snap, _ := tr.Snapshot()
	for i := range snap {
		if doc.Events[i].Seq != snap[i].Seq {
			t.Fatalf("event %d seq %d != snapshot %d", i, doc.Events[i].Seq, snap[i].Seq)
		}
	}
	// Nil tracer writes the empty document.
	var nilBuf bytes.Buffer
	var nt *Tracer
	if err := nt.StreamJSON(&nilBuf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(nilBuf.Bytes(), &doc); err != nil || doc.Dropped != 0 || len(doc.Events) != 0 {
		t.Fatalf("nil tracer stream wrong: %s (err %v)", nilBuf.String(), err)
	}
}
