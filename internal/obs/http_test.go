package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mvcom_http_test_total", "endpoint test").Add(7)
	reg.Tracer().Emit(EvEpochPhase, "epoch", 1, "formation")

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ctype := get("/metrics")
	if !strings.Contains(text, "mvcom_http_test_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", text)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}

	js, ctype := get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content type %q", ctype)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if doc.Counters["mvcom_http_test_total"] != 7 {
		t.Fatalf("/metrics.json counters = %v", doc.Counters)
	}

	trace, _ := get("/trace")
	var tdoc struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(trace), &tdoc); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	if len(tdoc.Events) != 1 || tdoc.Events[0].Detail != "formation" {
		t.Fatalf("/trace events = %+v", tdoc.Events)
	}

	vars, _ := get("/debug/vars")
	if !strings.Contains(vars, "memstats") {
		t.Fatal("/debug/vars missing expvar memstats")
	}

	pp, _ := get("/debug/pprof/")
	if !strings.Contains(pp, "goroutine") {
		t.Fatal("/debug/pprof/ index missing goroutine profile")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:-1", NewRegistry()); err == nil {
		t.Fatal("expected listen error for invalid address")
	}
}
