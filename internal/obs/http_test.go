package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mvcom_http_test_total", "endpoint test").Add(7)
	reg.Tracer().Emit(EvEpochPhase, "epoch", 1, "formation")

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ctype := get("/metrics")
	if !strings.Contains(text, "mvcom_http_test_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", text)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}

	js, ctype := get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content type %q", ctype)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if doc.Counters["mvcom_http_test_total"] != 7 {
		t.Fatalf("/metrics.json counters = %v", doc.Counters)
	}

	trace, _ := get("/trace")
	var tdoc struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(trace), &tdoc); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	if len(tdoc.Events) != 1 || tdoc.Events[0].Detail != "formation" {
		t.Fatalf("/trace events = %+v", tdoc.Events)
	}

	// /debug/timeline reconstructs spans from the same ring.
	sp := reg.TraceContext().StartRoot("epoch", "coord")
	reg.TraceContext().StartSpan("solve", "w1", sp.Context()).Finish()
	sp.Finish()
	timeline, ctype := get("/debug/timeline")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/timeline content type %q", ctype)
	}
	var tldoc Timeline
	if err := json.Unmarshal([]byte(timeline), &tldoc); err != nil {
		t.Fatalf("/debug/timeline does not parse: %v", err)
	}
	if tldoc.Spans != 2 || len(tldoc.Roots) != 1 || len(tldoc.Orphans) != 0 {
		t.Fatalf("/debug/timeline = %+v", tldoc)
	}
	tree, ctype := get("/debug/timeline?format=tree")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(tree, "└── epoch (coord)") {
		t.Fatalf("/debug/timeline?format=tree (%s):\n%s", ctype, tree)
	}

	vars, _ := get("/debug/vars")
	if !strings.Contains(vars, "memstats") {
		t.Fatal("/debug/vars missing expvar memstats")
	}

	pp, _ := get("/debug/pprof/")
	if !strings.Contains(pp, "goroutine") {
		t.Fatal("/debug/pprof/ index missing goroutine profile")
	}
}

func TestServeIndexHealthAndDebugProviders(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, index := get("/")
	if code != http.StatusOK {
		t.Fatalf("/ status %d", code)
	}
	for _, link := range []string{"/healthz", "/metrics", "/trace", "/debug/timeline", "/debug/convergence", "/debug/pprof/"} {
		if !strings.Contains(index, link) {
			t.Fatalf("index page missing link %s:\n%s", link, index)
		}
	}
	if code, _ := get("/no-such-page"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}

	reg.Tracer().Emit(EvEpochPhase, "epoch", 1, "formation")
	code, health := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var hdoc struct {
		Status string `json:"status"`
		Trace  struct {
			Capacity int     `json:"capacity"`
			Emitted  uint64  `json:"emitted"`
			Dropped  uint64  `json:"dropped"`
			Fill     float64 `json:"fill"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(health), &hdoc); err != nil || hdoc.Status != "ok" {
		t.Fatalf("/healthz body %q (err %v)", health, err)
	}
	if hdoc.Trace.Capacity != DefaultTraceCapacity {
		t.Fatalf("/healthz trace capacity = %d, want %d", hdoc.Trace.Capacity, DefaultTraceCapacity)
	}
	if hdoc.Trace.Emitted == 0 || hdoc.Trace.Fill <= 0 {
		t.Fatalf("/healthz trace stats empty: %q", health)
	}

	// Before any run registers diagnostics the page 404s; registration
	// after Serve must take effect without a restart.
	if code, _ := get("/debug/convergence"); code != http.StatusNotFound {
		t.Fatalf("/debug/convergence before registration: status %d, want 404", code)
	}
	reg.RegisterDebug("convergence", func() any {
		return map[string]any{"rounds": 42}
	})
	code, conv := get("/debug/convergence")
	if code != http.StatusOK {
		t.Fatalf("/debug/convergence status %d", code)
	}
	var cdoc struct {
		Rounds int `json:"rounds"`
	}
	if err := json.Unmarshal([]byte(conv), &cdoc); err != nil || cdoc.Rounds != 42 {
		t.Fatalf("/debug/convergence body %q (err %v)", conv, err)
	}

	// Extra providers appear both at /debug/<name> and on the index.
	reg.RegisterDebug("extra", func() any { return []int{1, 2, 3} })
	if code, body := get("/debug/extra"); code != http.StatusOK || !strings.Contains(body, "1") {
		t.Fatalf("/debug/extra status %d body %q", code, body)
	}
	if _, index := get("/"); !strings.Contains(index, "/debug/extra") {
		t.Fatal("index page missing dynamically registered /debug/extra link")
	}
}

func TestRegistryWithTraceCapacity(t *testing.T) {
	reg := NewRegistryWithTrace(16)
	for i := 0; i < 40; i++ {
		reg.Tracer().Emit(EvSERound, "se", float64(i), "")
	}
	events, dropped := reg.Tracer().Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(events))
	}
	if dropped != 24 {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	// Nil registry: every accessor stays inert.
	var nilReg *Registry
	nilReg.RegisterDebug("x", func() any { return nil })
	if nilReg.DebugProvider("x") != nil || nilReg.DebugNames() != nil {
		t.Fatal("nil registry must have no debug providers")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:-1", NewRegistry()); err == nil {
		t.Fatal("expected listen error for invalid address")
	}
}
