package metrics

import (
	"math"
	"strings"
	"testing"

	"mvcom/internal/core"
)

func tracePoints(pairs ...float64) []core.TracePoint {
	out := make([]core.TracePoint, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, core.TracePoint{Iteration: int(pairs[i]), Utility: pairs[i+1]})
	}
	return out
}

func TestConvergedUtility(t *testing.T) {
	got, err := ConvergedUtility(tracePoints(1, 10, 5, 30))
	if err != nil || got != 30 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := ConvergedUtility(nil); err != ErrNoTrace {
		t.Fatal("want ErrNoTrace")
	}
}

func TestConvergenceIteration(t *testing.T) {
	tr := tracePoints(1, 10, 50, 80, 200, 100)
	it, err := ConvergenceIteration(tr, 0.8)
	if err != nil || it != 50 {
		t.Fatalf("it %v err %v", it, err)
	}
	it, err = ConvergenceIteration(tr, 1.0)
	if err != nil || it != 200 {
		t.Fatalf("it %v err %v", it, err)
	}
	if _, err := ConvergenceIteration(tr, 0); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, err := ConvergenceIteration(tr, 1.5); err == nil {
		t.Fatal("fraction >1 accepted")
	}
	if _, err := ConvergenceIteration(nil, 0.5); err != ErrNoTrace {
		t.Fatal("want ErrNoTrace")
	}
}

func TestConvergenceIterationNegativeUtility(t *testing.T) {
	tr := tracePoints(1, -100, 10, -50)
	it, err := ConvergenceIteration(tr, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Target is -50/0.9 ≈ -55.6; first point reaching ≥ -55.6 is iter 10.
	if it != 10 {
		t.Fatalf("it %v", it)
	}

	// fraction 1.0 with a negative final: target equals the final value
	// exactly, reached only at the last point.
	it, err = ConvergenceIteration(tr, 1.0)
	if err != nil || it != 10 {
		t.Fatalf("fraction 1.0: it %v err %v", it, err)
	}

	// A mid-trace point already within the band converges early: the
	// target for final -50 at 0.5 is -100, met by the very first point.
	it, err = ConvergenceIteration(tr, 0.5)
	if err != nil || it != 1 {
		t.Fatalf("fraction 0.5: it %v err %v", it, err)
	}

	// Deep negative trail: no point before the last reaches -40/0.9 ≈
	// -44.4, so the fall-through returns the final iteration.
	deep := tracePoints(1, -500, 20, -300, 80, -40)
	it, err = ConvergenceIteration(deep, 0.9)
	if err != nil || it != 80 {
		t.Fatalf("deep negative: it %v err %v", it, err)
	}

	// Mixed-sign trace ending negative must use the flipped target, not
	// final*fraction (which would sit above every point and pick iter 1).
	mixed := tracePoints(1, 50, 30, -200, 90, -20)
	it, err = ConvergenceIteration(mixed, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Target is -20/0.5 = -40; iter 1 (+50) already satisfies ≥ -40.
	if it != 1 {
		t.Fatalf("mixed signs: it %v", it)
	}

	// Zero final utility: target is 0 regardless of direction.
	zero := tracePoints(1, -10, 40, 0)
	it, err = ConvergenceIteration(zero, 0.8)
	if err != nil || it != 40 {
		t.Fatalf("zero final: it %v err %v", it, err)
	}
}

func TestResample(t *testing.T) {
	tr := tracePoints(5, 10, 20, 40, 100, 90)
	got, err := Resample(tr, []int{0, 5, 10, 20, 50, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 10, 10, 40, 40, 90, 90}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid point %d: got %v want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample(nil, []int{1}); err != ErrNoTrace {
		t.Fatal("want ErrNoTrace")
	}
	if _, err := Resample(tracePoints(1, 1), []int{5, 2}); err == nil {
		t.Fatal("unsorted grid accepted")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(100, 5)
	want := []int{0, 25, 50, 75, 100}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("grid %v", g)
		}
	}
	if g := Grid(10, 1); len(g) != 2 {
		t.Fatalf("points clamp failed: %v", g)
	}
	if g := Grid(0, 3); g[len(g)-1] != 1 {
		t.Fatalf("maxIter clamp failed: %v", g)
	}
}

func TestMeanCurve(t *testing.T) {
	got, err := MeanCurve([][]float64{{1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mean curve %v", got)
		}
	}
	if _, err := MeanCurve(nil); err != ErrNoTrace {
		t.Fatal("want ErrNoTrace")
	}
	if _, err := MeanCurve([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func testInstance() core.Instance {
	in := core.Instance{
		Sizes:     []int{100, 200, 300},
		Latencies: []float64{700, 900, 1000},
		Alpha:     1.5,
		Capacity:  450,
		Nmin:      1,
	}
	if err := in.Validate(); err != nil {
		panic(err)
	}
	return in
}

func TestValuableDegree(t *testing.T) {
	in := testInstance()
	sol := core.NewSolution(&in, []bool{true, true, false})
	got := ValuableDegree(&in, sol)
	want := 100.0/300.0 + 200.0/100.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("VD %v, want %v", got, want)
	}
}

func TestOutcome(t *testing.T) {
	in := testInstance()
	sol := core.NewSolution(&in, []bool{true, false, true})
	o := Outcome(3, &in, sol)
	if o.Epoch != 3 || o.PermittedTxs != 400 || o.CommitteeCount != 2 {
		t.Fatalf("outcome %+v", o)
	}
	if o.ArrivedTxs != 600 {
		t.Fatalf("arrived %d", o.ArrivedTxs)
	}
	if math.Abs(o.CumulativeAge-300) > 1e-9 { // ages 300 + 0
		t.Fatalf("age %v", o.CumulativeAge)
	}
	if o.DDL != 1000 {
		t.Fatalf("ddl %v", o.DDL)
	}
	if math.Abs(o.Throughput()-0.4) > 1e-9 {
		t.Fatalf("throughput %v", o.Throughput())
	}
	if math.Abs(o.MeanAge()-150) > 1e-9 {
		t.Fatalf("mean age %v", o.MeanAge())
	}
}

func TestOutcomeZeroDivisionGuards(t *testing.T) {
	var o EpochOutcome
	if o.Throughput() != 0 || o.MeanAge() != 0 {
		t.Fatal("zero outcome should not divide by zero")
	}
}

func TestAggregateOutcomes(t *testing.T) {
	in := testInstance()
	o1 := Outcome(1, &in, core.NewSolution(&in, []bool{true, true, false}))
	o2 := Outcome(2, &in, core.NewSolution(&in, []bool{false, false, true}))
	agg := AggregateOutcomes([]EpochOutcome{o1, o2})
	if agg.Epochs != 2 {
		t.Fatalf("epochs %d", agg.Epochs)
	}
	if agg.TotalTxs != 300+300 {
		t.Fatalf("total txs %d", agg.TotalTxs)
	}
	wantRate := (300.0/600.0 + 300.0/600.0) / 2
	if math.Abs(agg.MeanPermitRate-wantRate) > 1e-9 {
		t.Fatalf("permit rate %v", agg.MeanPermitRate)
	}
	empty := AggregateOutcomes(nil)
	if empty.Epochs != 0 || empty.MeanPermitRate != 0 {
		t.Fatal("empty aggregate wrong")
	}
}

func TestWriteTraceTSV(t *testing.T) {
	var buf strings.Builder
	tr := tracePoints(1, 10, 5, 30)
	if err := WriteTraceTSV(&buf, "SE", tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# SE") || !strings.Contains(out, "5\t30") {
		t.Fatalf("tsv %q", out)
	}
	if err := WriteTraceTSV(&buf, "x", nil); err != ErrNoTrace {
		t.Fatal("want ErrNoTrace")
	}
}
