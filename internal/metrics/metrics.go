// Package metrics computes the evaluation metrics of the MVCom paper and
// provides the recorders the experiment harness uses to turn solver output
// into figure series: converged utilities, convergence curves resampled on
// a common iteration grid, the Valuable Degree of a schedule, and
// root-chain throughput/age accounting for the epoch pipeline.
package metrics

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"mvcom/internal/core"
)

// ErrNoTrace is returned when an operation needs a non-empty trace.
var ErrNoTrace = errors.New("metrics: empty trace")

// ConvergedUtility returns the final best utility of a trace.
func ConvergedUtility(trace []core.TracePoint) (float64, error) {
	if len(trace) == 0 {
		return 0, ErrNoTrace
	}
	return trace[len(trace)-1].Utility, nil
}

// ConvergenceIteration returns the first iteration at which the trace
// reaches the given fraction (0,1] of its final utility. Only meaningful
// for traces with positive final utility.
func ConvergenceIteration(trace []core.TracePoint, fraction float64) (int, error) {
	if len(trace) == 0 {
		return 0, ErrNoTrace
	}
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("metrics: fraction %v out of (0,1]", fraction)
	}
	final := trace[len(trace)-1].Utility
	target := final * fraction
	if final < 0 {
		// For negative utilities "within fraction" flips direction.
		target = final / fraction
	}
	for _, p := range trace {
		if p.Utility >= target {
			return p.Iteration, nil
		}
	}
	return trace[len(trace)-1].Iteration, nil
}

// Resample evaluates a best-so-far trace on an explicit iteration grid
// (step function, last value carried forward). Iterations before the first
// trace point take the first point's utility. The grid must be ascending.
func Resample(trace []core.TracePoint, grid []int) ([]float64, error) {
	if len(trace) == 0 {
		return nil, ErrNoTrace
	}
	if !sort.IntsAreSorted(grid) {
		return nil, errors.New("metrics: grid not ascending")
	}
	out := make([]float64, len(grid))
	ti := 0
	cur := trace[0].Utility
	for gi, g := range grid {
		for ti < len(trace) && trace[ti].Iteration <= g {
			cur = trace[ti].Utility
			ti++
		}
		out[gi] = cur
	}
	return out, nil
}

// Grid builds an evenly spaced iteration grid [0, maxIter] with the given
// number of points (at least 2).
func Grid(maxIter, points int) []int {
	if points < 2 {
		points = 2
	}
	if maxIter < 1 {
		maxIter = 1
	}
	out := make([]int, points)
	for i := range out {
		out[i] = i * maxIter / (points - 1)
	}
	return out
}

// MeanCurve averages several resampled curves pointwise; all curves must
// share a length.
func MeanCurve(curves [][]float64) ([]float64, error) {
	if len(curves) == 0 {
		return nil, ErrNoTrace
	}
	n := len(curves[0])
	out := make([]float64, n)
	for _, c := range curves {
		if len(c) != n {
			return nil, errors.New("metrics: curve length mismatch")
		}
		for i, v := range c {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(curves))
	}
	return out, nil
}

// ValuableDegree evaluates the paper's Section VI-E metric for a solution:
// Σ_i x_i · s_i / Π_i with a 1-second age floor.
func ValuableDegree(in *core.Instance, sol core.Solution) float64 {
	return sol.ValuableDegree(in, 0)
}

// EpochOutcome summarizes one epoch of the pipeline for throughput/age
// accounting.
type EpochOutcome struct {
	Epoch          int
	PermittedTxs   int     // Σ x_i s_i
	ArrivedTxs     int     // Σ s_i over shards that met the deadline
	CumulativeAge  float64 // Σ x_i (t_j − l_i), seconds
	DDL            float64 // t_j, seconds
	CommitteeCount int     // Σ x_i
	Utility        float64
}

// Throughput returns permitted transactions per second of epoch deadline.
func (o EpochOutcome) Throughput() float64 {
	if o.DDL <= 0 {
		return 0
	}
	return float64(o.PermittedTxs) / o.DDL
}

// MeanAge returns the mean cumulative age per permitted shard, or 0 when
// nothing was permitted.
func (o EpochOutcome) MeanAge() float64 {
	if o.CommitteeCount == 0 {
		return 0
	}
	return o.CumulativeAge / float64(o.CommitteeCount)
}

// Outcome derives an EpochOutcome from an instance and a solution.
func Outcome(epoch int, in *core.Instance, sol core.Solution) EpochOutcome {
	out := EpochOutcome{
		Epoch:          epoch,
		DDL:            in.DDL,
		PermittedTxs:   sol.Load,
		CommitteeCount: sol.Count,
		Utility:        sol.Utility,
		ArrivedTxs:     in.TotalArrivedSize(),
	}
	for i, sel := range sol.Selected {
		if sel {
			out.CumulativeAge += in.Age(i)
		}
	}
	return out
}

// Aggregate sums a run of epoch outcomes.
type Aggregate struct {
	Epochs         int
	TotalTxs       int
	TotalAge       float64
	TotalUtility   float64
	MeanPermitRate float64 // mean PermittedTxs/ArrivedTxs over epochs
}

// Aggregate folds outcomes into run totals.
func AggregateOutcomes(outcomes []EpochOutcome) Aggregate {
	var agg Aggregate
	var rateSum float64
	rated := 0
	for _, o := range outcomes {
		agg.Epochs++
		agg.TotalTxs += o.PermittedTxs
		agg.TotalAge += o.CumulativeAge
		agg.TotalUtility += o.Utility
		if o.ArrivedTxs > 0 {
			rateSum += float64(o.PermittedTxs) / float64(o.ArrivedTxs)
			rated++
		}
	}
	if rated > 0 {
		agg.MeanPermitRate = rateSum / float64(rated)
	}
	return agg
}

// WriteTraceTSV writes a convergence trace as two tab-separated columns
// (iteration, utility) with a comment header — ready for any plotting
// tool.
func WriteTraceTSV(w io.Writer, label string, trace []core.TracePoint) error {
	if len(trace) == 0 {
		return ErrNoTrace
	}
	if _, err := fmt.Fprintf(w, "# %s\n# iteration\tutility\n", label); err != nil {
		return err
	}
	for _, p := range trace {
		if _, err := fmt.Fprintf(w, "%d\t%g\n", p.Iteration, p.Utility); err != nil {
			return err
		}
	}
	return nil
}
