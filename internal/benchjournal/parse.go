package benchjournal

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseGoBench parses `go test -bench` text output into summarized
// benchmarks. Repeated result lines for the same benchmark (from -count)
// become that benchmark's samples. Non-result lines (goos/pkg/PASS/ok
// headers, b.Log output) are skipped.
func ParseGoBench(r io.Reader) ([]Benchmark, error) {
	samples := map[string][]Sample{}
	order := []string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		name, s, ok, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		out = append(out, Summarize(name, samples[name]))
	}
	return out, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName/sub-8  100  12345 ns/op  67 B/op  8 allocs/op  1.5 utility
//
// reporting ok=false for lines that are not benchmark results.
func parseBenchLine(line string) (name string, s Sample, ok bool, err error) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Sample{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", Sample{}, false, nil
	}
	name = stripProcsSuffix(fields[0])
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Sample{}, false, nil
	}
	s.N = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Sample{}, false, fmt.Errorf("benchjournal: bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.NsPerOp = v
		case "B/op":
			s.BytesPerOp = v
		case "allocs/op":
			s.AllocsPerOp = v
		case "MB/s":
			// Throughput is redundant with ns/op; skip it.
		default:
			if s.Metrics == nil {
				s.Metrics = map[string]float64{}
			}
			s.Metrics[unit] = v
		}
	}
	if s.NsPerOp == 0 {
		return "", Sample{}, false, nil
	}
	return name, s, true, nil
}

// stripProcsSuffix drops the trailing -GOMAXPROCS from a benchmark name
// ("BenchmarkX/sub-8" → "BenchmarkX/sub") so journals from machines with
// different core counts compare by logical benchmark.
func stripProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}
