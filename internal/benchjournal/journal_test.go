package benchjournal

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: mvcom
cpu: Apple M3
BenchmarkSESolveSize/I=50-8         	      30	    512345 ns/op	  123456 B/op	     230 allocs/op
BenchmarkSESolveSize/I=50-8         	      30	    498765 ns/op	  123456 B/op	     230 allocs/op
BenchmarkSESolveSize/I=200-8        	      30	   3891097 ns/op	 1842962 B/op	    2323 allocs/op
BenchmarkAblationBeta/beta=2-8      	     100	    812345 ns/op	       190102.5 utility
BenchmarkNoSuffix 	 10 	 111 ns/op
PASS
ok  	mvcom	12.345s
`
	benches, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}

	b50, ok := byName["BenchmarkSESolveSize/I=50"]
	if !ok {
		t.Fatalf("I=50 missing (procs suffix not stripped?): %v", byName)
	}
	if len(b50.Samples) != 2 || b50.NsPerOp.Count != 2 {
		t.Fatalf("I=50 samples = %d, want 2", len(b50.Samples))
	}
	if want := (512345.0 + 498765.0) / 2; math.Abs(b50.NsPerOp.Median-want) > 1e-9 {
		t.Fatalf("I=50 median = %v, want %v", b50.NsPerOp.Median, want)
	}
	if b50.AllocsPerOp == nil || b50.AllocsPerOp.Median != 230 {
		t.Fatalf("I=50 allocs = %+v, want 230", b50.AllocsPerOp)
	}

	beta := byName["BenchmarkAblationBeta/beta=2"]
	if beta.Metrics["utility"].Median != 190102.5 {
		t.Fatalf("custom metric lost: %+v", beta.Metrics)
	}
	if _, ok := byName["BenchmarkNoSuffix"]; !ok {
		t.Fatal("suffix-free benchmark name mangled")
	}
}

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{5, 1, 3, 2, 4})
	if s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Count != 5 {
		t.Fatalf("stat = %+v", s)
	}
	if s.IQR != 2 { // q75=4, q25=2 on n=5 exact positions
		t.Fatalf("IQR = %v, want 2", s.IQR)
	}
	if one := NewStat([]float64{7}); one.Median != 7 || one.IQR != 0 {
		t.Fatalf("single-sample stat = %+v", one)
	}
	if zero := NewStat(nil); zero.Count != 0 {
		t.Fatalf("empty stat = %+v", zero)
	}
}

func TestSelfTest(t *testing.T) {
	if err := SelfTest(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_MVCOM.json")
	j := &Journal{
		Env: CurrentEnv(),
		Benchmarks: []Benchmark{
			Summarize("BenchmarkZ", []Sample{{N: 1, NsPerOp: 2}}),
			Summarize("BenchmarkA", []Sample{{N: 1, NsPerOp: 1}}),
		},
		Convergence: &Convergence{K: 12, DTV: 0.06},
	}
	if err := j.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version = %d", got.SchemaVersion)
	}
	// Save sorts benchmarks for stable committed diffs.
	if got.Benchmarks[0].Name != "BenchmarkA" || got.Benchmarks[1].Name != "BenchmarkZ" {
		t.Fatalf("benchmarks not sorted: %v, %v", got.Benchmarks[0].Name, got.Benchmarks[1].Name)
	}
	if got.Convergence == nil || got.Convergence.DTV != 0.06 {
		t.Fatalf("convergence record lost: %+v", got.Convergence)
	}

	// A future schema version must be rejected, not misread.
	raw, _ := os.ReadFile(path)
	bad := strings.Replace(string(raw), `"schemaVersion": 1`, `"schemaVersion": 99`, 1)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("future schema accepted: %v", err)
	}
}

func TestPromoteSEBench(t *testing.T) {
	legacy := `{
  "generatedAt": "2026-08-05T10:13:10Z",
  "goVersion": "go1.24.0",
  "gomaxprocs": 1,
  "numCpu": 1,
  "entries": [
    {"name": "SESolve/gamma=1/serial", "nsPerOp": 3891097, "bytesPerOp": 1842962,
     "allocsPerOp": 2323, "utility": 187873.4, "iterations": 2000}
  ]
}`
	path := filepath.Join(t.TempDir(), "BENCH_SE.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := PromoteSEBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Env.GoVersion != "go1.24.0" || j.Env.NumCPU != 1 {
		t.Fatalf("legacy env lost: %+v", j.Env)
	}
	b := j.Find("BenchmarkSESolve/gamma=1/serial")
	if b == nil {
		t.Fatalf("promoted benchmark missing; have %v", j.Benchmarks)
	}
	if b.NsPerOp.Median != 3891097 || b.AllocsPerOp.Median != 2323 {
		t.Fatalf("promoted numbers wrong: %+v", b)
	}
	if b.Metrics["utility"].Median != 187873.4 {
		t.Fatalf("utility metric lost: %+v", b.Metrics)
	}
}

func TestDiffMissingAndNew(t *testing.T) {
	env := CurrentEnv()
	oldJ := &Journal{Env: env, Benchmarks: []Benchmark{
		Summarize("BenchmarkGone", []Sample{{N: 1, NsPerOp: 100}}),
	}}
	newJ := &Journal{Env: env, Benchmarks: []Benchmark{
		Summarize("BenchmarkFresh", []Sample{{N: 1, NsPerOp: 100}}),
	}}
	findings, regressed := Diff(oldJ, newJ, Options{})
	if regressed {
		t.Fatal("presence changes must not hard-fail the gate")
	}
	var warn, info bool
	for _, f := range findings {
		if f.Benchmark == "BenchmarkGone" && f.Severity == SevWarning {
			warn = true
		}
		if f.Benchmark == "BenchmarkFresh" && f.Severity == SevInfo {
			info = true
		}
	}
	if !warn || !info {
		t.Fatalf("presence findings missing: %v", findings)
	}
}
