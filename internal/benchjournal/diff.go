package benchjournal

import (
	"fmt"
	"sort"
)

// Options tunes the differ.
type Options struct {
	// TimeThreshold is the minimum relative slowdown of the median
	// ns/op that counts as a regression. Default 0.10.
	TimeThreshold float64
	// AllocThreshold is the relative growth of the median allocs/op that
	// counts as a regression. Allocations are deterministic per
	// operation, so this gate is hard even across environments.
	// Default 0.01.
	AllocThreshold float64
	// NoiseFactor widens the time threshold by NoiseFactor times the
	// larger relative IQR of the two sides: noisy samples demand a larger
	// slowdown before the gate fires. Default 1.0.
	NoiseFactor float64
}

func (o Options) withDefaults() Options {
	if o.TimeThreshold <= 0 {
		o.TimeThreshold = 0.10
	}
	if o.AllocThreshold <= 0 {
		o.AllocThreshold = 0.01
	}
	if o.NoiseFactor <= 0 {
		o.NoiseFactor = 1.0
	}
	return o
}

// Severity classifies one finding.
type Severity string

// The finding severities, ordered: only SevRegression fails the gate.
const (
	SevInfo       Severity = "info"
	SevWarning    Severity = "warning"
	SevRegression Severity = "regression"
)

// Finding is one observation of the differ.
type Finding struct {
	Benchmark string   `json:"benchmark"`
	Metric    string   `json:"metric"`
	Old       float64  `json:"old"`
	New       float64  `json:"new"`
	Ratio     float64  `json:"ratio"`
	Threshold float64  `json:"threshold"`
	Severity  Severity `json:"severity"`
	Note      string   `json:"note,omitempty"`
}

// String renders a finding for the CLI.
func (f Finding) String() string {
	s := fmt.Sprintf("%-10s %s %s: %.4g -> %.4g (x%.3f, gate x%.3f)",
		f.Severity, f.Benchmark, f.Metric, f.Old, f.New, f.Ratio, 1+f.Threshold)
	if f.Note != "" {
		s += " — " + f.Note
	}
	return s
}

// Diff compares two journals and reports findings plus whether any
// finding is a gate-failing regression. Wall-time comparisons use the
// noise-widened threshold and degrade to warnings when the environment
// fingerprints differ; allocation comparisons are gated hard everywhere.
func Diff(oldJ, newJ *Journal, opt Options) ([]Finding, bool) {
	opt = opt.withDefaults()
	sameEnv := oldJ.Env == newJ.Env

	var findings []Finding
	regressed := false
	seen := map[string]bool{}

	for i := range oldJ.Benchmarks {
		ob := &oldJ.Benchmarks[i]
		seen[ob.Name] = true
		nb := newJ.Find(ob.Name)
		if nb == nil {
			findings = append(findings, Finding{
				Benchmark: ob.Name, Metric: "presence", Severity: SevWarning,
				Note: "benchmark missing from the new journal",
			})
			continue
		}

		// Wall time: median vs median, threshold widened by noise.
		if ob.NsPerOp.Median > 0 && nb.NsPerOp.Median > 0 {
			thresh := opt.TimeThreshold + opt.NoiseFactor*maxRelIQR(ob.NsPerOp, nb.NsPerOp)
			ratio := nb.NsPerOp.Median / ob.NsPerOp.Median
			f := Finding{
				Benchmark: ob.Name, Metric: "ns/op",
				Old: ob.NsPerOp.Median, New: nb.NsPerOp.Median,
				Ratio: ratio, Threshold: thresh,
			}
			switch {
			case ratio > 1+thresh && sameEnv:
				f.Severity, f.Note = SevRegression, "median slowdown beyond the noise-widened gate"
				regressed = true
				findings = append(findings, f)
			case ratio > 1+thresh:
				f.Severity, f.Note = SevWarning, "slowdown, but the environment fingerprints differ — not gated"
				findings = append(findings, f)
			case ratio < 1/(1+thresh):
				f.Severity, f.Note = SevInfo, "improvement"
				findings = append(findings, f)
			}
		}

		// Allocations: deterministic, hard gate regardless of environment.
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil && ob.AllocsPerOp.Median > 0 {
			ratio := nb.AllocsPerOp.Median / ob.AllocsPerOp.Median
			if ratio > 1+opt.AllocThreshold {
				findings = append(findings, Finding{
					Benchmark: ob.Name, Metric: "allocs/op",
					Old: ob.AllocsPerOp.Median, New: nb.AllocsPerOp.Median,
					Ratio: ratio, Threshold: opt.AllocThreshold,
					Severity: SevRegression,
					Note:     "allocation growth (hard gate: allocs are deterministic)",
				})
				regressed = true
			}
		}
	}

	for i := range newJ.Benchmarks {
		nb := &newJ.Benchmarks[i]
		if !seen[nb.Name] {
			findings = append(findings, Finding{
				Benchmark: nb.Name, Metric: "presence", Severity: SevInfo,
				Note: "new benchmark (no baseline)",
			})
		}
	}

	// Convergence headline: informational cross-check, never gated (the
	// probe is a single stochastic run).
	if oldJ.Convergence != nil && newJ.Convergence != nil {
		oc, nc := oldJ.Convergence, newJ.Convergence
		if nc.DTV > oc.DTV*2 && nc.DTV > 0.1 {
			findings = append(findings, Finding{
				Benchmark: "convergence-probe", Metric: "dtv",
				Old: oc.DTV, New: nc.DTV, Ratio: safeRatio(nc.DTV, oc.DTV),
				Severity: SevWarning,
				Note:     "d_TV estimate worsened markedly; check the SE kernel's mixing",
			})
		}
	}

	sort.SliceStable(findings, func(a, b int) bool {
		return sevRank(findings[a].Severity) > sevRank(findings[b].Severity)
	})
	return findings, regressed
}

func sevRank(s Severity) int {
	switch s {
	case SevRegression:
		return 2
	case SevWarning:
		return 1
	default:
		return 0
	}
}

// maxRelIQR returns the larger IQR/median of the two stats — the noise
// scale the time gate widens by.
func maxRelIQR(a, b Stat) float64 {
	ra, rb := 0.0, 0.0
	if a.Median > 0 {
		ra = a.IQR / a.Median
	}
	if b.Median > 0 {
		rb = b.IQR / b.Median
	}
	if ra > rb {
		return ra
	}
	return rb
}

func safeRatio(n, d float64) float64 {
	if d == 0 {
		return 0
	}
	return n / d
}
