package benchjournal

import "fmt"

// SelfTest exercises the regression gate on synthetic journals with
// known answers: an injected ~20% median slowdown must fail the gate, a
// re-sample of the same distribution (pure noise) must pass, an
// environment-fingerprint mismatch must degrade the time gate to a
// warning, and an allocation increase must fail even across
// environments. It returns nil when every case behaves; ci.sh runs it
// before trusting the differ with real numbers.
func SelfTest() error {
	// Deterministic "noise": multipliers within ±3% of 1, the jitter a
	// healthy CI runner shows across -count repetitions.
	baseJitter := []float64{1.000, 0.985, 1.012, 0.991, 1.021}
	resampleJitter := []float64{1.008, 0.979, 1.017, 1.002, 0.988}

	mk := func(env Env, nsBase, allocBase float64, jitter []float64, slowdown float64) *Journal {
		samples := make([]Sample, len(jitter))
		for i, m := range jitter {
			samples[i] = Sample{
				N:           100,
				NsPerOp:     nsBase * m * slowdown,
				BytesPerOp:  4096,
				AllocsPerOp: allocBase,
			}
		}
		return &Journal{
			SchemaVersion: SchemaVersion,
			Env:           env,
			Benchmarks:    []Benchmark{Summarize("BenchmarkSelfTest/I=200", samples)},
		}
	}

	env := Env{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GOMAXPROCS: 8}
	otherEnv := env
	otherEnv.NumCPU, otherEnv.GOMAXPROCS = 4, 4

	baseline := mk(env, 1e6, 2300, baseJitter, 1.0)

	// Case 1: 20% slowdown, same environment — must regress.
	slow := mk(env, 1e6, 2300, resampleJitter, 1.20)
	if _, regressed := Diff(baseline, slow, Options{}); !regressed {
		return fmt.Errorf("benchjournal selftest: injected 20%% slowdown not caught")
	}

	// Case 2: pure re-sample noise — must pass.
	noise := mk(env, 1e6, 2300, resampleJitter, 1.0)
	if findings, regressed := Diff(baseline, noise, Options{}); regressed {
		return fmt.Errorf("benchjournal selftest: noise-only re-sample flagged as regression: %v", findings)
	}

	// Case 3: identical journal diffed against itself — must pass.
	if findings, regressed := Diff(baseline, baseline, Options{}); regressed {
		return fmt.Errorf("benchjournal selftest: self-diff flagged as regression: %v", findings)
	}

	// Case 4: 20% slowdown across different environments — time gate
	// degrades to a warning, the gate must not fail...
	slowOther := mk(otherEnv, 1e6, 2300, resampleJitter, 1.20)
	findings, regressed := Diff(baseline, slowOther, Options{})
	if regressed {
		return fmt.Errorf("benchjournal selftest: cross-environment slowdown hard-failed the gate")
	}
	sawWarn := false
	for _, f := range findings {
		if f.Metric == "ns/op" && f.Severity == SevWarning {
			sawWarn = true
		}
	}
	if !sawWarn {
		return fmt.Errorf("benchjournal selftest: cross-environment slowdown produced no warning")
	}

	// ...but an allocation increase is gated hard even there.
	allocOther := mk(otherEnv, 1e6, 2300*1.10, resampleJitter, 1.0)
	if _, regressed := Diff(baseline, allocOther, Options{}); !regressed {
		return fmt.Errorf("benchjournal selftest: cross-environment allocation growth not caught")
	}

	return nil
}
