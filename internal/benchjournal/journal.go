// Package benchjournal is the continuous benchmark journal of the repo:
// a versioned JSON schema for performance baselines (BENCH_MVCOM.json at
// the repo root), a parser for `go test -bench` output, and a
// noise-aware differ that turns two journals into a CI regression gate.
//
// A journal records the environment fingerprint the samples were taken
// under, the raw per-run samples (one per -count repetition), and
// median/IQR summaries. The differ compares medians but widens its
// threshold by the observed IQR — repeated samples are what make the
// gate robust to scheduler noise — and degrades wall-time gates to
// warnings when the fingerprints differ (a laptop cannot invalidate a CI
// baseline), while allocation counts are gated hard everywhere because
// they are deterministic per operation.
package benchjournal

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion is the journal schema this package reads and writes.
// Readers reject other versions instead of misinterpreting fields.
const SchemaVersion = 1

// Env is the environment fingerprint a journal's samples were taken
// under.
type Env struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentEnv fingerprints the running process.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Stat summarizes repeated samples of one metric. Median and IQR are the
// robust location/spread pair the differ reasons with.
type Stat struct {
	Median float64 `json:"median"`
	IQR    float64 `json:"iqr"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Count  int     `json:"count"`
}

// NewStat summarizes a sample slice (empty input yields a zero Stat).
func NewStat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Stat{
		Median: quantile(sorted, 0.5),
		IQR:    quantile(sorted, 0.75) - quantile(sorted, 0.25),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Count:  len(sorted),
	}
}

// quantile interpolates linearly on a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Sample is one benchmark run (one -count repetition).
type Sample struct {
	// N is the b.N iteration count of the run.
	N int64 `json:"n"`
	// NsPerOp is the wall time per operation.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp and AllocsPerOp are present when the benchmark reported
	// allocations (-benchmem or b.ReportAllocs).
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// Metrics carries custom b.ReportMetric units (e.g. "utility").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Benchmark groups one benchmark's samples with their summaries.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, so
	// journals from machines with different core counts line up.
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`

	NsPerOp     Stat            `json:"nsPerOp"`
	BytesPerOp  *Stat           `json:"bytesPerOp,omitempty"`
	AllocsPerOp *Stat           `json:"allocsPerOp,omitempty"`
	Metrics     map[string]Stat `json:"metrics,omitempty"`
}

// Summarize builds a Benchmark from raw samples.
func Summarize(name string, samples []Sample) Benchmark {
	b := Benchmark{Name: name, Samples: samples}
	ns := make([]float64, 0, len(samples))
	var bytesXs, allocXs []float64
	metricXs := map[string][]float64{}
	for _, s := range samples {
		ns = append(ns, s.NsPerOp)
		if s.BytesPerOp != 0 || s.AllocsPerOp != 0 {
			bytesXs = append(bytesXs, s.BytesPerOp)
			allocXs = append(allocXs, s.AllocsPerOp)
		}
		for unit, v := range s.Metrics {
			metricXs[unit] = append(metricXs[unit], v)
		}
	}
	b.NsPerOp = NewStat(ns)
	if len(bytesXs) > 0 {
		bs, as := NewStat(bytesXs), NewStat(allocXs)
		b.BytesPerOp, b.AllocsPerOp = &bs, &as
	}
	if len(metricXs) > 0 {
		b.Metrics = make(map[string]Stat, len(metricXs))
		for unit, xs := range metricXs {
			b.Metrics[unit] = NewStat(xs)
		}
	}
	return b
}

// Convergence is the headline convergence-diagnostics record attached to
// a journal: the seobs snapshot of one deterministic probe solve, so a
// journal captures not just "how fast" but "does it still converge".
type Convergence struct {
	K                      int     `json:"k"`
	Gamma                  int     `json:"gamma"`
	Rounds                 int64   `json:"rounds"`
	BestUtility            float64 `json:"bestUtility"`
	DTV                    float64 `json:"dtv"`
	TimeToEpsRounds        int     `json:"timeToEpsRounds"`
	SwapAcceptRate         float64 `json:"swapAcceptRate"`
	IntegratedAutocorrTime float64 `json:"integratedAutocorrTime"`

	// Adaptive-schedule companion run: the same instance and seed solved
	// with SEConfig.Adaptive on. The probe refuses to journal a build
	// where the schedule reaches the ε-band slower than the fixed chain.
	AdaptiveTimeToEpsRounds int     `json:"adaptiveTimeToEpsRounds,omitempty"`
	AdaptiveDTV             float64 `json:"adaptiveDtv,omitempty"`
	AdaptiveStage           int     `json:"adaptiveStage,omitempty"`
}

// Journal is one benchmark journal document.
type Journal struct {
	SchemaVersion int    `json:"schemaVersion"`
	GeneratedAt   string `json:"generatedAt,omitempty"`
	Note          string `json:"note,omitempty"`
	Env           Env    `json:"env"`

	Benchmarks []Benchmark `json:"benchmarks"`

	Convergence *Convergence `json:"convergence,omitempty"`
}

// Find returns the named benchmark, or nil.
func (j *Journal) Find(name string) *Benchmark {
	for i := range j.Benchmarks {
		if j.Benchmarks[i].Name == name {
			return &j.Benchmarks[i]
		}
	}
	return nil
}

// Load reads and validates a journal file.
func Load(path string) (*Journal, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j Journal
	if err := json.Unmarshal(raw, &j); err != nil {
		return nil, fmt.Errorf("benchjournal: parse %s: %w", path, err)
	}
	if j.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchjournal: %s has schema version %d, this tool reads %d",
			path, j.SchemaVersion, SchemaVersion)
	}
	return &j, nil
}

// Save writes the journal with stable formatting (sorted benchmarks,
// two-space indent, trailing newline) so committed baselines diff
// cleanly.
func (j *Journal) Save(path string) error {
	j.SchemaVersion = SchemaVersion
	sort.Slice(j.Benchmarks, func(a, b int) bool {
		return j.Benchmarks[a].Name < j.Benchmarks[b].Name
	})
	raw, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
