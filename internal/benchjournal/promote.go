package benchjournal

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// legacySEBench mirrors the pre-journal results/BENCH_SE.json schema
// written by cmd/mvcom-bench.
type legacySEBench struct {
	GeneratedAt string `json:"generatedAt"`
	GoVersion   string `json:"goVersion"`
	Gomaxprocs  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"numCpu"`
	Entries     []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"nsPerOp"`
		BytesPerOp  float64 `json:"bytesPerOp"`
		AllocsPerOp float64 `json:"allocsPerOp"`
		Utility     float64 `json:"utility"`
		Iterations  int     `json:"iterations"`
	} `json:"entries"`
}

// PromoteSEBench lifts a legacy results/BENCH_SE.json into the journal
// schema. Each legacy entry becomes a single-sample benchmark; the
// utility rides along as a custom metric. GOOS/GOARCH were not recorded
// in the legacy schema, so they are taken from the current process —
// which is where the promotion runs, i.e. the machine that produced the
// legacy file in the repo's workflow.
func PromoteSEBench(path string) (*Journal, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var legacy legacySEBench
	if err := json.Unmarshal(raw, &legacy); err != nil {
		return nil, fmt.Errorf("benchjournal: parse legacy %s: %w", path, err)
	}
	if len(legacy.Entries) == 0 {
		return nil, fmt.Errorf("benchjournal: legacy %s has no entries", path)
	}
	j := &Journal{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   legacy.GeneratedAt,
		Note:          "promoted from " + path,
		Env: Env{
			GoVersion:  legacy.GoVersion,
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     legacy.NumCPU,
			GOMAXPROCS: legacy.Gomaxprocs,
		},
	}
	for _, e := range legacy.Entries {
		s := Sample{
			N:           1,
			NsPerOp:     e.NsPerOp,
			BytesPerOp:  e.BytesPerOp,
			AllocsPerOp: e.AllocsPerOp,
			Metrics: map[string]float64{
				"utility":    e.Utility,
				"iterations": float64(e.Iterations),
			},
		}
		j.Benchmarks = append(j.Benchmarks, Summarize("Benchmark"+e.Name, []Sample{s}))
	}
	return j, nil
}
