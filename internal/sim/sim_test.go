package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mvcom/internal/randx"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	mustSchedule(t, e, 30*time.Second, func(time.Duration) { order = append(order, 3) })
	mustSchedule(t, e, 10*time.Second, func(time.Duration) { order = append(order, 1) })
	mustSchedule(t, e, 20*time.Second, func(time.Duration) { order = append(order, 2) })
	if n := e.Run(0); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 30*time.Second {
		t.Fatalf("clock %v", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, e, time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	mustSchedule(t, e, 5*time.Second, func(now time.Duration) {
		if _, err := e.Schedule(-time.Hour, func(time.Duration) { fired = true }); err != nil {
			t.Errorf("schedule: %v", err)
		}
	})
	e.Run(0)
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock moved backwards or forwards: %v", e.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	if _, err := e.ScheduleAt(42*time.Second, func(now time.Duration) { at = now }); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if at != 42*time.Second {
		t.Fatalf("fired at %v", at)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(time.Second, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id, err := e.Schedule(time.Second, func(time.Duration) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(id) {
		t.Fatal("cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double-cancel returned true")
	}
	e.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	e := NewEngine()
	id, err := e.Schedule(0, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if e.Cancel(id) {
		t.Fatal("canceling a fired event returned true")
	}
	if e.Cancel(EventID{}) {
		t.Fatal("canceling the zero EventID returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ids []EventID
	for i := 0; i < 5; i++ {
		i := i
		id, err := e.Schedule(time.Duration(i+1)*time.Second, func(time.Duration) { fired = append(fired, i) })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Cancel(ids[2])
	e.Run(0)
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		mustSchedule(t, e, d, func(now time.Duration) { fired = append(fired, now) })
	}
	n := e.Run(2 * time.Second)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("ran %d events: %v", n, fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	// Continue with no horizon.
	e.Run(0)
	if len(fired) != 4 {
		t.Fatalf("fired %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		mustSchedule(t, e, time.Duration(i)*time.Second, func(time.Duration) { count++ })
	}
	ok := e.RunUntil(func() bool { return count >= 3 })
	if !ok || count != 3 {
		t.Fatalf("RunUntil stopped at count=%d ok=%v", count, ok)
	}
	ok = e.RunUntil(func() bool { return count >= 100 })
	if ok || count != 10 {
		t.Fatalf("RunUntil drained queue: count=%d ok=%v", count, ok)
	}
	if e.RunUntil(nil) {
		t.Fatal("nil predicate should return false")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	mustSchedule(t, e, time.Second, func(time.Duration) { t.Error("event ran after Stop") })
	e.Stop()
	if e.Run(0) != 0 {
		t.Fatal("events ran after Stop")
	}
	if _, err := e.Schedule(time.Second, func(time.Duration) {}); err != ErrStopped {
		t.Fatalf("Schedule after Stop: %v", err)
	}
}

func TestCascadingEvents(t *testing.T) {
	// A chain of events, each scheduling the next, models a process.
	e := NewEngine()
	hops := 0
	var hop Handler
	hop = func(now time.Duration) {
		hops++
		if hops < 100 {
			if _, err := e.Schedule(time.Millisecond, hop); err != nil {
				t.Errorf("schedule: %v", err)
			}
		}
	}
	mustSchedule(t, e, 0, hop)
	e.Run(0)
	if hops != 100 {
		t.Fatalf("hops %d", hops)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("clock %v", e.Now())
	}
	if e.Processed() != 100 {
		t.Fatalf("processed %d", e.Processed())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64, rawDelays []uint32) bool {
		e := NewEngine()
		r := randx.New(seed)
		var stamps []time.Duration
		for _, d := range rawDelays {
			delay := time.Duration(d%1000000) * time.Microsecond
			if _, err := e.Schedule(delay, func(now time.Duration) {
				stamps = append(stamps, now)
				// Events may themselves schedule more work.
				if r.Bool(0.2) && len(stamps) < 5000 {
					_, _ = e.Schedule(time.Duration(r.Intn(1000))*time.Microsecond, func(now2 time.Duration) {
						stamps = append(stamps, now2)
					})
				}
			}); err != nil {
				return false
			}
		}
		e.Run(0)
		return sort.SliceIsSorted(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeconds(t *testing.T) {
	tests := []struct {
		give float64
		want time.Duration
	}{
		{0, 0},
		{-1, 0},
		{1.5, 1500 * time.Millisecond},
		{600, 600 * time.Second},
	}
	for _, tt := range tests {
		if got := Seconds(tt.give); got != tt.want {
			t.Fatalf("Seconds(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
	if Seconds(math.Inf(1)) != time.Duration(math.MaxInt64) {
		t.Fatal("Seconds(+Inf) should saturate")
	}
	if Seconds(1e300) != time.Duration(math.MaxInt64) {
		t.Fatal("Seconds(1e300) should saturate")
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		s := float64(raw%1000000) / 1000.0
		return math.Abs(ToSeconds(Seconds(s))-s) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDescribes(t *testing.T) {
	e := NewEngine()
	mustSchedule(t, e, time.Second, func(time.Duration) {})
	if s := e.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func mustSchedule(t *testing.T, e *Engine, d time.Duration, h Handler) EventID {
	t.Helper()
	id, err := e.Schedule(d, h)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
