// Package sim implements a deterministic discrete-event simulation engine.
//
// The MVCom evaluation is simulation-driven: committee formation (PoW),
// overlay configuration, intra-committee PBFT, and the final consensus all
// run as processes scheduled on a virtual clock. The engine is a classic
// event-heap design: events carry a virtual timestamp and a callback;
// Run pops events in (time, sequence) order so that simultaneous events
// execute in schedule order, which keeps runs reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrStopped is returned by Schedule after the engine has been stopped.
var ErrStopped = errors.New("sim: engine stopped")

// Handler is the callback attached to an event. It runs when the virtual
// clock reaches the event's timestamp.
type Handler func(now time.Duration)

// Event is a scheduled callback. Events are ordered by timestamp, with the
// scheduling sequence number breaking ties.
type event struct {
	at      time.Duration
	seq     uint64
	handler Handler
	index   int // heap index; -1 once popped or canceled
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct {
	ev *event
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all scheduling must happen from the goroutine driving
// Run/Step (typically from inside handlers).
type Engine struct {
	queue     eventHeap
	now       time.Duration
	seq       uint64
	stopped   bool
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues handler to run after delay of virtual time. Negative
// delays are clamped to zero (the event runs "now", after currently queued
// same-time events). It returns an EventID usable with Cancel.
func (e *Engine) Schedule(delay time.Duration, handler Handler) (EventID, error) {
	if e.stopped {
		return EventID{}, ErrStopped
	}
	if handler == nil {
		return EventID{}, errors.New("sim: nil handler")
	}
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: e.now + delay, seq: e.seq, handler: handler}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev}, nil
}

// ScheduleAt enqueues handler at an absolute virtual time. Times in the
// past are clamped to the current clock.
func (e *Engine) ScheduleAt(at time.Duration, handler Handler) (EventID, error) {
	return e.Schedule(at-e.now, handler)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op that returns false.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, id.ev.index)
	id.ev.index = -1
	return true
}

// Stop prevents any further scheduling and clears the queue.
func (e *Engine) Stop() {
	e.stopped = true
	e.queue = nil
}

// Step executes the next event, advancing the clock to its timestamp. It
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	e.processed++
	ev.handler(e.now)
	return true
}

// Run executes events until the queue drains or until the clock would pass
// horizon (inclusive). A zero horizon means no limit. It returns the number
// of events executed.
func (e *Engine) Run(horizon time.Duration) uint64 {
	var n uint64
	for len(e.queue) > 0 {
		if horizon > 0 && e.queue[0].at > horizon {
			break
		}
		e.Step()
		n++
	}
	return n
}

// RunUntil executes events while pred returns false, stopping as soon as it
// returns true after an event or when the queue drains. It returns whether
// pred was satisfied.
func (e *Engine) RunUntil(pred func() bool) bool {
	if pred == nil {
		return false
	}
	for !pred() {
		if !e.Step() {
			return pred()
		}
	}
	return true
}

// String describes the engine state for logs.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%s pending=%d processed=%d}", e.now, len(e.queue), e.processed)
}

// Seconds converts a float seconds count into a virtual-time duration,
// saturating instead of overflowing for very large values.
func Seconds(s float64) time.Duration {
	if math.IsInf(s, 1) || s > math.MaxInt64/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// ToSeconds converts a virtual-time duration into float seconds.
func ToSeconds(d time.Duration) float64 { return d.Seconds() }
