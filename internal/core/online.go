package core

import (
	"fmt"
	"math"
	"sort"

	"mvcom/internal/obs"
)

// EventKind distinguishes dynamic committee events (Alg. 1 lines 8–12).
type EventKind int

// The two dynamic events the online algorithm handles.
const (
	// EventJoin is a committee submitting its shard after the run began
	// (a new candidate enters I_j).
	EventJoin EventKind = iota + 1
	// EventLeave is a committee failing or withdrawing (Section V); every
	// solution containing it is trimmed from the state space.
	EventLeave
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one dynamic committee event delivered at a given iteration.
type Event struct {
	// AtIteration is the transition round at which the event fires.
	AtIteration int
	// Kind is join or leave.
	Kind EventKind
	// Index identifies the shard. For EventLeave it must reference an
	// existing shard; for EventJoin it is ignored (the shard is appended)
	// unless it names a previously departed shard to rejoin.
	Index int
	// Size and Latency describe a joining shard.
	Size    int
	Latency float64
}

// eventCursor feeds a sorted event stream into the batched loop. Events
// are applied at synchronization points only; the loop truncates every
// segment at the next pending event's round, so each event still fires at
// its exact iteration.
type eventCursor struct {
	events []Event // sorted by AtIteration, ties in slice order
	next   int
	err    error
}

// applyDue applies every event scheduled at or before the given round and
// reports whether any fired. The first apply error is retained.
func (c *eventCursor) applyDue(r *run, round int) bool {
	applied := false
	for c.next < len(c.events) && c.events[c.next].AtIteration <= round {
		if err := r.applyEvent(c.events[c.next]); err != nil && c.err == nil {
			c.err = err
		}
		c.next++
		applied = true
	}
	return applied
}

// nextAt returns the round of the next pending event, or MaxInt.
func (c *eventCursor) nextAt() int {
	if c.next < len(c.events) {
		return c.events[c.next].AtIteration
	}
	return math.MaxInt
}

// SolveOnline runs the SE algorithm while handling a stream of dynamic
// join/leave events. Events are applied in AtIteration order (ties keep
// slice order). The returned solution reflects the final candidate set;
// the trace records the utility dips and re-convergences the paper plots
// in Figs. 9 and 14.
func (se *SE) SolveOnline(in Instance, events []Event) (Solution, []TracePoint, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, nil, err
	}
	run, err := newRun(&in, se.cfg)
	if err != nil {
		return Solution{}, nil, err
	}
	ordered := append([]Event(nil), events...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].AtIteration < ordered[j].AtIteration
	})
	cursor := &eventCursor{events: ordered}
	trace := run.loop(cursor)
	if cursor.err != nil {
		return Solution{}, trace, cursor.err
	}
	sol, err := run.best()
	if err != nil {
		return Solution{}, trace, err
	}
	return sol, trace, nil
}

// applyEvent mutates the candidate set and repairs explorer state. It is
// only called at synchronization points, never while a segment is being
// stepped.
func (r *run) applyEvent(ev Event) error {
	switch ev.Kind {
	case EventJoin:
		return r.applyJoin(ev)
	case EventLeave:
		return r.applyLeave(ev)
	default:
		return fmt.Errorf("core: unknown event kind %d", ev.Kind)
	}
}

// applyJoin appends a new shard (or revives a departed one) to the
// instance and the candidate set, then extends every explorer with the
// new maximum-cardinality thread. Existing solution threads keep their
// current selections — the new shard starts unselected everywhere and is
// discovered through future swaps, which is what makes the online curves
// climb after each join.
func (r *run) applyJoin(ev Event) error {
	if ev.Size < 0 || ev.Latency < 0 {
		return fmt.Errorf("core: join event with invalid shard (size=%d latency=%v)", ev.Size, ev.Latency)
	}
	if r.cfg.MaxCandidates > 0 && len(r.candidates) >= r.cfg.MaxCandidates {
		// Termination rule (Alg. 1 lines 29–30): the final committee has
		// received its Nmax quota and stops listening to new arrivals.
		return nil
	}
	var idx int
	if ev.Index >= 0 && ev.Index < r.in.NumShards() {
		// Rejoin of a departed committee: refresh its features.
		idx = ev.Index
		for _, pos := range r.candidates {
			if pos == idx {
				return fmt.Errorf("core: join event for shard %d which is already live", idx)
			}
		}
		r.in.Sizes[idx] = ev.Size
		r.in.Latencies[idx] = ev.Latency
	} else {
		idx = r.in.NumShards()
		r.in.Sizes = append(r.in.Sizes, ev.Size)
		r.in.Latencies = append(r.in.Latencies, ev.Latency)
	}
	if ev.Latency > r.in.DDL {
		// A straggler beyond the deadline never becomes a candidate; the
		// instance remembers it for the next epoch but the chain ignores
		// it.
		return nil
	}
	// The event paths assume the standard thread layout: drop any adaptive
	// banding/boost before the candidate set mutates.
	r.resetSchedule()
	r.candidates = append(r.candidates, idx)
	r.cards = append(r.cards, len(r.candidates)-1)
	r.refreshCandidateCaches()
	r.refreshBetaEff()
	if r.obs != nil {
		r.obs.Joins.Inc()
		r.obs.Trace.Emit(obs.EvShardJoin, "se", float64(idx), "")
	}
	for _, ex := range r.explorers {
		ex.extendForJoin()
		r.adoptLocal(ex)
	}
	// Re-offer the full selection under the grown candidate set.
	r.offerFullIfFeasible()
	r.publishBest()
	r.rebindDiag(ev.AtIteration, "join", idx)
	return nil
}

// applyLeave removes a shard from the candidate set. Following Section V,
// the solution space is trimmed: every thread whose selection contains the
// failed shard is re-initialized without it, and the largest-cardinality
// thread disappears.
func (r *run) applyLeave(ev Event) error {
	pos := -1
	for p, idx := range r.candidates {
		if idx == ev.Index {
			pos = p
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("core: leave event for unknown or already-departed shard %d", ev.Index)
	}
	r.resetSchedule()
	last := len(r.candidates) - 1
	// Swap-remove the candidate; positions shift for the former tail.
	r.candidates[pos] = r.candidates[last]
	r.candidates = r.candidates[:last]
	movedFrom := last // candidate position that moved into pos
	r.refreshCandidateCaches()
	r.refreshBetaEff()
	if r.obs != nil {
		r.obs.Leaves.Inc()
		r.obs.Trace.Emit(obs.EvShardLeave, "se", float64(ev.Index), "")
	}
	for _, ex := range r.explorers {
		ex.shrinkForLeave(pos, movedFrom)
	}
	// The top cardinality disappeared with the candidate.
	maxN := len(r.candidates) - 1
	keepCards := r.cards[:0]
	for _, n := range r.cards {
		if n <= maxN {
			keepCards = append(keepCards, n)
		}
	}
	r.cards = keepCards
	// The recorded bests may reference the departed shard: invalidate and
	// let the trimmed chain re-discover (the paper's utility dip).
	r.invalidateBest()
	r.offerFullIfFeasible()
	r.publishBest()
	r.rebindDiag(ev.AtIteration, "leave", ev.Index)
	return nil
}

// rebindDiag re-attaches the convergence diagnostics after a dynamic
// event: the event is marked (with the post-event best — the bottom of
// a leave's dip), the d_TV state restarts against the new candidate
// set, and every probe is rebuilt around the repaired threads.
func (r *run) rebindDiag(round int, kind string, index int) {
	if r.diag == nil {
		return
	}
	r.diag.RecordEvent(round, kind, index, r.globalUtil(), r.global.have)
	r.diag.Rebind(r.diagInfo())
	r.attachProbes()
}

// invalidateBest drops the stored global and per-explorer bests (their
// candidate positions went stale after a leave) and re-seeds them from
// the surviving threads.
func (r *run) invalidateBest() {
	r.global.have = false
	r.global.util = math.Inf(-1)
	r.global.sel = nil
	r.globalDirty = true
	for _, ex := range r.explorers {
		ex.resetLocalBest()
		r.adoptLocal(ex)
	}
}

// offerFullIfFeasible re-evaluates the all-candidates selection f_|I|
// directly against the global best; it belongs to the run, not any
// explorer (Alg. 1 line 25).
func (r *run) offerFullIfFeasible() {
	k := len(r.candidates)
	if k == 0 || k < r.in.Nmin {
		return
	}
	load, util := 0, 0.0
	for pos := range r.candidates {
		load += r.sizes[pos]
		util += r.vals[pos]
	}
	if load > r.in.Capacity {
		return
	}
	if !r.global.have || util > r.global.util {
		full := make([]bool, k)
		for pos := range full {
			full[pos] = true
		}
		r.global.util, r.global.sel, r.global.n, r.global.have = util, full, k, true
		r.globalDirty = true
	}
}

// extendForJoin grows every thread's candidate-position arrays by one
// (the new position starts unselected) and adds the new maximum
// cardinality thread f_{K-1}. New feasible threads are offered to the
// explorer's local best; the caller folds it into the global tracker.
func (ex *explorer) extendForJoin() {
	k := len(ex.run.candidates)
	newPos := k - 1
	for _, th := range ex.threads {
		if th.selected == nil {
			continue
		}
		th.selected = append(th.selected, false)
		th.posInSel = append(th.posInSel, -1)
		th.posInUns = append(th.posInUns, len(th.unselIdx))
		th.unselIdx = append(th.unselIdx, newPos)
	}
	// New top cardinality n = K-1 (threads exist for 1..K-1).
	th := ex.initThread(k - 1)
	ex.threads = append(ex.threads, th)
	if th.active {
		ex.offer(th, 0)
	}
	// Pooled snapshots were sized for the old candidate count.
	ex.selPool = nil
	ex.resizeScratch()
	ex.refreshRateBases()
	ex.rearm()
}

// shrinkForLeave repairs threads after candidate position pos was
// swap-removed (former tail position movedFrom now lives at pos). Threads
// containing the departed shard are re-initialized from scratch at the
// same cardinality; the rest only remap positions. The largest
// cardinality thread is dropped (K shrank by one). Local-best re-seeding
// happens afterwards in invalidateBest.
func (ex *explorer) shrinkForLeave(pos, movedFrom int) {
	k := len(ex.run.candidates) // already shrunk
	keep := ex.threads[:0]
	for _, th := range ex.threads {
		if th.n > k-1 {
			continue // cardinality no longer exists
		}
		if !th.active || th.selected == nil || th.selected[pos] {
			// Inactive cardinality, or the solution contained the failed
			// shard: trimmed from the space; re-initialize this
			// cardinality in the trimmed space (Alg. 1 line 11).
			keep = append(keep, ex.initThread(th.n))
			continue
		}
		th.removePosition(pos, movedFrom)
		keep = append(keep, th)
	}
	ex.threads = keep
	// Pooled snapshots were sized for the old candidate count.
	ex.selPool = nil
	ex.resizeScratch()
	ex.refreshRateBases()
	ex.rearm()
}

// removePosition deletes candidate position pos (unselected in this
// thread) and remaps the moved tail position movedFrom to pos.
func (th *thread) removePosition(pos, movedFrom int) {
	// Remove pos from the unselected list.
	ui := th.posInUns[pos]
	lastU := th.unselIdx[len(th.unselIdx)-1]
	th.unselIdx[ui] = lastU
	th.posInUns[lastU] = ui
	th.unselIdx = th.unselIdx[:len(th.unselIdx)-1]
	th.posInUns[pos] = -1

	if movedFrom != pos {
		// Candidate formerly at movedFrom now sits at pos: rewrite its
		// bookkeeping under the new position.
		th.selected[pos] = th.selected[movedFrom]
		if si := th.posInSel[movedFrom]; si >= 0 {
			th.selIdx[si] = pos
			th.posInSel[pos] = si
		} else {
			th.posInSel[pos] = -1
		}
		if ui := th.posInUns[movedFrom]; ui >= 0 {
			th.unselIdx[ui] = pos
			th.posInUns[pos] = ui
		} else {
			th.posInUns[pos] = -1
		}
	}
	th.selected = th.selected[:len(th.selected)-1]
	th.posInSel = th.posInSel[:len(th.posInSel)-1]
	th.posInUns = th.posInUns[:len(th.posInUns)-1]
}
