package core

import (
	"errors"
	"math"
)

// Theory errors.
var ErrBadTheoryArgs = errors.New("core: invalid theory arguments")

// LogTransitionRate returns log q_{f,f'} for the designed Markov chain
// (equation (7)): q_{f,f'} = exp(−τ)·exp(½β(U_{f'} − U_f)). Working in
// log space keeps the quantity finite for the utility scales the paper
// evaluates (β=2 with U ~ 10⁵ would overflow exp()).
func LogTransitionRate(beta, tau, uFrom, uTo float64) float64 {
	return 0.5*beta*(uTo-uFrom) - tau
}

// LogStationaryWeight returns log of the unnormalized stationary weight
// exp(β·U_f) of a solution (equation (6) without the partition function).
func LogStationaryWeight(beta, utility float64) float64 {
	return beta * utility
}

// DetailedBalanceResidual returns
//
//	[log p*_f + log q_{f,f'}] − [log p*_{f'} + log q_{f',f}]
//
// which Lemma 3 proves is exactly zero for every pair of adjacent states.
// Exposed so tests (and skeptical users) can verify the time-reversibility
// property numerically.
func DetailedBalanceResidual(beta, tau, uF, uFp float64) float64 {
	left := LogStationaryWeight(beta, uF) + LogTransitionRate(beta, tau, uF, uFp)
	right := LogStationaryWeight(beta, uFp) + LogTransitionRate(beta, tau, uFp, uF)
	return left - right
}

// OptimalityLossBound returns the approximation-loss bound of the
// log-sum-exp relaxation (Remark 1): (1/β)·log|F| with |F| = 2^numShards.
// Computed as numShards·log(2)/β to stay finite for hundreds of shards.
func OptimalityLossBound(beta float64, numShards int) (float64, error) {
	if beta <= 0 || numShards < 0 {
		return 0, ErrBadTheoryArgs
	}
	return float64(numShards) * math.Ln2 / beta, nil
}

// MixingBounds holds the Theorem 1 bracket on the mixing time t_mix(ε) of
// the constructed Markov chain. Both bounds are reported in log space
// (natural log of virtual time units) because the upper bound contains
// exp(3/2·β·(Umax−Umin)), which overflows float64 for realistic utility
// ranges; use the Log fields for comparisons and the Value fields when
// they are finite.
type MixingBounds struct {
	LogLower float64
	LogUpper float64
	// Lower and Upper are exp(LogLower) and exp(LogUpper); +Inf when the
	// exponent overflows.
	Lower float64
	Upper float64
}

// MixingTimeBounds evaluates Theorem 1:
//
//	t_mix(ε) ≥ exp(τ − ½β(Umax−Umin)) / (|I|² − |I|) · ln(1/2ε)
//	t_mix(ε) ≤ 4|I|(|I|²−|I|)·exp(3/2·β(Umax−Umin) + τ)
//	           · [ln(1/2ε) + ½|I|·ln 2 + ½β(Umax−Umin)]
//
// It requires |I| ≥ 2, 0 < ε < 1/2, β > 0 and Umax ≥ Umin.
func MixingTimeBounds(numShards int, beta, tau, umax, umin, eps float64) (MixingBounds, error) {
	if numShards < 2 || beta <= 0 || eps <= 0 || eps >= 0.5 || umax < umin {
		return MixingBounds{}, ErrBadTheoryArgs
	}
	ii := float64(numShards)
	spread := umax - umin
	lnTerm := math.Log(1 / (2 * eps))

	logLower := tau - 0.5*beta*spread - math.Log(ii*ii-ii) + math.Log(lnTerm)

	bracket := lnTerm + 0.5*ii*math.Ln2 + 0.5*beta*spread
	logUpper := math.Log(4*ii*(ii*ii-ii)) + 1.5*beta*spread + tau + math.Log(bracket)

	return MixingBounds{
		LogLower: logLower,
		LogUpper: logUpper,
		Lower:    math.Exp(logLower),
		Upper:    math.Exp(logUpper),
	}, nil
}

// SolutionSpaceSize returns log2 |F| = |I| for the untrimmed space and the
// trimmed-space size after one committee failure, log2 |G| = |I| − 1
// (Section V-B: |G| = 2^{|I|−1}).
func SolutionSpaceSize(numShards int) (log2F, log2G float64) {
	return float64(numShards), float64(numShards - 1)
}

// FailurePerturbation evaluates the Section V bounds for a single
// committee failure.
type FailurePerturbation struct {
	// TVDistance is d_TV(q*, q̃) — Lemma 4 proves it equals
	// |F\G|/|F| = 1/2 under the i.i.d.-utility assumption.
	TVDistance float64
	// UtilityBound is the Theorem 2 bound ‖q*uᵀ − q̃uᵀ‖ ≤ max_{g∈G} U_g.
	UtilityBound float64
}

// PerturbationBound evaluates Theorem 2 for a failure event given the best
// utility in the trimmed space G.
func PerturbationBound(bestTrimmedUtility float64) FailurePerturbation {
	return FailurePerturbation{
		TVDistance:   0.5,
		UtilityBound: bestTrimmedUtility,
	}
}

// EmpiricalTV computes the total-variation distance ½·Σ|p_i − q_i| between
// two distributions over the same support; tests use it to check Lemma 4
// by enumerating small solution spaces. The slices must be equal length.
func EmpiricalTV(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrBadTheoryArgs
	}
	var tv float64
	for i := range p {
		tv += math.Abs(p[i] - q[i])
	}
	return tv / 2, nil
}

// StationaryDistribution enumerates the exact Gibbs stationary
// distribution p*_f ∝ exp(β·U_f) over an explicit list of solution
// utilities, normalizing in log space. It errors on an empty list.
func StationaryDistribution(beta float64, utilities []float64) ([]float64, error) {
	if len(utilities) == 0 || beta <= 0 {
		return nil, ErrBadTheoryArgs
	}
	logw := make([]float64, len(utilities))
	maxW := math.Inf(-1)
	for i, u := range utilities {
		logw[i] = beta * u
		if logw[i] > maxW {
			maxW = logw[i]
		}
	}
	var z float64
	for _, w := range logw {
		z += math.Exp(w - maxW)
	}
	out := make([]float64, len(logw))
	for i, w := range logw {
		out[i] = math.Exp(w-maxW) / z
	}
	return out, nil
}
