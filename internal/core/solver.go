package core

// Solver is the common contract of the SE algorithm and the paper's
// baseline algorithms (SA, DP, WOA): given one epoch's instance, produce a
// feasible selection and a convergence trace. Implementations must not
// mutate the instance's slices.
type Solver interface {
	// Name identifies the algorithm in experiment output ("SE", "SA",
	// "DP", "WOA", ...).
	Name() string
	// Solve returns the best feasible solution found and the
	// best-so-far utility trace.
	Solve(in Instance) (Solution, []TracePoint, error)
}

// Name implements Solver for the Stochastic-Exploration algorithm.
func (se *SE) Name() string { return "SE" }

var _ Solver = (*SE)(nil)
