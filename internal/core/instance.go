// Package core implements the paper's primary contribution: the MVCom
// utility-maximization problem (Section III) and the online distributed
// Stochastic-Exploration algorithm that solves it (Section IV), together
// with the theoretical results of Sections IV-E/F and V (time
// reversibility, mixing-time bounds, failure perturbation bounds).
//
// One epoch's input is an Instance: per-shard transaction counts s_i,
// two-phase latencies l_i, the deadline t_j, the throughput weight α, the
// final-block capacity Ĉ, and the minimum committee count Nmin. A
// Solution is a subset of shards; its utility is
//
//	U = Σ_i x_i (α·s_i − (t_j − l_i))
//
// subject to Σ x_i ≥ Nmin and Σ x_i s_i ≤ Ĉ. The problem is NP-hard by
// reduction from 0/1 knapsack (Lemma 1).
package core

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by instance validation and the solvers.
var (
	ErrNoShards       = errors.New("core: instance has no shards")
	ErrLengthMismatch = errors.New("core: sizes and latencies differ in length")
	ErrBadAlpha       = errors.New("core: alpha must be positive")
	ErrBadCapacity    = errors.New("core: capacity must be positive")
	ErrBadNmin        = errors.New("core: nmin out of range")
	ErrNoCandidates   = errors.New("core: no shard arrived before the deadline")
	ErrInfeasible     = errors.New("core: no feasible solution satisfies Nmin and capacity")
)

// Instance is one epoch's scheduling input.
type Instance struct {
	// Sizes holds s_i, the number of transactions packaged in shard i.
	Sizes []int
	// Latencies holds l_i, the two-phase latency of committee i in
	// seconds (formation + intra-committee consensus).
	Latencies []float64
	// DDL is the deadline t_j in seconds. If zero, it defaults to
	// max_i l_i (the paper's t_j = max_{k∈I_j} l_k).
	DDL float64
	// Alpha is the weight α of the throughput term.
	Alpha float64
	// Capacity is Ĉ, the transaction capacity of the final block.
	Capacity int
	// Nmin is the minimum number of committees that must be permitted.
	Nmin int
}

// Validate checks the instance and fills the default deadline. It returns
// the first violated-constraint error.
func (in *Instance) Validate() error {
	if len(in.Sizes) == 0 {
		return ErrNoShards
	}
	if len(in.Sizes) != len(in.Latencies) {
		return ErrLengthMismatch
	}
	if in.Alpha <= 0 {
		return ErrBadAlpha
	}
	if in.Capacity <= 0 {
		return ErrBadCapacity
	}
	if in.Nmin < 0 || in.Nmin > len(in.Sizes) {
		return ErrBadNmin
	}
	for i, s := range in.Sizes {
		if s < 0 {
			return fmt.Errorf("core: shard %d has negative size %d", i, s)
		}
		if in.Latencies[i] < 0 {
			return fmt.Errorf("core: shard %d has negative latency %v", i, in.Latencies[i])
		}
		if math.IsNaN(in.Latencies[i]) || math.IsInf(in.Latencies[i], 0) {
			return fmt.Errorf("core: shard %d has non-finite latency", i)
		}
	}
	if in.DDL == 0 {
		in.DDL = in.MaxLatency()
	}
	if in.DDL < 0 || math.IsNaN(in.DDL) {
		return fmt.Errorf("core: invalid deadline %v", in.DDL)
	}
	return nil
}

// MaxLatency returns max_i l_i, the paper's default deadline.
func (in *Instance) MaxLatency() float64 {
	var m float64
	for _, l := range in.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}

// NumShards returns |I_j|.
func (in *Instance) NumShards() int { return len(in.Sizes) }

// Age returns the cumulative-age term t_j − l_i of shard i if it were
// permitted (equation (1) with x_i = 1). A negative age marks a straggler
// that missed the deadline.
func (in *Instance) Age(i int) float64 { return in.DDL - in.Latencies[i] }

// Value returns the per-shard utility contribution α·s_i − (t_j − l_i).
func (in *Instance) Value(i int) float64 {
	return in.Alpha*float64(in.Sizes[i]) - in.Age(i)
}

// Arrived returns the indices of shards whose two-phase latency does not
// exceed the deadline — the candidates the final committee may permit.
func (in *Instance) Arrived() []int {
	var out []int
	for i, l := range in.Latencies {
		if l <= in.DDL {
			out = append(out, i)
		}
	}
	return out
}

// Utility evaluates objective (2) for a selection vector. Selections of
// stragglers contribute their (negative-age) value as written; feasibility
// is checked separately by Feasible.
func (in *Instance) Utility(selected []bool) float64 {
	var u float64
	for i, sel := range selected {
		if sel {
			u += in.Value(i)
		}
	}
	return u
}

// Load returns Σ x_i s_i for a selection vector.
func (in *Instance) Load(selected []bool) int {
	total := 0
	for i, sel := range selected {
		if sel {
			total += in.Sizes[i]
		}
	}
	return total
}

// Count returns Σ x_i.
func (in *Instance) Count(selected []bool) int {
	n := 0
	for _, sel := range selected {
		if sel {
			n++
		}
	}
	return n
}

// Feasible reports whether a selection satisfies constraints (3) and (4)
// and selects only arrived shards.
func (in *Instance) Feasible(selected []bool) bool {
	if len(selected) != len(in.Sizes) {
		return false
	}
	count, load := 0, 0
	for i, sel := range selected {
		if !sel {
			continue
		}
		if in.Latencies[i] > in.DDL {
			return false
		}
		count++
		load += in.Sizes[i]
	}
	return count >= in.Nmin && load <= in.Capacity
}

// TotalArrivedSize returns Σ s_i over arrived shards — the quantity
// compared against Ĉ in Alg. 1's bootstrap condition.
func (in *Instance) TotalArrivedSize() int {
	total := 0
	for _, i := range in.Arrived() {
		total += in.Sizes[i]
	}
	return total
}

// Clone deep-copies the instance.
func (in *Instance) Clone() Instance {
	return Instance{
		Sizes:     append([]int(nil), in.Sizes...),
		Latencies: append([]float64(nil), in.Latencies...),
		DDL:       in.DDL,
		Alpha:     in.Alpha,
		Capacity:  in.Capacity,
		Nmin:      in.Nmin,
	}
}

// Solution is a selection of shards with its cached objective terms.
type Solution struct {
	// Selected is the x vector over the instance's shard indices.
	Selected []bool
	// Utility is objective (2) for Selected.
	Utility float64
	// Load is Σ x_i s_i.
	Load int
	// Count is Σ x_i.
	Count int
	// Iterations is how many Markov transitions (or solver iterations)
	// were executed before convergence.
	Iterations int
}

// NewSolution evaluates a selection against an instance.
func NewSolution(in *Instance, selected []bool) Solution {
	sel := append([]bool(nil), selected...)
	return Solution{
		Selected: sel,
		Utility:  in.Utility(sel),
		Load:     in.Load(sel),
		Count:    in.Count(sel),
	}
}

// Indices returns the selected shard indices in ascending order.
func (s Solution) Indices() []int {
	var out []int
	for i, sel := range s.Selected {
		if sel {
			out = append(out, i)
		}
	}
	return out
}

// ValuableDegree computes the paper's efficacy metric
// Σ_i x_i · s_i / Π_i, where Π_i = t_j − l_i is the cumulative age of a
// permitted shard. Ages below ageFloor seconds are clamped to ageFloor so
// the deadline-defining committee (age 0) does not divide by zero; pass 0
// to use the default floor of 1 second.
func (s Solution) ValuableDegree(in *Instance, ageFloor float64) float64 {
	if ageFloor <= 0 {
		ageFloor = 1
	}
	var vd float64
	for i, sel := range s.Selected {
		if !sel {
			continue
		}
		age := in.Age(i)
		if age < ageFloor {
			age = ageFloor
		}
		vd += float64(in.Sizes[i]) / age
	}
	return vd
}
