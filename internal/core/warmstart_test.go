package core_test

import (
	"math"
	"testing"

	"mvcom/internal/baseline"
	"mvcom/internal/core"
	"mvcom/internal/experiments"
	"mvcom/internal/seobs"
)

// TestSolveFromColdIdentical pins the fallback contract: with WarmStart
// unset SolveFrom must ignore the previous solution entirely, and with
// WarmStart set but no usable previous selection it must degrade to a
// cold start — in both cases the run consumes the same RNG stream as
// Solve and is bit-identical to it.
func TestSolveFromColdIdentical(t *testing.T) {
	cfg := core.SEConfig{Seed: 5, Gamma: 3, MaxIters: 4000}
	in := smallDiagInstance()
	cold, coldTrace, err := core.NewSE(cfg).Solve(in)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, sol core.Solution, trace []core.TracePoint) {
		t.Helper()
		if sol.Utility != cold.Utility || sol.Load != cold.Load || sol.Count != cold.Count {
			t.Fatalf("%s diverged from cold solve: %+v vs %+v", name, sol, cold)
		}
		for i := range cold.Selected {
			if sol.Selected[i] != cold.Selected[i] {
				t.Fatalf("%s selection differs from cold solve at shard %d", name, i)
			}
		}
		if len(trace) != len(coldTrace) {
			t.Fatalf("%s trace length %d != cold %d", name, len(trace), len(coldTrace))
		}
		for i := range trace {
			if trace[i] != coldTrace[i] {
				t.Fatalf("%s trace[%d] = %+v != cold %+v", name, i, trace[i], coldTrace[i])
			}
		}
	}

	off, offTrace, err := core.NewSE(cfg).SolveFrom(smallDiagInstance(), cold)
	if err != nil {
		t.Fatal(err)
	}
	check("WarmStart=false", off, offTrace)

	warmCfg := cfg
	warmCfg.WarmStart = true
	empty, emptyTrace, err := core.NewSE(warmCfg).SolveFrom(smallDiagInstance(), core.Solution{})
	if err != nil {
		t.Fatal(err)
	}
	check("empty prev", empty, emptyTrace)
}

// TestWarmStartStationaryDTV is the stationarity regression for the
// tentpole: warm starting only moves the chain's initial state, so a
// warm-seeded run must converge to the same Gibbs target as a cold one —
// same d_TV acceptance gate, same mode, same brute-force optimum — and
// the seed must be visible as exactly one warm-start event mark.
func TestWarmStartStationaryDTV(t *testing.T) {
	prev, _, err := core.NewSE(core.SEConfig{Seed: 3, Gamma: 2, MaxIters: 6000}).Solve(smallDiagInstance())
	if err != nil {
		t.Fatal(err)
	}

	diag := seobs.New(seobs.Config{})
	cfg := core.SEConfig{
		Seed:              7,
		Gamma:             4,
		MaxIters:          30000,
		ConvergenceWindow: 30000, // sample the stationary regime, no early stop
		WarmStart:         true,
		Diag:              diag,
	}
	sol, _, err := core.NewSE(cfg).SolveFrom(smallDiagInstance(), prev)
	if err != nil {
		t.Fatal(err)
	}

	snap := diag.Snapshot()
	if snap.WarmStarts != 1 || len(snap.Events) != 1 || snap.Events[0].Kind != seobs.EventWarmStart {
		t.Fatalf("expected exactly one warm-start event mark, got %+v", snap.Events)
	}
	if snap.DTV == nil || !snap.DTV.Enabled || snap.DTV.Samples == 0 {
		t.Fatal("d_TV estimator not live on the warm-started run")
	}
	t.Logf("warm-started d_TV %.4f over %d states, %d samples (best %.1f)",
		snap.DTV.Estimate, snap.DTV.States, snap.DTV.Samples, sol.Utility)
	if snap.DTV.Estimate >= 0.1 {
		t.Fatalf("warm-started d_TV %.4f, want < 0.1 (same gate as the cold acceptance run)", snap.DTV.Estimate)
	}

	in := smallDiagInstance()
	bsol, _, err := baseline.BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	var bfMask uint64
	for i, on := range bsol.Selected {
		if on {
			bfMask |= 1 << uint(i)
		}
	}
	if snap.DTV.ModeMask != bfMask {
		t.Fatalf("warm-started Gibbs mode %#x != brute-force optimum %#x", snap.DTV.ModeMask, bfMask)
	}
	if math.Abs(sol.Utility-bsol.Utility) > 1e-9 {
		t.Fatalf("warm-started solution %v != brute-force optimum %v", sol.Utility, bsol.Utility)
	}
}

// overlappingEpoch derives the "next epoch" of an instance: most shards
// survive with slightly jittered latencies, a few depart (straggler
// latency beyond the deadline), mirroring the heavy candidate overlap of
// consecutive epochs the warm start is designed for.
func overlappingEpoch(in core.Instance, departed ...int) core.Instance {
	next := in.Clone()
	for i := range next.Latencies {
		jitter := 0.96 + 0.08*float64((i*37)%100)/100
		next.Latencies[i] *= jitter
		if next.Latencies[i] > next.DDL {
			next.Latencies[i] = next.DDL
		}
	}
	for _, i := range departed {
		next.Latencies[i] = next.DDL + 1
	}
	return next
}

// TestWarmStartFasterTimeToEps is the acceptance check behind the
// warm-start benchmark: on overlapping consecutive epochs the warm-seeded
// run must enter the ε-band of its final best strictly earlier than the
// cold run, with no loss of solution quality.
func TestWarmStartFasterTimeToEps(t *testing.T) {
	in1, err := experiments.PaperInstance(1, 60, 60*800, 1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prev, _, err := core.NewSE(core.SEConfig{Seed: 2, Gamma: 4, MaxIters: 8000}).Solve(in1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	in2 := overlappingEpoch(in1, 4, 17)

	base := core.SEConfig{
		Seed:              9,
		Gamma:             4,
		MaxIters:          6000,
		ConvergenceWindow: 6000, // fixed budget so both runs measure the same horizon
	}

	coldDiag := seobs.New(seobs.Config{})
	coldCfg := base
	coldCfg.Diag = coldDiag
	coldSol, _, err := core.NewSE(coldCfg).Solve(in2.Clone())
	if err != nil {
		t.Fatal(err)
	}
	coldSnap := coldDiag.Snapshot()

	warmDiag := seobs.New(seobs.Config{})
	warmCfg := base
	warmCfg.WarmStart = true
	warmCfg.Diag = warmDiag
	warmSol, _, err := core.NewSE(warmCfg).SolveFrom(in2.Clone(), prev)
	if err != nil {
		t.Fatal(err)
	}
	warmSnap := warmDiag.Snapshot()

	t.Logf("time-to-eps: cold %d rounds, warm %d rounds (utility cold %.1f, warm %.1f)",
		coldSnap.TimeToEpsRounds, warmSnap.TimeToEpsRounds, coldSol.Utility, warmSol.Utility)
	if warmSnap.TimeToEpsRounds < 0 || coldSnap.TimeToEpsRounds < 0 {
		t.Fatal("time-to-eps unset")
	}
	if warmSnap.TimeToEpsRounds >= coldSnap.TimeToEpsRounds {
		t.Fatalf("warm start did not reach the ε-band earlier: warm %d >= cold %d",
			warmSnap.TimeToEpsRounds, coldSnap.TimeToEpsRounds)
	}
	if warmSol.Utility < coldSol.Utility*0.99 {
		t.Fatalf("warm start lost quality: %v vs cold %v", warmSol.Utility, coldSol.Utility)
	}
	if warmSnap.WarmStarts != 1 {
		t.Fatalf("warm snapshot counts %d warm starts, want 1", warmSnap.WarmStarts)
	}
}

// TestWarmStartProjectionTrims exercises the projection edge cases: the
// previous selection references departed shards (trimmed like a leave)
// and exceeds a tightened capacity (lowest-value survivors dropped). The
// seeded run must stay feasible and never resurrect a departed shard.
func TestWarmStartProjectionTrims(t *testing.T) {
	in := smallDiagInstance()
	in.DDL = 1
	in.Latencies[3] = 2 // departed: beyond the deadline in the new epoch
	in.Capacity = 60    // tightened: the previous selection no longer fits

	prev := core.Solution{Selected: make([]bool, len(in.Sizes))}
	for i := range prev.Selected {
		prev.Selected[i] = true
	}

	cfg := core.SEConfig{Seed: 13, Gamma: 2, MaxIters: 256, ConvergenceWindow: 256, WarmStart: true}
	sol, _, err := core.NewSE(cfg).SolveFrom(in, prev)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[3] {
		t.Fatal("warm start resurrected a departed shard")
	}
	valid := in
	if !valid.Feasible(sol.Selected) {
		t.Fatalf("warm-started solution infeasible: load %d count %d", sol.Load, sol.Count)
	}

	// A longer previous selection than the instance (shards renumbered
	// between epochs) must be truncated, not panic.
	long := core.Solution{Selected: make([]bool, len(in.Sizes)+7)}
	for i := range long.Selected {
		long.Selected[i] = true
	}
	if _, _, err := core.NewSE(cfg).SolveFrom(in, long); err != nil {
		t.Fatal(err)
	}
}
