package core

import (
	"fmt"
	"io"
	"sort"
)

// ShardDecision explains one shard's scheduling outcome.
type ShardDecision struct {
	Shard    int
	Size     int
	Latency  float64
	Age      float64
	Value    float64
	Selected bool
	// Straggler marks shards that missed the deadline entirely.
	Straggler bool
}

// Explain breaks a solution down per shard, sorted by descending value —
// the view an operator wants when asking "why was committee 7 refused?".
func Explain(in *Instance, sol Solution) []ShardDecision {
	out := make([]ShardDecision, 0, in.NumShards())
	for i := 0; i < in.NumShards(); i++ {
		d := ShardDecision{
			Shard:     i,
			Size:      in.Sizes[i],
			Latency:   in.Latencies[i],
			Age:       in.Age(i),
			Value:     in.Value(i),
			Straggler: in.Latencies[i] > in.DDL,
		}
		if i < len(sol.Selected) {
			d.Selected = sol.Selected[i]
		}
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value > out[b].Value
		}
		return out[a].Shard < out[b].Shard
	})
	return out
}

// WriteExplanation renders the per-shard breakdown as an aligned table.
func WriteExplanation(w io.Writer, in *Instance, sol Solution) error {
	if _, err := fmt.Fprintf(w, "%-6s %-8s %-10s %-10s %-12s %s\n",
		"shard", "txs", "latency", "age", "value", "decision"); err != nil {
		return err
	}
	for _, d := range Explain(in, sol) {
		decision := "refused"
		switch {
		case d.Selected:
			decision = "PERMITTED"
		case d.Straggler:
			decision = "straggler (missed deadline)"
		}
		if _, err := fmt.Fprintf(w, "%-6d %-8d %-10.1f %-10.1f %-12.1f %s\n",
			d.Shard, d.Size, d.Latency, d.Age, d.Value, decision); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total: %d shards permitted, %d TXs, utility %.1f\n",
		sol.Count, sol.Load, sol.Utility)
	return err
}
