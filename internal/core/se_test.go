package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mvcom/internal/randx"
)

// bruteForce enumerates all subsets of a small instance and returns the
// best feasible utility (selections restricted to arrived shards).
func bruteForce(in *Instance) (float64, bool) {
	cands := in.Arrived()
	k := len(cands)
	best := math.Inf(-1)
	found := false
	for mask := 0; mask < 1<<k; mask++ {
		count, load := 0, 0
		var util float64
		for b := 0; b < k; b++ {
			if mask>>b&1 == 1 {
				i := cands[b]
				count++
				load += in.Sizes[i]
				util += in.Value(i)
			}
		}
		if count < in.Nmin || load > in.Capacity {
			continue
		}
		found = true
		if util > best {
			best = util
		}
	}
	return best, found
}

func TestSolveFindsNearOptimalOnSmallInstances(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := testInstance(seed, 12, 1.5, 0.5, 3)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		opt, ok := bruteForce(&in)
		if !ok {
			continue
		}
		se := NewSE(SEConfig{Seed: seed, MaxIters: 6000, ConvergenceWindow: 800})
		sol, _, err := se.Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !in.Feasible(sol.Selected) {
			t.Fatalf("seed %d: infeasible solution", seed)
		}
		if sol.Utility < 0.95*opt {
			t.Fatalf("seed %d: SE %.1f < 95%% of optimum %.1f", seed, sol.Utility, opt)
		}
	}
}

func TestSolveSolutionInternalConsistency(t *testing.T) {
	in := testInstance(42, 30, 1.5, 0.4, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	se := NewSE(SEConfig{Seed: 7})
	sol, trace, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Utility-in.Utility(sol.Selected)) > 1e-6 {
		t.Fatalf("cached utility %v != recomputed %v", sol.Utility, in.Utility(sol.Selected))
	}
	if sol.Load != in.Load(sol.Selected) || sol.Count != in.Count(sol.Selected) {
		t.Fatal("cached load/count disagree")
	}
	if len(trace) == 0 {
		t.Fatal("empty convergence trace")
	}
	last := trace[len(trace)-1]
	if math.Abs(last.Utility-sol.Utility) > 1e-6 {
		t.Fatalf("trace tail %v != solution utility %v", last.Utility, sol.Utility)
	}
}

func TestSolveTraceMonotone(t *testing.T) {
	in := testInstance(5, 40, 1.5, 0.5, 10)
	se := NewSE(SEConfig{Seed: 5})
	_, trace, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Utility < trace[i-1].Utility-1e-9 {
			t.Fatalf("best-so-far utility decreased at %d: %v -> %v",
				i, trace[i-1].Utility, trace[i].Utility)
		}
		if trace[i].Iteration < trace[i-1].Iteration {
			t.Fatal("trace iterations not monotone")
		}
	}
}

func TestSolveTrivialWhenEverythingFits(t *testing.T) {
	in := Instance{
		Sizes:     []int{10, 20, 30},
		Latencies: []float64{700, 800, 900},
		Alpha:     1.5,
		Capacity:  1000, // all fit
		Nmin:      2,
	}
	se := NewSE(SEConfig{Seed: 1})
	sol, trace, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Count != 3 {
		t.Fatalf("trivial case should select everything, got %d", sol.Count)
	}
	if len(trace) != 1 {
		t.Fatalf("trivial case should not iterate, trace %v", trace)
	}
}

func TestSolveRespectsCapacity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := testInstance(seed+100, 25, 1.5, 0.3, 5)
		se := NewSE(SEConfig{Seed: seed})
		sol, _, err := se.Solve(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Load > in.Capacity {
			t.Fatalf("seed %d: load %d exceeds capacity %d", seed, sol.Load, in.Capacity)
		}
		if sol.Count < in.Nmin {
			t.Fatalf("seed %d: count %d below Nmin %d", seed, sol.Count, in.Nmin)
		}
	}
}

func TestSolveInfeasibleNmin(t *testing.T) {
	// Nmin = 4 but capacity admits at most one shard: infeasible.
	in := Instance{
		Sizes:     []int{100, 100, 100, 100},
		Latencies: []float64{700, 800, 900, 1000},
		Alpha:     1.5,
		Capacity:  150,
		Nmin:      4,
	}
	se := NewSE(SEConfig{Seed: 1, MaxIters: 200})
	_, _, err := se.Solve(in)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveValidatesInstance(t *testing.T) {
	se := NewSE(SEConfig{Seed: 1})
	if _, _, err := se.Solve(Instance{}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveNoCandidates(t *testing.T) {
	in := Instance{
		Sizes:     []int{10},
		Latencies: []float64{500},
		DDL:       100, // everything misses the deadline
		Alpha:     1,
		Capacity:  100,
	}
	se := NewSE(SEConfig{Seed: 1})
	if _, _, err := se.Solve(in); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveDeterministicPerSeed(t *testing.T) {
	in := testInstance(9, 20, 1.5, 0.5, 5)
	a, _, err := NewSE(SEConfig{Seed: 3, MaxIters: 1500}).Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewSE(SEConfig{Seed: 3, MaxIters: 1500}).Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility || a.Count != b.Count {
		t.Fatalf("same seed diverged: %v vs %v", a.Utility, b.Utility)
	}
}

func TestSolveGammaImprovesOrMatches(t *testing.T) {
	// Averaged over seeds, Γ=8 must converge to at least the Γ=1 utility
	// (the Fig. 8 effect).
	var sum1, sum8 float64
	for seed := int64(0); seed < 6; seed++ {
		in := testInstance(seed+200, 40, 1.5, 0.4, 10)
		s1, _, err := NewSE(SEConfig{Seed: seed, Gamma: 1, MaxIters: 1200, ConvergenceWindow: 1200}).Solve(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		s8, _, err := NewSE(SEConfig{Seed: seed, Gamma: 8, MaxIters: 1200, ConvergenceWindow: 1200}).Solve(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		sum1 += s1.Utility
		sum8 += s8.Utility
	}
	if sum8 < sum1 {
		t.Fatalf("Γ=8 mean utility %.1f below Γ=1 %.1f", sum8/6, sum1/6)
	}
}

func TestSolveStragglersNeverSelected(t *testing.T) {
	in := Instance{
		Sizes:     []int{100, 120, 5000},
		Latencies: []float64{700, 800, 2000},
		DDL:       1000,
		Alpha:     10,
		Capacity:  300,
		Nmin:      1,
	}
	se := NewSE(SEConfig{Seed: 2})
	sol, _, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[2] {
		t.Fatal("straggler beyond the deadline was selected")
	}
}

func TestSolveFeasibilityProperty(t *testing.T) {
	f := func(seed int64, rawN, rawNmin uint8, rawCap uint8) bool {
		n := int(rawN)%20 + 4
		nmin := int(rawNmin) % (n / 2)
		capFrac := 0.25 + float64(rawCap%50)/100.0
		in := testInstance(seed, n, 1.5, capFrac, nmin)
		if err := in.Validate(); err != nil {
			return false
		}
		se := NewSE(SEConfig{Seed: seed, MaxIters: 500, ConvergenceWindow: 200})
		sol, _, err := se.Solve(in)
		if errors.Is(err, ErrInfeasible) {
			return true // acceptable: random instance may be infeasible
		}
		if err != nil {
			return false
		}
		return in.Feasible(sol.Selected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	se := NewSE(SEConfig{})
	cfg := se.Config()
	if cfg.Beta != 2 || cfg.Gamma != 1 || cfg.MaxIters != 20000 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.ConvergenceWindow <= 0 || cfg.SwapRetries <= 0 || cfg.InitRetries <= 0 {
		t.Fatalf("defaults %+v", cfg)
	}
}

func TestSolveLargeUtilityScaleNoOverflow(t *testing.T) {
	// β=2 with utilities ~10⁵: the naive exp(½βΔU) overflows float64;
	// the log-space race must still make progress and return a finite
	// utility.
	rng := randx.New(1)
	n := 100
	in := Instance{
		Sizes:     make([]int, n),
		Latencies: make([]float64, n),
		Alpha:     10,
		Nmin:      20,
	}
	total := 0
	for i := 0; i < n; i++ {
		in.Sizes[i] = 50000 + rng.Intn(50000)
		in.Latencies[i] = rng.Uniform(600, 1300)
		total += in.Sizes[i]
	}
	in.Capacity = total / 2
	se := NewSE(SEConfig{Seed: 4, MaxIters: 800, ConvergenceWindow: 300})
	sol, _, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(sol.Utility, 0) || math.IsNaN(sol.Utility) {
		t.Fatalf("non-finite utility %v", sol.Utility)
	}
	if sol.Count < in.Nmin {
		t.Fatalf("count %d below Nmin", sol.Count)
	}
}

func TestSolveBeatsRandomSelection(t *testing.T) {
	in := testInstance(77, 60, 1.5, 0.4, 15)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	se := NewSE(SEConfig{Seed: 7, Gamma: 4})
	sol, _, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Mean utility of 50 random feasible selections.
	rng := randx.New(99)
	cands := in.Arrived()
	var sum float64
	samples := 0
	for trial := 0; trial < 200 && samples < 50; trial++ {
		k := in.Nmin + rng.Intn(len(cands)-in.Nmin)
		pick, err := rng.SampleWithoutReplacement(len(cands), k)
		if err != nil {
			t.Fatal(err)
		}
		sel := make([]bool, in.NumShards())
		load := 0
		for _, p := range pick {
			sel[cands[p]] = true
			load += in.Sizes[cands[p]]
		}
		if load > in.Capacity {
			continue
		}
		sum += in.Utility(sel)
		samples++
	}
	if samples == 0 {
		t.Skip("no random feasible samples found")
	}
	if sol.Utility <= sum/float64(samples) {
		t.Fatalf("SE %.1f did not beat mean random %.1f", sol.Utility, sum/float64(samples))
	}
}

func TestThreadCardinalities(t *testing.T) {
	// Small K: every cardinality gets a thread.
	got := threadCardinalities(10, 64)
	if len(got) != 9 || got[0] != 1 || got[8] != 9 {
		t.Fatalf("small lattice %v", got)
	}
	// Large K: an evenly spaced lattice capped at MaxThreads, covering
	// both endpoints, strictly increasing.
	got = threadCardinalities(801, 64)
	if len(got) > 64 {
		t.Fatalf("lattice size %d", len(got))
	}
	if got[0] != 1 || got[len(got)-1] != 800 {
		t.Fatalf("lattice endpoints %v ... %v", got[0], got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("lattice not increasing at %d: %v", i, got)
		}
	}
	if threadCardinalities(1, 64) != nil {
		t.Fatal("K=1 should have no threads")
	}
}

func TestSolveMaxThreadsConfigurable(t *testing.T) {
	in := testInstance(88, 120, 1.5, 0.4, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	wide, _, err := NewSE(SEConfig{Seed: 1, MaxThreads: 200, MaxIters: 400, ConvergenceWindow: 400}).Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	narrow, _, err := NewSE(SEConfig{Seed: 1, MaxThreads: 16, MaxIters: 400, ConvergenceWindow: 400}).Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(wide.Selected) || !in.Feasible(narrow.Selected) {
		t.Fatal("infeasible under thread-cap variants")
	}
}
