package core

import (
	"errors"
	"math"
	"testing"
)

func TestEngineStepwiseMatchesQuality(t *testing.T) {
	in := testInstance(1, 25, 1.5, 0.4, 6)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(in.Clone(), SEConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Converged() {
		t.Fatal("binding instance should not be born converged")
	}
	improved := 0
	for i := 0; i < 1500; i++ {
		if eng.Step() {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("no improvement in 1500 steps")
	}
	if eng.Iterations() != 1500 {
		t.Fatalf("iterations %d", eng.Iterations())
	}
	sol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(sol.Selected) {
		t.Fatal("engine best infeasible")
	}
	if math.Abs(eng.BestUtility()-sol.Utility) > 1e-9 {
		t.Fatal("BestUtility disagrees with Best")
	}
}

func TestEngineTrivialCase(t *testing.T) {
	in := Instance{
		Sizes:     []int{10, 20},
		Latencies: []float64{700, 800},
		Alpha:     1.5,
		Capacity:  100,
		Nmin:      1,
	}
	eng, err := NewEngine(in, SEConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Converged() {
		t.Fatal("everything fits: engine should be born converged")
	}
	if eng.Step() {
		t.Fatal("stepping a converged engine reported improvement")
	}
	sol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Count != 2 {
		t.Fatalf("trivial solution count %d", sol.Count)
	}
	if eng.BestUtility() != sol.Utility {
		t.Fatal("BestUtility mismatch")
	}
}

func TestEngineApplyEvent(t *testing.T) {
	in := testInstance(2, 15, 1.5, 0.4, 3)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(in.Clone(), SEConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		eng.Step()
	}
	if err := eng.ApplyEvent(Event{Kind: EventJoin, Index: -1, Size: 1000, Latency: in.DDL - 1}); err != nil {
		t.Fatal(err)
	}
	if snap := eng.Instance(); snap.NumShards() != 16 {
		t.Fatalf("instance shards %d", snap.NumShards())
	}
	if err := eng.ApplyEvent(Event{Kind: EventLeave, Index: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		eng.Step()
	}
	sol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[0] {
		t.Fatal("departed shard selected")
	}
	if len(sol.Selected) != 16 {
		t.Fatalf("selection length %d", len(sol.Selected))
	}
}

func TestEngineApplyEventOnTrivialEngine(t *testing.T) {
	in := Instance{
		Sizes:     []int{10, 20},
		Latencies: []float64{700, 800},
		Alpha:     1.5,
		Capacity:  100,
		Nmin:      1,
	}
	eng, err := NewEngine(in, SEConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A join invalidates the trivial shortcut.
	if err := eng.ApplyEvent(Event{Kind: EventJoin, Index: -1, Size: 90, Latency: 750}); err != nil {
		t.Fatal(err)
	}
	if eng.Converged() {
		t.Fatal("engine still trivially converged after event")
	}
	for i := 0; i < 300; i++ {
		eng.Step()
	}
	sol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Load > 100 {
		t.Fatalf("load %d over capacity", sol.Load)
	}
}

func TestEngineValidatesInstance(t *testing.T) {
	if _, err := NewEngine(Instance{}, SEConfig{}); !errors.Is(err, ErrNoShards) {
		t.Fatalf("err = %v", err)
	}
}

func TestEngineInstanceSnapshotIsCopy(t *testing.T) {
	in := testInstance(4, 10, 1.5, 0.5, 2)
	eng, err := NewEngine(in, SEConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Instance()
	snap.Sizes[0] = 999999
	if eng.Instance().Sizes[0] == 999999 {
		t.Fatal("Instance() exposes internal state")
	}
}
