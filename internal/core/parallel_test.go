package core

import (
	"math"
	"reflect"
	"testing"
)

// TestSolveDeterministicAcrossWorkers is the seed-determinism regression
// for the parallel kernel: per-explorer split RNG streams plus the
// deterministic (round, explorer) merge order mean the worker count must
// not change a single bit of the result — not the solution, not the
// trace.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	in := testInstance(41, 60, 2, 0.45, 3)
	var refSol Solution
	var refTrace []TracePoint
	for i, workers := range []int{1, 0, 2, 3, 8, 100} {
		se := NewSE(SEConfig{Seed: 7, Gamma: 8, Workers: workers, MaxIters: 4000})
		sol, trace, err := se.Solve(in)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			refSol, refTrace = sol, trace
			continue
		}
		if !reflect.DeepEqual(sol, refSol) {
			t.Fatalf("workers=%d solution diverged: got utility %v iters %d, want %v iters %d",
				workers, sol.Utility, sol.Iterations, refSol.Utility, refSol.Iterations)
		}
		if !reflect.DeepEqual(trace, refTrace) {
			t.Fatalf("workers=%d trace diverged (%d vs %d points)", workers, len(trace), len(refTrace))
		}
	}
}

// TestSolveOnlineDeterministicAcrossWorkers extends the regression to the
// event-driven path: joins and leaves are applied at synchronization
// points, so their effect must also be independent of the worker count.
func TestSolveOnlineDeterministicAcrossWorkers(t *testing.T) {
	in := testInstance(43, 40, 2, 0.5, 2)
	events := []Event{
		{AtIteration: 150, Kind: EventJoin, Index: -1, Size: 1800, Latency: 900},
		{AtIteration: 300, Kind: EventLeave, Index: 5},
		{AtIteration: 301, Kind: EventJoin, Index: -1, Size: 2400, Latency: 700},
		{AtIteration: 702, Kind: EventLeave, Index: 11},
	}
	var refSol Solution
	var refTrace []TracePoint
	for i, workers := range []int{1, 0, 4} {
		se := NewSE(SEConfig{Seed: 17, Gamma: 6, Workers: workers, MaxIters: 1500})
		sol, trace, err := se.SolveOnline(in, events)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			refSol, refTrace = sol, trace
			continue
		}
		if !reflect.DeepEqual(sol, refSol) {
			t.Fatalf("workers=%d online solution diverged", workers)
		}
		if !reflect.DeepEqual(trace, refTrace) {
			t.Fatalf("workers=%d online trace diverged", workers)
		}
	}
}

// TestEngineStepNMatchesStep verifies that batching rounds through StepN
// is purely an execution-schedule change: the merge replays improvements
// in the same (round, explorer) order whether the coordinator syncs every
// round or every 64, so the observed best must match exactly.
func TestEngineStepNMatchesStep(t *testing.T) {
	in := testInstance(47, 50, 2, 0.4, 2)
	cfg := SEConfig{Seed: 23, Gamma: 4}
	byOne, err := NewEngine(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byBatch, err := NewEngine(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 512
	for i := 0; i < rounds; i++ {
		byOne.Step()
	}
	for i := 0; i < rounds/64; i++ {
		byBatch.StepN(64)
	}
	if byOne.Iterations() != byBatch.Iterations() {
		t.Fatalf("iterations diverged: %d vs %d", byOne.Iterations(), byBatch.Iterations())
	}
	if u1, u2 := byOne.BestUtility(), byBatch.BestUtility(); u1 != u2 {
		t.Fatalf("best utility diverged: %v vs %v", u1, u2)
	}
	s1, err := byOne.Best()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := byBatch.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("best solutions diverged between Step and StepN")
	}
}

// refSetTimer reproduces the pre-optimization Set-timer: two independent
// Intn draws per attempt and no cached slack.
func refSetTimer(ex *explorer, th *thread) {
	r := ex.run
	th.proposalOK = false
	if len(th.selIdx) == 0 || len(th.unselIdx) == 0 {
		return
	}
	for attempt := 0; attempt < r.cfg.SwapRetries; attempt++ {
		outPos := th.selIdx[ex.rng.Intn(len(th.selIdx))]
		inPos := th.unselIdx[ex.rng.Intn(len(th.unselIdx))]
		if th.load-r.sizes[outPos]+r.sizes[inPos] > r.in.Capacity {
			continue
		}
		th.out, th.in = outPos, inPos
		th.dU = r.vals[inPos] - r.vals[outPos]
		th.proposalOK = true
		return
	}
}

// refStep reproduces the pre-optimization transition round: log(k−n)
// recomputed per thread per round and the race resolved with the
// Gumbel-max MinExponentialLog (one uniform and one Gumbel per thread).
func refStep(ex *explorer) {
	r := ex.run
	k := len(r.candidates)
	for i, th := range ex.threads {
		if !th.active || !th.proposalOK {
			ex.logRates[i] = math.Inf(-1)
			continue
		}
		ex.logRates[i] = math.Log(float64(k-th.n)) - r.cfg.Tau + 0.5*r.betaEff*th.dU
	}
	winner, _, err := ex.rng.MinExponentialLog(ex.logRates)
	if err == nil {
		ex.threads[winner].applySwap(r)
	}
	for _, th := range ex.threads {
		if th.active {
			refSetTimer(ex, th)
		}
	}
}

// TestStationaryDistributionMatchesReferenceKernel proves the hot-path
// optimizations (cached rateBase, single-draw proposals, one-uniform CDF
// race instead of Gumbel-max) leave the chain's stationary distribution
// unchanged: the optimized kernel and a reference implementation of the
// old kernel run side by side on the same instance, and the long-run
// occupancy of the cardinality-2 thread's six states must agree within
// sampling noise.
func TestStationaryDistributionMatchesReferenceKernel(t *testing.T) {
	in := Instance{
		Sizes:     []int{10, 14, 18, 22},
		Latencies: []float64{700, 800, 900, 1000},
		Alpha:     1,
		Capacity:  1000,
		Nmin:      1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	const rounds = 300000
	stateOf := func(th *thread) int {
		// Identify the 2-subset by the pair of selected positions.
		a, b := -1, -1
		for pos, sel := range th.selected {
			if sel {
				if a < 0 {
					a = pos
				} else {
					b = pos
				}
			}
		}
		return a*4 + b
	}
	occupancy := func(step func(*explorer), seed int64) (map[int]float64, int) {
		inCopy := in.Clone()
		r, err := newRun(&inCopy, SEConfig{Seed: seed, Beta: 1}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		ex := r.explorers[0]
		var th *thread
		for _, cand := range ex.threads {
			if cand.n == 2 {
				th = cand
			}
		}
		if th == nil {
			t.Fatal("no cardinality-2 thread")
		}
		counts := make(map[int]float64)
		for i := 0; i < rounds; i++ {
			step(ex)
			counts[stateOf(th)]++
		}
		best := -1
		var bestMass float64
		for s, c := range counts {
			counts[s] = c / rounds
			if counts[s] > bestMass {
				best, bestMass = s, counts[s]
			}
		}
		return counts, best
	}
	newOcc, newMode := occupancy(func(ex *explorer) { ex.step() }, 5)
	refOcc, refMode := occupancy(refStep, 905)
	var tv float64
	for s := 0; s < 16; s++ {
		tv += math.Abs(newOcc[s] - refOcc[s])
	}
	tv /= 2
	if tv > 0.025 {
		t.Fatalf("stationary distributions diverge: TV distance %.4f (new %v vs reference %v)", tv, newOcc, refOcc)
	}
	// Both chains must concentrate on the highest-value pair {2,3}.
	if want := 2*4 + 3; newMode != want || refMode != want {
		t.Fatalf("mode state: new %d, reference %d, want %d", newMode, refMode, want)
	}
}

// TestSolveRepeatedRunsBitIdentical guards the weaker property that two
// back-to-back runs with one config agree exactly (no hidden global
// state, map iteration, or time dependence).
func TestSolveRepeatedRunsBitIdentical(t *testing.T) {
	in := testInstance(53, 80, 2, 0.4, 3)
	cfg := SEConfig{Seed: 99, Gamma: 8, MaxIters: 3000}
	sol1, trace1, err := NewSE(cfg).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	sol2, trace2, err := NewSE(cfg).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol1, sol2) || !reflect.DeepEqual(trace1, trace2) {
		t.Fatal("same-seed runs diverged")
	}
}

// TestSplitStreamsDriveDistinctExplorers spot-checks that the Γ explorers
// really do receive decorrelated streams: with Γ=2 the two explorers'
// first swap proposals should differ for almost every seed (here: all of
// a handful).
func TestSplitStreamsDriveDistinctExplorers(t *testing.T) {
	in := testInstance(59, 30, 2, 0.5, 2)
	identical := 0
	for seed := int64(0); seed < 5; seed++ {
		inCopy := in.Clone()
		if err := inCopy.Validate(); err != nil {
			t.Fatal(err)
		}
		r, err := newRun(&inCopy, SEConfig{Seed: seed, Gamma: 2}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		a, b := r.explorers[0], r.explorers[1]
		same := true
		for i := range a.threads {
			ta, tb := a.threads[i], b.threads[i]
			if ta.active != tb.active || ta.out != tb.out || ta.in != tb.in {
				same = false
				break
			}
		}
		if same {
			identical++
		}
	}
	if identical > 0 {
		t.Fatalf("%d of 5 seeds produced identical explorer states", identical)
	}
}
