package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mvcom/internal/randx"
)

// testInstance builds a random valid instance for tests: n shards, shard
// sizes ~U[500,3000], latencies ~U[600,1300] s, with capacity a fraction
// of the total size.
func testInstance(seed int64, n int, alpha float64, capFrac float64, nmin int) Instance {
	rng := randx.New(seed)
	in := Instance{
		Sizes:     make([]int, n),
		Latencies: make([]float64, n),
		Alpha:     alpha,
		Nmin:      nmin,
	}
	total := 0
	for i := 0; i < n; i++ {
		in.Sizes[i] = 500 + rng.Intn(2501)
		in.Latencies[i] = rng.Uniform(600, 1300)
		total += in.Sizes[i]
	}
	in.Capacity = int(capFrac * float64(total))
	if in.Capacity < 1 {
		in.Capacity = 1
	}
	return in
}

func TestValidateOK(t *testing.T) {
	in := testInstance(1, 10, 1.5, 0.5, 2)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.DDL != in.MaxLatency() {
		t.Fatalf("default DDL %v, want max latency %v", in.DDL, in.MaxLatency())
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		give Instance
		want error
	}{
		{name: "no shards", give: Instance{Alpha: 1, Capacity: 1}, want: ErrNoShards},
		{
			name: "length mismatch",
			give: Instance{Sizes: []int{1, 2}, Latencies: []float64{1}, Alpha: 1, Capacity: 1},
			want: ErrLengthMismatch,
		},
		{
			name: "bad alpha",
			give: Instance{Sizes: []int{1}, Latencies: []float64{1}, Capacity: 1},
			want: ErrBadAlpha,
		},
		{
			name: "bad capacity",
			give: Instance{Sizes: []int{1}, Latencies: []float64{1}, Alpha: 1},
			want: ErrBadCapacity,
		},
		{
			name: "bad nmin",
			give: Instance{Sizes: []int{1}, Latencies: []float64{1}, Alpha: 1, Capacity: 1, Nmin: 5},
			want: ErrBadNmin,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestValidateNegativeFields(t *testing.T) {
	in := Instance{Sizes: []int{-1}, Latencies: []float64{1}, Alpha: 1, Capacity: 1}
	if err := in.Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
	in = Instance{Sizes: []int{1}, Latencies: []float64{-1}, Alpha: 1, Capacity: 1}
	if err := in.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	in = Instance{Sizes: []int{1}, Latencies: []float64{math.NaN()}, Alpha: 1, Capacity: 1}
	if err := in.Validate(); err == nil {
		t.Fatal("NaN latency accepted")
	}
}

func TestAgeAndValue(t *testing.T) {
	in := Instance{
		Sizes:     []int{100, 200},
		Latencies: []float64{800, 1000},
		Alpha:     1.5,
		Capacity:  1000,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// DDL defaults to 1000.
	if got := in.Age(0); got != 200 {
		t.Fatalf("age(0) = %v", got)
	}
	if got := in.Age(1); got != 0 {
		t.Fatalf("age(1) = %v", got)
	}
	if got := in.Value(0); got != 1.5*100-200 {
		t.Fatalf("value(0) = %v", got)
	}
	if got := in.Value(1); got != 1.5*200 {
		t.Fatalf("value(1) = %v", got)
	}
}

func TestArrivedExcludesStragglers(t *testing.T) {
	in := Instance{
		Sizes:     []int{10, 20, 30},
		Latencies: []float64{700, 900, 1200},
		DDL:       1000,
		Alpha:     1,
		Capacity:  100,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	got := in.Arrived()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("arrived %v", got)
	}
	if in.TotalArrivedSize() != 30 {
		t.Fatalf("arrived size %d", in.TotalArrivedSize())
	}
}

func TestUtilityLoadCount(t *testing.T) {
	in := testInstance(2, 6, 1.5, 1, 0)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sel := []bool{true, false, true, false, false, true}
	wantU := in.Value(0) + in.Value(2) + in.Value(5)
	if got := in.Utility(sel); math.Abs(got-wantU) > 1e-9 {
		t.Fatalf("utility %v, want %v", got, wantU)
	}
	if got := in.Load(sel); got != in.Sizes[0]+in.Sizes[2]+in.Sizes[5] {
		t.Fatalf("load %v", got)
	}
	if got := in.Count(sel); got != 3 {
		t.Fatalf("count %v", got)
	}
}

func TestFeasible(t *testing.T) {
	in := Instance{
		Sizes:     []int{50, 60, 70},
		Latencies: []float64{700, 800, 1200},
		DDL:       1000,
		Alpha:     1,
		Capacity:  120,
		Nmin:      1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		sel  []bool
		want bool
	}{
		{name: "ok", sel: []bool{true, true, false}, want: true},
		{name: "below nmin", sel: []bool{false, false, false}, want: false},
		{name: "over capacity", sel: []bool{true, true, true}, want: false},
		{name: "straggler selected", sel: []bool{false, false, true}, want: false},
		{name: "wrong length", sel: []bool{true}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := in.Feasible(tt.sel); got != tt.want {
				t.Fatalf("feasible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	in := testInstance(3, 4, 1.5, 0.5, 1)
	cp := in.Clone()
	cp.Sizes[0] = 999999
	cp.Latencies[0] = 42
	if in.Sizes[0] == 999999 || in.Latencies[0] == 42 {
		t.Fatal("clone shares backing arrays")
	}
}

func TestNewSolution(t *testing.T) {
	in := testInstance(4, 5, 1.5, 1, 0)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sel := []bool{true, true, false, false, true}
	sol := NewSolution(&in, sel)
	if sol.Count != 3 {
		t.Fatalf("count %d", sol.Count)
	}
	if sol.Load != in.Load(sel) || sol.Utility != in.Utility(sel) {
		t.Fatal("cached terms disagree with instance evaluation")
	}
	idx := sol.Indices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 4 {
		t.Fatalf("indices %v", idx)
	}
	// NewSolution must copy the selection.
	sel[0] = false
	if !sol.Selected[0] {
		t.Fatal("solution shares the caller's selection slice")
	}
}

func TestValuableDegree(t *testing.T) {
	in := Instance{
		Sizes:     []int{100, 300},
		Latencies: []float64{900, 1000}, // ages 100, 0
		Alpha:     1,
		Capacity:  1000,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sol := NewSolution(&in, []bool{true, true})
	got := sol.ValuableDegree(&in, 0)
	want := 100.0/100.0 + 300.0/1.0 // zero age floored to 1 s
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("VD %v, want %v", got, want)
	}
	got = sol.ValuableDegree(&in, 50)
	want = 100.0/100.0 + 300.0/50.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("VD floor=50: %v, want %v", got, want)
	}
}

func TestUtilityAdditivityProperty(t *testing.T) {
	// U(A ∪ B) = U(A) + U(B) for disjoint selections — the linearity the
	// incremental ΔU bookkeeping in the SE algorithm relies on.
	f := func(seed int64, mask uint16) bool {
		in := testInstance(seed, 12, 1.5, 1, 0)
		if err := in.Validate(); err != nil {
			return false
		}
		a := make([]bool, 12)
		b := make([]bool, 12)
		both := make([]bool, 12)
		for i := 0; i < 12; i++ {
			bit := mask>>uint(i)&1 == 1
			if bit {
				a[i] = true
			} else if i%2 == 0 {
				b[i] = true
			}
			both[i] = a[i] || b[i]
		}
		return math.Abs(in.Utility(both)-(in.Utility(a)+in.Utility(b))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExplainOrdering(t *testing.T) {
	in := Instance{
		Sizes:     []int{100, 300, 50},
		Latencies: []float64{700, 950, 1200},
		DDL:       1000,
		Alpha:     1.5,
		Capacity:  1000,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sol := NewSolution(&in, []bool{true, true, false})
	ds := Explain(&in, sol)
	if len(ds) != 3 {
		t.Fatalf("decisions %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Value > ds[i-1].Value {
			t.Fatalf("not sorted by value: %v", ds)
		}
	}
	for _, d := range ds {
		if d.Shard == 2 && !d.Straggler {
			t.Fatal("shard 2 should be a straggler")
		}
		if d.Shard == 1 && !d.Selected {
			t.Fatal("shard 1 should be selected")
		}
	}
}

func TestWriteExplanation(t *testing.T) {
	in := testInstance(30, 6, 1.5, 0.6, 2)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, _, err := NewSE(SEConfig{Seed: 1, MaxIters: 400}).Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteExplanation(&buf, &in, sol); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "PERMITTED") {
		t.Fatalf("no permitted rows in:\n%s", out)
	}
	if !strings.Contains(out, "total:") {
		t.Fatal("missing summary line")
	}
}
