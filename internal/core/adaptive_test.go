package core_test

// Acceptance and regression tests for the adaptive β/Γ schedule
// (SEConfig.Adaptive) and the degenerate hot-path states the fused round
// loop must survive. External test package so the d_TV pinning can reuse
// the seobs diagnostics exactly as callers wire them.

import (
	"math"
	"testing"

	"mvcom/internal/core"
	"mvcom/internal/obs"
	"mvcom/internal/seobs"
)

// adaptiveDiagInstance mirrors smallDiagInstance: |I| = 12, every
// within-thread swap feasible, full set infeasible.
func adaptiveDiagInstance() core.Instance {
	sizes := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	total := 0
	for _, s := range sizes {
		total += s
	}
	lat := make([]float64, len(sizes))
	for i := range lat {
		lat[i] = 1
	}
	return core.Instance{
		Sizes:     sizes,
		Latencies: lat,
		Alpha:     1.5,
		Capacity:  total - 10,
		Nmin:      1,
	}
}

// TestAdaptiveDTVPinning is the tentpole acceptance check for the
// annealed mode: with the schedule on, the sampled visit distribution
// must still come within d_TV < 0.1 of the enumerated Gibbs target at a
// Theorem-1-scale budget. The target is rebuilt at every escalation
// (boosted β_eff, banded cardinality set), so the estimator measures the
// chain against the law it is actually annealing toward.
func TestAdaptiveDTVPinning(t *testing.T) {
	in := adaptiveDiagInstance()
	diag := seobs.New(seobs.Config{})
	cfg := core.SEConfig{
		Seed:              7,
		Gamma:             4,
		MaxIters:          30000,
		ConvergenceWindow: 30000,
		Adaptive:          true,
		Diag:              diag,
	}
	sol, _, err := core.NewSE(cfg).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	snap := diag.Snapshot()
	if snap.DTV == nil || !snap.DTV.Enabled {
		t.Fatal("d_TV estimator not enabled under the adaptive schedule")
	}
	if snap.DTV.Samples == 0 {
		t.Fatal("d_TV estimator collected no dwell samples after the last escalation")
	}
	t.Logf("adaptive d_TV %.4f over %d states, %d samples, stage %d (best %.1f)",
		snap.DTV.Estimate, snap.DTV.States, snap.DTV.Samples, snap.ScheduleStage, sol.Utility)
	if snap.DTV.Estimate >= 0.1 {
		t.Fatalf("adaptive d_TV estimate %.4f, want < 0.1", snap.DTV.Estimate)
	}
	if snap.ScheduleStage == 0 {
		t.Fatal("schedule never escalated on a 30k-round stagnating run")
	}
	// The annealed chain must still land on the fixed target's mode: the
	// banded, boosted target's most likely state is the same optimum.
	fixedDiag := seobs.New(seobs.Config{})
	fixedCfg := cfg
	fixedCfg.Adaptive = false
	fixedCfg.Diag = fixedDiag
	fsol, _, err := core.NewSE(fixedCfg).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Utility-fsol.Utility) > 1e-9*math.Abs(fsol.Utility) {
		t.Fatalf("adaptive best %.4f != fixed best %.4f", sol.Utility, fsol.Utility)
	}
}

// TestAdaptiveDeterministicAcrossWorkers extends the bit-identity
// contract to the adaptive mode: schedule decisions are computed by the
// coordinator from merged state only, so the Workers knob must not
// change the trajectory.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	in := adaptiveDiagInstance()
	var wantUtil float64
	var wantSel []bool
	for _, workers := range []int{1, 2, 4, 8} {
		sol, _, err := core.NewSE(core.SEConfig{
			Seed: 7, Gamma: 8, Workers: workers, MaxIters: 4000, Adaptive: true,
		}).Solve(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if wantSel == nil {
			wantUtil, wantSel = sol.Utility, sol.Selected
			continue
		}
		if sol.Utility != wantUtil {
			t.Fatalf("workers=%d utility %v, want %v", workers, sol.Utility, wantUtil)
		}
		for i := range sol.Selected {
			if sol.Selected[i] != wantSel[i] {
				t.Fatalf("workers=%d selection differs at %d", workers, i)
			}
		}
	}
}

// TestAdaptiveUnderChurn runs the schedule through leave/rejoin churn:
// every dynamic event must reset the ladder (the incumbent band is
// invalidated), restore the full thread lattice, and keep the run
// feasible. Exercised with the race detector in CI.
func TestAdaptiveUnderChurn(t *testing.T) {
	in := testInstanceForChurn()
	diag := seobs.New(seobs.Config{})
	se := core.NewSE(core.SEConfig{
		Seed: 11, Gamma: 4, MaxIters: 6000, ConvergenceWindow: 6000,
		Adaptive: true, Diag: diag,
	})
	// Leave then rejoin the same shard mid-run; the schedule has had
	// time to escalate before each event.
	target := 3
	events := []core.Event{
		{AtIteration: 2500, Kind: core.EventLeave, Index: target},
		{AtIteration: 4500, Kind: core.EventJoin, Index: target,
			Size: in.Sizes[target], Latency: in.Latencies[target]},
	}
	sol, _, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Load > in.Capacity {
		t.Fatalf("solution load %d exceeds capacity %d", sol.Load, in.Capacity)
	}
	snap := diag.Snapshot()
	var schedules, joins, leaves int
	for _, e := range snap.Events {
		switch e.Kind {
		case seobs.EventSchedule:
			schedules++
		case "join":
			joins++
		case "leave":
			leaves++
		}
	}
	if joins != 1 || leaves != 1 {
		t.Fatalf("events: %d joins, %d leaves, want 1/1", joins, leaves)
	}
	if schedules == 0 {
		t.Fatal("schedule never escalated across 6000 rounds of churn")
	}
	t.Logf("churn run: %d schedule events, final stage %d, best %.1f",
		schedules, snap.ScheduleStage, sol.Utility)
}

// testInstanceForChurn is a 16-shard instance loose enough that leaves
// and rejoins keep plenty of feasible space.
func testInstanceForChurn() core.Instance {
	sizes := make([]int, 16)
	lat := make([]float64, 16)
	total := 0
	for i := range sizes {
		sizes[i] = 100 + 7*i
		lat[i] = 1
		total += sizes[i]
	}
	return core.Instance{Sizes: sizes, Latencies: lat, Alpha: 1.5, Capacity: total / 2, Nmin: 1}
}

// TestProposalStarvationObservable pins the starved-round counter: on an
// instance where the only active thread's every swap is capacity-
// infeasible, the run degenerates into a perpetual rearm loop that must
// now be visible as mvcom_se_proposals_starved.
func TestProposalStarvationObservable(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{1, 5},
		Latencies: []float64{1, 1},
		Alpha:     1.5,
		Capacity:  1, // only {0} is feasible; the 0↔1 swap never fits
		Nmin:      1,
	}
	reg := obs.NewRegistry()
	seObs := obs.NewSEObserver(reg)
	sol, _, err := core.NewSE(core.SEConfig{
		Seed: 3, MaxIters: 200, ConvergenceWindow: 200, Obs: seObs,
	}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Count != 1 || !sol.Selected[0] {
		t.Fatalf("solution %+v, want the lone feasible shard 0", sol.Selected)
	}
	if got := seObs.ProposalsStarved.Value(); got == 0 {
		t.Fatal("mvcom_se_proposals_starved stayed 0 through a perpetual rearm loop")
	}
}

// TestSingleThreadRace covers the T=1 degenerate race: a two-candidate
// instance has exactly one solution thread (n=1), so every round the
// race has a single armed competitor.
func TestSingleThreadRace(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{2, 3},
		Latencies: []float64{1, 1},
		Alpha:     1.5,
		Capacity:  3,
		Nmin:      1,
	}
	sol, _, err := core.NewSE(core.SEConfig{
		Seed: 5, MaxIters: 500, ConvergenceWindow: 500,
	}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Value ∝ α·s_i with equal latencies: shard 1 wins.
	if sol.Count != 1 || !sol.Selected[1] {
		t.Fatalf("solution %+v, want the higher-value shard 1", sol.Selected)
	}
}
