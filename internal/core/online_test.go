package core

import (
	"math"
	"sync"
	"testing"

	"mvcom/internal/seobs"
)

func onlineInstance(seed int64, n int) Instance {
	in := testInstance(seed, n, 1.5, 0.5, n/4)
	return in
}

func TestSolveOnlineNoEventsMatchesFeasibility(t *testing.T) {
	in := onlineInstance(1, 20)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	se := NewSE(SEConfig{Seed: 1, MaxIters: 1200})
	sol, trace, err := se.SolveOnline(in.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(sol.Selected) {
		t.Fatal("infeasible online solution")
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
}

func TestSolveOnlineJoinGrowsCandidateSet(t *testing.T) {
	in := onlineInstance(2, 15)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{AtIteration: 100, Kind: EventJoin, Index: -1, Size: 2000, Latency: in.DDL - 1},
		{AtIteration: 200, Kind: EventJoin, Index: -1, Size: 1500, Latency: in.DDL - 2},
	}
	se := NewSE(SEConfig{Seed: 2, MaxIters: 800})
	sol, _, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 17 {
		t.Fatalf("selection length %d, want 17 after two joins", len(sol.Selected))
	}
	if sol.Load > in.Capacity {
		t.Fatalf("load %d exceeds capacity", sol.Load)
	}
}

func TestSolveOnlineJoinOfStragglerIgnored(t *testing.T) {
	in := onlineInstance(3, 12)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{AtIteration: 50, Kind: EventJoin, Index: -1, Size: 99999, Latency: in.DDL + 100},
	}
	se := NewSE(SEConfig{Seed: 3, MaxIters: 400})
	sol, _, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	// The straggler is recorded in the instance but never selected.
	if len(sol.Selected) != 13 {
		t.Fatalf("selection length %d", len(sol.Selected))
	}
	if sol.Selected[12] {
		t.Fatal("straggler beyond the deadline was selected")
	}
}

func TestSolveOnlineLeaveRemovesShard(t *testing.T) {
	in := onlineInstance(4, 16)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove the largest shard mid-run.
	biggest := 0
	for i, s := range in.Sizes {
		if s > in.Sizes[biggest] {
			biggest = i
		}
	}
	events := []Event{{AtIteration: 150, Kind: EventLeave, Index: biggest}}
	se := NewSE(SEConfig{Seed: 4, MaxIters: 900})
	sol, _, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[biggest] {
		t.Fatal("departed shard still selected")
	}
}

func TestSolveOnlineLeaveThenRejoin(t *testing.T) {
	// The Fig. 9(a) scenario: a committee fails, then recovers shortly
	// after; utility dips, then re-converges.
	in := onlineInstance(5, 16)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	target := 3
	events := []Event{
		{AtIteration: 200, Kind: EventLeave, Index: target},
		{AtIteration: 500, Kind: EventJoin, Index: target,
			Size: in.Sizes[target], Latency: in.Latencies[target]},
	}
	se := NewSE(SEConfig{Seed: 5, MaxIters: 1200})
	sol, trace, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 16 {
		t.Fatalf("selection length %d", len(sol.Selected))
	}
	if len(trace) < 3 {
		t.Fatalf("trace too short: %d points", len(trace))
	}
	// The trace must contain a dip: some point after iteration 200 with a
	// lower utility than the pre-event maximum (the leave trimmed the
	// space), unless the departed shard was never part of the best.
	var preMax float64 = math.Inf(-1)
	for _, p := range trace {
		if p.Iteration < 200 && p.Utility > preMax {
			preMax = p.Utility
		}
	}
	if math.IsInf(preMax, -1) {
		t.Fatal("no trace points before the leave event")
	}
}

// TestEngineLeaveRejoinBestInvariant is the invariant behind
// invalidateBest: from the instant a shard leaves until it rejoins, the
// published global best must never reference it — not in any Best()
// snapshot taken between stepping windows — while concurrent readers
// poll the atomically published best from another goroutine (this test
// is a -race probe of the publish path). The rebind trail must show the
// leave and the rejoin in order.
func TestEngineLeaveRejoinBestInvariant(t *testing.T) {
	in := onlineInstance(21, 16)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depart the largest shard: the one most likely pinned inside the
	// pre-event best, so the invalidation path actually fires.
	target := 0
	for i, s := range in.Sizes {
		if s > in.Sizes[target] {
			target = i
		}
	}
	size, latency := in.Sizes[target], in.Latencies[target]

	diag := seobs.New(seobs.Config{})
	eng, err := NewEngine(in.Clone(), SEConfig{Seed: 21, Gamma: 3, MaxIters: 4000, Diag: diag})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Converged() {
		t.Fatal("instance too easy: engine born converged")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hammer the lock-free best snapshot while the chain runs
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = eng.BestUtility()
				_ = eng.BestCardinality()
			}
		}
	}()

	eng.StepN(300)
	if err := eng.ApplyEvent(Event{AtIteration: 300, Kind: EventLeave, Index: target}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		eng.StepN(25)
		sol, err := eng.Best()
		if err != nil {
			continue // no feasible best yet after the trim
		}
		if sol.Selected[target] {
			t.Fatalf("global best references shard %d while departed (window %d)", target, i)
		}
	}
	if err := eng.ApplyEvent(Event{AtIteration: 800, Kind: EventJoin, Index: target,
		Size: size, Latency: latency}); err != nil {
		t.Fatal(err)
	}
	eng.StepN(600)
	close(stop)
	wg.Wait()

	sol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 16 {
		t.Fatalf("selection length %d after rejoin, want 16", len(sol.Selected))
	}
	final := eng.Instance()
	if !final.Feasible(sol.Selected) {
		t.Fatal("infeasible best after leave→rejoin")
	}

	snap := diag.Snapshot()
	if len(snap.Events) != 2 || snap.Events[0].Kind != "leave" || snap.Events[1].Kind != "join" {
		t.Fatalf("rebind trail %+v, want leave then join", snap.Events)
	}
	if snap.Events[0].Index != target || snap.Events[1].Index != target {
		t.Fatalf("rebind trail indexes %+v, want shard %d twice", snap.Events, target)
	}
	if snap.WarmStarts != 0 {
		t.Fatalf("online events miscounted as warm starts: %d", snap.WarmStarts)
	}
}

// TestEngineLeaveRejoinTwice cycles the same shard out and back twice:
// the rejoin path refreshes the departed shard's features in place, so
// the instance must not grow and the second cycle must behave like the
// first.
func TestEngineLeaveRejoinTwice(t *testing.T) {
	in := onlineInstance(22, 12)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(in.Clone(), SEConfig{Seed: 22, Gamma: 2, MaxIters: 4000})
	if err != nil {
		t.Fatal(err)
	}
	const target = 5
	for cycle := 0; cycle < 2; cycle++ {
		eng.StepN(150)
		if err := eng.ApplyEvent(Event{Kind: EventLeave, Index: target}); err != nil {
			t.Fatalf("cycle %d leave: %v", cycle, err)
		}
		eng.StepN(150)
		if sol, err := eng.Best(); err == nil && sol.Selected[target] {
			t.Fatalf("cycle %d: departed shard in best", cycle)
		}
		if err := eng.ApplyEvent(Event{Kind: EventJoin, Index: target,
			Size: in.Sizes[target], Latency: in.Latencies[target]}); err != nil {
			t.Fatalf("cycle %d rejoin: %v", cycle, err)
		}
	}
	eng.StepN(300)
	sol, err := eng.Best()
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 12 {
		t.Fatalf("instance grew across rejoin cycles: %d shards", len(sol.Selected))
	}
	final := eng.Instance()
	if !final.Feasible(sol.Selected) {
		t.Fatal("infeasible best after two leave→rejoin cycles")
	}
}

func TestSolveOnlineLeaveUnknownShard(t *testing.T) {
	in := onlineInstance(6, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	events := []Event{{AtIteration: 10, Kind: EventLeave, Index: 99}}
	se := NewSE(SEConfig{Seed: 6, MaxIters: 100})
	if _, _, err := se.SolveOnline(in.Clone(), events); err == nil {
		t.Fatal("leave of unknown shard accepted")
	}
}

func TestSolveOnlineDoubleLeaveRejected(t *testing.T) {
	in := onlineInstance(7, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{AtIteration: 10, Kind: EventLeave, Index: 2},
		{AtIteration: 20, Kind: EventLeave, Index: 2},
	}
	se := NewSE(SEConfig{Seed: 7, MaxIters: 100})
	if _, _, err := se.SolveOnline(in.Clone(), events); err == nil {
		t.Fatal("double leave accepted")
	}
}

func TestSolveOnlineJoinOfLiveShardRejected(t *testing.T) {
	in := onlineInstance(8, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	events := []Event{{AtIteration: 10, Kind: EventJoin, Index: 2, Size: 100, Latency: 700}}
	se := NewSE(SEConfig{Seed: 8, MaxIters: 100})
	if _, _, err := se.SolveOnline(in.Clone(), events); err == nil {
		t.Fatal("join of live shard accepted")
	}
}

func TestSolveOnlineInvalidEventKind(t *testing.T) {
	in := onlineInstance(9, 10)
	events := []Event{{AtIteration: 10, Kind: EventKind(99)}}
	se := NewSE(SEConfig{Seed: 9, MaxIters: 100})
	if _, _, err := se.SolveOnline(in, events); err == nil {
		t.Fatal("invalid event kind accepted")
	}
}

func TestSolveOnlineInvalidJoinShard(t *testing.T) {
	in := onlineInstance(10, 10)
	events := []Event{{AtIteration: 10, Kind: EventJoin, Index: -1, Size: -5, Latency: 100}}
	se := NewSE(SEConfig{Seed: 10, MaxIters: 100})
	if _, _, err := se.SolveOnline(in, events); err == nil {
		t.Fatal("negative-size join accepted")
	}
}

func TestSolveOnlineConsecutiveJoins(t *testing.T) {
	// The Fig. 9(b)/14 scenario: committees keep joining; the best
	// utility climbs (weakly) across join epochs.
	in := onlineInstance(11, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	var events []Event
	for k := 0; k < 8; k++ {
		events = append(events, Event{
			AtIteration: 100 + 100*k,
			Kind:        EventJoin,
			Index:       -1,
			Size:        1200 + 100*k,
			Latency:     in.DDL - float64(5+k),
		})
	}
	se := NewSE(SEConfig{Seed: 11, MaxIters: 1500})
	sol, trace, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Selected) != 18 {
		t.Fatalf("selection length %d", len(sol.Selected))
	}
	// Utility after all joins should be at least the pre-join converged
	// value (more candidates can only help in expectation; assert weak
	// improvement of the final best over the iteration-100 best).
	var early, final float64 = math.Inf(-1), math.Inf(-1)
	for _, p := range trace {
		if p.Iteration <= 100 && p.Utility > early {
			early = p.Utility
		}
		if p.Utility > final {
			final = p.Utility
		}
	}
	if final < early {
		t.Fatalf("final best %.1f below pre-join best %.1f", final, early)
	}
}

func TestSolveOnlineEventOrderIndependence(t *testing.T) {
	// Events are sorted by AtIteration, so passing them out of order must
	// not change the outcome.
	in := onlineInstance(12, 12)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	evA := []Event{
		{AtIteration: 300, Kind: EventJoin, Index: -1, Size: 900, Latency: in.DDL - 3},
		{AtIteration: 100, Kind: EventLeave, Index: 1},
	}
	evB := []Event{evA[1], evA[0]}
	s1, _, err := NewSE(SEConfig{Seed: 12, MaxIters: 600}).SolveOnline(in.Clone(), evA)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := NewSE(SEConfig{Seed: 12, MaxIters: 600}).SolveOnline(in.Clone(), evB)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Utility != s2.Utility {
		t.Fatalf("event order changed outcome: %v vs %v", s1.Utility, s2.Utility)
	}
}

func TestEventKindString(t *testing.T) {
	if EventJoin.String() != "join" || EventLeave.String() != "leave" {
		t.Fatal("event kind names wrong")
	}
	if EventKind(42).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestSolveOnlineManyLeavesShrinkToFew(t *testing.T) {
	in := onlineInstance(13, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	in.Nmin = 1
	var events []Event
	for i := 0; i < 7; i++ {
		events = append(events, Event{AtIteration: 50 + 50*i, Kind: EventLeave, Index: i})
	}
	se := NewSE(SEConfig{Seed: 13, MaxIters: 800})
	sol, _, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if sol.Selected[i] {
			t.Fatalf("departed shard %d selected", i)
		}
	}
	if sol.Count == 0 {
		t.Fatal("no shard selected after leaves")
	}
}

func TestSolveOnlineMaxCandidatesStopsListening(t *testing.T) {
	// Alg. 1 lines 29-30: once Nmax committees arrived, new joins are
	// ignored.
	in := onlineInstance(14, 10)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	var events []Event
	for k := 0; k < 6; k++ {
		events = append(events, Event{
			AtIteration: 50 + 10*k,
			Kind:        EventJoin,
			Index:       -1,
			Size:        1000,
			Latency:     in.DDL - 1,
		})
	}
	se := NewSE(SEConfig{Seed: 14, MaxIters: 300, MaxCandidates: 12})
	sol, _, err := se.SolveOnline(in.Clone(), events)
	if err != nil {
		t.Fatal(err)
	}
	// 10 initial + 2 admitted joins; the other 4 were refused, so the
	// instance never grew past 12 shards.
	if len(sol.Selected) != 12 {
		t.Fatalf("selection length %d, want 12 (Nmax cut)", len(sol.Selected))
	}
}
