package core

import (
	"math"
	"testing"
)

func counterfactualInstance() Instance {
	in := Instance{
		Sizes:     []int{100, 80, 60, 40, 500},
		Latencies: []float64{10, 20, 30, 40, 60},
		DDL:       50,
		Alpha:     1,
		Capacity:  200,
		Nmin:      2,
	}
	if err := in.Validate(); err != nil {
		panic(err)
	}
	return in
}

func TestMarginalsMatchValues(t *testing.T) {
	in := counterfactualInstance()
	sol := NewSolution(&in, []bool{true, true, false, false, false})
	ms := Marginals(&in, sol)
	if len(ms) != 2 {
		t.Fatalf("marginals = %+v, want 2 entries", ms)
	}
	var sum float64
	for _, m := range ms {
		if got := in.Value(m.Shard); m.Utility != got {
			t.Fatalf("shard %d marginal %v, want Value %v", m.Shard, m.Utility, got)
		}
		if !m.Binding {
			t.Fatalf("shard %d should be binding at Count==Nmin", m.Shard)
		}
		sum += m.Utility
	}
	if math.Abs(sum-sol.Utility) > 1e-9 {
		t.Fatalf("marginals sum %v, want solution utility %v", sum, sol.Utility)
	}

	// With three selected, removing any one keeps Count >= Nmin.
	sol3 := NewSolution(&in, []bool{true, true, true, false, false})
	for _, m := range Marginals(&in, sol3) {
		if m.Binding {
			t.Fatalf("shard %d binding with slack above Nmin", m.Shard)
		}
	}
}

func TestRejectedCounterfactuals(t *testing.T) {
	in := counterfactualInstance()
	// Shards 0+1 selected: load 180 of 200, so admitting shard 2 (60
	// txs) needs 40 freed. Values: shard0 60, shard1 50, shard2 40,
	// shard3 30; the greedy eviction order is ascending value, so
	// shard 1 goes first. Shard 4 is a straggler (latency 60 > DDL 50)
	// and must not appear among the rejections at all.
	sol := NewSolution(&in, []bool{true, true, false, false, false})
	rej := RejectedCounterfactuals(&in, sol, 10)
	if len(rej) != 2 {
		t.Fatalf("rejections = %+v, want 2 (shards 2 and 3; straggler 4 excluded)", rej)
	}
	// Highest-value rejected first: shard 2 (40) before shard 3 (30).
	if rej[0].Shard != 2 || rej[1].Shard != 3 {
		t.Fatalf("rejection order = %d,%d, want 2,3", rej[0].Shard, rej[1].Shard)
	}
	r := rej[0]
	if !r.Feasible {
		t.Fatalf("admitting shard 2 should be feasible via eviction: %+v", r)
	}
	if len(r.Evicted) != 1 || r.Evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1] (lowest-value selected)", r.Evicted)
	}
	if want := in.Value(2) - in.Value(1); math.Abs(r.NetGain-want) > 1e-9 {
		t.Fatalf("net gain %v, want %v", r.NetGain, want)
	}
	for _, r := range rej {
		if r.Shard == 4 {
			t.Fatalf("straggler 4 in rejections: %+v", rej)
		}
	}
}

func TestRejectedCounterfactualsOverCapacity(t *testing.T) {
	in := Instance{
		Sizes:     []int{50, 50, 900},
		Latencies: []float64{1, 2, 3},
		DDL:       10,
		Alpha:     1,
		Capacity:  120,
		Nmin:      1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sol := NewSolution(&in, []bool{true, true, false})
	rej := RejectedCounterfactuals(&in, sol, 5)
	if len(rej) != 1 || rej[0].Shard != 2 {
		t.Fatalf("rejections = %+v, want only shard 2", rej)
	}
	if rej[0].Feasible {
		t.Fatalf("shard 2 alone exceeds capacity, must be infeasible: %+v", rej[0])
	}
	if len(rej[0].Evicted) != 0 {
		t.Fatalf("no eviction set can admit shard 2: %+v", rej[0])
	}
}

func TestRejectedCounterfactualsNminFloor(t *testing.T) {
	// Admitting shard 2 (120 txs into 130 capacity) would require
	// evicting both selected shards, dropping the post-swap count to 1
	// below Nmin=2 — so the admission must be marked infeasible.
	in := Instance{
		Sizes:     []int{60, 60, 120},
		Latencies: []float64{1, 2, 3},
		DDL:       10,
		Alpha:     1,
		Capacity:  130,
		Nmin:      2,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sol := NewSolution(&in, []bool{true, true, false})
	rej := RejectedCounterfactuals(&in, sol, 5)
	if len(rej) != 1 {
		t.Fatalf("rejections = %+v, want 1", rej)
	}
	if rej[0].Feasible {
		t.Fatalf("eviction would break Nmin, must be infeasible: %+v", rej[0])
	}
}
