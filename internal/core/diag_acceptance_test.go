package core_test

// Acceptance tests for the convergence diagnostics (internal/seobs)
// wired through the SE kernel. They live in the external test package so
// they can cross-check against internal/baseline (which imports core).

import (
	"math"
	"testing"

	"mvcom/internal/baseline"
	"mvcom/internal/core"
	"mvcom/internal/obs"
	"mvcom/internal/seobs"
)

// smallDiagInstance builds a |I| = 12 instance on which the d_TV
// estimator enumerates the Gibbs target. Latencies are uniform, so every
// value is α·s_i (distinct, positive); the capacity admits every
// selection of cardinality ≤ |I|−1 but not the full set, which makes
// every within-thread swap proposal feasible (the retry loop never
// truncates, keeping the proposal distribution symmetric) while the
// brute-force optimum stays inside the threads' state space.
func smallDiagInstance() core.Instance {
	sizes := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	total := 0
	for _, s := range sizes {
		total += s
	}
	lat := make([]float64, len(sizes))
	for i := range lat {
		lat[i] = 1
	}
	return core.Instance{
		Sizes:     sizes,
		Latencies: lat,
		Alpha:     1.5,
		Capacity:  total - 10, // min size; full set infeasible, all |I|-1 subsets feasible
		Nmin:      1,
	}
}

// TestDiagEmpiricalDTVAgainstGibbsTarget is the tentpole acceptance
// check: on a small instance the sampled visit distribution must come
// within d_TV < 0.1 of the enumerated Gibbs target p* ∝ exp(β_eff·U_f)
// after a Theorem-1-scale iteration budget, and the target's mode must
// agree with the brute-force optimum.
func TestDiagEmpiricalDTVAgainstGibbsTarget(t *testing.T) {
	in := smallDiagInstance()
	reg := obs.NewRegistry()
	diag := seobs.New(seobs.Config{Registry: reg})
	cfg := core.SEConfig{
		Seed:              7,
		Gamma:             4,
		MaxIters:          30000,
		ConvergenceWindow: 30000, // sample the stationary regime, no early stop
		Diag:              diag,
	}
	se := core.NewSE(cfg)
	sol, _, err := se.Solve(in)
	if err != nil {
		t.Fatal(err)
	}

	snap := diag.Snapshot()
	if snap.DTV == nil || !snap.DTV.Enabled {
		t.Fatal("d_TV estimator not enabled on a 12-shard instance")
	}
	if snap.DTV.Samples == 0 {
		t.Fatal("d_TV estimator collected no dwell samples")
	}

	// Theorem 1 scale: the iteration budget must clear the theorem's
	// lower bound on the mixing time (the upper bound is astronomically
	// loose — exp(3/2·β·ΔU) — and only logged for context).
	var umin, umax float64 = math.Inf(1), math.Inf(-1)
	for i := range in.Sizes {
		v := in.Value(i)
		if v < umin {
			umin = v
		}
		if v > umax {
			umax = v
		}
	}
	mb, err := core.MixingTimeBounds(in.NumShards(), snap.BetaEff, 0, umax, umin, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Theorem 1 bounds (log): lower %.2f upper %.2f; budget %d rounds x %d explorers",
		mb.LogLower, mb.LogUpper, cfg.MaxIters, cfg.Gamma)
	if float64(cfg.MaxIters) < mb.Lower {
		t.Fatalf("iteration budget %d below the Theorem 1 lower bound %.1f", cfg.MaxIters, mb.Lower)
	}

	t.Logf("d_TV estimate %.4f over %d states, %d samples (best %.1f after %d rounds)",
		snap.DTV.Estimate, snap.DTV.States, snap.DTV.Samples, sol.Utility, snap.Rounds)
	for _, c := range snap.DTV.PerCardinality {
		t.Logf("  n=%2d weight %.4f samples %7d tv %.4f", c.N, c.Weight, c.Samples, c.TV)
	}
	if snap.DTV.Estimate >= 0.1 {
		t.Fatalf("d_TV estimate %.4f, want < 0.1", snap.DTV.Estimate)
	}

	// Cross-check the enumerated target against the brute-force optimum:
	// the Gibbs mode must be the exact optimum of the (trimmed) space.
	bf := baseline.BruteForce{}
	bsol, _, err := bf.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	var bfMask uint64
	for i, on := range bsol.Selected {
		if on {
			bfMask |= 1 << uint(i)
		}
	}
	if snap.DTV.ModeMask != bfMask {
		t.Fatalf("Gibbs mode mask %#x != brute-force optimum %#x", snap.DTV.ModeMask, bfMask)
	}
	if math.Abs(snap.DTV.ModeUtility-bsol.Utility) > 1e-9 {
		t.Fatalf("Gibbs mode utility %v != brute-force optimum %v", snap.DTV.ModeUtility, bsol.Utility)
	}

	// The headline estimators must be populated and exported.
	if snap.SwapAcceptRate <= 0 || snap.SwapAcceptRate > 1 {
		t.Fatalf("swap-acceptance rate %v out of (0,1]", snap.SwapAcceptRate)
	}
	if snap.ResetRate <= 0 {
		t.Fatalf("reset rate %v, want > 0", snap.ResetRate)
	}
	if snap.TimeToEpsRounds < 0 {
		t.Fatal("time-to-eps unset after a converged run")
	}
	if snap.UtilitySamples == 0 {
		t.Fatal("no winner-utility samples for the mixing proxy")
	}
	if snap.IntegratedAutocorrTime < 1 {
		t.Fatalf("integrated autocorrelation time %v, want >= 1", snap.IntegratedAutocorrTime)
	}
	if len(snap.Windows) == 0 {
		t.Fatal("no windows recorded")
	}
	if v := reg.Gauge("mvcom_se_diag_dtv", "").Value(); math.Abs(v-snap.DTV.Estimate) > 1e-12 {
		t.Fatalf("d_TV gauge %v != snapshot %v", v, snap.DTV.Estimate)
	}
}

// TestDiagTheorem2DipAndReconvergence asserts the *estimator's* view of
// the Theorem 2 perturbation: a leave event mid-run must show up in the
// diagnostic stream as an event mark whose post-event best dips below
// the pre-event level, followed by windows that climb back (the
// re-convergence curve of Fig. 14), with the d_TV estimator restarted
// against the trimmed target.
func TestDiagTheorem2DipAndReconvergence(t *testing.T) {
	in := smallDiagInstance()
	// Tighter capacity than the d_TV instance: the full survivor set
	// must stay infeasible after the leave, so the trimmed optimum has
	// to be re-discovered by search (a real re-convergence curve)
	// instead of being adopted instantly by the full-selection offer.
	in.Capacity = 120
	// Every shard but 11 pays an age penalty (value 1.5·s − 3); shard 11
	// arrives exactly at the deadline (age 0). Losing it is
	// irreplaceable — any capacity-filling substitute swaps in another
	// penalized shard — so the optimum strictly drops at the leave.
	in.DDL = 4
	in.Latencies[11] = 4
	// ε tight enough that the leave's dip counts as an excursion below
	// the band, so time-to-ε measures the re-convergence.
	diag := seobs.New(seobs.Config{Epsilon: 0.005})
	const leaveAt = 4000
	cfg := core.SEConfig{
		Seed:              11,
		Gamma:             2,
		MaxIters:          12000,
		ConvergenceWindow: 12000,
		Diag:              diag,
	}
	// Shard 11 carries the largest value: losing it forces a real dip.
	events := []core.Event{{AtIteration: leaveAt, Kind: core.EventLeave, Index: 11}}
	se := core.NewSE(cfg)
	sol, _, err := se.SolveOnline(in, events)
	if err != nil {
		t.Fatal(err)
	}

	snap := diag.Snapshot()
	if len(snap.Events) != 1 {
		t.Fatalf("event marks = %d, want 1", len(snap.Events))
	}
	mark := snap.Events[0]
	if mark.Kind != "leave" || mark.Index != 11 || mark.Round != leaveAt {
		t.Fatalf("unexpected event mark %+v", mark)
	}

	// Pre-event peak, the dip at the mark, and the post-event recovery.
	var preBest, postBest float64 = math.Inf(-1), math.Inf(-1)
	for _, w := range snap.Windows {
		if w.Round < leaveAt && w.BestUtility > preBest {
			preBest = w.BestUtility
		}
		if w.Round >= leaveAt && w.BestUtility > postBest {
			postBest = w.BestUtility
		}
	}
	if !(mark.BestAfter < preBest) {
		t.Fatalf("no dip: best after leave %v, pre-event peak %v", mark.BestAfter, preBest)
	}
	if !(postBest > mark.BestAfter) {
		t.Fatalf("no re-convergence: post-event peak %v, dip %v", postBest, mark.BestAfter)
	}
	if math.Abs(postBest-sol.Utility) > 1e-9 {
		t.Fatalf("post-event peak %v != final solution %v", postBest, sol.Utility)
	}

	// Theorem 2 brackets the perturbation at d_TV ≤ 1/2; the restarted
	// estimator must re-converge on the trimmed target, not sit at the
	// worst case.
	pb := core.PerturbationBound(sol.Utility)
	if snap.DTV == nil || snap.DTV.Samples == 0 {
		t.Fatal("d_TV estimator not live after the leave rebind")
	}
	t.Logf("post-leave d_TV %.4f (Theorem 2 worst case %.2f), dip %.1f -> %.1f",
		snap.DTV.Estimate, pb.TVDistance, mark.BestAfter, postBest)
	if snap.DTV.Estimate >= pb.TVDistance {
		t.Fatalf("post-leave d_TV %.4f did not fall below the Theorem 2 bound %.2f",
			snap.DTV.Estimate, pb.TVDistance)
	}
	// The time-to-ε diagnostic must measure the re-convergence (after
	// the dip), not the pre-event climb.
	if snap.TimeToEpsRounds < leaveAt {
		t.Fatalf("time-to-eps %d precedes the leave at %d; it must track the re-convergence",
			snap.TimeToEpsRounds, leaveAt)
	}
}

// TestDiagNilIsOff pins the nil-is-off contract end to end: a nil Diag
// adds no state, and a Diag on a large instance disables the d_TV
// estimator but keeps the cheap stream.
func TestDiagNilIsOff(t *testing.T) {
	var nilDiag *seobs.Diag
	s := nilDiag.Snapshot()
	if s.TimeToEpsRounds != -1 || s.Rounds != 0 {
		t.Fatalf("nil diag snapshot not inert: %+v", s)
	}
	nilDiag.Bind(seobs.RunInfo{})
	nilDiag.Finalize() // must not panic

	in := smallDiagInstance()
	seNil := core.NewSE(core.SEConfig{Seed: 3, MaxIters: 2000})
	solNil, _, err := seNil.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	diag := seobs.New(seobs.Config{MaxTVShards: 4}) // 12 shards > 4: estimator off
	seDiag := core.NewSE(core.SEConfig{Seed: 3, MaxIters: 2000, Diag: diag})
	solDiag, _, err := seDiag.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if solNil.Utility != solDiag.Utility {
		t.Fatalf("diagnostics changed the result: %v != %v", solNil.Utility, solDiag.Utility)
	}
	snap := diag.Snapshot()
	if snap.DTV != nil {
		t.Fatal("d_TV estimator enabled beyond MaxTVShards")
	}
	if snap.Rounds == 0 || len(snap.Windows) == 0 || snap.UtilitySamples == 0 {
		t.Fatalf("cheap diagnostic stream missing without the estimator: %+v", snap)
	}
}
