package core

import (
	"sort"

	"mvcom/internal/seobs"
)

// WarmSolver is a Solver that can seed its search from a previous
// epoch's solution. The previous selection is interpreted over the new
// instance's shard indices (the caller is responsible for mapping
// committee identities between epochs); entries that reference departed
// or out-of-range shards are trimmed during projection.
type WarmSolver interface {
	Solver
	// SolveFrom solves in, optionally seeding the search from prev.
	// Implementations must treat prev as read-only and must fall back to
	// a cold start when prev carries no usable information.
	SolveFrom(in Instance, prev Solution) (Solution, []TracePoint, error)
}

var _ WarmSolver = (*SE)(nil)

// SolveFrom runs the SE algorithm seeded from a previous epoch's
// solution. With SEConfig.WarmStart unset (or an empty previous
// selection) it is exactly Solve: same RNG stream, same trajectory, same
// answer. With WarmStart set, every explorer's cardinality-n thread is
// re-seeded from the projection of prev.Selected onto the surviving
// candidate set before the first transition round: the projection drops
// departed shards, trims the lowest-value survivors while over capacity
// (the applyLeave trim), derives each cardinality by shrinking or
// growing the projected set in value order, and re-offers the result
// through the usual local-best/full-selection path. The warm seed is
// recorded as a "warm-start" restart event on the attached diagnostics
// so the time-to-ε estimator measures re-convergence from the seeded
// level, mirroring how join/leave events restart it.
func (se *SE) SolveFrom(in Instance, prev Solution) (Solution, []TracePoint, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, nil, err
	}
	run, err := newRun(&in, se.cfg)
	if err != nil {
		return Solution{}, nil, err
	}
	if sol, done := run.trivial(); done {
		return sol, []TracePoint{{Iteration: 0, Utility: sol.Utility}}, nil
	}
	if se.cfg.WarmStart {
		run.applyWarmStart(prev.Selected)
	}
	trace := run.loop(nil)
	sol, err := run.best()
	if err != nil {
		return Solution{}, trace, err
	}
	return sol, trace, nil
}

// projectSelection maps a previous selection (instance index space) onto
// the current candidate positions, dropping shards that are no longer
// candidates and then trimming the lowest-value survivors while the
// projected load exceeds capacity — the same "trim the departed state
// space" rule applyLeave applies, extended to the capacity constraint a
// re-featured epoch may have tightened. The result is sorted by
// descending value so prefixes are the natural per-cardinality seeds.
func (r *run) projectSelection(prevSel []bool) []int {
	base := make([]int, 0, len(r.candidates))
	load := 0
	for pos, idx := range r.candidates {
		if idx < len(prevSel) && prevSel[idx] {
			base = append(base, pos)
			load += r.sizes[pos]
		}
	}
	sort.Slice(base, func(i, j int) bool { return r.vals[base[i]] > r.vals[base[j]] })
	for load > r.in.Capacity && len(base) > 0 {
		last := base[len(base)-1]
		load -= r.sizes[last]
		base = base[:len(base)-1]
	}
	return base
}

// applyWarmStart re-seeds every explorer's solution threads from the
// projected previous selection. Runs once before the first segment, so
// no synchronization is needed. Threads whose cardinality cannot be
// seeded feasibly keep their random initialization (or stay inactive);
// a seeded thread that was inactive is re-activated — the previous
// epoch's solution is a feasibility witness the random initializer may
// have missed.
func (r *run) applyWarmStart(prevSel []bool) {
	base := r.projectSelection(prevSel)
	if len(base) == 0 {
		return
	}
	// rest holds the candidate positions outside the projected set, best
	// value first, for growing seeds past the projected cardinality.
	inBase := make([]bool, len(r.candidates))
	baseLoad := 0
	for _, pos := range base {
		inBase[pos] = true
		baseLoad += r.sizes[pos]
	}
	rest := make([]int, 0, len(r.candidates)-len(base))
	for pos := range r.candidates {
		if !inBase[pos] {
			rest = append(rest, pos)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return r.vals[rest[i]] > r.vals[rest[j]] })

	pick := make([]int, 0, len(r.candidates))
	for _, ex := range r.explorers {
		for _, th := range ex.threads {
			pick = pick[:0]
			load := 0
			// Shrink: the n best projected positions (prefix load can
			// never exceed the trimmed base load, so this is always
			// feasible). Grow: top up with the best-valued outside
			// positions that still fit.
			for _, pos := range base {
				if len(pick) == th.n {
					break
				}
				pick = append(pick, pos)
				load += r.sizes[pos]
			}
			for _, pos := range rest {
				if len(pick) == th.n {
					break
				}
				if load+r.sizes[pos] > r.in.Capacity {
					continue
				}
				pick = append(pick, pos)
				load += r.sizes[pos]
			}
			if len(pick) != th.n {
				continue
			}
			th.adopt(r, pick)
			th.active = true
			ex.offer(th, 0)
		}
		ex.rearm()
		r.adoptLocal(ex)
	}
	r.offerFullIfFeasible()
	r.publishBest()
	r.rebindDiag(0, seobs.EventWarmStart, -1)
}
