package core

// Engine is the stepping interface to the SE Markov chain. Where Solve
// runs the chain to convergence in one call, an Engine advances one
// transition round at a time, so callers can interleave exploration with
// external coordination — the distributed runtime drives one Engine per
// worker machine and exchanges only best-utility reports and dynamic
// events, exactly the "limited state information" execution model of
// Section IV-D.
type Engine struct {
	r       *run
	trivial *Solution
	iter    int
}

// NewEngine validates the instance and prepares the chain. If the
// bootstrap condition of Alg. 1 line 1 is not met (everything fits the
// final block), the engine is born converged with the trivial all-arrived
// solution.
func NewEngine(in Instance, cfg SEConfig) (*Engine, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r, err := newRun(&in, cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{r: r}
	if sol, done := r.trivial(); done {
		e.trivial = &sol
	}
	return e, nil
}

// Converged reports whether the engine was born converged (trivial case).
func (e *Engine) Converged() bool { return e.trivial != nil }

// Step advances every explorer by one transition round and reports whether
// the global best improved. Stepping a trivially converged engine is a
// no-op returning false.
func (e *Engine) Step() bool { return e.StepN(1) }

// StepN advances every explorer by n transition rounds — concurrently
// across explorers when the configuration allows — and reports whether
// the global best improved anywhere in the window. Batching rounds
// through StepN is what lets a driver keep the parallel kernel busy
// between coordination points instead of paying a goroutine fan-out per
// round.
func (e *Engine) StepN(n int) bool {
	if e.trivial != nil || n <= 0 {
		return false
	}
	a := e.iter
	e.iter += n
	e.r.stepSegment(a, e.iter)
	var sinceImprove int
	_, _, improved := e.r.mergeSegment(a, e.iter, -1, nil, &sinceImprove, false)
	e.r.iterations = e.iter
	return improved
}

// Iterations returns how many rounds have been stepped.
func (e *Engine) Iterations() int { return e.iter }

// BestUtility returns the best utility observed so far (the trivial
// solution's utility when born converged; -Inf before any feasible
// solution exists). It reads the atomically published best snapshot, so
// it is safe to call from any goroutine.
func (e *Engine) BestUtility() float64 {
	if e.trivial != nil {
		return e.trivial.Utility
	}
	return e.r.bestObserved()
}

// BestCardinality returns the solution-thread cardinality n of the best
// solution observed so far (0 before any feasible solution exists). Like
// BestUtility it reads the published snapshot, so it is safe from any
// goroutine; the distributed runtime threads it through progress and
// result reports.
func (e *Engine) BestCardinality() int {
	if e.trivial != nil {
		return e.trivial.Count
	}
	if s := e.r.snap.Load(); s != nil {
		return s.n
	}
	return 0
}

// Best returns the best feasible solution found so far.
func (e *Engine) Best() (Solution, error) {
	if e.trivial != nil {
		return *e.trivial, nil
	}
	return e.r.best()
}

// ApplyEvent injects a dynamic join/leave event into the running chain.
// It must not be called concurrently with StepN; like the batched solver
// loops, events belong to synchronization points.
func (e *Engine) ApplyEvent(ev Event) error {
	if e.trivial != nil {
		// The candidate set changed: the trivial shortcut no longer
		// holds; fall back to the live chain.
		e.trivial = nil
	}
	return e.r.applyEvent(ev)
}

// Instance returns a snapshot of the engine's current instance (including
// shards added by join events).
func (e *Engine) Instance() Instance { return e.r.in.Clone() }
