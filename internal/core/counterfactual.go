package core

// Marginal is one selected shard's contribution to the solution: the
// utility the epoch would lose if the shard were removed. Because the
// objective is additive, the marginal of a selected shard is exactly its
// Value — unless removing it would violate Nmin, in which case the whole
// solution collapses to infeasible and the shard is Binding.
type Marginal struct {
	// Shard is the instance index of the selected shard.
	Shard int `json:"shard"`
	// Utility is the utility drop if the shard were removed (its Value).
	Utility float64 `json:"utility"`
	// Binding marks shards whose removal would push the selection below
	// Nmin: removing them does not cost Value, it costs feasibility.
	Binding bool `json:"binding,omitempty"`
}

// Marginals computes the per-committee marginal utility of every
// selected shard, in ascending shard order.
func Marginals(in *Instance, sol Solution) []Marginal {
	return MarginalsInto(nil, in, sol)
}

// MarginalsInto is Marginals appending into dst's truncated capacity —
// the decision journal's pooled entries call it every epoch, so the
// steady state must not allocate.
func MarginalsInto(dst []Marginal, in *Instance, sol Solution) []Marginal {
	dst = dst[:0]
	for i, sel := range sol.Selected {
		if !sel {
			continue
		}
		dst = append(dst, Marginal{
			Shard:   i,
			Utility: in.Value(i),
			Binding: sol.Count-1 < in.Nmin,
		})
	}
	return dst
}

// Rejection explains one arrived-but-refused shard: what admitting it
// would have required and what the swap would have been worth.
type Rejection struct {
	// Shard is the instance index of the refused shard.
	Shard int `json:"shard"`
	// Value is the utility the shard would have contributed.
	Value float64 `json:"value"`
	// Evicted lists the selected shards (lowest Value first) that would
	// have to leave the block to free capacity for this shard. Empty when
	// spare capacity alone could admit it.
	Evicted []int `json:"evicted,omitempty"`
	// EvictedValue is the summed Value of Evicted — the utility the
	// admission would have cost elsewhere.
	EvictedValue float64 `json:"evictedValue,omitempty"`
	// NetGain is Value − EvictedValue: positive means the greedy swap
	// looks profitable in isolation (the solver still refused it because
	// the evictions cascade or the chain found a better global shape).
	NetGain float64 `json:"netGain"`
	// Feasible reports whether any eviction set admits the shard at all
	// (false when the shard alone exceeds capacity or evictions would
	// break Nmin).
	Feasible bool `json:"feasible,omitempty"`
}

// RejectedCounterfactuals explains the top-k arrived-but-refused shards
// (highest Value first): for each, the cheapest greedy eviction set that
// would free enough capacity, and the net utility of the swap. It is the
// "what would admission have cost elsewhere" record the decision journal
// stores per epoch.
func RejectedCounterfactuals(in *Instance, sol Solution, k int) []Rejection {
	return RejectedCounterfactualsInto(nil, in, sol, k)
}

// counterfactualScratchLen bounds the stack-allocated index scratch the
// per-epoch path uses; instances larger than this fall back to the heap.
const counterfactualScratchLen = 96

// insertByValueDesc inserts i into s (kept sorted by descending
// in.Value, ties by ascending index), capping the list at k entries.
// Insertion sort: the lists are a few dozen entries, and sort.Slice's
// closure and interface costs were visible on the journal's epoch path.
func insertByValueDesc(s []int, in *Instance, i, k int) []int {
	pos := len(s)
	vi := in.Value(i)
	for pos > 0 {
		vp := in.Value(s[pos-1])
		if vp > vi || (vp == vi && s[pos-1] < i) {
			break
		}
		pos--
	}
	if pos >= k {
		return s
	}
	if len(s) < k {
		s = append(s, 0)
	}
	copy(s[pos+1:], s[pos:])
	s[pos] = i
	return s
}

// insertByValueAsc is insertByValueDesc's unbounded ascending twin, the
// greedy eviction order (cheapest utility given up first).
func insertByValueAsc(s []int, in *Instance, i int) []int {
	pos := len(s)
	vi := in.Value(i)
	for pos > 0 {
		vp := in.Value(s[pos-1])
		if vp < vi || (vp == vi && s[pos-1] < i) {
			break
		}
		pos--
	}
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = i
	return s
}

// RejectedCounterfactualsInto is RejectedCounterfactuals appending into
// dst's truncated capacity, reusing each recycled element's Evicted
// backing array — the decision journal's pooled entries call it every
// epoch, so the steady state must not allocate.
func RejectedCounterfactualsInto(dst []Rejection, in *Instance, sol Solution, k int) []Rejection {
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	var rejectedArr, selectedArr [counterfactualScratchLen]int
	rejected := rejectedArr[:0]
	for _, i := range in.Arrived() {
		if i >= len(sol.Selected) || !sol.Selected[i] {
			rejected = insertByValueDesc(rejected, in, i, k)
		}
	}
	selected := selectedArr[:0]
	for i, sel := range sol.Selected {
		if sel {
			selected = insertByValueAsc(selected, in, i)
		}
	}

	for _, j := range rejected {
		// Reuse the recycled element's Evicted capacity when dst came from
		// a pooled journal entry.
		var evicted []int
		if len(dst) < cap(dst) {
			evicted = dst[:len(dst)+1][len(dst)].Evicted[:0]
		}
		r := Rejection{Shard: j, Value: in.Value(j)}
		need := sol.Load + in.Sizes[j] - in.Capacity
		if in.Sizes[j] > in.Capacity {
			// The shard alone overflows the block: no eviction set helps.
			r.NetGain = r.Value
			dst = append(dst, r)
			continue
		}
		remaining := sol.Count
		feasible := true
		for _, e := range selected {
			if need <= 0 {
				break
			}
			// Post-eviction count is (remaining-1)+1: the admitted shard
			// replaces the evicted one in the Nmin tally.
			if remaining < in.Nmin {
				feasible = false
				break
			}
			evicted = append(evicted, e)
			r.EvictedValue += in.Value(e)
			need -= in.Sizes[e]
			remaining--
		}
		if len(evicted) > 0 {
			r.Evicted = evicted
		}
		if need > 0 {
			feasible = false
		}
		r.Feasible = feasible
		r.NetGain = r.Value - r.EvictedValue
		dst = append(dst, r)
	}
	return dst
}
