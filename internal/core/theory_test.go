package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDetailedBalanceHoldsExactly(t *testing.T) {
	// Lemma 3: p*_f · q_{f,f'} = p*_{f'} · q_{f',f} for every adjacent
	// pair. In log space the residual must be identically zero for any
	// (β, τ, U_f, U_f').
	f := func(rawBeta, rawTau, uF, uFp float64) bool {
		beta := math.Abs(math.Mod(rawBeta, 100)) + 0.01
		tau := math.Mod(rawTau, 50)
		if math.IsNaN(uF) || math.IsInf(uF, 0) || math.IsNaN(uFp) || math.IsInf(uFp, 0) {
			return true
		}
		uF = math.Mod(uF, 1e6)
		uFp = math.Mod(uFp, 1e6)
		res := DetailedBalanceResidual(beta, tau, uF, uFp)
		return math.Abs(res) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLogTransitionRateDirection(t *testing.T) {
	// Moving toward a better solution must be faster (equation (7)).
	up := LogTransitionRate(2, 0, 100, 200)
	down := LogTransitionRate(2, 0, 200, 100)
	if up <= down {
		t.Fatalf("uphill rate %v not above downhill %v", up, down)
	}
	// τ only shifts both by a constant.
	upTau := LogTransitionRate(2, 5, 100, 200)
	if math.Abs((up-upTau)-5) > 1e-12 {
		t.Fatalf("tau shift wrong: %v vs %v", up, upTau)
	}
}

func TestOptimalityLossBound(t *testing.T) {
	got, err := OptimalityLossBound(2, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 * math.Ln2 / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("loss %v, want %v", got, want)
	}
	// Larger β → smaller loss (Remark 2).
	tight, err := OptimalityLossBound(10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tight >= got {
		t.Fatal("larger beta should shrink the loss bound")
	}
	if _, err := OptimalityLossBound(0, 5); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := OptimalityLossBound(1, -1); err == nil {
		t.Fatal("negative shards accepted")
	}
}

func TestMixingTimeBoundsOrdering(t *testing.T) {
	b, err := MixingTimeBounds(50, 2, 0, 1000, 900, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if b.LogLower >= b.LogUpper {
		t.Fatalf("lower bound above upper: %v vs %v", b.LogLower, b.LogUpper)
	}
	if !math.IsInf(b.Upper, 1) && b.Upper < b.Lower {
		t.Fatal("materialized bounds out of order")
	}
}

func TestMixingTimeBoundsScaleWithBeta(t *testing.T) {
	// Remark 2: larger β inflates the upper bound (slower convergence).
	small, err := MixingTimeBounds(50, 1, 0, 1000, 990, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MixingTimeBounds(50, 5, 0, 1000, 990, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if large.LogUpper <= small.LogUpper {
		t.Fatalf("upper bound should grow with beta: %v vs %v", small.LogUpper, large.LogUpper)
	}
}

func TestMixingTimeBoundsScaleWithEps(t *testing.T) {
	loose, err := MixingTimeBounds(50, 2, 0, 100, 90, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := MixingTimeBounds(50, 2, 0, 100, 90, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tight.LogUpper <= loose.LogUpper {
		t.Fatal("smaller eps should need more mixing time")
	}
}

func TestMixingTimeBoundsHugeUtilitySpreadStaysFinite(t *testing.T) {
	// The raw Theorem 1 upper bound contains exp(3β(Umax−Umin)/2): with a
	// spread of 10⁵ this overflows float64, but the log form must remain
	// finite and usable.
	b, err := MixingTimeBounds(500, 2, 0, 5e5, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(b.LogUpper, 0) || math.IsNaN(b.LogUpper) {
		t.Fatalf("log upper bound not finite: %v", b.LogUpper)
	}
	if !math.IsInf(b.Upper, 1) {
		t.Fatal("materialized upper bound should overflow to +Inf here")
	}
}

func TestMixingTimeBoundsArgErrors(t *testing.T) {
	cases := []struct {
		n                          int
		beta, tau, umax, umin, eps float64
	}{
		{1, 2, 0, 10, 0, 0.01},  // too few shards
		{10, 0, 0, 10, 0, 0.01}, // bad beta
		{10, 2, 0, 10, 0, 0},    // bad eps
		{10, 2, 0, 10, 0, 0.5},  // eps too large
		{10, 2, 0, 0, 10, 0.01}, // umax < umin
	}
	for i, c := range cases {
		if _, err := MixingTimeBounds(c.n, c.beta, c.tau, c.umax, c.umin, c.eps); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSolutionSpaceSize(t *testing.T) {
	f, g := SolutionSpaceSize(50)
	if f != 50 || g != 49 {
		t.Fatalf("space sizes %v %v", f, g)
	}
}

func TestPerturbationBound(t *testing.T) {
	p := PerturbationBound(1234.5)
	if p.TVDistance != 0.5 {
		t.Fatalf("TV %v, want 1/2 (Lemma 4)", p.TVDistance)
	}
	if p.UtilityBound != 1234.5 {
		t.Fatalf("utility bound %v", p.UtilityBound)
	}
}

func TestStationaryDistribution(t *testing.T) {
	p, err := StationaryDistribution(2, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform utilities should give uniform distribution: %v", p)
		}
	}
	// Higher utility → higher probability, ratio exp(βΔU).
	p, err = StationaryDistribution(2, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[1]/p[0]-math.Exp(2)) > 1e-9 {
		t.Fatalf("Gibbs ratio wrong: %v", p[1]/p[0])
	}
	if _, err := StationaryDistribution(2, nil); err == nil {
		t.Fatal("empty utilities accepted")
	}
	if _, err := StationaryDistribution(0, []float64{1}); err == nil {
		t.Fatal("beta=0 accepted")
	}
}

func TestStationaryDistributionNormalizedProperty(t *testing.T) {
	f := func(raw []float64, rawBeta float64) bool {
		if len(raw) == 0 {
			return true
		}
		beta := math.Abs(math.Mod(rawBeta, 10)) + 0.1
		us := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			us[i] = math.Mod(v, 1e5)
		}
		p, err := StationaryDistribution(beta, us)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalTVLemma4OnEnumeratedSpace(t *testing.T) {
	// Build a tiny solution space F = all subsets of 6 shards with i.i.d.
	// utilities, fail shard 0, and compare the trimmed stationary
	// distribution q* with the instantaneous distribution q̃ (the original
	// p* restricted to G). Lemma 4's derivation (law of large numbers over
	// i.i.d. utilities) gives d_TV → |F\G|/|F| = 1/2; with β→0 the weights
	// flatten and the identity is exact, so check β small → ≈ 1/2.
	const n = 6
	var utilG []float64 // utilities of solutions not containing shard 0
	var all []float64
	for mask := 0; mask < 1<<n; mask++ {
		u := 0.0
		for b := 0; b < n; b++ {
			if mask>>b&1 == 1 {
				u += float64((b * 37) % 11) // deterministic pseudo-i.i.d. values
			}
		}
		all = append(all, u)
		if mask&1 == 0 {
			utilG = append(utilG, u)
		}
	}
	beta := 1e-9 // flatten the Gibbs weights
	pAll, err := StationaryDistribution(beta, all)
	if err != nil {
		t.Fatal(err)
	}
	qStar, err := StationaryDistribution(beta, utilG)
	if err != nil {
		t.Fatal(err)
	}
	// q̃: original distribution restricted to G (not renormalized), per
	// equation (16).
	qTilde := make([]float64, 0, len(utilG))
	for mask := 0; mask < 1<<n; mask++ {
		if mask&1 == 0 {
			qTilde = append(qTilde, pAll[mask])
		}
	}
	// Pad q̃'s missing mass: d_TV computed over G only, following the
	// paper's ½Σ_{g∈G}|q*_g − q̃_g|.
	tv, err := EmpiricalTV(qStar, qTilde)
	if err != nil {
		t.Fatal(err)
	}
	// ½ Σ_{g∈G} |q*_g − q̃_g| = ½ Σ (q*_g − q̃_g) = ½(1 − ½) ... with flat
	// weights: q*_g = 1/32, q̃_g = 1/64, Σ diff = 1/2, tv = 1/4 over G
	// only; the paper's Lemma counts the vanished mass too, giving 1/2.
	vanished := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		if mask&1 == 1 {
			vanished += pAll[mask]
		}
	}
	total := tv + vanished/2
	if math.Abs(total-0.5) > 1e-6 {
		t.Fatalf("Lemma 4 TV distance %v, want 1/2", total)
	}
	if _, err := EmpiricalTV([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestChainIsIrreducibleEmpirically(t *testing.T) {
	// Lemma 2: within one cardinality class, every state must be
	// reachable. Run a long chain on a tiny instance and check that every
	// 2-subset of 4 candidates is visited.
	in := Instance{
		Sizes:     []int{10, 11, 12, 13},
		Latencies: []float64{700, 800, 900, 1000},
		Alpha:     1, // near-flat utilities keep the chain exploring
		Capacity:  1000,
		Nmin:      1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	run, err := newRun(&in, SEConfig{Seed: 3}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	ex := run.explorers[0]
	var th *thread
	for _, cand := range ex.threads {
		if cand.n == 2 {
			th = cand
		}
	}
	if th == nil {
		t.Fatal("no cardinality-2 thread")
	}
	visited := make(map[[2]int]bool)
	record := func() {
		var key [2]int
		k := 0
		for pos, sel := range th.selected {
			if sel {
				key[k] = pos
				k++
			}
		}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		visited[key] = true
	}
	record()
	for iter := 0; iter < 3000 && len(visited) < 6; iter++ {
		ex.step()
		record()
	}
	if len(visited) != 6 {
		t.Fatalf("visited only %d of 6 cardinality-2 states", len(visited))
	}
}

func TestStationaryFrequenciesMatchGibbs(t *testing.T) {
	// Time-reversibility end-to-end: the empirical state occupancy of one
	// cardinality thread must converge to the Gibbs distribution over its
	// states. Use a 2-of-3 space (3 states) with modest utilities.
	in := Instance{
		Sizes:     []int{10, 12, 14},
		Latencies: []float64{700, 800, 900},
		Alpha:     1,
		Capacity:  1000,
		Nmin:      1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	beta := 0.05 // gentle landscape so all states recur
	run, err := newRun(&in, SEConfig{Seed: 11, Beta: beta}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	ex := run.explorers[0]
	var th *thread
	for _, cand := range ex.threads {
		if cand.n == 2 {
			th = cand
		}
	}
	if th == nil {
		t.Fatal("no cardinality-2 thread")
	}
	// The three 2-subsets: {0,1}, {0,2}, {1,2} — identify by the missing
	// position.
	counts := make([]float64, 3)
	utils := make([]float64, 3)
	for missing := 0; missing < 3; missing++ {
		u := 0.0
		for pos := 0; pos < 3; pos++ {
			if pos != missing {
				u += in.Value(pos)
			}
		}
		utils[missing] = u
	}
	const iters = 60000
	for i := 0; i < iters; i++ {
		// Isolate the cardinality-2 chain: step only transitions of th by
		// directly emulating its dynamics (propose + always fire).
		ex.setTimer(th)
		if !th.proposalOK {
			continue
		}
		// Metropolis-style acceptance matching the race: the proposal
		// fires against the reverse move with probability
		// rate/(rate+revRate) = σ(βΔU) — equivalent stationary law.
		dU := th.dU
		pAccept := 1.0 / (1.0 + mathExpSafe(-beta*dU))
		if ex.rng.Float64() < pAccept {
			th.applySwap(run)
		}
		for pos := 0; pos < 3; pos++ {
			if !th.selected[pos] {
				counts[pos]++
			}
		}
	}
	p, err := StationaryDistribution(beta, utils)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		got := counts[i] / iters
		if math.Abs(got-p[i]) > 0.03 {
			t.Fatalf("state %d occupancy %.4f, Gibbs predicts %.4f", i, got, p[i])
		}
	}
}

func mathExpSafe(x float64) float64 {
	if x > 700 {
		return math.Inf(1)
	}
	if x < -700 {
		return 0
	}
	return math.Exp(x)
}
