package core

import (
	"fmt"
	"math"

	"mvcom/internal/randx"
)

// SEConfig tunes the Stochastic-Exploration algorithm (Alg. 1).
type SEConfig struct {
	// Beta is the log-sum-exp approximation parameter β (> 0). Larger β
	// shrinks the optimality loss (1/β)·log|F| but slows mixing
	// (Remark 2). The paper's default is 2.
	//
	// Unless DisableRateNormalization is set, β applies to utility
	// differences measured in units of the mean per-shard |value| of the
	// instance. Raw trace utilities are of order 10³–10⁶, at which a
	// literal exp(½β·ΔU) is both numerically meaningless and effectively
	// zero-temperature (the chain degenerates to greedy and Γ parallel
	// explorers all collapse onto one trajectory, contradicting the
	// stochastic behaviour of the paper's own Fig. 8); normalization
	// keeps the designed temperature scale-invariant.
	Beta float64
	// DisableRateNormalization applies β to raw utility differences
	// instead of value-scaled ones. The timer race still cannot overflow
	// (it runs in log space), but the chain becomes quasi-deterministic
	// at realistic utility scales.
	DisableRateNormalization bool
	// Tau is the conditional constant τ of the transition-rate design
	// (equation (7)). The paper's default is 0. Because the timer race is
	// resolved in log space, τ only shifts the virtual clock and never
	// under- or overflows.
	Tau float64
	// Gamma is the number of parallel exploration threads Γ (Fig. 8).
	// Each explorer runs an independent copy of the chain; the scheduler
	// reports the best solution across explorers after every round.
	// Default 1.
	Gamma int
	// MaxIters caps the number of transition rounds. Default 20000.
	MaxIters int
	// ConvergenceWindow stops the run once the best utility has not
	// improved for this many consecutive rounds ("an empirical number of
	// running iterations"). Default 400.
	ConvergenceWindow int
	// SwapRetries bounds the resampling attempts Set-timer makes to find
	// a capacity-feasible swap for a solution thread. Default 8.
	SwapRetries int
	// InitRetries bounds the attempts Initialization (Alg. 2) makes to
	// draw a capacity-feasible solution of each cardinality before
	// marking that cardinality inactive. Default 200.
	InitRetries int
	// MaxCandidates, when positive, caps how many live candidates the
	// online algorithm will accept: once the candidate set reaches this
	// size, further join events are ignored — Alg. 1 lines 29–30 ("once
	// the final committee receives more than a specified maximum
	// percentage Nmax of all member committees, stop listening to the
	// member committees newly arrived"). Zero means unlimited.
	MaxCandidates int
	// MaxThreads caps the number of solution threads per explorer. Alg. 1
	// nominally keeps one thread per cardinality n ∈ {1..|I|−1}; for
	// hundreds of shards that spreads the transition budget over hundreds
	// of subproblems of which only the cardinalities near the capacity
	// knee matter. When |I|−1 exceeds this cap the explorer keeps an
	// evenly spaced lattice of cardinalities instead (the utility is
	// smooth in n, so the lattice loses at most a few shards of
	// granularity). Default 64.
	MaxThreads int
	// Seed drives all randomness. Explorers split independent streams
	// from it.
	Seed int64
}

func (c SEConfig) withDefaults() SEConfig {
	if c.Beta <= 0 {
		c.Beta = 2
	}
	if c.Gamma <= 0 {
		c.Gamma = 1
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 20000
	}
	if c.ConvergenceWindow <= 0 {
		c.ConvergenceWindow = 400
	}
	if c.SwapRetries <= 0 {
		c.SwapRetries = 8
	}
	if c.InitRetries <= 0 {
		c.InitRetries = 200
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	return c
}

// TracePoint records the best-so-far utility after a transition round; the
// sequence of points is the convergence curve plotted in Figs. 8–14.
type TracePoint struct {
	Iteration int
	Utility   float64
}

// SE is the online distributed Stochastic-Exploration solver.
type SE struct {
	cfg SEConfig
}

// NewSE returns a solver with the given configuration.
func NewSE(cfg SEConfig) *SE {
	return &SE{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (se *SE) Config() SEConfig { return se.cfg }

// Solve runs the SE algorithm on a static instance and returns the best
// feasible solution found together with its convergence trace.
func (se *SE) Solve(in Instance) (Solution, []TracePoint, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, nil, err
	}
	run, err := newRun(&in, se.cfg)
	if err != nil {
		return Solution{}, nil, err
	}
	if sol, done := run.trivial(); done {
		return sol, []TracePoint{{Iteration: 0, Utility: sol.Utility}}, nil
	}
	trace := run.loop(nil)
	sol, err := run.best()
	if err != nil {
		return Solution{}, trace, err
	}
	return sol, trace, nil
}

// run is the shared machinery of Solve and SolveOnline: the candidate
// set, Γ explorers, and the global best tracker.
type run struct {
	in  *Instance
	cfg SEConfig

	candidates []int // instance indices of arrived shards
	explorers  []*explorer
	rootRNG    *randx.RNG

	// betaEff is the effective β used in timer rates: cfg.Beta divided by
	// the mean per-shard |value| unless normalization is disabled.
	betaEff float64

	bestUtil   float64
	bestSel    []bool // over candidate positions
	bestN      int
	haveBest   bool
	iterations int
}

func newRun(in *Instance, cfg SEConfig) (*run, error) {
	cands := in.Arrived()
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	r := &run{
		in:         in,
		cfg:        cfg,
		candidates: cands,
		rootRNG:    randx.New(cfg.Seed),
		bestUtil:   math.Inf(-1),
	}
	r.refreshBetaEff()
	r.explorers = make([]*explorer, cfg.Gamma)
	for g := range r.explorers {
		r.explorers[g] = newExplorer(r, r.rootRNG.Split())
	}
	return r, nil
}

// rateNormalization rescales the normalized temperature so that a typical
// improving swap (ΔU of a few tenths of the mean |value|) carries a
// transition-rate advantage of a few nats: strong enough to drive the
// chain uphill, weak enough that explorers keep diverging.
const rateNormalization = 8

// refreshBetaEff recomputes the effective β from the live candidate set;
// called at construction and after every dynamic event.
func (r *run) refreshBetaEff() {
	r.betaEff = r.cfg.Beta
	if r.cfg.DisableRateNormalization || len(r.candidates) == 0 {
		return
	}
	var absSum float64
	for _, i := range r.candidates {
		absSum += math.Abs(r.in.Value(i))
	}
	if scale := absSum / float64(len(r.candidates)); scale > 0 {
		r.betaEff = rateNormalization * r.cfg.Beta / scale
	}
}

// trivial handles the bootstrap condition of Alg. 1 line 1: the stochastic
// search only starts once the arrived shards exceed both Nmin and the
// block capacity; otherwise the final committee simply permits everything
// that arrived.
func (r *run) trivial() (Solution, bool) {
	if r.in.TotalArrivedSize() > r.in.Capacity {
		return Solution{}, false
	}
	if len(r.candidates) < r.in.Nmin {
		return Solution{}, false
	}
	sel := make([]bool, r.in.NumShards())
	for _, i := range r.candidates {
		sel[i] = true
	}
	return NewSolution(r.in, sel), true
}

// loop advances all explorers in lockstep rounds until convergence or the
// iteration cap, recording the global best utility after each round. The
// onRound hook, when non-nil, runs before each round and lets the online
// wrapper inject join/leave events; it returns true to force a trace point
// even without improvement.
func (r *run) loop(onRound func(iter int) bool) []TracePoint {
	trace := make([]TracePoint, 0, 256)
	sinceImprove := 0
	for iter := 1; iter <= r.cfg.MaxIters; iter++ {
		forcePoint := false
		if onRound != nil {
			forcePoint = onRound(iter)
		}
		improved := false
		for _, ex := range r.explorers {
			if ex.step() {
				improved = true
			}
		}
		r.iterations = iter
		if improved {
			sinceImprove = 0
		} else {
			sinceImprove++
		}
		if improved || forcePoint || len(trace) == 0 {
			trace = append(trace, TracePoint{Iteration: iter, Utility: r.bestObserved()})
		}
		if onRound == nil && sinceImprove >= r.cfg.ConvergenceWindow {
			break
		}
	}
	trace = append(trace, TracePoint{Iteration: r.iterations, Utility: r.bestObserved()})
	return trace
}

// bestObserved returns the best utility seen so far, or -Inf.
func (r *run) bestObserved() float64 { return r.bestUtil }

// offerBest lets explorers report candidate-best solutions that satisfy
// Nmin; the run keeps the max (Alg. 1 lines 22–27).
func (r *run) offerBest(sel []bool, n int, util float64) bool {
	if n < r.in.Nmin {
		return false
	}
	if r.haveBest && util <= r.bestUtil {
		return false
	}
	if r.bestSel == nil || len(r.bestSel) != len(sel) {
		r.bestSel = make([]bool, len(sel))
	}
	copy(r.bestSel, sel)
	r.bestUtil = util
	r.bestN = n
	r.haveBest = true
	return true
}

// best converts the best candidate-space selection into an instance-space
// Solution. It returns ErrInfeasible when no thread ever produced a
// selection meeting Nmin.
func (r *run) best() (Solution, error) {
	if !r.haveBest {
		return Solution{}, fmt.Errorf("%w: |I|=%d Nmin=%d capacity=%d",
			ErrInfeasible, len(r.candidates), r.in.Nmin, r.in.Capacity)
	}
	sel := make([]bool, r.in.NumShards())
	for pos, on := range r.bestSel {
		if on {
			sel[r.candidates[pos]] = true
		}
	}
	sol := NewSolution(r.in, sel)
	sol.Iterations = r.iterations
	return sol, nil
}

// explorer runs one independent copy of the designed Markov chain: one
// solution thread f_n per cardinality n ∈ {1..K−1} (Alg. 1 line 3), each
// holding an exponential timer whose rate follows equation (8).
type explorer struct {
	run *run
	rng *randx.RNG

	threads []*thread
	// logRates is scratch space for the per-round timer race.
	logRates []float64
}

// thread is one parallel feasible solution f_n with its proposed swap.
type thread struct {
	n      int
	active bool

	selected []bool // over candidate positions
	selIdx   []int  // positions currently selected
	unselIdx []int  // positions currently unselected
	posInSel []int  // position → index in selIdx (or -1)
	posInUns []int  // position → index in unselIdx (or -1)

	load int
	util float64

	// Current proposal (Set-timer, Alg. 3): swap out selIdx ĩ for
	// unselected ï. proposalOK is false when no feasible swap was found
	// within the retry budget — the thread's timer never fires this
	// round.
	out, in    int
	dU         float64
	proposalOK bool
}

func newExplorer(r *run, rng *randx.RNG) *explorer {
	ex := &explorer{run: r, rng: rng}
	k := len(r.candidates)
	cards := threadCardinalities(k, r.cfg.MaxThreads)
	ex.threads = make([]*thread, 0, len(cards))
	for _, n := range cards {
		th := ex.initThread(n)
		ex.threads = append(ex.threads, th)
		if th.active {
			r.offerBest(th.selected, th.n, th.util)
		}
	}
	// The full selection f_|I| participates in the final arg-max when Ĉ
	// permits it (Alg. 1 line 25).
	full := make([]bool, k)
	load, util := 0, 0.0
	for pos := range full {
		full[pos] = true
		load += r.in.Sizes[r.candidates[pos]]
		util += r.in.Value(r.candidates[pos])
	}
	if load <= r.in.Capacity {
		r.offerBest(full, k, util)
	}
	ex.logRates = make([]float64, len(ex.threads))
	for _, th := range ex.threads {
		if th.active {
			ex.setTimer(th)
		}
	}
	return ex
}

// threadCardinalities returns the cardinalities that receive a solution
// thread: all of 1..k−1 when they fit under cap, otherwise an evenly
// spaced lattice of cap values covering [1, k−1].
func threadCardinalities(k, maxThreads int) []int {
	total := k - 1
	if total <= 0 {
		return nil
	}
	if total <= maxThreads {
		out := make([]int, total)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := make([]int, 0, maxThreads)
	last := 0
	for i := 0; i < maxThreads; i++ {
		n := 1 + i*(total-1)/(maxThreads-1)
		if n != last {
			out = append(out, n)
			last = n
		}
	}
	return out
}

// initThread is Initialization() (Alg. 2): draw random n-subsets until one
// satisfies the capacity constraint, giving up after InitRetries attempts
// (the cardinality is then inactive — equivalent to the trimmed state
// space of Section V).
func (ex *explorer) initThread(n int) *thread {
	r := ex.run
	k := len(r.candidates)
	th := &thread{n: n}
	for attempt := 0; attempt < r.cfg.InitRetries; attempt++ {
		pick, err := ex.rng.SampleWithoutReplacement(k, n)
		if err != nil {
			break
		}
		load := 0
		for _, pos := range pick {
			load += r.in.Sizes[r.candidates[pos]]
		}
		if load > r.in.Capacity {
			continue
		}
		th.adopt(r, pick)
		th.active = true
		return th
	}
	return th
}

// adopt installs a selection given by candidate positions.
func (th *thread) adopt(r *run, pick []int) {
	k := len(r.candidates)
	th.selected = make([]bool, k)
	th.posInSel = make([]int, k)
	th.posInUns = make([]int, k)
	for i := range th.posInSel {
		th.posInSel[i] = -1
		th.posInUns[i] = -1
	}
	th.selIdx = th.selIdx[:0]
	th.unselIdx = th.unselIdx[:0]
	th.load = 0
	th.util = 0
	for _, pos := range pick {
		th.selected[pos] = true
	}
	for pos := 0; pos < k; pos++ {
		if th.selected[pos] {
			th.posInSel[pos] = len(th.selIdx)
			th.selIdx = append(th.selIdx, pos)
			th.load += r.in.Sizes[r.candidates[pos]]
			th.util += r.in.Value(r.candidates[pos])
		} else {
			th.posInUns[pos] = len(th.unselIdx)
			th.unselIdx = append(th.unselIdx, pos)
		}
	}
}

// setTimer is Set-timer() (Alg. 3): choose a random selected shard ĩ and a
// random unselected shard ï, estimate the utility after swapping, and arm
// the exponential timer with mean exp(τ − ½β(U_f' − U_f)) / (|I_j| − n).
// Swaps that would violate the capacity constraint are resampled a bounded
// number of times.
func (ex *explorer) setTimer(th *thread) {
	r := ex.run
	th.proposalOK = false
	if len(th.selIdx) == 0 || len(th.unselIdx) == 0 {
		return
	}
	for attempt := 0; attempt < r.cfg.SwapRetries; attempt++ {
		outPos := th.selIdx[ex.rng.Intn(len(th.selIdx))]
		inPos := th.unselIdx[ex.rng.Intn(len(th.unselIdx))]
		iOut := r.candidates[outPos]
		iIn := r.candidates[inPos]
		if th.load-r.in.Sizes[iOut]+r.in.Sizes[iIn] > r.in.Capacity {
			continue
		}
		th.out = outPos
		th.in = inPos
		th.dU = r.in.Value(iIn) - r.in.Value(iOut)
		th.proposalOK = true
		return
	}
}

// logRate returns the log timer rate of the thread's armed proposal:
// log rate = log(|I_j| − n) − τ + ½β·ΔU (the reciprocal of equation (8)'s
// mean). Inactive or proposal-less threads never fire (−Inf).
func (ex *explorer) logRate(th *thread) float64 {
	if !th.active || !th.proposalOK {
		return math.Inf(-1)
	}
	k := len(ex.run.candidates)
	return math.Log(float64(k-th.n)) - ex.run.cfg.Tau + 0.5*ex.run.betaEff*th.dU
}

// step performs one transition round: every armed timer races (the
// Gumbel-max resolution of the exponential race), the winning thread swaps
// its proposed pair (State Transit), and the RESET broadcast re-arms every
// timer (Alg. 1 lines 13–20). It reports whether the global best improved.
func (ex *explorer) step() bool {
	for i, th := range ex.threads {
		ex.logRates[i] = ex.logRate(th)
	}
	winner, _, err := ex.rng.MinExponentialLog(ex.logRates)
	if err != nil {
		// No timer can fire: all threads inactive or proposal-less.
		// Re-arm and hope a future round finds feasible swaps.
		for _, th := range ex.threads {
			if th.active {
				ex.setTimer(th)
			}
		}
		return false
	}
	th := ex.threads[winner]
	th.applySwap(ex.run)
	improved := ex.run.offerBest(th.selected, th.n, th.util)
	// RESET: every solution thread refreshes its timer with the updated
	// utilities.
	for _, t := range ex.threads {
		if t.active {
			ex.setTimer(t)
		}
	}
	return improved
}

// applySwap executes the armed proposal: x_ĩ ← 0, x_ï ← 1.
func (th *thread) applySwap(r *run) {
	outPos, inPos := th.out, th.in
	iOut := r.candidates[outPos]
	iIn := r.candidates[inPos]

	th.selected[outPos] = false
	th.selected[inPos] = true
	th.load += r.in.Sizes[iIn] - r.in.Sizes[iOut]
	th.util += th.dU

	// Maintain the index lists in O(1) by swapping with the tail.
	si := th.posInSel[outPos]
	last := th.selIdx[len(th.selIdx)-1]
	th.selIdx[si] = last
	th.posInSel[last] = si
	th.selIdx = th.selIdx[:len(th.selIdx)-1]
	th.posInSel[outPos] = -1

	ui := th.posInUns[inPos]
	lastU := th.unselIdx[len(th.unselIdx)-1]
	th.unselIdx[ui] = lastU
	th.posInUns[lastU] = ui
	th.unselIdx = th.unselIdx[:len(th.unselIdx)-1]
	th.posInUns[inPos] = -1

	th.posInSel[inPos] = len(th.selIdx)
	th.selIdx = append(th.selIdx, inPos)
	th.posInUns[outPos] = len(th.unselIdx)
	th.unselIdx = append(th.unselIdx, outPos)
}
