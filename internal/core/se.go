package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mvcom/internal/obs"
	"mvcom/internal/randx"
	"mvcom/internal/seobs"
)

// SEConfig tunes the Stochastic-Exploration algorithm (Alg. 1).
type SEConfig struct {
	// Beta is the log-sum-exp approximation parameter β (> 0). Larger β
	// shrinks the optimality loss (1/β)·log|F| but slows mixing
	// (Remark 2). The paper's default is 2.
	//
	// Unless DisableRateNormalization is set, β applies to utility
	// differences measured in units of the mean per-shard |value| of the
	// instance. Raw trace utilities are of order 10³–10⁶, at which a
	// literal exp(½β·ΔU) is both numerically meaningless and effectively
	// zero-temperature (the chain degenerates to greedy and Γ parallel
	// explorers all collapse onto one trajectory, contradicting the
	// stochastic behaviour of the paper's own Fig. 8); normalization
	// keeps the designed temperature scale-invariant.
	Beta float64
	// DisableRateNormalization applies β to raw utility differences
	// instead of value-scaled ones. The timer race still cannot overflow
	// (it runs in log space), but the chain becomes quasi-deterministic
	// at realistic utility scales.
	DisableRateNormalization bool
	// Tau is the conditional constant τ of the transition-rate design
	// (equation (7)). The paper's default is 0. Because the timer race is
	// resolved in log space, τ only shifts the virtual clock and never
	// under- or overflows.
	Tau float64
	// Gamma is the number of parallel exploration threads Γ (Fig. 8).
	// Each explorer runs an independent copy of the chain; the scheduler
	// reports the best solution across explorers after every round.
	// Default 1.
	Gamma int
	// Workers bounds how many OS-level worker goroutines advance the Γ
	// explorers between synchronization points. 0 (the default) means
	// GOMAXPROCS; 1 forces the serial kernel; values above Γ are capped
	// at Γ (one goroutine per explorer is the maximum useful
	// parallelism). Because every explorer owns a split RNG stream and
	// all cross-explorer state is merged deterministically at sync
	// points, results are bit-identical for every Workers value.
	Workers int
	// MaxIters caps the number of transition rounds. Default 20000.
	MaxIters int
	// ConvergenceWindow stops the run once the best utility has not
	// improved for this many consecutive rounds ("an empirical number of
	// running iterations"). Default 400.
	ConvergenceWindow int
	// SwapRetries bounds the resampling attempts Set-timer makes to find
	// a capacity-feasible swap for a solution thread. Default 8.
	SwapRetries int
	// InitRetries bounds the attempts Initialization (Alg. 2) makes to
	// draw a capacity-feasible solution of each cardinality before
	// marking that cardinality inactive. Default 200.
	InitRetries int
	// MaxCandidates, when positive, caps how many live candidates the
	// online algorithm will accept: once the candidate set reaches this
	// size, further join events are ignored — Alg. 1 lines 29–30 ("once
	// the final committee receives more than a specified maximum
	// percentage Nmax of all member committees, stop listening to the
	// member committees newly arrived"). Zero means unlimited.
	MaxCandidates int
	// MaxThreads caps the number of solution threads per explorer. Alg. 1
	// nominally keeps one thread per cardinality n ∈ {1..|I|−1}; for
	// hundreds of shards that spreads the transition budget over hundreds
	// of subproblems of which only the cardinalities near the capacity
	// knee matter. When |I|−1 exceeds this cap the explorer keeps an
	// evenly spaced lattice of cardinalities instead (the utility is
	// smooth in n, so the lattice loses at most a few shards of
	// granularity). Default 64.
	MaxThreads int
	// WarmStart lets SolveFrom seed every explorer's solution threads
	// from a previous epoch's selection projected onto the surviving
	// candidate set (departed shards are trimmed exactly as a leave event
	// trims the state space). Warm starting only changes the chain's
	// initial state, never its transition rates, so the stationary
	// distribution — and therefore the quality of the converged answer —
	// is untouched; consecutive epochs with overlapping candidate sets
	// just reach it in fewer rounds. When false, SolveFrom ignores the
	// previous solution and behaves exactly like Solve.
	WarmStart bool
	// Adaptive enables the annealed β/Γ schedule: when the run stops
	// improving for long stretches the coordinator raises the effective β
	// (sharpening the Gibbs target) and reallocates the explorer threads
	// into a cardinality band around the incumbent best |f| (spending the
	// transition budget where the capacity knee is), driven by the same
	// merge-time signals internal/seobs measures (stagnation length and
	// the windowed swap-accept rate). Decisions are taken only at segment
	// merges from merged coordinator state, so adaptive runs remain
	// bit-identical across Workers counts; any dynamic join/leave resets
	// the schedule to stage 0 and restores the full thread lattice. Off by
	// default — the fixed schedule and its determinism contract are
	// untouched.
	Adaptive bool
	// Seed drives all randomness. Explorers split independent streams
	// from it.
	Seed int64
	// Obs, when non-nil, receives runtime telemetry: round/swap/RESET
	// counters, the best-utility gauge, and structured trace events.
	// Explorers tally plain ints in the hot loop and flush them only at
	// segment merges, so the overhead with Obs attached stays within the
	// ci.sh benchmark gate (≤ 3%); nil disables every hook.
	Obs *obs.SEObserver
	// Diag, when non-nil, receives convergence diagnostics: windowed
	// per-thread utility series, swap-acceptance/RESET rates,
	// time-to-ε-of-best, the empirical d_TV estimator on small
	// instances, and the autocorrelation mixing proxy (see
	// internal/seobs). Like Obs it is nil-is-off and flushed only at
	// segment merges; the same ≤3% benchmark gate covers both. A Diag
	// serves one run at a time — it is re-bound by each Solve.
	Diag *seobs.Diag
}

func (c SEConfig) withDefaults() SEConfig {
	if c.Beta <= 0 {
		c.Beta = 2
	}
	if c.Gamma <= 0 {
		c.Gamma = 1
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 20000
	}
	if c.ConvergenceWindow <= 0 {
		c.ConvergenceWindow = 400
	}
	if c.SwapRetries <= 0 {
		c.SwapRetries = 8
	}
	if c.InitRetries <= 0 {
		c.InitRetries = 200
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 64
	}
	return c
}

// resolveWorkers maps the Workers knob to an actual goroutine count: 0
// (auto) takes GOMAXPROCS, and no more than one worker per explorer is
// ever useful.
func resolveWorkers(workers, gamma int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > gamma {
		workers = gamma
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// TracePoint records the best-so-far utility after a transition round; the
// sequence of points is the convergence curve plotted in Figs. 8–14.
type TracePoint struct {
	Iteration int
	Utility   float64
}

// SE is the online distributed Stochastic-Exploration solver.
type SE struct {
	cfg SEConfig
}

// NewSE returns a solver with the given configuration.
func NewSE(cfg SEConfig) *SE {
	return &SE{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (se *SE) Config() SEConfig { return se.cfg }

// Solve runs the SE algorithm on a static instance and returns the best
// feasible solution found together with its convergence trace.
func (se *SE) Solve(in Instance) (Solution, []TracePoint, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, nil, err
	}
	run, err := newRun(&in, se.cfg)
	if err != nil {
		return Solution{}, nil, err
	}
	if sol, done := run.trivial(); done {
		return sol, []TracePoint{{Iteration: 0, Utility: sol.Utility}}, nil
	}
	trace := run.loop(nil)
	sol, err := run.best()
	if err != nil {
		return Solution{}, trace, err
	}
	return sol, trace, nil
}

// syncRounds is the batch length R: how many transition rounds every
// explorer advances between synchronization points. Within a batch the
// explorers are fully independent (own RNG stream, own threads, own local
// best), so they run on separate goroutines with no shared mutable state;
// at the sync point the coordinator merges their improvement logs in a
// deterministic order. 64 rounds amortize the goroutine handoff well below
// the per-round cost while keeping the convergence check responsive (the
// default window is 400 rounds).
const syncRounds = 64

// bestSnapshot is the atomically published view of the global best. The
// struct and its sel slice are immutable after publication, so readers on
// any goroutine (Engine.BestUtility under a concurrently stepping kernel,
// monitoring hooks) need no lock.
type bestSnapshot struct {
	util float64
	sel  []bool // over candidate positions; never mutated after publish
	n    int
}

// run is the shared machinery of Solve and SolveOnline: the candidate
// set, Γ explorers, and the global best tracker.
type run struct {
	in  *Instance
	cfg SEConfig

	candidates []int // instance indices of arrived shards
	explorers  []*explorer
	rootRNG    *randx.RNG
	workers    int
	obs        *obs.SEObserver
	diag       *seobs.Diag
	// diagScratch is the reusable per-cardinality window buffer handed
	// to Diag.Flush (which copies it).
	diagScratch []seobs.ThreadPoint

	// vals and sizes cache Value(i) and Sizes[i] per candidate position so
	// the hot loop never chases the instance indirection; rebuilt on every
	// dynamic event.
	vals  []float64
	sizes []int
	// minLoad[n] is the minimum achievable load of an n-subset (sorted
	// prefix sums); the exact infeasibility gate of initThread.
	// sizeOrder is the matching size argsort of candidate positions.
	minLoad   []int
	sizeOrder []int

	// cards is the live thread-cardinality lattice shared by every
	// explorer (one solution thread f_n per entry, identical layout across
	// explorers — the diagnostics rely on index alignment). The adaptive
	// schedule narrows it to a band around the incumbent best; dynamic
	// events restore the full lattice.
	cards []int

	// betaEff is the effective β used in timer rates: cfg.Beta divided by
	// the mean per-shard |value| unless normalization is disabled, times
	// the adaptive schedule's boost. halfBeta caches ½·betaEff for the
	// per-round rate computation.
	betaEff  float64
	halfBeta float64
	// betaBoost is the adaptive schedule's multiplicative β escalation
	// (1 under the fixed schedule).
	betaBoost float64

	// expVals and invExpVals cache exp(½β·(v_pos − v_max)) and its
	// reciprocal per candidate position, centered at the maximum value so
	// every entry lies in (0, 1] and the ratio trick cannot overflow: a
	// proposal's race weight is expRateBase·expVals[in]·invExpVals[out] =
	// exp(rateBase + ½β·ΔU) with zero math.Exp calls in the round loop.
	// Rebuilt whenever β_eff or the candidate set changes.
	expVals    []float64
	invExpVals []float64
	// linearRace is true when the cached-exponential race cannot under- or
	// overflow (½β·(v_max − v_min) plus the rate-base magnitude stays well
	// inside float64 range); otherwise the kernel falls back to the
	// log-space race (raw-β runs at trace utility scale land here).
	linearRace bool

	// sched is the adaptive β/Γ controller (nil under the fixed
	// schedule). It is fed merged coordinator state only — never the
	// diagnostics — so attaching Obs/Diag cannot change the trajectory.
	sched *seobs.Controller

	// global is the coordinator's view of the best solution; it is only
	// touched between segments (single-threaded). snap is the published
	// lock-free copy for cross-goroutine readers.
	global struct {
		util float64
		sel  []bool
		n    int
		have bool
	}
	// globalDirty marks that global changed since the last publish, so
	// no-improvement merges (the common case when an Engine steps round by
	// round) skip the snapshot allocation.
	globalDirty bool
	snap        atomic.Pointer[bestSnapshot]

	mergeCursors []int
	iterations   int
}

func newRun(in *Instance, cfg SEConfig) (*run, error) {
	cands := in.Arrived()
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	r := &run{
		in:         in,
		cfg:        cfg,
		candidates: cands,
		rootRNG:    randx.New(cfg.Seed),
		workers:    resolveWorkers(cfg.Workers, cfg.Gamma),
		obs:        cfg.Obs,
	}
	r.global.util = math.Inf(-1)
	r.betaBoost = 1
	r.cards = threadCardinalities(len(cands), cfg.MaxThreads)
	if cfg.Adaptive {
		r.sched = seobs.NewController(seobs.ControllerConfig{})
	}
	r.refreshCandidateCaches()
	r.refreshBetaEff()
	r.explorers = make([]*explorer, cfg.Gamma)
	for g := range r.explorers {
		r.explorers[g] = newExplorer(r, r.rootRNG.Split())
	}
	r.mergeCursors = make([]int, len(r.explorers))
	for _, ex := range r.explorers {
		r.adoptLocal(ex)
	}
	// The full selection f_|I| participates in the final arg-max when Ĉ
	// permits it (Alg. 1 line 25). It does not depend on any explorer, so
	// it is evaluated once per solve here rather than once per explorer.
	r.offerFullIfFeasible()
	r.publishBest()
	r.bindDiag()
	return r, nil
}

// bindDiag attaches the configured convergence diagnostics to a fresh
// run: binds the run description, installs per-explorer probes, and
// seeds the improvement history with the initial best.
func (r *run) bindDiag() {
	if r.cfg.Diag == nil {
		return
	}
	r.diag = r.cfg.Diag
	r.diag.Bind(r.diagInfo())
	r.attachProbes()
	if r.global.have {
		r.diag.RecordImprovement(0, r.global.util)
	}
}

// diagInfo describes the live candidate set for the diagnostics; the
// slices are copied because dynamic events rebuild the run's caches.
func (r *run) diagInfo() seobs.RunInfo {
	return seobs.RunInfo{
		K:        len(r.candidates),
		Gamma:    len(r.explorers),
		Beta:     r.cfg.Beta,
		BetaEff:  r.betaEff,
		Capacity: r.in.Capacity,
		Nmin:     r.in.Nmin,
		Sizes:    append([]int(nil), r.sizes...),
		Values:   append([]float64(nil), r.vals...),
		Cards:    append([]int(nil), r.cards...),
	}
}

// attachProbes (re)creates every explorer's probe against the diag's
// current binding, seeding the incremental selection masks. Runs at
// construction and after dynamic events, never during a segment.
func (r *run) attachProbes() {
	for g, ex := range r.explorers {
		p := r.diag.NewProbe(g, len(ex.threads))
		ex.probe = p
		if !p.TracksVisits() {
			continue
		}
		for i, th := range ex.threads {
			var mask uint64
			for pos, on := range th.selected {
				if on {
					mask |= 1 << uint(pos)
				}
			}
			p.SetThread(i, mask, th.active)
		}
	}
}

// rateNormalization rescales the normalized temperature so that a typical
// improving swap (ΔU of a few tenths of the mean |value|) carries a
// transition-rate advantage of a few nats: strong enough to drive the
// chain uphill, weak enough that explorers keep diverging.
const rateNormalization = 8

// refreshCandidateCaches rebuilds the per-position value/size caches;
// called at construction and after every dynamic event.
func (r *run) refreshCandidateCaches() {
	k := len(r.candidates)
	r.vals = make([]float64, k)
	r.sizes = make([]int, k)
	for pos, idx := range r.candidates {
		r.vals[pos] = r.in.Value(idx)
		r.sizes[pos] = r.in.Sizes[idx]
	}
	// minLoad[n] is the smallest possible load of an n-subset (prefix
	// sums of the sorted sizes): minLoad[n] > Capacity proves cardinality
	// n infeasible, letting initThread skip its retry budget entirely.
	// sizeOrder is the matching argsort — its first n positions are a
	// guaranteed-feasible n-subset whenever minLoad[n] ≤ Capacity.
	r.sizeOrder = make([]int, k)
	for pos := range r.sizeOrder {
		r.sizeOrder[pos] = pos
	}
	sort.SliceStable(r.sizeOrder, func(a, b int) bool {
		return r.sizes[r.sizeOrder[a]] < r.sizes[r.sizeOrder[b]]
	})
	r.minLoad = make([]int, k+1)
	for i, pos := range r.sizeOrder {
		r.minLoad[i+1] = r.minLoad[i] + r.sizes[pos]
	}
}

// refreshBetaEff recomputes the effective β from the live candidate set
// and the adaptive boost, then rebuilds the cached exponentials the race
// evaluates from; called at construction, after every dynamic event
// (after refreshCandidateCaches), and on every schedule escalation.
func (r *run) refreshBetaEff() {
	r.betaEff = r.cfg.Beta
	if !r.cfg.DisableRateNormalization && len(r.vals) > 0 {
		var absSum float64
		for _, v := range r.vals {
			absSum += math.Abs(v)
		}
		if scale := absSum / float64(len(r.vals)); scale > 0 {
			r.betaEff = rateNormalization * r.cfg.Beta / scale
		}
	}
	r.betaEff *= r.betaBoost
	r.halfBeta = 0.5 * r.betaEff
	r.refreshRateCaches()
}

// linearRaceBudget bounds the exponent magnitude the linear-space race
// may accumulate (weight spread plus rate base plus the thread-count sum
// headroom); float64 overflows just above e^709, so 650 leaves room for
// summing MaxThreads worst-case weights.
const linearRaceBudget = 650

// refreshRateCaches rebuilds expVals/invExpVals — the per-candidate
// cached exponentials exp(½β·(v − v_max)) the fused race multiplies
// instead of exponentiating — and decides whether the linear-space race
// is numerically safe for the current β_eff and value spread.
func (r *run) refreshRateCaches() {
	k := len(r.vals)
	if cap(r.expVals) < k {
		r.expVals = make([]float64, k)
		r.invExpVals = make([]float64, k)
	}
	r.expVals = r.expVals[:k]
	r.invExpVals = r.invExpVals[:k]
	if k == 0 {
		r.linearRace = false
		return
	}
	vmax, vmin := r.vals[0], r.vals[0]
	for _, v := range r.vals[1:] {
		if v > vmax {
			vmax = v
		}
		if v < vmin {
			vmin = v
		}
	}
	spread := r.halfBeta * (vmax - vmin)
	r.linearRace = spread+math.Abs(r.cfg.Tau)+math.Log(float64(k)+1) < linearRaceBudget
	if !r.linearRace {
		return
	}
	for pos, v := range r.vals {
		e := math.Exp(r.halfBeta * (v - vmax))
		r.expVals[pos] = e
		r.invExpVals[pos] = 1 / e
	}
}

// trivial handles the bootstrap condition of Alg. 1 line 1: the stochastic
// search only starts once the arrived shards exceed both Nmin and the
// block capacity; otherwise the final committee simply permits everything
// that arrived.
func (r *run) trivial() (Solution, bool) {
	if r.in.TotalArrivedSize() > r.in.Capacity {
		return Solution{}, false
	}
	if len(r.candidates) < r.in.Nmin {
		return Solution{}, false
	}
	sel := make([]bool, r.in.NumShards())
	for _, i := range r.candidates {
		sel[i] = true
	}
	return NewSolution(r.in, sel), true
}

// loop advances all explorers in synchronized batches until convergence or
// the iteration cap, recording the global best utility after each round it
// improved. The eventCursor, when non-nil, injects join/leave events at
// their exact iterations (segments are truncated so no event falls inside
// a batch) and disables early convergence stopping — the online run keeps
// exploring through the full iteration budget, exactly like the previous
// per-round online loop.
func (r *run) loop(ev *eventCursor) []TracePoint {
	trace := make([]TracePoint, 0, 256)
	sinceImprove := 0
	iter := 0
	for iter < r.cfg.MaxIters {
		next := iter + syncRounds
		if next > r.cfg.MaxIters {
			next = r.cfg.MaxIters
		}
		forcedRound := -1
		if ev != nil {
			// Events due at round iter+1 fire before that round is
			// stepped, matching the old hook that ran at the top of every
			// round; the segment is then bounded so the next pending event
			// still lands on its exact round.
			if ev.applyDue(r, iter+1) {
				forcedRound = iter + 1
			}
			if bound := ev.nextAt() - 1; bound >= iter+1 && bound < next {
				next = bound
			}
		}
		r.stepSegment(iter, next)
		stopRound, stopped, _ := r.mergeSegment(iter, next, forcedRound, &trace, &sinceImprove, ev == nil)
		if stopped {
			iter = stopRound
			break
		}
		iter = next
	}
	r.iterations = iter
	trace = append(trace, TracePoint{Iteration: iter, Utility: r.globalUtil()})
	r.diag.Finalize()
	return trace
}

// stepSegment advances every explorer through transition rounds (a, b].
// With one worker (or one explorer) it runs inline; otherwise a small
// worker pool picks explorers off an atomic counter. Explorers share no
// mutable state during a segment — they read the run's frozen caches and
// write only their own fields — so the only synchronization is the final
// WaitGroup barrier.
func (r *run) stepSegment(a, b int) {
	if b <= a {
		return
	}
	if r.workers <= 1 || len(r.explorers) <= 1 {
		for _, ex := range r.explorers {
			ex.stepBatch(a, b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= len(r.explorers) {
					return
				}
				r.explorers[g].stepBatch(a, b)
			}
		}()
	}
	wg.Wait()
}

// mergeSegment folds the explorers' improvement logs for rounds (a, b]
// into the global best in deterministic (round, explorer) order — the
// same order the serial kernel would have observed — so traces and
// results are bit-identical for every Workers value. It walks the rounds
// to maintain the convergence window exactly; when the window closes at
// round t* < b, improvements recorded after t* are discarded, as if the
// run had stopped there. forcedRound, when ≥ 0, forces a trace point at
// that round (online event markers). Returns the stop round, whether the
// window closed, and whether the global best improved at all.
func (r *run) mergeSegment(a, b, forcedRound int, trace *[]TracePoint, sinceImprove *int, allowStop bool) (int, bool, bool) {
	cur := r.mergeCursors
	for g := range cur {
		cur[g] = 0
	}
	stopRound, stopped, anyImproved := b, false, false
	adopted := int64(0)
	for round := a + 1; round <= b && !stopped; round++ {
		improved := false
		for g, ex := range r.explorers {
			for cur[g] < len(ex.events) && ex.events[cur[g]].round == round {
				e := ex.events[cur[g]]
				cur[g]++
				if !r.global.have || e.util > r.global.util {
					r.global.util, r.global.sel, r.global.n, r.global.have = e.util, e.sel, e.n, true
					r.globalDirty = true
					improved = true
					adopted++
					if r.obs != nil {
						r.obs.Trace.Emit(obs.EvSwapAccept, "se", e.util, "")
					}
					if r.diag != nil {
						r.diag.RecordImprovement(round, e.util)
					}
				}
			}
		}
		if improved {
			anyImproved = true
			*sinceImprove = 0
		} else {
			*sinceImprove++
		}
		if trace != nil && (improved || round == forcedRound || len(*trace) == 0) {
			*trace = append(*trace, TracePoint{Iteration: round, Utility: r.globalUtil()})
		}
		if allowStop && *sinceImprove >= r.cfg.ConvergenceWindow {
			stopRound, stopped = round, true
		}
	}
	for _, ex := range r.explorers {
		// Recycle the segment's selection snapshots that nothing retains:
		// a snapshot stays out of the pool only while it is the global
		// best or the explorer's local best (the last event). Keeps the
		// steady-state round loop allocation-free.
		for _, e := range ex.events {
			if !sameSnapshot(e.sel, r.global.sel) && !sameSnapshot(e.sel, ex.bestSel) {
				ex.selPool = append(ex.selPool, e.sel)
			}
		}
		ex.events = ex.events[:0]
	}
	r.publishBest()
	var swaps, resets, starved, raceErrs int64
	if r.obs != nil || r.diag != nil || r.sched != nil {
		// Collect the per-explorer tallies once for every consumer; the
		// explorers are quiescent between segments.
		for _, ex := range r.explorers {
			swaps += ex.statSwaps
			resets += ex.statResets
			starved += ex.statStarved
			raceErrs += ex.statRaceErr
			ex.statSwaps, ex.statResets, ex.statStarved, ex.statRaceErr = 0, 0, 0, 0
		}
		if r.obs != nil {
			r.flushObs(a, b, adopted, swaps, resets, starved, raceErrs)
		}
		if r.diag != nil {
			r.flushDiag(a, b, swaps, resets, starved, raceErrs)
		}
	}
	if r.sched != nil && !stopped {
		d, changed := r.sched.Observe(seobs.ControlSignals{
			Rounds:         b - a,
			ExplorerRounds: int64(b-a) * int64(len(r.explorers)),
			Swaps:          swaps,
			Improved:       anyImproved,
			HaveBest:       r.global.have,
		})
		if changed {
			r.applySchedule(b, d)
		}
	}
	return stopRound, stopped, anyImproved
}

// sameSnapshot reports whether two selection snapshots share a backing
// array (identity, not equality — the recycler must never pool a slice
// the global or local best still references).
func sameSnapshot(a, b []bool) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// flushObs folds the segment's tallies into the attached observer. Runs
// single-threaded between segments, so the atomic instruments are
// touched once per segment, never in the round loop.
func (r *run) flushObs(a, b int, adopted, swaps, resets, starved, raceErrs int64) {
	o := r.obs
	rounds := int64(b - a)
	o.Rounds.Add(rounds)
	o.ExplorerRounds.Add(rounds * int64(len(r.explorers)))
	o.Swaps.Add(swaps)
	o.Resets.Add(resets)
	o.ProposalsStarved.Add(starved)
	o.RaceErrors.Add(raceErrs)
	o.Merges.Inc()
	o.Improvements.Add(adopted)
	best := r.globalUtil()
	o.BestUtility.Set(best)
	o.Trace.Emit(obs.EvSERound, "se", float64(rounds), "")
	if resets > 0 {
		o.Trace.Emit(obs.EvReset, "se", float64(resets), "")
	}
	if starved > 0 {
		o.Trace.Emit(obs.EvReset, "se", float64(starved), "starved")
	}
	if raceErrs > 0 {
		o.Trace.Emit(obs.EvReset, "se", float64(raceErrs), "race-error")
	}
	o.Trace.Emit(obs.EvSegmentMerge, "se", best, "")
}

// flushDiag hands the segment to the convergence diagnostics: drains
// the probes and records one window carrying the per-cardinality best
// utilities across explorers (the f_n time-series sample). Runs
// single-threaded between segments.
func (r *run) flushDiag(a, b int, swaps, resets, starved, raceErrs int64) {
	pts := r.diagScratch[:0]
	if len(r.explorers) > 0 {
		// Explorers share one thread layout (same cardinality list in the
		// same order), so index i is cardinality-aligned across them.
		base := r.explorers[0].threads
		for i, th := range base {
			best, have := math.Inf(-1), false
			for _, ex := range r.explorers {
				if i < len(ex.threads) && ex.threads[i].active {
					if u := ex.threads[i].util; !have || u > best {
						best, have = u, true
					}
				}
			}
			if have {
				pts = append(pts, seobs.ThreadPoint{N: th.n, Utility: best})
			}
		}
	}
	r.diagScratch = pts
	r.diag.Flush(seobs.FlushArgs{
		From: a, To: b,
		Swaps: swaps, Resets: resets,
		Starved: starved, RaceErrors: raceErrs,
		BestUtility: r.globalUtil(), HaveBest: r.global.have,
		Threads: pts,
	})
}

// applySchedule enacts one adaptive-schedule decision at a segment
// boundary: the β boost re-derives β_eff and the cached exponentials,
// and from stage 1 on the thread lattice narrows to a band around the
// incumbent best cardinality. Every explorer is re-armed (a schedule
// change is a RESET — proposals and weights must reflect the new rates).
// Runs single-threaded between segments, in deterministic explorer
// order, from merged state only, so adaptive runs stay bit-identical
// across Workers counts.
func (r *run) applySchedule(round int, d seobs.Decision) {
	r.betaBoost = d.BetaBoost
	r.refreshBetaEff()
	target := r.scheduleCards(d)
	if !equalCards(target, r.cards) {
		r.cards = target
		for _, ex := range r.explorers {
			ex.reshapeLattice(target)
			r.adoptLocal(ex)
		}
		r.publishBest()
	} else {
		for _, ex := range r.explorers {
			ex.refreshRateBases()
			ex.rearm()
		}
	}
	if r.diag != nil {
		r.diag.RecordSchedule(round, d, r.globalUtil())
		r.diag.Rebind(r.diagInfo())
		r.attachProbes()
	}
	if r.obs != nil {
		r.obs.Trace.Emit(obs.EvConvergence, "se", float64(d.Stage), "schedule")
	}
}

// scheduleCards maps a schedule decision to the thread-cardinality
// lattice: stage 0 keeps the full lattice; later stages keep only the
// cardinalities within a shrinking radius of the incumbent best |f|,
// never leaving the band empty.
func (r *run) scheduleCards(d seobs.Decision) []int {
	full := threadCardinalities(len(r.candidates), r.cfg.MaxThreads)
	if d.Stage <= 0 || !r.global.have {
		return full
	}
	maxN := len(r.candidates) - 1
	radius := maxN >> uint(d.Stage+1)
	if radius < 1 {
		radius = 1
	}
	band := make([]int, 0, len(full))
	for _, n := range full {
		if abs(n-r.global.n) <= radius {
			band = append(band, n)
		}
	}
	if len(band) == 0 {
		// The incumbent sits between lattice points (or is the full
		// selection): keep the nearest thread alive.
		nearest := full[0]
		for _, n := range full[1:] {
			if abs(n-r.global.n) < abs(nearest-r.global.n) {
				nearest = n
			}
		}
		band = append(band, nearest)
	}
	return band
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func equalCards(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// resetSchedule restores the fixed-schedule state (stage 0, boost 1,
// full thread lattice) before a dynamic event mutates the candidate set;
// the event paths assume the standard layout. No-op under the fixed
// schedule or when nothing escalated yet.
func (r *run) resetSchedule() {
	if r.sched == nil {
		return
	}
	r.sched.Reset()
	full := threadCardinalities(len(r.candidates), r.cfg.MaxThreads)
	boosted := r.betaBoost != 1
	if boosted {
		r.betaBoost = 1
		r.refreshBetaEff()
	}
	if !equalCards(full, r.cards) {
		r.cards = full
		for _, ex := range r.explorers {
			ex.reshapeLattice(full)
			r.adoptLocal(ex)
		}
		r.publishBest()
	} else if boosted {
		for _, ex := range r.explorers {
			ex.refreshRateBases()
			ex.rearm()
		}
	}
}

// adoptLocal folds one explorer's local best into the global tracker;
// only used at sync points (construction and dynamic events).
func (r *run) adoptLocal(ex *explorer) {
	if !ex.haveBest {
		return
	}
	if !r.global.have || ex.bestUtil > r.global.util {
		r.global.util, r.global.sel, r.global.n, r.global.have = ex.bestUtil, ex.bestSel, ex.bestN, true
		r.globalDirty = true
	}
}

// publishBest stores an immutable snapshot of the global best for
// lock-free readers.
func (r *run) publishBest() {
	if !r.globalDirty {
		return
	}
	r.globalDirty = false
	if !r.global.have {
		r.snap.Store(nil)
		return
	}
	r.snap.Store(&bestSnapshot{util: r.global.util, sel: r.global.sel, n: r.global.n})
}

// globalUtil returns the coordinator-side best utility, or -Inf.
func (r *run) globalUtil() float64 {
	if r.global.have {
		return r.global.util
	}
	return math.Inf(-1)
}

// bestObserved returns the best utility seen so far, or -Inf. It reads
// the published snapshot, so it is safe from any goroutine even while a
// segment is being stepped.
func (r *run) bestObserved() float64 {
	if s := r.snap.Load(); s != nil {
		return s.util
	}
	return math.Inf(-1)
}

// best converts the best candidate-space selection into an instance-space
// Solution. It returns ErrInfeasible when no thread ever produced a
// selection meeting Nmin.
func (r *run) best() (Solution, error) {
	if !r.global.have {
		return Solution{}, fmt.Errorf("%w: |I|=%d Nmin=%d capacity=%d",
			ErrInfeasible, len(r.candidates), r.in.Nmin, r.in.Capacity)
	}
	sel := make([]bool, r.in.NumShards())
	for pos, on := range r.global.sel {
		if on {
			sel[r.candidates[pos]] = true
		}
	}
	sol := NewSolution(r.in, sel)
	sol.Iterations = r.iterations
	return sol, nil
}

// improvement is one local-best improvement recorded by an explorer
// during a segment: round number, the new utility, and an immutable
// snapshot of the selection. The coordinator replays these logs in
// (round, explorer) order at the sync point.
type improvement struct {
	round int
	util  float64
	n     int
	sel   []bool // immutable snapshot
}

// explorer runs one independent copy of the designed Markov chain: one
// solution thread f_n per cardinality n ∈ {1..K−1} (Alg. 1 line 3), each
// holding an exponential timer whose rate follows equation (8).
//
// During a segment an explorer is owned by exactly one worker goroutine;
// everything it mutates (threads, RNG, local best, event log, scratch)
// lives here, never on the run.
type explorer struct {
	run *run
	rng *randx.RNG
	// draw serves the hot-loop samples (one race uniform plus one
	// proposal word per thread per round) from block-buffered words of
	// rng; cold paths (initialization, local-best resets) keep drawing
	// from rng directly.
	draw  *randx.Buffered
	probe *seobs.Probe

	threads []*thread
	// expRateBases, weights, and logRates are the structure-of-arrays
	// view of the race-relevant thread state, index-aligned with threads:
	// expRateBases[i] caches exp(rateBase_i) = (|I|−n_i)·e^{−τ}; weights
	// is filled by the fused rearm pass (linear race) or per round (log
	// fallback); logRates only serves the log-space fallback.
	expRateBases []float64
	weights      []float64
	logRates     []float64
	// weightSum is the running Σ weights maintained by the fused rearm —
	// the race's total rate, ready before the round starts.
	weightSum float64

	// Local best tracker (sharded global best): merged into run.global at
	// sync points via the events log.
	bestUtil float64
	bestSel  []bool
	bestN    int
	haveBest bool
	events   []improvement

	// selPool recycles selection snapshots whose improvement events were
	// merged and superseded, keeping offer() allocation-free at steady
	// state; invalidated (dropped) whenever the candidate count changes.
	selPool [][]bool
	// initIdx, initSwaps, and initPicks are the reused Fisher-Yates
	// scratch of initThread: initIdx holds the identity permutation
	// between calls, initSwaps the swap log that restores it after each
	// attempt, and initPicks the greedy fallback's selection (thread
	// construction retries dominate solve setup without them).
	initIdx   []int
	initSwaps []int
	initPicks []int

	// statSwaps, statResets, statStarved, and statRaceErr are plain
	// per-segment tallies (each explorer is owned by one goroutine during
	// a segment); the run flushes them into the attached observer at
	// merge time. statStarved counts rounds where no thread had an armed
	// proposal (every Set-timer retry budget exhausted); statRaceErr
	// counts rounds the race itself failed to pick a winner (degenerate
	// weights). Both kinds of round fall through to a plain re-arm.
	statSwaps   int64
	statResets  int64
	statStarved int64
	statRaceErr int64
}

// thread is one parallel feasible solution f_n with its proposed swap.
type thread struct {
	n      int
	active bool

	selected []bool // over candidate positions
	selIdx   []int  // positions currently selected
	unselIdx []int  // positions currently unselected
	posInSel []int  // position → index in selIdx (or -1)
	posInUns []int  // position → index in unselIdx (or -1)

	load int
	util float64

	// rateBase caches log(|I_j| − n) − τ, the proposal-independent part of
	// the thread's log timer rate; refreshed whenever the candidate count
	// changes (join/leave), never in the hot loop. The linear-space race
	// uses its exponential from the explorer's expRateBases array.
	rateBase float64

	// Current proposal (Set-timer, Alg. 3): swap out selIdx ĩ for
	// unselected ï. proposalOK is false when no feasible swap was found
	// within the retry budget — the thread's timer never fires this
	// round.
	out, in    int
	dU         float64
	proposalOK bool
}

func newExplorer(r *run, rng *randx.RNG) *explorer {
	ex := &explorer{run: r, rng: rng, draw: randx.NewBuffered(rng), bestUtil: math.Inf(-1)}
	ex.threads = make([]*thread, 0, len(r.cards))
	for _, n := range r.cards {
		th := ex.initThread(n)
		ex.threads = append(ex.threads, th)
		if th.active {
			ex.offer(th, 0)
		}
	}
	ex.resizeScratch()
	ex.refreshRateBases()
	ex.rearm()
	return ex
}

// resizeScratch (re)allocates the structure-of-arrays race state to the
// current thread count; called at construction and whenever the thread
// layout changes (joins, leaves, schedule reshapes), never per round.
func (ex *explorer) resizeScratch() {
	n := len(ex.threads)
	ex.expRateBases = make([]float64, n)
	ex.weights = make([]float64, n)
	ex.logRates = make([]float64, n)
}

// threadCardinalities returns the cardinalities that receive a solution
// thread: all of 1..k−1 when they fit under cap, otherwise an evenly
// spaced lattice of cap values covering [1, k−1].
func threadCardinalities(k, maxThreads int) []int {
	total := k - 1
	if total <= 0 {
		return nil
	}
	if total <= maxThreads {
		out := make([]int, total)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := make([]int, 0, maxThreads)
	last := 0
	for i := 0; i < maxThreads; i++ {
		n := 1 + i*(total-1)/(maxThreads-1)
		if n != last {
			out = append(out, n)
			last = n
		}
	}
	return out
}

// initThread is Initialization() (Alg. 2): draw random n-subsets until one
// satisfies the capacity constraint, giving up after InitRetries attempts
// (the cardinality is then inactive — equivalent to the trimmed state
// space of Section V).
// initUniformAttempts caps the uniform rejection-sampling phase of
// initThread and initGreedyAttempts its greedy fallback; past both, the
// n smallest candidates seed the thread deterministically. The ladder
// bounds construction at O(attempts·draws + k) where the old
// InitRetries-bounded rejection loop could burn 200 full-width samples
// per tight thread — and it never abandons a feasible cardinality.
const (
	initUniformAttempts = 8
	initGreedyAttempts  = 4
)

func (ex *explorer) initThread(n int) *thread {
	r := ex.run
	k := len(r.candidates)
	th := &thread{n: n}
	if n > k || r.minLoad[n] > r.in.Capacity {
		// Even the n smallest candidates exceed capacity: cardinality n
		// is infeasible, no sample can succeed.
		return th
	}
	if cap(ex.initIdx) < k {
		ex.initIdx = make([]int, k)
		for i := range ex.initIdx {
			ex.initIdx[i] = i
		}
		ex.initSwaps = make([]int, 0, k)
		ex.initPicks = make([]int, 0, k)
	}
	// idx holds the identity permutation between attempts (restored by
	// undoing the swaps each partial Fisher-Yates made, which is O(draws)
	// instead of an O(k) rewrite per attempt).
	idx := ex.initIdx[:k]
	uniform := r.cfg.InitRetries
	if uniform > initUniformAttempts {
		uniform = initUniformAttempts
	}
	for attempt := 0; attempt < uniform; attempt++ {
		// Partial Fisher-Yates, aborting as soon as the running load
		// exceeds capacity: any prefix over capacity dooms the full
		// sample (sizes are non-negative), so the accepted distribution
		// is still uniform over feasible n-subsets.
		swaps := ex.initSwaps[:0]
		load := 0
		for i := 0; i < n; i++ {
			j := i + ex.draw.Intn(k-i)
			idx[i], idx[j] = idx[j], idx[i]
			swaps = append(swaps, j)
			load += r.sizes[idx[i]]
			if load > r.in.Capacity {
				break
			}
		}
		ok := len(swaps) == n && load <= r.in.Capacity
		if ok {
			th.adopt(r, idx[:n])
			th.active = true
		}
		for i := len(swaps) - 1; i >= 0; i-- {
			idx[i], idx[swaps[i]] = idx[swaps[i]], idx[i]
		}
		ex.initSwaps = swaps[:0]
		if ok {
			return th
		}
	}
	// Greedy fallback for tight instances: walk one random permutation
	// and take every candidate that still fits. Mildly biased toward
	// small candidates, but the chain forgets its start state — and a
	// diverse active thread beats an abandoned one.
	for attempt := 0; attempt < initGreedyAttempts; attempt++ {
		swaps := ex.initSwaps[:0]
		picks := ex.initPicks[:0]
		load := 0
		for i := 0; i < k && len(picks) < n; i++ {
			j := i + ex.draw.Intn(k-i)
			idx[i], idx[j] = idx[j], idx[i]
			swaps = append(swaps, j)
			if pos := idx[i]; load+r.sizes[pos] <= r.in.Capacity {
				load += r.sizes[pos]
				picks = append(picks, pos)
			}
		}
		ok := len(picks) == n
		if ok {
			th.adopt(r, picks)
			th.active = true
		}
		for i := len(swaps) - 1; i >= 0; i-- {
			idx[i], idx[swaps[i]] = idx[swaps[i]], idx[i]
		}
		ex.initSwaps, ex.initPicks = swaps[:0], picks[:0]
		if ok {
			return th
		}
	}
	// Deterministic last resort: the n smallest candidates, feasible by
	// the minLoad gate above. Every feasible cardinality therefore
	// always activates its thread.
	th.adopt(r, r.sizeOrder[:n])
	th.active = true
	return th
}

// adopt installs a selection given by candidate positions.
func (th *thread) adopt(r *run, pick []int) {
	k := len(r.candidates)
	th.selected = make([]bool, k)
	th.posInSel = make([]int, k)
	th.posInUns = make([]int, k)
	for i := range th.posInSel {
		th.posInSel[i] = -1
		th.posInUns[i] = -1
	}
	th.selIdx = th.selIdx[:0]
	th.unselIdx = th.unselIdx[:0]
	th.load = 0
	th.util = 0
	for _, pos := range pick {
		th.selected[pos] = true
	}
	for pos := 0; pos < k; pos++ {
		if th.selected[pos] {
			th.posInSel[pos] = len(th.selIdx)
			th.selIdx = append(th.selIdx, pos)
			th.load += r.sizes[pos]
			th.util += r.vals[pos]
		} else {
			th.posInUns[pos] = len(th.unselIdx)
			th.unselIdx = append(th.unselIdx, pos)
		}
	}
}

// refreshRateBases recomputes every thread's cached log(|I_j| − n) − τ
// term and its exponential (|I_j| − n)·e^{−τ} in the structure-of-arrays
// race state; called after construction, after every join/leave (the
// only times k changes), and on schedule reshapes.
func (ex *explorer) refreshRateBases() {
	k := len(ex.run.candidates)
	expNegTau := math.Exp(-ex.run.cfg.Tau)
	for i, th := range ex.threads {
		if k > th.n {
			th.rateBase = math.Log(float64(k-th.n)) - ex.run.cfg.Tau
			ex.expRateBases[i] = float64(k-th.n) * expNegTau
		} else {
			th.rateBase = math.Inf(-1)
			ex.expRateBases[i] = 0
		}
	}
}

// setTimer is Set-timer() (Alg. 3): choose a random selected shard ĩ and a
// random unselected shard ï, estimate the utility after swapping, and arm
// the exponential timer with mean exp(τ − ½β(U_f' − U_f)) / (|I_j| − n).
// Swaps that would violate the capacity constraint are resampled a bounded
// number of times. The (ĩ, ï) pair is drawn from a single block-buffered
// 64-bit draw (PairIntn) — the proposal distribution is the same
// independent uniform pair as two Intn calls.
func (ex *explorer) setTimer(th *thread) {
	r := ex.run
	th.proposalOK = false
	nSel, nUns := len(th.selIdx), len(th.unselIdx)
	if nSel == 0 || nUns == 0 {
		return
	}
	slack := r.in.Capacity - th.load
	for attempt := 0; attempt < r.cfg.SwapRetries; attempt++ {
		oi, ii := ex.draw.PairIntn(nSel, nUns)
		outPos := th.selIdx[oi]
		inPos := th.unselIdx[ii]
		if r.sizes[inPos]-r.sizes[outPos] > slack {
			continue
		}
		th.out = outPos
		th.in = inPos
		th.dU = r.vals[inPos] - r.vals[outPos]
		th.proposalOK = true
		return
	}
}

// rearm refreshes every active thread's timer — the RESET broadcast of
// Alg. 1 lines 19–20 — and, on the linear-space path, evaluates each
// fresh proposal's race weight in the same pass from the cached
// aggregates: weight = expRateBases[i]·expVals[ï]·invExpVals[ĩ] =
// exp(rateBase + ½β·ΔU), with the running total kept alongside. The next
// round's race is then a single uniform draw and a partial CDF walk —
// the former per-round log-rate and exponentiation sweeps are gone.
//
// Proposal freshness is load-bearing: if losers kept their proposals
// until they won, the per-thread distribution of executed swaps would
// collapse to uniform (a proposal's low win rate is exactly compensated
// by the rounds it survives), erasing the Gibbs bias the rates encode.
// The hot-path savings are taken on the race side instead, where
// memorylessness makes them exact.
func (ex *explorer) rearm() {
	ex.statResets++
	r := ex.run
	if !r.linearRace {
		for _, th := range ex.threads {
			if th.active {
				ex.setTimer(th)
			}
		}
		return
	}
	// The linear path open-codes setTimer so the proposal draw, the
	// feasibility check, and the weight evaluation share one pass over
	// hoisted locals — the per-thread call and the re-loads of the shared
	// caches are what the profile charges for otherwise.
	expVals, invExpVals := r.expVals, r.invExpVals
	sizes, vals := r.sizes, r.vals
	capacity, retries := r.in.Capacity, r.cfg.SwapRetries
	draw := ex.draw
	sum := 0.0
	for i, th := range ex.threads {
		w := 0.0
		if th.active {
			th.proposalOK = false
			selIdx, unselIdx := th.selIdx, th.unselIdx
			nSel, nUns := len(selIdx), len(unselIdx)
			if nSel > 0 && nUns > 0 {
				slack := capacity - th.load
				for attempt := 0; attempt < retries; attempt++ {
					oi, ii := draw.PairIntn(nSel, nUns)
					outPos := selIdx[oi]
					inPos := unselIdx[ii]
					if sizes[inPos]-sizes[outPos] > slack {
						continue
					}
					th.out = outPos
					th.in = inPos
					th.dU = vals[inPos] - vals[outPos]
					th.proposalOK = true
					w = ex.expRateBases[i] * expVals[inPos] * invExpVals[outPos]
					break
				}
			}
		}
		ex.weights[i] = w
		sum += w
	}
	ex.weightSum = sum
}

// stepRound performs one transition round: every armed timer races, the
// winning thread swaps its proposed pair (State Transit), and the RESET
// broadcast re-arms every timer (Alg. 1 lines 13–20). Improvements over
// the explorer's local best are recorded in the event log under the given
// round number for the coordinator's deterministic merge.
//
// The race resolves the minimum of exponential clocks by categorical
// sampling: P(win) ∝ rate = exp(rateBase + ½β·ΔU). On the default
// linear-space path the weights and their sum were already evaluated by
// the fused rearm pass from the cached per-candidate exponentials, so
// the race is one uniform draw and a partial CDF walk — no per-round
// sweep, no math.Exp, statistically identical to the former max-centered
// exponentiation (both sample the exact same categorical distribution).
// When the value spread puts the ratio trick outside float64 range the
// log-space fallback re-derives the weights per round exactly as before.
// The race's elapsed time is never consumed (rounds are the clock), so
// it is not sampled.
func (ex *explorer) stepRound(round int) {
	if !ex.run.linearRace {
		ex.stepRoundLog(round)
		return
	}
	total := ex.weightSum
	if !(total > 0) || math.IsInf(total, 1) {
		// total == 0: no armed proposal anywhere (every Set-timer retry
		// budget exhausted) — a starved round. NaN/Inf: degenerate
		// weights the CDF walk cannot resolve. Both re-arm and hope a
		// future round finds feasible swaps.
		if total == 0 {
			ex.statStarved++
		} else {
			ex.statRaceErr++
		}
		ex.rearm()
		return
	}
	target := ex.draw.Float64() * total
	winner := -1
	for i, w := range ex.weights {
		if w <= 0 {
			continue
		}
		target -= w
		if target <= 0 {
			winner = i
			break
		}
	}
	if winner < 0 {
		// Floating-point slack: the partial sums rounded below the total;
		// take the last positive-weight thread, mirroring WeightedPick.
		for i := len(ex.weights) - 1; i >= 0; i-- {
			if ex.weights[i] > 0 {
				winner = i
				break
			}
		}
		if winner < 0 {
			ex.statRaceErr++
			ex.rearm()
			return
		}
	}
	ex.finishRound(winner, round)
}

// stepRoundLog is the numerically hardened race for instances whose
// ½β·ΔU range exceeds the linear-space budget: log rates are swept, the
// max subtracted, and the weights exponentiated per round — the
// pre-cache kernel, kept as the fallback.
func (ex *explorer) stepRoundLog(round int) {
	h := ex.run.halfBeta
	maxLR := math.Inf(-1)
	for i, th := range ex.threads {
		lr := math.Inf(-1)
		if th.active && th.proposalOK {
			lr = th.rateBase + h*th.dU
		}
		ex.logRates[i] = lr
		if lr > maxLR {
			maxLR = lr
		}
	}
	if math.IsInf(maxLR, -1) {
		// No timer can fire: all threads inactive or proposal-less.
		ex.statStarved++
		ex.rearm()
		return
	}
	for i, lr := range ex.logRates {
		if math.IsInf(lr, -1) {
			ex.weights[i] = 0
		} else {
			ex.weights[i] = math.Exp(lr - maxLR)
		}
	}
	winner, err := ex.rng.WeightedPick(ex.weights)
	if err != nil {
		ex.statRaceErr++
		ex.rearm()
		return
	}
	ex.finishRound(winner, round)
}

// finishRound executes the race winner's swap, records it, offers the
// result to the local best, and re-arms every timer for the next round.
func (ex *explorer) finishRound(winner, round int) {
	th := ex.threads[winner]
	th.applySwap(ex.run)
	ex.statSwaps++
	if ex.probe != nil {
		ex.probe.RecordSwap(winner, th.out, th.in, th.util)
	}
	ex.offer(th, round)
	ex.rearm()
}

// stepBatch advances the explorer through rounds (a, b]. When the d_TV
// estimator is live the loop records one dwell sample per thread per
// round, weighted by the round's expected holding time 1/Σw so the
// histogram estimates continuous-time occupancy rather than the
// embedded jump chain's (the two diverge once the schedule boosts β —
// the chain then sits at the mode with a tiny total rate while the jump
// chain keeps executing one swap per round). On the linear race path
// the weights are true rates — the centering term cancels in the
// exp-ratio — so 1/ex.weightSum is exact; the log-rate fallback keeps
// weight 1, which only arises at exponent scales the pinning tests
// never reach. Otherwise it is the plain hot loop.
func (ex *explorer) stepBatch(a, b int) {
	if p := ex.probe; p.TracksVisits() {
		linear := ex.run.linearRace
		for round := a + 1; round <= b; round++ {
			ex.stepRound(round)
			w := 1.0
			if linear && ex.weightSum > 0 {
				w = 1 / ex.weightSum
			}
			p.RecordRound(w)
		}
		return
	}
	for round := a + 1; round <= b; round++ {
		ex.stepRound(round)
	}
}

// step advances one round without event logging — kept for tests that
// drive a single explorer directly.
func (ex *explorer) step() { ex.stepRound(0) }

// offer records a thread's state against the explorer's local best
// (Alg. 1 lines 22–27, sharded per explorer). Improvements during a
// segment (round > 0) are appended to the event log with an immutable
// selection snapshot so the coordinator can merge and, if the convergence
// window closed mid-segment, truncate them exactly.
func (ex *explorer) offer(th *thread, round int) bool {
	if th.n < ex.run.in.Nmin {
		return false
	}
	if ex.haveBest && th.util <= ex.bestUtil {
		return false
	}
	var snap []bool
	if n := len(ex.selPool); n > 0 {
		// Pool slices always match the live candidate count (the pool is
		// dropped whenever it changes), so a recycled snapshot is a copy
		// destination, not an allocation.
		snap = ex.selPool[n-1]
		ex.selPool = ex.selPool[:n-1]
		copy(snap, th.selected)
	} else {
		snap = append([]bool(nil), th.selected...)
	}
	ex.bestSel = snap
	ex.bestUtil = th.util
	ex.bestN = th.n
	ex.haveBest = true
	if round > 0 {
		ex.events = append(ex.events, improvement{round: round, util: th.util, n: th.n, sel: snap})
	}
	return true
}

// reshapeLattice rebuilds the explorer's solution threads against a new
// cardinality lattice (the adaptive schedule narrowing to a band, or a
// dynamic event restoring the full set): threads whose cardinality
// survives keep their state — their current selection is hard-won
// progress — while new cardinalities initialize from scratch. Runs only
// at sync points, in deterministic thread order.
func (ex *explorer) reshapeLattice(cards []int) {
	byN := make(map[int]*thread, len(ex.threads))
	for _, th := range ex.threads {
		byN[th.n] = th
	}
	threads := make([]*thread, 0, len(cards))
	for _, n := range cards {
		if th, ok := byN[n]; ok {
			threads = append(threads, th)
			continue
		}
		th := ex.initThread(n)
		threads = append(threads, th)
		if th.active {
			ex.offer(th, 0)
		}
	}
	ex.threads = threads
	ex.resizeScratch()
	ex.refreshRateBases()
	ex.rearm()
}

// resetLocalBest drops the explorer's local best (its stored positions
// went stale after a leave) and re-seeds it from the surviving threads.
func (ex *explorer) resetLocalBest() {
	ex.haveBest = false
	ex.bestUtil = math.Inf(-1)
	ex.bestSel = nil
	ex.events = ex.events[:0]
	for _, th := range ex.threads {
		if th.active {
			ex.offer(th, 0)
		}
	}
}

// applySwap executes the armed proposal: x_ĩ ← 0, x_ï ← 1.
func (th *thread) applySwap(r *run) {
	outPos, inPos := th.out, th.in

	th.selected[outPos] = false
	th.selected[inPos] = true
	th.load += r.sizes[inPos] - r.sizes[outPos]
	th.util += th.dU

	// Maintain the index lists in O(1) by swapping with the tail.
	si := th.posInSel[outPos]
	last := th.selIdx[len(th.selIdx)-1]
	th.selIdx[si] = last
	th.posInSel[last] = si
	th.selIdx = th.selIdx[:len(th.selIdx)-1]
	th.posInSel[outPos] = -1

	ui := th.posInUns[inPos]
	lastU := th.unselIdx[len(th.unselIdx)-1]
	th.unselIdx[ui] = lastU
	th.posInUns[lastU] = ui
	th.unselIdx = th.unselIdx[:len(th.unselIdx)-1]
	th.posInUns[inPos] = -1

	th.posInSel[inPos] = len(th.selIdx)
	th.selIdx = append(th.selIdx, inPos)
	th.posInUns[outPos] = len(th.unselIdx)
	th.unselIdx = append(th.unselIdx, outPos)
}
