// Package baseline implements the comparison algorithms of the MVCom
// evaluation (Section VI-B): Simulated Annealing (SA), Dynamic Programming
// (DP), and the Whale Optimization Algorithm (WOA), plus a value-density
// Greedy heuristic and an exact BruteForce solver used to validate the
// others on small instances.
//
// All solvers implement core.Solver and operate on the same Instance the
// SE algorithm consumes: selections are restricted to shards that arrived
// before the deadline and must satisfy the capacity Ĉ; Nmin is enforced by
// a shared repair step that pads a selection with the smallest remaining
// shards.
package baseline

import (
	"errors"
	"fmt"
	"sort"

	"mvcom/internal/core"
)

// Errors returned by the baseline solvers.
var (
	// ErrTooLarge is returned by BruteForce above its enumeration limit.
	ErrTooLarge = errors.New("baseline: instance too large for brute force")
)

// prepared is the shared preprocessing of every baseline: validation plus
// the arrived-candidate view of the instance.
type prepared struct {
	in    *core.Instance
	cands []int // instance indices of arrived shards
}

func prepare(in *core.Instance) (prepared, error) {
	if err := in.Validate(); err != nil {
		return prepared{}, err
	}
	cands := in.Arrived()
	if len(cands) == 0 {
		return prepared{}, core.ErrNoCandidates
	}
	return prepared{in: in, cands: cands}, nil
}

// value returns the utility contribution of candidate position p.
func (pr prepared) value(p int) float64 { return pr.in.Value(pr.cands[p]) }

// size returns s_i of candidate position p.
func (pr prepared) size(p int) int { return pr.in.Sizes[pr.cands[p]] }

// k returns the number of candidates.
func (pr prepared) k() int { return len(pr.cands) }

// load sums the sizes of the selected candidate positions.
func (pr prepared) load(sel []bool) int {
	total := 0
	for p, on := range sel {
		if on {
			total += pr.size(p)
		}
	}
	return total
}

// utility sums the values of the selected candidate positions.
func (pr prepared) utility(sel []bool) float64 {
	var u float64
	for p, on := range sel {
		if on {
			u += pr.value(p)
		}
	}
	return u
}

// count counts selected positions.
func (pr prepared) count(sel []bool) int {
	n := 0
	for _, on := range sel {
		if on {
			n++
		}
	}
	return n
}

// solution converts a candidate-position selection to an instance-space
// core.Solution.
func (pr prepared) solution(sel []bool, iterations int) core.Solution {
	full := make([]bool, pr.in.NumShards())
	for p, on := range sel {
		if on {
			full[pr.cands[p]] = true
		}
	}
	sol := core.NewSolution(pr.in, full)
	sol.Iterations = iterations
	return sol
}

// repairNmin pads sel with the smallest unselected candidates until the
// Nmin constraint holds, respecting capacity. It reports whether the
// selection now satisfies both constraints.
func (pr prepared) repairNmin(sel []bool) bool {
	needed := pr.in.Nmin - pr.count(sel)
	if needed <= 0 {
		return pr.load(sel) <= pr.in.Capacity
	}
	type cand struct{ pos, size int }
	var free []cand
	for p, on := range sel {
		if !on {
			free = append(free, cand{pos: p, size: pr.size(p)})
		}
	}
	sort.Slice(free, func(i, j int) bool {
		if free[i].size != free[j].size {
			return free[i].size < free[j].size
		}
		return free[i].pos < free[j].pos
	})
	load := pr.load(sel)
	for _, c := range free {
		if needed == 0 {
			break
		}
		if load+c.size > pr.in.Capacity {
			continue
		}
		sel[c.pos] = true
		load += c.size
		needed--
	}
	return needed == 0 && load <= pr.in.Capacity
}

// ensureNmin makes sel satisfy both constraints, first by padding
// (repairNmin), then — when padding cannot reach Nmin because high-value
// picks already fill the block — by rebuilding from the Nmin smallest
// shards and refilling the remaining capacity by value density. It reports
// whether a feasible selection was achieved (false only when even the
// Nmin smallest shards exceed the capacity).
func (pr prepared) ensureNmin(sel []bool) bool {
	if pr.repairNmin(sel) {
		return true
	}
	type cand struct{ pos, size int }
	order := make([]cand, pr.k())
	for p := range order {
		order[p] = cand{pos: p, size: pr.size(p)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].size != order[j].size {
			return order[i].size < order[j].size
		}
		return order[i].pos < order[j].pos
	})
	for p := range sel {
		sel[p] = false
	}
	load := 0
	for i := 0; i < pr.in.Nmin; i++ {
		sel[order[i].pos] = true
		load += order[i].size
	}
	if load > pr.in.Capacity {
		return false
	}
	// Refill the slack by value density, best first.
	rest := append([]cand(nil), order[pr.in.Nmin:]...)
	sort.Slice(rest, func(i, j int) bool {
		di := pr.value(rest[i].pos) / float64(maxInt(rest[i].size, 1))
		dj := pr.value(rest[j].pos) / float64(maxInt(rest[j].size, 1))
		if di != dj {
			return di > dj
		}
		return rest[i].pos < rest[j].pos
	})
	for _, c := range rest {
		if pr.value(c.pos) <= 0 {
			break
		}
		if load+c.size > pr.in.Capacity {
			continue
		}
		sel[c.pos] = true
		load += c.size
	}
	return true
}

// repairCapacity drops the lowest value-density selected candidates until
// the load fits the capacity.
func (pr prepared) repairCapacity(sel []bool) {
	load := pr.load(sel)
	if load <= pr.in.Capacity {
		return
	}
	type cand struct {
		pos     int
		density float64
	}
	var chosen []cand
	for p, on := range sel {
		if on {
			d := pr.value(p) / float64(maxInt(pr.size(p), 1))
			chosen = append(chosen, cand{pos: p, density: d})
		}
	}
	sort.Slice(chosen, func(i, j int) bool {
		if chosen[i].density != chosen[j].density {
			return chosen[i].density < chosen[j].density
		}
		return chosen[i].pos < chosen[j].pos
	})
	for _, c := range chosen {
		if load <= pr.in.Capacity {
			break
		}
		sel[c.pos] = false
		load -= pr.size(c.pos)
	}
}

// feasible reports both constraints over candidate space.
func (pr prepared) feasible(sel []bool) bool {
	return pr.count(sel) >= pr.in.Nmin && pr.load(sel) <= pr.in.Capacity
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// finish wraps the common "no feasible selection found" error.
func infeasible(name string, in *core.Instance) error {
	return fmt.Errorf("%s: %w (Nmin=%d capacity=%d)", name, core.ErrInfeasible, in.Nmin, in.Capacity)
}
