package baseline

import (
	"math"
	"sort"

	"mvcom/internal/core"
	"mvcom/internal/randx"
)

// WOA is the Whale Optimization Algorithm baseline [25,26]: a swarm of
// whales moves through [0,1]^K continuous positions that binarize at 0.5.
// Each iteration applies the standard encircling / bubble-net spiral /
// random-search equations with the control parameter a decaying 2 → 0;
// binarized positions are repaired to feasibility before fitness
// evaluation. WOA was designed for continuous landscapes, which is why it
// struggles on this combinatorial problem — matching its consistently
// lowest converged utility in the paper's figures.
type WOA struct {
	// Whales is the population size. Default 30.
	Whales int
	// Iterations is the number of generations. Default 500.
	Iterations int
	// SpiralB is the logarithmic-spiral shape constant b. Default 1.
	SpiralB float64
	// Seed drives the randomness.
	Seed int64
}

var _ core.Solver = WOA{}

// Name implements core.Solver.
func (WOA) Name() string { return "WOA" }

// Solve implements core.Solver.
func (w WOA) Solve(in core.Instance) (core.Solution, []core.TracePoint, error) {
	pr, err := prepare(&in)
	if err != nil {
		return core.Solution{}, nil, err
	}
	pop := w.Whales
	if pop <= 0 {
		pop = 30
	}
	iters := w.Iterations
	if iters <= 0 {
		iters = 500
	}
	b := w.SpiralB
	if b <= 0 {
		b = 1
	}
	rng := randx.New(w.Seed)
	k := pr.k()

	positions := make([][]float64, pop)
	for i := range positions {
		positions[i] = make([]float64, k)
		for d := range positions[i] {
			positions[i][d] = rng.Float64()
		}
	}

	bestPos := make([]float64, k)
	bestUtil := math.Inf(-1)
	var bestSel []bool
	// Repair is deliberately blind: random drops to fit the capacity and
	// random adds to reach Nmin. A value-aware repair would smuggle a
	// greedy knapsack solver into the fitness function and mask the
	// actual WOA search — the paper's WOA is a plain continuous
	// metaheuristic binarized onto the problem, and behaves accordingly.
	evaluate := func(pos []float64) (float64, []bool, bool) {
		sel := binarize(pos)
		if !repairRandom(pr, rng, sel) {
			return math.Inf(-1), nil, false
		}
		return pr.utility(sel), sel, true
	}
	for i := range positions {
		if u, sel, ok := evaluate(positions[i]); ok && u > bestUtil {
			bestUtil = u
			bestSel = sel
			copy(bestPos, positions[i])
		}
	}
	if bestSel == nil {
		return core.Solution{}, nil, infeasible("woa", &in)
	}
	trace := []core.TracePoint{{Iteration: 0, Utility: bestUtil}}

	scratch := make([]float64, k)
	for t := 0; t < iters; t++ {
		a := 2 * (1 - float64(t)/float64(iters)) // a: 2 → 0
		for i := range positions {
			pos := positions[i]
			if rng.Bool(0.5) {
				// Shrinking encircling or exploration.
				A := 2*a*rng.Float64() - a
				C := 2 * rng.Float64()
				target := bestPos
				if math.Abs(A) >= 1 {
					// |A| ≥ 1: search toward a random whale.
					target = positions[rng.Intn(pop)]
				}
				for d := 0; d < k; d++ {
					dist := math.Abs(C*target[d] - pos[d])
					scratch[d] = clamp01(target[d] - A*dist)
				}
			} else {
				// Bubble-net spiral around the best whale.
				l := rng.Uniform(-1, 1)
				for d := 0; d < k; d++ {
					dist := math.Abs(bestPos[d] - pos[d])
					scratch[d] = clamp01(dist*math.Exp(b*l)*math.Cos(2*math.Pi*l) + bestPos[d])
				}
			}
			copy(pos, scratch)
			if u, sel, ok := evaluate(pos); ok && u > bestUtil {
				bestUtil = u
				bestSel = sel
				copy(bestPos, pos)
				trace = append(trace, core.TracePoint{Iteration: t + 1, Utility: bestUtil})
			}
		}
	}
	sol := pr.solution(bestSel, iters*pop)
	trace = append(trace, core.TracePoint{Iteration: iters * pop, Utility: sol.Utility})
	return sol, trace, nil
}

// repairRandom makes sel feasible without looking at shard values:
// random selected shards are dropped until the capacity holds, then
// random unselected shards that fit are added until Nmin holds. Returns
// false when Nmin cannot be reached.
func repairRandom(pr prepared, rng *randx.RNG, sel []bool) bool {
	load := pr.load(sel)
	var chosen []int
	for p, on := range sel {
		if on {
			chosen = append(chosen, p)
		}
	}
	rng.Shuffle(len(chosen), func(i, j int) { chosen[i], chosen[j] = chosen[j], chosen[i] })
	for _, p := range chosen {
		if load <= pr.in.Capacity {
			break
		}
		sel[p] = false
		load -= pr.size(p)
	}
	if load > pr.in.Capacity {
		return false
	}
	count := pr.count(sel)
	if count >= pr.in.Nmin {
		return true
	}
	var free []int
	for p, on := range sel {
		if !on {
			free = append(free, p)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for _, p := range free {
		if count >= pr.in.Nmin {
			break
		}
		if load+pr.size(p) > pr.in.Capacity {
			continue
		}
		sel[p] = true
		load += pr.size(p)
		count++
	}
	if count >= pr.in.Nmin {
		return true
	}
	// Last resort for feasibility only (still value-blind): the Nmin
	// smallest shards.
	type cand struct{ pos, size int }
	order := make([]cand, pr.k())
	for p := range order {
		order[p] = cand{pos: p, size: pr.size(p)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].size != order[j].size {
			return order[i].size < order[j].size
		}
		return order[i].pos < order[j].pos
	})
	for p := range sel {
		sel[p] = false
	}
	load = 0
	for i := 0; i < pr.in.Nmin && i < len(order); i++ {
		sel[order[i].pos] = true
		load += order[i].size
	}
	return pr.count(sel) >= pr.in.Nmin && load <= pr.in.Capacity
}

func binarize(pos []float64) []bool {
	sel := make([]bool, len(pos))
	for i, v := range pos {
		sel[i] = v > 0.5
	}
	return sel
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
