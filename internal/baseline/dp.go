package baseline

import (
	"math"

	"mvcom/internal/core"
)

// DP is the Dynamic Programming baseline [23,24]: the MVCom objective with
// the Nmin constraint relaxed is a 0/1 knapsack (the paper's own
// NP-hardness reduction), solved exactly by the classic weight-indexed
// table. The final-block capacities of the evaluation (up to 10⁶ TXs) make
// the exact table enormous, so weights and capacity are scaled by a
// granularity g — the standard FPTAS-style rounding. Rounding loss plus
// the bolted-on Nmin repair are why DP trails SE in the paper's figures.
type DP struct {
	// TableWidth is the scaled capacity (number of DP columns). The
	// granularity is ceil(capacity / TableWidth). The default of 500
	// bounds the table for the paper's million-TX capacities; the induced
	// rounding loss is the price DP pays for tractability (and why it
	// trails SE in the evaluation). Raise it toward Capacity for an exact
	// solve on small instances.
	TableWidth int
}

var _ core.Solver = DP{}

// Name implements core.Solver.
func (DP) Name() string { return "DP" }

// Solve implements core.Solver.
func (dp DP) Solve(in core.Instance) (core.Solution, []core.TracePoint, error) {
	pr, err := prepare(&in)
	if err != nil {
		return core.Solution{}, nil, err
	}
	width := dp.TableWidth
	if width <= 0 {
		width = 500
	}
	gran := (in.Capacity + width - 1) / width
	if gran < 1 {
		gran = 1
	}
	capScaled := in.Capacity / gran
	if capScaled < 1 {
		capScaled = 1
	}
	k := pr.k()

	// Only positive-value shards can improve an unconstrained knapsack.
	type item struct {
		pos    int
		weight int // scaled, rounded up so scaled feasibility implies real feasibility
		value  float64
	}
	var items []item
	for p := 0; p < k; p++ {
		v := pr.value(p)
		if v <= 0 {
			continue
		}
		w := (pr.size(p) + gran - 1) / gran
		items = append(items, item{pos: p, weight: w, value: v})
	}

	// dp[c] = best value with scaled capacity c; take[i][c] records the
	// choice for backtracking.
	table := make([]float64, capScaled+1)
	take := make([][]bool, len(items))
	for i, it := range items {
		take[i] = make([]bool, capScaled+1)
		for c := capScaled; c >= it.weight; c-- {
			cand := table[c-it.weight] + it.value
			if cand > table[c] {
				table[c] = cand
				take[i][c] = true
			}
		}
	}

	sel := make([]bool, k)
	c := capScaled
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][c] {
			sel[items[i].pos] = true
			c -= items[i].weight
		}
	}
	if !pr.ensureNmin(sel) {
		return core.Solution{}, nil, infeasible("dp", &in)
	}
	// Rounding up weights guarantees the unscaled load fits, but the Nmin
	// repair re-checked it anyway.
	sol := pr.solution(sel, len(items)*(capScaled+1))
	if math.IsInf(sol.Utility, 0) {
		return core.Solution{}, nil, infeasible("dp", &in)
	}
	trace := []core.TracePoint{{Iteration: sol.Iterations, Utility: sol.Utility}}
	return sol, trace, nil
}
