package baseline

import (
	"math"

	"mvcom/internal/core"
	"mvcom/internal/randx"
)

// SA is the Simulated Annealing baseline [22]: a single-solution
// Metropolis walk over feasible selections with a geometric cooling
// schedule. Neighbors either toggle one shard or swap a selected shard for
// an unselected one; infeasible neighbors are rejected outright.
type SA struct {
	// Iterations is the annealing length. Default 20000.
	Iterations int
	// T0 is the initial temperature. If zero it is auto-scaled to the
	// instance's mean |value| so acceptance starts permissive regardless
	// of the utility magnitude.
	T0 float64
	// Cooling is the geometric decay factor per iteration. Default
	// 0.9995.
	Cooling float64
	// Seed drives the randomness.
	Seed int64
}

var _ core.Solver = SA{}

// Name implements core.Solver.
func (SA) Name() string { return "SA" }

// Solve implements core.Solver.
func (sa SA) Solve(in core.Instance) (core.Solution, []core.TracePoint, error) {
	pr, err := prepare(&in)
	if err != nil {
		return core.Solution{}, nil, err
	}
	iters := sa.Iterations
	if iters <= 0 {
		iters = 20000
	}
	cooling := sa.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.9995
	}
	rng := randx.New(sa.Seed)

	sel, ok := initialFeasible(pr, rng)
	if !ok {
		return core.Solution{}, nil, infeasible("sa", &in)
	}
	cur := pr.utility(sel)
	load := pr.load(sel)
	count := pr.count(sel)

	temp := sa.T0
	if temp <= 0 {
		var absSum float64
		for p := 0; p < pr.k(); p++ {
			absSum += math.Abs(pr.value(p))
		}
		temp = absSum / float64(pr.k())
		if temp <= 0 {
			temp = 1
		}
	}

	best := append([]bool(nil), sel...)
	bestUtil := cur
	trace := []core.TracePoint{{Iteration: 0, Utility: bestUtil}}

	for it := 1; it <= iters; it++ {
		dU, apply := proposeNeighbor(pr, rng, sel, load, count)
		if apply != nil {
			accept := dU >= 0
			if !accept {
				accept = rng.Float64() < math.Exp(dU/temp)
			}
			if accept {
				load, count = apply()
				cur += dU
				if cur > bestUtil {
					bestUtil = cur
					copy(best, sel)
					trace = append(trace, core.TracePoint{Iteration: it, Utility: bestUtil})
				}
			}
		}
		temp *= cooling
	}
	sol := pr.solution(best, iters)
	trace = append(trace, core.TracePoint{Iteration: iters, Utility: sol.Utility})
	return sol, trace, nil
}

// proposeNeighbor picks a feasibility-preserving move and returns its ΔU
// plus a closure that applies it (returning the new load and count). A nil
// closure means no feasible move was found this iteration.
func proposeNeighbor(pr prepared, rng *randx.RNG, sel []bool, load, count int) (float64, func() (int, int)) {
	k := pr.k()
	for attempt := 0; attempt < 8; attempt++ {
		if rng.Bool(0.5) {
			// Toggle one shard.
			p := rng.Intn(k)
			if sel[p] {
				if count-1 < pr.in.Nmin {
					continue
				}
				dU := -pr.value(p)
				return dU, func() (int, int) {
					sel[p] = false
					return load - pr.size(p), count - 1
				}
			}
			if load+pr.size(p) > pr.in.Capacity {
				continue
			}
			dU := pr.value(p)
			return dU, func() (int, int) {
				sel[p] = true
				return load + pr.size(p), count + 1
			}
		}
		// Swap a selected for an unselected shard.
		pOut, pIn := -1, -1
		for a := 0; a < 4; a++ {
			p := rng.Intn(k)
			if sel[p] {
				pOut = p
				break
			}
		}
		for a := 0; a < 4; a++ {
			p := rng.Intn(k)
			if !sel[p] {
				pIn = p
				break
			}
		}
		if pOut < 0 || pIn < 0 {
			continue
		}
		if load-pr.size(pOut)+pr.size(pIn) > pr.in.Capacity {
			continue
		}
		dU := pr.value(pIn) - pr.value(pOut)
		return dU, func() (int, int) {
			sel[pOut] = false
			sel[pIn] = true
			return load - pr.size(pOut) + pr.size(pIn), count
		}
	}
	return 0, nil
}

// initialFeasible draws random selections until one satisfies both
// constraints, then falls back to the deterministic smallest-first repair.
func initialFeasible(pr prepared, rng *randx.RNG) ([]bool, bool) {
	k := pr.k()
	n := pr.in.Nmin
	if n < 1 {
		n = 1
	}
	if n > k {
		return nil, false
	}
	for attempt := 0; attempt < 200; attempt++ {
		pick, err := rng.SampleWithoutReplacement(k, n)
		if err != nil {
			return nil, false
		}
		sel := make([]bool, k)
		load := 0
		for _, p := range pick {
			sel[p] = true
			load += pr.size(p)
		}
		if load <= pr.in.Capacity {
			return sel, true
		}
	}
	// Deterministic fallback: the Nmin smallest shards.
	sel := make([]bool, k)
	if pr.repairNmin(sel) {
		return sel, true
	}
	return nil, false
}
