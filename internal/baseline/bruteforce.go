package baseline

import (
	"math"

	"mvcom/internal/core"
)

// BruteForce enumerates every subset of the arrived shards and returns the
// exact optimum. It refuses instances with more than MaxShards candidates
// (2^25 subsets is the practical ceiling for tests).
type BruteForce struct {
	// MaxShards caps the enumeration; default 22.
	MaxShards int
}

var _ core.Solver = BruteForce{}

// Name implements core.Solver.
func (BruteForce) Name() string { return "BruteForce" }

// Solve implements core.Solver.
func (b BruteForce) Solve(in core.Instance) (core.Solution, []core.TracePoint, error) {
	pr, err := prepare(&in)
	if err != nil {
		return core.Solution{}, nil, err
	}
	limit := b.MaxShards
	if limit <= 0 {
		limit = 22
	}
	k := pr.k()
	if k > limit {
		return core.Solution{}, nil, ErrTooLarge
	}
	bestMask := -1
	bestUtil := math.Inf(-1)
	for mask := 0; mask < 1<<k; mask++ {
		count, load := 0, 0
		var util float64
		for p := 0; p < k; p++ {
			if mask>>p&1 == 1 {
				count++
				load += pr.size(p)
				util += pr.value(p)
			}
		}
		if count < in.Nmin || load > in.Capacity {
			continue
		}
		if util > bestUtil {
			bestUtil = util
			bestMask = mask
		}
	}
	if bestMask < 0 {
		return core.Solution{}, nil, infeasible("bruteforce", &in)
	}
	sel := make([]bool, k)
	for p := 0; p < k; p++ {
		sel[p] = mask(bestMask, p)
	}
	sol := pr.solution(sel, 1<<k)
	trace := []core.TracePoint{{Iteration: 1 << k, Utility: sol.Utility}}
	return sol, trace, nil
}

func mask(m, p int) bool { return m>>p&1 == 1 }
