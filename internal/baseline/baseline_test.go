package baseline

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mvcom/internal/core"
	"mvcom/internal/randx"
)

// testInstance mirrors the core-package helper: n shards with sizes
// ~U[500,3000], latencies ~U[600,1300] s.
func testInstance(seed int64, n int, alpha, capFrac float64, nmin int) core.Instance {
	rng := randx.New(seed)
	in := core.Instance{
		Sizes:     make([]int, n),
		Latencies: make([]float64, n),
		Alpha:     alpha,
		Nmin:      nmin,
	}
	total := 0
	for i := 0; i < n; i++ {
		in.Sizes[i] = 500 + rng.Intn(2501)
		in.Latencies[i] = rng.Uniform(600, 1300)
		total += in.Sizes[i]
	}
	in.Capacity = int(capFrac * float64(total))
	if in.Capacity < 1 {
		in.Capacity = 1
	}
	return in
}

func allSolvers(seed int64) []core.Solver {
	return []core.Solver{
		SA{Seed: seed, Iterations: 4000},
		DP{},
		WOA{Seed: seed, Iterations: 150, Whales: 20},
		Greedy{},
	}
}

func TestSolverNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range allSolvers(1) {
		names[s.Name()] = true
	}
	for _, want := range []string{"SA", "DP", "WOA", "Greedy"} {
		if !names[want] {
			t.Fatalf("missing solver %q", want)
		}
	}
	if (BruteForce{}).Name() != "BruteForce" {
		t.Fatal("BruteForce name wrong")
	}
}

func TestAllSolversProduceFeasibleSolutions(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := testInstance(seed, 30, 1.5, 0.4, 8)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, s := range allSolvers(seed) {
			sol, trace, err := s.Solve(in.Clone())
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			if !in.Feasible(sol.Selected) {
				t.Fatalf("%s seed %d: infeasible solution (count=%d load=%d)",
					s.Name(), seed, sol.Count, sol.Load)
			}
			if len(trace) == 0 {
				t.Fatalf("%s: empty trace", s.Name())
			}
			if math.Abs(sol.Utility-in.Utility(sol.Selected)) > 1e-6 {
				t.Fatalf("%s: cached utility mismatch", s.Name())
			}
		}
	}
}

func TestBruteForceExactOnTinyInstance(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{30, 40, 50, 60},
		Latencies: []float64{700, 800, 900, 1000},
		Alpha:     2,
		Capacity:  100,
		Nmin:      1,
	}
	sol, _, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Values: age terms (300,200,100,0); v = 2s - age: (-240, -120, 0, 120).
	// Capacity 100: best is {3} with value 120 ({2,3} would be 110 > cap).
	if sol.Count != 1 || !sol.Selected[3] {
		t.Fatalf("brute force selected %v", sol.Indices())
	}
	if math.Abs(sol.Utility-120) > 1e-9 {
		t.Fatalf("utility %v", sol.Utility)
	}
}

func TestBruteForceRespectsNmin(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{30, 40, 50, 60},
		Latencies: []float64{700, 800, 900, 1000},
		Alpha:     2,
		Capacity:  100,
		Nmin:      2,
	}
	sol, _, err := BruteForce{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Count < 2 {
		t.Fatalf("count %d below Nmin", sol.Count)
	}
	// Best 2-subset within capacity 100: {2,3} is 110 > cap; {1,3} is 100
	// with value -120+120 = 0; {0,3} is 90 with value -240+120=-120;
	// {1,2} is 90 with value -120+0=-120. So {1,3}.
	if !sol.Selected[1] || !sol.Selected[3] {
		t.Fatalf("selected %v", sol.Indices())
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	in := testInstance(1, 18, 1.5, 0.5, 1)
	if _, _, err := (BruteForce{MaxShards: 16}).Solve(in.Clone()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := (BruteForce{MaxShards: 18}).Solve(in.Clone()); err != nil {
		t.Fatalf("raised limit rejected: %v", err)
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{100, 100},
		Latencies: []float64{700, 800},
		Alpha:     1,
		Capacity:  150,
		Nmin:      2,
	}
	if _, _, err := (BruteForce{}).Solve(in); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestDPMatchesBruteForceWithoutScaling(t *testing.T) {
	// With TableWidth >= capacity the DP is exact; with Nmin=0 it must
	// equal the brute-force optimum.
	for seed := int64(0); seed < 6; seed++ {
		in := testInstance(seed+50, 14, 1.5, 0.5, 0)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		exact, _, err := BruteForce{}.Solve(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		dp, _, err := DP{TableWidth: in.Capacity}.Solve(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Utility-exact.Utility) > 1e-6 {
			t.Fatalf("seed %d: DP %v != optimum %v", seed, dp.Utility, exact.Utility)
		}
	}
}

func TestDPScalingNeverBeatsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(seed, 12, 1.5, 0.45, 0)
		if err := in.Validate(); err != nil {
			return false
		}
		exact, _, err := BruteForce{}.Solve(in.Clone())
		if err != nil {
			return errors.Is(err, core.ErrInfeasible)
		}
		// Coarse scaling: rounded weights shrink the feasible set, so the
		// scaled DP can only do worse or equal — and must stay feasible.
		dp, _, err := DP{TableWidth: 50}.Solve(in.Clone())
		if err != nil {
			return errors.Is(err, core.ErrInfeasible)
		}
		return dp.Utility <= exact.Utility+1e-6 && in.Feasible(dp.Selected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSATraceMonotone(t *testing.T) {
	in := testInstance(3, 40, 1.5, 0.4, 10)
	_, trace, err := SA{Seed: 3, Iterations: 3000}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Utility < trace[i-1].Utility-1e-9 {
			t.Fatal("SA best-so-far trace decreased")
		}
	}
}

func TestSADeterministicPerSeed(t *testing.T) {
	in := testInstance(4, 25, 1.5, 0.4, 6)
	a, _, err := SA{Seed: 9, Iterations: 2000}.Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SA{Seed: 9, Iterations: 2000}.Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility {
		t.Fatalf("SA same seed diverged: %v vs %v", a.Utility, b.Utility)
	}
}

func TestSANearOptimalOnSmallInstances(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := testInstance(seed+10, 12, 1.5, 0.5, 3)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		exact, _, err := BruteForce{}.Solve(in.Clone())
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				continue
			}
			t.Fatal(err)
		}
		sa, _, err := SA{Seed: seed, Iterations: 8000}.Solve(in.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if sa.Utility < 0.9*exact.Utility {
			t.Fatalf("seed %d: SA %v below 90%% of optimum %v", seed, sa.Utility, exact.Utility)
		}
	}
}

func TestWOATraceMonotone(t *testing.T) {
	in := testInstance(5, 30, 1.5, 0.4, 8)
	_, trace, err := WOA{Seed: 5, Iterations: 100, Whales: 15}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Utility < trace[i-1].Utility-1e-9 {
			t.Fatal("WOA best-so-far trace decreased")
		}
	}
}

func TestWOADeterministicPerSeed(t *testing.T) {
	in := testInstance(6, 20, 1.5, 0.4, 5)
	a, _, err := WOA{Seed: 2, Iterations: 80, Whales: 10}.Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := WOA{Seed: 2, Iterations: 80, Whales: 10}.Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility {
		t.Fatal("WOA same seed diverged")
	}
}

func TestGreedyIsDeterministic(t *testing.T) {
	in := testInstance(7, 30, 1.5, 0.4, 8)
	a, _, err := Greedy{}.Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Greedy{}.Solve(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility || a.Count != b.Count {
		t.Fatal("greedy not deterministic")
	}
}

func TestGreedyNeverBeatsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		in := testInstance(seed, 12, 1.5, 0.5, 2)
		if err := in.Validate(); err != nil {
			return false
		}
		exact, _, err := BruteForce{}.Solve(in.Clone())
		if err != nil {
			return errors.Is(err, core.ErrInfeasible)
		}
		g, _, err := Greedy{}.Solve(in.Clone())
		if err != nil {
			return errors.Is(err, core.ErrInfeasible)
		}
		return g.Utility <= exact.Utility+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolversRejectInvalidInstances(t *testing.T) {
	bad := core.Instance{} // no shards
	for _, s := range allSolvers(1) {
		if _, _, err := s.Solve(bad); err == nil {
			t.Fatalf("%s accepted an invalid instance", s.Name())
		}
	}
}

func TestSolversNoCandidates(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{10},
		Latencies: []float64{500},
		DDL:       100,
		Alpha:     1,
		Capacity:  50,
	}
	for _, s := range allSolvers(1) {
		if _, _, err := s.Solve(in); !errors.Is(err, core.ErrNoCandidates) {
			t.Fatalf("%s: err = %v", s.Name(), err)
		}
	}
}

func TestSolversInfeasibleNmin(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{100, 100, 100},
		Latencies: []float64{700, 800, 900},
		Alpha:     1,
		Capacity:  150,
		Nmin:      3,
	}
	for _, s := range allSolvers(1) {
		if _, _, err := s.Solve(in.Clone()); !errors.Is(err, core.ErrInfeasible) {
			t.Fatalf("%s: err = %v", s.Name(), err)
		}
	}
}

func TestRepairNminPadsWithSmallest(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{500, 20, 30, 400},
		Latencies: []float64{700, 750, 800, 900},
		Alpha:     1,
		Capacity:  460,
		Nmin:      3,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	pr, err := prepare(&in)
	if err != nil {
		t.Fatal(err)
	}
	sel := []bool{false, false, false, true} // load 400, count 1
	if !pr.repairNmin(sel) {
		t.Fatal("repair failed")
	}
	// Needs 2 more: smallest are 20 and 30 → load 450 ≤ 460.
	if !sel[1] || !sel[2] || sel[0] {
		t.Fatalf("repair picked %v", sel)
	}
}

func TestRepairCapacityDropsLowDensity(t *testing.T) {
	in := core.Instance{
		Sizes:     []int{100, 100},
		Latencies: []float64{600, 1000}, // ages 400, 0
		Alpha:     1,
		Capacity:  100,
		Nmin:      0,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	pr, err := prepare(&in)
	if err != nil {
		t.Fatal(err)
	}
	sel := []bool{true, true} // load 200 > 100
	pr.repairCapacity(sel)
	// Shard 0 has value 100-400 = -300 (density -3); shard 1 has value
	// 100 (density 1). Shard 0 must be dropped.
	if sel[0] || !sel[1] {
		t.Fatalf("repair kept the wrong shard: %v", sel)
	}
	if pr.load(sel) > in.Capacity {
		t.Fatal("still over capacity")
	}
}
