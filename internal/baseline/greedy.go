package baseline

import (
	"sort"

	"mvcom/internal/core"
)

// Greedy is a value-density heuristic: it admits arrived shards in
// decreasing (α·s_i − age_i)/s_i order while the final block has room,
// then pads to Nmin with the smallest leftovers. It is not one of the
// paper's baselines but serves as a fast reference point and an ablation
// anchor.
type Greedy struct{}

var _ core.Solver = Greedy{}

// Name implements core.Solver.
func (Greedy) Name() string { return "Greedy" }

// Solve implements core.Solver.
func (g Greedy) Solve(in core.Instance) (core.Solution, []core.TracePoint, error) {
	pr, err := prepare(&in)
	if err != nil {
		return core.Solution{}, nil, err
	}
	order := make([]int, pr.k())
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := order[a], order[b]
		da := pr.value(pa) / float64(maxInt(pr.size(pa), 1))
		db := pr.value(pb) / float64(maxInt(pr.size(pb), 1))
		if da != db {
			return da > db
		}
		return pa < pb
	})
	sel := make([]bool, pr.k())
	load := 0
	for _, p := range order {
		if pr.value(p) <= 0 {
			break // remaining candidates only lower the utility
		}
		if load+pr.size(p) > in.Capacity {
			continue
		}
		sel[p] = true
		load += pr.size(p)
	}
	if !pr.ensureNmin(sel) {
		return core.Solution{}, nil, infeasible("greedy", &in)
	}
	sol := pr.solution(sel, 1)
	trace := []core.TracePoint{{Iteration: 1, Utility: sol.Utility}}
	return sol, trace, nil
}
