package tracemerge

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mvcom/internal/obs"
)

// span emits a hand-built begin/end pair with controlled timestamps so
// the tests can simulate processes whose wall clocks disagree.
func span(traceID, spanID, parentID uint64, name, actor string, start time.Time, dur time.Duration) []obs.Event {
	return []obs.Event{
		{At: start, Type: obs.EvSpanBegin, Actor: actor, Detail: name,
			TraceID: traceID, SpanID: spanID, ParentID: parentID},
		{At: start.Add(dur), Type: obs.EvSpanEnd, Actor: actor, Detail: name,
			Value: dur.Seconds(), TraceID: traceID, SpanID: spanID, ParentID: parentID},
	}
}

func clockSync(worker string, offsets ...float64) []obs.Event {
	evs := make([]obs.Event, len(offsets))
	for i, off := range offsets {
		evs[i] = obs.Event{Type: obs.EvClockSync, Actor: worker, Value: off}
	}
	return evs
}

// findSpan walks the forest for the first span with the given name+actor.
func findSpan(list []*obs.TimelineSpan, name, actor string) *obs.TimelineSpan {
	for _, s := range list {
		if s.Name == name && (actor == "" || s.Actor == actor) {
			return s
		}
		if got := findSpan(s.Children, name, actor); got != nil {
			return got
		}
	}
	return nil
}

// TestMergeCorrectsClockSkew is the headline alignment scenario: two
// workers whose clocks are off by -50ms and +50ms against the
// coordinator. Raw timestamps put the behind-clock worker's solve span
// BEFORE the dispatch that caused it; after offset correction from the
// EvClockSync samples the merged timeline must be causally consistent —
// every child starts at or after its parent, within the sync tolerance.
func TestMergeCorrectsClockSkew(t *testing.T) {
	base := time.Unix(1_700_000_000, 0).UTC()
	const (
		skew = 50 * time.Millisecond
		// tol absorbs the residual error of the NTP-style estimate.
		tol = 2 * time.Millisecond
	)

	// Coordinator (reference clock): epoch root with one dispatch child.
	co := &Dump{Name: "coordinator"}
	co.Events = append(co.Events, span(0x10, 0x10, 0, "epoch", "coordinator", base.Add(-10*time.Millisecond), 40*time.Millisecond)...)
	co.Events = append(co.Events, span(0x10, 0x11, 0x10, "dispatch", "task-0#1", base, 20*time.Millisecond)...)

	// w0's clock runs 50ms BEHIND: its solve真 starts 5ms after the
	// dispatch but is stamped 45ms before it. Sync samples say "add 50ms".
	w0 := &Dump{Name: "w0"}
	w0.Events = append(w0.Events, span(0x10, 0x12, 0x11, "solve", "w0", base.Add(5*time.Millisecond-skew), 10*time.Millisecond)...)
	w0.Events = append(w0.Events, clockSync("w0", 0.049, 0.050, 0.051)...)

	// w1's clock runs 50ms AHEAD; samples say "subtract 50ms".
	w1 := &Dump{Name: "w1"}
	w1.Events = append(w1.Events, span(0x10, 0x13, 0x11, "solve", "w1", base.Add(6*time.Millisecond+skew), 9*time.Millisecond)...)
	w1.Events = append(w1.Events, clockSync("w1", -0.051, -0.050, -0.049)...)

	// Premise: without correction the ordering really is inverted.
	rawSolve := w0.Events[0].At
	if !rawSolve.Before(base) {
		t.Fatal("test premise broken: skewed solve should predate the dispatch")
	}

	m := Merge([]*Dump{co, w1, w0})
	if len(m.Timeline.Orphans) != 0 {
		t.Fatalf("orphans = %d, want 0", len(m.Timeline.Orphans))
	}
	if len(m.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(m.Nodes))
	}
	for _, n := range m.Nodes {
		switch n.Name {
		case "coordinator":
			if n.OffsetSec != 0 || n.ClockSamples != 0 {
				t.Fatalf("coordinator must be the reference clock, got offset=%v samples=%d", n.OffsetSec, n.ClockSamples)
			}
		case "w0":
			if n.OffsetSec != 0.050 {
				t.Fatalf("w0 offset = %v, want median 0.050", n.OffsetSec)
			}
		case "w1":
			if n.OffsetSec != -0.050 {
				t.Fatalf("w1 offset = %v, want median -0.050", n.OffsetSec)
			}
		}
	}

	dispatch := findSpan(m.Timeline.Roots, "dispatch", "")
	if dispatch == nil {
		t.Fatal("dispatch span missing from merged timeline")
	}
	for _, worker := range []string{"w0", "w1"} {
		solve := findSpan(dispatch.Children, "solve", worker)
		if solve == nil {
			t.Fatalf("%s solve span not a child of its dispatch", worker)
		}
		if solve.Node != worker {
			t.Fatalf("%s solve span node = %q", worker, solve.Node)
		}
		if solve.Start.Before(dispatch.Start.Add(-tol)) {
			t.Fatalf("%s solve starts %v before its dispatch after correction",
				worker, dispatch.Start.Sub(solve.Start))
		}
		if solve.End.After(dispatch.End.Add(tol)) {
			t.Fatalf("%s solve ends after its dispatch after correction", worker)
		}
	}
	// Corrected wall positions: w0's solve lands back at base+5ms.
	w0solve := findSpan(dispatch.Children, "solve", "w0")
	if got := w0solve.Start.Sub(base); got < 5*time.Millisecond-tol || got > 5*time.Millisecond+tol {
		t.Fatalf("w0 solve corrected start = base%+v, want ~+5ms", got)
	}
	// Durations are emitter-measured and must survive the shift exactly.
	if w0solve.DurationMs != 10 {
		t.Fatalf("w0 solve duration = %vms, want 10", w0solve.DurationMs)
	}
	// In the aligned event union, every event carries its node stamp.
	for _, ev := range m.Events {
		if ev.Node == "" {
			t.Fatal("merged event missing node stamp")
		}
	}
}

// TestReadDumpRoundTrip pushes a live tracer's StreamJSON export through
// the streaming reader and checks nothing is lost or re-ordered, the
// dropped count survives, and every event gets the dump's node stamp.
func TestReadDumpRoundTrip(t *testing.T) {
	tr := obs.NewTracer(32)
	for i := 0; i < 50; i++ {
		tr.Emit(obs.EvSERound, "kernel", float64(i), "")
	}
	var buf bytes.Buffer
	if err := tr.StreamJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump("proc-a", &buf)
	if err != nil {
		t.Fatal(err)
	}
	events, dropped := tr.Snapshot()
	if d.Dropped != dropped {
		t.Fatalf("dropped = %d, want %d", d.Dropped, dropped)
	}
	if len(d.Events) != len(events) {
		t.Fatalf("events = %d, want %d", len(d.Events), len(events))
	}
	for i, ev := range d.Events {
		if ev.Seq != events[i].Seq || ev.Value != events[i].Value {
			t.Fatalf("event %d mismatch: got seq=%d value=%v", i, ev.Seq, ev.Value)
		}
		if ev.Node != "proc-a" {
			t.Fatalf("event %d node = %q, want proc-a", i, ev.Node)
		}
	}
}

// TestFetchDumpLiveEndpoint ingests a running process's /trace endpoint
// from a bare host:port source, the way -merge mixes live processes with
// saved files.
func TestFetchDumpLiveEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tc := reg.TraceContext()
	sp := tc.StartRoot("epoch", "live")
	tc.StartSpan("solve", "w9", sp.Context()).Finish()
	sp.Finish()

	d, err := FetchDump("live", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 4 {
		t.Fatalf("fetched %d events, want 4", len(d.Events))
	}
	// Load with a bare host:port (no scheme, no file on disk) must take
	// the live path too.
	d2, err := Load("w9=" + srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != "w9" || len(d2.Events) != 4 {
		t.Fatalf("Load(host:port) = %q/%d events, want w9/4", d2.Name, len(d2.Events))
	}
}

// TestReadDumpMalformed rejects non-dump JSON instead of misreading it.
func TestReadDumpMalformed(t *testing.T) {
	if _, err := ReadDump("x", strings.NewReader(`[1,2,3]`)); err == nil {
		t.Fatal("array accepted as a trace dump")
	}
	if _, err := ReadDump("x", strings.NewReader(`{"events":{"not":"array"}}`)); err == nil {
		t.Fatal("object events accepted")
	}
	// Unknown fields from newer exporters are tolerated.
	d, err := ReadDump("x", strings.NewReader(`{"dropped":3,"future":{"a":1},"events":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Dropped != 3 || len(d.Events) != 0 {
		t.Fatalf("got dropped=%d events=%d", d.Dropped, len(d.Events))
	}
}

// TestEstimateOffsetMedian: the median must shrug off one congested
// round trip's outlier estimate.
func TestEstimateOffsetMedian(t *testing.T) {
	d := &Dump{Events: clockSync("w", 0.010, 0.011, 0.012, 0.013, 0.900)}
	off, n := EstimateOffset(d)
	if n != 5 {
		t.Fatalf("samples = %d, want 5", n)
	}
	if off != 0.012 {
		t.Fatalf("offset = %v, want median 0.012", off)
	}
	if off, n := EstimateOffset(&Dump{}); off != 0 || n != 0 {
		t.Fatalf("empty dump: offset=%v samples=%d, want 0,0", off, n)
	}
}

// TestMergedWriteTree smoke-checks the text artifact: node summary lines
// with offsets, then the per-trace span tree.
func TestMergedWriteTree(t *testing.T) {
	base := time.Unix(1_700_000_000, 0).UTC()
	co := &Dump{Name: "coordinator"}
	co.Events = append(co.Events, span(0x20, 0x20, 0, "epoch", "coordinator", base, 30*time.Millisecond)...)
	w := &Dump{Name: "w0", Dropped: 2}
	w.Events = append(w.Events, span(0x20, 0x21, 0x20, "solve", "w0", base.Add(time.Millisecond), 5*time.Millisecond)...)
	w.Events = append(w.Events, clockSync("w0", 0.001)...)

	var buf bytes.Buffer
	if err := Merge([]*Dump{co, w}).WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"node coordinator", "(reference clock)", "node w0", "dropped=2",
		"trace 0000000000000020", "epoch (coordinator@coordinator)", "solve (w0@w0)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}
