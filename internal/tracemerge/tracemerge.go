// Package tracemerge reconstructs a single causal timeline out of the
// trace dumps of several mvcom processes (a coordinator plus its
// workers). Each process exports its bounded ring buffer as
// {"dropped":N,"events":[...]} — either a file saved from /trace or the
// live endpoint itself — and this package stitches the dumps together:
// it stamps every event with the process it came from, estimates each
// process's clock offset against the coordinator from the EvClockSync
// events the dist layer emits, shifts the skewed timestamps onto the
// reference clock, and folds the merged stream through the same
// obs.BuildTimeline used for single-process /debug/timeline views.
package tracemerge

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"mvcom/internal/decisionlog"
	"mvcom/internal/obs"
)

// Dump is one process's ingested trace export.
type Dump struct {
	// Name identifies the process ("coordinator", "w0", ...); it is
	// stamped into every event's Node field.
	Name string
	// Dropped is the exporter's evicted-event count at export time.
	Dropped uint64
	// Events is the retained window, Node-stamped, in export order.
	Events []obs.Event
}

// ReadDump ingests one {"dropped":N,"events":[...]} document with a
// streaming decoder — events are decoded one at a time, so a large dump
// never needs a second in-memory copy of its raw JSON. Every event is
// stamped with the dump name.
func ReadDump(name string, r io.Reader) (*Dump, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, fmt.Errorf("dump %s: %w", name, err)
	}
	d := &Dump{Name: name}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("dump %s: %w", name, err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "dropped":
			if err := dec.Decode(&d.Dropped); err != nil {
				return nil, fmt.Errorf("dump %s: dropped: %w", name, err)
			}
		case "events":
			if err := expectDelim(dec, '['); err != nil {
				return nil, fmt.Errorf("dump %s: events: %w", name, err)
			}
			for dec.More() {
				var ev obs.Event
				if err := dec.Decode(&ev); err != nil {
					return nil, fmt.Errorf("dump %s: event %d: %w", name, len(d.Events), err)
				}
				ev.Node = name
				d.Events = append(d.Events, ev)
			}
			if _, err := dec.Token(); err != nil { // closing ]
				return nil, fmt.Errorf("dump %s: %w", name, err)
			}
		default: // tolerate fields from newer exporters
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("dump %s: %q: %w", name, key, err)
			}
		}
	}
	return d, nil
}

// expectDelim consumes one token and checks it is the wanted delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("malformed trace dump: got %v, want %v", tok, want)
	}
	return nil
}

// FetchDump ingests a live process's trace over HTTP. A bare host:port
// or a URL without a path is pointed at the /trace endpoint obs.Serve
// exposes.
func FetchDump(name, rawURL string) (*Dump, error) {
	if !strings.Contains(rawURL, "://") {
		rawURL = "http://" + rawURL
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("dump %s: %w", name, err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/trace"
	}
	resp, err := http.Get(u.String())
	if err != nil {
		return nil, fmt.Errorf("dump %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dump %s: %s returned %s", name, u, resp.Status)
	}
	return ReadDump(name, resp.Body)
}

// Load ingests one "[name=]path-or-url" source. URLs (anything with a
// scheme or a host:port shape that is not an existing file) are fetched
// live; everything else is read from disk. Without an explicit name the
// file base name (minus extension) or URL host is used.
func Load(source string) (*Dump, error) {
	name := ""
	if i := strings.Index(source, "="); i > 0 && !strings.Contains(source[:i], "/") {
		name, source = source[:i], source[i+1:]
	}
	if isURL(source) {
		if name == "" {
			if u, err := url.Parse(withScheme(source)); err == nil {
				name = u.Host
			} else {
				name = source
			}
		}
		return FetchDump(name, source)
	}
	if name == "" {
		base := source
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			base = base[:i]
		}
		name = base
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(name, f)
}

// isURL reports whether a merge source should be fetched rather than
// opened: explicit schemes always, host:port shapes only when no such
// file exists on disk.
func isURL(s string) bool {
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return true
	}
	if _, err := os.Stat(s); err == nil {
		return false
	}
	// host:port with no path separators reads as a live endpoint.
	i := strings.LastIndexByte(s, ':')
	return i > 0 && !strings.ContainsAny(s, "/\\") && i < len(s)-1
}

func withScheme(s string) string {
	if strings.Contains(s, "://") {
		return s
	}
	return "http://" + s
}

// EstimateOffset returns the seconds to ADD to the dump's timestamps to
// land on the coordinator's reference clock: the median of the dump's
// EvClockSync offset estimates (each one an NTP-style midpoint computed
// by the dist worker from the Progress/Best echo). A dump with no sync
// samples — the coordinator itself, or a single-process run — is its own
// reference and gets offset 0. The median keeps one congested round trip
// from skewing the alignment.
func EstimateOffset(d *Dump) (offsetSec float64, samples int) {
	var vals []float64
	for _, ev := range d.Events {
		if ev.Type == obs.EvClockSync {
			vals = append(vals, ev.Value)
		}
	}
	if len(vals) == 0 {
		return 0, 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], len(vals)
	}
	return (vals[mid-1] + vals[mid]) / 2, len(vals)
}

// NodeInfo summarizes one ingested dump in the merged artifact.
type NodeInfo struct {
	Name string `json:"name"`
	// Events is the retained-window size that was merged.
	Events int `json:"events"`
	// Dropped is how much history the exporter's ring had evicted.
	Dropped uint64 `json:"dropped"`
	// OffsetSec is the clock correction applied to this node's events.
	OffsetSec float64 `json:"offsetSec"`
	// ClockSamples is how many EvClockSync estimates backed the offset
	// (0 = reference node, no correction).
	ClockSamples int `json:"clockSamples"`
}

// DecisionRef joins one decision-journal entry to the merged timeline:
// the epoch root span whose TraceID the entry recorded, the node that
// emitted it, and the decision's headline terms.
type DecisionRef struct {
	Epoch   int     `json:"epoch"`
	TraceID uint64  `json:"traceId"`
	Node    string  `json:"node"`
	Utility float64 `json:"utility"`
	// Selected is the entry's selected instance indices.
	Selected []int `json:"selected,omitempty"`
}

// Merged is the cross-process reconstruction: per-node ingest stats plus
// the causal forest over the clock-aligned union of all events.
type Merged struct {
	Nodes []NodeInfo `json:"nodes"`
	// Warnings flags merge-quality hazards a reader should know about
	// before trusting the alignment: renamed duplicate node names, and
	// non-reference nodes merged with no clock-sync samples.
	Warnings []string `json:"warnings,omitempty"`
	// Decisions holds audit-journal entries joined onto the timeline via
	// their epoch root spans (JoinDecisions); empty until joined.
	Decisions []DecisionRef `json:"decisions,omitempty"`
	Timeline  *obs.Timeline `json:"timeline"`
	// Events is the clock-aligned union, oldest first (offsets applied).
	Events []obs.Event `json:"events"`
}

// Merge aligns the dumps onto the reference clock and reconstructs the
// merged causal timeline. Span durations survive the shift exactly: the
// timeline builder takes them from the end events' emitter-measured
// values, never from shifted endpoint differences.
//
// The first dump is the reference clock; any later dump with zero
// EvClockSync samples is merged on its own clock (offset 0) and flagged
// in Warnings. Duplicate dump names are renamed ("w1" -> "w1#2") so
// per-node stats and event attribution stay unambiguous.
func Merge(dumps []*Dump) *Merged {
	m := &Merged{}
	seen := make(map[string]int, len(dumps))
	for i, d := range dumps {
		name := d.Name
		seen[name]++
		if c := seen[name]; c > 1 {
			name = fmt.Sprintf("%s#%d", name, c)
			m.Warnings = append(m.Warnings, fmt.Sprintf(
				"duplicate node name %q renamed to %q", d.Name, name))
		}
		off, n := EstimateOffset(d)
		if i > 0 && n == 0 {
			m.Warnings = append(m.Warnings, fmt.Sprintf(
				"node %q has no clock-sync samples; merged on its own clock (offset 0)", name))
		}
		m.Nodes = append(m.Nodes, NodeInfo{
			Name: name, Events: len(d.Events), Dropped: d.Dropped,
			OffsetSec: off, ClockSamples: n,
		})
		shift := time.Duration(off * float64(time.Second))
		for _, ev := range d.Events {
			ev.At = ev.At.Add(shift)
			ev.Node = name
			m.Events = append(m.Events, ev)
		}
	}
	sort.SliceStable(m.Events, func(i, j int) bool { return m.Events[i].At.Before(m.Events[j].At) })
	m.Timeline = obs.BuildTimeline(m.Events)
	return m
}

// JoinDecisions links decision-journal entries onto the merged timeline:
// an entry joins when some node's epoch root span (EvSpanBegin with
// TraceID == SpanID) carries the entry's recorded TraceID. Returns how
// many entries joined; entries without a TraceID (tracing was off) or
// whose root span fell out of the bounded ring simply do not join.
func (m *Merged) JoinDecisions(entries []decisionlog.Entry) int {
	roots := make(map[uint64]string)
	for _, ev := range m.Events {
		if ev.Type == obs.EvSpanBegin && ev.TraceID != 0 && ev.TraceID == ev.SpanID {
			roots[ev.TraceID] = ev.Node
		}
	}
	joined := 0
	for i := range entries {
		e := &entries[i]
		if e.TraceID == 0 {
			continue
		}
		node, ok := roots[e.TraceID]
		if !ok {
			continue
		}
		m.Decisions = append(m.Decisions, DecisionRef{
			Epoch: e.Epoch, TraceID: e.TraceID, Node: node,
			Utility: e.Utility, Selected: e.Selected,
		})
		joined++
	}
	return joined
}

// WriteJSON writes the merged artifact (node stats + timeline + aligned
// events) as indented JSON — the CI soak uploads this document.
func (m *Merged) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteTree renders the node summary, merge warnings, joined decisions,
// and the flamegraph-style text tree.
func (m *Merged) WriteTree(w io.Writer) error {
	for _, n := range m.Nodes {
		ref := ""
		if n.ClockSamples == 0 {
			ref = " (reference clock)"
		}
		if _, err := fmt.Fprintf(w, "node %-14s events=%d dropped=%d offset=%+.3fms%s\n",
			n.Name, n.Events, n.Dropped, n.OffsetSec*1e3, ref); err != nil {
			return err
		}
	}
	for _, warn := range m.Warnings {
		if _, err := fmt.Fprintf(w, "warning: %s\n", warn); err != nil {
			return err
		}
	}
	for _, d := range m.Decisions {
		if _, err := fmt.Fprintf(w, "decision epoch=%d node=%s utility=%g selected=%v\n",
			d.Epoch, d.Node, d.Utility, d.Selected); err != nil {
			return err
		}
	}
	return m.Timeline.WriteTree(w)
}
