// Package tracemerge reconstructs a single causal timeline out of the
// trace dumps of several mvcom processes (a coordinator plus its
// workers). Each process exports its bounded ring buffer as
// {"dropped":N,"events":[...]} — either a file saved from /trace or the
// live endpoint itself — and this package stitches the dumps together:
// it stamps every event with the process it came from, estimates each
// process's clock offset against the coordinator from the EvClockSync
// events the dist layer emits, shifts the skewed timestamps onto the
// reference clock, and folds the merged stream through the same
// obs.BuildTimeline used for single-process /debug/timeline views.
package tracemerge

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"mvcom/internal/obs"
)

// Dump is one process's ingested trace export.
type Dump struct {
	// Name identifies the process ("coordinator", "w0", ...); it is
	// stamped into every event's Node field.
	Name string
	// Dropped is the exporter's evicted-event count at export time.
	Dropped uint64
	// Events is the retained window, Node-stamped, in export order.
	Events []obs.Event
}

// ReadDump ingests one {"dropped":N,"events":[...]} document with a
// streaming decoder — events are decoded one at a time, so a large dump
// never needs a second in-memory copy of its raw JSON. Every event is
// stamped with the dump name.
func ReadDump(name string, r io.Reader) (*Dump, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, fmt.Errorf("dump %s: %w", name, err)
	}
	d := &Dump{Name: name}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("dump %s: %w", name, err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "dropped":
			if err := dec.Decode(&d.Dropped); err != nil {
				return nil, fmt.Errorf("dump %s: dropped: %w", name, err)
			}
		case "events":
			if err := expectDelim(dec, '['); err != nil {
				return nil, fmt.Errorf("dump %s: events: %w", name, err)
			}
			for dec.More() {
				var ev obs.Event
				if err := dec.Decode(&ev); err != nil {
					return nil, fmt.Errorf("dump %s: event %d: %w", name, len(d.Events), err)
				}
				ev.Node = name
				d.Events = append(d.Events, ev)
			}
			if _, err := dec.Token(); err != nil { // closing ]
				return nil, fmt.Errorf("dump %s: %w", name, err)
			}
		default: // tolerate fields from newer exporters
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("dump %s: %q: %w", name, key, err)
			}
		}
	}
	return d, nil
}

// expectDelim consumes one token and checks it is the wanted delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("malformed trace dump: got %v, want %v", tok, want)
	}
	return nil
}

// FetchDump ingests a live process's trace over HTTP. A bare host:port
// or a URL without a path is pointed at the /trace endpoint obs.Serve
// exposes.
func FetchDump(name, rawURL string) (*Dump, error) {
	if !strings.Contains(rawURL, "://") {
		rawURL = "http://" + rawURL
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("dump %s: %w", name, err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/trace"
	}
	resp, err := http.Get(u.String())
	if err != nil {
		return nil, fmt.Errorf("dump %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dump %s: %s returned %s", name, u, resp.Status)
	}
	return ReadDump(name, resp.Body)
}

// Load ingests one "[name=]path-or-url" source. URLs (anything with a
// scheme or a host:port shape that is not an existing file) are fetched
// live; everything else is read from disk. Without an explicit name the
// file base name (minus extension) or URL host is used.
func Load(source string) (*Dump, error) {
	name := ""
	if i := strings.Index(source, "="); i > 0 && !strings.Contains(source[:i], "/") {
		name, source = source[:i], source[i+1:]
	}
	if isURL(source) {
		if name == "" {
			if u, err := url.Parse(withScheme(source)); err == nil {
				name = u.Host
			} else {
				name = source
			}
		}
		return FetchDump(name, source)
	}
	if name == "" {
		base := source
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			base = base[:i]
		}
		name = base
	}
	f, err := os.Open(source)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(name, f)
}

// isURL reports whether a merge source should be fetched rather than
// opened: explicit schemes always, host:port shapes only when no such
// file exists on disk.
func isURL(s string) bool {
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return true
	}
	if _, err := os.Stat(s); err == nil {
		return false
	}
	// host:port with no path separators reads as a live endpoint.
	i := strings.LastIndexByte(s, ':')
	return i > 0 && !strings.ContainsAny(s, "/\\") && i < len(s)-1
}

func withScheme(s string) string {
	if strings.Contains(s, "://") {
		return s
	}
	return "http://" + s
}

// EstimateOffset returns the seconds to ADD to the dump's timestamps to
// land on the coordinator's reference clock: the median of the dump's
// EvClockSync offset estimates (each one an NTP-style midpoint computed
// by the dist worker from the Progress/Best echo). A dump with no sync
// samples — the coordinator itself, or a single-process run — is its own
// reference and gets offset 0. The median keeps one congested round trip
// from skewing the alignment.
func EstimateOffset(d *Dump) (offsetSec float64, samples int) {
	var vals []float64
	for _, ev := range d.Events {
		if ev.Type == obs.EvClockSync {
			vals = append(vals, ev.Value)
		}
	}
	if len(vals) == 0 {
		return 0, 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], len(vals)
	}
	return (vals[mid-1] + vals[mid]) / 2, len(vals)
}

// NodeInfo summarizes one ingested dump in the merged artifact.
type NodeInfo struct {
	Name string `json:"name"`
	// Events is the retained-window size that was merged.
	Events int `json:"events"`
	// Dropped is how much history the exporter's ring had evicted.
	Dropped uint64 `json:"dropped"`
	// OffsetSec is the clock correction applied to this node's events.
	OffsetSec float64 `json:"offsetSec"`
	// ClockSamples is how many EvClockSync estimates backed the offset
	// (0 = reference node, no correction).
	ClockSamples int `json:"clockSamples"`
}

// Merged is the cross-process reconstruction: per-node ingest stats plus
// the causal forest over the clock-aligned union of all events.
type Merged struct {
	Nodes    []NodeInfo    `json:"nodes"`
	Timeline *obs.Timeline `json:"timeline"`
	// Events is the clock-aligned union, oldest first (offsets applied).
	Events []obs.Event `json:"events"`
}

// Merge aligns the dumps onto the reference clock and reconstructs the
// merged causal timeline. Span durations survive the shift exactly: the
// timeline builder takes them from the end events' emitter-measured
// values, never from shifted endpoint differences.
func Merge(dumps []*Dump) *Merged {
	m := &Merged{}
	for _, d := range dumps {
		off, n := EstimateOffset(d)
		m.Nodes = append(m.Nodes, NodeInfo{
			Name: d.Name, Events: len(d.Events), Dropped: d.Dropped,
			OffsetSec: off, ClockSamples: n,
		})
		shift := time.Duration(off * float64(time.Second))
		for _, ev := range d.Events {
			ev.At = ev.At.Add(shift)
			if ev.Node == "" {
				ev.Node = d.Name
			}
			m.Events = append(m.Events, ev)
		}
	}
	sort.SliceStable(m.Events, func(i, j int) bool { return m.Events[i].At.Before(m.Events[j].At) })
	m.Timeline = obs.BuildTimeline(m.Events)
	return m
}

// WriteJSON writes the merged artifact (node stats + timeline + aligned
// events) as indented JSON — the CI soak uploads this document.
func (m *Merged) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteTree renders the node summary and the flamegraph-style text tree.
func (m *Merged) WriteTree(w io.Writer) error {
	for _, n := range m.Nodes {
		ref := ""
		if n.ClockSamples == 0 {
			ref = " (reference clock)"
		}
		if _, err := fmt.Fprintf(w, "node %-14s events=%d dropped=%d offset=%+.3fms%s\n",
			n.Name, n.Events, n.Dropped, n.OffsetSec*1e3, ref); err != nil {
			return err
		}
	}
	return m.Timeline.WriteTree(w)
}
