package tracemerge

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mvcom/internal/core"
	"mvcom/internal/dist"
	"mvcom/internal/faultinject"
	"mvcom/internal/obs"
	"mvcom/internal/randx"
)

// mergeInstance mirrors the dist test fixture: a binding-capacity
// scheduling instance the session has to actually solve.
func mergeInstance(seed int64, n int) core.Instance {
	rng := randx.New(seed)
	in := core.Instance{
		Sizes:     make([]int, n),
		Latencies: make([]float64, n),
		Alpha:     1.5,
		Nmin:      n / 4,
	}
	total := 0
	for i := 0; i < n; i++ {
		in.Sizes[i] = 500 + rng.Intn(2501)
		in.Latencies[i] = rng.Uniform(600, 1300)
		total += in.Sizes[i]
	}
	in.Capacity = total / 2
	return in
}

// exportDump round-trips one process's registry through the streaming
// JSON export and the streaming reader — the same path the CLI takes.
func exportDump(t *testing.T, name string, reg *obs.Registry) *Dump {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.Tracer().StreamJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// collectSpans flattens the forest depth-first.
func collectSpans(list []*obs.TimelineSpan, out *[]*obs.TimelineSpan) {
	for _, s := range list {
		*out = append(*out, s)
		collectSpans(s.Children, out)
	}
}

// TestMergeFaultInjectedSessionCompleteTimeline is the ISSUE's
// acceptance scenario: a coordinator and two workers run as separate
// "processes" (each with its own registry), one worker is killed the
// moment its first task starts, and the task is redispatched to the
// survivor. Merging the three dumps must reconstruct the complete causal
// timeline — zero orphan spans, every solve span parented under the
// dispatch attempt that caused it, and the retry attempt linked under
// the attempt it replaced.
func TestMergeFaultInjectedSessionCompleteTimeline(t *testing.T) {
	in := mergeInstance(31, 20)

	regCo := obs.NewRegistry()
	regW0 := obs.NewRegistry()
	regW1 := obs.NewRegistry()
	coObs := obs.NewDistObserver(regCo, "coordinator")

	co, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Instance:      in,
		Workers:       2,
		RunTimeout:    10 * time.Second,
		ReportEvery:   50,
		MaxIterations: 1200,
		StableReports: 1 << 30,
		Seed:          31,
		Obs:           coObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := regW1
			if g == 0 {
				reg = regW0
			}
			w := dist.Worker{
				ID:  fmt.Sprintf("w%d", g),
				Obs: obs.NewDistObserver(reg, "worker"),
			}
			if g == 0 {
				// Deterministic kill: the first task this worker starts
				// drops the connection, exactly once, orphaning the task.
				fi, err := faultinject.New(31, faultinject.Rule{
					Point: dist.FPWorkerTask, Times: 1, Action: faultinject.ActDrop,
				})
				if err != nil {
					t.Error(err)
					return
				}
				w.FI = fi
			}
			_, err := w.Run(co.Addr())
			if g == 0 && err == nil {
				t.Error("killed worker reported no error")
			}
			if g != 0 && err != nil {
				t.Errorf("survivor: %v", err)
			}
		}()
	}
	sol, inst, err := co.Run()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Feasible(sol.Selected) {
		t.Fatal("infeasible solution after mid-run worker death")
	}
	if got := coObs.TasksReassigned.Value(); got < 1 {
		t.Fatalf("tasks reassigned = %d, want >= 1 (fault never forced a retry)", got)
	}

	m := Merge([]*Dump{
		exportDump(t, "coordinator", regCo),
		exportDump(t, "w0", regW0),
		exportDump(t, "w1", regW1),
	})

	// The acceptance bar: the merged reconstruction is complete.
	if len(m.Timeline.Orphans) != 0 {
		var buf bytes.Buffer
		_ = m.WriteTree(&buf)
		t.Fatalf("merged timeline has %d orphan spans:\n%s", len(m.Timeline.Orphans), buf.String())
	}

	var epoch *obs.TimelineSpan
	for _, r := range m.Timeline.Roots {
		if r.Name == "epoch" {
			if epoch != nil {
				t.Fatal("more than one epoch root in a single session")
			}
			epoch = r
		}
	}
	if epoch == nil {
		t.Fatal("no epoch root span in merged timeline")
	}
	if epoch.Incomplete {
		t.Fatal("epoch root span never finished")
	}
	if epoch.Node != "coordinator" {
		t.Fatalf("epoch root node = %q, want coordinator", epoch.Node)
	}

	var all []*obs.TimelineSpan
	collectSpans([]*obs.TimelineSpan{epoch}, &all)
	byID := make(map[uint64]*obs.TimelineSpan, len(all))
	dispatches, solves := 0, 0
	retryLinked := false
	for _, s := range all {
		byID[s.SpanID] = s
	}
	for _, s := range all {
		switch s.Name {
		case "dispatch":
			dispatches++
			// Attempt > 1 must hang under the dispatch it replaced, not
			// float as a fresh root: the orphan queue carries the previous
			// attempt's span context through the redispatch.
			if strings.Contains(s.Actor, "#") && !strings.HasSuffix(s.Actor, "#1") {
				parent := byID[s.ParentID]
				if parent == nil || parent.Name != "dispatch" {
					t.Fatalf("retry %s not parented under its prior attempt (parent=%+v)", s.Actor, parent)
				}
				retryLinked = true
			}
		case "solve":
			solves++
			// Every worker solve hangs under a coordinator dispatch.
			parent := byID[s.ParentID]
			if parent == nil || parent.Name != "dispatch" {
				t.Fatalf("solve span (%s@%s) not parented under a dispatch", s.Actor, s.Node)
			}
			if parent.Node != "coordinator" {
				t.Fatalf("solve's dispatch parent came from node %q", parent.Node)
			}
			if s.Node != s.Actor {
				t.Fatalf("solve span node = %q, actor = %q: cross-process attribution lost", s.Node, s.Actor)
			}
		}
	}
	if dispatches < 3 {
		t.Fatalf("dispatch spans = %d, want >= 3 (2 tasks + 1 retry)", dispatches)
	}
	if solves < 3 {
		t.Fatalf("solve spans = %d, want >= 3 (killed + survivor + retried)", solves)
	}
	if !retryLinked {
		t.Fatal("no retry dispatch linked under its prior attempt")
	}
	// The killed worker's span must be closed with the crash outcome, not
	// dangling: span completeness survives the process "death".
	crashed := false
	for _, s := range all {
		if s.Name == "solve" && s.Node == "w0" && s.Outcome == "crash" {
			crashed = true
		}
		if s.Incomplete {
			t.Fatalf("incomplete span %s (%s@%s) in merged timeline", s.Name, s.Actor, s.Node)
		}
	}
	if !crashed {
		t.Fatal("killed worker's solve span missing the crash outcome")
	}

	// The JSON artifact (what CI uploads from the soak) round-trips.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"timeline"`)) {
		t.Fatal("merged JSON artifact missing timeline")
	}
}
