package tracemerge

// Error-path coverage for the merge layer: corrupt and truncated dumps
// must fail loudly, nodes without clock-sync samples must merge on their
// own clock with a visible warning, and duplicate node names must be
// renamed instead of silently conflating two processes' events. Plus the
// decision-journal join: entries attach to the timeline through their
// epoch root spans.

import (
	"strings"
	"testing"
	"time"

	"mvcom/internal/decisionlog"
)

func TestReadDumpCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":        "this is not json",
		"wrong top level": `[1,2,3]`,
		"corrupt event":   `{"dropped":0,"events":[{"at":"zzz`,
		"bad dropped":     `{"dropped":"many","events":[]}`,
	}
	for name, doc := range cases {
		if _, err := ReadDump("x", strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadDump accepted %q", name, doc)
		}
	}
}

func TestReadDumpTruncated(t *testing.T) {
	// A dump cut off mid-stream (process killed during export): the
	// events array never closes.
	doc := `{"dropped":3,"events":[{"type":"span-begin","actor":"se","traceId":1,"spanId":1}`
	if _, err := ReadDump("w1", strings.NewReader(doc)); err == nil {
		t.Fatal("ReadDump accepted a truncated dump")
	}
}

func TestMergeNoClockSyncWarns(t *testing.T) {
	base := time.Unix(100, 0)
	co := &Dump{Name: "coordinator", Events: span(1, 1, 0, "epoch", "pipeline", base, time.Second)}
	// w1 has sync samples, w2 has none.
	w1 := &Dump{Name: "w1", Events: append(clockSync("w1", 0.05, 0.05),
		span(1, 2, 1, "solve", "w1", base.Add(-time.Millisecond*40), 100*time.Millisecond)...)}
	w2 := &Dump{Name: "w2", Events: span(1, 3, 1, "solve", "w2", base.Add(time.Millisecond*10), 100*time.Millisecond)}
	m := Merge([]*Dump{co, w1, w2})

	if len(m.Warnings) != 1 || !strings.Contains(m.Warnings[0], `"w2"`) {
		t.Fatalf("warnings = %v, want exactly one about w2", m.Warnings)
	}
	// The coordinator (first dump, reference clock) must NOT be warned
	// about despite also having zero samples.
	for _, w := range m.Warnings {
		if strings.Contains(w, "coordinator") {
			t.Fatalf("reference node warned about: %v", m.Warnings)
		}
	}
	// w2 merges on its own clock: offset 0, samples 0, events intact.
	var w2info *NodeInfo
	for i := range m.Nodes {
		if m.Nodes[i].Name == "w2" {
			w2info = &m.Nodes[i]
		}
	}
	if w2info == nil || w2info.OffsetSec != 0 || w2info.ClockSamples != 0 || w2info.Events != 2 {
		t.Fatalf("w2 node info = %+v, want offset 0, samples 0, 2 events", w2info)
	}
	// The warning must also surface in the text artifact.
	var sb strings.Builder
	if err := m.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "warning:") {
		t.Fatalf("WriteTree output has no warning line:\n%s", sb.String())
	}
}

func TestMergeDuplicateNodeNames(t *testing.T) {
	base := time.Unix(200, 0)
	a := &Dump{Name: "w1", Events: span(1, 1, 0, "solve", "w1", base, time.Second)}
	b := &Dump{Name: "w1", Events: append(clockSync("w1", 0.01),
		span(2, 2, 0, "solve", "w1", base, time.Second)...)}
	m := Merge([]*Dump{a, b})

	if m.Nodes[0].Name != "w1" || m.Nodes[1].Name != "w1#2" {
		t.Fatalf("node names = %q, %q; want w1 and w1#2", m.Nodes[0].Name, m.Nodes[1].Name)
	}
	found := false
	for _, w := range m.Warnings {
		if strings.Contains(w, "duplicate node name") && strings.Contains(w, "w1#2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no duplicate-name warning: %v", m.Warnings)
	}
	// The second dump's events must be restamped with the new name, so
	// per-node attribution stays unambiguous.
	renamed := 0
	for _, ev := range m.Events {
		if ev.Node == "w1#2" {
			renamed++
		}
	}
	if renamed != len(b.Events) {
		t.Fatalf("%d events restamped as w1#2, want %d", renamed, len(b.Events))
	}
}

func TestJoinDecisions(t *testing.T) {
	base := time.Unix(300, 0)
	evs := span(7, 7, 0, "epoch", "pipeline", base, time.Second)                // root: TraceID == SpanID
	evs = append(evs, span(7, 8, 7, "solve", "pipeline", base, time.Second)...) // child, not a root
	co := &Dump{Name: "coordinator", Events: evs}
	m := Merge([]*Dump{co})

	entries := []decisionlog.Entry{
		{Epoch: 1, TraceID: 7, Utility: 42.5, Selected: []int{0, 2}}, // joins
		{Epoch: 2, TraceID: 999},                                     // root fell out of the ring
		{Epoch: 3},                                                   // tracing was off
	}
	if got := m.JoinDecisions(entries); got != 1 {
		t.Fatalf("joined %d entries, want 1", got)
	}
	if len(m.Decisions) != 1 {
		t.Fatalf("decisions = %+v", m.Decisions)
	}
	d := m.Decisions[0]
	if d.Epoch != 1 || d.Node != "coordinator" || d.Utility != 42.5 || len(d.Selected) != 2 {
		t.Fatalf("joined decision = %+v", d)
	}
	var sb strings.Builder
	if err := m.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "decision epoch=1") {
		t.Fatalf("WriteTree output missing decision line:\n%s", sb.String())
	}
}
