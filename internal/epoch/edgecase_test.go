package epoch

// Regression tests for the failure/arrival edge cases of the epoch
// pipeline: the zero-latency consensus-failure bug, the
// assignArrivedBlocks slice/modulo panics, and the admissionDeadline
// quantile.

import (
	"testing"
	"time"
)

// TestMarkConsensusFailed pins the consensus-failure semantics: the old
// code reported a zero latency for a committee whose PBFT/overlay stage
// errored, which made the *failed* committee the fastest submitter and
// let it define the admission deadline. A failed committee must instead
// be marked failed with a sentinel late latency, and must never close
// the admission window.
func TestMarkConsensusFailed(t *testing.T) {
	rep := CommitteeReport{Committee: 3, Formation: 100 * time.Second, Consensus: 5 * time.Second,
		TwoPhase: 105 * time.Second}
	markConsensusFailed(&rep)
	if !rep.Failed {
		t.Fatal("consensus failure did not mark the report failed")
	}
	if rep.Consensus != consensusFailedLatency {
		t.Fatalf("consensus latency %v, want the sentinel %v", rep.Consensus, consensusFailedLatency)
	}
	if rep.TwoPhase != 100*time.Second+consensusFailedLatency {
		t.Fatalf("two-phase latency %v does not carry the sentinel", rep.TwoPhase)
	}
	if rep.TwoPhase < 0 {
		t.Fatal("sentinel overflowed time.Duration")
	}

	// The failed committee must not define the deadline at any fraction —
	// with the old zero-latency bug a 0.25 quantile over these four
	// reports would have returned 0.
	reports := []CommitteeReport{
		rep,
		{TwoPhase: 100 * time.Second},
		{TwoPhase: 300 * time.Second},
		{TwoPhase: 200 * time.Second},
	}
	for _, frac := range []float64{0.01, 0.25, 0.5, 1.0} {
		got := admissionDeadline(reports, frac)
		if got <= 0 || got >= consensusFailedLatency {
			t.Fatalf("frac %v: deadline %v tainted by the failed committee", frac, got)
		}
	}
	if got := admissionDeadline(reports, 1.0); got != 300*time.Second {
		t.Fatalf("frac 1.0 over live committees: got %v want 300s", got)
	}
	// Every committee failed: no one can close the window.
	allFailed := []CommitteeReport{{Failed: true, TwoPhase: time.Second}}
	if got := admissionDeadline(allFailed, 0.8); got != 0 {
		t.Fatalf("all-failed deadline %v, want 0", got)
	}
}

// TestAdmissionDeadlineQuantile pins the math.Ceil quantile against the
// former +0.999999 hack on the edges the hack got right by accident —
// and the ones it documents poorly: fraction 0, fraction 1, a
// single-report slice, and an exact product that floating point nudges
// just above an integer (0.8·35).
func TestAdmissionDeadlineQuantile(t *testing.T) {
	many := make([]CommitteeReport, 35)
	for i := range many {
		many[i] = CommitteeReport{TwoPhase: time.Duration(i+1) * time.Second}
	}
	if got := admissionDeadline(many, 0.8); got != 28*time.Second {
		t.Fatalf("0.8 of 35: got %v want 28s (⌈0.8·35⌉ = 28th arrival)", got)
	}
	if got := admissionDeadline(many, 0); got != time.Second {
		t.Fatalf("fraction 0: got %v want the first arrival", got)
	}
	if got := admissionDeadline(many, 1); got != 35*time.Second {
		t.Fatalf("fraction 1: got %v want the last arrival", got)
	}
	single := []CommitteeReport{{TwoPhase: 7 * time.Second}}
	for _, frac := range []float64{0, 0.01, 0.5, 1} {
		if got := admissionDeadline(single, frac); got != 7*time.Second {
			t.Fatalf("single report, frac %v: got %v want 7s", frac, got)
		}
	}
	// Failed committees shrink the population the quantile ranks over.
	mixed := make([]CommitteeReport, 35)
	copy(mixed, many)
	for i := 0; i < 5; i++ {
		mixed[i].Failed = true // the five fastest die
	}
	if got := admissionDeadline(mixed, 0.8); got != 29*time.Second {
		t.Fatalf("0.8 of 30 live: got %v want 29s (24th live arrival)", got)
	}
}

// TestAssignArrivedBlocksClamps covers the PoolDriven window accounting
// when the report slice disagrees with the configured committee count:
// fewer reports than committees must not panic the slice bound, and an
// empty slice must not divide by zero in the round-robin — the window's
// blocks stay in the trace for the next epoch instead of vanishing.
func TestAssignArrivedBlocksClamps(t *testing.T) {
	cfg := fastConfig(4, 77)
	cfg.PoolDriven = true
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.trace.Blocks) == 0 {
		t.Fatal("trace generated no blocks")
	}
	horizon := p.trace.Blocks[len(p.trace.Blocks)-1].BTime + time.Second

	// Empty slice: no panic, no blocks consumed, wall clock still moves.
	p.assignArrivedBlocks(nil, horizon)
	if p.blockCursor != 0 {
		t.Fatalf("empty reports consumed %d blocks", p.blockCursor)
	}
	if p.wallClock != horizon {
		t.Fatalf("wall clock %v, want %v", p.wallClock, horizon)
	}

	// Fewer reports than configured committees: clamp, assign round-robin
	// over the ones that exist.
	short := make([]CommitteeReport, 2)
	p.assignArrivedBlocks(short, horizon)
	if p.blockCursor != len(p.trace.Blocks) {
		t.Fatalf("consumed %d of %d blocks", p.blockCursor, len(p.trace.Blocks))
	}
	total := 0
	for _, rep := range short {
		total += rep.TxCount
	}
	var want int
	for _, b := range p.trace.Blocks {
		want += b.Txs
	}
	if total != want {
		t.Fatalf("assigned %d txs, trace holds %d", total, want)
	}

	// More reports than committees (deferred entries appended): only the
	// fresh prefix is re-packaged, carried shards keep their size.
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	long := make([]CommitteeReport, 6)
	long[4].TxCount = 1234 // deferred carry
	long[5].TxCount = 567
	p2.assignArrivedBlocks(long, horizon)
	if long[4].TxCount != 1234 || long[5].TxCount != 567 {
		t.Fatalf("deferred shards re-packaged: %d, %d", long[4].TxCount, long[5].TxCount)
	}
	fresh := 0
	for _, rep := range long[:4] {
		fresh += rep.TxCount
	}
	if fresh != want {
		t.Fatalf("fresh committees packaged %d txs, trace holds %d", fresh, want)
	}
}
